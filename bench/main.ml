(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation (section 8), plus the ablations indexed in
   DESIGN.md.

   Subcommands (default: every section in quick mode):
     f7 | x86 | policy | adaptive | shrink | fset | latency | churn | all
   Flags:
     --full        paper-scale parameters (longer trials, more configs)
     --smoke       seconds-scale parameters (CI sanity; overrides --full)
     --telemetry   install a recording probe; print per-impl event tables
     --json PATH   write machine-readable results (implies --telemetry)
     --trace PATH  install a flight-recorder ring and write the churn
                   section's merged trace as Chrome trace-event JSON
                   (open in Perfetto / chrome://tracing)
     --serve PORT  expose /metrics, /snapshot.json, /health and
                   /trace.json over HTTP while the bench runs (implies
                   --telemetry; port 0 picks a free port)
     --profile     install the contention profiler; print a ranked
                   table of retry sites and false-sharing scores after
                   the run (with --serve, /profile.json goes live)
     --profile-out PATH  write the final quiescent contention profile
                   as JSON (implies --profile; the per-site sums in it
                   are cross-checked against the probe's cas_retry
                   counter by CI)

   Throughputs are reported in operations per microsecond, as in the
   paper's charts. Absolute numbers are not comparable to the paper's
   (different language, runtime and machine — and this container has a
   single core, so thread counts above 1 are time-sliced); the claims
   under test are the relative shapes, recorded in EXPERIMENTS.md. *)

module Factory = Nbhash_workload.Factory
module Runner = Nbhash_workload.Runner
module Workload = Nbhash_workload.Workload
module Report = Nbhash_workload.Report
module Policy = Nbhash.Policy

let full = ref false
let smoke = ref false
let telemetry = ref false
let json_path = ref None
let trace_path = ref None
let serve_port = ref None
let profile = ref false
let profile_out = ref None

(* --- machine-readable trajectory (--json) --- *)

(* One object per (experiment, implementation, parameter point)
   measurement, accumulated in reverse and written as one document at
   exit. The schema is stable: consumers key on [schema]. *)
let json_results : string list ref = ref []

let emit_json ~exp ~impl ~params ~ops_per_usec ~telemetry =
  if !json_path <> None then begin
    let params =
      String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" k v) params)
    in
    let tele =
      match telemetry with
      | Some s -> Nbhash_telemetry.Snapshot.to_json s
      | None -> "null"
    in
    json_results :=
      Printf.sprintf
        "{\"exp\":\"%s\",\"impl\":\"%s\",\"params\":{%s},\"ops_per_usec\":%.6f,\"telemetry\":%s}"
        exp impl params ops_per_usec tele
      :: !json_results
  end

let write_json () =
  match !json_path with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        Printf.fprintf oc
          "{\"schema\":\"nbhash-bench-v2\",\"mode\":\"%s\",\"meta\":%s,\"results\":[%s]}\n"
          (if !smoke then "smoke" else if !full then "full" else "quick")
          (Nbhash_telemetry.Meta.json ())
          (String.concat ",\n" (List.rev !json_results)));
    Printf.printf "\nwrote %d results to %s\n" (List.length !json_results) path

let write_trace () =
  match (!trace_path, Nbhash_telemetry.Trace.active ()) with
  | Some path, Some tr ->
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> Nbhash_telemetry.Trace.write_chrome oc tr);
    Printf.printf "wrote %d trace records to %s (open in Perfetto)\n"
      (Array.length (Nbhash_telemetry.Trace.records tr))
      path
  | _ -> ()

(* --- per-table telemetry accumulated under --telemetry --- *)

let telemetry_acc : (string * Nbhash_telemetry.Snapshot.t) list ref = ref []

let note_telemetry name = function
  | Some snap -> telemetry_acc := (name, snap) :: !telemetry_acc
  | None -> ()

(* Print (and clear) the snapshots gathered since the last flush,
   i.e. the rows of the table that was just rendered. *)
let flush_telemetry () =
  match List.rev !telemetry_acc with
  | [] -> ()
  | rows ->
    telemetry_acc := [];
    print_endline "telemetry (measurement window):";
    Report.print_telemetry rows

(* --- contention profile report (--profile) --- *)

(* Printed once, after every chosen section: the profiler state at
   this point covers the last measurement window (the Runner and the
   churn arms reset it in lockstep with the probe). With
   --profile-out, the same state is written as the /profile.json
   document so CI can cross-check the per-site sums against the
   probe's independently-counted cas_retry total at quiescence. *)
let profile_report () =
  match Nbhash_telemetry.Profile.active () with
  | None -> ()
  | Some p ->
    let module Pr = Nbhash_telemetry.Profile in
    let module Site = Nbhash_telemetry.Site in
    Report.print_heading
      "P: contention profile (last measurement window)";
    let legacy, extra_sources =
      match Nbhash_telemetry.Global.get () with
      | Nbhash_telemetry.Probe.Noop -> (-1, [])
      | Nbhash_telemetry.Probe.Recording r ->
        ( Nbhash_telemetry.Counters.read r.Nbhash_telemetry.Probe.counters
            Nbhash_telemetry.Event.Cas_retry,
          [
            ( "probe_counters",
              1,
              fun () ->
                Nbhash_telemetry.Counters.lane_totals
                  r.Nbhash_telemetry.Probe.counters );
          ] )
    in
    let ranked =
      List.filter (fun (id, _) -> Pr.retries p id > 0) (Site.all ())
      |> List.sort (fun (a, _) (b, _) ->
             compare (Pr.retries p b, a) (Pr.retries p a, b))
    in
    if ranked = [] then print_endline "no retries recorded"
    else begin
      let rows =
        List.map
          (fun (id, name) ->
            let gap = Pr.gap_summary p id in
            let g f =
              match gap with
              | None -> "-"
              | Some s -> Printf.sprintf "%.1f" (f s /. 1e3)
            in
            [
              name;
              string_of_int (Pr.retries p id);
              g (fun s -> s.Nbhash_util.Stats.median);
              g (fun s -> s.Nbhash_util.Stats.p99);
              string_of_int (Pr.alloc_words p id);
            ])
          ranked
      in
      Report.print_table
        ~header:
          [ "site"; "retries"; "gap p50 us"; "gap p99 us"; "alloc words" ]
        ~rows
    end;
    Printf.printf "per-site total %d, probe cas_retry %s\n"
      (Pr.total_retries p)
      (if legacy < 0 then "(no probe)" else string_of_int legacy);
    List.iter
      (fun r ->
        Printf.printf "false-sharing %-16s max ping-pong %.0f (%d lines)\n"
          r.Pr.source r.Pr.max_score
          (List.length r.Pr.lines))
      (Pr.false_sharing p);
    match !profile_out with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc
            (Pr.json_body ~legacy_cas_retry:legacy ~extra_sources p));
      Printf.printf "wrote contention profile to %s\n" path

(* The dynamic tables run with resizing enabled, as in the paper; the
   SplitOrder baseline is presized for each experiment ("optimized its
   configuration ... for the size of each experiment"). *)
let dynamic_policy = { Policy.default with init_buckets = 64 }

let policy_for name ~key_range =
  if name = "SplitOrder" || name = "Michael" then
    Policy.presized (max 64 (key_range / 2))
  else dynamic_policy

let make_table (name, (maker : Factory.maker)) ~key_range ~threads () =
  maker ~policy:(policy_for name ~key_range) ~max_threads:(threads + 2) ()

let throughput_of (name, maker) ~exp ~key_range ~lookup_ratio ~threads
    ~duration ~trials =
  let spec = Workload.spec ~lookup_ratio ~key_range () in
  let last, summary =
    Runner.run_trials
      (make_table (name, maker) ~key_range ~threads)
      ~threads ~spec ~duration ~trials
  in
  let median = summary.Nbhash_util.Stats.median in
  emit_json ~exp ~impl:name
    ~params:
      [
        ("threads", string_of_int threads);
        ("key_range", string_of_int key_range);
        ("lookup_ratio", Printf.sprintf "%.2f" lookup_ratio);
        ("duration", Printf.sprintf "%.2f" duration);
        ("trials", string_of_int trials);
      ]
    ~ops_per_usec:median ~telemetry:last.Runner.telemetry;
  note_telemetry name last.Runner.telemetry;
  median

(* ------------------------------------------------------------------ *)
(* F7: the microbenchmark grid of Figure 7.                            *)

let f7 () =
  Report.print_heading
    "F7: Microbenchmark throughput grid (Figure 7) [ops/usec]";
  let ratios =
    if !smoke then [ 0.9 ]
    else if !full then [ 0.0; 0.34; 0.9 ]
    else [ 0.0; 0.9 ]
  in
  let ranges =
    if !smoke then [ 1 lsl 8 ]
    else if !full then [ 1 lsl 8; 1 lsl 16; 1 lsl 20 ]
    else [ 1 lsl 8; 1 lsl 16 ]
  in
  let threads =
    if !smoke then [ 2 ] else if !full then [ 1; 2; 4; 8 ] else [ 1; 4 ]
  in
  let duration = if !smoke then 0.05 else if !full then 1.0 else 0.3 in
  let trials = if !smoke then 1 else if !full then 3 else 2 in
  List.iter
    (fun key_range ->
      List.iter
        (fun lookup_ratio ->
          Printf.printf "\n-- key range 2^%d, lookup ratio %.0f%% --\n"
            (Nbhash_util.Bits.log2 key_range)
            (lookup_ratio *. 100.);
          let header =
            "algorithm" :: List.map (Printf.sprintf "T=%d") threads
          in
          let rows =
            List.map
              (fun alg ->
                fst alg
                :: List.map
                     (fun t ->
                       Report.ops_per_usec
                         (throughput_of alg ~exp:"f7" ~key_range
                            ~lookup_ratio ~threads:t ~duration ~trials))
                     threads)
              Factory.all_nine
          in
          Report.print_table ~header ~rows;
          flush_telemetry ())
        ratios)
    ranges

(* ------------------------------------------------------------------ *)
(* T-x86: the textual claims of section 8.2 as a table.                *)

let x86 () =
  let key_range = if !smoke then 1 lsl 10 else 1 lsl 16 in
  Report.print_heading
    (Printf.sprintf "T-x86: section 8.2 comparison (range 2^%d) [ops/usec]"
       (Nbhash_util.Bits.log2 key_range));
  let threads = if !smoke then 2 else if !full then 4 else 1 in
  let duration = if !smoke then 0.1 else if !full then 1.0 else 0.4 in
  let trials = if !smoke then 1 else if !full then 5 else 3 in
  let ratios = [ 0.34; 0.9 ] in
  let cell alg lookup_ratio =
    throughput_of alg ~exp:"x86" ~key_range ~lookup_ratio ~threads ~duration
      ~trials
  in
  let results =
    List.map
      (fun alg -> (fst alg, List.map (cell alg) ratios))
      Factory.all_nine
  in
  let header =
    "algorithm"
    :: List.map (fun r -> Printf.sprintf "L=%.0f%%" (r *. 100.)) ratios
  in
  let rows =
    List.map (fun (n, xs) -> n :: List.map Report.ops_per_usec xs) results
  in
  Report.print_table ~header ~rows;
  flush_telemetry ();
  let get n = List.assoc n results in
  let ratio a b i = List.nth (get a) i /. List.nth (get b) i in
  Printf.printf
    "\nclaims: LFArrayOpt/LFArray = %.2f, %.2f (paper: little difference)\n"
    (ratio "LFArrayOpt" "LFArray" 0)
    (ratio "LFArrayOpt" "LFArray" 1);
  Printf.printf
    "        LFArray/SplitOrder = %.2f, %.2f (paper: >1 in most cases)\n"
    (ratio "LFArray" "SplitOrder" 0)
    (ratio "LFArray" "SplitOrder" 1);
  Printf.printf
    "        Adaptive/LFList at L=90%% = %.2f (paper: closes much of the gap)\n"
    (ratio "Adaptive" "LFList" 1);
  Printf.printf "        Adaptive/WFArray = %.2f, %.2f (paper: >1)\n"
    (ratio "Adaptive" "WFArray" 0)
    (ratio "Adaptive" "WFArray" 1)

(* ------------------------------------------------------------------ *)
(* A1: resize-policy ablation on LFArray.                              *)

let policy_ablation () =
  Report.print_heading
    "A1: resize-policy ablation, LFArray (heuristic and threshold sweep)";
  let key_range = 1 lsl 16 in
  let threads = if !full then 4 else 1 in
  let duration = if !full then 1.0 else 0.4 in
  let maker = Factory.by_name "LFArray" in
  let spec = Workload.spec ~lookup_ratio:0.34 ~key_range () in
  let variants =
    [
      ("presized (off)", Policy.presized (key_range / 2));
      ( "load 3.0/0.75",
        {
          dynamic_policy with
          heuristic = Policy.Load_factor { grow = 3.0; shrink = 0.75 };
        } );
      ( "load 6.0/1.5",
        {
          dynamic_policy with
          heuristic = Policy.Load_factor { grow = 6.0; shrink = 1.5 };
        } );
      ( "load 12.0/3.0",
        {
          dynamic_policy with
          heuristic = Policy.Load_factor { grow = 12.0; shrink = 3.0 };
        } );
      ( "bucket 8 (paper)",
        {
          dynamic_policy with
          heuristic =
            Policy.Bucket_size
              {
                grow_threshold = 8;
                shrink_threshold = 2;
                shrink_samples = 4;
                shrink_period = 64;
              };
        } );
      ( "bucket 16 (paper)",
        {
          dynamic_policy with
          heuristic =
            Policy.Bucket_size
              {
                grow_threshold = 16;
                shrink_threshold = 2;
                shrink_samples = 4;
                shrink_period = 64;
              };
        } );
    ]
  in
  let rows =
    List.map
      (fun (label, policy) ->
        let table = maker ~policy ~max_threads:(threads + 2) () in
        let r = Runner.run table ~threads ~spec ~duration () in
        let stats = table.Factory.resize_stats () in
        table.Factory.close ();
        [
          label;
          Report.ops_per_usec r.Runner.throughput;
          string_of_int r.Runner.final_buckets;
          Printf.sprintf "%.1f"
            (float_of_int r.Runner.final_cardinal
            /. float_of_int r.Runner.final_buckets);
          string_of_int stats.Nbhash.Hashset_intf.grows;
          string_of_int stats.Nbhash.Hashset_intf.shrinks;
        ])
      variants
  in
  Report.print_table
    ~header:[ "policy"; "ops/usec"; "buckets"; "avg bucket"; "grows"; "shrinks" ]
    ~rows;
  print_endline
    "(the paper's per-bucket heuristic has no hysteresis: steady-state tail \
     buckets keep\n\
    \ re-triggering grows, which is why the count-based band is the default \
     here)"

(* ------------------------------------------------------------------ *)
(* A2: Fastpath/Slowpath threshold sweep under resize churn.           *)

let adaptive_ablation () =
  Report.print_heading
    "A2: Adaptive fast-path threshold sweep (aggressive resizing)";
  let key_range = 1 lsl 8 in
  let threads = if !full then 4 else 2 in
  let duration = if !full then 1.0 else 0.25 in
  let spec = Workload.spec ~lookup_ratio:0. ~key_range () in
  let rows =
    List.map
      (fun fast_threshold ->
        let maker = Factory.adaptive_tuned ~fast_threshold in
        let table =
          maker ~policy:Policy.aggressive ~max_threads:(threads + 2) ()
        in
        let r = Runner.run table ~threads ~spec ~duration () in
        let stats = table.Factory.resize_stats () in
        table.Factory.close ();
        [
          string_of_int fast_threshold;
          Report.ops_per_usec r.Runner.throughput;
          string_of_int r.Runner.final_buckets;
          string_of_int
            (stats.Nbhash.Hashset_intf.grows
            + stats.Nbhash.Hashset_intf.shrinks);
        ])
      [ 16; 64; 256; 1024 ]
  in
  Report.print_table
    ~header:[ "threshold"; "ops/usec"; "buckets"; "resizes" ]
    ~rows;
  print_endline
    "(paper: 256 'virtually guarantees no fallbacks' - the series should be \
     flat)"

(* ------------------------------------------------------------------ *)
(* A3: shrink capability - the headline delta vs SplitOrder.           *)

let shrink_demo () =
  Report.print_heading
    "A3: dynamic shrinking (LFArray) vs grow-only baseline (SplitOrder)";
  let n = if !full then 1 lsl 17 else 1 lsl 14 in
  let lf = Factory.by_name "LFArray" ~policy:Policy.aggressive () in
  let so =
    Factory.by_name "SplitOrder"
      ~policy:
        {
          Policy.default with
          heuristic = Policy.Load_factor { grow = 2.0; shrink = 0.5 };
        }
      ()
  in
  let phase_rows = ref [] in
  let record phase =
    phase_rows :=
      [
        phase;
        string_of_int (lf.Factory.bucket_count ());
        string_of_int (so.Factory.bucket_count ());
        string_of_int (lf.Factory.cardinal ());
      ]
      :: !phase_rows
  in
  let lh = lf.Factory.new_handle () and sh = so.Factory.new_handle () in
  record "empty";
  for k = 0 to n - 1 do
    ignore (lh.Factory.ins k);
    ignore (sh.Factory.ins k)
  done;
  record (Printf.sprintf "after %d inserts" n);
  for k = 0 to n - 1 do
    ignore (lh.Factory.rem k);
    ignore (sh.Factory.rem k)
  done;
  record "after removing all";
  (* Further removes keep exercising the shrink heuristic. *)
  for k = 0 to (4 * n) - 1 do
    ignore (lh.Factory.rem (k land (n - 1)));
    ignore (sh.Factory.rem (k land (n - 1)))
  done;
  record "after idle churn";
  Report.print_table
    ~header:[ "phase"; "LFArray buckets"; "SplitOrder buckets"; "cardinal" ]
    ~rows:(List.rev !phase_rows);
  lf.Factory.close ();
  so.Factory.close ();
  print_endline
    "(the paper's motivation: SplitOrder can only grow; our table returns to \
     a small bucket array)"

(* ------------------------------------------------------------------ *)
(* E1 (extension, not in the paper): key-popularity skew. Zipfian
   traffic concentrates updates on a few buckets; copy-on-write array
   buckets pay repeated whole-bucket copies on the hot keys, while the
   one-node-per-update lists are less sensitive.                       *)

let skew_bench () =
  Report.print_heading
    "E1: key-popularity skew (Zipf) [ops/usec] - extension beyond the paper";
  let key_range = 1 lsl 14 in
  let threads = if !full then 4 else 1 in
  let duration = if !full then 1.0 else 0.3 in
  let trials = if !full then 3 else 2 in
  let exponents = [ 0.0; 0.8; 1.2 ] in
  let algos =
    [ "SplitOrder"; "LFArray"; "LFArrayOpt"; "LFList"; "LFUlist"; "Locked" ]
  in
  let rows =
    List.map
      (fun name ->
        let maker = Factory.by_name name in
        name
        :: List.map
             (fun s ->
               let dist =
                 if s = 0.0 then Workload.Uniform else Workload.Zipf s
               in
               let spec =
                 Workload.spec ~lookup_ratio:0.34 ~dist ~key_range ()
               in
               let make () =
                 maker
                   ~policy:(policy_for name ~key_range)
                   ~max_threads:(threads + 2) ()
               in
               let _, summary =
                 Runner.run_trials make ~threads ~spec ~duration ~trials
               in
               Report.ops_per_usec summary.Nbhash_util.Stats.median)
             exponents)
      algos
  in
  Report.print_table
    ~header:
      ("algorithm" :: List.map (Printf.sprintf "zipf s=%.1f") exponents)
    ~rows

(* ------------------------------------------------------------------ *)
(* M1 (extension): the future-work map variants. Single-thread mixed
   put/get/remove throughput for the lock-free map, the wait-free map,
   and a mutex-protected stdlib Hashtbl.                               *)

let map_bench () =
  Report.print_heading
    "M1: map extension throughput (put/get/remove) [ops/usec]";
  let key_range = 1 lsl 14 in
  let iters = if !full then 2_000_000 else 400_000 in
  let run_map name ~put ~get ~del =
    let rng = Nbhash_util.Xoshiro.create 4096 in
    (* steady state: prepopulate half the range *)
    for k = 0 to (key_range / 2) - 1 do
      put (k * 2) k
    done;
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      let k = Nbhash_util.Xoshiro.below rng key_range in
      match Nbhash_util.Xoshiro.below rng 4 with
      | 0 -> put k k
      | 1 -> ignore (del k)
      | _ -> ignore (get k)
    done;
    let dt = Unix.gettimeofday () -. t0 in
    [ name; Report.ops_per_usec (Float.of_int iters /. (dt *. 1e6)) ]
  in
  let lf () =
    let t = Nbhash.Hashmap.create () in
    let h = Nbhash.Hashmap.register t in
    run_map "Hashmap (lock-free)"
      ~put:(fun k v -> ignore (Nbhash.Hashmap.put h k v))
      ~get:(fun k -> Option.is_some (Nbhash.Hashmap.get h k))
      ~del:(fun k -> Option.is_some (Nbhash.Hashmap.remove h k))
  in
  let wf () =
    let t = Nbhash.Wf_hashmap.create ~max_threads:4 () in
    let h = Nbhash.Wf_hashmap.register t in
    run_map "Wf_hashmap (wait-free)"
      ~put:(fun k v -> ignore (Nbhash.Wf_hashmap.put h k v))
      ~get:(fun k -> Option.is_some (Nbhash.Wf_hashmap.get h k))
      ~del:(fun k -> Option.is_some (Nbhash.Wf_hashmap.remove h k))
  in
  let locked () =
    let tbl = Hashtbl.create 64 in
    let m = Mutex.create () in
    let guard f = Mutex.lock m; Fun.protect ~finally:(fun () -> Mutex.unlock m) f in
    run_map "Hashtbl+mutex"
      ~put:(fun k v -> guard (fun () -> Hashtbl.replace tbl k v))
      ~get:(fun k -> guard (fun () -> Hashtbl.mem tbl k))
      ~del:(fun k ->
        guard (fun () ->
            let p = Hashtbl.mem tbl k in
            Hashtbl.remove tbl k;
            p))
  in
  Report.print_table
    ~header:[ "map"; "ops/usec" ]
    ~rows:[ lf (); wf (); locked () ]

(* ------------------------------------------------------------------ *)
(* A5: memory footprint per element.                                   *)

let memory_bench () =
  Report.print_heading "A5: live heap footprint (words/element, via Obj)";
  let n = if !full then 1 lsl 16 else 1 lsl 13 in
  let rows =
    List.map
      (fun ((name, maker) : string * Factory.maker) ->
        let table = maker ~policy:(policy_for name ~key_range:(2 * n)) () in
        let ops = table.Factory.new_handle () in
        for k = 0 to n - 1 do
          ignore (ops.Factory.ins k)
        done;
        let words = Obj.reachable_words (Obj.repr table) in
        let row =
          [
            name;
            string_of_int words;
            Printf.sprintf "%.1f" (float_of_int words /. float_of_int n);
            string_of_int (table.Factory.bucket_count ());
          ]
        in
        table.Factory.close ();
        row)
      Factory.with_michael
  in
  Report.print_table
    ~header:[ "table"; "total words"; "words/elem"; "buckets" ]
    ~rows;
  print_endline
    "(SplitOrder's footprint includes its permanent dummy nodes and segment \
     directory)"

(* ------------------------------------------------------------------ *)
(* Bechamel-based latency sections.                                    *)

let run_bechamel ~name tests =
  let open Bechamel in
  let quota = if !full then 0.5 else 0.2 in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None ()
  in
  let raw =
    Benchmark.all cfg
      Toolkit.Instance.[ monotonic_clock ]
      (Test.make_grouped ~name tests)
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun k v acc ->
        let ns =
          match Analyze.OLS.estimates v with
          | Some (x :: _) -> x
          | Some [] | None -> nan
        in
        (k, ns) :: acc)
      results []
    |> List.sort compare
  in
  Report.print_table
    ~header:[ "benchmark"; "ns/op" ]
    ~rows:(List.map (fun (k, ns) -> [ k; Printf.sprintf "%.1f" ns ]) rows)

(* A4: per-bucket FSet representation latency (section 6's locality
   argument, at realistic bucket occupancies). *)
let fset_bench () =
  Report.print_heading "A4: FSet bucket-representation latency";
  let open Bechamel in
  let occupancies = [ 2; 8; 32 ] in
  let make_lf (module F : Nbhash_fset.Fset_intf.S) id =
    List.concat_map
      (fun n ->
        let elems = Array.init n (fun i -> i * 2) in
        let t = F.create elems in
        let probe = n in
        (* absent key: worst-case scan *)
        [
          Test.make
            ~name:(Printf.sprintf "%s contains n=%d" id n)
            (Staged.stage (fun () -> F.has_member t probe));
          Test.make
            ~name:(Printf.sprintf "%s ins+rem n=%d" id n)
            (Staged.stage (fun () ->
                 let op = F.make_op Nbhash_fset.Fset_intf.Ins probe in
                 ignore (F.invoke t op);
                 let op = F.make_op Nbhash_fset.Fset_intf.Rem probe in
                 ignore (F.invoke t op)));
        ])
      occupancies
  in
  let make_wf (module F : Nbhash_fset.Fset_intf.WF) id =
    let prio = Atomic.make 1 in
    List.concat_map
      (fun n ->
        let elems = Array.init n (fun i -> i * 2) in
        let t = F.create elems in
        let probe = n in
        [
          Test.make
            ~name:(Printf.sprintf "%s contains n=%d" id n)
            (Staged.stage (fun () -> F.has_member t probe));
          Test.make
            ~name:(Printf.sprintf "%s ins+rem n=%d" id n)
            (Staged.stage (fun () ->
                 let op =
                   F.make_op Nbhash_fset.Fset_intf.Ins probe
                     ~prio:(Atomic.fetch_and_add prio 1)
                 in
                 ignore (F.invoke t op);
                 let op =
                   F.make_op Nbhash_fset.Fset_intf.Rem probe
                     ~prio:(Atomic.fetch_and_add prio 1)
                 in
                 ignore (F.invoke t op)));
        ])
      occupancies
  in
  run_bechamel ~name:"fset"
    (make_lf (module Nbhash_fset.Lf_array_fset) "lf-array"
    @ make_lf (module Nbhash_fset.Lf_list_fset) "lf-list"
    @ make_lf (module Nbhash_fset.Flat_fset) "lf-flat"
    @ make_wf (module Nbhash_fset.Wf_array_fset) "wf-array"
    @ make_wf (module Nbhash_fset.Wf_list_fset) "wf-list")

(* L1: single-thread operation latency per table (the left edge of
   Figure 7). One Bechamel Test.make per table. *)
let latency_bench () =
  Report.print_heading "L1: single-thread mixed-operation latency per table";
  let open Bechamel in
  let key_range = 1 lsl 16 in
  let spec = Workload.spec ~lookup_ratio:0.34 ~key_range () in
  let tables = ref [] in
  let tests =
    List.map
      (fun ((name, maker) : string * Factory.maker) ->
        let table =
          maker ~policy:(policy_for name ~key_range) ~max_threads:4 ()
        in
        tables := table :: !tables;
        Runner.prepopulate table spec ~seed:7;
        let ops = table.Factory.new_handle () in
        let rng = Nbhash_util.Xoshiro.create 99 in
        Test.make ~name
          (Staged.stage (fun () ->
               match Workload.next spec rng with
               | Workload.Lookup, k -> ignore (ops.Factory.look k)
               | Workload.Insert, k -> ignore (ops.Factory.ins k)
               | Workload.Remove, k -> ignore (ops.Factory.rem k))))
      Factory.with_michael
  in
  run_bechamel ~name:"table" tests;
  List.iter (fun t -> t.Factory.close ()) !tables

(* ------------------------------------------------------------------ *)
(* C1: grow/shrink churn — migration-tail latency with the cooperative
   sweep (eager helpers) vs the lazy [init_bucket] backstop alone.
   Worker domains run a 50/50 insert/remove mix and time every
   operation while a dedicated domain storms forced grows and shrinks,
   so a sizable fraction of operations lands inside a migration
   window. The eager arm lets those operations claim whole chunks
   (finishing the window quickly); the lazy arm makes each of them pay
   per-bucket freeze-and-copy until the window drains. The headline
   number is the per-operation p99 across the whole run.              *)

let churn_bench () =
  Report.print_heading
    "C1: grow/shrink churn - per-op latency, eager sweep vs lazy-only [ns]";
  (* Scope an installed flight recorder to this section: the trace
     written at exit then covers the churn arms (the most temporally
     interesting part of the suite — resize windows, sweeps, freezes,
     and worker updates interleaving). *)
  (match Nbhash_telemetry.Trace.active () with
  | Some tr -> Nbhash_telemetry.Trace.clear tr
  | None -> ());
  let workers = 4 in
  let key_range = 1 lsl 17 in
  let duration = if !smoke then 0.8 else if !full then 4.0 else 2.0 in
  let storm_gap = 0.25 in
  let cap = 2_000_000 in
  (* RESIZE completes the PREVIOUS migration and installs a fresh
     all-nil head, so each forced resize opens a window that stays
     open for the whole storm gap unless someone drains it. The table
     is large relative to the ops in one gap, so in the lazy arm most
     updates first-touch a nil bucket and pay the per-bucket
     freeze-and-copy tax for the entire window. In the eager arm the
     sweep cursor hands the whole table out within the first few
     thousand operations; the chunk is large so those helping ops are
     rare (well under 1% — they surface at p99.9, not p99) and
     everything after them runs on migrated buckets. *)
  let base = Policy.presized (key_range / 4) in
  let eager_policy =
    {
      base with
      Policy.migration = { Policy.eager = true; chunk = 64; max_helpers = 4 };
    }
  in
  let arm (impl, label, policy) =
    let tag = impl ^ "/" ^ label in
    let maker = Factory.by_name impl in
    let table = maker ~policy ~max_threads:(workers + 2) () in
    let seed = table.Factory.new_handle () in
    for k = 0 to key_range - 1 do
      if k land 1 = 0 then ignore (seed.Factory.ins k)
    done;
    if !telemetry then Nbhash_telemetry.Global.reset ();
    (* Keep the profiler's per-site sums in lockstep with the probe's
       cas_retry counter; they cover the same window or the CI
       cross-check is meaningless. *)
    (match Nbhash_telemetry.Profile.active () with
    | Some p -> Nbhash_telemetry.Profile.reset p
    | None -> ());
    let stop = Atomic.make false in
    let lats = Array.init workers (fun _ -> Array.make cap 0.) in
    let counts = Array.make workers 0 in
    let worker d () =
      let ops = table.Factory.new_handle () in
      let rng = Nbhash_util.Xoshiro.create (31 + d) in
      let a = lats.(d) in
      let n = ref 0 in
      while (not (Atomic.get stop)) && !n < cap do
        let k = Nbhash_util.Xoshiro.below rng key_range in
        (* The repo-wide clock (also behind probe spans and trace
           records), so a latency outlier here can be lined up against
           the flight-recorder stream on the same time axis. *)
        let t0 = Nbhash_util.Clock.now_ns () in
        (if Nbhash_util.Xoshiro.below rng 2 = 0 then ignore (ops.Factory.ins k)
         else ignore (ops.Factory.rem k));
        a.(!n) <- float_of_int (Nbhash_util.Clock.now_ns () - t0);
        incr n
      done;
      counts.(d) <- !n;
      ops.Factory.detach ()
    in
    let stormer () =
      let ops = table.Factory.new_handle () in
      let i = ref 0 in
      while not (Atomic.get stop) do
        incr i;
        ops.Factory.force_resize ~grow:(!i mod 2 = 0);
        (* Sleep, don't spin: the window belongs to the workers. *)
        Unix.sleepf storm_gap
      done;
      ops.Factory.detach ()
    in
    let ds =
      Domain.spawn stormer
      :: List.init workers (fun d -> Domain.spawn (worker d))
    in
    Unix.sleepf duration;
    Atomic.set stop true;
    List.iter Domain.join ds;
    table.Factory.check_invariants ();
    let total = Array.fold_left ( + ) 0 counts in
    let all = Array.make total 0. in
    let off = ref 0 in
    Array.iteri
      (fun d n ->
        Array.blit lats.(d) 0 all !off n;
        off := !off + n)
      counts;
    Array.sort compare all;
    let pct p = Nbhash_util.Stats.percentile_sorted all p in
    let p50 = pct 50. and p99 = pct 99. and p999 = pct 99.9 in
    let maxl = if total = 0 then 0. else all.(total - 1) in
    let stats = table.Factory.resize_stats () in
    let snap =
      if !telemetry then Some (Nbhash_telemetry.Global.snapshot ()) else None
    in
    emit_json ~exp:"churn" ~impl:tag
      ~params:
        [
          ("workers", string_of_int workers);
          ("key_range", string_of_int key_range);
          ("duration", Printf.sprintf "%.2f" duration);
          ("ops", string_of_int total);
          ("p50_ns", Printf.sprintf "%.0f" p50);
          ("p99_ns", Printf.sprintf "%.0f" p99);
          ("p999_ns", Printf.sprintf "%.0f" p999);
          ("max_ns", Printf.sprintf "%.0f" maxl);
        ]
      ~ops_per_usec:(Float.of_int total /. (duration *. 1e6))
      ~telemetry:snap;
    note_telemetry tag snap;
    table.Factory.close ();
    ( tag,
      p99,
      [
        tag;
        Report.ops_per_usec (Float.of_int total /. (duration *. 1e6));
        Printf.sprintf "%.0f" p50;
        Printf.sprintf "%.0f" p99;
        Printf.sprintf "%.0f" p999;
        Printf.sprintf "%.0f" maxl;
        string_of_int
          (stats.Nbhash.Hashset_intf.grows + stats.Nbhash.Hashset_intf.shrinks);
      ] )
  in
  let impls = [ "LFArrayOpt"; "LFFlat" ] in
  let arms =
    List.concat_map
      (fun impl ->
        [
          (impl, "eager-sweep", eager_policy);
          (impl, "lazy-only", Policy.lazy_migration base);
        ])
      impls
  in
  let results = List.map arm arms in
  Report.print_table
    ~header:
      [ "migration"; "ops/usec"; "p50"; "p99"; "p99.9"; "max"; "resizes" ]
    ~rows:(List.map (fun (_, _, row) -> row) results);
  flush_telemetry ();
  let p99_of tag =
    List.find_map (fun (t, p, _) -> if t = tag then Some p else None) results
  in
  List.iter
    (fun impl ->
      match (p99_of (impl ^ "/eager-sweep"), p99_of (impl ^ "/lazy-only")) with
      | Some eager_p99, Some lazy_p99 ->
        Printf.printf
          "\n%s migration-tail p99: eager %.0f ns vs lazy %.0f ns (%.2fx)\n"
          impl eager_p99 lazy_p99
          (lazy_p99 /. Float.max eager_p99 1.)
      | _ -> ())
    impls

(* ------------------------------------------------------------------ *)

let sections =
  [
    ("f7", f7);
    ("x86", x86);
    ("policy", policy_ablation);
    ("adaptive", adaptive_ablation);
    ("shrink", shrink_demo);
    ("skew", skew_bench);
    ("map", map_bench);
    ("memory", memory_bench);
    ("fset", fset_bench);
    ("latency", latency_bench);
    ("churn", churn_bench);
  ]

let () =
  let rec parse acc = function
    | [] -> List.rev acc
    | "--full" :: rest ->
      full := true;
      parse acc rest
    | "--smoke" :: rest ->
      smoke := true;
      parse acc rest
    | "--telemetry" :: rest ->
      telemetry := true;
      parse acc rest
    | "--json" :: path :: rest ->
      json_path := Some path;
      parse acc rest
    | [ "--json" ] ->
      prerr_endline "--json requires a path";
      exit 1
    | "--trace" :: path :: rest ->
      trace_path := Some path;
      parse acc rest
    | [ "--trace" ] ->
      prerr_endline "--trace requires a path";
      exit 1
    | "--profile" :: rest ->
      profile := true;
      parse acc rest
    | "--profile-out" :: path :: rest ->
      profile_out := Some path;
      parse acc rest
    | [ "--profile-out" ] ->
      prerr_endline "--profile-out requires a path";
      exit 1
    | "--serve" :: port :: rest -> (
      match int_of_string_opt port with
      | Some p when p >= 0 && p < 65536 ->
        serve_port := Some p;
        parse acc rest
      | _ ->
        prerr_endline "--serve requires a port number";
        exit 1)
    | [ "--serve" ] ->
      prerr_endline "--serve requires a port number";
      exit 1
    | a :: rest -> parse (a :: acc) rest
  in
  let args = parse [] (List.tl (Array.to_list Sys.argv)) in
  if !smoke then full := false;
  if !json_path <> None then telemetry := true;
  if !serve_port <> None then telemetry := true;
  if !profile_out <> None then profile := true;
  (* The cross-check in the profile report needs the probe's own
     cas_retry count alongside the per-site sums. *)
  if !profile then telemetry := true;
  if !telemetry then
    Nbhash_telemetry.Global.install (Nbhash_telemetry.Probe.recording ());
  if !profile then
    Nbhash_telemetry.Profile.install (Nbhash_telemetry.Profile.create ());
  if !trace_path <> None then
    Nbhash_telemetry.Trace.install
      (Nbhash_telemetry.Trace.create ~lanes:64 ~capacity:(1 lsl 14) ());
  let server =
    match !serve_port with
    | None -> None
    | Some port -> (
      match
        Nbhash_telemetry.Metrics_server.start ~port
          ~watchdog:(Nbhash_telemetry.Watchdog.global ())
          ()
      with
      | s ->
        Printf.printf "serving metrics on http://127.0.0.1:%d/metrics\n%!"
          (Nbhash_telemetry.Metrics_server.port s);
        Some s
      | exception Nbhash_telemetry.Metrics_server.Bind_error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1)
  in
  let chosen =
    match args with
    | [] | [ "all" ] -> List.map fst sections
    | names -> names
  in
  Printf.printf "nbhash benchmark harness (%s mode, %d cores visible)\n"
    (if !smoke then "smoke" else if !full then "full" else "quick")
    (Domain.recommended_domain_count ());
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None ->
        Printf.eprintf "unknown section %S; known: %s\n" name
          (String.concat ", " (List.map fst sections));
        exit 1)
    chosen;
  profile_report ();
  write_json ();
  write_trace ();
  Option.iter Nbhash_telemetry.Metrics_server.stop server
