(* Compare a fresh bench JSON against a checked-in baseline:

     bench_compare BASELINE.json FRESH.json [TOLERANCE]

   Each result is keyed on experiment, implementation, and the
   configuration parameters that identify a data point (threads or
   workers, key_range, lookup_ratio — whichever the experiment
   carries). For every key present in both files the throughput ratio
   fresh/baseline must lie within [1/TOLERANCE, TOLERANCE]; the
   default tolerance of 3x is deliberately loose — CI machines are
   noisy and heterogeneous — so a failure means a real regression (or
   a real speedup worth re-baselining), not jitter.

   Exits 1, with one line per offending configuration, if any ratio
   is out of band or if the two files share no keys at all (which
   means the comparison silently checked nothing). *)

module Json = Nbhash_util.Json

let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt

let load path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  match Json.parse s with
  | Ok j -> j
  | Error e -> fail "%s: %s" path e

(* One bench result -> a stable identity string for cross-file
   matching. Parameters that exist only in one experiment family
   (e.g. [workers] for churn, [lookup_ratio] for throughput) are
   simply absent from the other family's keys. The file-level [mode]
   and the per-result [duration] are part of the identity: a smoke
   result and a full result of the same configuration are different
   measurements (different run lengths, warmup fractions), and
   comparing them silently would make the tolerance check vacuous. *)
let key_of ~mode result =
  let params = Json.member "params" result in
  let piece name =
    match Option.bind params (Json.member name) with
    | Some (Json.Num f) -> Printf.sprintf "%s=%g" name f
    | _ -> ""
  in
  let str name =
    match Json.member name result with
    | Some (Json.Str s) -> name ^ "=" ^ s
    | _ -> ""
  in
  String.concat "|"
    (List.filter
       (fun s -> s <> "")
       [
         "mode=" ^ mode;
         str "exp";
         str "impl";
         piece "threads";
         piece "workers";
         piece "key_range";
         piece "lookup_ratio";
         piece "duration";
       ])

let results_of path j =
  (match Json.member "schema" j with
  | Some (Json.Str "nbhash-bench-v2") -> ()
  | Some (Json.Str other) ->
    fail "%s: schema %S, expected \"nbhash-bench-v2\"" path other
  | _ -> fail "%s: missing schema field" path);
  let mode =
    match Json.member "mode" j with
    | Some (Json.Str m) -> m
    | _ -> fail "%s: missing mode field" path
  in
  let results =
    match Option.bind (Json.member "results" j) Json.to_list with
    | Some l -> l
    | None -> fail "%s: missing results array" path
  in
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun r ->
      match Option.bind (Json.member "ops_per_usec" r) Json.to_num with
      | Some ops when Float.is_finite ops && ops > 0. ->
        Hashtbl.replace tbl (key_of ~mode r) ops
      | _ ->
        fail "%s: result %s has no positive ops_per_usec" path (key_of ~mode r))
    results;
  tbl

let () =
  let baseline_path, fresh_path, tolerance =
    match Array.to_list Sys.argv with
    | [ _; b; f ] -> (b, f, 3.0)
    | [ _; b; f; t ] -> (
      match float_of_string_opt t with
      | Some t when t > 1.0 -> (b, f, t)
      | _ -> fail "tolerance must be a float > 1, got %S" t)
    | _ -> fail "usage: bench_compare BASELINE.json FRESH.json [TOLERANCE]"
  in
  let baseline = results_of baseline_path (load baseline_path) in
  let fresh = results_of fresh_path (load fresh_path) in
  let shared = ref 0 in
  let bad = ref [] in
  Hashtbl.iter
    (fun key base_ops ->
      match Hashtbl.find_opt fresh key with
      | None -> ()
      | Some fresh_ops ->
        incr shared;
        let ratio = fresh_ops /. base_ops in
        if ratio < 1. /. tolerance || ratio > tolerance then
          bad := (key, base_ops, fresh_ops, ratio) :: !bad)
    baseline;
  if !shared = 0 then
    fail "no shared configurations between %s (%d) and %s (%d)" baseline_path
      (Hashtbl.length baseline) fresh_path (Hashtbl.length fresh);
  if !bad <> [] then begin
    Printf.eprintf
      "bench_compare: %d of %d configurations outside %gx tolerance:\n"
      (List.length !bad) !shared tolerance;
    List.iter
      (fun (key, b, f, r) ->
        Printf.eprintf "  %-70s baseline=%8.3f fresh=%8.3f ratio=%.2fx\n" key b
          f r)
      (List.sort compare !bad);
    exit 1
  end;
  Printf.printf "bench_compare: %d configurations within %gx of %s\n" !shared
    tolerance baseline_path
