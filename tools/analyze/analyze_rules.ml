(* Typed-AST concurrency analyzer over .cmt artifacts (DESIGN.md
   System 16).

   The textual lint in tools/lint is a fast pre-pass: it matches
   spellings, so [module S = Stdlib] followed by [S.Atomic.set] walks
   straight past it. This analyzer works on the *typed* tree the
   compiler already produced ([Cmt_format] artifacts of [dune build
   @check-cmt]), where every identifier carries its resolved [Path.t]:
   aliases, opens and includes are seen through by construction.

   Rule passes (ids are stable; tests and CI match on them):

     atomic-alias    a value, type or module path that resolves to
                     [Stdlib.Atomic] outside the [Nb_atomic] shim, or
                     an [Atomic] that cannot be proven to be the shim
     shared-mutable  a plain [mutable] record field of a type that the
                     escape heuristic considers domain-shared, or an
                     array/ref write to a shared container, without an
                     explicit [@nbhash.plain_ok "reason"]
     cas-rmw         an [Atomic.get] -> [Atomic.set] read-modify-write
                     pair on the same location inside one top-level
                     binding (ABA-prone; use [compare_and_set] or
                     attribute with [@nbhash.cas_ok "reason"])
     cas-ignored     a [compare_and_set] whose result is discarded
                     ([ignore ...] or [let _ = ...]) with no retry
     blocking-call   [Mutex] / [Condition] / [Semaphore] in a
                     nonblocking library
     obj-magic       [Obj.magic]
     attr-reason     an allowlist attribute with no reason string —
                     the audit trail is the point of the attribute

   Escape heuristic (what "domain-shared" means here): a type is
   shared if its constructor appears (transitively, through the type
   declarations of the analyzed units) in

     - the payload of an [Atomic.t] — anything published through an
       atomic is reachable by every domain;
     - the type of a module-level [let] binding that is not a
       function — process-global state;
     - the type of a value mentioned inside a closure passed to
       [Domain.spawn] — captured state crosses domains.

   Arrays and refs are tracked as containers: [array:<elt>] /
   [ref:<elt>] keys, scoped per compilation unit when the element type
   is a builtin (an [int array] inside Histogram does not make every
   [int array] in the repo shared). Known false-negative classes are
   documented in DESIGN.md System 16: sharing through closures not
   passed to [Domain.spawn] directly, [Bytes], [Hashtbl]-style stdlib
   containers whose mutation happens inside the stdlib, and functions
   stored in shared records (the walk stops at arrows).

   The analyzer is deliberately heuristic where escape is concerned
   and exact where name resolution is concerned: a violation from the
   atomic-alias / blocking-call / obj-magic / cas-* passes is a real,
   name-resolved fact about the code. *)

open Typedtree

type violation = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
}

let rule_atomic = "atomic-alias"
let rule_plain = "shared-mutable"
let rule_rmw = "cas-rmw"
let rule_ignored = "cas-ignored"
let rule_blocking = "blocking-call"
let rule_magic = "obj-magic"
let rule_attr = "attr-reason"

let all_rules =
  [
    rule_atomic;
    rule_plain;
    rule_rmw;
    rule_ignored;
    rule_blocking;
    rule_magic;
    rule_attr;
  ]

let pp_violation ppf v =
  Format.fprintf ppf "%s:%d:%d: [%s] %s" v.file v.line v.col v.rule v.message

(* ---------- paths ---------- *)

(* "Nbhash_util__Nb_atomic" (the persistent ident dune mangles) reads
   as the two components ["Nbhash_util"; "Nb_atomic"], so both
   spellings of a wrapped-library module normalize alike. *)
let split_mangled s =
  let rec go acc start i =
    if i + 1 >= String.length s then
      List.rev (String.sub s start (String.length s - start) :: acc)
    else if s.[i] = '_' && s.[i + 1] = '_' then
      go (String.sub s start (i - start) :: acc) (i + 2) (i + 2)
    else go acc start (i + 1)
  in
  if s = "" then [ s ] else go [] 0 0 |> List.filter (fun c -> c <> "")

let rec path_components p =
  match p with
  | Path.Pident id -> split_mangled (Ident.name id)
  | Path.Pdot (p, s) -> path_components p @ split_mangled s
  | Path.Papply (p, _) -> path_components p
  | _ -> [ Path.name p ] (* Pextra_ty and friends: opaque, match nothing *)

(* Expand the head component through the unit's [module X = P] alias
   table until a fixed point (bounded, alias cycles are illegal OCaml
   anyway). *)
let normalize aliases p =
  let rec expand fuel comps =
    match comps with
    | head :: rest when fuel > 0 -> (
        match Hashtbl.find_opt aliases head with
        | Some prefix -> expand (fuel - 1) (String.split_on_char '.' prefix @ rest)
        | None -> comps)
    | _ -> comps
  in
  String.concat "." (expand 10 (path_components p))

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let last = function [] -> "" | l -> List.nth l (List.length l - 1)

(* ---------- allowlist attributes ---------- *)

type allow = Atomic_ok | Plain_ok | Cas_ok | Blocking_ok | Magic_ok

let allow_of_name = function
  | "nbhash.atomic_ok" -> Some Atomic_ok
  | "nbhash.plain_ok" -> Some Plain_ok
  | "nbhash.cas_ok" -> Some Cas_ok
  | "nbhash.blocking_ok" -> Some Blocking_ok
  | "nbhash.magic_ok" -> Some Magic_ok
  | _ -> None

let attr_reason (a : Parsetree.attribute) =
  match a.attr_payload with
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ]
    when String.trim s <> "" ->
      Some s
  | _ -> None

(* ---------- shared-type keys ---------- *)

let builtin_heads =
  [
    "int"; "float"; "bool"; "char"; "string"; "bytes"; "unit"; "exn";
    "int32"; "int64"; "nativeint"; "list"; "option"; "result"; "lazy_t";
    "Stdlib.format6"; "format6";
  ]

(* Candidate keys under which a type constructor is known: its last
   two dotted components, plus the last three when available. A bare
   local name is qualified with the unit's simple module name, so
   [t] inside Lf_fset and [Lf_fset.t] from outside coincide. *)
let keys_of_comps ~umod comps =
  match comps with
  | [] -> []
  | [ x ] ->
      if List.mem x builtin_heads then [] else [ umod ^ "." ^ x ]
  | comps ->
      let n = List.length comps in
      let from k =
        String.concat "." (List.filteri (fun i _ -> i >= n - k) comps)
      in
      if n >= 3 then [ from 2; from 3 ] else [ from 2 ]

let is_atomic_ty comps =
  match List.rev comps with
  | "t" :: prev :: _ -> prev = "Atomic" || prev = "Nb_atomic"
  | _ -> false

let container_of comps =
  match comps with
  | [ "array" ] -> Some "array"
  | [ "ref" ] | [ "Stdlib"; "ref" ] -> Some "ref"
  | _ -> None

(* The per-unit scope of container keys over builtin elements. *)
let elt_key ~umod (ty : Types.type_expr) =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> (
      let comps = path_components p in
      match comps with
      | [ x ] when List.mem x builtin_heads -> x ^ "@" ^ umod
      | [] -> "poly@" ^ umod
      | comps -> (
          match keys_of_comps ~umod comps with
          | k :: _ -> k
          | [] -> last comps ^ "@" ^ umod))
  | _ -> "poly@" ^ umod

(* Walk a [Types.type_expr]; call [emit key ~under_atomic] for every
   type-constructor / container key. Stops at arrows: a function in a
   shared slot does not share what its type mentions. *)
let walk_ty ~umod ~emit ty =
  let visited = Hashtbl.create 16 in
  let rec go under ty =
    let id = Types.get_id ty in
    if not (Hashtbl.mem visited id) then begin
      Hashtbl.add visited id ();
      match Types.get_desc ty with
      | Types.Tarrow _ -> ()
      | Types.Ttuple ts -> List.iter (go under) ts
      | Types.Tpoly (t, _) -> go under t
      | Types.Tconstr (p, args, _) ->
          let comps = path_components p in
          if is_atomic_ty comps then List.iter (go true) args
          else begin
            (match container_of comps with
            | Some kind ->
                (match args with
                | [ elt ] -> emit (kind ^ ":" ^ elt_key ~umod elt) ~under_atomic:under
                | _ -> ())
            | None ->
                List.iter (fun k -> emit k ~under_atomic:under)
                  (keys_of_comps ~umod comps));
            List.iter (go under) args
          end
      | _ -> ()
    end
  in
  go false ty

(* ---------- per-unit facts ---------- *)

type mfield = {
  f_keys : string list;  (* candidate keys of the declaring type *)
  f_tname : string;  (* last component of the type's name *)
  f_name : string;
  f_allowed : bool;
  f_loc : Location.t;
}

type facts = {
  u_cmt : string;
  u_mod : string;  (* simple module name, e.g. "Lf_fset" *)
  u_str : structure;
  u_aliases : (string, string) Hashtbl.t;
  u_local_mods : (string, unit) Hashtbl.t;
  mutable u_mfields : mfield list;
  mutable u_seeds : string list;
  mutable u_edges : (string * string list) list;
}

let loc_triple (loc : Location.t) =
  let p = loc.loc_start in
  (p.pos_fname, p.pos_lnum, p.pos_cnum - p.pos_bol)

let mkviol ?loc ~fallback_file rule message =
  let file, line, col =
    match loc with
    | Some l when not l.Location.loc_ghost -> loc_triple l
    | Some l -> loc_triple l
    | None -> (fallback_file, 1, 0)
  in
  let file = if file = "" || file = "_none_" then fallback_file else file in
  { file; line; col; rule; message }

(* Reasonless allowlist attributes are themselves violations: the
   grep-able audit trail is the point. The allow is still granted so a
   missing reason reports once, not twice. [viol] is the raw
   [violation -> unit] sink. *)
let allows_of_attrs ~viol (attrs : Parsetree.attributes) =
  List.filter_map
    (fun (a : Parsetree.attribute) ->
      match allow_of_name a.attr_name.txt with
      | None -> None
      | Some cls ->
          (match attr_reason a with
          | Some _ -> ()
          | None ->
              viol
                (mkviol ~loc:a.attr_loc ~fallback_file:a.attr_name.txt
                   rule_attr
                   (Printf.sprintf
                      "[@%s] needs a reason string: [@%s \"why this is \
                       safe\"]"
                      a.attr_name.txt a.attr_name.txt)));
          Some cls)
    attrs

(* Unwrap [Tmod_constraint] to see the underlying module expression. *)
let rec mod_root (m : module_expr) =
  match m.mod_desc with
  | Tmod_constraint (m, _, _, _) -> mod_root m
  | d -> d

let simple_modname modname = last (split_mangled modname)

(* ---------- pass 1: collect aliases, declarations, seeds, edges ---------- *)

let collect_facts ~cmt_path ~modname (str : structure) ~viol =
  let umod = simple_modname modname in
  let u =
    {
      u_cmt = cmt_path;
      u_mod = umod;
      u_str = str;
      u_aliases = Hashtbl.create 8;
      u_local_mods = Hashtbl.create 8;
      u_mfields = [];
      u_seeds = [];
      u_edges = [];
    }
  in
  let mod_stack = ref [] in
  let record_module id mexpr =
    match (id, mod_root mexpr) with
    | Some id, Tmod_ident (p, _) ->
        Hashtbl.replace u.u_aliases (Ident.name id)
          (String.concat "." (path_components p))
    | Some id, _ -> Hashtbl.replace u.u_local_mods (Ident.name id) ()
    | None, _ -> ()
  in
  let seed k = u.u_seeds <- k :: u.u_seeds in
  (* Walk the types of a type declaration's components: everything
     mentioned is an edge target of the declaring key; anything under
     an Atomic.t is immediately shared. *)
  let decl_targets = ref [] in
  let emit_decl k ~under_atomic =
    decl_targets := k :: !decl_targets;
    if under_atomic then seed k
  in
  let field_allows (ld : label_declaration) decl_attrs =
    let attrs =
      ld.ld_attributes @ ld.ld_type.ctyp_attributes @ decl_attrs
    in
    List.mem Plain_ok (allows_of_attrs ~viol attrs)
  in
  let record_labels ~keys ~tname ~decl_attrs lds =
    List.iter
      (fun (ld : label_declaration) ->
        walk_ty ~umod ~emit:emit_decl ld.ld_type.ctyp_type;
        if ld.ld_mutable = Mutable then
          u.u_mfields <-
            {
              f_keys = keys;
              f_tname = tname;
              f_name = ld.ld_name.txt;
              f_allowed = field_allows ld decl_attrs;
              f_loc = ld.ld_loc;
            }
            :: u.u_mfields)
      lds
  in
  let type_declaration _it (td : type_declaration) =
    let tname = td.typ_name.txt in
    let owner = match !mod_stack with m :: _ -> m | [] -> umod in
    (* Register under both the enclosing-module key and the unit key:
       a type declared inside [module Make (E) = struct ...] is used
       same-unit under its bare name (which [keys_of_comps] qualifies
       with the unit name), so the declaration must answer to both. *)
    let keys =
      (owner ^ "." ^ tname)
      :: (if owner <> umod then [ umod ^ "." ^ tname ] else [])
    in
    decl_targets := [];
    (match td.typ_kind with
    | Ttype_record lds ->
        record_labels ~keys ~tname ~decl_attrs:td.typ_attributes lds
    | Ttype_variant cds ->
        List.iter
          (fun (cd : constructor_declaration) ->
            match cd.cd_args with
            | Cstr_tuple cts ->
                List.iter
                  (fun (ct : core_type) ->
                    walk_ty ~umod ~emit:emit_decl ct.ctyp_type)
                  cts
            | Cstr_record lds ->
                (* inline record: values print as [t.C] *)
                record_labels
                  ~keys:(keys @ [ tname ^ "." ^ cd.cd_name.txt ])
                  ~tname:cd.cd_name.txt ~decl_attrs:td.typ_attributes lds)
          cds
    | Ttype_abstract | Ttype_open -> ());
    (match td.typ_manifest with
    | Some ct -> walk_ty ~umod ~emit:emit_decl ct.ctyp_type
    | None -> ());
    List.iter (fun k -> u.u_edges <- (k, !decl_targets) :: u.u_edges) keys
  in
  (* Seeds: every expression type's Atomic payloads; module-level
     non-function bindings; values mentioned in Domain.spawn'd
     closures. *)
  let emit_expr k ~under_atomic = if under_atomic then seed k in
  let seed_spawned_closure fn =
    let it =
      {
        Tast_iterator.default_iterator with
        expr =
          (fun it e ->
            (match e.exp_desc with
            | Texp_ident (_, _, _) ->
                walk_ty ~umod
                  ~emit:(fun k ~under_atomic:_ -> seed k)
                  e.exp_type
            | _ -> ());
            Tast_iterator.default_iterator.expr it e);
      }
    in
    it.expr it fn
  in
  let expr it (e : expression) =
    walk_ty ~umod ~emit:emit_expr e.exp_type;
    (match e.exp_desc with
    | Texp_letmodule (id, _, _, mexpr, _) -> record_module id mexpr
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) ->
        let n = normalize u.u_aliases p in
        if n = "Stdlib.Domain.spawn" || n = "Domain.spawn" then
          List.iter
            (function _, Some fn -> seed_spawned_closure fn | _ -> ())
            args
    | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let structure_item it (si : structure_item) =
    (match si.str_desc with
    | Tstr_module mb -> record_module mb.mb_id mb.mb_expr
    | Tstr_value (_, vbs) ->
        List.iter
          (fun (vb : value_binding) ->
            walk_ty ~umod
              ~emit:(fun k ~under_atomic:_ -> seed k)
              vb.vb_pat.pat_type)
          vbs
    | _ -> ());
    Tast_iterator.default_iterator.structure_item it si
  in
  let module_binding it (mb : module_binding) =
    let name =
      match mb.mb_id with Some id -> Some (Ident.name id) | None -> None
    in
    (match name with Some n -> mod_stack := n :: !mod_stack | None -> ());
    Tast_iterator.default_iterator.module_binding it mb;
    match name with Some _ -> mod_stack := List.tl !mod_stack | None -> ()
  in
  let it =
    {
      Tast_iterator.default_iterator with
      expr;
      structure_item;
      type_declaration;
      module_binding;
    }
  in
  it.structure it str;
  u

(* ---------- sharing propagation ---------- *)

let propagate (units : facts list) =
  let shared = Hashtbl.create 64 in
  let edges = Hashtbl.create 64 in
  List.iter
    (fun u ->
      List.iter
        (fun (k, targets) ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt edges k) in
          Hashtbl.replace edges k (targets @ prev))
        u.u_edges)
    units;
  let queue = Queue.create () in
  let mark k =
    if not (Hashtbl.mem shared k) then begin
      Hashtbl.add shared k ();
      Queue.add k queue
    end
  in
  List.iter (fun u -> List.iter mark u.u_seeds) units;
  while not (Queue.is_empty queue) do
    let k = Queue.pop queue in
    (* a shared container shares its (non-builtin) element type *)
    (match String.index_opt k ':' with
    | Some i ->
        let elt = String.sub k (i + 1) (String.length k - i - 1) in
        if not (String.contains elt '@') then mark elt
    | None -> ());
    match Hashtbl.find_opt edges k with
    | Some targets -> List.iter mark targets
    | None -> ()
  done;
  shared

(* ---------- pass 2: rule checks ---------- *)

let atomic_op_prefixes =
  [ "Stdlib.Atomic."; "Nbhash_util.Nb_atomic."; "Atomic." ]

let atomic_op n =
  if
    List.exists (fun p -> starts_with ~prefix:p n) atomic_op_prefixes
    (* Real/Traced backends of the shim count too *)
    || (let comps = String.split_on_char '.' n in
        List.mem "Nb_atomic" comps)
  then
    match List.rev (String.split_on_char '.' n) with
    | op :: _ -> Some op
    | [] -> None
  else None

let blocking_prefixes =
  [
    "Stdlib.Mutex."; "Stdlib.Condition."; "Stdlib.Semaphore.";
    "Mutex."; "Condition."; "Semaphore."; "Thread."; "Stdlib.Thread.";
  ]

let blocking_modules =
  [
    "Stdlib.Mutex"; "Stdlib.Condition"; "Stdlib.Semaphore";
    "Mutex"; "Condition"; "Semaphore"; "Thread"; "Stdlib.Thread";
  ]

let array_writes =
  [
    ("Stdlib.Array.set", 0); ("Stdlib.Array.unsafe_set", 0);
    ("Stdlib.Array.fill", 0); ("Stdlib.Array.blit", 2);
    ("Array.set", 0); ("Array.unsafe_set", 0);
    ("Array.fill", 0); ("Array.blit", 2);
  ]

let ref_writes = [ "Stdlib.:="; "Stdlib.incr"; "Stdlib.decr" ]

let check_unit ~shared ~flagged_fields ~allowed_fields (u : facts) ~viol =
  let raw_viol = viol in
  let fallback = u.u_cmt in
  let viol ?loc rule msg =
    raw_viol (mkviol ?loc ~fallback_file:fallback rule msg)
  in
  let norm p = normalize u.u_aliases p in
  let allows = ref [] in
  let allowed cls = List.mem cls !allows in
  let allows_of attrs = allows_of_attrs ~viol:raw_viol attrs in
  let grant attrs = allows := allows_of attrs @ !allows in
  (* shared-mutable: mutable field declarations of shared types *)
  List.iter
    (fun f ->
      if
        (not f.f_allowed)
        && List.exists (fun k -> Hashtbl.mem shared k) f.f_keys
      then
        viol ~loc:f.f_loc rule_plain
          (Printf.sprintf
             "mutable field '%s' of domain-shared type %s needs \
              [@nbhash.plain_ok \"reason\"] (or an atomic)"
             f.f_name
             (match f.f_keys with k :: _ -> k | [] -> f.f_tname)))
    u.u_mfields;
  (* per-top-level-binding get/set RMW scope *)
  let scope_gets : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let scope_sets = ref [] in
  let rec lvalue_key (e : expression) =
    match e.exp_desc with
    | Texp_ident (p, _, _) -> Some (norm p)
    | Texp_field (e', _, lbl) ->
        Option.map (fun k -> k ^ "." ^ lbl.lbl_name) (lvalue_key e')
    | _ -> None
  in
  let positional args =
    List.filter_map (function Asttypes.Nolabel, Some a -> Some a | _ -> None) args
  in
  let is_cas_apply (e : expression) =
    match e.exp_desc with
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
        match atomic_op (norm p) with
        | Some "compare_and_set" -> List.length (positional args) = 3
        | _ -> false)
    | _ -> false
  in
  let head_keys (ty : Types.type_expr) =
    match Types.get_desc ty with
    | Types.Tconstr (p, _, _) -> keys_of_comps ~umod:u.u_mod (path_components p)
    | _ -> []
  in
  let container_key (ty : Types.type_expr) =
    match Types.get_desc ty with
    | Types.Tconstr (p, [ elt ], _) -> (
        match container_of (path_components p) with
        | Some kind -> Some (kind ^ ":" ^ elt_key ~umod:u.u_mod elt)
        | None -> None)
    | _ -> None
  in
  let check_value_path n loc =
    if starts_with ~prefix:"Stdlib.Atomic." n then begin
      if not (allowed Atomic_ok) then
        viol ~loc rule_atomic
          (Printf.sprintf
             "%s resolves to Stdlib.Atomic — go through the Nb_atomic shim \
              (or justify with [@nbhash.atomic_ok \"reason\"])"
             n)
    end
    else if n = "Stdlib.Obj.magic" || n = "Obj.magic" then begin
      if not (allowed Magic_ok) then
        viol ~loc rule_magic
          "Obj.magic is forbidden in the nonblocking libraries \
           ([@nbhash.magic_ok \"reason\"] to override)"
    end
    else if List.exists (fun p -> starts_with ~prefix:p n) blocking_prefixes
    then begin
      if not (allowed Blocking_ok) then
        viol ~loc rule_blocking
          (Printf.sprintf
             "%s is a blocking primitive in a nonblocking library \
              ([@nbhash.blocking_ok \"reason\"] to override)"
             n)
    end
    else
      match String.split_on_char '.' n with
      | "Atomic" :: _
        when not
               (Hashtbl.mem u.u_aliases "Atomic"
               || Hashtbl.mem u.u_local_mods "Atomic") ->
          if not (allowed Atomic_ok) then
            viol ~loc rule_atomic
              (Printf.sprintf
                 "%s: cannot prove this Atomic is the Nb_atomic shim — \
                  re-point it with [module Atomic = Nbhash_util.Nb_atomic]"
                 n)
      | _ -> ()
  in
  let expr it (e : expression) =
    let saved = !allows in
    grant e.exp_attributes;
    (match e.exp_desc with
    | Texp_ident (p, lid, _) -> check_value_path (norm p) lid.loc
    | Texp_letmodule (_, _, _, _, _) -> ()
    | Texp_setfield (er, lid, lbl, _) ->
        let keys = head_keys er.exp_type @ head_keys lbl.lbl_res in
        let fkey tname = tname ^ "." ^ lbl.lbl_name in
        (* Suppress the per-write report only when the declaration is
           itself flagged (one report at the decl, not one per write)
           or carries [@nbhash.plain_ok]. A same-named field of some
           *unshared* type elsewhere must not mask this write. *)
        let decl_handles tbl =
          List.exists
            (fun k ->
              Hashtbl.mem tbl (fkey (last (String.split_on_char '.' k))))
            keys
        in
        if
          List.exists (fun k -> Hashtbl.mem shared k) keys
          && (not (decl_handles flagged_fields))
          && (not (decl_handles allowed_fields))
          && not (allowed Plain_ok)
        then
          viol ~loc:lid.loc rule_plain
            (Printf.sprintf
               "write to mutable field '%s' of a domain-shared value \
                needs [@nbhash.plain_ok \"reason\"] (or an atomic)"
               lbl.lbl_name)
    | Texp_apply ({ exp_desc = Texp_ident (p, lid, _); _ }, args) -> (
        let n = norm p in
        let pos = positional args in
        (* cas-ignored: ignore (compare_and_set ...) *)
        (if n = "Stdlib.ignore" || n = "ignore" then
           match pos with
           | [ a ] when is_cas_apply a ->
               let inner_allow = List.mem Cas_ok (allows_of a.exp_attributes) in
               if (not (allowed Cas_ok)) && not inner_allow then
                 viol ~loc:lid.loc rule_ignored
                   "compare_and_set result discarded with no retry branch \
                    ([@nbhash.cas_ok \"reason\"] if the lost race is benign)"
           | _ -> ());
        (* array/ref writes on shared containers *)
        (match List.assoc_opt n array_writes with
        | Some dst_idx when List.length pos > dst_idx -> (
            let dst = List.nth pos dst_idx in
            match container_key dst.exp_type with
            | Some ck when Hashtbl.mem shared ck && not (allowed Plain_ok) ->
                viol ~loc:lid.loc rule_plain
                  (Printf.sprintf
                     "%s on a domain-shared array (%s) needs \
                      [@nbhash.plain_ok \"reason\"] — shared slots want \
                      atomics or frozen copy-on-write"
                     n ck)
            | _ -> ())
        | _ ->
            if List.mem n ref_writes then
              match pos with
              | r :: _ -> (
                  match container_key r.exp_type with
                  | Some ck when Hashtbl.mem shared ck && not (allowed Plain_ok)
                    ->
                      viol ~loc:lid.loc rule_plain
                        (Printf.sprintf
                           "%s on a domain-shared ref (%s) needs \
                            [@nbhash.plain_ok \"reason\"] — use an Atomic"
                           n ck)
                  | _ -> ())
              | [] -> ());
        (* atomic get/set collection for the RMW pass *)
        match atomic_op n with
        | Some "get" -> (
            match pos with
            | [ a ] -> (
                match lvalue_key a with
                | Some k -> Hashtbl.replace scope_gets k ()
                | None -> ())
            | _ -> ())
        | Some "set" -> (
            match pos with
            | a :: _ :: _ -> (
                match lvalue_key a with
                | Some k ->
                    scope_sets :=
                      (k, lid.loc, allowed Cas_ok) :: !scope_sets
                | None -> ())
            | _ -> ())
        | _ -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr it e;
    allows := saved
  in
  let typ it (ct : core_type) =
    (match ct.ctyp_desc with
    | Ttyp_constr (p, lid, _) ->
        let n = norm p in
        if
          starts_with ~prefix:"Stdlib.Atomic." n
          && (not (allowed Atomic_ok))
          && not (List.mem Atomic_ok (allows_of ct.ctyp_attributes))
        then
          viol ~loc:lid.loc rule_atomic
            (Printf.sprintf
               "type %s spells out Stdlib.Atomic — use the shim's \
                [Atomic.t] so the lint discipline stays alias-proof"
               n)
    | _ -> ());
    Tast_iterator.default_iterator.typ it ct
  in
  let module_expr it (m : module_expr) =
    (match m.mod_desc with
    | Tmod_ident (p, lid) ->
        let n = norm p in
        if
          (n = "Stdlib.Atomic" || starts_with ~prefix:"Stdlib.Atomic." n)
          && not (allowed Atomic_ok)
        then
          viol ~loc:lid.loc rule_atomic
            (Printf.sprintf
               "module path %s aliases Stdlib.Atomic — alias the shim \
                (Nbhash_util.Nb_atomic) instead"
               n)
        else if List.mem n blocking_modules && not (allowed Blocking_ok) then
          viol ~loc:lid.loc rule_blocking
            (Printf.sprintf "module path %s is a blocking primitive" n)
    | _ -> ());
    Tast_iterator.default_iterator.module_expr it m
  in
  let value_binding it (vb : value_binding) =
    let saved = !allows in
    grant vb.vb_attributes;
    (match (vb.vb_pat.pat_desc, is_cas_apply vb.vb_expr) with
    | Tpat_any, true when not (allowed Cas_ok) ->
        viol ~loc:vb.vb_loc rule_ignored
          "compare_and_set result bound to _ with no retry branch \
           ([@nbhash.cas_ok \"reason\"] if the lost race is benign)"
    | _ -> ());
    Tast_iterator.default_iterator.value_binding it vb;
    allows := saved
  in
  let flush_scope () =
    List.iter
      (fun (k, loc, was_allowed) ->
        if Hashtbl.mem scope_gets k && not was_allowed then
          viol ~loc rule_rmw
            (Printf.sprintf
               "Atomic.get -> Atomic.set read-modify-write on '%s' is \
                ABA-prone — use compare_and_set (or [@nbhash.cas_ok \
                \"reason\"])"
               k))
      (List.rev !scope_sets);
    Hashtbl.reset scope_gets;
    scope_sets := []
  in
  let structure_item it (si : structure_item) =
    match si.str_desc with
    | Tstr_value (_, vbs) ->
        (* one RMW scope per top-level binding *)
        List.iter
          (fun vb ->
            flush_scope ();
            it.Tast_iterator.value_binding it vb;
            flush_scope ())
          vbs
    | _ -> Tast_iterator.default_iterator.structure_item it si
  in
  let it =
    {
      Tast_iterator.default_iterator with
      expr;
      typ;
      module_expr;
      value_binding;
      structure_item;
    }
  in
  it.structure it u.u_str;
  flush_scope ()

(* ---------- driver ---------- *)

(* The shim itself is the one place allowed to touch Stdlib.Atomic. *)
let exempt_unit modname =
  match List.rev (split_mangled modname) with
  | "Nb_atomic" :: _ -> true
  | _ -> false

let load_cmt path =
  match Cmt_format.read_cmt path with
  | exception exn ->
      Error (Printf.sprintf "%s: cannot read cmt: %s" path (Printexc.to_string exn))
  | infos -> Ok infos

(* [analyze cmt_paths] loads every artifact, runs both passes and
   returns the violations sorted by location, together with the number
   of units actually analyzed. *)
let analyze cmt_paths =
  let violations = ref [] in
  let seen = Hashtbl.create 64 in
  let viol v =
    let key = (v.file, v.line, v.col, v.rule) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      violations := v :: !violations
    end
  in
  let units =
    List.filter_map
      (fun path ->
        match load_cmt path with
        | Error msg -> failwith msg
        | Ok infos -> (
            if exempt_unit infos.Cmt_format.cmt_modname then None
            else
              match infos.Cmt_format.cmt_annots with
              | Cmt_format.Implementation str ->
                  Some
                    (collect_facts ~cmt_path:path
                       ~modname:infos.Cmt_format.cmt_modname str ~viol)
              | _ -> None))
      cmt_paths
  in
  let shared = propagate units in
  (* [flagged_fields]: declarations the shared-mutable pass reports, so
     per-write checks don't repeat them. [allowed_fields]:
     declarations carrying [@nbhash.plain_ok], which covers writes
     everywhere. *)
  let flagged_fields = Hashtbl.create 64 in
  let allowed_fields = Hashtbl.create 64 in
  List.iter
    (fun u ->
      List.iter
        (fun f ->
          let key = f.f_tname ^ "." ^ f.f_name in
          if f.f_allowed then Hashtbl.replace allowed_fields key ()
          else if List.exists (fun k -> Hashtbl.mem shared k) f.f_keys then
            Hashtbl.replace flagged_fields key ())
        u.u_mfields)
    units;
  List.iter
    (fun u -> check_unit ~shared ~flagged_fields ~allowed_fields u ~viol)
    units;
  let vs =
    List.sort
      (fun a b ->
        compare (a.file, a.line, a.col, a.rule) (b.file, b.line, b.col, b.rule))
      !violations
  in
  (vs, List.length units)

(* Shared sets are exposed for the analyzer's [--debug-shared]. *)
let debug_shared cmt_paths =
  let units =
    List.filter_map
      (fun path ->
        match load_cmt path with
        | Error _ -> None
        | Ok infos -> (
            if exempt_unit infos.Cmt_format.cmt_modname then None
            else
              match infos.Cmt_format.cmt_annots with
              | Cmt_format.Implementation str ->
                  Some
                    (collect_facts ~cmt_path:path
                       ~modname:infos.Cmt_format.cmt_modname str
                       ~viol:(fun _ -> ()))
              | _ -> None))
      cmt_paths
  in
  let shared = propagate units in
  Hashtbl.fold (fun k () acc -> k :: acc) shared [] |> List.sort compare
