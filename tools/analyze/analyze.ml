(* Entry point of the typed-AST concurrency analyzer (DESIGN.md
   System 16).

     analyze.exe [--json FILE] [--debug-shared] DIR...

   Each DIR is a build-context directory (the analyzer runs from
   _build/default under [dune build @analyze]); it is scanned
   recursively for the .cmt artifacts dune's check alias produced, and
   {!Analyze_rules} runs its passes over all of them together (the
   escape heuristic propagates sharedness across units).

   Exit-code hygiene, mirroring tools/bench_compare: 0 clean,
   1 violations found, 2 usage error or broken tool/input — so CI and
   pre-commit hooks can tell "found races" from "tool broke". *)

let usage () =
  prerr_endline "usage: analyze.exe [--json FILE] [--debug-shared] DIR...";
  exit 2

let rec cmt_files dir =
  Sys.readdir dir |> Array.to_list |> List.sort compare
  |> List.concat_map (fun entry ->
         let path = Filename.concat dir entry in
         if Sys.is_directory path then cmt_files path
         else if Filename.check_suffix entry ".cmt" then [ path ]
         else [])

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json path ~dirs ~units ~violations =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n  \"schema\": \"nbhash-analyze-v1\",\n";
  out "  \"dirs\": [%s],\n"
    (String.concat ", " (List.map (fun d -> "\"" ^ json_escape d ^ "\"") dirs));
  out "  \"units\": %d,\n" units;
  let count rule =
    List.length (List.filter (fun v -> v.Analyze_rules.rule = rule) violations)
  in
  out "  \"rules\": {%s},\n"
    (String.concat ", "
       (List.map
          (fun r -> Printf.sprintf "\"%s\": %d" r (count r))
          Analyze_rules.all_rules));
  out "  \"violations\": [";
  List.iteri
    (fun i (v : Analyze_rules.violation) ->
      out "%s\n    {\"file\": \"%s\", \"line\": %d, \"col\": %d, \
           \"rule\": \"%s\", \"message\": \"%s\"}"
        (if i = 0 then "" else ",")
        (json_escape v.file) v.line v.col (json_escape v.rule)
        (json_escape v.message))
    violations;
  out "%s]\n}\n" (if violations = [] then "" else "\n  ");
  close_out oc

let () =
  let json = ref None and debug = ref false and dirs = ref [] in
  let rec parse = function
    | [] -> ()
    | "--json" :: file :: rest ->
        json := Some file;
        parse rest
    | "--json" :: [] -> usage ()
    | "--debug-shared" :: rest ->
        debug := true;
        parse rest
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' -> usage ()
    | dir :: rest ->
        dirs := dir :: !dirs;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let dirs = List.rev !dirs in
  if dirs = [] then usage ();
  List.iter
    (fun d ->
      if not (Sys.file_exists d && Sys.is_directory d) then begin
        Printf.eprintf "analyze: no such directory: %s\n" d;
        exit 2
      end)
    dirs;
  let cmts = List.concat_map cmt_files dirs in
  if cmts = [] then begin
    Printf.eprintf
      "analyze: no .cmt artifacts under %s — run `dune build @check-cmt` \
       first\n"
      (String.concat " " dirs);
    exit 2
  end;
  if !debug then begin
    List.iter print_endline (Analyze_rules.debug_shared cmts);
    exit 0
  end;
  match Analyze_rules.analyze cmts with
  | exception Failure msg ->
      Printf.eprintf "analyze: %s\n" msg;
      exit 2
  | violations, units ->
      Option.iter (fun f -> write_json f ~dirs ~units ~violations) !json;
      if violations = [] then begin
        Printf.printf "analyze: %d units clean (%s)\n" units
          (String.concat " " dirs);
        exit 0
      end
      else begin
        List.iter
          (fun v -> Format.eprintf "%a@." Analyze_rules.pp_violation v)
          violations;
        Printf.eprintf "analyze: %d violation(s) in %d units\n"
          (List.length violations) units;
        exit 1
      end
