(* Entry point of the atomics lint: [lint.exe DIR...] walks the given
   directories for .ml/.mli files, applies {!Lint_rules}, prints every
   violation and exits nonzero if there is any. Wired to
   [dune build @lint]. *)

let () =
  let dirs =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as dirs) -> dirs
    | _ ->
      prerr_endline "usage: lint.exe DIR...";
      exit 2
  in
  List.iter
    (fun d ->
      if not (Sys.file_exists d && Sys.is_directory d) then begin
        Printf.eprintf "lint: no such directory: %s\n" d;
        exit 2
      end)
    dirs;
  let violations = Lint_rules.check_dirs dirs in
  let files = List.concat_map Lint_rules.ml_files dirs in
  match violations with
  | [] ->
    Printf.printf "lint: %d files clean (%s)\n" (List.length files)
      (String.concat " " dirs)
  | vs ->
    List.iter
      (fun v -> Format.eprintf "%a@." Lint_rules.pp_violation v)
      vs;
    Printf.eprintf "lint: %d violation(s) in %d files\n" (List.length vs)
      (List.length files);
    exit 1
