(* Rules of the atomics lint over the nonblocking libraries
   (lib/fset, lib/hashset, lib/splitorder, lib/michael,
   lib/telemetry):

   1. no direct [Stdlib.Atomic] — all atomic operations must go
      through the [Nbhash_util.Nb_atomic] shim so the model checker
      can trace them;
   2. no blocking primitives ([Mutex], [Condition], [Semaphore]) —
      the libraries claim nonblocking progress;
   3. no [Obj.magic];
   4. a file that uses [Atomic.] must re-point it at the shim with
      [module Atomic = Nbhash_util.Nb_atomic].

   5. no *bare* [Stdlib] (as in [open Stdlib], [module S = Stdlib],
      [include Stdlib]) — re-exposing the stdlib namespace smuggles
      [Atomic] / [Mutex] back in under spellings this textual lint
      cannot see. Dotted uses ([Stdlib.max_int]) stay legal.

   Matching is done on source text with comments and string literals
   blanked out, so prose mentioning "Mutex" stays legal. The checker
   is deliberately a few dozen lines of string scanning, not a
   compiler plugin: it runs in milliseconds under [dune build @lint]
   and its failure messages point at exact lines. It is a fast
   pre-pass: the authoritative, name-resolved gate is the typed
   analyzer (tools/analyze, [dune build @analyze]), which sees through
   any aliasing this scanner cannot. *)

type violation = { file : string; line : int; rule : string }

let pp_violation ppf v =
  Format.fprintf ppf "%s:%d: %s" v.file v.line v.rule

(* Blank out comments (nested, OCaml-style) and string literals,
   preserving newlines so line numbers survive. Escapes inside
   strings are honored enough for real source ('\"' etc.). *)
let blank_comments_and_strings src =
  let b = Bytes.of_string src in
  let n = String.length src in
  let i = ref 0 in
  let blank j = if Bytes.get b j <> '\n' then Bytes.set b j ' ' in
  while !i < n do
    if !i + 1 < n && src.[!i] = '(' && src.[!i + 1] = '*' then begin
      let depth = ref 1 in
      blank !i;
      blank (!i + 1);
      i := !i + 2;
      while !depth > 0 && !i < n do
        if !i + 1 < n && src.[!i] = '(' && src.[!i + 1] = '*' then begin
          incr depth;
          blank !i;
          blank (!i + 1);
          i := !i + 2
        end
        else if !i + 1 < n && src.[!i] = '*' && src.[!i + 1] = ')' then begin
          decr depth;
          blank !i;
          blank (!i + 1);
          i := !i + 2
        end
        else begin
          blank !i;
          incr i
        end
      done
    end
    else if src.[!i] = '"' then begin
      blank !i;
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '\\' && !i + 1 < n then begin
          blank !i;
          blank (!i + 1);
          i := !i + 2
        end
        else begin
          if src.[!i] = '"' then closed := true;
          blank !i;
          incr i
        end
      done
    end
    else incr i
  done;
  Bytes.to_string b

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

(* Does [line] contain [needle] as a standalone path/identifier
   (not a substring of a longer identifier)? A '.' before the match
   is also disqualifying: [Foo.Mutex.] is not the stdlib [Mutex]. *)
let mentions line needle =
  let n = String.length line and m = String.length needle in
  let rec go i =
    if i + m > n then false
    else if
      String.sub line i m = needle
      && (i = 0 || ((not (is_ident_char line.[i - 1])) && line.[i - 1] <> '.'))
      && (i + m >= n || not (is_ident_char line.[i + m]))
    then true
    else go (i + 1)
  in
  go 0

(* A standalone [Stdlib] token *not* followed by '.': the head of an
   [open] / alias / [include] that re-exposes banned modules under new
   names. Dotted paths ([Stdlib.max_int]) are fine — [Stdlib.Atomic]
   has its own rule. *)
let mentions_bare_stdlib line =
  let needle = "Stdlib" in
  let n = String.length line and m = String.length needle in
  let rec go i =
    if i + m > n then false
    else if
      String.sub line i m = needle
      && (i = 0 || ((not (is_ident_char line.[i - 1])) && line.[i - 1] <> '.'))
      && (i + m >= n || ((not (is_ident_char line.[i + m])) && line.[i + m] <> '.'))
    then true
    else go (i + 1)
  in
  go 0

let shim_alias = "module Atomic = Nbhash_util.Nb_atomic"

let banned =
  [
    ("Stdlib.Atomic", "direct Stdlib.Atomic bypasses the Nb_atomic shim");
    ("Mutex.", "Mutex in a nonblocking library");
    ("Condition.", "Condition in a nonblocking library");
    ("Semaphore.", "Semaphore in a nonblocking library");
    ("Obj.magic", "Obj.magic is forbidden");
  ]

(* [check_source ~file src] is every rule violation in [src]. *)
let check_source ~file src =
  let src = blank_comments_and_strings src in
  let lines = String.split_on_char '\n' src in
  let has_alias =
    List.exists
      (fun l ->
        (* tolerate whitespace variations around '=' *)
        let squash s =
          String.concat " "
            (List.filter (fun w -> w <> "") (String.split_on_char ' ' s))
        in
        squash l = shim_alias)
      lines
  in
  let violations = ref [] in
  let uses_atomic = ref false in
  List.iteri
    (fun idx l ->
      let line = idx + 1 in
      List.iter
        (fun (needle, rule) ->
          let needle =
            (* prefix form: "Mutex." flags any use of the module *)
            if String.length needle > 0 && needle.[String.length needle - 1] = '.'
            then String.sub needle 0 (String.length needle - 1)
            else needle
          in
          if mentions l needle then
            violations := { file; line; rule } :: !violations)
        banned;
      if mentions_bare_stdlib l then
        violations :=
          {
            file;
            line;
            rule =
              "bare Stdlib (open/alias/include) can re-expose Atomic and \
               Mutex under spellings the textual lint cannot see — use \
               dotted Stdlib paths (the typed analyzer, dune build \
               @analyze, resolves the rest)";
          }
          :: !violations;
      if mentions l "Atomic" then
        (* ignore the alias declaration itself *)
        if not (mentions l "Nb_atomic") then uses_atomic := true)
    lines;
  if !uses_atomic && not has_alias then
    violations :=
      {
        file;
        line = 1;
        rule =
          "uses Atomic without re-pointing it at the shim (add 'module \
           Atomic = Nbhash_util.Nb_atomic')";
      }
      :: !violations;
  List.rev !violations

let check_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  check_source ~file:path src

let rec ml_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.concat_map (fun entry ->
         let path = Filename.concat dir entry in
         if Sys.is_directory path then ml_files path
         else if
           Filename.check_suffix entry ".ml" || Filename.check_suffix entry ".mli"
         then [ path ]
         else [])
  |> List.sort compare

let check_dirs dirs =
  List.concat_map (fun d -> List.concat_map check_file (ml_files d)) dirs
