(** A single-lock hash set (one mutex around a resizing array-based
    table): the blocking strawman.

    Not part of the paper's evaluation, but the natural calibration
    point for the nonblocking tables: it bounds what a trivial
    implementation costs per operation and shows where lock convoying
    erases multi-thread throughput. It grows and shrinks under the
    same {!Nbhash.Policy} thresholds as the nonblocking tables so
    bucket-count comparisons are apples-to-apples. *)

include Nbhash.Hashset_intf.S
