module Policy = Nbhash.Policy
module Hashset_intf = Nbhash.Hashset_intf

type t = {
  lock : Mutex.t;
  mutable buckets : int list array;
  mutable mask : int;
  mutable cardinal : int;
  mutable grows : int;
  mutable shrinks : int;
  policy : Policy.t;
}

type handle = t

let name = "Locked"

let create ?(policy = Policy.default) ?max_threads () =
  ignore max_threads;
  Policy.validate policy;
  {
    lock = Mutex.create ();
    buckets = Array.make policy.Policy.init_buckets [];
    mask = policy.Policy.init_buckets - 1;
    cardinal = 0;
    grows = 0;
    shrinks = 0;
    policy;
  }

let register t = t
let unregister _ = ()

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Rebuild in place; called with the lock held. *)
let resize_locked t grow =
  let old_size = t.mask + 1 in
  let within =
    if grow then old_size * 2 <= t.policy.Policy.max_buckets
    else old_size / 2 >= t.policy.Policy.min_buckets
  in
  if (old_size > 1 || grow) && within then begin
    let size = if grow then old_size * 2 else old_size / 2 in
    let fresh = Array.make size [] in
    Array.iter
      (List.iter (fun k ->
           let i = k land (size - 1) in
           fresh.(i) <- k :: fresh.(i)))
      t.buckets;
    t.buckets <- fresh;
    t.mask <- size - 1;
    if grow then t.grows <- t.grows + 1 else t.shrinks <- t.shrinks + 1
  end

let loads t =
  match t.policy.Policy.heuristic with
  | Policy.Load_factor { grow; shrink } -> (grow, shrink)
  | Policy.Bucket_size { grow_threshold; shrink_threshold; _ } ->
    (float_of_int grow_threshold, float_of_int shrink_threshold)

let maybe_resize_locked t =
  if t.policy.Policy.enabled then begin
    let grow_load, shrink_load = loads t in
    let size = float_of_int (t.mask + 1) in
    let count = float_of_int t.cardinal in
    if count > grow_load *. size then resize_locked t true
    else if count < shrink_load *. size then resize_locked t false
  end

let insert t k =
  Hashset_intf.check_key k;
  locked t (fun () ->
      let i = k land t.mask in
      if List.mem k t.buckets.(i) then false
      else begin
        t.buckets.(i) <- k :: t.buckets.(i);
        t.cardinal <- t.cardinal + 1;
        maybe_resize_locked t;
        true
      end)

let remove t k =
  Hashset_intf.check_key k;
  locked t (fun () ->
      let i = k land t.mask in
      if List.mem k t.buckets.(i) then begin
        t.buckets.(i) <- List.filter (fun x -> x <> k) t.buckets.(i);
        t.cardinal <- t.cardinal - 1;
        maybe_resize_locked t;
        true
      end
      else false)

let contains t k =
  Hashset_intf.check_key k;
  locked t (fun () -> List.mem k t.buckets.(k land t.mask))

let bucket_count t = locked t (fun () -> t.mask + 1)

let resize_stats t =
  locked t (fun () ->
      { Hashset_intf.grows = t.grows; shrinks = t.shrinks })

let bucket_sizes t = locked t (fun () -> Array.map List.length t.buckets)

let force_resize t ~grow = locked t (fun () -> resize_locked t grow)
let cardinal t = locked t (fun () -> t.cardinal)

let elements t =
  locked t (fun () -> Array.of_list (List.concat (Array.to_list t.buckets)))

let fail fmt = Format.kasprintf failwith fmt

let check_invariants t =
  locked t (fun () ->
      let total = ref 0 in
      Array.iteri
        (fun i bucket ->
          total := !total + List.length bucket;
          List.iter
            (fun k ->
              if k land t.mask <> i then
                fail "key %d misplaced in bucket %d of %d" k i (t.mask + 1))
            bucket)
        t.buckets;
      if !total <> t.cardinal then
        fail "cardinal %d does not match contents %d" t.cardinal !total)

(* No announce array: nothing for the liveness watchdog to sample. *)
let pending_ops _ = [||]

(* Resizes happen atomically under the lock: no migration window. *)
let inspect t =
  Hashset_intf.make_view ~sizes:(bucket_sizes t) ~frozen_buckets:0
    ~migrating:false ~migration_progress:1.0 ~announce_pending:0
