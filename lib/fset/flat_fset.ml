(* Flat open-addressing freezable set (DESIGN.md System 17).

   A lock-free linear-probing FSet over a flat array of [int Atomic.t]
   slot words, with a side array of one plain fingerprint byte per
   slot so the probe loop skips most full-slot reads. This is the
   cache-friendly bucket layout of Gao-Groote-Hesselink's open
   addressing table and the "folklore" flat table of Maier et al.,
   wearing the paper's freeze protocol so it plugs into Table_core's
   grow/shrink machinery unchanged.

   Slot words pack a key and two flag bits:

     bit 0  occupied   the word carries a key in bits 2..62
     bit 1  SEAL       the freeze/migration latch

     0b000...000_00  Empty         claimable
     0b000...001_00  Tombstone     key field 1, never a valid key word
     k lsl 2 lor 01  Occupied k
     w      lor 10   sealed w      immutable forever

   Keys live in [0, 2^61): [k lsl 2] keeps bits 2..62 of the word and
   [w lsr 2] recovers k exactly. The tombstone word (key field 1,
   occupied bit clear) can never collide with an occupied encoding
   because every occupied word is odd.

   Protocol invariants the proofs in DESIGN.md lean on:

   1. Inserts claim only Empty words (CAS 0 -> enc k), never
      tombstones. A slot's key field is therefore written at most once
      per array generation ("write-once slots"), which is what makes
      the racy fingerprint bytes sound: the only nonzero tag ever
      observable for a slot is the fingerprint of its unique occupant.
      Tombstone space is reclaimed by compaction (below), not reuse.
   2. The node's [fate] arbiter is decided exactly once
      (Undecided -> Frozen | Moving). Every seal CAS happens after the
      fate is decided, so observing a sealed word implies a decided
      fate (atomics are SC).
   3. [freeze] linearizes when the last slot's SEAL bit is latched;
      an update CAS that succeeds on an unsealed word has therefore
      linearized before the freeze, and any operation that reports
      "frozen" first helps the seal sweep to completion so its refusal
      is truthful.
   4. A full probe wrap that finds no Empty word proves the key absent
      from this node forever (claims are permanent and slots are
      write-once), so concluding "absent" after consulting the fate is
      linearizable even though the walk was not atomic. *)

module Atomic = Nbhash_util.Nb_atomic
module Tm = Nbhash_telemetry.Global
module Ev = Nbhash_telemetry.Event

(* Profiler site ids for this file's CAS-retry loops (DESIGN.md 19). *)
let site_seal = Nbhash_telemetry.Site.register "flat_fset/seal"
let site_insert = Nbhash_telemetry.Site.register "flat_fset/insert"
let site_remove = Nbhash_telemetry.Site.register "flat_fset/remove"

(* The one-shot arbiter between freezing and compaction/growth
   migration. [Frozen] means the decision, not the completion: the set
   is frozen only once the seal sweep has latched every slot. *)
type fate = Undecided | Frozen | Moving

type node = {
  mask : int;
  slots : int Atomic.t array;
  tags : Bytes.t;
      (* one plain fingerprint byte per slot; 0 = no claim witnessed *)
  fate : fate Atomic.t;
  sealed : int Atomic.t;  (* slots with the SEAL bit latched *)
  used : int Atomic.t;  (* claimed slots: occupied + tombstones *)
  live : int Atomic.t;  (* occupied slots *)
}

type t = { root : node Atomic.t }
type op = { kind : Fset_intf.kind; key : int; mutable resp : bool }

let id = "flat"

let occupied_bit = 1
let seal_bit = 2
let empty_w = 0
let tomb_w = 4 (* key field 1, occupied bit clear: not a key word *)
let enc k = (k lsl 2) lor occupied_bit
let dec w = w lsr 2
let is_occupied w = w land occupied_bit <> 0

let check_key k =
  if k < 0 || k asr 61 <> 0 then
    invalid_arg "Flat_fset: key out of [0, 2^61)"

(* Table_core routes key [k] to bucket [k land table_mask], so keys
   arriving in one bucket share their low bits; the probe home must
   come from mixed high entropy or every key would probe from slot
   0. One multiply + xor-shift of a SplitMix-style odd constant
   (fits in 62 bits). *)
let mix k =
  let h = k * 0x2545F4914F6CDD1D in
  (h lxor (h lsr 29)) land max_int

(* Fingerprint from bits the home index does not use; 0 is reserved
   for "no claim witnessed", so collapse it to 1. *)
let fp_of_hash h =
  let f = (h lsr 13) land 0xff in
  if f = 0 then 1 else f

let new_node cap =
  {
    mask = cap - 1;
    slots = Array.init cap (fun _ -> Atomic.make empty_w);
    tags = Bytes.make cap '\000';
    fate = Atomic.make Undecided;
    sealed = Atomic.make 0;
    used = Atomic.make 0;
    live = Atomic.make 0;
  }

(* Pre-publication placement: the node is private to the constructing
   thread until it is published through an atomic (the root CAS or a
   bucket install), which carries the plain tag bytes along. *)
let place n k =
  let h = mix k in
  let home = h land n.mask in
  let rec go d =
    let idx = (home + d) land n.mask in
    if Atomic.get n.slots.(idx) = empty_w then begin
      Atomic.set n.slots.(idx) (enc k);
      (Bytes.set n.tags idx (Char.chr (fp_of_hash h))
      [@nbhash.plain_ok
        "node is private until published through an atomic; the publish \
         carries these plain bytes"])
    end
    else go (d + 1)
  in
  go 0

let create elems =
  let len = Array.length elems in
  let cap = Nbhash_util.Bits.next_pow2 (max 8 (2 * len)) in
  let n = new_node cap in
  Array.iter
    (fun k ->
      check_key k;
      place n k)
    elems;
  Atomic.set n.used len;
  Atomic.set n.live len;
  { root = Atomic.make n }

let make_op kind key =
  check_key key;
  { kind; key; resp = false }

let get_response op = op.resp

(* Latch the SEAL bit into every slot. Any number of threads help;
   each bit is latched by exactly one winning CAS, so [n.sealed]
   counts exactly and reaches capacity precisely when the sweep is
   complete. *)
let help_seal n =
  for idx = 0 to n.mask do
    let rec seal () =
      let w = Atomic.get n.slots.(idx) in
      if w land seal_bit = 0 then
        if Atomic.compare_and_set n.slots.(idx) w (w lor seal_bit) then
          Atomic.incr n.sealed
        else begin
          Tm.cas_retry site_seal;
          seal ()
        end
    in
    seal ()
  done

(* Contents of a fully sealed node, in slot order. Sealed words are
   immutable, so every caller computes the identical array. *)
let sealed_elements n =
  let acc = ref [] in
  let count = ref 0 in
  for idx = n.mask downto 0 do
    let w = Atomic.get n.slots.(idx) in
    if is_occupied w then begin
      incr count;
      acc := dec w :: !acc
    end
  done;
  let a = Array.make !count 0 in
  List.iteri (fun i k -> a.(i) <- k) !acc;
  a

let decide_move n =
  let rec go () =
    match Atomic.get n.fate with
    | Undecided ->
        if not (Atomic.compare_and_set n.fate Undecided Moving) then go ()
    | Frozen | Moving -> ()
  in
  go ()

(* Help a decided migration: seal the old node, rebuild its live keys
   into a right-sized fresh node (tombstones evaporate here — this is
   both growth and compaction), and install it. The new capacity is a
   pure function of the sealed contents, so racing helpers construct
   interchangeable successors and the root CAS picks one. *)
let help_move t old =
  help_seal old;
  if Atomic.get t.root == old then begin
    let keys = sealed_elements old in
    let nlive = Array.length keys in
    let cap = Nbhash_util.Bits.next_pow2 (max 8 (2 * nlive)) in
    let fresh = new_node cap in
    Array.iter (fun k -> place fresh k) keys;
    Atomic.set fresh.used nlive;
    Atomic.set fresh.live nlive;
    ignore
      ((Atomic.compare_and_set t.root old fresh)
      [@nbhash.cas_ok
        "a lost race means another helper installed an interchangeable \
         successor built from the same sealed contents"])
  end

(* Grow/compact once claimed slots (live + tombstones) reach 3/4 of
   capacity, so probe runs stay short and tombstone accumulation from
   remove-heavy workloads is reclaimed instead of wedging the array. *)
let claim_threshold n =
  let cap = n.mask + 1 in
  cap - (cap lsr 2)

let rec invoke t op =
  let n = Atomic.get t.root in
  match op.kind with
  | Fset_intf.Ins -> insert t n op
  | Fset_intf.Rem -> remove t n op

and insert t n op =
  let h = mix op.key in
  let home = h land n.mask in
  let f = fp_of_hash h in
  let w_occ = enc op.key in
  (* Consulted only after witnessing a sealed word, so the fate is
     decided (invariant 2) and refusing is truthful after helping the
     sweep finish (invariant 3). *)
  let on_sealed () =
    match Atomic.get n.fate with
    | Frozen ->
        help_seal n;
        false
    | Moving ->
        help_move t n;
        invoke t op
    | Undecided -> assert false (* a sealed word implies a decided fate *)
  in
  let rec go d =
    if d > n.mask then full_wrap ()
    else
      let idx = (home + d) land n.mask in
      let tag = Char.code (Bytes.get n.tags idx) in
      if tag <> 0 && tag <> f then
        (* claimed by a key with a different fingerprint: skip the
           slot word entirely (write-once slots, invariant 1) *)
        go (d + 1)
      else at_word idx d
  and at_word idx d =
    let w = Atomic.get n.slots.(idx) in
    if w = empty_w then
      if Atomic.compare_and_set n.slots.(idx) empty_w w_occ then begin
        (Bytes.set n.tags idx (Char.chr f)
        [@nbhash.plain_ok
          "racy prefilter bytes: a slot's key is written at most once per \
           array generation, so the only nonzero tag observable here is \
           the fingerprint of the unique occupant; a stale 0 read just \
           forces the slot-word read"]);
        Atomic.incr n.used;
        Atomic.incr n.live;
        Tm.observe Ev.Probe_len d;
        op.resp <- true;
        (if Atomic.get n.used >= claim_threshold n then begin
           decide_move n;
           match Atomic.get n.fate with
           | Moving -> help_move t n
           | Frozen | Undecided -> ()
         end);
        true
      end
      else begin
        Tm.cas_retry site_insert;
        at_word idx d
      end
    else if w lor seal_bit = w_occ lor seal_bit then
      if w land seal_bit = 0 then begin
        (* present and unsealed: redundant insert linearizes at the
           word read, which precedes any freeze *)
        Tm.observe Ev.Probe_len d;
        op.resp <- false;
        true
      end
      else on_sealed ()
    else if w = empty_w lor seal_bit then on_sealed ()
    else go (d + 1)
  and full_wrap () =
    (* no claimable slot left in this generation *)
    match Atomic.get n.fate with
    | Undecided ->
        decide_move n;
        full_wrap ()
    | Frozen ->
        help_seal n;
        false
    | Moving ->
        help_move t n;
        invoke t op
  in
  go 0

and remove t n op =
  let h = mix op.key in
  let home = h land n.mask in
  let f = fp_of_hash h in
  let w_occ = enc op.key in
  let on_sealed () =
    match Atomic.get n.fate with
    | Frozen ->
        help_seal n;
        false
    | Moving ->
        help_move t n;
        invoke t op
    | Undecided -> assert false (* a sealed word implies a decided fate *)
  in
  let rec go d =
    if d > n.mask then full_wrap ()
    else
      let idx = (home + d) land n.mask in
      let tag = Char.code (Bytes.get n.tags idx) in
      if tag <> 0 && tag <> f then go (d + 1) else at_word idx d
  and at_word idx d =
    let w = Atomic.get n.slots.(idx) in
    if w = empty_w then begin
      (* absent; the unsealed Empty word proves the freeze has not
         linearized, so the redundant remove may apply (invariant 3) *)
      Tm.observe Ev.Probe_len d;
      op.resp <- false;
      true
    end
    else if w = empty_w lor seal_bit then on_sealed ()
    else if w lor seal_bit = w_occ lor seal_bit then
      if w land seal_bit = 0 then
        if Atomic.compare_and_set n.slots.(idx) w_occ tomb_w then begin
          Atomic.decr n.live;
          Tm.observe Ev.Probe_len d;
          op.resp <- true;
          true
        end
        else begin
          Tm.cas_retry site_remove;
          at_word idx d
        end
      else on_sealed ()
    else go (d + 1)
  and full_wrap () =
    match Atomic.get n.fate with
    | Undecided ->
        (* invariant 4: every slot is permanently claimed by another
           key or tombed, so the key is absent for the rest of this
           generation; an undecided fate proves no freeze has
           linearized yet, so the redundant remove may apply *)
        op.resp <- false;
        true
    | Frozen ->
        help_seal n;
        false
    | Moving ->
        help_move t n;
        invoke t op
  in
  go 0

(* Pure reader: never helps, answers from whichever root it loaded.
   An old, fully sealed node remains the truth until the successor's
   root CAS, so reads during a migration stay linearizable. *)
let has_member t k =
  check_key k;
  let n = Atomic.get t.root in
  let h = mix k in
  let home = h land n.mask in
  let f = fp_of_hash h in
  let w_occ = enc k in
  let rec go d =
    if d > n.mask then false
    else
      let idx = (home + d) land n.mask in
      let tag = Char.code (Bytes.get n.tags idx) in
      if tag <> 0 && tag <> f then go (d + 1)
      else
        let w = Atomic.get n.slots.(idx) in
        if w land lnot seal_bit = empty_w then false
        else if w lor seal_bit = w_occ lor seal_bit then true
        else go (d + 1)
  in
  go 0

let rec freeze t =
  let n = Atomic.get t.root in
  match Atomic.get n.fate with
  | Undecided ->
      if Atomic.compare_and_set n.fate Undecided Frozen then begin
        Tm.emit Ev.Freeze;
        help_seal n;
        sealed_elements n
      end
      else freeze t
  | Frozen ->
      help_seal n;
      sealed_elements n
  | Moving ->
      help_move t n;
      freeze t

let size t = Atomic.get (Atomic.get t.root).live

let elements t =
  let n = Atomic.get t.root in
  let acc = ref [] in
  for idx = n.mask downto 0 do
    let w = Atomic.get n.slots.(idx) in
    if is_occupied w then acc := dec w :: !acc
  done;
  Array.of_list !acc

let is_frozen t =
  let n = Atomic.get t.root in
  match Atomic.get n.fate with
  | Frozen -> Atomic.get n.sealed = n.mask + 1
  | Undecided | Moving -> false

(* Diagnostic: per-probe-distance census of the current generation's
   occupied slots — [census.(d)] keys sit [d] slots past their home.
   Racy by design; exact in quiescent states. Not part of
   [Fset_intf.S]; tests and bench reach it directly. *)
let probe_census t =
  let n = Atomic.get t.root in
  let census = Array.make (n.mask + 1) 0 in
  let maxd = ref 0 in
  for idx = 0 to n.mask do
    let w = Atomic.get n.slots.(idx) in
    if is_occupied w then begin
      let home = mix (dec w) land n.mask in
      let d = (idx - home) land n.mask in
      census.(d) <- census.(d) + 1;
      if d > !maxd then maxd := d
    end
  done;
  Array.sub census 0 (!maxd + 1)

(* Capacity of the current generation; diagnostics only. *)
let capacity t = (Atomic.get t.root).mask + 1
