(** Lock-free FSet over a flat unsorted array — the bucket
    representation behind the paper's LFArray hash table. *)
include Lf_fset.Make (Elems.Array_rep)
