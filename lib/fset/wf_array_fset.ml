(** Cooperative wait-free FSet over a flat array — the bucket
    representation behind the paper's WFArray and Adaptive tables. *)
include Wf_fset.Make (Elems.Array_rep)
