(** Cooperative wait-free FSet over an immutable list — the bucket
    representation behind the paper's WFList table. *)
include Wf_fset.Make (Elems.List_rep)
