(** Lock-free FSet over an immutable list — the bucket representation
    behind the paper's LFList hash table. *)
include Lf_fset.Make (Elems.List_rep)
