type t = { mutable set : int list; mutable ok : bool }

type op = {
  kind : Fset_intf.kind;
  key : int;
  mutable done_ : bool;
  mutable resp : bool;
}

let id = "seq"
let create elems = { set = Array.to_list elems; ok = true }
let make_op kind key = { kind; key; done_ = false; resp = false }

let invoke t op =
  if t.ok && not op.done_ then begin
    (match op.kind with
    | Fset_intf.Ins ->
      op.resp <- not (List.mem op.key t.set);
      if op.resp then t.set <- op.key :: t.set
    | Fset_intf.Rem ->
      op.resp <- List.mem op.key t.set;
      if op.resp then t.set <- List.filter (fun x -> x <> op.key) t.set);
    op.done_ <- true
  end;
  op.done_

let get_response op = op.resp
let has_member t k = List.mem k t.set

let freeze t =
  if t.ok then t.ok <- false;
  Array.of_list t.set

let size t = List.length t.set
let elements t = Array.of_list t.set
let is_frozen t = not t.ok
let op_kind op = op.kind
let op_key op = op.key
let op_done op = op.done_
