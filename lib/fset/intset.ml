let mem a k =
  let n = Array.length a in
  let rec go i = i < n && (a.(i) = k || go (i + 1)) in
  go 0

let add a k =
  assert (not (mem a k));
  let n = Array.length a in
  let b = Array.make (n + 1) k in
  Array.blit a 0 b 0 n;
  b

let remove a k =
  let n = Array.length a in
  let rec index i = if a.(i) = k then i else index (i + 1) in
  let i = index 0 in
  let b = Array.make (n - 1) 0 in
  Array.blit a 0 b 0 i;
  Array.blit a (i + 1) b i (n - 1 - i);
  b

let filter_mask a ~mask ~target =
  let count = ref 0 in
  Array.iter (fun k -> if k land mask = target then incr count) a;
  let b = Array.make !count 0 in
  let j = ref 0 in
  Array.iter
    (fun k ->
      if k land mask = target then begin
        b.(!j) <- k;
        incr j
      end)
    a;
  b

let disjoint_union = Array.append

let equal_as_sets a b =
  let sort x =
    let y = Array.copy x in
    Array.sort compare y;
    y
  in
  sort a = sort b

let of_list l = Array.of_list (List.sort_uniq compare l)
