(** Operations on immutable unsorted [int array]s viewed as sets.

    These back the array-based FSet implementations and the key
    migration performed during hash-table resizes. Arrays are never
    mutated; every operation returns a fresh array. Inputs are assumed
    duplicate-free, and outputs preserve that. *)

val mem : int array -> int -> bool

val add : int array -> int -> int array
(** Requires [not (mem a k)]. *)

val remove : int array -> int -> int array
(** Requires [mem a k]. *)

val filter_mask : int array -> mask:int -> target:int -> int array
(** [filter_mask a ~mask ~target] keeps exactly the keys [k] with
    [k land mask = target]: the "split" of a bucket during a grow. *)

val disjoint_union : int array -> int array -> int array
(** Concatenation; the "merge" of two buckets during a shrink. The
    caller guarantees disjointness (buckets of distinct residues). *)

val equal_as_sets : int array -> int array -> bool
(** Order-insensitive equality; for tests. *)

val of_list : int list -> int array
(** Deduplicating conversion; for tests. *)
