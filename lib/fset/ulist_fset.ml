(* Node states. A node's verdict is decided by a single CAS out of its
   pending state, so helpers can never record conflicting outcomes;
   [Killed] records which remove consumed a data node, letting that
   remove's helpers recognize their own success. *)
module Atomic = Nbhash_util.Nb_atomic

type state =
  | Pending_ins
  | Pending_rem
  | Data  (* a successful insert's node, currently in the set *)
  | Killed of node  (* was Data; consumed by the given remove node *)
  | Done_rem  (* a remove that found and killed its key *)
  | Noop  (* a failed operation: duplicate insert or remove miss *)
  | Marker  (* the freeze sentinel; permanent once enlisted *)

and node = { key : int; state : state Atomic.t; next : node option Atomic.t }

type t = { head : node option Atomic.t }

type op = {
  kind : Fset_intf.kind;
  okey : int;
  mutable enlisted : node option;
}

let id = "ulist"

let make_node key state next =
  { key; state = Atomic.make state; next = Atomic.make next }

let create elems =
  let chain =
    Array.fold_left (fun tail k -> Some (make_node k Data tail)) None elems
  in
  { head = Atomic.make chain }

let make_op kind okey = { kind; okey; enlisted = None }

(* A node may be unlinked once it can no longer influence any verdict.
   A [Killed r] node must stay reachable while [r] is pending: r's
   helpers recognize their success by finding it, and unlinking it
   early could let a slow helper reach the end of the list and record
   a spurious [Noop]. *)
let is_unlinkable = function
  | Done_rem | Noop -> true
  | Killed r -> (
    match Atomic.get r.state with
    | Pending_rem -> false
    | Pending_ins | Data | Killed _ | Done_rem | Noop | Marker -> true)
  | Pending_ins | Pending_rem | Data | Marker -> false

(* First non-garbage node reachable through [slot], unlinking terminal
   nodes along the way (they are permanent no-ops, safe to cut). *)
let rec next_live slot =
  match Atomic.get slot with
  | None -> None
  | Some m ->
    if is_unlinkable (Atomic.get m.state) then begin
      ignore
        (Atomic.compare_and_set slot (Some m) (Atomic.get m.next))
      [@nbhash.cas_ok
        "unlinking a terminal node is an optional shortcut: losing the race \
        means another traversal already cut it (or the slot moved on)"];
      next_live m.next
    end
    else Some m

(* Resolve a pending node against its suffix. Any same-key pending
   node encountered is resolved first, which makes per-key verdicts
   deterministic in enlist order (see the module documentation). *)
let rec resolve n =
  match Atomic.get n.state with
  | Data | Killed _ | Done_rem | Noop | Marker -> ()
  | Pending_ins -> resolve_ins n
  | Pending_rem -> resolve_rem n

and resolve_ins n =
  let rec walk slot =
    match next_live slot with
    | None ->
      ignore (Atomic.compare_and_set n.state Pending_ins Data)
      [@nbhash.cas_ok
        "helping: every helper CASes the same pending state to the same \
        verdict; a lost race means the verdict is already published"]
    | Some m ->
      if m.key <> n.key then walk m.next
      else begin
        match Atomic.get m.state with
        | Pending_ins | Pending_rem ->
          resolve m;
          walk slot
        | Data ->
          (* the key is present: this insert fails *)
          ignore (Atomic.compare_and_set n.state Pending_ins Noop)
          [@nbhash.cas_ok
            "helping: every helper CASes the same pending state to the same \
            verdict; a lost race means the verdict is already published"]
        | Killed _ | Done_rem | Noop -> walk m.next
        | Marker -> walk m.next
      end
  in
  walk n.next

and resolve_rem n =
  let rec walk slot =
    match next_live slot with
    | None ->
      ignore (Atomic.compare_and_set n.state Pending_rem Noop)
      [@nbhash.cas_ok
        "helping: every helper CASes the same pending state to the same \
        verdict; a lost race means the verdict is already published"]
    | Some m ->
      if m.key <> n.key then walk m.next
      else begin
        match Atomic.get m.state with
        | Pending_ins | Pending_rem ->
          resolve m;
          walk slot
        | Data ->
          if Atomic.compare_and_set m.state Data (Killed n) then
            ignore (Atomic.compare_and_set n.state Pending_rem Done_rem)
            [@nbhash.cas_ok
              "helping: every helper CASes the same pending state to the same \
              verdict; a lost race means the verdict is already published"]
          else walk slot (* re-examine m's new state *)
        | Killed r when r == n ->
          (* a helper of this very remove already consumed m *)
          ignore (Atomic.compare_and_set n.state Pending_rem Done_rem)
          [@nbhash.cas_ok
            "helping: every helper CASes the same pending state to the same \
            verdict; a lost race means the verdict is already published"]
        | Killed _ | Done_rem | Noop -> walk m.next
        | Marker -> walk m.next
      end
  in
  walk n.next

let head_frozen h =
  match h with
  | Some hn -> ( match Atomic.get hn.state with Marker -> true | _ -> false)
  | None -> false

let rec enlist t n =
  let h = Atomic.get t.head in
  if head_frozen h then false
  else begin
    Atomic.set n.next h;
    if Atomic.compare_and_set t.head h (Some n) then true else enlist t n
  end

let invoke t op =
  match op.enlisted with
  | Some _ -> true (* already applied; only the owner retries *)
  | None ->
    let state =
      match op.kind with
      | Fset_intf.Ins -> Pending_ins
      | Fset_intf.Rem -> Pending_rem
    in
    let n = make_node op.okey state None in
    if enlist t n then begin
      resolve n;
      op.enlisted <- Some n;
      true
    end
    else false

let get_response op =
  match op.enlisted with
  | None -> false
  | Some n -> (
    match Atomic.get n.state with
    | Data | Killed _ | Done_rem -> true
    | Noop -> false
    | Pending_ins | Pending_rem | Marker -> assert false)

let has_member t k =
  let rec walk slot =
    match next_live slot with
    | None -> false
    | Some m ->
      if m.key <> k then walk m.next
      else begin
        match Atomic.get m.state with
        | Data -> true
        | Pending_ins | Pending_rem ->
          resolve m;
          walk slot
        | Killed _ | Done_rem | Noop | Marker -> walk m.next
      end
  in
  walk t.head

(* Resolve every pending node, then gather the data nodes. Exact in
   quiescent (or frozen) states. *)
let collect t =
  let acc = ref [] in
  let rec walk slot =
    match next_live slot with
    | None -> ()
    | Some m -> (
      match Atomic.get m.state with
      | Pending_ins | Pending_rem ->
        resolve m;
        walk slot
      | Data ->
        acc := m.key :: !acc;
        walk m.next
      | Killed _ | Done_rem | Noop | Marker -> walk m.next)
  in
  walk t.head;
  Array.of_list !acc

let elements = collect
let size t = Array.length (collect t)

let rec freeze t =
  let h = Atomic.get t.head in
  if head_frozen h then collect t
  else begin
    let m = make_node min_int Marker h in
    if Atomic.compare_and_set t.head h (Some m) then collect t else freeze t
  end

let is_frozen t = head_frozen (Atomic.get t.head)
