module Atomic = Nbhash_util.Nb_atomic

module Make (E : Elems.S) : Fset_intf.WF = struct
  module Tm = Nbhash_telemetry.Global
  module Ev = Nbhash_telemetry.Event

  let site_freeze =
    Nbhash_telemetry.Site.register ("wf_fset(" ^ E.id ^ ")/freeze")

  let site_invoke =
    Nbhash_telemetry.Site.register ("wf_fset(" ^ E.id ^ ")/invoke")

  let infinity_prio = max_int

  type op = {
    kind : Fset_intf.kind;
    key : int;
    resp : bool Atomic.t;
    prio : int Atomic.t;
  }

  type slot = Empty | Frozen | Pending of op
  type node = { elems : E.t; slot : slot Atomic.t }
  type t = { node : node Atomic.t; flag : bool Atomic.t }

  let id = "wf-" ^ E.id

  let create elems =
    {
      node = Atomic.make { elems = E.of_array elems; slot = Atomic.make Empty };
      flag = Atomic.make false;
    }

  let make_op kind key ~prio =
    { kind; key; resp = Atomic.make false; prio = Atomic.make prio }

  let op_kind op = op.kind
  let op_key op = op.key
  let op_prio op = Atomic.get op.prio
  let op_is_done op = Atomic.get op.prio = infinity_prio
  let get_response op = Atomic.get op.resp

  (* Complete the pending operation of the current node, if any. All
     helpers compute the same (resp, elems) from the same immutable
     (node, op) pair, so the racy writes below are idempotent; the
     node CAS succeeds for exactly one helper. Setting [prio] to
     infinity is the abstract [done := true]. *)
  let help_finish t =
    let o = Atomic.get t.node in
    match Atomic.get o.slot with
    | Empty | Frozen -> ()
    | Pending op ->
      let present = E.mem o.elems op.key in
      let resp, elems =
        match op.kind with
        | Fset_intf.Ins ->
          (not present, if present then o.elems else E.add o.elems op.key)
        | Fset_intf.Rem ->
          (present, if present then E.remove o.elems op.key else o.elems)
      in
      Atomic.set op.resp resp;
      Atomic.set op.prio infinity_prio;
      ignore
        (Atomic.compare_and_set t.node o { elems; slot = Atomic.make Empty })
      [@nbhash.cas_ok
        "helping: all helpers derive the same successor node from the same \
         immutable (node, op) pair; exactly one CAS installs it"]

  (* Once a slot is CASed from Empty to Frozen its node can never be
     replaced (replacement requires a completed Pending), so the set
     is permanently immutable from that point. *)
  let rec do_freeze t =
    let o = Atomic.get t.node in
    match Atomic.get o.slot with
    | Frozen -> ()
    | Empty ->
      if Atomic.compare_and_set o.slot Empty Frozen then Tm.emit Ev.Freeze
      else begin
        Tm.cas_retry site_freeze;
        do_freeze t
      end
    | Pending _ ->
      help_finish t;
      do_freeze t

  let freeze t =
    Atomic.set t.flag true;
    do_freeze t;
    E.to_array (Atomic.get t.node).elems

  let rec invoke t op =
    if op_is_done op then true
    else begin
      let o = Atomic.get t.node in
      match Atomic.get o.slot with
      | Frozen -> op_is_done op
      | (Empty | Pending _) as s ->
        if Atomic.get t.flag then begin
          do_freeze t;
          op_is_done op
        end
        else begin
          match s with
          | Empty ->
            if op_is_done op then true
            else if Atomic.compare_and_set o.slot Empty (Pending op) then begin
              help_finish t;
              true
            end
            else begin
              Tm.cas_retry site_invoke;
              invoke t op
            end
          | Frozen -> op_is_done op
          | Pending _ ->
            help_finish t;
            invoke t op
        end
    end

  let has_member t k =
    let o = Atomic.get t.node in
    match Atomic.get o.slot with
    | Pending op when op.key = k -> op.kind = Fset_intf.Ins
    | Empty | Frozen | Pending _ -> E.mem o.elems k

  (* The logical contents include any installed (hence linearized)
     pending operation. *)
  let elements t =
    let o = Atomic.get t.node in
    match Atomic.get o.slot with
    | Empty | Frozen -> E.to_array o.elems
    | Pending op ->
      let present = E.mem o.elems op.key in
      let elems =
        match op.kind with
        | Fset_intf.Ins -> if present then o.elems else E.add o.elems op.key
        | Fset_intf.Rem -> if present then E.remove o.elems op.key else o.elems
      in
      E.to_array elems

  let size t = E.length (Atomic.get t.node).elems

  let is_frozen t =
    match Atomic.get (Atomic.get t.node).slot with
    | Frozen -> true
    | Empty | Pending _ -> false
end
