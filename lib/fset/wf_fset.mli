(** The cooperative wait-free FSet of Figure 6, as a functor over the
    immutable element representation.

    Contending threads synchronize on the [op] slot of the current
    FSetNode: an operation is first installed into the slot by CAS
    (its linearization point), then any thread can complete it
    ([help_finish]) by computing the result set, publishing the
    response, marking the operation done (priority becomes infinity),
    and swinging the node pointer. Freezing first raises a per-set
    [flag] so in-flight invokers stand down, then CASes the slot to a
    permanent [Frozen] marker; a node whose slot is [Frozen] can never
    be replaced, which makes the freeze permanent.

    The implementation is lock-free on its own; wait-freedom of table
    operations comes from the announce-and-help protocol in
    {!Nbhash.Wf_hashset} (paper section 5). *)

module Make (E : Elems.S) : Fset_intf.WF
