(** The specialized lock-free FSet of Figure 5, as a functor over the
    immutable element representation.

    All state lives in a single atomic pointer to an immutable
    FSetNode [(elems, ok)]; invoke and freeze are copy-on-write CAS
    loops. Because the lock-free hash set never lets one thread apply
    another thread's operation, the specification's [done] bit is
    unnecessary (paper section 6). The early-exit optimization the
    paper describes (answering a redundant insert/remove without a
    CAS) is included. *)

module Make (E : Elems.S) : Fset_intf.S
