(** Lock-free FSet over a sorted flat array (binary-search
    membership) — an additional bucket representation beyond the
    paper's unsorted array and list. *)
include Lf_fset.Make (Elems.Sorted_rep)
