(** The executable specification of Figure 1: a sequential (not
    thread-safe) FSet with an explicit [done] bit on operations.

    This is the oracle the concurrent implementations are tested
    against, and a readable reference for the abstract semantics. *)

include Fset_intf.S

val op_kind : op -> Fset_intf.kind
val op_key : op -> int
val op_done : op -> bool
