(** Interfaces of freezable set (FSet) objects, after Figure 1 of the
    paper.

    An FSet is an integer set supporting insert/remove (submitted as
    first-class operation objects via {!S.invoke}), membership test,
    and a [freeze] operation that renders it permanently immutable and
    returns its final contents. Buckets of the hash tables are FSets;
    resizing freezes the source buckets before migrating their keys,
    which is what makes migration atomic-free and linearizable. *)

type kind = Ins | Rem

let pp_kind ppf = function
  | Ins -> Format.pp_print_string ppf "ins"
  | Rem -> Format.pp_print_string ppf "rem"

(** Operations common to every FSet implementation; the hash-table
    scaffolding ({!Nbhash.Table_core}) is a functor over this. *)
module type CORE = sig
  type t

  val id : string
  (** Short tag used to derive table names ("array", "list", ...). *)

  val create : int array -> t
  (** [create elems] is a fresh, mutable FSet holding [elems]
      (assumed pairwise distinct; ownership of the array is not
      taken). *)

  val has_member : t -> int -> bool
  (** Linearizable membership test (HASMEMBER in the paper). *)

  val freeze : t -> int array
  (** Render the set permanently immutable and return its final
      contents (FREEZE). Idempotent; all callers get the same final
      state. *)

  val size : t -> int
  (** Current number of elements; used by resize heuristics. After a
      freeze this is the final size. *)

  val elements : t -> int array
  (** Snapshot of the current logical contents (including the effect
      of any linearized-but-unfinished pending operation). Exact only
      in quiescent states; used by tests and diagnostics. *)

  val is_frozen : t -> bool
end

(** A lock-free FSet as required by the lock-free hash set (paper
    section 4): operations are applied only by their allocating
    thread, so the [done] bit of the specification can be elided
    (section 6). *)
module type S = sig
  include CORE

  type op

  val make_op : kind -> int -> op

  val invoke : t -> op -> bool
  (** [invoke t op] attempts to apply [op]. [true] means [op] was
      applied (its response is readable); [false] means [t] is frozen
      and [op] was not applied. *)

  val get_response : op -> bool
end

(** A cooperative wait-free FSet (paper section 7). Operations carry a
    priority; the abstract [done] bit is encoded as
    [prio = infinity_prio], which lets helping threads apply each
    operation at most once. *)
module type WF = sig
  include CORE

  type op

  val infinity_prio : int

  val make_op : kind -> int -> prio:int -> op
  (** Requires [prio <> infinity_prio] for an operation that is to be
      executed; [prio = infinity_prio] makes an inert (already-done)
      operation, useful as an announce-array placeholder. *)

  val invoke : t -> op -> bool
  (** As {!S.invoke}, but any thread may invoke any announced [op];
      the priority protocol guarantees at-most-once application. *)

  val get_response : op -> bool

  val op_kind : op -> kind
  val op_key : op -> int

  val op_prio : op -> int
  (** Current priority; becomes [infinity_prio] once the operation has
      been applied. *)

  val op_is_done : op -> bool
end
