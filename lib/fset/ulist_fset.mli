(** A freezable set over a practical non-blocking {e unordered} list —
    the substrate the paper cites for its list-based freezable sets
    ("Practical lock-free and wait-free implementations of freezable
    sets can be derived from a recent unordered list algorithm [20]",
    section 1; reference [20] is Zhang, Zhao, Yang, Liu, Spear,
    DISC 2013).

    Unlike the copy-on-write {!Lf_list_fset}, mutation does not
    replace the whole set: every operation {e enlists} a node at the
    list head by CAS and is then resolved against the suffix — an
    insert becomes data if no same-key data node exists behind it, a
    remove invalidates the first same-key data node behind it. Any
    thread that needs a pending node's verdict helps resolve it first,
    which makes per-key resolution deterministic in enlist order.
    Invalid nodes are unlinked lazily during traversals. Freezing
    enlists a permanent marker at the head, after which enlisting
    fails and the set is immutable. *)

include Fset_intf.S
