(** Immutable element containers used inside copy-on-write FSet nodes.

    The paper's section 6 observes that because FSetNodes are
    immutable, any sequential set representation works; it advocates
    flat unsorted arrays for locality. We provide the array
    representation (LFArray/WFArray tables) and a linked-list one
    (LFList/WFList tables), and the FSet implementations are functors
    over this signature. *)

module type S = sig
  type t

  val id : string
  val of_array : int array -> t
  val to_array : t -> int array
  val mem : t -> int -> bool

  val add : t -> int -> t
  (** Requires [not (mem t k)]. *)

  val remove : t -> int -> t
  (** Requires [mem t k]. *)

  val length : t -> int
end

module Array_rep : S with type t = int array = struct
  type t = int array

  let id = "array"
  let of_array = Array.copy
  let to_array = Array.copy
  let mem = Intset.mem
  let add = Intset.add
  let remove = Intset.remove
  let length = Array.length
end

(* Sorted flat array: membership by binary search, updates still O(n)
   copies. Section 6 notes any sequential representation works inside
   an immutable FSetNode; this one trades slightly dearer inserts for
   logarithmic lookups in large buckets. *)
module Sorted_rep : S with type t = int array = struct
  type t = int array

  let id = "sorted"

  let of_array a =
    let b = Array.copy a in
    Array.sort compare b;
    b

  let to_array = Array.copy

  let rec bsearch a k lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if a.(mid) < k then bsearch a k (mid + 1) hi else bsearch a k lo mid
    end

  let mem a k =
    let i = bsearch a k 0 (Array.length a) in
    i < Array.length a && a.(i) = k

  let add a k =
    let n = Array.length a in
    let i = bsearch a k 0 n in
    let b = Array.make (n + 1) k in
    Array.blit a 0 b 0 i;
    Array.blit a i b (i + 1) (n - i);
    b

  let remove a k =
    let n = Array.length a in
    let i = bsearch a k 0 n in
    let b = Array.make (n - 1) 0 in
    Array.blit a 0 b 0 i;
    Array.blit a (i + 1) b i (n - 1 - i);
    b

  let length = Array.length
end

module List_rep : S with type t = int list = struct
  type t = int list

  let id = "list"
  let of_array a = Array.to_list a
  let to_array l = Array.of_list l
  let mem l k = List.mem k l
  let add l k = k :: l
  let remove l k = List.filter (fun x -> x <> k) l
  let length = List.length
end
