module Atomic = Nbhash_util.Nb_atomic

module Make (E : Elems.S) : Fset_intf.S = struct
  module Tm = Nbhash_telemetry.Global
  module Ev = Nbhash_telemetry.Event

  (* One site per retry loop per representation; registration is
     idempotent on the name, so re-instantiating the functor reuses
     the first instance's ids. *)
  let site_ins = Nbhash_telemetry.Site.register ("lf_fset(" ^ E.id ^ ")/ins")
  let site_rem = Nbhash_telemetry.Site.register ("lf_fset(" ^ E.id ^ ")/rem")

  let site_freeze =
    Nbhash_telemetry.Site.register ("lf_fset(" ^ E.id ^ ")/freeze")

  type node = { elems : E.t; ok : bool }
  type t = node Atomic.t
  type op = { kind : Fset_intf.kind; key : int; mutable resp : bool }

  let id = E.id
  let create elems = Atomic.make { elems = E.of_array elems; ok = true }
  let make_op kind key = { kind; key; resp = false }

  (* The CAS publishes the new node; on failure some other thread
     changed the node (another update or a freeze) and we re-read.
     A redundant operation (inserting a present key, removing an
     absent one) linearizes at the read of the node: no CAS needed. *)
  let rec invoke t op =
    let o = Atomic.get t in
    if not o.ok then false
    else begin
      let present = E.mem o.elems op.key in
      match op.kind with
      | Fset_intf.Ins when present ->
        op.resp <- false;
        true
      | Fset_intf.Rem when not present ->
        op.resp <- false;
        true
      | Fset_intf.Ins ->
        if Atomic.compare_and_set t o { elems = E.add o.elems op.key; ok = true }
        then begin
          op.resp <- true;
          true
        end
        else begin
          Tm.cas_retry site_ins;
          invoke t op
        end
      | Fset_intf.Rem ->
        if
          Atomic.compare_and_set t o
            { elems = E.remove o.elems op.key; ok = true }
        then begin
          op.resp <- true;
          true
        end
        else begin
          Tm.cas_retry site_rem;
          invoke t op
        end
    end

  let get_response op = op.resp

  let rec freeze t =
    let o = Atomic.get t in
    if not o.ok then E.to_array o.elems
    else if Atomic.compare_and_set t o { elems = o.elems; ok = false } then begin
      Tm.emit Ev.Freeze;
      E.to_array o.elems
    end
    else begin
      Tm.cas_retry site_freeze;
      freeze t
    end

  let has_member t k = E.mem (Atomic.get t).elems k
  let size t = E.length (Atomic.get t).elems
  let elements t = E.to_array (Atomic.get t).elems
  let is_frozen t = not (Atomic.get t).ok
end
