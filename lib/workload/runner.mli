(** Multi-domain throughput measurement, reproducing the paper's
    methodology: prepopulate to half the key range, run randomly mixed
    operations for a fixed wall-clock interval on every thread, report
    aggregate operations per microsecond, and average several trials.

    Caveat recorded in DESIGN.md: this machine exposes a single core,
    so domain counts above 1 measure oversubscribed (time-sliced)
    execution, not parallel speedup. *)

type result = {
  table : string;
  threads : int;
  spec : Workload.spec;
  duration : float;  (** measured seconds *)
  total_ops : int;
  throughput : float;  (** operations per microsecond, aggregate *)
  final_buckets : int;
  final_cardinal : int;
  telemetry : Nbhash_telemetry.Snapshot.t option;
      (** Events recorded during the measurement window (prepopulation
          excluded), when a recording probe was installed via
          {!Nbhash_telemetry.Global.install}; [None] under the default
          no-op probe. *)
}

val prepopulate : Factory.table -> Workload.spec -> seed:int -> unit
(** Insert each key of the range independently with probability
    [spec.prepopulate]. *)

val run :
  Factory.table ->
  threads:int ->
  spec:Workload.spec ->
  duration:float ->
  ?seed:int ->
  unit ->
  result
(** One trial on a freshly prepopulated table. *)

val run_trials :
  (unit -> Factory.table) ->
  threads:int ->
  spec:Workload.spec ->
  duration:float ->
  trials:int ->
  result * Nbhash_util.Stats.summary
(** Fresh table per trial; returns the last result and the summary of
    per-trial throughputs. *)
