type dist = Uniform | Zipf of float

type sampler = {
  key_range : int;
  alias : Nbhash_util.Alias.t option;  (* None = uniform *)
  scramble : bool;  (* permute Zipf ranks (only when key_range is 2^k) *)
}

let sampler ?(dist = Uniform) ~key_range () =
  if key_range < 2 then invalid_arg "Keystream.sampler: key_range < 2";
  match dist with
  | Uniform -> { key_range; alias = None; scramble = false }
  | Zipf s ->
    if s < 0. then invalid_arg "Keystream.sampler: Zipf exponent < 0";
    {
      key_range;
      alias = Some (Nbhash_util.Alias.zipf ~n:key_range ~s);
      scramble = Nbhash_util.Bits.is_pow2 key_range;
    }

let key_range s = s.key_range

(* Zipf ranks map to keys through a cheap bijective scramble so the
   popular keys do not all collide into low-numbered buckets. *)
let[@inline] scramble s rank = (rank * 0x9E3779B1) land (s.key_range - 1)

let draw s rng =
  match s.alias with
  | None -> Nbhash_util.Xoshiro.below rng s.key_range
  | Some alias ->
    let rank = Nbhash_util.Alias.draw alias rng in
    if s.scramble then scramble s rank else rank

type t = { sampler : sampler; rng : Nbhash_util.Xoshiro.t }

let of_sampler sampler ~seed = { sampler; rng = Nbhash_util.Xoshiro.create seed }

let create ?dist ~key_range ~seed () =
  of_sampler (sampler ?dist ~key_range ()) ~seed

let next t = draw t.sampler t.rng
