module Atomic = Nbhash_util.Nb_atomic

type result = {
  table : string;
  threads : int;
  spec : Workload.spec;
  duration : float;
  total_ops : int;
  throughput : float;
  final_buckets : int;
  final_cardinal : int;
  telemetry : Nbhash_telemetry.Snapshot.t option;
}

let prepopulate table spec ~seed =
  let rng = Nbhash_util.Xoshiro.create seed in
  let ops = table.Factory.new_handle () in
  for k = 0 to spec.Workload.key_range - 1 do
    if Nbhash_util.Xoshiro.float rng < spec.Workload.prepopulate then
      ignore (ops.Factory.ins k)
  done;
  ops.Factory.detach ()

let now () = Unix.gettimeofday ()

(* Each worker draws operations from a private stream and counts
   completions; the main thread opens the measurement window with a
   barrier, sleeps, raises the stop flag, and joins. *)
let run table ~threads ~spec ~duration ?(seed = 42) () =
  prepopulate table spec ~seed;
  let barrier = Barrier.create (threads + 1) in
  let stop = Atomic.make false in
  let counts = Array.make threads 0 in
  let worker i () =
    let ops = table.Factory.new_handle () in
    let rng = Nbhash_util.Xoshiro.create (seed + 1000 + i) in
    Barrier.wait barrier;
    let n = ref 0 in
    while not (Atomic.get stop) do
      (match Workload.next spec rng with
      | Workload.Lookup, k -> ignore (ops.Factory.look k)
      | Workload.Insert, k -> ignore (ops.Factory.ins k)
      | Workload.Remove, k -> ignore (ops.Factory.rem k));
      incr n
    done;
    counts.(i) <- !n;
    ops.Factory.detach ()
  in
  (* When a recording probe is installed, scope its counters to the
     measurement window: prepopulation events are discarded here, and
     the snapshot is read only after every worker has joined. *)
  let recording = Nbhash_telemetry.Global.is_recording () in
  if recording then Nbhash_telemetry.Global.reset ();
  (* Same scoping for the flight recorder: drop prepopulation records
     so an installed trace ring covers only the measurement window. *)
  (match Nbhash_telemetry.Trace.active () with
  | Some tr -> Nbhash_telemetry.Trace.clear tr
  | None -> ());
  (* And for the contention profiler, which must reset in lockstep
     with the probe: the per-site retry sums are cross-checked against
     the probe's cas_retry counter, so they have to cover the same
     window. *)
  (match Nbhash_telemetry.Profile.active () with
  | Some p -> Nbhash_telemetry.Profile.reset p
  | None -> ());
  let domains = List.init threads (fun i -> Domain.spawn (worker i)) in
  Barrier.wait barrier;
  let t0 = now () in
  Unix.sleepf duration;
  Atomic.set stop true
  [@nbhash.cas_ok
    "one-way false -> true stop latch, written only by the coordinator \
     that created it"];
  List.iter Domain.join domains;
  let t1 = now () in
  let total_ops = Array.fold_left ( + ) 0 counts in
  let measured = t1 -. t0 in
  {
    table = table.Factory.name;
    threads;
    spec;
    duration = measured;
    total_ops;
    throughput = Float.of_int total_ops /. (measured *. 1e6);
    final_buckets = table.Factory.bucket_count ();
    final_cardinal = table.Factory.cardinal ();
    telemetry =
      (if recording then Some (Nbhash_telemetry.Global.snapshot ()) else None);
  }

let run_trials make_table ~threads ~spec ~duration ~trials =
  assert (trials > 0);
  let results =
    List.init trials (fun i ->
        let table = make_table () in
        let r = run table ~threads ~spec ~duration ~seed:(42 + (100 * i)) () in
        (* Retire the trial's gauges/watchdog registrations so a serve
           endpoint only ever exposes live tables. *)
        table.Factory.close ();
        r)
  in
  let throughputs =
    Array.of_list (List.map (fun r -> r.throughput) results)
  in
  (List.nth results (trials - 1), Nbhash_util.Stats.summarize throughputs)
