(** The paper's stress-test microbenchmark workload (section 8): for a
    lookup ratio L, operations are lookups with probability L and
    inserts/removes with probability (1-L)/2 each, on keys drawn
    uniformly from a fixed range; tables are prepopulated to half the
    range, so occupancy stays steady. *)

type kind = Lookup | Insert | Remove

type distribution =
  | Uniform
  | Zipf of float
      (** key popularity follows Zipf(s): rank-i key drawn with
          probability proportional to 1/(i+1)^s. Keys are permuted so
          popular keys spread across buckets. *)

type spec = {
  key_range : int;  (** keys are drawn from [0, key_range) *)
  lookup_ratio : float;  (** L in [0, 1] *)
  prepopulate : float;  (** fraction of the range inserted up front *)
  sampler : sampler;
}

and sampler

val spec :
  ?lookup_ratio:float ->
  ?prepopulate:float ->
  ?dist:distribution ->
  key_range:int ->
  unit ->
  spec
(** Defaults: [lookup_ratio = 0.], [prepopulate = 0.5],
    [dist = Uniform]. *)

val next : spec -> Nbhash_util.Xoshiro.t -> kind * int
(** Draw the next operation. *)

val pp_spec : Format.formatter -> spec -> unit
