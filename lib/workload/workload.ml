type kind = Lookup | Insert | Remove

type distribution = Uniform | Zipf of float

type sampler = Keystream.sampler

type spec = {
  key_range : int;
  lookup_ratio : float;
  prepopulate : float;
  sampler : sampler;
}

let spec ?(lookup_ratio = 0.) ?(prepopulate = 0.5) ?(dist = Uniform)
    ~key_range () =
  if key_range < 2 then invalid_arg "key_range < 2";
  if lookup_ratio < 0. || lookup_ratio > 1. then invalid_arg "lookup_ratio";
  if prepopulate < 0. || prepopulate > 1. then invalid_arg "prepopulate";
  let dist =
    match dist with
    | Uniform -> Keystream.Uniform
    | Zipf s ->
      if s < 0. then invalid_arg "Zipf exponent < 0";
      Keystream.Zipf s
  in
  { key_range; lookup_ratio; prepopulate; sampler = Keystream.sampler ~dist ~key_range () }

let draw_key spec rng = Keystream.draw spec.sampler rng

let next spec rng =
  let k = draw_key spec rng in
  let r = Nbhash_util.Xoshiro.float rng in
  if r < spec.lookup_ratio then (Lookup, k)
  else if r < spec.lookup_ratio +. ((1. -. spec.lookup_ratio) /. 2.) then
    (Insert, k)
  else (Remove, k)

let pp_spec ppf s =
  Format.fprintf ppf "range=2^%d L=%.0f%%"
    (Nbhash_util.Bits.log2 s.key_range)
    (s.lookup_ratio *. 100.)
