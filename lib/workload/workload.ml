type kind = Lookup | Insert | Remove

type distribution = Uniform | Zipf of float

type sampler = Any | Ranked of Nbhash_util.Alias.t

type spec = {
  key_range : int;
  lookup_ratio : float;
  prepopulate : float;
  sampler : sampler;
}

let spec ?(lookup_ratio = 0.) ?(prepopulate = 0.5) ?(dist = Uniform)
    ~key_range () =
  if key_range < 2 then invalid_arg "key_range < 2";
  if lookup_ratio < 0. || lookup_ratio > 1. then invalid_arg "lookup_ratio";
  if prepopulate < 0. || prepopulate > 1. then invalid_arg "prepopulate";
  let sampler =
    match dist with
    | Uniform -> Any
    | Zipf s ->
      if s < 0. then invalid_arg "Zipf exponent < 0";
      Ranked (Nbhash_util.Alias.zipf ~n:key_range ~s)
  in
  { key_range; lookup_ratio; prepopulate; sampler }

(* Zipf ranks map to keys through a cheap bijective scramble so the
   popular keys do not all collide into low-numbered buckets. *)
let scramble spec rank =
  (rank * 0x9E3779B1) land (spec.key_range - 1)

let draw_key spec rng =
  match spec.sampler with
  | Any -> Nbhash_util.Xoshiro.below rng spec.key_range
  | Ranked alias ->
    let rank = Nbhash_util.Alias.draw alias rng in
    if Nbhash_util.Bits.is_pow2 spec.key_range then scramble spec rank
    else rank

let next spec rng =
  let k = draw_key spec rng in
  let r = Nbhash_util.Xoshiro.float rng in
  if r < spec.lookup_ratio then (Lookup, k)
  else if r < spec.lookup_ratio +. ((1. -. spec.lookup_ratio) /. 2.) then
    (Insert, k)
  else (Remove, k)

let pp_spec ppf s =
  Format.fprintf ppf "range=2^%d L=%.0f%%"
    (Nbhash_util.Bits.log2 s.key_range)
    (s.lookup_ratio *. 100.)
