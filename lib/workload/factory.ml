module Atomic = Nbhash_util.Nb_atomic
module V = Nbhash.Hashset_intf

type ops = {
  ins : int -> bool;
  rem : int -> bool;
  look : int -> bool;
  force_resize : grow:bool -> unit;
  detach : unit -> unit;
}

type table = {
  name : string;
  new_handle : unit -> ops;
  bucket_count : unit -> int;
  cardinal : unit -> int;
  elements : unit -> int array;
  check_invariants : unit -> unit;
  resize_stats : unit -> Nbhash.Hashset_intf.resize_stats;
  bucket_sizes : unit -> int array;
  pending : unit -> (int * int) array;
  inspect : unit -> Nbhash.Hashset_intf.table_view;
  close : unit -> unit;
}

type maker = ?policy:Nbhash.Policy.t -> ?max_threads:int -> unit -> table

(* Distinguishes same-named tables that coexist (bench arms, trials)
   in gauge label sets and watchdog source names. *)
let instance_seq = Atomic.make 0

(* Register this table's health gauges and its watchdog source;
   returns the detach thunk stored in [close]. The gauge thunks hold
   the table alive through their closures, so a table dropped without
   [close] merely leaves stale-but-safe gauges behind. *)
let attach ~name ~inspect ~pending =
  let module G = Nbhash_telemetry.Gauge in
  let instance = string_of_int (Atomic.fetch_and_add instance_seq 1) in
  let labels = [ ("table", name); ("instance", instance) ] in
  let gauge metric help read =
    G.register ~name:("nbhash_table_" ^ metric) ~help ~labels (fun () ->
        read (inspect ()))
  in
  let gauges =
    [
      gauge "load_factor" "Keys per bucket" (fun v -> v.V.load_factor);
      gauge "buckets" "Current bucket-array size" (fun v ->
          float_of_int v.V.buckets);
      gauge "cardinal" "Keys in the table" (fun v -> float_of_int v.V.cardinal);
      gauge "max_depth" "Deepest bucket" (fun v -> float_of_int v.V.max_depth);
      gauge "frozen_buckets" "Buckets in the frozen (immutable) state"
        (fun v -> float_of_int v.V.frozen_buckets);
      gauge "migration_progress"
        "Fraction of head buckets initialized; 1 when not migrating"
        (fun v -> v.V.migration_progress);
      gauge "announce_pending" "Announced-but-incomplete operations" (fun v ->
          float_of_int v.V.announce_pending);
    ]
  in
  let wd =
    Nbhash_telemetry.Watchdog.register_source
      ~name:(name ^ "#" ^ instance)
      pending
  in
  fun () ->
    List.iter G.unregister gauges;
    Nbhash_telemetry.Watchdog.unregister_source wd

let of_module (module S : Nbhash.Hashset_intf.S) : maker =
 fun ?policy ?max_threads () ->
  let t = S.create ?policy ?max_threads () in
  let close =
    attach ~name:S.name
      ~inspect:(fun () -> S.inspect t)
      ~pending:(fun () -> S.pending_ops t)
  in
  {
    name = S.name;
    new_handle =
      (fun () ->
        let h = S.register t in
        {
          ins = S.insert h;
          rem = S.remove h;
          look = S.contains h;
          force_resize = (fun ~grow -> S.force_resize h ~grow);
          detach = (fun () -> S.unregister h);
        });
    bucket_count = (fun () -> S.bucket_count t);
    cardinal = (fun () -> S.cardinal t);
    elements = (fun () -> S.elements t);
    check_invariants = (fun () -> S.check_invariants t);
    resize_stats = (fun () -> S.resize_stats t);
    bucket_sizes = (fun () -> S.bucket_sizes t);
    pending = (fun () -> S.pending_ops t);
    inspect = (fun () -> S.inspect t);
    close;
  }

let adaptive_tuned ~fast_threshold : maker =
 fun ?policy ?max_threads () ->
  let module A = Nbhash.Tables.Adaptive in
  let t = A.create_tuned ?policy ?max_threads ~fast_threshold () in
  let name = Printf.sprintf "Adaptive(%d)" fast_threshold in
  let close =
    attach ~name
      ~inspect:(fun () -> A.inspect t)
      ~pending:(fun () -> A.pending_ops t)
  in
  {
    name;
    new_handle =
      (fun () ->
        let h = A.register t in
        {
          ins = A.insert h;
          rem = A.remove h;
          look = A.contains h;
          force_resize = (fun ~grow -> A.force_resize h ~grow);
          detach = (fun () -> A.unregister h);
        });
    bucket_count = (fun () -> A.bucket_count t);
    cardinal = (fun () -> A.cardinal t);
    elements = (fun () -> A.elements t);
    check_invariants = (fun () -> A.check_invariants t);
    resize_stats = (fun () -> A.resize_stats t);
    bucket_sizes = (fun () -> A.bucket_sizes t);
    pending = (fun () -> A.pending_ops t);
    inspect = (fun () -> A.inspect t);
    close;
  }

let all_eight =
  [
    ("SplitOrder", of_module (module Nbhash_splitorder.Split_ordered));
    ("LFArray", of_module (module Nbhash.Tables.LFArray));
    ("LFArrayOpt", of_module (module Nbhash.Tables.LFArrayOpt));
    ("LFList", of_module (module Nbhash.Tables.LFList));
    ("WFArray", of_module (module Nbhash.Tables.WFArray));
    ("WFList", of_module (module Nbhash.Tables.WFList));
    ("Adaptive", of_module (module Nbhash.Tables.Adaptive));
    ("AdaptiveOpt", of_module (module Nbhash.Tables.AdaptiveOpt));
  ]

let all_nine =
  all_eight @ [ ("LFFlat", of_module (module Nbhash.Tables.LFFlat)) ]

let with_michael =
  all_nine
  @ [
      ("LFUlist", of_module (module Nbhash.Tables.LFUlist));
      ("LFSorted", of_module (module Nbhash.Tables.LFSorted));
      ("Michael", of_module (module Nbhash_michael.Michael_hashset));
      ("Locked", of_module (module Nbhash_locked.Locked_hashset));
    ]

let by_name name = List.assoc name with_michael
