type ops = {
  ins : int -> bool;
  rem : int -> bool;
  look : int -> bool;
  force_resize : grow:bool -> unit;
  detach : unit -> unit;
}

type table = {
  name : string;
  new_handle : unit -> ops;
  bucket_count : unit -> int;
  cardinal : unit -> int;
  elements : unit -> int array;
  check_invariants : unit -> unit;
  resize_stats : unit -> Nbhash.Hashset_intf.resize_stats;
  bucket_sizes : unit -> int array;
  pending : unit -> (int * int) array;
}

type maker = ?policy:Nbhash.Policy.t -> ?max_threads:int -> unit -> table

let of_module (module S : Nbhash.Hashset_intf.S) : maker =
 fun ?policy ?max_threads () ->
  let t = S.create ?policy ?max_threads () in
  {
    name = S.name;
    new_handle =
      (fun () ->
        let h = S.register t in
        {
          ins = S.insert h;
          rem = S.remove h;
          look = S.contains h;
          force_resize = (fun ~grow -> S.force_resize h ~grow);
          detach = (fun () -> S.unregister h);
        });
    bucket_count = (fun () -> S.bucket_count t);
    cardinal = (fun () -> S.cardinal t);
    elements = (fun () -> S.elements t);
    check_invariants = (fun () -> S.check_invariants t);
    resize_stats = (fun () -> S.resize_stats t);
    bucket_sizes = (fun () -> S.bucket_sizes t);
    pending = (fun () -> S.pending_ops t);
  }

let adaptive_tuned ~fast_threshold : maker =
 fun ?policy ?max_threads () ->
  let module A = Nbhash.Tables.Adaptive in
  let t = A.create_tuned ?policy ?max_threads ~fast_threshold () in
  {
    name = Printf.sprintf "Adaptive(%d)" fast_threshold;
    new_handle =
      (fun () ->
        let h = A.register t in
        {
          ins = A.insert h;
          rem = A.remove h;
          look = A.contains h;
          force_resize = (fun ~grow -> A.force_resize h ~grow);
          detach = (fun () -> A.unregister h);
        });
    bucket_count = (fun () -> A.bucket_count t);
    cardinal = (fun () -> A.cardinal t);
    elements = (fun () -> A.elements t);
    check_invariants = (fun () -> A.check_invariants t);
    resize_stats = (fun () -> A.resize_stats t);
    bucket_sizes = (fun () -> A.bucket_sizes t);
    pending = (fun () -> A.pending_ops t);
  }

let all_eight =
  [
    ("SplitOrder", of_module (module Nbhash_splitorder.Split_ordered));
    ("LFArray", of_module (module Nbhash.Tables.LFArray));
    ("LFArrayOpt", of_module (module Nbhash.Tables.LFArrayOpt));
    ("LFList", of_module (module Nbhash.Tables.LFList));
    ("WFArray", of_module (module Nbhash.Tables.WFArray));
    ("WFList", of_module (module Nbhash.Tables.WFList));
    ("Adaptive", of_module (module Nbhash.Tables.Adaptive));
    ("AdaptiveOpt", of_module (module Nbhash.Tables.AdaptiveOpt));
  ]

let with_michael =
  all_eight
  @ [
      ("LFUlist", of_module (module Nbhash.Tables.LFUlist));
      ("LFSorted", of_module (module Nbhash.Tables.LFSorted));
      ("Michael", of_module (module Nbhash_michael.Michael_hashset));
      ("Locked", of_module (module Nbhash_locked.Locked_hashset));
    ]

let by_name name = List.assoc name with_michael
