(** A sense-reversing spin barrier for aligning worker domains at the
    start and end of a timed measurement interval. *)

type t

val create : int -> t
(** [create n] synchronizes groups of [n] participants. *)

val wait : t -> unit
(** Block (spinning) until all [n] participants have arrived; the
    barrier then resets for reuse. *)
