(** Plain-text table rendering for benchmark output, matching the
    "rows and series" style of the paper's charts. *)

val print_table : header:string list -> rows:string list list -> unit
(** Column-aligned rendering to stdout. *)

val ops_per_usec : float -> string
(** Fixed-format throughput cell. *)

val print_heading : string -> unit
(** An underlined section heading. *)

val write_csv : path:string -> header:string list -> rows:string list list -> unit
(** Write the same table as comma-separated values (cells containing
    commas or quotes are quoted). *)

val telemetry_table :
  (string * Nbhash_telemetry.Snapshot.t) list ->
  string list * string list list
(** [(header, rows)] for a per-implementation event table: an [impl]
    column, one column per event that fired in at least one snapshot,
    and a [<span>_p50] column (nanoseconds) per recorded span. Feed to
    {!print_table} or {!write_csv}. *)

val print_telemetry : (string * Nbhash_telemetry.Snapshot.t) list -> unit
(** Render {!telemetry_table} to stdout (a notice when no events were
    recorded). *)
