(** Plain-text table rendering for benchmark output, matching the
    "rows and series" style of the paper's charts. *)

val print_table : header:string list -> rows:string list list -> unit
(** Column-aligned rendering to stdout. *)

val ops_per_usec : float -> string
(** Fixed-format throughput cell. *)

val print_heading : string -> unit
(** An underlined section heading. *)

val write_csv : path:string -> header:string list -> rows:string list list -> unit
(** Write the same table as comma-separated values (cells containing
    commas or quotes are quoted). *)
