(* Sense-reversing barrier for workload start/stop coordination. *)
module Atomic = Nbhash_util.Nb_atomic

type t = { n : int; arrived : int Atomic.t; sense : bool Atomic.t }

let create n =
  assert (n > 0);
  { n; arrived = Atomic.make 0; sense = Atomic.make false }

let wait t =
  let my_sense = not (Atomic.get t.sense) in
  if Atomic.fetch_and_add t.arrived 1 = t.n - 1 then begin
    Atomic.set t.arrived 0;
    Atomic.set t.sense my_sense
    [@nbhash.cas_ok
      "only the last arriver (the unique winner of fetch_and_add) writes the \
       flipped sense; everyone else spins on it"]
  end
  else
    while Atomic.get t.sense <> my_sense do
      Domain.cpu_relax ()
    done
