(** Uniform, first-class access to every hash-set implementation, for
    benchmarks and cross-implementation tests.

    A {!table} packages one live structure behind closures so harness
    code can drive any implementation without functor plumbing; the
    per-operation indirect call taxes all implementations equally. *)

type ops = {
  ins : int -> bool;
  rem : int -> bool;
  look : int -> bool;
  force_resize : grow:bool -> unit;
  detach : unit -> unit;
      (** Release the handle ({!Nbhash.Hashset_intf.S.unregister}):
          flushes pending approximate-count deltas. Call when the
          thread is done with the bundle. *)
}
(** Per-thread operation bundle (wraps a registered handle). *)

type table = {
  name : string;
  new_handle : unit -> ops;
  bucket_count : unit -> int;
  cardinal : unit -> int;
  elements : unit -> int array;
  check_invariants : unit -> unit;
  resize_stats : unit -> Nbhash.Hashset_intf.resize_stats;
  bucket_sizes : unit -> int array;
  pending : unit -> (int * int) array;
      (** {!Nbhash.Hashset_intf.S.pending_ops}: the announce-array
          snapshot a {!Nbhash_telemetry.Watchdog} source samples. *)
  inspect : unit -> Nbhash.Hashset_intf.table_view;
      (** {!Nbhash.Hashset_intf.S.inspect}: the structural health
          snapshot behind the table's registered gauges. *)
  close : unit -> unit;
      (** Unregister the health gauges and watchdog source this table
          auto-registered at creation. Call when the table is retired;
          idempotent only in effect (a second call is a no-op because
          the registrations are already gone). A table dropped without
          [close] leaves stale gauges that keep it alive. *)
}

type maker = ?policy:Nbhash.Policy.t -> ?max_threads:int -> unit -> table

val of_module : (module Nbhash.Hashset_intf.S) -> maker

val adaptive_tuned : fast_threshold:int -> maker
(** The Adaptive (array) table with a custom Fastpath/Slowpath
    threshold, for the threshold ablation. *)

val all_eight : (string * maker) list
(** The eight algorithms of the paper's evaluation, in its order:
    SplitOrder, LFArray, LFArrayOpt, LFList, WFArray, WFList,
    Adaptive, AdaptiveOpt. *)

val all_nine : (string * maker) list
(** {!all_eight} plus LFFlat, the flat open-addressing variant added
    after the paper's evaluation (DESIGN.md System 17). *)

val with_michael : (string * maker) list
(** {!all_nine} plus the reference points outside the paper's
    evaluation: the fixed-size Michael table and the single-lock
    strawman. *)

val by_name : string -> maker
(** Raises [Not_found] for unknown names. *)
