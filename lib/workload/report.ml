let print_table ~header ~rows =
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left (fun w row -> max w (String.length (List.nth row c))) 0 all
  in
  let widths = List.init cols width in
  let line row =
    String.concat "  "
      (List.mapi
         (fun c cell -> Printf.sprintf "%*s" (List.nth widths c) cell)
         row)
  in
  print_endline (line header);
  print_endline
    (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  List.iter (fun row -> print_endline (line row)) rows

let ops_per_usec x = Printf.sprintf "%.3f" x

let print_heading s =
  print_newline ();
  print_endline s;
  print_endline (String.make (String.length s) '=')

let csv_cell cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

(* One row per implementation, one column per event that fired in at
   least one snapshot (the full taxonomy would mostly render zeros);
   span columns show the p50 in nanoseconds. *)
let telemetry_table rows =
  let module Ev = Nbhash_telemetry.Event in
  let module Snap = Nbhash_telemetry.Snapshot in
  let live_events =
    List.filter
      (fun ev -> List.exists (fun (_, s) -> Snap.get s ev > 0) rows)
      Ev.all
  in
  let live_spans =
    List.filter
      (fun sp -> List.exists (fun (_, s) -> Snap.span s sp <> None) rows)
      Ev.all_spans
  in
  let header =
    "impl"
    :: List.map Ev.to_string live_events
    @ List.map (fun sp -> Ev.span_to_string sp ^ "_p50") live_spans
  in
  let row (name, snap) =
    name
    :: List.map (fun ev -> string_of_int (Snap.get snap ev)) live_events
    @ List.map
        (fun sp ->
          match Snap.span snap sp with
          | None -> "-"
          | Some s -> Printf.sprintf "%.0f" s.Nbhash_util.Stats.median)
        live_spans
  in
  (header, List.map row rows)

let print_telemetry rows =
  if rows = [] then ()
  else
    let header, body = telemetry_table rows in
    if body <> [] && List.length header > 1 then print_table ~header ~rows:body
    else print_endline "(no telemetry events recorded)"

let write_csv ~path ~header ~rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun row ->
          output_string oc (String.concat "," (List.map csv_cell row));
          output_char oc '\n')
        (header :: rows))
