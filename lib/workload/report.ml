let print_table ~header ~rows =
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left (fun w row -> max w (String.length (List.nth row c))) 0 all
  in
  let widths = List.init cols width in
  let line row =
    String.concat "  "
      (List.mapi
         (fun c cell -> Printf.sprintf "%*s" (List.nth widths c) cell)
         row)
  in
  print_endline (line header);
  print_endline
    (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  List.iter (fun row -> print_endline (line row)) rows

let ops_per_usec x = Printf.sprintf "%.3f" x

let print_heading s =
  print_newline ();
  print_endline s;
  print_endline (String.make (String.length s) '=')

let csv_cell cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let write_csv ~path ~header ~rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun row ->
          output_string oc (String.concat "," (List.map csv_cell row));
          output_char oc '\n')
        (header :: rows))
