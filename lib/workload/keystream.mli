(** Seeded key-stream generation, shared by the benchmark workloads
    and the server load generator.

    A {!sampler} is an immutable description of a key-popularity
    distribution over [0, key_range): uniform, or Zipf(s) with the
    ranks spread across buckets by a bijective scramble (so the
    popular keys do not all collide into low-numbered buckets). It is
    safe to share across domains; each draw uses only the caller's
    PRNG and allocates nothing.

    A {!t} pairs a sampler with a private PRNG stream: a stateful,
    single-domain key stream for callers that do not manage their own
    generator (one per load-generator connection). *)

type dist = Uniform | Zipf of float

type sampler

val sampler : ?dist:dist -> key_range:int -> unit -> sampler
(** Defaults to [Uniform]. Requires [key_range >= 2] and a
    non-negative Zipf exponent. *)

val key_range : sampler -> int

val draw : sampler -> Nbhash_util.Xoshiro.t -> int
(** One key in [0, key_range); allocation-free. *)

type t

val create : ?dist:dist -> key_range:int -> seed:int -> unit -> t
(** A fresh stream; distinct seeds give uncorrelated streams. *)

val of_sampler : sampler -> seed:int -> t
(** Share one (possibly expensive) Zipf alias table across streams. *)

val next : t -> int
(** The next key of the stream; allocation-free. *)
