(* The ambient probe. Instrumented call sites across the fset, table,
   and policy layers read this one location; it defaults to
   [Probe.noop], so an uninstrumented process pays one load and one
   branch per event. [install] is expected at startup (bench flag
   parsing, a test's with_recording) — it is an atomic set, so
   flipping it mid-run is safe, merely attributing in-flight events to
   whichever probe each domain reads next. *)

module Atomic = Nbhash_util.Nb_atomic

let current = Atomic.make Probe.noop

let install p = Atomic.set current p
let get () = Atomic.get current
let is_recording () = Probe.is_recording (Atomic.get current)

let[@inline] emit ev = Probe.emit (Atomic.get current) ev
let[@inline] emit_arg ev arg = Probe.emit_arg (Atomic.get current) ev arg
let[@inline] cas_retry site = Probe.cas_retry (Atomic.get current) site
let[@inline] add ev n = Probe.add (Atomic.get current) ev n
let[@inline] now_ns () = Probe.now_ns (Atomic.get current)
let[@inline] span_begin s = Probe.span_begin (Atomic.get current) s

let[@inline] record_span s ~start_ns =
  Probe.record_span (Atomic.get current) s ~start_ns

let[@inline] span_abort s = Probe.span_abort s

let[@inline] observe s v = Probe.observe (Atomic.get current) s v

let snapshot () = Probe.snapshot (Atomic.get current)
let reset () = Probe.reset (Atomic.get current)

(* Run [f] with a fresh recording probe installed, restoring the
   previous probe afterwards; returns [f]'s result and the final
   snapshot. *)
let with_recording ?shards f =
  let prev = Atomic.get current in
  let p = Probe.recording ?shards () in
  Atomic.set current p
  [@nbhash.cas_ok
    "probe install/restore is performed by the single orchestrating thread \
     (tests, bench harness) around a run, not raced by workers"];
  Fun.protect
    ~finally:(fun () ->
      Atomic.set current prev
      [@nbhash.cas_ok
        "probe install/restore is performed by the single orchestrating \
         thread (tests, bench harness) around a run, not raced by workers"])
    (fun () ->
      let result = f () in
      (result, Probe.snapshot p))
