(* The sink interface of the telemetry layer. Call sites hold a
   [Probe.t] (in practice the ambient one from [Global]) and emit
   unconditionally; with the default [Noop] every entry point below is
   a single pattern match that falls through to [()] — no atomic
   write, no clock read, no allocation — so instrumentation can stay
   in the hot paths permanently. [Recording] routes counters into
   domain-sharded lanes and spans into sharded log2 histograms.

   Every entry point also forwards to the flight recorder ([Trace])
   before consulting the probe, so the same instrumentation sites feed
   both the aggregate view (this module) and the temporal one, and
   each can be switched on independently. With neither active, a site
   costs two loads and two branches. *)

type recorder = {
  counters : Counters.t;
  spans : Histogram.t array;  (* indexed by Event.span_index *)
}

type t = Noop | Recording of recorder

let noop = Noop

let recording ?shards () =
  Recording
    {
      counters = Counters.make ?shards ();
      spans = Array.init Event.span_count (fun _ -> Histogram.make ?shards ());
    }

let is_recording = function Noop -> false | Recording _ -> true

let[@inline] emit p ev =
  Trace.instant ev 0;
  match p with Noop -> () | Recording r -> Counters.incr r.counters ev

(* [emit] with an event-specific argument for the trace record (a key,
   an index); the counter side is identical. *)
let[@inline] emit_arg p ev arg =
  Trace.instant ev arg;
  match p with Noop -> () | Recording r -> Counters.incr r.counters ev

(* The site-attributed retry emission every CAS loop uses: the trace
   record's argument is the [Site.t] (so trace args decode uniformly
   as site ids), and the profiler — when installed — attributes the
   retry to that site independently of the probe. Disabled path:
   three loads, three branches, no allocation. *)
let[@inline] cas_retry p site =
  Trace.instant Event.Cas_retry site;
  Profile.on_retry site;
  match p with Noop -> () | Recording r -> Counters.incr r.counters Event.Cas_retry

let[@inline] add p ev n =
  Trace.instant ev n;
  match p with Noop -> () | Recording r -> Counters.add r.counters ev n

(* The repo-wide clock (Nbhash_util.Clock): probe spans, trace records
   and the bench's latency samples all share its origin and units. *)
let clock_ns = Nbhash_util.Clock.now_ns

let[@inline] now_ns p = match p with Noop -> 0 | Recording _ -> clock_ns ()

(* Open a duration span: a trace Begin record plus, when recording,
   the histogram start timestamp (0 otherwise — [record_span] with a
   Noop probe ignores it). Must be closed by [record_span] or
   [span_abort] on the same domain. *)
let[@inline] span_begin p s =
  Trace.span_begin s;
  match p with Noop -> 0 | Recording _ -> clock_ns ()

let[@inline] record_span p s ~start_ns =
  Trace.span_end s;
  match p with
  | Noop -> ()
  | Recording r ->
    Histogram.observe r.spans.(Event.span_index s) (clock_ns () - start_ns)

(* Close a span without a histogram observation: the bracketed attempt
   did not run to completion (e.g. a resize whose head CAS lost), so
   its duration would pollute the distribution, but the trace Begin
   still needs balancing. *)
let[@inline] span_abort s = Trace.span_end s

(* Raw-value histogram observation, for span-typed events that are not
   durations (e.g. [Event.Sweep_helpers] participation counts). *)
let[@inline] observe p s v =
  match p with
  | Noop -> ()
  | Recording r -> Histogram.observe r.spans.(Event.span_index s) v

let snapshot = function
  | Noop -> Snapshot.zero
  | Recording r ->
    {
      Snapshot.counters =
        List.map
          (fun ev -> (Event.to_string ev, Counters.read r.counters ev))
          Event.all;
      spans =
        List.filter_map
          (fun s ->
            Option.map
              (fun summary -> (Event.span_to_string s, summary))
              (Histogram.summary r.spans.(Event.span_index s)))
          Event.all_spans;
    }

let reset = function
  | Noop -> ()
  | Recording r ->
    Counters.reset r.counters;
    Array.iter Histogram.reset r.spans
