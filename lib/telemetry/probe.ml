(* The sink interface of the telemetry layer. Call sites hold a
   [Probe.t] (in practice the ambient one from [Global]) and emit
   unconditionally; with the default [Noop] every entry point below is
   a single pattern match that falls through to [()] — no atomic
   write, no clock read, no allocation — so instrumentation can stay
   in the hot paths permanently. [Recording] routes counters into
   domain-sharded lanes and spans into sharded log2 histograms. *)

type recorder = {
  counters : Counters.t;
  spans : Histogram.t array;  (* indexed by Event.span_index *)
}

type t = Noop | Recording of recorder

let noop = Noop

let recording ?shards () =
  Recording
    {
      counters = Counters.make ?shards ();
      spans = Array.init Event.span_count (fun _ -> Histogram.make ?shards ());
    }

let is_recording = function Noop -> false | Recording _ -> true

let[@inline] emit p ev =
  match p with Noop -> () | Recording r -> Counters.incr r.counters ev

let[@inline] add p ev n =
  match p with Noop -> () | Recording r -> Counters.add r.counters ev n

(* Monotonic-enough clock for duration spans; only read while
   recording, so the Noop path never pays for it. *)
let clock_ns () = Int64.to_int (Int64.of_float (Unix.gettimeofday () *. 1e9))

let[@inline] now_ns p = match p with Noop -> 0 | Recording _ -> clock_ns ()

let[@inline] record_span p s ~start_ns =
  match p with
  | Noop -> ()
  | Recording r ->
    Histogram.observe r.spans.(Event.span_index s) (clock_ns () - start_ns)

(* Raw-value histogram observation, for span-typed events that are not
   durations (e.g. [Event.Sweep_helpers] participation counts). *)
let[@inline] observe p s v =
  match p with
  | Noop -> ()
  | Recording r -> Histogram.observe r.spans.(Event.span_index s) v

let snapshot = function
  | Noop -> Snapshot.zero
  | Recording r ->
    {
      Snapshot.counters =
        List.map
          (fun ev -> (Event.to_string ev, Counters.read r.counters ev))
          Event.all;
      spans =
        List.filter_map
          (fun s ->
            Option.map
              (fun summary -> (Event.span_to_string s, summary))
              (Histogram.summary r.spans.(Event.span_index s)))
          Event.all_spans;
    }

let reset = function
  | Noop -> ()
  | Recording r ->
    Counters.reset r.counters;
    Array.iter Histogram.reset r.spans
