(* Per-domain monotone accumulators of cooperative-migration help
   time. The sweep's chunk-claim site adds each chunk's duration to
   the slot of the domain that did the helping; the server reads its
   own slot before and after the shard stage of a request, and the
   delta is that request's [server_help_ns] attribution — the answer
   to "was this outlier slow because it got drafted into a resize?".

   Slots are selected by [domain_id mod lanes] like the trace rings:
   two domains that collide merge their help time (the delta read by
   one may include chunks claimed by the other). With 1024 lanes and
   tens of domains that is vanishingly rare, and the failure mode is
   an over-attribution, never a negative or lost reading — each slot
   only ever grows. *)

module Atomic = Nbhash_util.Nb_atomic

let lanes = 1024 (* power of two *)
let slots = Array.init lanes (fun _ -> Atomic.make 0)
let[@inline] slot () = (Domain.self () :> int) land (lanes - 1)

(* Called from the sweep after a chunk migration; [ns] <= 0 is
   ignored so a clock hiccup can never make a slot non-monotone. *)
let[@inline] add ns =
  if ns > 0 then ignore (Atomic.fetch_and_add slots.(slot ()) ns)

(* The calling domain's accumulated help time, nanoseconds. Sample it
   before and after a region to attribute the help done inside. *)
let[@inline] read () = Atomic.get slots.(slot ())

(* Sum over all domains, for coarse reporting. *)
let total () = Array.fold_left (fun acc a -> acc + Atomic.get a) 0 slots
