(** Liveness watchdog over the wait-free announce arrays.

    Samples [pending_ops]-style sources, tracks how long each
    announced operation (identified by its unique bakery priority) has
    been pending, and reports the ones older than a configurable age.
    Turns the tables' nonblocking-progress claims into something a
    soak run can check: with working helping, no (tid, token) pair
    survives more than a few polls; a never-helping implementation
    trips the watchdog deterministically (the negative-control test).

    Single-owner: create and poll from one domain. The polled sources
    may be racing with the table's own threads — snapshots are
    best-effort and self-correcting at the next poll. *)

type source = {
  name : string;
  pending : unit -> (int * int) array;
      (** announced-but-incomplete operations as [(tid, token)] pairs;
          the token must be unique per operation (the announce
          priority is) so that slot reuse restarts the age clock *)
}

type stall = { source : string; tid : int; token : int; age_ns : int }

type t

val default_max_age_ns : int
(** 1 second. *)

val create : ?max_age_ns:int -> source list -> t

val register_source : name:string -> (unit -> (int * int) array) -> int
(** Add a source to the process-wide registry sampled by {!global}
    watchdogs; returns a token for {!unregister_source}. Tables do
    this automatically through the Factory attach path. *)

val unregister_source : int -> unit
(** Remove a registry entry. Idempotent. *)

val global : ?max_age_ns:int -> unit -> t
(** A watchdog over the process-wide registry: each {!poll} samples
    whatever sources are registered at that moment. Single-owner like
    any other watchdog — poll from one domain only. *)

val poll : t -> stall list
(** One sample: update first-seen times, drop completed operations,
    report those pending longer than [max_age_ns]. A stalled operation
    is re-reported on every subsequent poll until it completes. *)

val stale_lanes : ?max_age_ns:int -> Trace.t -> (int * int) list
(** Trace lanes whose newest record is older than [max_age_ns], as
    [(lane, age_ns)]: domains that stopped emitting entirely. Only
    meaningful while the traced workload should be active. *)

val pp_stall : Format.formatter -> stall -> unit

val run :
  ?interval:float -> ?on_stall:(stall list -> unit) -> stop:(unit -> bool) ->
  t -> int
(** Sampling loop for soak runs: poll every [interval] (default 0.1s)
    seconds until [stop ()] holds, calling [on_stall] on each
    non-empty report. Returns the total number of stalls reported. *)
