(* The flight recorder: per-domain ring buffers of fixed-size trace
   records, the merger that turns them into one time-sorted stream,
   and the Chrome trace-event exporter.

   Counters and histograms (Probe) answer *how much*; these rings
   answer *when* and *in what order* — a freeze racing an update, a
   resize overlapping a sweep, a helper finishing someone else's
   operation. The write path is deliberately weaker than the rest of
   the telemetry layer: a record is four plain [int] stores into a
   lane selected by the writing domain's id, with a non-atomic
   position bump. No CAS, no fences, overwrite-oldest on wrap. If two
   domains ever share a lane (domain ids are assigned modulo the lane
   count) they may tear or overwrite each other's records — the
   decoder skips anything that does not parse, so the recorder is
   best-effort by construction and never perturbs the algorithms it
   observes beyond one load-and-branch when disabled.

   Draining ([records], [to_chrome_string]) reads the rings without
   synchronization; call it while the writers are quiescent (bench
   does, after joining its domains) or accept a torn record at each
   lane's write frontier. *)

module Atomic = Nbhash_util.Nb_atomic

(* One record = [words_per_record] consecutive ints: timestamp (ns,
   from Nbhash_util.Clock — the same clock as probe spans and bench
   latencies), operation code, argument, writing domain id. *)
let words_per_record = 4

type lane = {
  buf : int array;
  mutable pos : int (* total writes, monotonic *)
      [@nbhash.plain_ok
        "lossy by design (DESIGN.md 13): each lane is written by the domains \
         that hash to it without synchronization; readers tolerate torn \
         snapshots"];
}

type t = {
  lanes : lane array;
  lane_mask : int;
  capacity : int;  (* records per lane, a power of two *)
  cap_mask : int;
}

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ?(lanes = 16) ?(capacity = 4096) () =
  if lanes < 1 then invalid_arg "Trace.create: lanes < 1";
  if capacity < 2 then invalid_arg "Trace.create: capacity < 2";
  let lanes = next_pow2 lanes and capacity = next_pow2 capacity in
  {
    lanes =
      Array.init lanes (fun _ ->
          { buf = Array.make (capacity * words_per_record) 0; pos = 0 });
    lane_mask = lanes - 1;
    capacity;
    cap_mask = capacity - 1;
  }

let clear t =
  Array.iter
    (fun lane ->
      lane.pos <- 0;
      Array.fill lane.buf 0 (Array.length lane.buf) 0)
    t.lanes
[@@nbhash.plain_ok
  "reset path, called between runs while no writer is emitting; the ring is \
   racy by design (DESIGN.md 13)"]

(* The ambient sink, mirroring [Global]'s ambient probe. Hot paths go
   through [Real] deliberately: a trace read must not become a
   scheduling point under the model checker ([Nbhash_check] explores
   shimmed operations only), and the recorder has no correctness story
   to check — it is observation, not algorithm. *)
let current : t option Atomic.t = Atomic.make None

let install t = Atomic.Real.set current (Some t)
let uninstall () = Atomic.Real.set current None
let active () = Atomic.Real.get current

(* Record codes. 0 is reserved so that never-written slots (and the
   zeroed slots after [clear]) decode as invalid. Instants occupy
   1..63, span Begins 64..127, span Ends 128..191 — fixed-width bands,
   so growing [Event] past a band would silently alias instant codes
   into the Begin range and corrupt every decoded trace. Checked once
   at module initialisation: the build that adds the 64th counter (or
   65th span) fails its first test instead of shipping unreadable
   traces. *)
let () =
  if Event.count >= 64 then
    failwith "Trace: Event.count must stay < 64 (record-code band 1..63)";
  if Event.span_count > 64 then
    failwith "Trace: Event.span_count must stay <= 64 (record-code bands)"

let code_instant ev = 1 + Event.index ev
let code_begin s = 64 + Event.span_index s
let code_end s = 128 + Event.span_index s

let[@inline] write t code arg =
  let d = (Domain.self () :> int) in
  let lane = t.lanes.(d land t.lane_mask) in
  let p = lane.pos in
  lane.pos <- p + 1;
  let base = (p land t.cap_mask) * words_per_record in
  let buf = lane.buf in
  buf.(base) <- Nbhash_util.Clock.now_ns ();
  buf.(base + 1) <- code;
  buf.(base + 2) <- arg;
  buf.(base + 3) <- d
[@@nbhash.plain_ok
  "flight-recorder hot path: plain stores into the per-lane ring are the \
   documented performance tradeoff (DESIGN.md 13); the exporter tolerates \
   torn records"]

(* The three emitters the instrumentation sites use, via [Probe] /
   [Global]. Disabled path: one load, one branch, no allocation. *)

let[@inline] instant ev arg =
  match Atomic.Real.get current with
  | None -> ()
  | Some t -> write t (code_instant ev) arg

let[@inline] span_begin s =
  match Atomic.Real.get current with
  | None -> ()
  | Some t -> write t (code_begin s) 0

let[@inline] span_end s =
  match Atomic.Real.get current with
  | None -> ()
  | Some t -> write t (code_end s) 0

(* ------------------------------------------------------------------ *)
(* Draining and merging.                                              *)

type phase = Instant | Begin | End
type point = Counter of Event.t | Span of Event.span

type record = {
  ts_ns : int;
  domain : int;
  seq : int;  (* absolute position in the writing lane; merge tiebreak *)
  phase : phase;
  point : point;
  arg : int;
}

(* Span display names drop the unit suffix of the histogram key:
   "resize_ns" names a histogram, but the track slice is "resize". *)
let span_label s =
  let n = Event.span_to_string s in
  if Filename.check_suffix n "_ns" then Filename.chop_suffix n "_ns" else n

let point_name = function
  | Counter ev -> Event.to_string ev
  | Span s -> span_label s

let decode_code code =
  if code >= 1 && code <= Event.count then
    Some (Instant, Counter (Event.of_index (code - 1)))
  else if code >= 64 && code < 64 + Event.span_count then
    Some (Begin, Span (Event.span_of_index (code - 64)))
  else if code >= 128 && code < 128 + Event.span_count then
    Some (End, Span (Event.span_of_index (code - 128)))
  else None

let written t = Array.fold_left (fun acc lane -> acc + lane.pos) 0 t.lanes

(* ------------------------------------------------------------------ *)
(* Loss accounting. Overwrite-oldest is silent on the write path, so a
   "clean" Perfetto export can be missing events; these counts make
   the loss visible. Overwritten is exact by construction (total
   writes minus ring capacity); torn is the number of surviving slots
   whose code word does not decode — a record caught mid-write by a
   reader or clobbered by a lane-sharing domain. Both are computed at
   read time from the same unsynchronized snapshot the decoder uses,
   so they carry the recorder's usual best-effort caveat. *)

type drops = { overwritten : int; torn : int }

(* [(lane_index, overwritten, torn)] per lane. *)
let lane_drops t =
  Array.mapi
    (fun i lane ->
      let total = lane.pos in
      let overwritten = max 0 (total - t.capacity) in
      let n = min total t.capacity in
      let first = total - n in
      let torn = ref 0 in
      for j = 0 to n - 1 do
        let base = ((first + j) land t.cap_mask) * words_per_record in
        if decode_code lane.buf.(base + 1) = None then incr torn
      done;
      (i, overwritten, !torn))
    t.lanes

let drops t =
  Array.fold_left
    (fun acc (_, o, tn) ->
      { overwritten = acc.overwritten + o; torn = acc.torn + tn })
    { overwritten = 0; torn = 0 } (lane_drops t)

(* Newest surviving records of one lane, oldest first. *)
let lane_records t lane =
  let total = lane.pos in
  let n = min total t.capacity in
  let first = total - n in
  let out = ref [] in
  for j = n - 1 downto 0 do
    let p = first + j in
    let base = (p land t.cap_mask) * words_per_record in
    match decode_code lane.buf.(base + 1) with
    | None -> ()  (* torn or never-completed record *)
    | Some (phase, point) ->
      out :=
        {
          ts_ns = lane.buf.(base);
          domain = lane.buf.(base + 3);
          seq = p;
          phase;
          point;
          arg = lane.buf.(base + 2);
        }
        :: !out
  done;
  !out

(* All surviving records of all lanes, globally sorted by timestamp
   (ties broken by lane position, preserving per-domain program
   order — a domain always writes to the same lane). *)
let records t =
  let all =
    Array.to_list t.lanes |> List.concat_map (lane_records t) |> Array.of_list
  in
  Array.sort
    (fun a b ->
      match compare a.ts_ns b.ts_ns with 0 -> compare a.seq b.seq | c -> c)
    all;
  all

(* Timestamp of each non-empty lane's most recent record, for the
   watchdog's per-domain staleness check. *)
let lane_last_ts t =
  let out = ref [] in
  Array.iteri
    (fun i lane ->
      if lane.pos > 0 then begin
        let base = ((lane.pos - 1) land t.cap_mask) * words_per_record in
        out := (i, lane.buf.(base)) :: !out
      end)
    t.lanes;
  Array.of_list (List.rev !out)

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export (the JSON Array Format of the Trace Event
   spec, as consumed by Perfetto and chrome://tracing). Hand-encoded
   like [Snapshot.to_json]: every name below is a fixed identifier, so
   no string escaping is needed. Durations become B/E pairs on the
   writing domain's track; counters become instant events. *)

let buf_event b ~first ~name ~ph ~tid ~ts_us ?args () =
  if not first then Buffer.add_string b ",\n";
  Buffer.add_string b
    (Printf.sprintf
       "  {\"name\":\"%s\",\"cat\":\"nbhash\",\"ph\":\"%s\",\"pid\":0,\"tid\":%d,\"ts\":%.3f"
       name ph tid ts_us);
  (match ph with
  | "i" -> Buffer.add_string b ",\"s\":\"t\""
  | _ -> ());
  (match args with
  | None -> ()
  | Some kvs ->
    Buffer.add_string b ",\"args\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Printf.sprintf "\"%s\":%s" k v))
      kvs;
    Buffer.add_char b '}');
  Buffer.add_char b '}'

let to_chrome_string t =
  let recs = records t in
  let t0 = if Array.length recs = 0 then 0 else recs.(0).ts_ns in
  let t_last =
    if Array.length recs = 0 then 0 else recs.(Array.length recs - 1).ts_ns
  in
  let us ts = float_of_int (ts - t0) /. 1e3 in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[\n";
  let first = ref true in
  let emit ~name ~ph ~tid ~ts_us ?args () =
    buf_event b ~first:!first ~name ~ph ~tid ~ts_us ?args ();
    first := false
  in
  (* One metadata record per distinct domain names its track. *)
  let doms = Hashtbl.create 8 in
  Array.iter
    (fun r ->
      if not (Hashtbl.mem doms r.domain) then begin
        Hashtbl.add doms r.domain ();
        emit ~name:"thread_name" ~ph:"M" ~tid:r.domain ~ts_us:0.0
          ~args:[ ("name", Printf.sprintf "\"domain %d\"" r.domain) ]
          ()
      end)
    recs;
  (* B/E events must nest per track. A ring that wrapped mid-span can
     hold an End with no Begin (dropped) or a Begin with no End (closed
     synthetically at the trace's last timestamp). *)
  let stacks : (int, Event.span list ref) Hashtbl.t = Hashtbl.create 8 in
  let stack dom =
    match Hashtbl.find_opt stacks dom with
    | Some s -> s
    | None ->
      let s = ref [] in
      Hashtbl.add stacks dom s;
      s
  in
  (* Per-site retry counter tracks: every Cas_retry instant carries
     its [Site.t] as the record argument, so the export can rebuild a
     running total per site and emit it as a Perfetto "C" (counter)
     event — one track per contended site, stepping up at each retry.
     Rendered on pid 0 like everything else; the track name carries
     the site so Perfetto groups the series. *)
  let site_totals : (int, int ref) Hashtbl.t = Hashtbl.create 8 in
  let emit_counter r =
    let cell =
      match Hashtbl.find_opt site_totals r.arg with
      | Some c -> c
      | None ->
        let c = ref 0 in
        Hashtbl.add site_totals r.arg c;
        c
    in
    incr cell;
    emit
      ~name:(Printf.sprintf "cas_retry %s" (Site.name r.arg))
      ~ph:"C" ~tid:r.domain ~ts_us:(us r.ts_ns)
      ~args:[ ("retries", string_of_int !cell) ]
      ()
  in
  Array.iter
    (fun r ->
      match (r.phase, r.point) with
      | Instant, Counter Event.Cas_retry ->
        emit ~name:(point_name r.point) ~ph:"i" ~tid:r.domain ~ts_us:(us r.ts_ns)
          ~args:[ ("site", string_of_int r.arg) ]
          ();
        emit_counter r
      | Instant, _ ->
        emit ~name:(point_name r.point) ~ph:"i" ~tid:r.domain ~ts_us:(us r.ts_ns)
          ~args:[ ("arg", string_of_int r.arg) ]
          ()
      | Begin, Span s ->
        let st = stack r.domain in
        st := s :: !st;
        emit ~name:(span_label s) ~ph:"B" ~tid:r.domain ~ts_us:(us r.ts_ns) ()
      | End, Span s -> (
        let st = stack r.domain in
        match !st with
        | top :: rest when top = s ->
          st := rest;
          emit ~name:(span_label s) ~ph:"E" ~tid:r.domain ~ts_us:(us r.ts_ns) ()
        | _ -> () (* orphan End: its Begin was overwritten *))
      | (Begin | End), Counter _ -> ())
    recs;
  Hashtbl.iter
    (fun dom st ->
      List.iter
        (fun s ->
          emit ~name:(span_label s) ~ph:"E" ~tid:dom ~ts_us:(us t_last) ())
        !st)
    stacks;
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ns\",";
  Buffer.add_string b
    (Printf.sprintf "\"otherData\":{\"source\":\"nbhash flight recorder\",\"records\":%d,\"written\":%d}}\n"
       (Array.length recs) (written t));
  Buffer.contents b

let write_chrome oc t = output_string oc (to_chrome_string t)

(* Human-readable tail for stall dumps: the newest [n] merged records,
   one per line. *)
let dump_tail ?(n = 40) ppf t =
  let recs = records t in
  let len = Array.length recs in
  let start = max 0 (len - n) in
  if len = 0 then Format.fprintf ppf "(trace empty)@."
  else
    for i = start to len - 1 do
      let r = recs.(i) in
      let phase =
        match r.phase with Instant -> "." | Begin -> "B" | End -> "E"
      in
      Format.fprintf ppf "%19d d%-3d %s %-22s arg=%d@." r.ts_ns r.domain phase
        (point_name r.point) r.arg
    done
