(* The static registry of instrumented retry points: one small-int id
   per textual CAS-loop/retry site, registered at module
   initialisation exactly like [Event] codes are fixed at compile
   time. The id is what hot paths carry — a [Profile] lane index, the
   trace-record argument of every [Event.Cas_retry] instant, and the
   [site] label value of the exported per-site metric families all
   agree on it.

   Ids are never recycled and the table is append-only, so a reader
   holding an id can always resolve its name; registration is
   idempotent on the name, which makes functor bodies safe to
   instantiate more than once (the second instantiation finds the
   first one's id). Id 0 is the pre-registered "unknown" site: the
   destination of any emission that has not been re-pointed yet, which
   is exactly what the CI validator asserts stays at zero retries. *)

module Atomic = Nbhash_util.Nb_atomic

type t = int

(* Generous headroom over the current taxonomy (~25 sites); the
   [Profile] storage arrays are sized by this, so it is a capacity,
   not a count. Registration past the cap degrades to [unknown]
   instead of raising: an un-nameable site is an observability bug,
   not a correctness one. *)
let max_sites = 64

let unknown = 0

let names = Array.make max_sites ""

let () =
  (names.(0) <- "unknown")
  [@nbhash.plain_ok
    "module initialisation, before any domain can observe the table"]

(* Number of assigned ids (including [unknown]). Ids are reserved by
   fetch-and-add, and the name store that follows is a plain write:
   registration happens at module-init time, before worker domains
   exist, so a reader racing the name store is not a supported
   schedule. *)
let next = Atomic.make 1

let registered () = min (Atomic.get next) max_sites

let find name =
  let n = registered () in
  let rec go i =
    if i >= n then None else if names.(i) = name then Some i else go (i + 1)
  in
  go 0

let register name =
  if name = "" then unknown
  else
    match find name with
    | Some id -> id
    | None ->
      let id = Atomic.fetch_and_add next 1 in
      if id >= max_sites then unknown
      else begin
        (names.(id) <- name)
        [@nbhash.plain_ok
          "registration runs at module initialisation, before worker domains \
           spawn; the id is published to callers only after the name store"];
        id
      end

let name id = if id >= 0 && id < registered () then names.(id) else "unknown"

(* Registered (id, name) pairs in id order. *)
let all () =
  let n = registered () in
  List.init n (fun i -> (i, names.(i)))
