(* Provenance of a telemetry artifact: without it there is no telling
   which machine or commit produced a scraped snapshot or a checked-in
   BENCH_*.json. The same block appears in bench schema v2 files and
   in /snapshot.json scrapes, which makes the two joinable. Every
   value is best-effort — a missing git binary must not fail a run. *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' | '\r' | '\t' -> Buffer.add_char b ' '
      | c when Char.code c < 0x20 -> ()
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let git_rev () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "unknown" in
    (match Unix.close_process_in ic with
    | Unix.WEXITED 0 -> line
    | _ -> "unknown")
  with _ -> "unknown"

let iso_timestamp () =
  let tm = Unix.gmtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let json () =
  Printf.sprintf
    "{\"git_rev\":\"%s\",\"domains\":%d,\"ocaml\":\"%s\",\"hostname\":\"%s\",\"timestamp\":\"%s\"}"
    (json_escape (git_rev ()))
    (Domain.recommended_domain_count ())
    (json_escape Sys.ocaml_version)
    (json_escape (try Unix.gethostname () with _ -> "unknown"))
    (iso_timestamp ())
