(* A process-wide registry of callback gauges, read at scrape time.

   Counters accumulate in the ambient probe; gauges are the opposite
   kind of signal — current-value reads (load factor, migration
   progress) that only make sense against a live structure. Each
   registration pairs a metric family name and label set with a thunk;
   the exporter calls [read_all] per scrape and nothing is computed
   between scrapes, so an unscrapped process pays only the cost of the
   registration itself.

   The registry is a CAS-swapped immutable list through the Nb_atomic
   shim: registration and unregistration are lock-free and reads are a
   single load. Tables register their gauges from Factory attach and
   unregister on detach; a leaked registration is harmless until its
   thunk touches freed state, which the thunks here never do (they
   only read heap structures kept alive by the closure). *)

module Atomic = Nbhash_util.Nb_atomic

type sample = {
  name : string;  (* metric family, e.g. "nbhash_table_load_factor" *)
  help : string;  (* HELP text; empty to omit *)
  labels : (string * string) list;  (* e.g. [("table","LFArray")] *)
  value : float;
}

type entry = {
  id : int;
  name : string;
  help : string;
  labels : (string * string) list;
  read : unit -> float;
}

type registration = int

let next_id = Atomic.make 0

(* Newest first; [read_all] reverses so samples come out in
   registration order, which keeps scrape output stable. *)
let registry : entry list Atomic.t = Atomic.make []

let rec swap f =
  let cur = Atomic.get registry in
  if not (Atomic.compare_and_set registry cur (f cur)) then swap f

let register ~name ?(help = "") ?(labels = []) read =
  let id = Atomic.fetch_and_add next_id 1 in
  swap (fun l -> { id; name; help; labels; read } :: l);
  id

let unregister id = swap (List.filter (fun e -> e.id <> id))

(* A gauge whose thunk raises (e.g. it races a structure being torn
   down) is dropped from that scrape only — one bad registration must
   not take the whole /metrics endpoint down. *)
let read_all () =
  List.rev (Atomic.get registry)
  |> List.filter_map (fun e ->
         match e.read () with
         | v when Float.is_finite v ->
           Some { name = e.name; help = e.help; labels = e.labels; value = v }
         | _ -> None
         | exception _ -> None)
