(* A minimal HTTP/1.1 observability endpoint on stdlib Unix sockets,
   run on its own domain so scraping never borrows a workload thread.

   Routes:
     /metrics        OpenMetrics text (counters, span histograms, gauges)
     /snapshot.json  ambient-probe snapshot with the bench meta block
     /health         watchdog verdict: 200 when no announced operation
                     is stalled, 503 with the stall list otherwise
     /trace.json     Chrome trace-event JSON of the active flight
                     recorder; 404 when tracing is off
     /profile.json   ranked contended sites, false-sharing scores and
                     registered table views from the active profiler;
                     404 when profiling is off

   Deliberately minimal: GET only, one request per connection
   (Connection: close), no keep-alive, no TLS — the intended client is
   curl, a Prometheus scraper on localhost, or nbhash_cli top. The
   accept loop handles one request at a time; a scrape is a few
   milliseconds, and serializing scrapes is what makes the exporter's
   monotone accumulators safe.

   The watchdog passed to [start] (or created by it) becomes owned by
   the server domain: watchdogs are single-owner, so the caller must
   not poll it elsewhere. Graceful shutdown: [stop] raises a flag and
   closes the listening socket, which wakes the blocked accept. *)

module Atomic = Nbhash_util.Nb_atomic

type t = {
  port : int;
  addr : string;
  stopping : bool Atomic.t;
  listen_fd : Unix.file_descr;
  domain : unit Domain.t;
}

let port t = t.port

exception Bind_error of string

(* Writing to a peer that already closed its end raises SIGPIPE, whose
   default action kills the whole process before any Unix_error
   handler can run; every server/client entry point that writes to
   sockets calls this first so broken pipes surface as Unix_error
   EPIPE instead. No-op on platforms without the signal. *)
let ignore_sigpipe () =
  try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
  with Invalid_argument _ | Sys_error _ -> ()

(* Resolve a host string to an IPv4 address: dotted-quad fast path,
   getaddrinfo for names like "localhost". Raises [Failure] with a
   one-line message on an unresolvable host — never a bare Unix_error
   — so callers can catch it next to their other [Failure] paths. *)
let resolve_inet host =
  match Unix.inet_addr_of_string host with
  | inet -> inet
  | exception Failure _ -> (
    let candidates =
      try
        Unix.getaddrinfo host ""
          [ Unix.AI_FAMILY Unix.PF_INET; Unix.AI_SOCKTYPE Unix.SOCK_STREAM ]
      with Unix.Unix_error _ | Failure _ | Not_found -> []
    in
    match
      List.find_map
        (fun ai ->
          match ai.Unix.ai_addr with
          | Unix.ADDR_INET (inet, _) -> Some inet
          | Unix.ADDR_UNIX _ -> None)
        candidates
    with
    | Some inet -> inet
    | None -> failwith (Printf.sprintf "cannot resolve host %S" host))

(* Shared TCP-listener setup (this server and the KV server): create,
   set SO_REUSEADDR before bind so restarts never trip over
   TIME_WAIT, bind (port 0 = "pick a free port"), listen, and return
   the socket with the actually-bound port. A port already in use is
   an ordinary operational error, reported as [Bind_error] with a
   one-line message so CLI callers can print it and exit nonzero
   instead of dumping a Unix_error backtrace. *)
let listen_tcp ?(backlog = 16) ~addr ~port () =
  let inet =
    try resolve_inet addr with Failure msg -> raise (Bind_error msg)
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (inet, port));
     Unix.listen fd backlog
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     (match e with
     | Unix.Unix_error (Unix.EADDRINUSE, _, _) ->
       raise
         (Bind_error
            (Printf.sprintf "%s:%d is already in use (EADDRINUSE)" addr port))
     | Unix.Unix_error (Unix.EACCES, _, _) ->
       raise
         (Bind_error (Printf.sprintf "binding %s:%d refused (EACCES)" addr port))
     | e -> raise e));
  let bound_port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  (fd, bound_port)

let http_status = function
  | 200 -> "200 OK"
  | 404 -> "404 Not Found"
  | 500 -> "500 Internal Server Error"
  | 503 -> "503 Service Unavailable"
  | code -> string_of_int code ^ " Error"

(* Extensible GET routes, so subsystems outside the telemetry library
   (the KV server's /slow.json) can publish documents through the
   scrape endpoint without this module depending on them. Same
   CAS-swapped immutable list idiom as the [Gauge] registry. A
   registered path shadows nothing: built-in routes are matched
   first. Handlers return [(status, content_type, body)] and run on
   the server domain; one that raises answers 500 for that scrape
   only. *)

type route = {
  route_id : int;
  path : string;
  handler : unit -> int * string * string;
}

type route_registration = int

let route_next = Atomic.make 0
let routes : route list Atomic.t = Atomic.make []

let rec route_swap f =
  let cur = Atomic.get routes in
  if not (Atomic.compare_and_set routes cur (f cur)) then route_swap f

let register_route ~path handler =
  let id = Atomic.fetch_and_add route_next 1 in
  route_swap (fun l -> { route_id = id; path; handler } :: l);
  (id : route_registration)

let unregister_route (id : route_registration) =
  route_swap (List.filter (fun r -> r.route_id <> id))

(* Newest registration of a path wins (the list is newest-first). *)
let find_route path =
  List.find_opt (fun r -> r.path = path) (Atomic.get routes)

let write_response fd ~code ~content_type body =
  let head =
    Printf.sprintf
      "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
       close\r\n\r\n"
      (http_status code) content_type (String.length body)
  in
  let send s =
    let n = String.length s in
    let sent = ref 0 in
    while !sent < n do
      sent := !sent + Unix.write_substring fd s !sent (n - !sent)
    done
  in
  send head;
  send body

let health_body watchdog =
  match watchdog with
  | None -> (200, "ok (no watchdog)\n")
  | Some w -> (
    match Watchdog.poll w with
    | [] -> (200, "ok\n")
    | stalls ->
      ( 503,
        String.concat ""
          (List.map
             (fun s -> Format.asprintf "%a@." Watchdog.pp_stall s)
             stalls) ))

(* The snapshot's flight-recorder block: activity plus loss accounting
   (satellite of the slow-request work — overwrite-oldest used to be
   silent). Lanes listed only when they lost something. *)
let trace_block () =
  match Trace.active () with
  | None -> "{\"active\":false}"
  | Some tr ->
    let d = Trace.drops tr in
    let lanes =
      Trace.lane_drops tr |> Array.to_list
      |> List.filter (fun (_, o, t) -> o > 0 || t > 0)
      |> List.map (fun (i, o, t) ->
             Printf.sprintf "{\"lane\":%d,\"overwritten\":%d,\"torn\":%d}" i o
               t)
      |> String.concat ","
    in
    Printf.sprintf
      "{\"active\":true,\"written\":%d,\"dropped\":{\"overwritten\":%d,\"torn\":%d},\"lanes\":[%s]}"
      (Trace.written tr) d.Trace.overwritten d.Trace.torn lanes

let handle_request ~watchdog fd target =
  match target with
  | "/metrics" ->
    write_response fd ~code:200 ~content_type:Openmetrics.content_type
      (Openmetrics.render ())
  | "/snapshot.json" ->
    write_response fd ~code:200 ~content_type:"application/json"
      (Snapshot.to_json ~meta:(Meta.json ())
         ~families:(Labeled.families_json ())
         ~trace:(trace_block ())
         ~profile:(Profile.snapshot_block ())
         (Probe.snapshot (Global.get ())))
  | "/profile.json" -> (
    match Profile.active () with
    | Some p ->
      (* The probe's counter lanes join the detector's sources here
         (Profile cannot see Global), and the independently-counted
         legacy total rides along for the sum cross-check. *)
      let legacy_cas_retry, extra_sources =
        match Global.get () with
        | Probe.Noop -> (-1, [])
        | Probe.Recording r ->
          ( Counters.read r.Probe.counters Event.Cas_retry,
            [
              ( "probe_counters",
                1,
                fun () -> Counters.lane_totals r.Probe.counters );
            ] )
      in
      write_response fd ~code:200 ~content_type:"application/json"
        (Profile.json_body ~legacy_cas_retry ~extra_sources p)
    | None ->
      write_response fd ~code:404 ~content_type:"text/plain"
        "profiling is not active\n")
  | "/health" ->
    let code, body = health_body watchdog in
    write_response fd ~code ~content_type:"text/plain" body
  | "/trace.json" -> (
    match Trace.active () with
    | Some tr ->
      write_response fd ~code:200 ~content_type:"application/json"
        (Trace.to_chrome_string tr)
    | None ->
      write_response fd ~code:404 ~content_type:"text/plain"
        "tracing is not active\n")
  | target -> (
    match find_route target with
    | Some r ->
      let code, content_type, body =
        try r.handler ()
        with _ -> (500, "text/plain", "route handler failed\n")
      in
      write_response fd ~code ~content_type body
    | None ->
      write_response fd ~code:404 ~content_type:"text/plain" "not found\n")

(* Read up to the end of the request head; only the request line
   matters. Bounded read so a misbehaving client cannot hold the
   server: 8 KiB of headers or we answer anyway. *)
let read_request_line fd =
  let buf = Bytes.create 8192 in
  let filled = ref 0 in
  let done_ = ref false in
  (try
     while (not !done_) && !filled < Bytes.length buf do
       let n = Unix.read fd buf !filled (Bytes.length buf - !filled) in
       if n = 0 then done_ := true
       else begin
         filled := !filled + n;
         let s = Bytes.sub_string buf 0 !filled in
         if
           String.length s >= 4
           && (String.index_opt s '\n' <> None)
           && (let len = String.length s in
               String.sub s (len - 4) 4 = "\r\n\r\n"
               || String.sub s (len - 2) 2 = "\n\n")
         then done_ := true
         else if String.index_opt s '\n' <> None then
           (* We have the request line; headers may still be in
              flight, but we never read a body, so proceed. *)
           done_ := true
       end
     done
   with Unix.Unix_error _ -> ());
  let s = Bytes.sub_string buf 0 !filled in
  match String.index_opt s '\n' with
  | None -> None
  | Some i -> (
    let line = String.trim (String.sub s 0 i) in
    match String.split_on_char ' ' line with
    | [ "GET"; target; _version ] -> Some target
    | [ "GET"; target ] -> Some target
    | _ -> None)

let serve_connection ~watchdog fd =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match read_request_line fd with
      | Some target -> handle_request ~watchdog fd target
      | None ->
        write_response fd ~code:404 ~content_type:"text/plain"
          "unsupported request\n")

let accept_loop ~watchdog ~stopping listen_fd =
  let continue = ref true in
  while !continue do
    match Unix.accept listen_fd with
    | fd, _ ->
      if Atomic.get stopping then begin
        (try Unix.close fd with Unix.Unix_error _ -> ());
        continue := false
      end
      else begin
        (try serve_connection ~watchdog fd
         with Unix.Unix_error _ | Sys_error _ -> ());
        if Atomic.get stopping then continue := false
      end
    | exception Unix.Unix_error _ ->
      (* stop closed the listening socket (or accept failed hard);
         either way the server is done. *)
      continue := false
  done

let start ?(addr = "127.0.0.1") ?(port = 0) ?watchdog () =
  ignore_sigpipe ();
  let listen_fd, bound_port = listen_tcp ~addr ~port () in
  let stopping = Atomic.make false in
  let domain =
    Domain.spawn (fun () -> accept_loop ~watchdog ~stopping listen_fd)
  in
  { port = bound_port; addr; stopping; listen_fd; domain }

let stop t =
  Atomic.set t.stopping true;
  (* Waking the blocked accept needs [shutdown], not [close]: on
     Linux, closing a socket another thread is blocked in accept(2) on
     does NOT interrupt the accept. shutdown(2) on the listening
     socket wakes it with EINVAL; the self-connection below is the
     belt-and-braces fallback for stacks where shutdown on a listening
     socket is a no-op. *)
  (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL
   with Unix.Unix_error _ -> ());
  (try
     let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
     Fun.protect
       ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
       (fun () ->
         Unix.connect fd (Unix.ADDR_INET (resolve_inet t.addr, t.port)))
   with Unix.Unix_error _ | Sys_error _ | Failure _ -> ());
  Domain.join t.domain;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ())

(* Minimal matching client (nbhash_cli top, the test suite): one GET,
   [(status, body)] or [Error msg] on any socket-level failure. *)
let http_get ?(host = "127.0.0.1") ~port path =
  match
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        Unix.connect fd (Unix.ADDR_INET (resolve_inet host, port));
        let req =
          Printf.sprintf "GET %s HTTP/1.1\r\nHost: %s\r\nConnection: close\r\n\r\n"
            path host
        in
        let n = String.length req in
        let sent = ref 0 in
        while !sent < n do
          sent := !sent + Unix.write_substring fd req !sent (n - !sent)
        done;
        let buf = Bytes.create 65536 in
        let b = Buffer.create 65536 in
        let rec drain () =
          let r = Unix.read fd buf 0 (Bytes.length buf) in
          if r > 0 then begin
            Buffer.add_subbytes b buf 0 r;
            drain ()
          end
        in
        drain ();
        Buffer.contents b)
  with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | exception Failure msg -> Error msg
  | raw -> (
    (* "HTTP/1.1 <code> ...\r\n...\r\n\r\n<body>" *)
    match String.index_opt raw ' ' with
    | None -> Error "malformed response"
    | Some sp -> (
      let code =
        try int_of_string (String.trim (String.sub raw (sp + 1) 3))
        with _ -> 0
      in
      let rec body_from i =
        if i + 3 >= String.length raw then None
        else if String.sub raw i 4 = "\r\n\r\n" then Some (i + 4)
        else if String.sub raw i 2 = "\n\n" then Some (i + 2)
        else body_from (i + 1)
      in
      match body_from 0 with
      | None -> Error "malformed response (no header terminator)"
      | Some start ->
        Ok (code, String.sub raw start (String.length raw - start))))
