(* The contention & allocation profiler. Three instruments share one
   ambient switch, mirroring [Trace]'s install/uninstall discipline so
   each can be flipped independently of the probe:

   - per-site retry accounting: every [Event.Cas_retry] emission
     carries a [Site.t]; when a profiler is installed the site's
     sharded counter is bumped and the *gap* since the same domain's
     previous retry at that site is observed into a per-site log2
     histogram. Short gaps mean a loop spinning against live
     contention; long gaps mean isolated collisions. This measures
     retry pressure without threading loop-begin timestamps through
     every call site.

   - a false-sharing detector: any per-lane array written on hot paths
     (the probe's sharded counters, the profiler's own retry lanes,
     the wait-free tables' announce slots) can be sampled twice and
     scored per 64-byte cache line: score = write rate x (excess
     writers on the line). A line written fast by one domain is
     hot-but-private (score 0); the same rate split across writers is
     the ping-pong the ROADMAP's hot-path sweep needs to find.

   - allocation attribution via [Gc.Memprof] sampling: sampled
     allocations are credited to the allocating domain's most recent
     retry site (the "nearest site" heuristic — exact scoping would
     need per-op brackets on every fast path). Off by default;
     OCaml 5.1's multicore runtime rejects [Gc.Memprof.start] at run
     time, which [start_alloc] reports as [`Unavailable] rather than
     raising, so the same build serves 5.1 (counts stay zero) and 5.2
     (statmemprof returned).

   The disabled path of the hot hook is one [Atomic.Real] load and a
   branch — no allocation, Gc-asserted by the test suite exactly like
   the trace and probe disabled paths. Reads ([Atomic.Real], plain
   stores into the gap/lane arrays) bypass the model-check shim for
   the same reason [Trace] does: the profiler is observation, not
   algorithm, and must not add scheduling points to the CAS loops it
   watches. *)

module Atomic = Nbhash_util.Nb_atomic

let max_sites = Site.max_sites

(* Retry-lane geometry: like [Counters], one cache-line-aligned stride
   of [max_sites] slots per shard ([max_sites] is already a multiple
   of 8 words). Gap timestamps and current-site tags are plain arrays
   indexed by a wider lane mask, like [Helptime]'s lanes. *)
let default_shards = Counters.default_shards
let ts_lanes = 64
let seen_slots = 256

type alloc_state = Alloc_off | Alloc_sampling of float | Alloc_unavailable of string

type t = {
  retries : int Atomic.t array;  (* shards x max_sites, strided *)
  shard_mask : int;
  gaps : Histogram.t array;  (* per site; observations are retry-rate bounded *)
  last_ns : int array;  (* ts_lanes x max_sites: last retry timestamp *)
  cur_site : int array;  (* ts_lanes: the domain's most recent retry site *)
  seen : int array;  (* domain-id capture for the writer estimator; 0 = empty *)
  alloc_words : int Atomic.t array;  (* per site, estimated words *)
  alloc_samples : int Atomic.t array;  (* per site, raw Memprof samples *)
  mutable alloc : alloc_state
      [@nbhash.plain_ok
        "written only by the single orchestrating thread that starts/stops \
         Memprof sampling (Memprof itself rejects concurrent start); readers \
         render a stale state at worst"];
}

let create ?(shards = default_shards) () =
  if not (Nbhash_util.Bits.is_pow2 shards) then
    invalid_arg "Profile.create: shards must be a power of two";
  {
    retries = Array.init (shards * max_sites) (fun _ -> Atomic.make 0);
    shard_mask = shards - 1;
    gaps = Array.init max_sites (fun _ -> Histogram.make ~shards:1 ());
    last_ns = Array.make (ts_lanes * max_sites) 0;
    cur_site = Array.make ts_lanes 0;
    seen = Array.make seen_slots 0;
    alloc_words = Array.init max_sites (fun _ -> Atomic.make 0);
    alloc_samples = Array.init max_sites (fun _ -> Atomic.make 0);
    alloc = Alloc_off;
  }

let current : t option Atomic.t = Atomic.make None

let install t = Atomic.Real.set current (Some t)
let uninstall () = Atomic.Real.set current None
let active () = Atomic.Real.get current
let is_active () = Atomic.Real.get current <> None

let record p site =
  let site = if site >= 0 && site < max_sites then site else Site.unknown in
  let d = (Domain.self () :> int) in
  ignore
    (Atomic.fetch_and_add
       (Array.unsafe_get p.retries
          (((d land p.shard_mask) * max_sites) + site))
       1);
  let lane = d land (ts_lanes - 1) in
  let now = Nbhash_util.Clock.now_ns () in
  let idx = (lane * max_sites) + site in
  let prev = p.last_ns.(idx) in
  if prev > 0 && now > prev then Histogram.observe p.gaps.(site) (now - prev);
  p.last_ns.(idx) <- now;
  p.cur_site.(lane) <- site;
  p.seen.(d land (seen_slots - 1)) <- d + 1
[@@nbhash.plain_ok
  "profiler lanes are racy by design, like the trace rings: gap timestamps \
   and site tags are per-domain-lane scratch whose readers tolerate torn \
   values; the counters themselves are atomic"]

let[@inline] on_retry site =
  match Atomic.Real.get current with None -> () | Some p -> record p site

(* --- Reads (snapshot/scrape side) --- *)

let retries p site =
  let total = ref 0 in
  for shard = 0 to p.shard_mask do
    total := !total + Atomic.get p.retries.((shard * max_sites) + site)
  done;
  !total

let total_retries p =
  Array.fold_left (fun acc slot -> acc + Atomic.get slot) 0 p.retries

let gap_counts p site = Histogram.counts p.gaps.(site)
let gap_summary p site = Histogram.summary p.gaps.(site)
let alloc_words p site = Atomic.get p.alloc_words.(site)
let alloc_samples p site = Atomic.get p.alloc_samples.(site)

(* Per-shard write totals of the retry lanes — the profiler's own
   array doubles as a detector source. *)
let lane_totals p =
  Array.init (p.shard_mask + 1) (fun shard ->
      let acc = ref 0 in
      for site = 0 to max_sites - 1 do
        acc := !acc + Atomic.get p.retries.((shard * max_sites) + site)
      done;
      !acc)

(* Distinct-domain estimate per lane of an [lanes]-lane sharded array,
   from the domains the retry hook has seen: domain d writes lane
   [d land (lanes-1)]. *)
let writers_by_lane p ~lanes =
  let w = Array.make lanes 0 in
  Array.iter
    (fun v -> if v > 0 then w.((v - 1) land (lanes - 1)) <- w.((v - 1) land (lanes - 1)) + 1)
    p.seen;
  w
[@@nbhash.plain_ok
  "w is a function-local scratch array consumed before escaping; p.seen is \
   only read here"]

let reset p =
  Array.iter (fun slot -> Atomic.set slot 0) p.retries;
  Array.iter Histogram.reset p.gaps;
  Array.fill p.last_ns 0 (Array.length p.last_ns) 0;
  Array.fill p.cur_site 0 ts_lanes 0;
  Array.iter (fun slot -> Atomic.set slot 0) p.alloc_words;
  Array.iter (fun slot -> Atomic.set slot 0) p.alloc_samples
[@@nbhash.plain_ok
  "reset runs between bench sections while workers are quiescent, the same \
   contract as Counters.reset and Trace.clear"]

(* --- Allocation attribution (Gc.Memprof) --- *)

let alloc_state p = p.alloc

(* Credit one sampled allocation to the allocating domain's most
   recent retry site. Estimated words per sample = n_samples /
   sampling_rate: each sample stands for ~1/rate allocated words,
   which keeps the exported number an unbiased estimate of words
   allocated near the site regardless of block sizes. *)
let attribute p ~rate (a : Gc.Memprof.allocation) =
  let d = (Domain.self () :> int) in
  let site = p.cur_site.(d land (ts_lanes - 1)) in
  let site = if site >= 0 && site < max_sites then site else Site.unknown in
  let words =
    int_of_float (float_of_int a.Gc.Memprof.n_samples /. rate +. 0.5)
  in
  ignore (Atomic.fetch_and_add p.alloc_samples.(site) a.Gc.Memprof.n_samples);
  ignore (Atomic.fetch_and_add p.alloc_words.(site) words)

let start_alloc ?(sampling_rate = 1e-4) p =
  match p.alloc with
  | Alloc_sampling _ -> Ok ()
  | Alloc_unavailable reason -> Error reason
  | Alloc_off -> (
    let tracker =
      {
        Gc.Memprof.null_tracker with
        alloc_minor =
          (fun a ->
            attribute p ~rate:sampling_rate a;
            None);
        alloc_major =
          (fun a ->
            attribute p ~rate:sampling_rate a;
            None);
      }
    in
    (* 5.1 multicore raises Failure here; 5.2 (statmemprof restored)
       returns a handle on success. [ignore] absorbs both the 5.1
       [unit] and the 5.2 [Gc.Memprof.t] return type. *)
    try
      ignore (Gc.Memprof.start ~sampling_rate ~callstack_size:0 tracker);
      p.alloc <- Alloc_sampling sampling_rate;
      Ok ()
    with Failure reason ->
      p.alloc <- Alloc_unavailable reason;
      Error reason)

let stop_alloc p =
  match p.alloc with
  | Alloc_sampling _ ->
    (try Gc.Memprof.stop () with Failure _ -> ());
    p.alloc <- Alloc_off
  | Alloc_off | Alloc_unavailable _ -> ()

(* --- False-sharing detector --- *)

(* A lane source is any array written on hot paths whose per-lane
   cumulative write counts can be read cheaply. [lanes_per_line] says
   how many consecutive lanes share one 64-byte line: 1 for arrays
   already strided a line apart (sharded counters — their ping-pong
   risk is domain collisions on one lane), 8 for word-packed arrays
   (announce slots). Registered sources are held weakly so a
   discarded table does not pin its announce counters forever; the
   caller keeps the returned handle alive for as long as the array
   matters. *)

type source = {
  src_name : string;
  lanes_per_line : int;
  read : unit -> int array;  (* cumulative per-lane write counts *)
}

let sources : source Weak.t list Atomic.t = Atomic.make []

let rec sources_swap f =
  let cur = Atomic.get sources in
  if not (Atomic.compare_and_set sources cur (f cur)) then sources_swap f

let register_source ~name ~lanes_per_line read =
  if lanes_per_line < 1 then
    invalid_arg "Profile.register_source: lanes_per_line < 1";
  let src = { src_name = name; lanes_per_line; read } in
  let w = Weak.create 1 in
  Weak.set w 0 (Some src);
  sources_swap (fun l -> w :: l);
  src

let live_sources () =
  let live = List.filter_map (fun w -> Weak.get w 0) (Atomic.get sources) in
  (* Prune emptied weak cells opportunistically. *)
  sources_swap (List.filter (fun w -> Weak.check w 0));
  List.rev live

type line_score = {
  line : int;
  writes_per_s : float;
  writers : int;
  score : float;  (* writes_per_s x excess writers; 0 = private line *)
}

type source_report = {
  source : string;
  lines : line_score list;  (* active lines only *)
  max_score : float;
}

(* Score one source from two cumulative samples [dt_ns] apart.
   [writers] (per-lane distinct-writer counts, for strided arrays)
   defaults to "one writer per active lane", the right reading for
   packed single-writer-per-slot arrays. *)
let score_source ~name ~lanes_per_line ?writers ~dt_ns c0 c1 =
  let lanes = min (Array.length c0) (Array.length c1) in
  let dt_s = float_of_int (max 1 dt_ns) /. 1e9 in
  let nlines = (lanes + lanes_per_line - 1) / lanes_per_line in
  let out = ref [] in
  let max_score = ref 0. in
  for line = 0 to nlines - 1 do
    let lo = line * lanes_per_line in
    let hi = min lanes (lo + lanes_per_line) in
    let delta = ref 0 in
    let w = ref 0 in
    for i = lo to hi - 1 do
      let d = max 0 (c1.(i) - c0.(i)) in
      delta := !delta + d;
      match writers with
      | Some ws -> if ws.(i) > 0 then w := !w + ws.(i)
      | None -> if d > 0 then incr w
    done;
    if !delta > 0 then begin
      let rate = float_of_int !delta /. dt_s in
      let score = rate *. float_of_int (max 0 (!w - 1)) in
      if score > !max_score then max_score := score;
      out := { line; writes_per_s = rate; writers = !w; score } :: !out
    end
  done;
  { source = name; lines = List.rev !out; max_score = !max_score }

(* Sample every source twice, [interval_s] apart, and score them.
   [extra] lets the caller add one-shot sources it can see but this
   module cannot (the ambient probe's counter lanes, whose module
   depends on nothing here). *)
let false_sharing ?(interval_s = 0.02)
    ?(extra : (string * int * (unit -> int array)) list = []) p =
  let srcs =
    ("profile_retries", 1, fun () -> lane_totals p)
    :: extra
    @ List.map
        (fun s -> (s.src_name, s.lanes_per_line, s.read))
        (live_sources ())
  in
  let t0 = Nbhash_util.Clock.now_ns () in
  let s0 = List.map (fun (_, _, read) -> read ()) srcs in
  Unix.sleepf interval_s;
  let s1 = List.map (fun (_, _, read) -> read ()) srcs in
  let dt_ns = Nbhash_util.Clock.now_ns () - t0 in
  List.map2
    (fun (name, lanes_per_line, _) (c0, c1) ->
      let writers =
        (* Strided sharded arrays are written by every domain hashing
           to the lane; packed arrays are single-writer per slot. *)
        if lanes_per_line = 1 then
          Some (writers_by_lane p ~lanes:(Array.length c0))
        else None
      in
      score_source ~name ~lanes_per_line ?writers ~dt_ns c0 c1)
    srcs
    (List.combine s0 s1)

(* --- Registered table views (/profile.json "views" block) --- *)

(* Subsystems that can describe their shard layout (the KV server's
   per-shard backends) publish a ready-made JSON thunk here, the same
   shape as Metrics_server's route registry. *)

type view = { view_id : int; view_name : string; render : unit -> string }
type view_registration = int

let view_next = Atomic.make 0
let views : view list Atomic.t = Atomic.make []

let rec views_swap f =
  let cur = Atomic.get views in
  if not (Atomic.compare_and_set views cur (f cur)) then views_swap f

let register_view ~name render =
  let id = Atomic.fetch_and_add view_next 1 in
  views_swap (fun l -> { view_id = id; view_name = name; render } :: l);
  (id : view_registration)

let unregister_view (id : view_registration) =
  views_swap (List.filter (fun v -> v.view_id <> id))

(* --- JSON --- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Finite-by-construction floats (rates over clamped positive dt);
   belt-and-braces clamp so the document never carries NaN/Inf, which
   the CI shape validator rejects. *)
let json_float x =
  let x = if Float.is_finite x then x else 0. in
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.17g" x

let site_json p (id, name) =
  let gap =
    match gap_summary p id with
    | None -> "null"
    | Some s -> Snapshot.json_summary s
  in
  Printf.sprintf
    "{\"id\":%d,\"name\":\"%s\",\"retries\":%d,\"gap_ns\":%s,\"alloc_words\":%d,\"alloc_samples\":%d}"
    id (json_escape name) (retries p id) gap (alloc_words p id)
    (alloc_samples p id)

let sites_json p =
  let ranked =
    List.sort
      (fun (a, _) (b, _) -> compare (retries p b, a) (retries p a, b))
      (Site.all ())
  in
  "[" ^ String.concat "," (List.map (site_json p) ranked) ^ "]"

let report_json r =
  let line l =
    Printf.sprintf
      "{\"line\":%d,\"writes_per_s\":%s,\"writers\":%d,\"ping_pong\":%s}"
      l.line (json_float l.writes_per_s) l.writers (json_float l.score)
  in
  Printf.sprintf
    "{\"source\":\"%s\",\"max_ping_pong\":%s,\"lines\":[%s]}"
    (json_escape r.source) (json_float r.max_score)
    (String.concat "," (List.map line r.lines))

let memprof_json p =
  match p.alloc with
  | Alloc_off -> "{\"state\":\"off\"}"
  | Alloc_sampling rate ->
    Printf.sprintf "{\"state\":\"sampling\",\"sampling_rate\":%s}"
      (json_float rate)
  | Alloc_unavailable reason ->
    Printf.sprintf "{\"state\":\"unavailable\",\"reason\":\"%s\"}"
      (json_escape reason)

let views_json () =
  let entries =
    List.rev_map
      (fun v ->
        let body = try v.render () with _ -> "null" in
        Printf.sprintf "{\"name\":\"%s\",\"view\":%s}"
          (json_escape v.view_name) body)
      (Atomic.get views)
  in
  "[" ^ String.concat "," entries ^ "]"

(* The /profile.json document. [legacy_cas_retry] is the ambient
   probe's independently-counted total, passed in by the caller (this
   module cannot see [Global]); -1 when no probe is recording. The CI
   validator checks it equals the per-site sum at quiescence — the
   cross-check that every emission site carries a real site id. *)
let json_body ?(legacy_cas_retry = -1)
    ?(extra_sources : (string * int * (unit -> int array)) list = [])
    ?interval_s p =
  let reports = false_sharing ?interval_s ~extra:extra_sources p in
  Printf.sprintf
    "{\"active\":true,\"total_retries\":%d,\"legacy_cas_retry\":%d,\"sites\":%s,\"false_sharing\":[%s],\"memprof\":%s,\"views\":%s}"
    (total_retries p) legacy_cas_retry (sites_json p)
    (String.concat "," (List.map report_json reports))
    (memprof_json p) (views_json ())

(* Compact per-site block for /snapshot.json: nonzero sites only. *)
let snapshot_block () =
  match active () with
  | None -> "{\"active\":false}"
  | Some p ->
    let sites =
      List.filter_map
        (fun (id, name) ->
          let n = retries p id in
          if n = 0 && alloc_words p id = 0 then None
          else
            Some
              (Printf.sprintf
                 "{\"id\":%d,\"name\":\"%s\",\"retries\":%d,\"alloc_words\":%d}"
                 id (json_escape name) n (alloc_words p id)))
        (Site.all ())
    in
    Printf.sprintf
      "{\"active\":true,\"total_retries\":%d,\"sites\":[%s]}"
      (total_retries p)
      (String.concat "," sites)
