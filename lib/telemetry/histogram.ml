(* Lock-free log2-bucketed histogram for durations. Bucket [i] holds
   observations v with floor(log2 v) = i (v <= 1 lands in bucket 0),
   so the value range up to 2^63 ns needs 64 buckets. Each domain
   shard owns a private 64-slot lane (one lane is exactly 8 cache
   lines), merged only at snapshot time; percentiles are read from the
   merged counts using each bucket's geometric midpoint as its
   representative value. *)

module Atomic = Nbhash_util.Nb_atomic

let buckets = 64

type t = { slots : int Atomic.t array; shard_mask : int }

let make ?(shards = Counters.default_shards) () =
  if not (Nbhash_util.Bits.is_pow2 shards) then
    invalid_arg "Histogram.make: shards must be a power of two";
  {
    slots = Array.init (shards * buckets) (fun _ -> Atomic.make 0);
    shard_mask = shards - 1;
  }

let[@inline] bucket_of v =
  if v <= 1 then 0 else min (buckets - 1) (Nbhash_util.Bits.log2 v)

let[@inline] observe t v =
  let shard = (Domain.self () :> int) land t.shard_mask in
  ignore
    (Atomic.fetch_and_add
       (Array.unsafe_get t.slots ((shard * buckets) + bucket_of v))
       1)

(* Merged per-bucket counts. *)
let counts t =
  let merged = Array.make buckets 0 in
  Array.iteri
    (fun i slot -> merged.(i mod buckets) <- merged.(i mod buckets) + Atomic.get slot)
    t.slots;
  merged

let total t = Array.fold_left ( + ) 0 (counts t)

let reset t = Array.iter (fun slot -> Atomic.set slot 0) t.slots

(* Representative value of bucket [i]: the midpoint of [2^i, 2^(i+1)).
   Computed in float to stay safe at the top buckets. *)
let representative i = 1.5 *. Float.ldexp 1. i

let percentile_of_counts counts total p =
  assert (total > 0 && p >= 0. && p <= 100.);
  let target =
    max 1 (int_of_float (Float.ceil (p /. 100. *. Float.of_int total)))
  in
  let rec go i seen =
    if i >= buckets then representative (buckets - 1)
    else begin
      let seen = seen + counts.(i) in
      if seen >= target then representative i else go (i + 1) seen
    end
  in
  go 0 0

(* Approximate summary from the merged buckets: every observation in a
   bucket is attributed its representative value, so mean/stddev and
   the percentiles are exact to within a factor of sqrt(2). [None]
   when nothing was observed. *)
let summary t : Nbhash_util.Stats.summary option =
  let counts = counts t in
  let n = Array.fold_left ( + ) 0 counts in
  if n = 0 then None
  else begin
    let fn = Float.of_int n in
    let sum = ref 0. in
    Array.iteri
      (fun i c -> sum := !sum +. (Float.of_int c *. representative i))
      counts;
    let mean = !sum /. fn in
    let sq = ref 0. in
    Array.iteri
      (fun i c ->
        let d = representative i -. mean in
        sq := !sq +. (Float.of_int c *. d *. d))
      counts;
    let stddev = if n < 2 then 0. else sqrt (!sq /. Float.of_int (n - 1)) in
    let first = ref (buckets - 1) and last = ref 0 in
    Array.iteri
      (fun i c ->
        if c > 0 then begin
          if i < !first then first := i;
          if i > !last then last := i
        end)
      counts;
    Some
      {
        Nbhash_util.Stats.n;
        mean;
        stddev;
        min = Float.ldexp 1. !first;
        max = Float.ldexp 1. (!last + 1) -. 1.;
        median = percentile_of_counts counts n 50.;
        p95 = percentile_of_counts counts n 95.;
        p99 = percentile_of_counts counts n 99.;
      }
  end
