(* A process-wide registry of *labeled* histogram families, the
   multi-series complement of the ambient probe's per-span histograms:
   one [Histogram.t] per (family, label-set) pair, e.g.
   [nbhash_server_stage_ns{op="get",stage="read"}]. Modeled on the
   [Gauge] registry: a CAS-swapped immutable list through the
   Nb_atomic shim, so registration is lock-free and the scrape path is
   a single load. Unlike probe histograms these are never reset by the
   bench runner, so the exporter can render them raw — they are
   monotone by construction.

   [histogram] is get-or-create: instrumentation sites call it once at
   module initialisation, keep the returned histogram, and observe
   into it directly — the registry is never on a hot path. *)

module Atomic = Nbhash_util.Nb_atomic

type entry = {
  family : string;
  help : string;
  labels : (string * string) list;  (* label order is significant *)
  hist : Histogram.t;
}

(* Newest first; readers reverse for stable registration order. *)
let registry : entry list Atomic.t = Atomic.make []

let rec swap f =
  let cur = Atomic.get registry in
  if not (Atomic.compare_and_set registry cur (f cur)) then swap f

let find family labels =
  List.find_opt
    (fun e -> e.family = family && e.labels = labels)
    (Atomic.get registry)

let rec histogram ~family ?(help = "") ~labels () =
  match find family labels with
  | Some e -> e.hist
  | None ->
    let e = { family; help; labels; hist = Histogram.make () } in
    let cur = Atomic.get registry in
    (* Double-check under the CAS so a race registers exactly one
       histogram per key; the loser retries and finds the winner's. *)
    if
      List.exists
        (fun o -> o.family = family && o.labels = labels)
        cur
      || not (Atomic.compare_and_set registry cur (e :: cur))
    then histogram ~family ~help ~labels ()
    else e.hist

let read_all () = List.rev (Atomic.get registry)

(* Tests only: forget every registered family. Instrumentation sites
   keep their histogram references, so observations made after a reset
   simply stop being exported. *)
let reset_all () = swap (fun _ -> [])

(* --- JSON (snapshot block) --- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* {"<family>":[{"labels":{...},"summary":{...}|null},...],...} with
   families in registration order, entries of a family contiguous. *)
let families_json () =
  let entries = read_all () in
  let order = ref [] in
  let by_family : (string, entry list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun e ->
      match Hashtbl.find_opt by_family e.family with
      | Some l -> l := e :: !l
      | None ->
        Hashtbl.add by_family e.family (ref [ e ]);
        order := e.family :: !order)
    entries;
  let entry_json e =
    let labels =
      String.concat ","
        (List.map
           (fun (k, v) ->
             Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
           e.labels)
    in
    let summary =
      match Histogram.summary e.hist with
      | None -> "null"
      | Some s -> Snapshot.json_summary s
    in
    Printf.sprintf "{\"labels\":{%s},\"summary\":%s}" labels summary
  in
  let family_json name =
    let group = List.rev !(Hashtbl.find by_family name) in
    Printf.sprintf "\"%s\":[%s]" (json_escape name)
      (String.concat "," (List.map entry_json group))
  in
  Printf.sprintf "{%s}"
    (String.concat "," (List.map family_json (List.rev !order)))
