(* OpenMetrics/Prometheus text rendering of the ambient probe plus the
   gauge registry: one counter family per Event, one histogram family
   per span, one gauge family per registered gauge name. The body ends
   with "# EOF" as the OpenMetrics 1.0 spec requires.

   Counters must be monotone from a scraper's point of view, but the
   probe is not: Runner.run resets it at every trial's measurement
   barrier. The [ctr_*]/[hbk_*] accumulators below detect resets (a
   raw reading below the previous one) and fold the pre-reset total
   into a base, so the exported series only ever grows. They are plain
   mutable arrays: rendering is assumed single-scraper (the metrics
   server serializes scrapes on its own domain), which is the standard
   Prometheus deployment shape. *)

let histogram_buckets = Histogram.buckets

let ctr_base = Array.make Event.count 0
let ctr_last = Array.make Event.count 0
let hbk_base = Array.make (Event.span_count * histogram_buckets) 0
let hbk_last = Array.make (Event.span_count * histogram_buckets) 0

(* Flight-recorder loss counters ([Trace.clear] between bench sections
   would otherwise make them regress): slot 0 overwritten, 1 torn. *)
let trc_base = Array.make 2 0
let trc_last = Array.make 2 0

(* Per-site profiler accumulators: retry counts, retry-gap histogram
   buckets, and allocation words, indexed by [Site.t]. The profiler is
   reset in lockstep with the probe by the bench harness, so the same
   fold-on-reset treatment keeps the labeled series monotone. *)
let site_ctr_base = Array.make Site.max_sites 0
let site_ctr_last = Array.make Site.max_sites 0
let site_gap_base = Array.make (Site.max_sites * histogram_buckets) 0
let site_gap_last = Array.make (Site.max_sites * histogram_buckets) 0
let site_aw_base = Array.make Site.max_sites 0
let site_aw_last = Array.make Site.max_sites 0

let monotone base last i raw =
  if raw < last.(i) then base.(i) <- base.(i) + last.(i);
  last.(i) <- raw;
  base.(i) + raw
[@@nbhash.plain_ok
  "the accumulators are owned by the single scraping thread; workers only \
   ever touch their own probe cells"]

(* For tests: forget accumulated bases so a fresh probe reads from
   zero again. Not part of the scrape path. *)
let reset_accumulators () =
  Array.fill ctr_base 0 Event.count 0;
  Array.fill ctr_last 0 Event.count 0;
  Array.fill hbk_base 0 (Array.length hbk_base) 0;
  Array.fill hbk_last 0 (Array.length hbk_last) 0;
  Array.fill trc_base 0 2 0;
  Array.fill trc_last 0 2 0;
  Array.fill site_ctr_base 0 Site.max_sites 0;
  Array.fill site_ctr_last 0 Site.max_sites 0;
  Array.fill site_gap_base 0 (Array.length site_gap_base) 0;
  Array.fill site_gap_last 0 (Array.length site_gap_last) 0;
  Array.fill site_aw_base 0 Site.max_sites 0;
  Array.fill site_aw_last 0 Site.max_sites 0
[@@nbhash.plain_ok
  "test-only reset, called while no scraper is running; the accumulators \
   are owned by the single scraping thread"]

let escape_help s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let escape_label_value s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let label_set labels =
  match labels with
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
           labels)
    ^ "}"

(* Short decimal for le bounds and gauge values: integers print bare,
   everything else through %.17g (round-trips doubles). *)
let number x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.17g" x

let counter_help ev =
  match (ev : Event.t) with
  | Cas_retry -> "Operations that re-ran a CAS loop (lost CAS or frozen node)"
  | Bucket_init -> "Lazy bucket migrations that installed a new head bucket"
  | Keys_migrated -> "Keys copied into freshly initialized buckets"
  | Freeze -> "Buckets transitioned to the frozen (immutable) state"
  | Resize_grow -> "Head HNode replacements by a double-sized one"
  | Resize_shrink -> "Head HNode replacements by a half-sized one"
  | Help_op -> "Announced operations driven by the helping scan"
  | Slowpath_entry -> "Operations that entered the announce-and-help slow path"
  | Fastpath_entry -> "Adaptive operations that entered the lock-free fast path"
  | Counter_flush -> "Per-handle approximate-count delta batches flushed"
  | Contains_pred -> "CONTAINS lookups that fell back to a predecessor bucket"
  | Sweep_chunk_claimed -> "Bucket chunks claimed from the sweep cursor"
  | Sweep_buckets_migrated -> "Buckets processed by cooperative sweep chunks"
  | Server_conn -> "Client connections accepted by the KV server"
  | Server_request -> "Request frames answered by the KV server"
  | Server_error -> "Protocol errors answered by the KV server"
  | Server_slow -> "Requests captured into the slow-request log"

let span_help s =
  match (s : Event.span) with
  | Resize_span -> "RESIZE duration, nanoseconds"
  | Slowpath_span -> "Announce-and-help slow path duration, nanoseconds"
  | Sweep_span -> "Sweep chunk migration duration, nanoseconds"
  | Sweep_helpers -> "Distinct domains that claimed chunks during one migration"
  | Server_span -> "KV server request service time (read to reply), nanoseconds"
  | Probe_len -> "Linear-probe distances at flat-FSet insert/remove linearization"
  | Server_read_span -> "KV server frame-read stage, nanoseconds"
  | Server_decode_span -> "KV server request-decode stage, nanoseconds"
  | Server_shard_span -> "KV server shard-operation stage, nanoseconds"
  | Server_help_span -> "Migration help performed inside one request, nanoseconds"
  | Server_write_span -> "KV server reply-write stage, nanoseconds"

let render_counters b probe =
  List.iter
    (fun ev ->
      let i = Event.index ev in
      let raw =
        match (probe : Probe.t) with
        | Noop -> ctr_last.(i)  (* no live probe: hold the last reading *)
        | Recording r -> Counters.read r.counters ev
      in
      let v = monotone ctr_base ctr_last i raw in
      let family = "nbhash_" ^ Event.to_string ev in
      Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n" family);
      Buffer.add_string b
        (Printf.sprintf "# HELP %s %s\n" family (escape_help (counter_help ev)));
      Buffer.add_string b (Printf.sprintf "%s_total %d\n" family v);
      (* The site-labeled breakdown of the retry counter lives inside
         the same family block: the unlabeled series is the legacy
         total, the labeled ones the profiler's attribution of it. *)
      if ev = Event.Cas_retry then
        List.iter
          (fun (id, name) ->
            let raw =
              match Profile.active () with
              | None -> site_ctr_last.(id)  (* no profiler: hold the reading *)
              | Some p -> Profile.retries p id
            in
            let v = monotone site_ctr_base site_ctr_last id raw in
            if v > 0 then
              Buffer.add_string b
                (Printf.sprintf "%s_total{site=\"%s\"} %d\n" family
                   (escape_label_value name) v))
          (Site.all ()))
    Event.all

(* Per-site retry-gap histograms and allocation words, the profiler's
   labeled families. Rendered whether or not a profiler is installed:
   the accumulators hold the last readings, so series never vanish or
   regress mid-scrape-history. Sites that never recorded anything are
   skipped, so the document only grows when sites become active. *)
let render_profile b =
  let p = Profile.active () in
  let gap_family = "nbhash_retry_ns" in
  Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" gap_family);
  Buffer.add_string b
    (Printf.sprintf
       "# HELP %s Gap between consecutive CAS retries at one site on one domain, nanoseconds\n"
       gap_family);
  List.iter
    (fun (id, name) ->
      let raw =
        match p with
        | None ->
          Array.init histogram_buckets (fun i ->
              site_gap_last.((id * histogram_buckets) + i))
        | Some p -> Profile.gap_counts p id
      in
      let counts =
        Array.init histogram_buckets (fun i ->
            let j = (id * histogram_buckets) + i in
            monotone site_gap_base site_gap_last j raw.(i))
      in
      let last_nonempty = ref (-1) in
      Array.iteri (fun i c -> if c > 0 then last_nonempty := i) counts;
      if !last_nonempty >= 0 then begin
        let site = escape_label_value name in
        let cum = ref 0 in
        let sum = ref 0. in
        for i = 0 to !last_nonempty do
          cum := !cum + counts.(i);
          sum := !sum +. (float_of_int counts.(i) *. Histogram.representative i);
          Buffer.add_string b
            (Printf.sprintf "%s_bucket{site=\"%s\",le=\"%s\"} %d\n" gap_family
               site
               (number (Float.ldexp 1. (i + 1)))
               !cum)
        done;
        Buffer.add_string b
          (Printf.sprintf "%s_bucket{site=\"%s\",le=\"+Inf\"} %d\n" gap_family
             site !cum);
        Buffer.add_string b
          (Printf.sprintf "%s_sum{site=\"%s\"} %s\n" gap_family site
             (number !sum));
        Buffer.add_string b
          (Printf.sprintf "%s_count{site=\"%s\"} %d\n" gap_family site !cum)
      end)
    (Site.all ());
  let aw_family = "nbhash_alloc_words" in
  Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n" aw_family);
  Buffer.add_string b
    (Printf.sprintf
       "# HELP %s Estimated words allocated near a site (Gc.Memprof sampling)\n"
       aw_family);
  List.iter
    (fun (id, name) ->
      let raw =
        match p with
        | None -> site_aw_last.(id)
        | Some p -> Profile.alloc_words p id
      in
      let v = monotone site_aw_base site_aw_last id raw in
      if v > 0 then
        Buffer.add_string b
          (Printf.sprintf "%s_total{site=\"%s\"} %d\n" aw_family
             (escape_label_value name) v))
    (Site.all ())

let render_histograms b probe =
  List.iter
    (fun s ->
      let si = Event.span_index s in
      let raw =
        match (probe : Probe.t) with
        | Noop ->
          Array.init histogram_buckets (fun i ->
              hbk_last.((si * histogram_buckets) + i))
        | Recording r -> Histogram.counts r.spans.(si)
      in
      let counts =
        Array.init histogram_buckets (fun i ->
            let j = (si * histogram_buckets) + i in
            monotone hbk_base hbk_last j raw.(i))
      in
      let family = "nbhash_" ^ Event.span_to_string s in
      Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" family);
      Buffer.add_string b
        (Printf.sprintf "# HELP %s %s\n" family (escape_help (span_help s)));
      let last_nonempty = ref (-1) in
      Array.iteri (fun i c -> if c > 0 then last_nonempty := i) counts;
      let cum = ref 0 in
      let sum = ref 0. in
      for i = 0 to !last_nonempty do
        cum := !cum + counts.(i);
        sum := !sum +. (float_of_int counts.(i) *. Histogram.representative i);
        Buffer.add_string b
          (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" family
             (number (Float.ldexp 1. (i + 1)))
             !cum)
      done;
      Buffer.add_string b
        (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" family !cum);
      Buffer.add_string b (Printf.sprintf "%s_sum %s\n" family (number !sum));
      Buffer.add_string b (Printf.sprintf "%s_count %d\n" family !cum))
    Event.all_spans

(* Labeled histogram families (the per-opcode server stage series).
   Unlike probe histograms these are never reset by the bench runner,
   so the raw counts are already monotone and need no accumulator.
   The [le] bound goes last in the label set, after the identifying
   labels, which is also what keeps the bucket lines distinct across
   the entries of one family. *)
let render_labeled b =
  let entries = Labeled.read_all () in
  let order = ref [] in
  let by_family : (string, Labeled.entry list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  List.iter
    (fun (e : Labeled.entry) ->
      match Hashtbl.find_opt by_family e.family with
      | Some l -> l := e :: !l
      | None ->
        Hashtbl.add by_family e.family (ref [ e ]);
        order := e.family :: !order)
    entries;
  List.iter
    (fun family ->
      let group = List.rev !(Hashtbl.find by_family family) in
      Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" family);
      (match group with
      | { Labeled.help; _ } :: _ when help <> "" ->
        Buffer.add_string b
          (Printf.sprintf "# HELP %s %s\n" family (escape_help help))
      | _ -> ());
      List.iter
        (fun (e : Labeled.entry) ->
          let labels = label_set e.labels in
          let with_le le =
            match e.labels with
            | [] -> Printf.sprintf "{le=\"%s\"}" le
            | _ ->
              Printf.sprintf "%s,le=\"%s\"}"
                (String.sub labels 0 (String.length labels - 1))
                le
          in
          let counts = Histogram.counts e.hist in
          let last_nonempty = ref (-1) in
          Array.iteri (fun i c -> if c > 0 then last_nonempty := i) counts;
          let cum = ref 0 in
          let sum = ref 0. in
          for i = 0 to !last_nonempty do
            cum := !cum + counts.(i);
            sum := !sum +. (float_of_int counts.(i) *. Histogram.representative i);
            Buffer.add_string b
              (Printf.sprintf "%s_bucket%s %d\n" family
                 (with_le (number (Float.ldexp 1. (i + 1))))
                 !cum)
          done;
          Buffer.add_string b
            (Printf.sprintf "%s_bucket%s %d\n" family (with_le "+Inf") !cum);
          Buffer.add_string b
            (Printf.sprintf "%s_sum%s %s\n" family labels (number !sum));
          Buffer.add_string b
            (Printf.sprintf "%s_count%s %d\n" family labels !cum))
        group)
    (List.rev !order)

(* Flight-recorder loss: records lost to ring wrap-around and records
   that failed to decode, as one labeled counter family. With no
   trace installed the last readings hold, like the probe counters. *)
let render_trace_drops b =
  let ov_raw, torn_raw =
    match Trace.active () with
    | None -> (trc_last.(0), trc_last.(1))
    | Some tr ->
      let d = Trace.drops tr in
      (d.Trace.overwritten, d.Trace.torn)
  in
  let ov = monotone trc_base trc_last 0 ov_raw in
  let torn = monotone trc_base trc_last 1 torn_raw in
  let family = "nbhash_trace_dropped" in
  Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n" family);
  Buffer.add_string b
    (Printf.sprintf
       "# HELP %s Flight-recorder records lost to overwrite or torn writes\n"
       family);
  Buffer.add_string b
    (Printf.sprintf "%s_total{reason=\"overwritten\"} %d\n" family ov);
  Buffer.add_string b
    (Printf.sprintf "%s_total{reason=\"torn\"} %d\n" family torn)

let render_gauges b =
  let samples = Gauge.read_all () in
  (* Group by family (all samples of a family must be contiguous),
     preserving first-appearance order. *)
  let order = ref [] in
  let by_family : (string, Gauge.sample list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun (s : Gauge.sample) ->
      match Hashtbl.find_opt by_family s.name with
      | Some l -> l := s :: !l
      | None ->
        Hashtbl.add by_family s.name (ref [ s ]);
        order := s.name :: !order)
    samples;
  List.iter
    (fun family ->
      let group = List.rev !(Hashtbl.find by_family family) in
      Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" family);
      (match group with
      | { Gauge.help; _ } :: _ when help <> "" ->
        Buffer.add_string b
          (Printf.sprintf "# HELP %s %s\n" family (escape_help help))
      | _ -> ());
      List.iter
        (fun (s : Gauge.sample) ->
          Buffer.add_string b
            (Printf.sprintf "%s%s %s\n" s.name (label_set s.labels)
               (number s.value)))
        group)
    (List.rev !order)

let render () =
  let b = Buffer.create 4096 in
  let probe = Global.get () in
  render_counters b probe;
  render_histograms b probe;
  render_profile b;
  render_labeled b;
  render_trace_drops b;
  render_gauges b;
  Buffer.add_string b "# EOF\n";
  Buffer.contents b

let content_type =
  "application/openmetrics-text; version=1.0.0; charset=utf-8"
