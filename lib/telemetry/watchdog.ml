(* The liveness watchdog: a sampling observer over announce arrays.

   The wait-free tables' progress argument says every announced
   operation is completed within a bounded number of steps by *some*
   thread (Wf_common's help_up_to). That claim is normally invisible:
   a helping bug shows up as a hang, far from its cause. The watchdog
   makes it observable — each poll snapshots the pending announced
   operations of its sources (as (tid, token) pairs, where the token
   is the operation's bakery priority, unique per operation), records
   when each pair was first seen, and reports any pair still pending
   after max_age_ns. A table whose helping works can keep an announce
   slot busy arbitrarily long only with ever-changing tokens; the same
   (tid, token) persisting means one specific operation is stuck.

   A watchdog is single-owner state (the Hashtbl of first-seen times
   is unsynchronized): create it and poll it from one domain. The
   sources' [pending] thunks are the only part that reads shared
   memory, and they only read announce slots — the snapshot is racy by
   nature, which is fine: a completed-meanwhile operation just drops
   out at the next poll, and a false "pending" lasts one interval.

   Ages are differences of Nbhash_util.Clock.now_ns readings; that
   clock is monotonic (CLOCK_MONOTONIC), so ages are non-negative and
   a wall-clock step can neither mass-report stalls nor hide one. *)

module Atomic = Nbhash_util.Nb_atomic

type source = {
  name : string;
  pending : unit -> (int * int) array;
      (* announced-but-incomplete ops as (tid, token) *)
}

type stall = { source : string; tid : int; token : int; age_ns : int }

type t = {
  max_age_ns : int;
  sources : unit -> source list;
      (* re-evaluated per poll, so a watchdog can follow a dynamic
         registry (see [global]) as tables come and go *)
  first_seen : (string * int * int, int) Hashtbl.t;
}

let default_max_age_ns = 1_000_000_000

let create ?(max_age_ns = default_max_age_ns) sources =
  if max_age_ns <= 0 then invalid_arg "Watchdog.create: max_age_ns <= 0";
  { max_age_ns; sources = (fun () -> sources); first_seen = Hashtbl.create 64 }

(* --- the process-wide source registry --- *)

(* Tables register their announce arrays here (via Factory attach) so
   a single watchdog — typically the metrics server's, backing the
   /health endpoint — can see every live table without threading a
   list through the program. A CAS-swapped immutable list, same shape
   as Gauge's registry. *)

type registered = { id : int; src : source }

let next_id = Atomic.make 0
let registry : registered list Atomic.t = Atomic.make []

let rec swap f =
  let cur = Atomic.get registry in
  if not (Atomic.compare_and_set registry cur (f cur)) then swap f

let register_source ~name pending =
  let id = Atomic.fetch_and_add next_id 1 in
  swap (fun l -> { id; src = { name; pending } } :: l);
  id

let unregister_source id = swap (List.filter (fun r -> r.id <> id))

let registered_sources () =
  List.rev_map (fun r -> r.src) (Atomic.get registry)

(* A watchdog over the registry: each poll sees the tables registered
   at that instant. Still single-owner — poll it from one domain. *)
let global ?(max_age_ns = default_max_age_ns) () =
  if max_age_ns <= 0 then invalid_arg "Watchdog.global: max_age_ns <= 0";
  { max_age_ns; sources = registered_sources; first_seen = Hashtbl.create 64 }

let poll t =
  let now = Nbhash_util.Clock.now_ns () in
  let live = Hashtbl.create 16 in
  let stalls = ref [] in
  List.iter
    (fun src ->
      Array.iter
        (fun (tid, token) ->
          let key = (src.name, tid, token) in
          Hashtbl.replace live key ();
          let seen =
            match Hashtbl.find_opt t.first_seen key with
            | Some ts -> ts
            | None ->
              Hashtbl.replace t.first_seen key now;
              now
          in
          let age = now - seen in
          if age > t.max_age_ns then
            stalls := { source = src.name; tid; token; age_ns = age } :: !stalls)
        (src.pending ()))
    (t.sources ());
  (* Forget operations that completed since the last poll, so a reused
     announce slot starts a fresh age. *)
  let dead =
    Hashtbl.fold
      (fun key _ acc -> if Hashtbl.mem live key then acc else key :: acc)
      t.first_seen []
  in
  List.iter (Hashtbl.remove t.first_seen) dead;
  List.rev !stalls

(* Trace-lane staleness: lanes whose newest record is older than
   max_age_ns. Complements [poll] — announce arrays expose stuck
   *operations*, stale lanes expose domains that stopped emitting
   entirely (deadlock, livelock outside any announce window). Only
   meaningful while the traced workload is supposed to be active. *)
let stale_lanes ?(max_age_ns = default_max_age_ns) trace =
  let now = Nbhash_util.Clock.now_ns () in
  Array.to_list (Trace.lane_last_ts trace)
  |> List.filter_map (fun (lane, ts) ->
         let age = now - ts in
         if age > max_age_ns then Some (lane, age) else None)

let pp_stall ppf s =
  Format.fprintf ppf "%s: op (tid=%d, prio=%d) pending for %.1f ms" s.source
    s.tid s.token
    (float_of_int s.age_ns /. 1e6)

(* Sampling loop for soak runs: poll every [interval] seconds until
   [stop ()], invoking [on_stall] on each non-empty report (soak dumps
   the merged trace tail there). Returns the total number of stall
   reports observed. *)
let run ?(interval = 0.1) ?(on_stall = fun _ -> ()) ~stop t =
  let total = ref 0 in
  while not (stop ()) do
    (match poll t with
    | [] -> ()
    | stalls ->
      total := !total + List.length stalls;
      on_stall stalls);
    Unix.sleepf interval
  done;
  !total
