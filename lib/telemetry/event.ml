(** The fixed event taxonomy of the telemetry substrate. One counter
    per constructor; the names below are the stable identifiers used
    by the pretty-printer, the JSON encoder, and the bench CSV/JSON
    trajectories — treat them as a wire format.

    Spans are the duration-valued complement: each names one log2
    histogram of nanosecond timings. *)

type t =
  | Cas_retry  (** an operation re-ran its CAS loop (lost CAS or frozen node) *)
  | Bucket_init  (** a lazy bucket migration installed a new head bucket *)
  | Keys_migrated  (** keys copied into freshly initialized buckets *)
  | Freeze  (** a bucket transitioned to the frozen (immutable) state *)
  | Resize_grow  (** the head HNode was replaced by a double-sized one *)
  | Resize_shrink  (** the head HNode was replaced by a half-sized one *)
  | Help_op  (** an announced operation was driven by the helping scan *)
  | Slowpath_entry  (** an operation entered the announce-and-help slow path *)
  | Fastpath_entry  (** an adaptive operation entered the lock-free fast path *)
  | Counter_flush  (** a per-handle approximate-count delta batch was flushed *)
  | Contains_pred  (** CONTAINS fell back to a predecessor bucket *)
  | Sweep_chunk_claimed
      (** a thread claimed a contiguous bucket chunk from the sweep cursor *)
  | Sweep_buckets_migrated
      (** buckets processed by sweep chunks (lazily initialized ones
          replayed by a chunk count too: replay is idempotent) *)
  | Server_conn  (** the KV server accepted a client connection *)
  | Server_request  (** the KV server answered one request frame *)
  | Server_error
      (** the KV server answered a protocol error (malformed frame,
          bad opcode, oversized declared length) *)
  | Server_slow
      (** a request exceeded the slow-request threshold and was
          captured into the slow-request log *)

let count = 17

let index = function
  | Cas_retry -> 0
  | Bucket_init -> 1
  | Keys_migrated -> 2
  | Freeze -> 3
  | Resize_grow -> 4
  | Resize_shrink -> 5
  | Help_op -> 6
  | Slowpath_entry -> 7
  | Fastpath_entry -> 8
  | Counter_flush -> 9
  | Contains_pred -> 10
  | Sweep_chunk_claimed -> 11
  | Sweep_buckets_migrated -> 12
  | Server_conn -> 13
  | Server_request -> 14
  | Server_error -> 15
  | Server_slow -> 16

let to_string = function
  | Cas_retry -> "cas_retry"
  | Bucket_init -> "bucket_init"
  | Keys_migrated -> "keys_migrated"
  | Freeze -> "freeze"
  | Resize_grow -> "resize_grow"
  | Resize_shrink -> "resize_shrink"
  | Help_op -> "help_op"
  | Slowpath_entry -> "slowpath_entry"
  | Fastpath_entry -> "fastpath_entry"
  | Counter_flush -> "counter_flush"
  | Contains_pred -> "contains_pred"
  | Sweep_chunk_claimed -> "sweep_chunk_claimed"
  | Sweep_buckets_migrated -> "sweep_buckets_migrated"
  | Server_conn -> "server_conn"
  | Server_request -> "server_request"
  | Server_error -> "server_error"
  | Server_slow -> "server_slow"

let all =
  [
    Cas_retry;
    Bucket_init;
    Keys_migrated;
    Freeze;
    Resize_grow;
    Resize_shrink;
    Help_op;
    Slowpath_entry;
    Fastpath_entry;
    Counter_flush;
    Contains_pred;
    Sweep_chunk_claimed;
    Sweep_buckets_migrated;
    Server_conn;
    Server_request;
    Server_error;
    Server_slow;
  ]

(* Inverse of [index]; total on [0, count). The trace-ring decoder
   turns stored record codes back into constructors through this. *)
let of_index =
  let by_index = Array.of_list all in
  fun i -> by_index.(i)

(** Histogram-valued events. The [_span] constructors are
    duration-valued (nanoseconds, recorded via [Probe.record_span]);
    [Sweep_helpers] is a raw-value histogram (recorded via
    [Probe.observe]) of the number of distinct domains that claimed at
    least one sweep chunk during a single migration — the
    work-stealing participation measure. *)
type span =
  | Resize_span
  | Slowpath_span
  | Sweep_span
  | Sweep_helpers
  | Server_span  (** server-side request service time (read to reply) *)
  | Probe_len
      (** raw-value histogram of linear-probe distances observed by
          flat (open-addressing) FSet inserts and removes at their
          linearization slot *)
  | Server_read_span
      (** frame read stage: first byte of the length prefix to the
          fully-buffered request payload (the trace slice additionally
          covers the idle wait for the first byte) *)
  | Server_decode_span  (** request payload decode stage *)
  | Server_shard_span
      (** shard operation stage: backend get/put/del including any
          cooperative migration help performed inside it *)
  | Server_help_span
      (** migration-help time attributed to one request's shard stage
          (sweep chunks claimed on the serving domain) *)
  | Server_write_span  (** reply encode-and-flush stage *)

let span_count = 11

let span_index = function
  | Resize_span -> 0
  | Slowpath_span -> 1
  | Sweep_span -> 2
  | Sweep_helpers -> 3
  | Server_span -> 4
  | Probe_len -> 5
  | Server_read_span -> 6
  | Server_decode_span -> 7
  | Server_shard_span -> 8
  | Server_help_span -> 9
  | Server_write_span -> 10

let span_to_string = function
  | Resize_span -> "resize_ns"
  | Slowpath_span -> "slowpath_ns"
  | Sweep_span -> "sweep_chunk_ns"
  | Sweep_helpers -> "sweep_helpers"
  | Server_span -> "server_request_ns"
  | Probe_len -> "probe_len"
  | Server_read_span -> "server_read_ns"
  | Server_decode_span -> "server_decode_ns"
  | Server_shard_span -> "server_shard_ns"
  | Server_help_span -> "server_help_ns"
  | Server_write_span -> "server_write_ns"

let all_spans =
  [
    Resize_span; Slowpath_span; Sweep_span; Sweep_helpers; Server_span;
    Probe_len; Server_read_span; Server_decode_span; Server_shard_span;
    Server_help_span; Server_write_span;
  ]

(* Inverse of [span_index]; total on [0, span_count). *)
let span_of_index =
  let by_index = Array.of_list all_spans in
  fun i -> by_index.(i)
