(** The fixed event taxonomy of the telemetry substrate. One counter
    per constructor; the names below are the stable identifiers used
    by the pretty-printer, the JSON encoder, and the bench CSV/JSON
    trajectories — treat them as a wire format.

    Spans are the duration-valued complement: each names one log2
    histogram of nanosecond timings. *)

type t =
  | Cas_retry  (** an operation re-ran its CAS loop (lost CAS or frozen node) *)
  | Bucket_init  (** a lazy bucket migration installed a new head bucket *)
  | Keys_migrated  (** keys copied into freshly initialized buckets *)
  | Freeze  (** a bucket transitioned to the frozen (immutable) state *)
  | Resize_grow  (** the head HNode was replaced by a double-sized one *)
  | Resize_shrink  (** the head HNode was replaced by a half-sized one *)
  | Help_op  (** an announced operation was driven by the helping scan *)
  | Slowpath_entry  (** an operation entered the announce-and-help slow path *)
  | Fastpath_entry  (** an adaptive operation entered the lock-free fast path *)
  | Counter_flush  (** a per-handle approximate-count delta batch was flushed *)
  | Contains_pred  (** CONTAINS fell back to a predecessor bucket *)

let count = 11

let index = function
  | Cas_retry -> 0
  | Bucket_init -> 1
  | Keys_migrated -> 2
  | Freeze -> 3
  | Resize_grow -> 4
  | Resize_shrink -> 5
  | Help_op -> 6
  | Slowpath_entry -> 7
  | Fastpath_entry -> 8
  | Counter_flush -> 9
  | Contains_pred -> 10

let to_string = function
  | Cas_retry -> "cas_retry"
  | Bucket_init -> "bucket_init"
  | Keys_migrated -> "keys_migrated"
  | Freeze -> "freeze"
  | Resize_grow -> "resize_grow"
  | Resize_shrink -> "resize_shrink"
  | Help_op -> "help_op"
  | Slowpath_entry -> "slowpath_entry"
  | Fastpath_entry -> "fastpath_entry"
  | Counter_flush -> "counter_flush"
  | Contains_pred -> "contains_pred"

let all =
  [
    Cas_retry;
    Bucket_init;
    Keys_migrated;
    Freeze;
    Resize_grow;
    Resize_shrink;
    Help_op;
    Slowpath_entry;
    Fastpath_entry;
    Counter_flush;
    Contains_pred;
  ]

(** Duration-valued events, each backed by a log2 histogram. *)
type span = Resize_span | Slowpath_span

let span_count = 2
let span_index = function Resize_span -> 0 | Slowpath_span -> 1

let span_to_string = function
  | Resize_span -> "resize_ns"
  | Slowpath_span -> "slowpath_ns"

let all_spans = [ Resize_span; Slowpath_span ]
