(* Sharded event counters: one lane of [Event.count] atomics per
   shard, shards strided one cache line apart so that domains
   incrementing concurrently do not contend on (or false-share) the
   same line. A domain picks its shard by domain id, so at most
   [shards] distinct lines are ever written on the hot path; within a
   shard the increment is still a fetch-and-add — two domains that
   happen to collide on a shard lose locality, never updates. Totals
   are computed only at snapshot time. *)

module Atomic = Nbhash_util.Nb_atomic

type t = { slots : int Atomic.t array; shard_mask : int }

(* Lane width in words: the smallest multiple of 8 (a 64-byte cache
   line of 8-byte words) that fits the taxonomy. *)
let stride = (Event.count + 7) / 8 * 8
let default_shards = 8

let make ?(shards = default_shards) () =
  if not (Nbhash_util.Bits.is_pow2 shards) then
    invalid_arg "Counters.make: shards must be a power of two";
  {
    slots = Array.init (shards * stride) (fun _ -> Atomic.make 0);
    shard_mask = shards - 1;
  }

let shards t = t.shard_mask + 1

let[@inline] slot t ev =
  let shard = (Domain.self () :> int) land t.shard_mask in
  Array.unsafe_get t.slots ((shard * stride) + Event.index ev)

let[@inline] incr t ev = ignore (Atomic.fetch_and_add (slot t ev) 1)

let[@inline] add t ev n =
  if n <> 0 then ignore (Atomic.fetch_and_add (slot t ev) n)

let read t ev =
  let i = Event.index ev in
  let total = ref 0 in
  for shard = 0 to t.shard_mask do
    total := !total + Atomic.get t.slots.((shard * stride) + i)
  done;
  !total

(* Totals indexed by [Event.index]. *)
let totals t = Array.of_list (List.map (read t) Event.all)

(* Per-shard write totals, for the false-sharing detector: each lane
   is one domain subset's cache line, so the per-lane rate deltas are
   exactly the line write rates the ping-pong score needs. *)
let lane_totals t =
  Array.init (t.shard_mask + 1) (fun shard ->
      let acc = ref 0 in
      for i = 0 to Event.count - 1 do
        acc := !acc + Atomic.get t.slots.((shard * stride) + i)
      done;
      !acc)

let reset t = Array.iter (fun slot -> Atomic.set slot 0) t.slots
