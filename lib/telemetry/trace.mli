(** Flight recorder: per-domain lock-free trace rings.

    Where [Probe] aggregates (counters, log2 histograms), this module
    records *individual events in time order*: each writing domain owns
    a fixed-capacity ring lane of 4-word records [{ts_ns; code; arg;
    domain}] written with plain stores — no CAS on the hot path,
    overwrite-oldest on wrap. An ambient on/off switch mirrors
    [Global]'s probe: with no trace installed every emitter below is
    one load and one branch, and allocates nothing (asserted by a
    test). The instrumentation sites do not call this module directly;
    [Probe.emit]/[add]/[span_begin]/[record_span] forward here, so one
    set of sites feeds both the aggregate and the temporal view, and
    tracing works whether or not a recording probe is installed.

    Lanes are selected by [domain_id mod lanes]; if two domains collide
    on a lane their records may overwrite or tear each other. The
    decoder skips records that do not parse, making the whole recorder
    best-effort: it can lose events, but it cannot block, spin, or
    misrepresent a record it does return. Drain while writers are
    quiescent for an exact stream. *)

type t

val create : ?lanes:int -> ?capacity:int -> unit -> t
(** [lanes] (default 16) and [capacity] records per lane (default
    4096) are rounded up to powers of two. Memory: [lanes * capacity *
    4] words. *)

val install : t -> unit
(** Make [t] the ambient sink read by the emitters. *)

val uninstall : unit -> unit

val active : unit -> t option

val clear : t -> unit
(** Reset all lanes to empty. Not atomic w.r.t. concurrent writers;
    call it quiescent (e.g. between bench sections). *)

(** {1 Hot-path emitters}

    Called by [Probe]; safe to call unconditionally from any domain. *)

val instant : Event.t -> int -> unit
(** [instant ev arg] records a point event. [arg] is an event-specific
    small integer (a key, a count, a chunk index; 0 when the site has
    nothing to say). *)

val span_begin : Event.span -> unit

val span_end : Event.span -> unit
(** Every [span_begin] must be balanced by exactly one [span_end] on
    the same domain ([Probe.record_span] and [Probe.span_abort] both
    count); the exporter closes or drops the unbalanced remainder that
    ring wrap-around can leave behind. *)

(** {1 Draining and merging} *)

type phase = Instant | Begin | End
type point = Counter of Event.t | Span of Event.span

type record = {
  ts_ns : int;
  domain : int;
  seq : int;  (** absolute position in the writing lane *)
  phase : phase;
  point : point;
  arg : int;
}

val point_name : point -> string
(** [Event.to_string] for counters; span histogram keys minus their
    ["_ns"] unit suffix for spans (["resize_ns"] -> ["resize"]). *)

val records : t -> record array
(** All surviving records of all lanes merged into one stream sorted
    by [ts_ns] (ties broken by lane position, preserving per-domain
    order). *)

val written : t -> int
(** Total records ever written (including overwritten ones). *)

type drops = { overwritten : int; torn : int }

val drops : t -> drops
(** Loss accounting across all lanes: [overwritten] is the number of
    records lost to ring wrap-around (total writes minus surviving
    capacity, exact); [torn] is the number of surviving slots whose
    code word does not decode — a record caught mid-write or clobbered
    by a lane-sharing domain. Computed from the same unsynchronized
    snapshot the decoder reads, so best-effort like everything else
    here; [clear] resets both (exporters that need monotone series
    must accumulate across resets themselves). *)

val lane_drops : t -> (int * int * int) array
(** Per-lane [(lane_index, overwritten, torn)] breakdown of [drops]. *)

val lane_last_ts : t -> (int * int) array
(** [(lane_index, ts_ns)] of each non-empty lane's newest record — the
    watchdog's per-domain liveness signal. *)

(** {1 Export} *)

val to_chrome_string : t -> string
(** The merged stream as Chrome trace-event JSON (the "JSON Array
    Format"), loadable in Perfetto ({:https://ui.perfetto.dev}) and
    chrome://tracing: spans become B/E duration slices on the writing
    domain's track, counter events become instants, and a metadata
    record names each track "domain N". Timestamps are microseconds
    relative to the first record. *)

val write_chrome : out_channel -> t -> unit

val dump_tail : ?n:int -> Format.formatter -> t -> unit
(** Human-readable dump of the newest [n] (default 40) merged records,
    for watchdog stall reports. *)
