(* A point-in-time read of a probe: one total per event, one duration
   summary per span that observed anything. Pretty-printed for humans
   and hand-encoded to JSON (sorted, stable key order) for the
   machine-readable bench trajectory — no external JSON dependency. *)

type t = {
  counters : (string * int) list;  (* in Event.all order *)
  spans : (string * Nbhash_util.Stats.summary) list;  (* non-empty spans *)
}

let zero =
  {
    counters = List.map (fun ev -> (Event.to_string ev, 0)) Event.all;
    spans = [];
  }

let counter t name = Option.value ~default:0 (List.assoc_opt name t.counters)
let get t ev = counter t (Event.to_string ev)
let span t s = List.assoc_opt (Event.span_to_string s) t.spans
let is_zero t = List.for_all (fun (_, n) -> n = 0) t.counters && t.spans = []

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (name, n) ->
      if n > 0 then Format.fprintf ppf "%-16s %d@," name n)
    t.counters;
  List.iter
    (fun (name, s) ->
      Format.fprintf ppf "%-16s %a@," name Nbhash_util.Stats.pp_summary s)
    t.spans;
  if is_zero t then Format.fprintf ppf "(no events recorded)@,";
  Format.fprintf ppf "@]"

let to_string t = Format.asprintf "%a" pp t

(* --- JSON --- *)

(* Finite floats only (histogram summaries always are); %.17g
   round-trips doubles but usually prints short. *)
let json_float x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.17g" x

let json_summary (s : Nbhash_util.Stats.summary) =
  Printf.sprintf
    "{\"n\":%d,\"mean\":%s,\"min\":%s,\"p50\":%s,\"p95\":%s,\"p99\":%s,\"max\":%s}"
    s.Nbhash_util.Stats.n
    (json_float s.Nbhash_util.Stats.mean)
    (json_float s.Nbhash_util.Stats.min)
    (json_float s.Nbhash_util.Stats.median)
    (json_float s.Nbhash_util.Stats.p95)
    (json_float s.Nbhash_util.Stats.p99)
    (json_float s.Nbhash_util.Stats.max)

(* [meta], when given, is a ready-made JSON object (see Meta.json) and
   leads the document so scraped snapshots carry the same provenance
   block as bench artifacts. [families] (the labeled-histogram block,
   see Labeled.families_json), [trace] (the flight-recorder loss
   block, see Metrics_server) and [profile] (the per-site contention
   block, see Profile.snapshot_block) are likewise pre-rendered JSON
   values appended after the spans. Omitting everything keeps the
   historical two-key shape exactly. *)
let to_json ?meta ?families ?trace ?profile t =
  let counters =
    String.concat ","
      (List.map
         (fun (name, n) -> Printf.sprintf "\"%s\":%d" name n)
         t.counters)
  in
  let spans =
    String.concat ","
      (List.map
         (fun (name, s) -> Printf.sprintf "\"%s\":%s" name (json_summary s))
         t.spans)
  in
  let b = Buffer.create 512 in
  Buffer.add_char b '{';
  (match meta with
  | None -> ()
  | Some m -> Buffer.add_string b (Printf.sprintf "\"meta\":%s," m));
  Buffer.add_string b
    (Printf.sprintf "\"counters\":{%s},\"spans\":{%s}" counters spans);
  (match families with
  | None -> ()
  | Some f -> Buffer.add_string b (Printf.sprintf ",\"families\":%s" f));
  (match trace with
  | None -> ()
  | Some tr -> Buffer.add_string b (Printf.sprintf ",\"trace\":%s" tr));
  (match profile with
  | None -> ()
  | Some p -> Buffer.add_string b (Printf.sprintf ",\"profile\":%s" p));
  Buffer.add_char b '}';
  Buffer.contents b
