(* Open-loop load generator for the KV server.

   Each of [conns] connections runs on its own domain with its own
   socket and its own seeded Keystream, and fires requests on a fixed
   schedule: request d*k is DUE at t0 + k * conns/rate seconds,
   independent of how long earlier requests took. Latency is measured
   from the due time, not the send time, so server stalls show up in
   the percentiles instead of silently thinning the arrival stream
   (the coordinated-omission correction). A connection that falls more
   than [max_lag_ns] behind schedule drops the overdue requests —
   counted, never silently — and re-anchors, which models a bounded
   client queue. [rate = 0] disables pacing: a closed loop that fires
   as fast as responses return, measuring service time only.

   Latencies land in one shared log2 telemetry histogram (domain
   sharded, so recording never synchronizes the connections); exact
   max/sum and the outcome counters are per-connection locals merged
   after the join. The report renders as bench-v2 JSON (mode "load",
   exp "slo") so tools/bench_compare can gate SLO regressions the same
   way it gates bench regressions. *)

module Tm = Nbhash_telemetry
module Keystream = Nbhash_workload.Keystream

type config = {
  host : string;
  port : int;
  conns : int;
  rate : float;  (** total target request rate, req/s; 0 = closed loop *)
  duration_s : float;
  key_range : int;
  dist : Keystream.dist;
  get_ratio : float;
  del_ratio : float;  (** of the non-get remainder, puts take the rest *)
  value_bytes : int;
  seed : int;
  max_lag_ns : int;  (** schedule slack before overdue requests drop *)
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    conns = 2;
    rate = 2000.;
    duration_s = 5.;
    key_range = 1 lsl 16;
    dist = Keystream.Uniform;
    get_ratio = 0.8;
    del_ratio = 0.05;
    value_bytes = 32;
    seed = 42;
    max_lag_ns = 100_000_000;
  }

(* Per-connection tallies, merged after the join. *)
type tally = {
  mutable sent : int;
  mutable ok : int;
  mutable not_found : int;
  mutable errors : int;
  mutable drops : int;
  mutable aborted : bool;
  mutable sum_ns : float;
  mutable max_ns : int;
  op_sent : int array;  (* per opclass: get/put/del *)
  mutable id_mismatches : int;  (* v2 replies with the wrong echo *)
  mutable v2 : bool;  (* this connection negotiated revision 2 *)
}

let new_tally () =
  {
    sent = 0;
    ok = 0;
    not_found = 0;
    errors = 0;
    drops = 0;
    aborted = false;
    sum_ns = 0.;
    max_ns = 0;
    op_sent = Array.make 3 0;
    id_mismatches = 0;
    v2 = false;
  }

(* Per-opcode client-side stats, with the server's own p999 for the
   same opcode (from the post-run STAT) joined in: the difference is
   network + socket-queue time, and a client p999 far above the
   server's is the coordinated-omission signature made visible. *)
type op_stats = {
  op : string;
  op_sent : int;
  op_p50_ns : float;
  op_p99_ns : float;
  op_p999_ns : float;
  server_p999_ns : float option;
}

type report = {
  impl : string;  (** from the server's STAT reply, e.g. server/lockfreex2 *)
  config : config;
  elapsed_s : float;
  sent : int;
  ok : int;
  not_found : int;
  errors : int;
  drops : int;
  aborted : int;
      (** connections that died mid-run and could not reconnect; when
          nonzero the run offered less than the configured load and
          its rate/percentiles are not comparable to a clean run *)
  achieved_rate : float;  (** completed requests per second *)
  p50_ns : float;
  p99_ns : float;
  p999_ns : float;
  mean_ns : float;
  max_ns : int;
  per_op : op_stats list;  (** get/put/del, in that order *)
  v2_conns : int;  (** connections that negotiated protocol rev 2 *)
  id_mismatches : int;
}

let connect ~host ~port =
  let addr = Unix.ADDR_INET (Tm.Metrics_server.resolve_inet host, port) in
  let rec go attempts =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () ->
      (try Unix.setsockopt fd Unix.TCP_NODELAY true
       with Unix.Unix_error _ -> ());
      fd
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if attempts <= 1 then
        failwith
          (Printf.sprintf "loadgen: cannot connect to %s:%d: %s" host port
             (Unix.error_message e))
      else begin
        Unix.sleepf 0.05;
        go (attempts - 1)
      end
  in
  go 40

(* One STAT round-trip, parsed; [None] if anything fails. *)
let stat_json ~host ~port =
  match
    let fd = connect ~host ~port in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        Protocol.write_request fd Stat;
        Protocol.read_response fd)
  with
  | Result.Ok (Value body) -> (
    match Nbhash_util.Json.parse body with
    | Result.Ok j -> Some j
    | Result.Error _ -> None)
  | _ -> None
  | exception (Unix.Unix_error _ | Sys_error _ | Failure _) -> None

(* Fetch the server's self-description for the report's impl label. *)
let stat_impl ~host ~port =
  match stat_json ~host ~port with
  | None -> "server/unknown"
  | Some j -> (
    let field name = Nbhash_util.Json.member name j in
    match (field "backend", field "shards") with
    | Some (Str b), Some (Num s) ->
      Printf.sprintf "server/%sx%d" b (int_of_float s)
    | _ -> "server/unknown")

(* The server-side p999 of one opcode from a STAT reply's "ops" block;
   [None] on a pre-rev-2 server or when that opcode saw no attributed
   traffic (probe not recording, or simply none sent). *)
let server_p999_of_stat stat op =
  Option.bind stat (fun j ->
      Option.bind (Nbhash_util.Json.member "ops" j) (fun ops ->
          Option.bind (Nbhash_util.Json.member op ops) (fun o ->
              Option.bind (Nbhash_util.Json.member "p999_ns" o)
                Nbhash_util.Json.to_num)))

(* Negotiate protocol revision 2 on a fresh connection. An old server
   answers the HELLO with a payload-level ERR and the connection stays
   in sync, so [false] means "keep talking v1 on this same socket". *)
let negotiate fd =
  match
    Protocol.write_request fd Protocol.Hello;
    Protocol.read_response fd
  with
  | Result.Ok (Value ack) when ack = Protocol.hello_ack -> true
  | Result.Ok _ | Result.Error _ -> false
  | exception (Unix.Unix_error _ | Sys_error _) -> false

let run ?(config = default_config) () =
  if config.conns < 1 then invalid_arg "Loadgen.run: conns < 1";
  if config.rate < 0. then invalid_arg "Loadgen.run: rate < 0";
  (* A server that drops a connection mid-write must not SIGPIPE the
     whole load generator; with the signal ignored it surfaces as
     EPIPE in the worker's reconnect path. *)
  Tm.Metrics_server.ignore_sigpipe ();
  let impl = stat_impl ~host:config.host ~port:config.port in
  let hist = Tm.Histogram.make () in
  (* Per-opclass latency histograms (get/put/del), domain-sharded like
     [hist] so the connections never synchronize on them. *)
  let op_hists = Array.init 3 (fun _ -> Tm.Histogram.make ()) in
  let value = String.make config.value_bytes 'v' in
  let interval_ns =
    if config.rate = 0. then 0
    else
      int_of_float (1e9 *. float_of_int config.conns /. config.rate)
  in
  let deadline_of t0 = t0 + int_of_float (config.duration_s *. 1e9) in
  let worker d =
    let tally = new_tally () in
    let fd = ref (connect ~host:config.host ~port:config.port) in
    let v2 = ref (negotiate !fd) in
    tally.v2 <- !v2;
    (* Distinct id space per connection (ids are per-connection on the
       wire, but disjoint spaces catch any cross-connection mixup). *)
    let next_id = ref (d lsl 20) in
    let ks =
      Keystream.create ~dist:config.dist ~key_range:config.key_range
        ~seed:(config.seed + (77 * d))
        ()
    in
    let rng = Nbhash_util.Xoshiro.create (config.seed + (1000 * d) + 13) in
    let request () =
      let k = Keystream.next ks in
      let r = Nbhash_util.Xoshiro.float rng in
      if r < config.get_ratio then Protocol.Get k
      else if r < config.get_ratio +. config.del_ratio then Protocol.Del k
      else Protocol.Put (k, value)
    in
    let opclass = function
      | Protocol.Get _ -> 0
      | Protocol.Put _ -> 1
      | _ -> 2
    in
    let exchange req =
      if !v2 then begin
        let id = !next_id land 0xFFFFFFFF in
        incr next_id;
        Protocol.write_request_v2 !fd ~id req;
        match Protocol.read_response_v2 !fd with
        | Result.Ok (rid, resp) ->
          if rid <> id then begin
            tally.id_mismatches <- tally.id_mismatches + 1;
            Result.Error "response id mismatch"
          end
          else Result.Ok resp
        | Result.Error msg -> Result.Error msg
      end
      else begin
        Protocol.write_request !fd req;
        Protocol.read_response !fd
      end
    in
    let t0 = Nbhash_util.Clock.now_ns () in
    let deadline = deadline_of t0 in
    let due = ref t0 in
    let continue = ref true in
    while !continue do
      due := !due + interval_ns;
      let now = Nbhash_util.Clock.now_ns () in
      if (if interval_ns = 0 then now else max now !due) >= deadline then
        continue := false
      else if interval_ns > 0 && now - !due > config.max_lag_ns then begin
        (* Too far behind schedule: drop the overdue request and
           re-anchor so one long stall does not turn the rest of
           the run into a backlog-burndown measurement. *)
        tally.drops <- tally.drops + 1;
        due := now
      end
      else begin
        if interval_ns > 0 && now < !due then
          Unix.sleepf (float_of_int (!due - now) *. 1e-9);
        let start = if interval_ns = 0 then Nbhash_util.Clock.now_ns () else !due in
        let req = request () in
        let cls = opclass req in
        match exchange req with
        | resp ->
          (match resp with
          | Result.Ok Ok | Result.Ok (Value _) -> tally.ok <- tally.ok + 1
          | Result.Ok Not_found -> tally.not_found <- tally.not_found + 1
          | Result.Ok (Err _) | Result.Error _ ->
            tally.errors <- tally.errors + 1);
          tally.sent <- tally.sent + 1;
          tally.op_sent.(cls) <- tally.op_sent.(cls) + 1;
          let lat = Nbhash_util.Clock.now_ns () - start in
          Tm.Histogram.observe hist lat;
          Tm.Histogram.observe op_hists.(cls) lat;
          tally.sum_ns <- tally.sum_ns +. float_of_int lat;
          if lat > tally.max_ns then tally.max_ns <- lat
        | exception (Unix.Unix_error _ | Sys_error _) -> (
          (* The connection died mid-request (reset, server drain,
             ...): count the casualty, then reconnect and resume the
             schedule so the remaining duration still offers the
             configured load. If the server is really gone the
             reconnect fails and the connection is recorded as
             aborted — never a silently thinner workload. *)
          tally.errors <- tally.errors + 1;
          (try Unix.close !fd with Unix.Unix_error _ -> ());
          match connect ~host:config.host ~port:config.port with
          | nfd ->
            fd := nfd;
            (* The revision is per connection; renegotiate so the id
               stream stays joined across the reconnect. *)
            v2 := negotiate nfd;
            tally.v2 <- tally.v2 && !v2;
            due := Nbhash_util.Clock.now_ns ()
          | exception Failure _ ->
            tally.aborted <- true;
            continue := false)
      end
    done;
    (try Unix.close !fd with Unix.Unix_error _ -> ());
    (tally, Nbhash_util.Clock.now_ns () - t0)
  in
  let domains =
    List.init config.conns (fun d -> Domain.spawn (fun () -> worker d))
  in
  let parts = List.map Domain.join domains in
  let total = new_tally () in
  let aborted = ref 0 in
  let v2_conns = ref 0 in
  let elapsed_ns = ref 0 in
  List.iter
    (fun ((t : tally), e) ->
      total.sent <- total.sent + t.sent;
      total.ok <- total.ok + t.ok;
      total.not_found <- total.not_found + t.not_found;
      total.errors <- total.errors + t.errors;
      total.drops <- total.drops + t.drops;
      if t.aborted then incr aborted;
      if t.v2 then incr v2_conns;
      total.id_mismatches <- total.id_mismatches + t.id_mismatches;
      Array.iteri
        (fun i v -> total.op_sent.(i) <- total.op_sent.(i) + v)
        t.op_sent;
      total.sum_ns <- total.sum_ns +. t.sum_ns;
      if t.max_ns > total.max_ns then total.max_ns <- t.max_ns;
      if e > !elapsed_ns then elapsed_ns := e)
    parts;
  let elapsed_s = float_of_int !elapsed_ns *. 1e-9 in
  let counts = Tm.Histogram.counts hist in
  let n = Array.fold_left ( + ) 0 counts in
  let pct p =
    if n = 0 then 0. else Tm.Histogram.percentile_of_counts counts n p
  in
  (* The client/server join: client percentiles from this run's own
     histograms, the server's p999 for the same opcode from a post-run
     STAT. The gap between them is network + socket-queue time. *)
  let post_stat = stat_json ~host:config.host ~port:config.port in
  let per_op =
    List.mapi
      (fun i op ->
        let counts = Tm.Histogram.counts op_hists.(i) in
        let n = Array.fold_left ( + ) 0 counts in
        let pct p =
          if n = 0 then 0. else Tm.Histogram.percentile_of_counts counts n p
        in
        {
          op;
          op_sent = total.op_sent.(i);
          op_p50_ns = pct 50.;
          op_p99_ns = pct 99.;
          op_p999_ns = pct 99.9;
          server_p999_ns = server_p999_of_stat post_stat op;
        })
      [ "get"; "put"; "del" ]
  in
  {
    impl;
    config;
    elapsed_s;
    sent = total.sent;
    ok = total.ok;
    not_found = total.not_found;
    errors = total.errors;
    drops = total.drops;
    aborted = !aborted;
    achieved_rate =
      (if elapsed_s > 0. then float_of_int total.sent /. elapsed_s else 0.);
    p50_ns = pct 50.;
    p99_ns = pct 99.;
    p999_ns = pct 99.9;
    mean_ns =
      (if total.sent > 0 then total.sum_ns /. float_of_int total.sent else 0.);
    max_ns = total.max_ns;
    per_op;
    v2_conns = !v2_conns;
    id_mismatches = total.id_mismatches;
  }

(* --- rendering --- *)

let dist_name = function
  | Keystream.Uniform -> "uniform"
  | Keystream.Zipf s -> Printf.sprintf "zipf:%g" s

(* bench-v2 JSON: one result, mode "load", exp "slo". The percentile
   fields ride inside [params] next to the identity fields
   (workers/key_range/lookup_ratio/duration) that bench_compare keys
   on; ops_per_usec is the achieved completion rate, which under
   pacing is schedule-stable and therefore comparable across runs. *)
let to_bench_json (r : report) =
  let c = r.config in
  let params =
    String.concat ","
      ([
         Printf.sprintf "\"workers\":%d" c.conns;
        Printf.sprintf "\"key_range\":%d" c.key_range;
        Printf.sprintf "\"lookup_ratio\":%g" c.get_ratio;
        Printf.sprintf "\"duration\":%g" c.duration_s;
        Printf.sprintf "\"rate\":%g" c.rate;
        Printf.sprintf "\"dist\":\"%s\"" (dist_name c.dist);
        Printf.sprintf "\"value_bytes\":%d" c.value_bytes;
        Printf.sprintf "\"sent\":%d" r.sent;
        Printf.sprintf "\"ok\":%d" r.ok;
        Printf.sprintf "\"not_found\":%d" r.not_found;
        Printf.sprintf "\"errors\":%d" r.errors;
        Printf.sprintf "\"drops\":%d" r.drops;
        Printf.sprintf "\"aborted\":%d" r.aborted;
        Printf.sprintf "\"p50_ns\":%.0f" r.p50_ns;
        Printf.sprintf "\"p99_ns\":%.0f" r.p99_ns;
        Printf.sprintf "\"p999_ns\":%.0f" r.p999_ns;
        Printf.sprintf "\"mean_ns\":%.0f" r.mean_ns;
        Printf.sprintf "\"max_ns\":%d" r.max_ns;
        Printf.sprintf "\"proto\":%d" (if r.v2_conns > 0 then 2 else 1);
        Printf.sprintf "\"v2_conns\":%d" r.v2_conns;
        Printf.sprintf "\"id_mismatches\":%d" r.id_mismatches;
       ]
      @ List.concat_map
          (fun (o : op_stats) ->
            [
              Printf.sprintf "\"%s_sent\":%d" o.op o.op_sent;
              Printf.sprintf "\"%s_p50_ns\":%.0f" o.op o.op_p50_ns;
              Printf.sprintf "\"%s_p99_ns\":%.0f" o.op o.op_p99_ns;
              Printf.sprintf "\"%s_p999_ns\":%.0f" o.op o.op_p999_ns;
            ]
            @
            match o.server_p999_ns with
            | None -> []
            | Some v ->
              [ Printf.sprintf "\"%s_server_p999_ns\":%.0f" o.op v ])
          r.per_op)
  in
  Printf.sprintf
    "{\"schema\":\"nbhash-bench-v2\",\"mode\":\"load\",\"meta\":%s,\"results\":[{\"exp\":\"slo\",\"impl\":%S,\"params\":{%s},\"ops_per_usec\":%.6f,\"telemetry\":null}]}\n"
    (Tm.Meta.json ()) r.impl params
    (r.achieved_rate /. 1e6)

let print_human (r : report) =
  let c = r.config in
  Printf.printf "slo: %s  conns=%d rate=%s dist=%s keys=%d get=%.2f\n" r.impl
    c.conns
    (if c.rate = 0. then "closed-loop" else Printf.sprintf "%.0f/s" c.rate)
    (dist_name c.dist) c.key_range c.get_ratio;
  Printf.printf
    "  sent %d in %.2fs (%.0f req/s achieved); ok %d, not_found %d, errors \
     %d, drops %d\n"
    r.sent r.elapsed_s r.achieved_rate r.ok r.not_found r.errors r.drops;
  if r.aborted > 0 then
    Printf.printf
      "  WARNING: %d of %d connections aborted early (died and could not \
       reconnect); offered load was below the configured rate\n"
      r.aborted c.conns;
  let us v = v /. 1e3 in
  Printf.printf
    "  latency (open-loop, from due time): p50 %.1fus  p99 %.1fus  p999 \
     %.1fus  mean %.1fus  max %.1fus\n"
    (us r.p50_ns) (us r.p99_ns) (us r.p999_ns) (us r.mean_ns)
    (us (float_of_int r.max_ns));
  Printf.printf "  proto: rev %d on %d/%d connections"
    (if r.v2_conns > 0 then 2 else 1)
    (if r.v2_conns > 0 then r.v2_conns else c.conns)
    c.conns;
  if r.id_mismatches > 0 then
    Printf.printf "  (%d ID MISMATCHES)" r.id_mismatches;
  print_newline ();
  List.iter
    (fun (o : op_stats) ->
      if o.op_sent > 0 then begin
        Printf.printf "  %-3s sent %-8d p50 %8.1fus  p99 %8.1fus  p999 %8.1fus"
          o.op o.op_sent (us o.op_p50_ns) (us o.op_p99_ns) (us o.op_p999_ns);
        (match o.server_p999_ns with
        | None -> ()
        | Some sp ->
          (* client p999 - server p999 ~ network + socket-queue time;
             a large gap with a healthy server-side tail means the
             latency lives outside the request handler. *)
          Printf.printf "  | server p999 %8.1fus  net+queue ~%.1fus" (us sp)
            (us (Float.max 0. (o.op_p999_ns -. sp))));
        print_newline ()
      end)
    r.per_op
