(* The server's pluggable store: an array of shard tables, each a
   whole dynamic-sized nonblocking hash map ({!Nbhash.Hashmap} or
   {!Nbhash.Wf_hashmap}), with keys routed to shards by a mixed hash.
   One shard ([--shards 1]) is the single-shared-table ablation; more
   shards bound both contention and the scope of any one migration (a
   resize freezes and copies one shard, not the whole key space).

   Each shard registers the same seven nbhash_table_* gauge families a
   Factory table gets (labels table=<backend>, instance=<seq>/<shard>)
   plus a liveness-watchdog source over its announce array, so a
   running server is observable with the existing /metrics + watchdog
   + `nbhash_cli top` stack unchanged. [close] unregisters them.

   Handles are per-domain (the wait-free map's announce slots require
   it): every server worker domain calls [register] once and keeps the
   bundle for its lifetime. *)

module Atomic = Nbhash_util.Nb_atomic
module V = Nbhash.Hashset_intf

type kind = Lockfree | Waitfree

let kind_name = function Lockfree -> "lockfree" | Waitfree -> "waitfree"

let kind_of_string = function
  | "lockfree" | "lf" -> Some Lockfree
  | "waitfree" | "wf" -> Some Waitfree
  | _ -> None

type shard =
  | LF of string Nbhash.Hashmap.t
  | WF of string Nbhash.Wf_hashmap.t

type t = {
  kind : kind;
  shards : shard array;
  close_registrations : unit -> unit;
}

type shard_handle =
  | HLF of string Nbhash.Hashmap.handle
  | HWF of string Nbhash.Wf_hashmap.handle

type handle = { backend : t; hs : shard_handle array }

let shard_count t = Array.length t.shards
let kind t = t.kind

(* Distinguishes backends that coexist (tests, restarts) in gauge
   label sets, like Factory's instance counter. *)
let instance_seq = Atomic.make 0

let inspect_shard t i =
  match t.shards.(i) with
  | LF m -> Nbhash.Hashmap.inspect m
  | WF m -> Nbhash.Wf_hashmap.inspect m

let pending_shard t i =
  match t.shards.(i) with
  | LF m -> Nbhash.Hashmap.pending_ops m
  | WF m -> Nbhash.Wf_hashmap.pending_ops m

(* Factory.attach-style registration: the seven table-health gauge
   families plus a watchdog source, per shard. *)
let attach t =
  let module G = Nbhash_telemetry.Gauge in
  let name = "kv-" ^ kind_name t.kind in
  let seq = Atomic.fetch_and_add instance_seq 1 in
  let regs =
    Array.to_list
      (Array.mapi
         (fun i _ ->
           let labels =
             [
               ("table", name);
               ("instance", Printf.sprintf "%d/%d" seq i);
               ("shard", string_of_int i);
             ]
           in
           let gauge metric help read =
             G.register ~name:("nbhash_table_" ^ metric) ~help ~labels
               (fun () -> read (inspect_shard t i))
           in
           let gauges =
             [
               gauge "load_factor" "Keys per bucket" (fun v -> v.V.load_factor);
               gauge "buckets" "Current bucket-array size" (fun v ->
                   float_of_int v.V.buckets);
               gauge "cardinal" "Keys in the table" (fun v ->
                   float_of_int v.V.cardinal);
               gauge "max_depth" "Deepest bucket" (fun v ->
                   float_of_int v.V.max_depth);
               gauge "frozen_buckets" "Buckets in the frozen (immutable) state"
                 (fun v -> float_of_int v.V.frozen_buckets);
               gauge "migration_progress"
                 "Fraction of head buckets initialized; 1 when not migrating"
                 (fun v -> v.V.migration_progress);
               gauge "announce_pending" "Announced-but-incomplete operations"
                 (fun v -> float_of_int v.V.announce_pending);
             ]
           in
           let wd =
             Nbhash_telemetry.Watchdog.register_source
               ~name:(Printf.sprintf "%s#%d/%d" name seq i)
               (fun () -> pending_shard t i)
           in
           fun () ->
             List.iter G.unregister gauges;
             Nbhash_telemetry.Watchdog.unregister_source wd)
         t.shards)
  in
  fun () -> List.iter (fun f -> f ()) regs

let default_policy = { Nbhash.Policy.default with init_buckets = 64 }

let create ?(policy = default_policy) ~kind ~shards ~max_threads () =
  if shards < 1 then invalid_arg "Backend.create: shards < 1";
  let mk _ =
    match kind with
    | Lockfree -> LF (Nbhash.Hashmap.create ~policy ())
    | Waitfree -> WF (Nbhash.Wf_hashmap.create ~policy ~max_threads ())
  in
  let t =
    { kind; shards = Array.init shards mk; close_registrations = Fun.id }
  in
  let close = attach t in
  { t with close_registrations = close }

let close t = t.close_registrations ()

let register t =
  {
    backend = t;
    hs =
      Array.map
        (function
          | LF m -> HLF (Nbhash.Hashmap.register m)
          | WF m -> HWF (Nbhash.Wf_hashmap.register m))
        t.shards;
  }

let unregister h =
  Array.iter
    (function
      | HLF m -> Nbhash.Hashmap.unregister m
      | HWF m -> Nbhash.Wf_hashmap.unregister m)
    h.hs

(* Key-to-shard routing: a multiplicative mix so adjacent keys spread
   across shards, folded positive before the modulus. *)
let[@inline] shard_of_key t k =
  let n = Array.length t.shards in
  if n = 1 then 0 else k * 0x9E3779B97F4A7C1 land max_int mod n

let get h k =
  match h.hs.(shard_of_key h.backend k) with
  | HLF m -> Nbhash.Hashmap.get m k
  | HWF m -> Nbhash.Wf_hashmap.get m k

let put h k v =
  match h.hs.(shard_of_key h.backend k) with
  | HLF m -> ignore (Nbhash.Hashmap.put m k v)
  | HWF m -> ignore (Nbhash.Wf_hashmap.put m k v)

let del h k =
  match h.hs.(shard_of_key h.backend k) with
  | HLF m -> Option.is_some (Nbhash.Hashmap.remove m k)
  | HWF m -> Option.is_some (Nbhash.Wf_hashmap.remove m k)

let cardinal t =
  Array.fold_left
    (fun acc -> function
      | LF m -> acc + Nbhash.Hashmap.cardinal m
      | WF m -> acc + Nbhash.Wf_hashmap.cardinal m)
    0 t.shards

let check_invariants t =
  Array.iter
    (function
      | LF m -> Nbhash.Hashmap.check_invariants m
      | WF m -> Nbhash.Wf_hashmap.check_invariants m)
    t.shards

let force_resize h ~shard ~grow =
  match h.hs.(shard) with
  | HLF m -> Nbhash.Hashmap.force_resize m ~grow
  | HWF m -> Nbhash.Wf_hashmap.force_resize m ~grow

(* Drive every shard's in-flight migration to completion: updates on
   reserved keys (at and above Protocol.max_key, which the wire
   protocol rejects from clients) participate in the cooperative sweep
   until the window closes. The budget bounds a pathological spin; a
   shard that will not drain within it is a bug the caller's
   [migration_progress] assertion catches. *)
let drain h =
  Array.iteri
    (fun i sh ->
      let probe = Protocol.max_key + 1 + i in
      let budget = ref 2_000_000 in
      while (inspect_shard h.backend i).V.migrating && !budget > 0 do
        (match sh with
        | HLF m ->
          ignore (Nbhash.Hashmap.put m probe "");
          ignore (Nbhash.Hashmap.remove m probe)
        | HWF m ->
          ignore (Nbhash.Wf_hashmap.put m probe "");
          ignore (Nbhash.Wf_hashmap.remove m probe));
        decr budget
      done)
    h.hs
