(** The KV service wire protocol: length-prefixed binary frames over a
    stream socket.

    A frame is a 4-byte big-endian payload length followed by the
    payload; the payload's first byte is an opcode, the rest is the
    body. Keys are 8-byte big-endian non-negative integers below
    {!max_key}; values are arbitrary byte strings (empty allowed) up
    to the frame limit. One request frame yields exactly one response
    frame; requests on one connection are processed in order.

    Opcodes — requests: [0x01] GET key, [0x02] PUT key value,
    [0x03] DEL key, [0x04] PING, [0x05] DRAIN, [0x06] STAT.
    Responses: [0x80] VALUE bytes, [0x81] OK, [0x82] NOT_FOUND,
    [0xEE] ERR message.

    Framing errors (truncated length prefix or body, oversized
    declared length) are answered with an ERR frame before the server
    closes the connection; payload-level errors (bad opcode, wrong
    body size, key out of range) are answered with ERR and the
    connection stays usable, because the framing is still in sync.

    {b Revision 2.} A connection starts in v1. A client that sends
    {!Hello} (a PING with a one-byte body naming revision 2 — a
    payload-level error on a v1 server, so the ERR reply doubles as a
    clean fallback signal) and receives [Value hello_ack] has switched
    that connection to v2: every subsequent frame, both directions,
    carries a 4-byte big-endian request id between the opcode byte and
    the v1 body, echoed verbatim in the response. The id is the
    client-side join key for per-request latency attribution. *)

type request =
  | Get of int
  | Put of int * string
  | Del of int
  | Ping
  | Drain  (** finish in-flight migrations, then shut the server down *)
  | Stat  (** server configuration and occupancy as a small JSON body *)
  | Hello  (** negotiate protocol revision 2 on this connection *)
  | Force_resize of int
      (** force a grow of the given shard's table — operational stall
          injection for testing the slow-request capture *)

type response = Value of string | Ok | Not_found | Err of string

type rev = V1 | V2
(** Per-connection protocol revision (see {!Hello}). *)

val hello_ack : string
(** The VALUE body a v2 server answers {!Hello} with. *)

val max_key : int
(** [2^59]. Keys at or above this are reserved for the server's own
    use (migration-drain probes). *)

val default_max_frame : int
(** 1 MiB of payload. *)

(** {1 Codec} — payloads without the length prefix} *)

val request_to_payload : request -> string
val request_of_payload : string -> (request, string) result
val response_to_payload : response -> string
val response_of_payload : string -> (response, string) result

(** {1 Framed IO over file descriptors} *)

val write_frame : Unix.file_descr -> string -> unit
(** Prefix the payload with its length and write it all out. *)

val write_request : Unix.file_descr -> request -> unit
val write_response : Unix.file_descr -> response -> unit

val read_frame :
  ?max_frame:int -> Unix.file_descr -> (string option, string) result
(** Read one whole frame. [Ok None] on clean EOF at a frame boundary;
    [Error msg] on a truncated prefix or body, or a declared length of
    zero or above [max_frame]. Blocking. *)

val read_response :
  ?max_frame:int -> Unix.file_descr -> (response, string) result
(** [read_frame] + decode; EOF where a response was due is an error. *)

val read_frame_timed :
  ?max_frame:int ->
  timed:bool ->
  Unix.file_descr ->
  (string option, string) result * int
(** [read_frame] that also returns the monotonic timestamp taken right
    after the first prefix byte arrived — the boundary between idle
    wait and the read stage, for per-request attribution. With
    [~timed:false] (telemetry disabled) it is exactly [read_frame]
    plus a constant [0]: single-syscall prefix read, no clock. *)

(** {1 Revision 2 codec and IO}

    v2 frames carry a 4-byte request id between opcode and body;
    responses echo the request's id. *)

val write_request_v2 : Unix.file_descr -> id:int -> request -> unit
val write_response_v2 : Unix.file_descr -> id:int -> response -> unit

val request_of_payload_v2 : string -> (request, string) result
(** Decode a v2 request payload (id stripped; read it separately with
    {!v2_frame_id} — error replies echo it even when the decode
    fails). *)

val v2_frame_id : string -> int
(** The request id of a v2 frame; 0 if the frame is too short. *)

val read_response_v2 :
  ?max_frame:int -> Unix.file_descr -> (int * response, string) result
(** Read one v2 response; returns [(echoed_id, response)]. *)
