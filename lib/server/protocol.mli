(** The KV service wire protocol: length-prefixed binary frames over a
    stream socket.

    A frame is a 4-byte big-endian payload length followed by the
    payload; the payload's first byte is an opcode, the rest is the
    body. Keys are 8-byte big-endian non-negative integers below
    {!max_key}; values are arbitrary byte strings (empty allowed) up
    to the frame limit. One request frame yields exactly one response
    frame; requests on one connection are processed in order.

    Opcodes — requests: [0x01] GET key, [0x02] PUT key value,
    [0x03] DEL key, [0x04] PING, [0x05] DRAIN, [0x06] STAT.
    Responses: [0x80] VALUE bytes, [0x81] OK, [0x82] NOT_FOUND,
    [0xEE] ERR message.

    Framing errors (truncated length prefix or body, oversized
    declared length) are answered with an ERR frame before the server
    closes the connection; payload-level errors (bad opcode, wrong
    body size, key out of range) are answered with ERR and the
    connection stays usable, because the framing is still in sync. *)

type request =
  | Get of int
  | Put of int * string
  | Del of int
  | Ping
  | Drain  (** finish in-flight migrations, then shut the server down *)
  | Stat  (** server configuration and occupancy as a small JSON body *)

type response = Value of string | Ok | Not_found | Err of string

val max_key : int
(** [2^59]. Keys at or above this are reserved for the server's own
    use (migration-drain probes). *)

val default_max_frame : int
(** 1 MiB of payload. *)

(** {1 Codec} — payloads without the length prefix} *)

val request_to_payload : request -> string
val request_of_payload : string -> (request, string) result
val response_to_payload : response -> string
val response_of_payload : string -> (response, string) result

(** {1 Framed IO over file descriptors} *)

val write_frame : Unix.file_descr -> string -> unit
(** Prefix the payload with its length and write it all out. *)

val write_request : Unix.file_descr -> request -> unit
val write_response : Unix.file_descr -> response -> unit

val read_frame :
  ?max_frame:int -> Unix.file_descr -> (string option, string) result
(** Read one whole frame. [Ok None] on clean EOF at a frame boundary;
    [Error msg] on a truncated prefix or body, or a declared length of
    zero or above [max_frame]. Blocking. *)

val read_response :
  ?max_frame:int -> Unix.file_descr -> (response, string) result
(** [read_frame] + decode; EOF where a response was due is an error. *)
