(* Tail-sampled slow-request capture: every attributed request is
   [note]d with its stage breakdown; the ones whose total exceeds the
   threshold are captured into a bounded lock-free ring with the
   context an outlier investigation needs attached — the stage split,
   the owning shard's [table_view] at capture time, and the flight
   recorder's merged tail. Exported as JSON via /slow.json (a
   registered metrics route), optionally appended as JSON lines to a
   file, and surfaced by `nbhash_cli slow`.

   The threshold is either fixed ([slow_threshold_ns] in the server
   config; [Some 0] captures everything, which the stage-sum tests
   use) or rolling: a p999 estimate recomputed from this log's own
   total-latency histogram every 1024 noted requests, armed only after
   1000 observations so a cold server does not capture its warmup.

   Concurrency: [note]'s non-capturing path is one histogram observe
   plus one fetch-and-add and a compare — no allocation, no locks
   (Mutex is banned in lib/). Captures claim a slot by fetch-and-add
   on [next] and publish the finished entry with an atomic set;
   readers see each slot either empty or whole. The JSONL file write
   is a single [write] of one line, which POSIX keeps atomic enough
   for line-oriented consumers at these sizes. *)

module Atomic = Nbhash_util.Nb_atomic
module Tm = Nbhash_telemetry.Global
module Ev = Nbhash_telemetry.Event
module Histogram = Nbhash_telemetry.Histogram
module Trace = Nbhash_telemetry.Trace
module V = Nbhash.Hashset_intf

type entry = {
  seq : int;  (* capture ordinal, process-global per log *)
  ts_ns : int;  (* capture timestamp, monotonic clock *)
  op : string;
  key : int;  (* -1 for non-keyed requests *)
  shard : int;  (* -1 when no shard owns the request *)
  total_ns : int;
  read_ns : int;
  decode_ns : int;
  shard_ns : int;
  help_ns : int;
  write_ns : int;
  threshold_ns : int;  (* effective threshold at capture time *)
  view : V.table_view option;  (* owning shard's structural state *)
  trace_tail : string option;  (* merged flight-recorder tail *)
}

type t = {
  capacity : int;
  entries : entry option Atomic.t array;
  next : int Atomic.t;  (* total captures; slot = next mod capacity *)
  seen : int Atomic.t;  (* total noted requests *)
  fixed : int option;  (* None = rolling threshold *)
  rolling : int Atomic.t;  (* cached rolling threshold, ns *)
  totals : Histogram.t;  (* all noted totals, feeds the rolling p999 *)
  inspect : int -> V.table_view option;
  log_fd : Unix.file_descr option;
}

let create ?(capacity = 64) ?threshold_ns ?log ~inspect () =
  if capacity < 1 then invalid_arg "Slowlog.create: capacity < 1";
  let log_fd =
    Option.map
      (fun path ->
        Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644)
      log
  in
  {
    capacity;
    entries = Array.init capacity (fun _ -> Atomic.make None);
    next = Atomic.make 0;
    seen = Atomic.make 0;
    fixed = threshold_ns;
    rolling = Atomic.make max_int;
    totals = Histogram.make ();
    inspect;
    log_fd;
  }

let close t =
  match t.log_fd with
  | None -> ()
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())

let threshold_ns t =
  match t.fixed with Some n -> n | None -> Atomic.get t.rolling

let captured t = Atomic.get t.next

(* --- JSON --- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let view_json (v : V.table_view) =
  Printf.sprintf
    "{\"buckets\":%d,\"cardinal\":%d,\"load_factor\":%.4f,\"max_depth\":%d,\"frozen_buckets\":%d,\"migrating\":%b,\"migration_progress\":%.4f,\"announce_pending\":%d}"
    v.V.buckets v.V.cardinal v.V.load_factor v.V.max_depth v.V.frozen_buckets
    v.V.migrating v.V.migration_progress v.V.announce_pending

let entry_json e =
  Printf.sprintf
    "{\"seq\":%d,\"ts_ns\":%d,\"op\":\"%s\",\"key\":%d,\"shard\":%d,\"total_ns\":%d,\"read_ns\":%d,\"decode_ns\":%d,\"shard_ns\":%d,\"help_ns\":%d,\"write_ns\":%d,\"threshold_ns\":%d,\"view\":%s,\"trace_tail\":%s}"
    e.seq e.ts_ns (json_escape e.op) e.key e.shard e.total_ns e.read_ns
    e.decode_ns e.shard_ns e.help_ns e.write_ns e.threshold_ns
    (match e.view with None -> "null" | Some v -> view_json v)
    (match e.trace_tail with
    | None -> "null"
    | Some s -> Printf.sprintf "\"%s\"" (json_escape s))

(* Surviving entries, oldest first. *)
let entries t =
  let total = Atomic.get t.next in
  let n = min total t.capacity in
  let first = total - n in
  List.filter_map
    (fun i -> Atomic.get t.entries.((first + i) mod t.capacity))
    (List.init n (fun i -> i))

let to_json t =
  let thr = threshold_ns t in
  Printf.sprintf
    "{\"threshold_ns\":%s,\"captured\":%d,\"capacity\":%d,\"entries\":[%s]}"
    (if thr = max_int then "null" else string_of_int thr)
    (captured t) t.capacity
    (String.concat "," (List.map entry_json (entries t)))

(* --- capture --- *)

let capture t ~op ~key ~shard ~total_ns ~read_ns ~decode_ns ~shard_ns ~help_ns
    ~write_ns ~threshold =
  Tm.emit Ev.Server_slow;
  let view = try t.inspect shard with _ -> None in
  let trace_tail =
    match Trace.active () with
    | None -> None
    | Some tr -> Some (Format.asprintf "%a" (Trace.dump_tail ~n:50) tr)
  in
  let i = Atomic.fetch_and_add t.next 1 in
  let e =
    {
      seq = i;
      ts_ns = Nbhash_util.Clock.now_ns ();
      op;
      key;
      shard;
      total_ns;
      read_ns;
      decode_ns;
      shard_ns;
      help_ns;
      write_ns;
      threshold_ns = threshold;
      view;
      trace_tail;
    }
  in
  Atomic.set t.entries.(i mod t.capacity) (Some e);
  match t.log_fd with
  | None -> ()
  | Some fd -> (
    let line = entry_json e ^ "\n" in
    try ignore (Unix.write_substring fd line 0 (String.length line))
    with Unix.Unix_error _ -> ())

let note t ~op ~key ~shard ~total_ns ~read_ns ~decode_ns ~shard_ns ~help_ns
    ~write_ns =
  Histogram.observe t.totals total_ns;
  let seen = Atomic.fetch_and_add t.seen 1 + 1 in
  (match t.fixed with
  | Some _ -> ()
  | None ->
    if seen land 1023 = 0 then begin
      let counts = Histogram.counts t.totals in
      let n = Array.fold_left ( + ) 0 counts in
      if n >= 1000 then
        Atomic.set t.rolling
          (int_of_float (Histogram.percentile_of_counts counts n 99.9))
    end);
  let threshold = threshold_ns t in
  if total_ns > threshold then
    capture t ~op ~key ~shard ~total_ns ~read_ns ~decode_ns ~shard_ns ~help_ns
      ~write_ns ~threshold
