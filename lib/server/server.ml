(* nbhash_server: the sharded KV service.

   One listening socket; [workers] domains each run a blocking
   accept/serve loop (accept(2) on a shared fd is safe on every
   platform we target), so up to [workers] connections are served
   concurrently and the rest queue in the listen backlog. Each worker
   registers one Backend handle bundle at startup — per-domain, as the
   wait-free map's announce protocol requires — and serves its
   connection request-by-request: read frame, decode, execute, reply.

   Observability: requests, connections and protocol errors feed the
   ambient telemetry probe (server_request/server_conn/server_error
   counters and the server_request_ns span histogram), and the Backend
   registered per-shard health gauges and watchdog sources at
   creation, so a Metrics_server started alongside exposes the whole
   picture with no extra wiring.

   Graceful shutdown (the DRAIN opcode, or [stop]): new connections
   stop being accepted, in-flight requests run to completion (workers
   check the stopping flag only between requests), any in-flight
   migration is driven to completion by the draining thread, and open
   connections are shut down for reading — which unblocks workers
   parked in read_frame with a clean EOF while letting their pending
   writes finish. Acknowledged writes are readable from the backend
   after [wait] returns: nothing is torn down but the sockets. *)

module Atomic = Nbhash_util.Nb_atomic
module Tm = Nbhash_telemetry
module Ev = Nbhash_telemetry.Event

type config = {
  addr : string;
  port : int;  (** 0 = pick a free port; the bound port is {!port} *)
  backend : Backend.kind;
  shards : int;
  workers : int;
  max_frame : int;
  policy : Nbhash.Policy.t option;
  slow_threshold_ns : int option;
      (** slow-request capture threshold; [None] = rolling p999
          estimate, [Some 0] captures every attributed request *)
  slow_capacity : int;  (** slow-request ring size *)
  slow_log : string option;  (** append captures as JSON lines here *)
}

let default_config =
  {
    addr = "127.0.0.1";
    port = 0;
    backend = Backend.Lockfree;
    shards = 2;
    workers = 2;
    max_frame = Protocol.default_max_frame;
    policy = None;
    slow_threshold_ns = None;
    slow_capacity = 64;
    slow_log = None;
  }

type t = {
  config : config;
  port : int;
  inet : Unix.inet_addr;  (* config.addr, resolved once at start *)
  backend : Backend.t;
  listen_fd : Unix.file_descr;
  stopping : bool Atomic.t;
  conns : Unix.file_descr list Atomic.t;
  slowlog : Slowlog.t;
  slow_route : Tm.Metrics_server.route_registration;
  profile_view : Tm.Profile.view_registration;
  mutable domains : unit Domain.t list
      [@nbhash.plain_ok
        "written once by the booting thread before any worker can observe \
         [t], then only read at drain/join time by that same thread"];
}

let port t = t.port
let backend t = t.backend
let config t = t.config
let slowlog t = t.slowlog

let conn_track t fd =
  let rec go () =
    let cur = Atomic.get t.conns in
    if not (Atomic.compare_and_set t.conns cur (fd :: cur)) then go ()
  in
  go ()

let conn_untrack t fd =
  let rec go () =
    let cur = Atomic.get t.conns in
    let next = List.filter (fun f -> f != fd) cur in
    if not (Atomic.compare_and_set t.conns cur next) then go ()
  in
  go ()

(* Flip to stopping and wake everything that blocks: the listener (so
   accepting workers exit) and every tracked connection (shutdown for
   reading unblocks a worker parked in read_frame with EOF, while a
   response still being written goes out). Idempotent. *)
let initiate_stop t =
  if Atomic.compare_and_set t.stopping false true then begin
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    (* Fallback for stacks where shutdown on a listening socket is a
       no-op (see Metrics_server.stop): connect once per worker so
       every parked accept wakes. *)
    for _ = 1 to t.config.workers do
      try
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () -> Unix.connect fd (Unix.ADDR_INET (t.inet, t.port)))
      with Unix.Unix_error _ | Sys_error _ -> ()
    done;
    List.iter
      (fun fd ->
        try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE
        with Unix.Unix_error _ -> ())
      (Atomic.get t.conns)
  end

(* STAT carries the protocol revision and, when the probe records,
   per-opcode service-time percentiles — the server half of the load
   generator's client/server p999 join. *)
let stat_body t =
  let ops =
    String.concat ","
      (List.map
         (fun op ->
           match Stages.op_summary op with
           | None -> Printf.sprintf "\"%s\":null" (Stages.op_name op)
           | Some (n, p50, p99, p999) ->
             Printf.sprintf
               "\"%s\":{\"n\":%d,\"p50_ns\":%.0f,\"p99_ns\":%.0f,\"p999_ns\":%.0f}"
               (Stages.op_name op) n p50 p99 p999)
         [ Stages.Get; Stages.Put; Stages.Del ])
  in
  Printf.sprintf
    "{\"backend\":\"%s\",\"shards\":%d,\"workers\":%d,\"cardinal\":%d,\"proto_rev\":2,\"ops\":{%s}}"
    (Backend.kind_name (Backend.kind t.backend))
    (Backend.shard_count t.backend)
    t.config.workers
    (Backend.cardinal t.backend)
    ops

(* Perform one decoded request — the shard stage, response writing
   excluded so the write stage can be timed separately. Returns the
   response and [true] to keep serving the connection. DRAIN finishes
   the shards' migrations with the worker's own handle bundle before
   acking, then brings the whole server down. *)
let perform t h (req : Protocol.request) : Protocol.response * bool =
  match req with
  | Get k ->
    ((match Backend.get h k with Some v -> Value v | None -> Not_found), true)
  | Put (k, v) ->
    Backend.put h k v;
    (Ok, true)
  | Del k -> ((if Backend.del h k then Ok else Not_found), true)
  | Ping -> (Ok, true)
  | Hello -> (Value Protocol.hello_ack, true)
  | Stat -> (Value (stat_body t), true)
  | Force_resize shard ->
    if shard < 0 || shard >= Backend.shard_count t.backend then
      ( Err
          (Printf.sprintf "shard %d out of range [0, %d)" shard
             (Backend.shard_count t.backend)),
        true )
    else begin
      Backend.force_resize h ~shard ~grow:true;
      (Ok, true)
    end
  | Drain ->
    Backend.drain h;
    initiate_stop t;
    (Ok, false)

(* The shard a keyed request is routed to, for the slow-request
   capture's table_view attachment; -1 when no shard owns it. *)
let shard_of_request t (req : Protocol.request) =
  match req with
  | Get k | Put (k, _) | Del k -> Backend.shard_of_key t.backend k
  | Force_resize shard -> shard
  | Ping | Drain | Stat | Hello -> -1

let key_of_request (req : Protocol.request) =
  match req with
  | Get k | Put (k, _) | Del k -> k
  | Ping | Drain | Stat | Hello | Force_resize _ -> -1

let write_reply fd rev ~id resp =
  match (rev : Protocol.rev) with
  | V1 -> Protocol.write_response fd resp
  | V2 -> Protocol.write_response_v2 fd ~id resp

let serve_connection t h fd =
  Tm.Global.emit Ev.Server_conn;
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  let ctx = Stages.make () in
  let rev = ref Protocol.V1 in
  let continue = ref true in
  while !continue do
    Stages.frame_start ctx;
    let frame, t_first =
      Protocol.read_frame_timed ~max_frame:t.config.max_frame
        ~timed:(Stages.enabled ctx) fd
    in
    match frame with
    | Ok None ->
      Stages.frame_abandoned ctx;
      continue := false
    | Error msg ->
      (* Framing is lost (truncated or oversized): answer with a
         protocol error, then drop the connection — there is no way
         back in sync. *)
      Stages.frame_abandoned ctx;
      Tm.Global.emit Ev.Server_error;
      (try write_reply fd !rev ~id:0 (Err msg) with Unix.Unix_error _ -> ());
      continue := false
    | Ok (Some payload) -> (
      Stages.read_done ctx ~t_first;
      let id, decoded =
        match !rev with
        | Protocol.V1 -> (0, Protocol.request_of_payload payload)
        | Protocol.V2 ->
          (Protocol.v2_frame_id payload, Protocol.request_of_payload_v2 payload)
      in
      Stages.decode_done ctx;
      (match decoded with
      | Error msg ->
        (* The frame was well-delimited, only its payload is bad: the
           connection stays usable. *)
        Tm.Global.emit Ev.Server_error;
        write_reply fd !rev ~id (Err msg);
        Stages.abandon_request ctx
      | Ok req ->
        Tm.Global.emit Ev.Server_request;
        let op = Stages.opclass_of_request req in
        Stages.shard_start ctx;
        let resp, keep = perform t h req in
        Stages.shard_done ctx;
        write_reply fd !rev ~id resp;
        Stages.finish ctx ~op;
        (* HELLO's ack goes out in the revision the client sent it
           under; the switch takes effect from the next frame. *)
        (match req with Protocol.Hello -> rev := Protocol.V2 | _ -> ());
        if Stages.enabled ctx then
          Slowlog.note t.slowlog ~op:(Stages.op_name op)
            ~key:(key_of_request req) ~shard:(shard_of_request t req)
            ~total_ns:(Stages.total_ns ctx) ~read_ns:(Stages.read_ns ctx)
            ~decode_ns:(Stages.decode_ns ctx) ~shard_ns:(Stages.shard_ns ctx)
            ~help_ns:(Stages.help_ns ctx) ~write_ns:(Stages.write_ns ctx);
        continue := keep);
      if Atomic.get t.stopping then continue := false)
  done

let worker_loop t =
  let h = Backend.register t.backend in
  let continue = ref true in
  while !continue do
    match Unix.accept t.listen_fd with
    | fd, _ ->
      if Atomic.get t.stopping then begin
        (try Unix.close fd with Unix.Unix_error _ -> ());
        continue := false
      end
      else begin
        conn_track t fd;
        (* initiate_stop may have snapshotted [conns] between the
           check above and conn_track, in which case it never saw this
           fd: re-check and shut the read side down ourselves
           (mirroring initiate_stop) so the worker cannot park in
           read_frame past the stop. Any response already in flight
           still goes out; the reader just sees EOF next. *)
        if Atomic.get t.stopping then
          (try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE
           with Unix.Unix_error _ -> ());
        (try serve_connection t h fd
         with Unix.Unix_error _ | Sys_error _ -> ());
        conn_untrack t fd;
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if Atomic.get t.stopping then continue := false
      end
    | exception Unix.Unix_error _ ->
      (* initiate_stop shut the listener down (or accept failed hard);
         either way this worker is done. *)
      continue := false
  done;
  Backend.unregister h

let start ?(config = default_config) () =
  if config.shards < 1 then invalid_arg "Server.start: shards < 1";
  if config.workers < 1 then invalid_arg "Server.start: workers < 1";
  (* A client that disconnects while a response is being written must
     surface as EPIPE in the per-connection handlers, not as a
     process-killing SIGPIPE. *)
  Nbhash_telemetry.Metrics_server.ignore_sigpipe ();
  let backend =
    Backend.create ?policy:config.policy ~kind:config.backend
      ~shards:config.shards
      ~max_threads:(config.workers + 8)
      ()
  in
  let listen_fd, port =
    Nbhash_telemetry.Metrics_server.listen_tcp ~backlog:64 ~addr:config.addr
      ~port:config.port ()
  in
  (* listen_tcp already resolved (or rejected) the same addr, so this
     cannot fail here; storing the inet keeps initiate_stop's wake
     fallback from re-resolving — Failure-free — on the stop path. *)
  let inet = Nbhash_telemetry.Metrics_server.resolve_inet config.addr in
  let slowlog =
    Slowlog.create ~capacity:config.slow_capacity
      ?threshold_ns:config.slow_threshold_ns ?log:config.slow_log
      ~inspect:(fun shard ->
        if shard >= 0 && shard < Backend.shard_count backend then
          Some (Backend.inspect_shard backend shard)
        else None)
      ()
  in
  (* Published through the metrics endpoint like the gauges: any
     Metrics_server running in this process serves /slow.json. *)
  let slow_route =
    Tm.Metrics_server.register_route ~path:"/slow.json" (fun () ->
        (200, "application/json", Slowlog.to_json slowlog))
  in
  (* The per-shard table views published under /profile.json: the
     contention report names the hot site, these say which shard's
     table (size, skew, migration state) it was hot in. *)
  let profile_view =
    Tm.Profile.register_view ~name:"kv_shards" (fun () ->
        let shard i =
          let v = Backend.inspect_shard backend i in
          Printf.sprintf
            "{\"shard\":%d,\"buckets\":%d,\"cardinal\":%d,\"load_factor\":%s,\"max_depth\":%d,\"frozen_buckets\":%d,\"migrating\":%b}"
            i v.Nbhash.Hashset_intf.buckets v.Nbhash.Hashset_intf.cardinal
            (Nbhash_telemetry.Snapshot.json_float
               v.Nbhash.Hashset_intf.load_factor)
            v.Nbhash.Hashset_intf.max_depth
            v.Nbhash.Hashset_intf.frozen_buckets
            v.Nbhash.Hashset_intf.migrating
        in
        "["
        ^ String.concat ","
            (List.init (Backend.shard_count backend) shard)
        ^ "]")
  in
  let t =
    {
      config;
      port;
      inet;
      backend;
      listen_fd;
      stopping = Atomic.make false;
      conns = Atomic.make [];
      slowlog;
      slow_route;
      profile_view;
      domains = [];
    }
  in
  t.domains <-
    List.init config.workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

(* Block until every worker has exited (i.e. until a DRAIN request or
   [stop] brought the server down), then release the listener and the
   backend's gauge/watchdog registrations. The backend's tables stay
   readable — that is what "restart-less drain loses no acknowledged
   write" means. *)
let wait t =
  List.iter Domain.join t.domains;
  t.domains <- [];
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  Tm.Metrics_server.unregister_route t.slow_route;
  Tm.Profile.unregister_view t.profile_view;
  Slowlog.close t.slowlog;
  Backend.close t.backend

(* Programmatic shutdown with the same drain guarantee as the DRAIN
   opcode: finish migrations first, then stop and wait. *)
let stop t =
  let h = Backend.register t.backend in
  Backend.drain h;
  Backend.unregister h;
  initiate_stop t;
  wait t
