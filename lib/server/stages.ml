(* Per-request stage attribution for the KV server: one reusable
   per-connection context of plain-int timestamps, marked at the stage
   boundaries of [Server.serve_connection], turned into the staged
   spans (server_read_ns / decode / shard / help / write) on [finish].

   Adjacent stages share boundary timestamps, so
     read + decode + shard + write = total
   holds *exactly* per request, not just within tolerance; help is an
   attribution inside the shard stage (migration sweep chunks claimed
   on the serving domain, via [Nbhash_telemetry.Helptime]).

   Aggregation goes three ways per request:
   - the ambient probe's span histograms (the unlabeled families);
   - process-global labeled histograms keyed by opcode
     ([nbhash_server_stage_ns{op,stage}], [nbhash_server_op_ns{op}]),
     which feed /metrics, /snapshot.json's families block, STAT's
     per-op percentiles, and `nbhash_cli top`;
   - the flight recorder (B/E slices per stage, so a Perfetto track
     shows each request as read|decode|shard|write; the read slice
     additionally covers the idle wait for the first byte, which is
     the point — parked time is visible on the track).

   Disabled path: [enabled] is latched from the ambient probe once per
   request at [frame_start]; each subsequent mark is one branch on the
   cached flag plus the trace emitter's one load-and-branch, no clock
   reads, no allocation (Gc-asserted in test_server). *)

module Tm = Nbhash_telemetry.Global
module Ev = Nbhash_telemetry.Event
module Trace = Nbhash_telemetry.Trace
module Labeled = Nbhash_telemetry.Labeled
module Histogram = Nbhash_telemetry.Histogram
module Helptime = Nbhash_telemetry.Helptime
module Clock = Nbhash_util.Clock

type opclass = Get | Put | Del | Other

let op_index = function Get -> 0 | Put -> 1 | Del -> 2 | Other -> 3
let op_name = function Get -> "get" | Put -> "put" | Del -> "del" | Other -> "other"
let all_ops = [ Get; Put; Del; Other ]

let opclass_of_request (r : Protocol.request) =
  match r with
  | Protocol.Get _ -> Get
  | Protocol.Put _ -> Put
  | Protocol.Del _ -> Del
  | Protocol.Ping | Protocol.Drain | Protocol.Stat | Protocol.Hello
  | Protocol.Force_resize _ ->
    Other

type stage = Read | Decode | Shard | Help | Write

let stage_name = function
  | Read -> "read"
  | Decode -> "decode"
  | Shard -> "shard"
  | Help -> "help"
  | Write -> "write"

let all_stages = [ Read; Decode; Shard; Help; Write ]

(* The labeled families, registered once at module initialisation so
   every scrape sees a stable family set. stage_hists.(op).(stage). *)
let stage_hists =
  Array.of_list
    (List.map
       (fun op ->
         Array.of_list
           (List.map
              (fun st ->
                Labeled.histogram ~family:"nbhash_server_stage_ns"
                  ~help:"KV server per-request stage durations by opcode, nanoseconds"
                  ~labels:[ ("op", op_name op); ("stage", stage_name st) ]
                  ())
              all_stages))
       all_ops)

let op_hists =
  Array.of_list
    (List.map
       (fun op ->
         Labeled.histogram ~family:"nbhash_server_op_ns"
           ~help:"KV server request service time by opcode, nanoseconds"
           ~labels:[ ("op", op_name op) ]
           ())
       all_ops)

type t = {
  mutable enabled : bool;
  mutable t_first : int;  (* first prefix byte arrived *)
  mutable t_read : int;  (* frame fully buffered *)
  mutable t_decode : int;  (* request decoded *)
  mutable t_shard : int;  (* backend operation returned *)
  mutable t_write : int;  (* reply flushed *)
  mutable help0 : int;  (* Helptime.read at shard start *)
  mutable help_ns : int;
}
[@@nbhash.plain_ok
  "one context per connection, touched only by the worker domain serving \
   that connection; never shared"]

let make () =
  {
    enabled = false;
    t_first = 0;
    t_read = 0;
    t_decode = 0;
    t_shard = 0;
    t_write = 0;
    help0 = 0;
    help_ns = 0;
  }

let enabled c = c.enabled

(* About to block for the next frame. The read slice opens here so the
   trace shows the park; the histogram read stage starts at t_first. *)
let frame_start c =
  c.enabled <- Tm.is_recording ();
  Trace.span_begin Ev.Server_read_span

(* EOF or framing error: close the read slice, record nothing. *)
let frame_abandoned _c = Trace.span_end Ev.Server_read_span

let read_done c ~t_first =
  Trace.span_end Ev.Server_read_span;
  Trace.span_begin Ev.Server_span;
  Trace.span_begin Ev.Server_decode_span;
  if c.enabled then begin
    c.t_first <- t_first;
    c.t_read <- Clock.now_ns ()
  end

let decode_done c =
  Trace.span_end Ev.Server_decode_span;
  if c.enabled then c.t_decode <- Clock.now_ns ()

(* Decode error: the ERR reply was written outside the staged path;
   close the request slice and record nothing. *)
let abandon_request _c = Trace.span_end Ev.Server_span

let shard_start c =
  Trace.span_begin Ev.Server_shard_span;
  if c.enabled then c.help0 <- Helptime.read ()

let shard_done c =
  Trace.span_end Ev.Server_shard_span;
  Trace.span_begin Ev.Server_write_span;
  if c.enabled then begin
    c.t_shard <- Clock.now_ns ();
    c.help_ns <- Helptime.read () - c.help0
  end

let finish c ~op =
  Trace.span_end Ev.Server_write_span;
  Trace.span_end Ev.Server_span;
  if c.enabled then begin
    c.t_write <- Clock.now_ns ();
    let read_ns = c.t_read - c.t_first in
    let decode_ns = c.t_decode - c.t_read in
    let shard_ns = c.t_shard - c.t_decode in
    let write_ns = c.t_write - c.t_shard in
    let total_ns = c.t_write - c.t_first in
    Tm.observe Ev.Server_read_span read_ns;
    Tm.observe Ev.Server_decode_span decode_ns;
    Tm.observe Ev.Server_shard_span shard_ns;
    Tm.observe Ev.Server_help_span c.help_ns;
    Tm.observe Ev.Server_write_span write_ns;
    Tm.observe Ev.Server_span total_ns;
    let oi = op_index op in
    let sh = stage_hists.(oi) in
    Histogram.observe sh.(0) read_ns;
    Histogram.observe sh.(1) decode_ns;
    Histogram.observe sh.(2) shard_ns;
    Histogram.observe sh.(3) c.help_ns;
    Histogram.observe sh.(4) write_ns;
    Histogram.observe op_hists.(oi) total_ns
  end

(* Duration accessors, valid after [finish] until the next
   [frame_start]; plain int reads, for the slow-request capture. *)
let total_ns c = c.t_write - c.t_first
let read_ns c = c.t_read - c.t_first
let decode_ns c = c.t_decode - c.t_read
let shard_ns c = c.t_shard - c.t_decode
let write_ns c = c.t_write - c.t_shard
let help_ns c = c.help_ns

(* Per-opcode service-time summary from the labeled histograms, for
   STAT's "ops" block: [(n, p50_ns, p99_ns, p999_ns)]. *)
let op_summary op =
  let h = op_hists.(op_index op) in
  let counts = Histogram.counts h in
  let n = Array.fold_left ( + ) 0 counts in
  if n = 0 then None
  else
    Some
      ( n,
        Histogram.percentile_of_counts counts n 50.,
        Histogram.percentile_of_counts counts n 99.,
        Histogram.percentile_of_counts counts n 99.9 )
