type request =
  | Get of int
  | Put of int * string
  | Del of int
  | Ping
  | Drain
  | Stat
  | Hello
  | Force_resize of int

type response = Value of string | Ok | Not_found | Err of string
type rev = V1 | V2

let max_key = 1 lsl 59
let default_max_frame = 1 lsl 20

(* --- opcodes --- *)

let op_get = '\x01'
let op_put = '\x02'
let op_del = '\x03'
let op_ping = '\x04'
let op_drain = '\x05'
let op_stat = '\x06'
let op_force_resize = '\x07'
let op_value = '\x80'
let op_ok = '\x81'
let op_not_found = '\x82'
let op_err = '\xee'

(* HELLO is a PING with a one-byte body naming the requested protocol
   revision — deliberately a *payload-level* error on a v1 server
   ("PING expects a 1-byte payload"), which answers ERR and keeps the
   connection open, so a v2 client falls back to v1 framing on the
   same connection. A v2 server answers [Value hello_ack] and switches
   that connection to v2 frames for everything that follows. *)
let hello_rev = '\x02'
let hello_ack = "\x02"

(* --- payload codec --- *)

let keyed_payload op key body =
  let b = Bytes.create (9 + String.length body) in
  Bytes.set b 0 op;
  Bytes.set_int64_be b 1 (Int64.of_int key);
  Bytes.blit_string body 0 b 9 (String.length body);
  Bytes.unsafe_to_string b

let bodied_payload op body =
  let b = Bytes.create (1 + String.length body) in
  Bytes.set b 0 op;
  Bytes.blit_string body 0 b 1 (String.length body);
  Bytes.unsafe_to_string b

let request_to_payload = function
  | Get k -> keyed_payload op_get k ""
  | Put (k, v) -> keyed_payload op_put k v
  | Del k -> keyed_payload op_del k ""
  | Ping -> String.make 1 op_ping
  | Drain -> String.make 1 op_drain
  | Stat -> String.make 1 op_stat
  | Hello ->
    let b = Bytes.create 2 in
    Bytes.set b 0 op_ping;
    Bytes.set b 1 hello_rev;
    Bytes.unsafe_to_string b
  | Force_resize shard -> keyed_payload op_force_resize shard ""

let response_to_payload = function
  | Value v -> bodied_payload op_value v
  | Ok -> String.make 1 op_ok
  | Not_found -> String.make 1 op_not_found
  | Err msg -> bodied_payload op_err msg

let key_of payload =
  let k = Int64.to_int (String.get_int64_be payload 1) in
  if k < 0 || k >= max_key then
    Result.Error (Printf.sprintf "key %d out of range [0, 2^59)" k)
  else Result.Ok k

let ( let* ) = Result.bind

let request_of_payload payload =
  let n = String.length payload in
  if n = 0 then Result.Error "empty frame"
  else
    let body_exn want op =
      if n = want then Result.Ok ()
      else
        Result.Error
          (Printf.sprintf "%s expects a %d-byte payload, got %d" op want n)
    in
    match payload.[0] with
    | c when c = op_get ->
      let* () = body_exn 9 "GET" in
      let* k = key_of payload in
      Result.Ok (Get k)
    | c when c = op_del ->
      let* () = body_exn 9 "DEL" in
      let* k = key_of payload in
      Result.Ok (Del k)
    | c when c = op_put ->
      if n < 9 then
        Result.Error (Printf.sprintf "PUT expects at least 9 bytes, got %d" n)
      else
        let* k = key_of payload in
        Result.Ok (Put (k, String.sub payload 9 (n - 9)))
    | c when c = op_ping ->
      if n = 1 then Result.Ok Ping
      else if n = 2 && payload.[1] = hello_rev then Result.Ok Hello
      else
        Result.Error (Printf.sprintf "PING expects a 1-byte payload, got %d" n)
    | c when c = op_force_resize ->
      let* () = body_exn 9 "FORCE_RESIZE" in
      let* shard = key_of payload in
      Result.Ok (Force_resize shard)
    | c when c = op_drain ->
      let* () = body_exn 1 "DRAIN" in
      Result.Ok Drain
    | c when c = op_stat ->
      let* () = body_exn 1 "STAT" in
      Result.Ok Stat
    | c -> Result.Error (Printf.sprintf "bad opcode 0x%02x" (Char.code c))

let response_of_payload payload =
  let n = String.length payload in
  if n = 0 then Result.Error "empty frame"
  else
    match payload.[0] with
    | c when c = op_value -> Result.Ok (Value (String.sub payload 1 (n - 1)))
    | c when c = op_ok ->
      if n = 1 then Result.Ok Ok else Result.Error "OK carries no body"
    | c when c = op_not_found ->
      if n = 1 then Result.Ok Not_found
      else Result.Error "NOT_FOUND carries no body"
    | c when c = op_err -> Result.Ok (Err (String.sub payload 1 (n - 1)))
    | c ->
      Result.Error (Printf.sprintf "bad response opcode 0x%02x" (Char.code c))

(* --- framed IO --- *)

(* A signal (drain wake-ups, profilers, job control) delivered during
   a blocking read/write raises EINTR; the operation is retryable, so
   retry instead of tearing the connection down. *)
let rec intr_write fd b off len =
  try Unix.write fd b off len
  with Unix.Unix_error (Unix.EINTR, _, _) -> intr_write fd b off len

let rec intr_read fd b off len =
  try Unix.read fd b off len
  with Unix.Unix_error (Unix.EINTR, _, _) -> intr_read fd b off len

let write_all fd b =
  let n = Bytes.length b in
  let sent = ref 0 in
  while !sent < n do
    sent := !sent + intr_write fd b !sent (n - !sent)
  done

let write_frame fd payload =
  let n = String.length payload in
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b 4 n;
  write_all fd b

let write_request fd r = write_frame fd (request_to_payload r)
let write_response fd r = write_frame fd (response_to_payload r)

(* Read exactly [want] bytes into [b]; the number actually read is
   returned (short only at EOF). *)
let read_exact fd b want =
  let got = ref 0 in
  let eof = ref false in
  while (not !eof) && !got < want do
    let n = intr_read fd b !got (want - !got) in
    if n = 0 then eof := true else got := !got + n
  done;
  !got

let read_frame ?(max_frame = default_max_frame) fd =
  let prefix = Bytes.create 4 in
  match read_exact fd prefix 4 with
  | 0 -> Result.Ok None
  | p when p < 4 ->
    Result.Error (Printf.sprintf "truncated length prefix (%d of 4 bytes)" p)
  | _ -> (
    let len = Int32.to_int (Bytes.get_int32_be prefix 0) in
    if len <= 0 then
      Result.Error (Printf.sprintf "bad declared length %d" len)
    else if len > max_frame then
      Result.Error
        (Printf.sprintf "oversized declared length %d (max %d)" len max_frame)
    else
      let body = Bytes.create len in
      match read_exact fd body len with
      | got when got < len ->
        Result.Error
          (Printf.sprintf "truncated frame (%d of %d bytes)" got len)
      | _ -> Result.Ok (Some (Bytes.unsafe_to_string body)))

let read_response ?max_frame fd =
  match read_frame ?max_frame fd with
  | Result.Error _ as e -> e
  | Result.Ok None -> Result.Error "connection closed before the response"
  | Result.Ok (Some payload) -> response_of_payload payload

(* --- timed framed read (stage attribution) --- *)

(* Like [read_frame], but also returns the monotonic timestamp taken
   right after the *first* byte of the length prefix arrived — the
   boundary between "parked waiting for a request" and "reading one".
   The wait for byte 0 is deliberately untimed (a connection can idle
   for seconds between requests); everything after it is the read
   stage. When [timed] is false this is exactly [read_frame] plus a
   constant 0, with the prefix read as a single syscall. *)
let read_frame_timed ?(max_frame = default_max_frame) ~timed fd =
  if not timed then (read_frame ~max_frame fd, 0)
  else
    let prefix = Bytes.create 4 in
    let read_exact_from b off want =
      let got = ref 0 in
      let eof = ref false in
      while (not !eof) && !got < want do
        let n = intr_read fd b (off + !got) (want - !got) in
        if n = 0 then eof := true else got := !got + n
      done;
      !got
    in
    match read_exact_from prefix 0 1 with
    | 0 -> (Result.Ok None, 0)
    | _ -> (
      let t_first = Nbhash_util.Clock.now_ns () in
      match 1 + read_exact_from prefix 1 3 with
      | p when p < 4 ->
        ( Result.Error
            (Printf.sprintf "truncated length prefix (%d of 4 bytes)" p),
          t_first )
      | _ ->
        let len = Int32.to_int (Bytes.get_int32_be prefix 0) in
        if len <= 0 then
          (Result.Error (Printf.sprintf "bad declared length %d" len), t_first)
        else if len > max_frame then
          ( Result.Error
              (Printf.sprintf "oversized declared length %d (max %d)" len
                 max_frame),
            t_first )
        else
          let body = Bytes.create len in
          (match read_exact fd body len with
          | got when got < len ->
            Result.Error
              (Printf.sprintf "truncated frame (%d of %d bytes)" got len)
          | _ -> Result.Ok (Some (Bytes.unsafe_to_string body)))
          |> fun r -> (r, t_first))

(* --- protocol revision 2 --- *)

(* A v2 frame is the v1 frame with a 4-byte big-endian request id
   spliced in between the opcode byte and the rest of the payload,
   echoed verbatim in the response frame — the client-side join key
   that lets the load generator match each reply to the exact send it
   timed. Negotiated per connection via HELLO (see [hello_rev]);
   everything below splices into / strips out of the v1 codec so the
   two revisions cannot drift apart. *)

let v2_splice payload ~id =
  let n = String.length payload in
  let b = Bytes.create (n + 4) in
  Bytes.set b 0 payload.[0];
  Bytes.set_int32_be b 1 (Int32.of_int (id land 0xFFFFFFFF));
  Bytes.blit_string payload 1 b 5 (n - 1);
  Bytes.unsafe_to_string b

let v2_strip payload =
  let n = String.length payload in
  let b = Bytes.create (n - 4) in
  Bytes.set b 0 payload.[0];
  Bytes.blit_string payload 5 b 1 (n - 5);
  Bytes.unsafe_to_string b

(* The id of a v2 frame, without decoding the rest; 0 when the frame
   is too short to carry one (the decode will fail anyway, but error
   replies still echo something well-defined). *)
let v2_frame_id payload =
  if String.length payload < 5 then 0
  else Int32.to_int (String.get_int32_be payload 1) land 0xFFFFFFFF

let write_request_v2 fd ~id r =
  write_frame fd (v2_splice (request_to_payload r) ~id)

let write_response_v2 fd ~id r =
  write_frame fd (v2_splice (response_to_payload r) ~id)

let request_of_payload_v2 payload =
  if String.length payload < 5 then
    Result.Error
      (Printf.sprintf "v2 frame too short for a request id (%d bytes)"
         (String.length payload))
  else request_of_payload (v2_strip payload)

let read_response_v2 ?max_frame fd =
  match read_frame ?max_frame fd with
  | Result.Error msg -> Result.Error msg
  | Result.Ok None -> Result.Error "connection closed before the response"
  | Result.Ok (Some payload) ->
    if String.length payload < 5 then
      Result.Error
        (Printf.sprintf "v2 frame too short for a request id (%d bytes)"
           (String.length payload))
    else (
      match response_of_payload (v2_strip payload) with
      | Result.Ok r -> Result.Ok (v2_frame_id payload, r)
      | Result.Error msg -> Result.Error msg)
