(* Schedule-exploring model checker for the nonblocking libraries.

   A scenario is a handful of scripted "threads" — plain closures
   running the production table code. With [Nb_atomic.tracing] on,
   every atomic operation in the shimmed libraries yields the
   [Nb_atomic.Step] effect; the scheduler below catches it, suspends
   the thread, and decides who runs next. Execution is single-domain
   and deterministic given the sequence of choices, so a schedule is
   replayable: the exact interleaving that broke an invariant can be
   printed, re-run, and stepped through.

   Exploration is DPOR-lite in the CHESS tradition: a depth-first
   enumeration of schedules bounded by the number of *preemptions*
   (switching away from a thread that could have continued). Most
   concurrency bugs in this codebase's algorithms — a missed frozen
   re-check, a lost helping obligation — manifest within one or two
   preemptions, so a small bound explores a tractable schedule space
   while still covering every adversarial placement of those few
   context switches. Non-preemptive switches (the running thread
   finished) are free, so every scenario runs to completion. *)

module A = Nbhash_util.Nb_atomic

(* A scenario builds fresh state and returns its scripted threads plus
   a verdict function run after every thread has finished. Setup and
   verdict run untraced; only the threads' atomic operations are
   scheduling points. Scenarios must be deterministic: no clocks, no
   ambient randomness — the explorer replays them thousands of
   times. *)
type scenario = unit -> (unit -> unit) array * (unit -> (unit, string) result)

type exec = {
  choices : int list;  (* chosen thread at each decision point *)
  enabled : int list list;  (* runnable threads at each decision point *)
  steps : (int * string) list;  (* thread, operation it ran *)
  result : (unit, string) result;
}

exception Diverged

(* One deterministic execution: follow [forced] while it lasts, then
   default to running the current thread until it finishes (zero added
   preemptions), falling over to the lowest-numbered runnable
   thread. *)
let run_once (scenario : scenario) ~(forced : int list) : exec =
  let threads, verify = scenario () in
  let n = Array.length threads in
  if n = 0 then invalid_arg "Explore.run_once: scenario with no threads";
  let conts : (unit, unit) Effect.Deep.continuation option array =
    Array.make n None
  in
  let pending : A.label option array = Array.make n None in
  let started = Array.make n false in
  let finished = Array.make n false in
  let handler i : (unit, unit) Effect.Deep.handler =
    {
      retc = (fun () -> finished.(i) <- true);
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | A.Step lbl ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                conts.(i) <- Some k;
                pending.(i) <- Some lbl)
          | _ -> None);
    }
  in
  let run_segment i =
    if not started.(i) then begin
      started.(i) <- true;
      Effect.Deep.match_with threads.(i) () (handler i)
    end
    else
      match conts.(i) with
      | Some k ->
        conts.(i) <- None;
        Effect.Deep.continue k ()
      | None -> assert false
  in
  let decisions = ref [] and steps = ref [] in
  let failure = ref None in
  let forced = ref forced in
  let last = ref (-1) in
  A.tracing := true;
  Fun.protect
    ~finally:(fun () -> A.tracing := false)
    (fun () ->
      try
        let continue_loop = ref true in
        while !continue_loop do
          let enabled =
            List.filter (fun i -> not finished.(i)) (List.init n Fun.id)
          in
          if enabled = [] then continue_loop := false
          else begin
            let c =
              match !forced with
              | f :: rest ->
                forced := rest;
                if not (List.mem f enabled) then raise Diverged;
                f
              | [] ->
                if !last >= 0 && List.mem !last enabled then !last
                else List.hd enabled
            in
            decisions := (enabled, c) :: !decisions;
            steps :=
              ( c,
                match pending.(c) with
                | None -> "start"
                | Some l -> A.label_to_string l )
              :: !steps;
            last := c;
            run_segment c
          end
        done
      with
      | Diverged ->
        failure :=
          Some
            "schedule diverged during replay: the scenario is not \
             deterministic (clock, RNG, or enabled resize policy?)"
      | e ->
        failure :=
          Some (Printf.sprintf "uncaught exception: %s" (Printexc.to_string e)));
  let result =
    match !failure with Some msg -> Error msg | None -> verify ()
  in
  {
    choices = List.rev_map snd !decisions;
    enabled = List.rev_map fst !decisions;
    steps = List.rev !steps;
    result;
  }

type violation = {
  schedule : int list;
  trace : (int * string) list;
  message : string;
  executions : int;
}

type outcome =
  | Pass of { executions : int; complete : bool }
      (** [complete] is false when the execution budget truncated the
          search: passing then means "no violation found", not "none
          exists within the preemption bound". *)
  | Fail of violation

(* Preemptions in choices.(0..d-1) followed by [alt] at decision [d]:
   switches away from a thread that was still runnable. *)
let preemptions choices enabled d alt =
  let count = ref 0 in
  for t = 1 to d do
    let prev = choices.(t - 1) in
    let cur = if t = d then alt else choices.(t) in
    if cur <> prev && List.mem prev enabled.(t) then incr count
  done;
  !count

exception Found of violation

(* Systematic DFS over schedules: run the current forced prefix (with
   the preemption-free default beyond it), then branch on every
   alternative choice at every decision point at or after the prefix
   end that stays within the preemption bound. Deviation points only
   move forward, so each schedule is visited exactly once. *)
let explore ?(max_preemptions = 2) ?(max_execs = 20_000) scenario =
  let execs = ref 0 and truncated = ref false in
  try
    let rec dfs forced nforced =
      if !execs >= max_execs then truncated := true
      else begin
        incr execs;
        let e = run_once scenario ~forced in
        (match e.result with
        | Error message ->
          raise
            (Found
               {
                 schedule = e.choices;
                 trace = e.steps;
                 message;
                 executions = !execs;
               })
        | Ok () -> ());
        let choices = Array.of_list e.choices in
        let enabled = Array.of_list e.enabled in
        for d = nforced to Array.length choices - 1 do
          List.iter
            (fun a ->
              if
                a <> choices.(d)
                && preemptions choices enabled d a <= max_preemptions
              then
                dfs
                  (Array.to_list (Array.sub choices 0 d) @ [ a ])
                  (d + 1))
            enabled.(d)
        done
      end
    in
    dfs [] 0;
    Pass { executions = !execs; complete = not !truncated }
  with Found v -> Fail v

(* Re-run one exact schedule; the trace and verdict come back for
   inspection. The schedule may be a prefix — the default policy
   finishes the run. *)
let replay scenario schedule = run_once scenario ~forced:schedule

let pp_schedule ppf schedule =
  Format.fprintf ppf "[%s]"
    (String.concat ";" (List.map string_of_int schedule))

let pp_violation ppf v =
  Format.fprintf ppf "violation after %d executions: %s@." v.executions
    v.message;
  Format.fprintf ppf "schedule (thread per step): %a@." pp_schedule v.schedule;
  Format.fprintf ppf "replay with: Explore.replay scenario %a@." pp_schedule
    v.schedule;
  List.iteri
    (fun i (t, op) -> Format.fprintf ppf "  step %2d: T%d %s@." i t op)
    v.trace
