(** The single time source of the repository.

    Every nanosecond timestamp — probe duration spans, flight-recorder
    trace records, and the bench harness's per-operation latencies —
    comes from {!now_ns}, so timestamps from different subsystems are
    directly comparable (same origin, same units). Before this module
    existed, probe spans used one wall clock and the bench another
    (bechamel's monotonic clock, with its own epoch), which made it
    impossible to line a span up against a latency sample. *)

val now_ns : unit -> int
(** Current time in integer nanoseconds on the system's monotonic
    clock ([clock_gettime(CLOCK_MONOTONIC)] via a noalloc C stub).

    Truly monotonic — immune to NTP steps and wall-clock changes — so
    [now_ns () - t0] is always a non-negative elapsed time, and the
    source's full nanosecond resolution survives (no float round-trip,
    unlike the [Unix.gettimeofday]-based predecessor whose ~256 ns
    ulp quantisation at epoch magnitude made sub-µs latencies
    unmeasurable). The origin is unspecified (boot time on Linux):
    values are meaningful only relative to other [now_ns] readings in
    the same process, never as wall-clock dates. Fits an OCaml 63-bit
    int for ~146 years of uptime, and allocates nothing, so it is
    safe on the trace-ring hot path. *)
