(** The single time source of the repository.

    Every nanosecond timestamp — probe duration spans, flight-recorder
    trace records, and the bench harness's per-operation latencies —
    comes from {!now_ns}, so timestamps from different subsystems are
    directly comparable (same origin, same units). Before this module
    existed, probe spans used one wall clock and the bench another
    (bechamel's monotonic clock, with its own epoch), which made it
    impossible to line a span up against a latency sample. *)

val now_ns : unit -> int
(** Current time in integer nanoseconds since the Unix epoch.

    Monotonic-enough: backed by [Unix.gettimeofday], so an NTP step
    can move it; the consumers (log2 histograms, trace merging by
    sort, coarse stall ages) all tolerate rare small regressions.
    Fits an OCaml 63-bit int until the year 2262. *)
