type t = { mutable state : int }

(* splitmix64-style constants truncated to OCaml's int width;
   arithmetic silently wraps, which keeps the generator deterministic
   across runs. *)
let gamma = 0x1E3779B97F4A7C15

let mix z =
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB in
  z lxor (z lsr 31)

let create seed = { state = mix (seed + gamma) }

let next t =
  t.state <- t.state + gamma;
  mix t.state land max_int

let split t = create (next t)

let below t n =
  assert (n > 0);
  (* Rejection sampling over the smallest covering power of two keeps
     the draw unbiased even for n close to a power of two. *)
  if n land (n - 1) = 0 then next t land (n - 1)
  else
    let mask = Bits.next_pow2 n - 1 in
    let rec draw () =
      let v = next t land mask in
      if v < n then v else draw ()
    in
    draw ()

let float t = Float.of_int (next t) /. Float.of_int max_int
let bool t = next t land 1 = 1
