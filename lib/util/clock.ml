external now_ns : unit -> int = "nbhash_clock_monotonic_ns" [@@noalloc]
