let now_ns () = Int64.to_int (Int64.of_float (Unix.gettimeofday () *. 1e9))
