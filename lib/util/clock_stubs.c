/* Monotonic integer-nanosecond clock for Nbhash_util.Clock.

   CLOCK_MONOTONIC never steps backwards (NTP slews it but cannot jump
   it), has nanosecond-granularity reads on Linux, and its values since
   boot fit comfortably in an OCaml 63-bit immediate int (about 146
   years of uptime) — so the stub returns Val_long directly and can be
   declared [@@noalloc]: no boxing, no callbacks, safe to call from the
   trace-ring hot path without allocating. */

#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value nbhash_clock_monotonic_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}
