type t = { prob : float array; alias : int array }

let size t = Array.length t.prob

(* Vose's stable construction: split indices into under- and
   over-full (relative to the uniform share), pair them off, and
   record for each cell the cutoff and the donor. *)
let make weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Alias.make: empty distribution";
  let total = Array.fold_left ( +. ) 0. weights in
  if not (total > 0.) then invalid_arg "Alias.make: weights must sum > 0";
  Array.iter
    (fun w -> if w < 0. || Float.is_nan w then invalid_arg "Alias.make: bad weight")
    weights;
  let scaled =
    Array.map (fun w -> w *. Float.of_int n /. total) weights
  in
  let prob = Array.make n 1. in
  let alias = Array.init n Fun.id in
  let small = Stack.create () and large = Stack.create () in
  Array.iteri
    (fun i p -> if p < 1. then Stack.push i small else Stack.push i large)
    scaled;
  while (not (Stack.is_empty small)) && not (Stack.is_empty large) do
    let s = Stack.pop small and l = Stack.pop large in
    prob.(s) <- scaled.(s);
    alias.(s) <- l;
    scaled.(l) <- scaled.(l) +. scaled.(s) -. 1.;
    if scaled.(l) < 1. then Stack.push l small else Stack.push l large
  done;
  (* leftovers are numerically 1.0 cells *)
  { prob; alias }

let draw t rng =
  let n = Array.length t.prob in
  let i = Xoshiro.below rng n in
  if Xoshiro.float rng < t.prob.(i) then i else t.alias.(i)

let zipf ~n ~s =
  if n < 1 then invalid_arg "Alias.zipf: n < 1";
  make (Array.init n (fun i -> 1. /. Float.pow (Float.of_int (i + 1)) s))
