type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad of int * string

type state = { s : string; mutable pos : int }

let fail st msg = raise (Bad (st.pos, msg))
let eof st = st.pos >= String.length st.s
let peek st = st.s.[st.pos]

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  if (not (eof st)) &&
     (match peek st with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  then (advance st; skip_ws st)

let expect st c =
  if eof st || peek st <> c then
    fail st (Printf.sprintf "expected %C" c)
  else advance st

let literal st word v =
  let n = String.length word in
  if st.pos + n <= String.length st.s && String.sub st.s st.pos n = word then (
    st.pos <- st.pos + n;
    v)
  else fail st (Printf.sprintf "expected %s" word)

let hex_digit st c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> fail st "bad hex digit in \\u escape"

(* UTF-8 encode one code point into [b]. *)
let encode_utf8 b cp =
  if cp < 0x80 then Buffer.add_char b (Char.chr cp)
  else if cp < 0x800 then (
    Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F))))
  else if cp < 0x10000 then (
    Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F))))
  else (
    Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F))))

let parse_u16 st =
  if st.pos + 4 > String.length st.s then fail st "truncated \\u escape";
  let d i = hex_digit st st.s.[st.pos + i] in
  let v = (d 0 lsl 12) lor (d 1 lsl 8) lor (d 2 lsl 4) lor d 3 in
  st.pos <- st.pos + 4;
  v

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec loop () =
    if eof st then fail st "unterminated string";
    match peek st with
    | '"' -> advance st; Buffer.contents b
    | '\\' ->
      advance st;
      if eof st then fail st "unterminated escape";
      let c = peek st in
      advance st;
      (match c with
      | '"' -> Buffer.add_char b '"'
      | '\\' -> Buffer.add_char b '\\'
      | '/' -> Buffer.add_char b '/'
      | 'b' -> Buffer.add_char b '\b'
      | 'f' -> Buffer.add_char b '\012'
      | 'n' -> Buffer.add_char b '\n'
      | 'r' -> Buffer.add_char b '\r'
      | 't' -> Buffer.add_char b '\t'
      | 'u' ->
        (* Surrogate handling: a high+low pair combines into one
           supplementary code point; anything unpaired becomes U+FFFD
           (never a raw D800–DFFF code unit, which UTF-8 cannot
           validly encode). An unpaired high surrogate consumes only
           itself, so whatever \u escape follows is re-parsed
           normally. *)
        let u = parse_u16 st in
        if u >= 0xD800 && u <= 0xDBFF then
          let lo =
            if st.pos + 6 <= String.length st.s
               && st.s.[st.pos] = '\\' && st.s.[st.pos + 1] = 'u'
            then (
              let save = st.pos in
              st.pos <- st.pos + 2;
              let lo = parse_u16 st in
              if lo >= 0xDC00 && lo <= 0xDFFF then Some lo
              else (st.pos <- save; None))
            else None
          in
          (match lo with
          | Some lo ->
            encode_utf8 b (0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00))
          | None -> encode_utf8 b 0xFFFD)
        else if u >= 0xDC00 && u <= 0xDFFF then encode_utf8 b 0xFFFD
        else encode_utf8 b u
      | _ -> fail st "bad escape");
      loop ()
    | c when c < ' ' -> fail st "unescaped control character in string"
    | c -> advance st; Buffer.add_char b c; loop ()
  in
  loop ()

(* [float_of_string] is laxer than RFC 8259 (leading zeros, "1.",
   hex): check the token against the RFC number grammar first —
   optional minus, "0" or a nonzero-led digit run, optional fraction
   (dot plus at least one digit), optional exponent. *)
let rfc_number text =
  let n = String.length text in
  let i = ref 0 in
  let digit () = !i < n && text.[!i] >= '0' && text.[!i] <= '9' in
  let digits1 () =
    if digit () then begin
      while digit () do incr i done;
      true
    end
    else false
  in
  if !i < n && text.[!i] = '-' then incr i;
  let int_ok = if digit () && text.[!i] = '0' then (incr i; true) else digits1 () in
  int_ok
  && (if !i < n && text.[!i] = '.' then (incr i; digits1 ()) else true)
  && (if !i < n && (text.[!i] = 'e' || text.[!i] = 'E') then begin
        incr i;
        if !i < n && (text.[!i] = '+' || text.[!i] = '-') then incr i;
        digits1 ()
      end
      else true)
  && !i = n

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (not (eof st)) && is_num_char (peek st) do advance st done;
  let text = String.sub st.s start (st.pos - start) in
  match (if rfc_number text then float_of_string_opt text else None) with
  | Some f -> Num f
  | None -> st.pos <- start; fail st "bad number"

let rec parse_value st =
  skip_ws st;
  if eof st then fail st "unexpected end of input";
  match peek st with
  | 'n' -> literal st "null" Null
  | 't' -> literal st "true" (Bool true)
  | 'f' -> literal st "false" (Bool false)
  | '"' -> Str (parse_string st)
  | '{' ->
    advance st;
    skip_ws st;
    if (not (eof st)) && peek st = '}' then (advance st; Obj [])
    else
      let rec fields acc =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        if eof st then fail st "unterminated object"
        else
          match peek st with
          | ',' -> advance st; fields ((k, v) :: acc)
          | '}' -> advance st; Obj (List.rev ((k, v) :: acc))
          | _ -> fail st "expected ',' or '}'"
      in
      fields []
  | '[' ->
    advance st;
    skip_ws st;
    if (not (eof st)) && peek st = ']' then (advance st; Arr [])
    else
      let rec items acc =
        let v = parse_value st in
        skip_ws st;
        if eof st then fail st "unterminated array"
        else
          match peek st with
          | ',' -> advance st; items (v :: acc)
          | ']' -> advance st; Arr (List.rev (v :: acc))
          | _ -> fail st "expected ',' or ']'"
      in
      items []
  | '-' | '0' .. '9' -> parse_number st
  | _ -> fail st "unexpected character"

let parse s =
  let st = { s; pos = 0 } in
  match
    let v = parse_value st in
    skip_ws st;
    if not (eof st) then fail st "trailing content";
    v
  with
  | v -> Ok v
  | exception Bad (pos, msg) ->
    Error (Printf.sprintf "JSON error at byte %d: %s" pos msg)

let parse_exn s =
  match parse s with Ok v -> v | Error msg -> failwith msg

(* File variant with I/O errors folded into the result, so CLI
   consumers get a printable message for a missing or unreadable path
   instead of an exception. *)
let parse_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> (
    match parse s with
    | Ok v -> Ok v
    | Error msg -> Error (Printf.sprintf "%s: %s" path msg))
  | exception Sys_error msg -> Error msg
  | exception End_of_file ->
    Error (Printf.sprintf "%s: truncated while reading" path)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_num = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function Arr l -> Some l | _ -> None
let keys = function Obj fields -> Some (List.map fst fields) | _ -> None
