type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p95 : float;
  p99 : float;
}

let mean xs =
  assert (Array.length xs > 0);
  Array.fold_left ( +. ) 0. xs /. Float.of_int (Array.length xs)

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) ** 2.)) 0. xs in
    sqrt (acc /. Float.of_int (n - 1))
  end

(* Interpolated percentile over an already-sorted array; [summarize]
   sorts once and reads every percentile from the same copy. *)
let percentile_sorted sorted p =
  assert (Array.length sorted > 0 && p >= 0. && p <= 100.);
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100. *. Float.of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. Float.of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let percentile xs p =
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  percentile_sorted sorted p

let summarize xs =
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  {
    n;
    mean = mean xs;
    stddev = stddev xs;
    min = sorted.(0);
    max = sorted.(n - 1);
    median = percentile_sorted sorted 50.;
    p95 = percentile_sorted sorted 95.;
    p99 = percentile_sorted sorted 99.;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.3f sd=%.3f min=%.3f med=%.3f p95=%.3f p99=%.3f max=%.3f" s.n
    s.mean s.stddev s.min s.median s.p95 s.p99 s.max
