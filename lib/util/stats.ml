type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

let mean xs =
  assert (Array.length xs > 0);
  Array.fold_left ( +. ) 0. xs /. Float.of_int (Array.length xs)

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) ** 2.)) 0. xs in
    sqrt (acc /. Float.of_int (n - 1))
  end

let percentile xs p =
  assert (Array.length xs > 0 && p >= 0. && p <= 100.);
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100. *. Float.of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. Float.of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let summarize xs =
  {
    n = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = Array.fold_left Float.min xs.(0) xs;
    max = Array.fold_left Float.max xs.(0) xs;
    median = percentile xs 50.;
  }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%.3f med=%.3f max=%.3f" s.n
    s.mean s.stddev s.min s.median s.max
