(** A small, fast, per-thread pseudo-random number generator.

    Each worker domain owns its own [t]; there is no shared state, so
    drawing numbers never synchronizes. The generator is a splitmix64
    variant truncated to OCaml's native int width, which is more than
    adequate for workload generation and randomized policy sampling. *)

type t

val create : int -> t
(** [create seed] makes an independent stream. Streams created from
    distinct seeds are uncorrelated for practical purposes. *)

val split : t -> t
(** [split rng] derives a new independent stream from [rng]. *)

val next : t -> int
(** A uniformly distributed non-negative int (62 bits). *)

val below : t -> int -> int
(** [below rng n] is uniform in [0, n). Requires [n > 0]. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> bool
