(** Truncated exponential backoff for CAS retry loops.

    A fresh [t] is cheap (one record); reuse one per operation attempt
    sequence and call {!once} after each failed CAS. *)

type t

val create : ?min_spins:int -> ?max_spins:int -> unit -> t
(** Defaults: [min_spins = 1], [max_spins = 1024]. *)

val once : t -> unit
(** Spin for the current window (calling [Domain.cpu_relax]) and double
    the window, saturating at [max_spins]. *)

val reset : t -> unit

val window : t -> int
(** Current spin window, for tests and diagnostics.

    Note: the hash tables in this repository deliberately do {e not}
    back off — a failed CAS on a copy-on-write node means the state
    changed and must be re-read anyway, and the paper's algorithms
    retry immediately. The combinator is provided for embedders whose
    contention profiles differ. *)
