(** Summary statistics over float samples, used by the benchmark
    harness to report per-trial throughput. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

val summarize : float array -> summary
(** Requires a non-empty array. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0, 100], by linear interpolation on
    the sorted samples. Requires a non-empty array. *)

val mean : float array -> float
val stddev : float array -> float

val pp_summary : Format.formatter -> summary -> unit
