(** Summary statistics over float samples, used by the benchmark
    harness to report per-trial throughput and by the telemetry
    histograms to export duration percentiles. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p95 : float;
  p99 : float;
}

val summarize : float array -> summary
(** Requires a non-empty array. Sorts one private copy and reads the
    median/p95/p99 from it. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0, 100], by linear interpolation on
    the sorted samples. Requires a non-empty array. *)

val percentile_sorted : float array -> float -> float
(** Like {!percentile} but requires the input to be sorted already and
    does not copy; for callers reading many percentiles at once. *)

val mean : float array -> float
val stddev : float array -> float

val pp_summary : Format.formatter -> summary -> unit
