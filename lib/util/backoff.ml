type t = { min_spins : int; max_spins : int; mutable window : int }

let create ?(min_spins = 1) ?(max_spins = 1024) () =
  assert (min_spins > 0 && max_spins >= min_spins);
  { min_spins; max_spins; window = min_spins }

let once t =
  for _ = 1 to t.window do
    Domain.cpu_relax ()
  done;
  t.window <- min t.max_spins (t.window * 2)

let reset t = t.window <- t.min_spins
let window t = t.window
