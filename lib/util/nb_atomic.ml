(* The atomics shim of the nonblocking libraries.

   Every module in lib/fset, lib/hashset, lib/splitorder, lib/michael
   and lib/telemetry re-points its [Atomic] at this module
   (`module Atomic = Nbhash_util.Nb_atomic`); a lint (`dune build
   @lint`) rejects direct [Stdlib.Atomic] there. In production the
   shim is a pass-through: one load of [tracing] and a predictable
   branch per operation. Under the model checker ([Nbhash_check]) the
   flag is raised and every operation first performs the [Step]
   effect, yielding to a single-domain cooperative scheduler that
   decides which "thread" runs next — the same compiled code then
   executes deterministically under an explored schedule. *)

type 'a t = 'a Stdlib.Atomic.t

module type ATOMIC = sig
  type 'a t = 'a Stdlib.Atomic.t

  val make : 'a -> 'a t
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit
  val exchange : 'a t -> 'a -> 'a
  val compare_and_set : 'a t -> 'a -> 'a -> bool
  val fetch_and_add : int t -> int -> int
  val incr : int t -> unit
  val decr : int t -> unit
end

(* Operation labels, carried by the [Step] effect so counterexample
   traces can say what each scheduled step was about to do. *)
type label = Get | Set | Exchange | Cas | Fetch_and_add

let label_to_string = function
  | Get -> "get"
  | Set -> "set"
  | Exchange -> "exchange"
  | Cas -> "compare_and_set"
  | Fetch_and_add -> "fetch_and_add"

type _ Effect.t += Step : label -> unit Effect.t

(* The production backend: [Stdlib.Atomic] verbatim. *)
module Real : ATOMIC = struct
  type 'a t = 'a Stdlib.Atomic.t

  let make = Stdlib.Atomic.make
  let get = Stdlib.Atomic.get
  let set = Stdlib.Atomic.set
  let exchange = Stdlib.Atomic.exchange
  let compare_and_set = Stdlib.Atomic.compare_and_set
  let fetch_and_add = Stdlib.Atomic.fetch_and_add
  let incr = Stdlib.Atomic.incr
  let decr = Stdlib.Atomic.decr
end

(* The checker backend: announce the operation as a scheduling point,
   then execute it for real once the scheduler resumes us. Because the
   scheduler is cooperative and single-domain, nothing can run between
   the resumption and the operation itself, so the yield-before-op
   protocol gives each atomic operation an exact place in the explored
   schedule. *)
module Traced : ATOMIC = struct
  type 'a t = 'a Stdlib.Atomic.t

  let make v = Stdlib.Atomic.make v

  let get r =
    Effect.perform (Step Get);
    Stdlib.Atomic.get r

  let set r v =
    Effect.perform (Step Set);
    Stdlib.Atomic.set r v

  let exchange r v =
    Effect.perform (Step Exchange);
    Stdlib.Atomic.exchange r v

  let compare_and_set r old nw =
    Effect.perform (Step Cas);
    Stdlib.Atomic.compare_and_set r old nw

  let fetch_and_add r n =
    Effect.perform (Step Fetch_and_add);
    Stdlib.Atomic.fetch_and_add r n

  let incr r =
    Effect.perform (Step Fetch_and_add);
    Stdlib.Atomic.incr r

  let decr r =
    Effect.perform (Step Fetch_and_add);
    Stdlib.Atomic.decr r
end

(* Raised only by the model checker, single-domain, around each
   explored execution; never written while real domains run, so the
   plain ref is race-free in production. *)
let tracing = ref false

let[@inline] make v = Stdlib.Atomic.make v
let[@inline] get r = if !tracing then Traced.get r else Stdlib.Atomic.get r
let[@inline] set r v = if !tracing then Traced.set r v else Stdlib.Atomic.set r v

let[@inline] exchange r v =
  if !tracing then Traced.exchange r v else Stdlib.Atomic.exchange r v

let[@inline] compare_and_set r old nw =
  if !tracing then Traced.compare_and_set r old nw
  else Stdlib.Atomic.compare_and_set r old nw

let[@inline] fetch_and_add r n =
  if !tracing then Traced.fetch_and_add r n else Stdlib.Atomic.fetch_and_add r n

let[@inline] incr r = if !tracing then Traced.incr r else Stdlib.Atomic.incr r
let[@inline] decr r = if !tracing then Traced.decr r else Stdlib.Atomic.decr r
