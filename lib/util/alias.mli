(** Walker/Vose alias method: O(1) sampling from an arbitrary discrete
    distribution after O(n) preprocessing.

    The table is immutable after construction and may be shared freely
    across domains; each draw uses only the caller's PRNG. Used for
    Zipfian key popularity in the benchmark workloads. *)

type t

val make : float array -> t
(** [make weights] builds a sampler over indices [0, n) with
    probability proportional to [weights.(i)]. Weights must be
    non-negative, with a positive sum. *)

val draw : t -> Xoshiro.t -> int

val size : t -> int

val zipf : n:int -> s:float -> t
(** The Zipf(s) distribution over [0, n): probability of rank [i]
    proportional to [1 / (i+1)^s]. [s = 0] degenerates to uniform. *)
