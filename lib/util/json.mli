(** A minimal JSON reader for the repo's own tooling.

    The telemetry and bench layers hand-encode their JSON
    ([Snapshot.to_json], the bench emitter, the trace exporter); this
    is the matching decoder, used by [tools/bench_compare] to diff two
    bench files and by the test suite to validate that the emitters
    produce well-formed documents. It accepts standard JSON (RFC 8259)
    with no extensions: unescaped control characters in strings are
    rejected, numbers must match the RFC grammar, and [\uXXXX] escapes
    are decoded to UTF-8 — surrogate pairs combine, unpaired
    surrogates become U+FFFD so the output is always valid UTF-8.
    Numbers become [float]. Not optimized and not streaming — bench
    files are a few hundred KB at most. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list  (** fields in document order *)

val parse : string -> (t, string) result
(** [Error msg] carries a byte offset and a description. Trailing
    whitespace is allowed; any other trailing content is an error. *)

val parse_exn : string -> t
(** @raise Failure on invalid input. *)

val parse_file : string -> (t, string) result
(** Read and parse a whole file. I/O failures (missing, unreadable,
    truncated) come back as [Error] with a printable message, never as
    an exception. *)

(** Accessors; all return [None] on a shape mismatch. [member] returns
    the first binding of the key. *)

val member : string -> t -> t option
val to_num : t -> float option
val to_str : t -> string option
val to_list : t -> t list option
val keys : t -> string list option
