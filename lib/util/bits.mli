(** Bit-manipulation helpers shared by the hash tables and the
    split-ordered-list baseline.

    All functions operate on non-negative OCaml [int]s (at most 62
    significant bits), so every result is itself a valid non-negative
    key or bucket index. *)

val is_pow2 : int -> bool
(** [is_pow2 n] is [true] iff [n] is a power of two ([n > 0]). *)

val next_pow2 : int -> int
(** [next_pow2 n] is the smallest power of two [>= max 1 n]. *)

val log2 : int -> int
(** [log2 n] is the position of the highest set bit of [n].
    Requires [n > 0]; [log2 1 = 0], [log2 8 = 3]. *)

val highest_bit : int -> int
(** [highest_bit n] is a mask with only the most significant set bit of
    [n]. Requires [n > 0]. *)

val unset_msb : int -> int
(** [unset_msb n] clears the most significant set bit of [n]: the
    "parent bucket" function of the split-ordered list. Requires
    [n > 0]. *)

val reverse62 : int -> int
(** [reverse62 k] reverses the low 62 bits of [k]. It is an involution
    on [0, 2^62): [reverse62 (reverse62 k) = k]. *)

val so_regular_key : int -> int
(** Split-order key of a regular (data) node: bit-reversed and tagged
    with a low 1 bit so it sorts after the dummy key of its bucket.
    Requires [k < 2^61]. *)

val so_dummy_key : int -> int
(** Split-order key of a dummy (bucket sentinel) node: bit-reversed
    with a low 0 bit. For every bucket [b] and key [k] with
    [k mod 2^j = b], [so_dummy_key b < so_regular_key k].
    Requires [b < 2^61]. *)

val popcount : int -> int
(** Number of set bits. *)
