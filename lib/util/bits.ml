let is_pow2 n = n > 0 && n land (n - 1) = 0

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let log2 n =
  assert (n > 0);
  let rec go n acc = if n = 1 then acc else go (n lsr 1) (acc + 1) in
  go n 0

let highest_bit n =
  assert (n > 0);
  1 lsl log2 n

let unset_msb n = n land lnot (highest_bit n)

(* A 62-bit reversal built from byte-table lookups, working in two
   31-bit halves so every intermediate fits in OCaml's 63-bit int:
   rev62 (hi31 . lo31) = rev31 lo31 . rev31 hi31. *)
let byte_rev =
  let t = Array.make 256 0 in
  for i = 0 to 255 do
    let r = ref 0 in
    for b = 0 to 7 do
      if i land (1 lsl b) <> 0 then r := !r lor (1 lsl (7 - b))
    done;
    t.(i) <- !r
  done;
  t
[@@nbhash.plain_ok
  "lookup table filled at module initialization, before any other domain \
   exists; read-only afterwards"]

let rev32 x =
  let rev8 y = byte_rev.(y land 0xff) in
  (rev8 x lsl 24)
  lor (rev8 (x lsr 8) lsl 16)
  lor (rev8 (x lsr 16) lsl 8)
  lor rev8 (x lsr 24)

let rev31 x = rev32 x lsr 1

let reverse62 k =
  let lo31 = k land 0x7FFFFFFF in
  let hi31 = (k lsr 31) land 0x7FFFFFFF in
  (rev31 lo31 lsl 31) lor rev31 hi31

(* Keys are required to be < 2^61, so the low bit of [reverse62 k] is
   always 0 and can carry the regular/dummy tag without shifting (which
   would overflow the 63-bit int). *)
let so_regular_key k = reverse62 k lor 1
let so_dummy_key b = reverse62 b

let popcount n =
  let rec go n acc = if n = 0 then acc else go (n lsr 1) (acc + (n land 1)) in
  go n 0
