(** Atomics shim of the nonblocking libraries.

    The lock-free and wait-free code never touches [Stdlib.Atomic]
    directly (enforced by [dune build @lint]); it goes through this
    module, re-pointed per file as [module Atomic =
    Nbhash_util.Nb_atomic]. With {!tracing} false — the production
    default — every operation is [Stdlib.Atomic] behind one load and
    branch. With {!tracing} true, operations first perform the {!Step}
    effect, handing control to the cooperative scheduler of
    [Nbhash_check.Explore], which replays the same compiled code under
    chosen interleavings.

    [type 'a t] is a transparent alias of ['a Stdlib.Atomic.t], so
    values flow freely between shimmed and unshimmed code. *)

type 'a t = 'a Stdlib.Atomic.t

(** The operations the nonblocking libraries are allowed to use; both
    backends satisfy it over the same representation. *)
module type ATOMIC = sig
  type 'a t = 'a Stdlib.Atomic.t

  val make : 'a -> 'a t
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit
  val exchange : 'a t -> 'a -> 'a
  val compare_and_set : 'a t -> 'a -> 'a -> bool
  val fetch_and_add : int t -> int -> int
  val incr : int t -> unit
  val decr : int t -> unit
end

(** What kind of atomic operation a scheduling point is about to run;
    shown in counterexample traces. *)
type label = Get | Set | Exchange | Cas | Fetch_and_add

val label_to_string : label -> string

type _ Effect.t += Step : label -> unit Effect.t
      (** Performed before each atomic operation when {!tracing} is
          on. The handler (the checker's scheduler) resumes the
          continuation when this thread is next scheduled; the
          operation then executes immediately, atomically with the
          resumption. *)

module Real : ATOMIC
(** Pass-through [Stdlib.Atomic], no flag check. *)

module Traced : ATOMIC
(** Always yields {!Step} first; only usable under a handler. *)

val tracing : bool ref
(** Model-checker hook. Only [Nbhash_check] should flip this, around a
    single-domain explored execution; it must be false whenever more
    than one domain is running. *)

(** The flag-switched default used by the libraries. *)

val make : 'a -> 'a t
val get : 'a t -> 'a
val set : 'a t -> 'a -> unit
val exchange : 'a t -> 'a -> 'a
val compare_and_set : 'a t -> 'a -> 'a -> bool
val fetch_and_add : int t -> int -> int
val incr : int t -> unit
val decr : int t -> unit
