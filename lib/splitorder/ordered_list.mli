(** A lock-free sorted linked list with logical deletion — Michael's
    streamlining of Harris's algorithm — the substrate under both the
    split-ordered-list baseline and Michael's fixed-size hash table.

    Keys are unique and sorted ascending. A node is deleted in two
    steps: its [next] link is atomically tagged [Dead] (the logical
    deletion, the linearization point of a remove), then any traversal
    that encounters it unlinks it physically. Traversal starts from a
    caller-supplied start node, which lets hash tables begin searches
    at interior sentinel (dummy) nodes rather than the list head. *)

type node

val make_node : int -> node
(** A detached node carrying the given sort key. *)

val node_key : node -> int

val make_head : unit -> node
(** A sentinel that sorts before every key ([min_int]); never passed
    to [remove]. *)

val insert : start:node -> int -> bool
(** [insert ~start key] adds a node with [key]; [false] if present.
    [start]'s key must be smaller than [key]. *)

val insert_or_find : start:node -> int -> node
(** Insert a node with the given key, or return the already-present
    node with that key (used to publish dummy nodes exactly once). *)

val remove : start:node -> int -> bool
(** Logically delete the node with [key]; [false] if absent. *)

val mem : start:node -> int -> bool
(** Pure traversal (no helping, no CAS). *)

val keys_from : start:node -> ?upto:int -> unit -> int list
(** Unmarked keys after [start], strictly below [upto] if given.
    Exact only in quiescent states. *)

val check_sorted : start:node -> unit
(** Raises [Failure] if reachable keys are not strictly increasing. *)
