module Atomic = Nbhash_util.Nb_atomic
module Tm = Nbhash_telemetry.Global

(* Retry sites: both the split-ordered table and Michael's hash set
   run their CAS loops in this file, so these ids cover both. *)
let site_unlink = Nbhash_telemetry.Site.register "ordered_list/unlink"
let site_insert = Nbhash_telemetry.Site.register "ordered_list/insert"
let site_remove = Nbhash_telemetry.Site.register "ordered_list/remove"

type node = { key : int; next : link Atomic.t }

(* The link of a node both points at the successor and carries the
   node's own deletion mark: [Dead succ] means the owner is logically
   deleted. CAS on the containing [Atomic.t] compares the link values
   physically, so every transition allocates a fresh link. *)
and link = Live of node option | Dead of node option

let make_node key = { key; next = Atomic.make (Live None) }
let node_key n = n.key
let make_head () = make_node min_int

(* Search for [key] from [start], unlinking any logically deleted
   nodes encountered. Returns [(prev, plink, curr)] where [prev] is
   the last node with key < [key], [plink] is the Live link read from
   [prev.next] (needed as the CAS witness for insertion), and [curr]
   is the node [plink] points at: the first node with key >= [key], or
   None. Restarts from [start] when an unlinking CAS is lost. *)
let rec find start key =
  let rec scan prev plink =
    let curr = match plink with Live c -> c | Dead _ -> assert false in
    match curr with
    | None -> (prev, plink, None)
    | Some c -> (
      match Atomic.get c.next with
      | Dead succ ->
        let unlinked = Live succ in
        if Atomic.compare_and_set prev.next plink unlinked then
          scan prev unlinked
        else begin
          Tm.cas_retry site_unlink;
          find start key
        end
      | Live _ as clink ->
        if c.key >= key then (prev, plink, Some c) else scan c clink)
  in
  match Atomic.get start.next with
  | Live _ as plink -> scan start plink
  | Dead _ ->
    (* Start nodes (head and dummy sentinels) are never deleted. *)
    assert false

let rec insert_node start n =
  let prev, plink, curr = find start n.key in
  match curr with
  | Some c when c.key = n.key -> (false, c)
  | Some _ | None ->
    Atomic.set n.next (Live curr);
    if Atomic.compare_and_set prev.next plink (Live (Some n)) then (true, n)
    else begin
      Tm.cas_retry site_insert;
      insert_node start n
    end

let insert ~start key =
  assert (start.key < key);
  fst (insert_node start (make_node key))

let insert_or_find ~start key =
  assert (start.key < key);
  snd (insert_node start (make_node key))

let rec remove ~start key =
  let _, _, curr = find start key in
  match curr with
  | Some c when c.key = key -> (
    match Atomic.get c.next with
    | Dead _ -> false
    | Live succ as l ->
      if Atomic.compare_and_set c.next l (Dead succ) then begin
        (* Physical unlinking is best-effort; find cleans up. *)
        ignore (find start key);
        true
      end
      else begin
        Tm.cas_retry site_remove;
        remove ~start key
      end)
  | Some _ | None -> false

(* Pure traversal: skip past smaller keys following raw successor
   pointers; a key is present iff its node is reached and unmarked. *)
let mem ~start key =
  let succ_of c = match Atomic.get c.next with Live s | Dead s -> s in
  let rec go = function
    | None -> false
    | Some c ->
      if c.key > key then false
      else if c.key = key then (
        match Atomic.get c.next with Dead _ -> false | Live _ -> true)
      else go (succ_of c)
  in
  go (succ_of start)

let keys_from ~start ?upto () =
  let succ_of c = match Atomic.get c.next with Live s | Dead s -> s in
  let below k = match upto with None -> true | Some u -> k < u in
  let rec go acc = function
    | None -> List.rev acc
    | Some c ->
      if not (below c.key) then List.rev acc
      else begin
        let acc =
          match Atomic.get c.next with Dead _ -> acc | Live _ -> c.key :: acc
        in
        go acc (succ_of c)
      end
  in
  go [] (succ_of start)

let check_sorted ~start =
  let succ_of c = match Atomic.get c.next with Live s | Dead s -> s in
  let rec go last = function
    | None -> ()
    | Some c ->
      if c.key <= last then
        Format.kasprintf failwith "ordered list out of order: %d after %d"
          c.key last;
      go c.key (succ_of c)
  in
  go start.key (succ_of start)
