(** The Shalev–Shavit split-ordered list: the lock-free extensible
    hash table used as the paper's baseline (SplitOrder).

    All keys live in one lock-free ordered list sorted by bit-reversed
    key; buckets are lazily created dummy nodes that point into the
    list, published through a two-level directory. Doubling the table
    only adds dummy nodes — elements never move — which is the
    recursive split-ordering trick. The known limitations the paper
    contrasts against: the table {e never shrinks} ([force_resize
    ~grow:false] is a no-op), dummy nodes are never reclaimed, and the
    directory has a fixed maximum capacity. *)

include Nbhash.Hashset_intf.S

val dummy_count : t -> int
(** Number of dummy (marker) nodes currently in the list — the
    permanent residue the paper's introduction points at. *)
