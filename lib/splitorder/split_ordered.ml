module Atomic = Nbhash_util.Nb_atomic

module Bits = Nbhash_util.Bits
module Policy = Nbhash.Policy
module Hashset_intf = Nbhash.Hashset_intf

let segment_bits = 10
let segment_size = 1 lsl segment_bits
let max_segments = 1 lsl 16

type segment = Ordered_list.node option Atomic.t array

type t = {
  top : segment option Atomic.t array;
  head : Ordered_list.node;  (* the dummy of bucket 0 *)
  size : int Atomic.t;  (* current bucket count, a power of two *)
  count : int Atomic.t;  (* element count, drives growth *)
  load_factor : int;
  max_buckets : int;
  grow_enabled : bool;
  grows : int Atomic.t;
}

type handle = t

let name = "SplitOrder"

let create ?(policy = Policy.default) ?max_threads () =
  ignore max_threads;
  Policy.validate policy;
  let max_buckets = min policy.Policy.max_buckets (segment_size * max_segments) in
  let head = Ordered_list.make_head () in
  let seg0 : segment =
    Array.init segment_size (fun _ -> Atomic.make None)
  in
  Atomic.set seg0.(0) (Some head);
  let top = Array.init max_segments (fun _ -> Atomic.make None) in
  Atomic.set top.(0) (Some seg0);
  {
    top;
    head;
    size = Atomic.make policy.Policy.init_buckets;
    count = Atomic.make 0;
    load_factor =
      (match policy.Policy.heuristic with
      | Policy.Load_factor { grow; _ } -> max 1 (int_of_float grow)
      | Policy.Bucket_size { grow_threshold; _ } -> max 1 grow_threshold);
    max_buckets;
    grow_enabled = policy.Policy.enabled;
    grows = Atomic.make 0;
  }

let register t = t
let unregister _ = ()

let segment_for t i =
  let si = i lsr segment_bits in
  let slot = t.top.(si) in
  match Atomic.get slot with
  | Some seg -> seg
  | None ->
    let seg : segment = Array.init segment_size (fun _ -> Atomic.make None) in
    ignore (Atomic.compare_and_set slot None (Some seg))
    [@nbhash.cas_ok
      "segment publish: a losing initializer discards its fresh segment and \
       reads the winner's on the next line"];
    Option.get (Atomic.get slot)

(* Fetch bucket [i]'s dummy node, creating it (and, recursively, its
   parent's) on first touch. The recursion depth is the popcount of
   [i]. Publishing with a plain set is fine: racing initializers
   obtain the same node from [insert_or_find]. *)
let rec bucket_dummy t i =
  let seg = segment_for t i in
  let slot = seg.(i land (segment_size - 1)) in
  match Atomic.get slot with
  | Some d -> d
  | None ->
    let parent = if i = 0 then t.head else bucket_dummy t (Bits.unset_msb i) in
    let d = Ordered_list.insert_or_find ~start:parent (Bits.so_dummy_key i) in
    Atomic.set slot (Some d)
    [@nbhash.cas_ok
      "idempotent publish: racing initializers obtain the same node from \
       [insert_or_find], so every writer stores the same value"];
    d

let bucket_for t k =
  let size = Atomic.get t.size in
  bucket_dummy t (k land (size - 1))

let maybe_grow t =
  if t.grow_enabled then begin
    let size = Atomic.get t.size in
    if
      Atomic.get t.count > size * t.load_factor
      && size * 2 <= t.max_buckets
      && Atomic.compare_and_set t.size size (size * 2)
    then ignore (Atomic.fetch_and_add t.grows 1)
  end

let insert t k =
  Hashset_intf.check_key k;
  let d = bucket_for t k in
  if Ordered_list.insert ~start:d (Bits.so_regular_key k) then begin
    ignore (Atomic.fetch_and_add t.count 1);
    maybe_grow t;
    true
  end
  else false

let remove t k =
  Hashset_intf.check_key k;
  let d = bucket_for t k in
  if Ordered_list.remove ~start:d (Bits.so_regular_key k) then begin
    ignore (Atomic.fetch_and_add t.count (-1));
    true
  end
  else false

let contains t k =
  Hashset_intf.check_key k;
  Ordered_list.mem ~start:(bucket_for t k) (Bits.so_regular_key k)

let bucket_count t = Atomic.get t.size

(* Growing is the only direction the split-ordered list supports. *)
let force_resize t ~grow =
  if grow then begin
    let size = Atomic.get t.size in
    if size * 2 <= t.max_buckets && Atomic.compare_and_set t.size size (size * 2)
    then ignore (Atomic.fetch_and_add t.grows 1)
  end

let resize_stats t =
  { Hashset_intf.grows = Atomic.get t.grows; shrinks = 0 }

let so_key_to_key so = Bits.reverse62 so land ((1 lsl 61) - 1)

let elements t =
  Ordered_list.keys_from ~start:t.head ()
  |> List.filter (fun so -> so land 1 = 1)
  |> List.map so_key_to_key
  |> Array.of_list

let cardinal t = Array.length (elements t)

let bucket_sizes t =
  let size = Atomic.get t.size in
  let sizes = Array.make size 0 in
  Array.iter
    (fun k ->
      let b = k land (size - 1) in
      sizes.(b) <- sizes.(b) + 1)
    (elements t);
  sizes

let dummy_count t =
  (* The head dummy is not linked after itself, so count it
     explicitly. *)
  1
  + (Ordered_list.keys_from ~start:t.head ()
    |> List.filter (fun so -> so land 1 = 0)
    |> List.length)

let fail fmt = Format.kasprintf failwith fmt

let check_invariants t =
  Ordered_list.check_sorted ~start:t.head;
  let size = Atomic.get t.size in
  if not (Bits.is_pow2 size) then fail "size %d not a power of two" size;
  (* Every key must be reachable from its own bucket's dummy. *)
  Array.iter
    (fun k ->
      if not (Ordered_list.mem ~start:(bucket_for t k) (Bits.so_regular_key k))
      then fail "key %d not reachable from its bucket dummy" k)
    (elements t)

(* No announce array: nothing for the liveness watchdog to sample. *)
let pending_ops _ = [||]

(* Buckets split incrementally and never freeze: no migration window
   to report. *)
let inspect t =
  Hashset_intf.make_view ~sizes:(bucket_sizes t) ~frozen_buckets:0
    ~migrating:false ~migration_progress:1.0 ~announce_pending:0
