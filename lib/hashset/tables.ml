(** The seven resizable tables the paper evaluates, instantiated and
    named as in section 8. (The eighth, SplitOrder, is the baseline in
    [Nbhash_splitorder]; a non-resizable reference, Michael's table,
    is in [Nbhash_michael].)

    All of them migrate buckets both lazily (the paper's INITBUCKET)
    and eagerly through the cooperative sweep; [Policy.migration]
    configures the sweep per table and [Policy.lazy_migration]
    restores the paper's pure-lazy behaviour (DESIGN.md System 12). *)

module LFArray = Lf_hashset.Make (Nbhash_fset.Lf_array_fset)

(* LFUlist uses the paper's cited unordered-list substrate [20] for
   its buckets; LFList uses the simpler copy-on-write list. Both are
   list-shaped freezable sets; see DESIGN.md. *)
module LFUlist = Lf_hashset.Make (Nbhash_fset.Ulist_fset)
module LFArrayOpt = Lf_hashset_opt

(* A further bucket representation: sorted arrays with binary-search
   membership (see Elems.Sorted_rep). *)
module LFSorted = Lf_hashset.Make (Nbhash_fset.Lf_sorted_fset)
module LFList = Lf_hashset.Make (Nbhash_fset.Lf_list_fset)

(* Flat open-addressing buckets: linear probing over a flat slot
   array with fingerprint tags and tombstones, frozen by CAS-latching
   a SEAL bit into every slot (DESIGN.md System 17). *)
module LFFlat = Lf_hashset.Make (Nbhash_fset.Flat_fset)
module WFArray = Wf_hashset.Make (Nbhash_fset.Wf_array_fset)
module WFList = Wf_hashset.Make (Nbhash_fset.Wf_list_fset)
module Adaptive = Adaptive_hashset.Make (Nbhash_fset.Wf_array_fset)
module AdaptiveOpt = Adaptive_hashset_opt

(** Ambient telemetry over every table above: install a recording
    probe ({!Telemetry.with_recording} or {!Telemetry.install}) and
    the hot paths of all implementations report CAS retries, bucket
    migrations, resizes, helping and path choices into it. With the
    default no-op probe the instrumentation costs one atomic load per
    site. *)
module Telemetry = Nbhash_telemetry.Global

type telemetry_snapshot = Nbhash_telemetry.Snapshot.t

let telemetry_snapshot () = Nbhash_telemetry.Global.snapshot ()
