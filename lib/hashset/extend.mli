(** Derived convenience operations over any hash-set implementation:
    bulk construction, iteration, and set algebra. All of these are
    built from the five primitive operations, so they inherit the
    underlying table's progress guarantees per element; the whole-set
    operations ([iter], [to_list], [union], ...) read via [elements]
    and are exact only in quiescent states. *)

module Make (S : Hashset_intf.S) : sig
  include Hashset_intf.S with type t = S.t and type handle = S.handle

  val of_list : ?policy:Policy.t -> int list -> t * handle
  (** Build a table holding the given keys (duplicates collapse). *)

  val add_seq : handle -> int Seq.t -> int
  (** Insert every key; returns how many were new. *)

  val remove_seq : handle -> int Seq.t -> int
  (** Remove every key; returns how many were present. *)

  val iter : (int -> unit) -> t -> unit
  val fold : ('a -> int -> 'a) -> 'a -> t -> 'a
  val to_list : t -> int list
  (** Sorted ascending. *)

  val equal : t -> t -> bool
  (** Same abstract set. *)

  val subset : t -> t -> bool
  (** [subset a b]: every element of [a] is in [b]. *)

  val union_into : handle -> t -> int
  (** [union_into h src] inserts every element of [src] into [h]'s
      table; returns how many were new. *)

  val diff_into : handle -> t -> int
  (** [diff_into h src] removes every element of [src] from [h]'s
      table; returns how many were present. *)
end
