module Atomic = Nbhash_util.Nb_atomic

module Intset = Nbhash_fset.Intset
module Tm = Nbhash_telemetry.Global
module Ev = Nbhash_telemetry.Event

let site_freeze = Nbhash_telemetry.Site.register "lf_opt/freeze_slot"
let site_stale = Nbhash_telemetry.Site.register "lf_opt/stale_bucket"
let site_add = Nbhash_telemetry.Site.register "lf_opt/add"
let site_del = Nbhash_telemetry.Site.register "lf_opt/del"

(* A bucket slot is directly the FSetNode: no FSet wrapper object.
   [Uninit] plays the role of the nil bucket pointer; the inline
   record is the immutable (elems, ok) node. *)
type bslot = Uninit | Node of { elems : int array; ok : bool }

type hnode = {
  buckets : bslot Atomic.t array;
  size : int;
  mask : int;
  pred : hnode option Atomic.t;
  sweep : Sweep.t;
}

type t = {
  head : hnode Atomic.t;
  policy : Policy.t;
  count : Policy.Counter.shared;
  grows : int Atomic.t;
  shrinks : int Atomic.t;
}

type handle = { table : t; local : Policy.Trigger.local }

let name = "LFArrayOpt"

let make_hnode ~size ~pred =
  {
    buckets = Array.init size (fun _ -> Atomic.make Uninit);
    size;
    mask = size - 1;
    pred = Atomic.make pred;
    sweep = Sweep.make ~total:size;
  }

let create ?(policy = Policy.default) ?max_threads () =
  ignore max_threads;
  Policy.validate policy;
  let hn = make_hnode ~size:policy.Policy.init_buckets ~pred:None in
  Array.iter
    (fun b -> Atomic.set b (Node { elems = [||]; ok = true }))
    hn.buckets;
  {
    head = Atomic.make hn;
    policy;
    count = Policy.Counter.make_shared ();
    grows = Atomic.make 0;
    shrinks = Atomic.make 0;
  }

let seed = Atomic.make 0x0b7

let register table =
  {
    table;
    local =
      Policy.Trigger.make_local table.count
        ~seed:(Atomic.fetch_and_add seed 1);
  }

let unregister h = Policy.Trigger.flush h.local

(* FREEZE on a flattened bucket: CAS the ok bit off in place. The slot
   is a predecessor bucket and hence never [Uninit]. *)
let rec freeze_slot slot =
  match Atomic.get slot with
  | Uninit -> assert false
  | Node n as cur ->
    if not n.ok then n.elems
    else if Atomic.compare_and_set slot cur (Node { elems = n.elems; ok = false })
    then begin
      Tm.emit Ev.Freeze;
      n.elems
    end
    else begin
      Tm.cas_retry site_freeze;
      freeze_slot slot
    end

let pending_ops _ = [||]

let bucket_elems slot =
  match Atomic.get slot with Uninit -> assert false | Node n -> n.elems

(* INITBUCKET, on slots. *)
let init_bucket hn i =
  (match (Atomic.get hn.buckets.(i), Atomic.get hn.pred) with
  | Uninit, Some s ->
    let elems =
      if hn.size = s.size * 2 then
        Intset.filter_mask
          (freeze_slot s.buckets.(i land s.mask))
          ~mask:hn.mask ~target:i
      else
        Intset.disjoint_union
          (freeze_slot s.buckets.(i))
          (freeze_slot s.buckets.(i + hn.size))
    in
    if
      Atomic.compare_and_set hn.buckets.(i) Uninit (Node { elems; ok = true })
    then begin
      Tm.emit_arg Ev.Bucket_init i;
      Tm.add Ev.Keys_migrated (Array.length elems)
    end
  | (Node _ | Uninit), _ -> ());
  hn.buckets.(i)

(* Cooperative sweep hooks (see Sweep and Table_core): one idempotent
   lazy step per index, early predecessor cut on completion. *)
let sweep_migrate hn i = ignore (init_bucket hn i)
let sweep_complete hn () = Atomic.set hn.pred None

let help_migration t hn =
  let m = t.policy.Policy.migration in
  if m.Policy.eager && Atomic.get hn.pred <> None then
    Sweep.help hn.sweep ~chunk:m.Policy.chunk
      ~max_helpers:m.Policy.max_helpers ~migrate:(sweep_migrate hn)
      ~on_complete:(sweep_complete hn)

let resize t grow =
  let hn = Atomic.get t.head in
  let within_bounds =
    if grow then hn.size * 2 <= t.policy.Policy.max_buckets
    else hn.size / 2 >= t.policy.Policy.min_buckets
  in
  if (hn.size > 1 || grow) && within_bounds then begin
    let start_ns = Tm.span_begin Ev.Resize_span in
    let m = t.policy.Policy.migration in
    if m.Policy.eager && Atomic.get hn.pred <> None then
      Sweep.drain hn.sweep ~chunk:m.Policy.chunk ~migrate:(sweep_migrate hn)
        ~on_complete:(sweep_complete hn);
    for i = 0 to hn.size - 1 do
      ignore (init_bucket hn i)
    done;
    if m.Policy.eager then Sweep.finish hn.sweep;
    Atomic.set hn.pred None
    [@nbhash.cas_ok
    "one-way Some -> None: every writer publishes the same final value \
     once the sweep is complete"];
    let size = if grow then hn.size * 2 else hn.size / 2 in
    let hn' = make_hnode ~size ~pred:(Some hn) in
    if Atomic.compare_and_set t.head hn hn' then begin
      ignore (Atomic.fetch_and_add (if grow then t.grows else t.shrinks) 1);
      Tm.emit_arg (if grow then Ev.Resize_grow else Ev.Resize_shrink) size;
      Tm.record_span Ev.Resize_span ~start_ns
    end
    else Tm.span_abort Ev.Resize_span
  end

(* APPLY with the FSet INVOKE inlined against the slot: a frozen node
   or a lost CAS means a resize intervened, so re-resolve from the
   head. Redundant operations linearize at the node read, without a
   CAS. *)
let rec run_op t kind k =
  let hn = Atomic.get t.head in
  let i = k land hn.mask in
  let slot = hn.buckets.(i) in
  match Atomic.get slot with
  | Uninit ->
    ignore (init_bucket hn i);
    run_op t kind k
  | Node n as cur ->
    if not n.ok then begin
      Tm.cas_retry site_stale;
      run_op t kind k
    end
    else begin
      let present = Intset.mem n.elems k in
      match kind with
      | Nbhash_fset.Fset_intf.Ins ->
        if present then false
        else if
          Atomic.compare_and_set slot cur
            (Node { elems = Intset.add n.elems k; ok = true })
        then true
        else begin
          Tm.cas_retry site_add;
          run_op t kind k
        end
      | Nbhash_fset.Fset_intf.Rem ->
        if not present then false
        else if
          Atomic.compare_and_set slot cur
            (Node { elems = Intset.remove n.elems k; ok = true })
        then true
        else begin
          Tm.cas_retry site_del;
          run_op t kind k
        end
    end

let slot_size slot =
  match Atomic.get slot with
  | Uninit -> 0
  | Node n -> Array.length n.elems

let after_insert h k ~resp =
  Policy.Trigger.note_insert h.local ~resp;
  let hn = Atomic.get h.table.head in
  help_migration h.table hn;
  if
    Policy.Trigger.want_grow h.table.policy h.local ~cur_buckets:hn.size
      ~migrating:(Atomic.get hn.pred <> None)
      ~inserted_bucket_size:(fun () -> slot_size hn.buckets.(k land hn.mask))
  then resize h.table true

let after_remove h ~resp =
  Policy.Trigger.note_remove h.local ~resp;
  let hn = Atomic.get h.table.head in
  help_migration h.table hn;
  if
    Policy.Trigger.want_shrink h.table.policy h.local ~cur_buckets:hn.size
      ~migrating:(Atomic.get hn.pred <> None)
      ~sample_bucket_size:(fun i -> slot_size hn.buckets.(i))
  then resize h.table false

let insert h k =
  Hashset_intf.check_key k;
  let resp = run_op h.table Nbhash_fset.Fset_intf.Ins k in
  after_insert h k ~resp;
  resp

let remove h k =
  Hashset_intf.check_key k;
  let resp = run_op h.table Nbhash_fset.Fset_intf.Rem k in
  after_remove h ~resp;
  resp

let contains h k =
  Hashset_intf.check_key k;
  let t = h.table in
  let hn = Atomic.get t.head in
  match Atomic.get hn.buckets.(k land hn.mask) with
  | Node n -> Intset.mem n.elems k
  | Uninit ->
    Tm.emit_arg Ev.Contains_pred k;
    let elems =
      match Atomic.get hn.pred with
      | Some s -> bucket_elems s.buckets.(k land s.mask)
      | None -> bucket_elems hn.buckets.(k land hn.mask)
    in
    Intset.mem elems k

let bucket_count t = (Atomic.get t.head).size

let resize_stats t =
  { Hashset_intf.grows = Atomic.get t.grows; shrinks = Atomic.get t.shrinks }

let force_resize h ~grow = resize h.table grow

(* The Figure 3 refinement mapping, for quiescent inspection. *)
let bucket_set hn i =
  match Atomic.get hn.buckets.(i) with
  | Node n -> n.elems
  | Uninit -> (
    match Atomic.get hn.pred with
    | Some s ->
      if hn.size = s.size * 2 then
        Intset.filter_mask
          (bucket_elems s.buckets.(i land s.mask))
          ~mask:hn.mask ~target:i
      else
        Intset.disjoint_union
          (bucket_elems s.buckets.(i))
          (bucket_elems s.buckets.(i + hn.size))
    | None -> bucket_elems hn.buckets.(i))

let elements t =
  let hn = Atomic.get t.head in
  Array.concat (List.init hn.size (bucket_set hn))

let bucket_sizes t =
  let hn = Atomic.get t.head in
  Array.init hn.size (fun i -> Array.length (bucket_set hn i))

let cardinal t = Array.length (elements t)

(* Structural health snapshot; see Table_core.inspect_with. Frozen
   slots are [Node {ok = false}] — only predecessor buckets freeze, so
   a quiescent table reports 0. *)
let inspect t =
  let hn = Atomic.get t.head in
  let sizes = Array.init hn.size (fun i -> Array.length (bucket_set hn i)) in
  let initialized = ref 0 in
  let frozen = ref 0 in
  let scan b =
    match Atomic.get b with
    | Node n ->
      incr initialized;
      if not n.ok then incr frozen
    | Uninit -> ()
  in
  Array.iter scan hn.buckets;
  let head_initialized = !initialized in
  let pred = Atomic.get hn.pred in
  (match pred with
  | Some s ->
    Array.iter
      (fun b ->
        match Atomic.get b with
        | Node n -> if not n.ok then incr frozen
        | Uninit -> ())
      s.buckets
  | None -> ());
  let migrating = pred <> None in
  Hashset_intf.make_view ~sizes ~frozen_buckets:!frozen ~migrating
    ~migration_progress:
      (if migrating then float_of_int head_initialized /. float_of_int hn.size
       else 1.0)
    ~announce_pending:0

let fail fmt = Format.kasprintf failwith fmt

let check_invariants t =
  let hn = Atomic.get t.head in
  (match Atomic.get hn.pred with
  | Some s ->
    if hn.size <> s.size * 2 && hn.size * 2 <> s.size then
      fail "head size %d not double or half of pred size %d" hn.size s.size;
    Array.iteri
      (fun j b ->
        if Atomic.get b = Uninit then fail "pred bucket %d is uninit" j)
      s.buckets
  | None ->
    Array.iteri
      (fun i b ->
        if Atomic.get b = Uninit then
          fail "bucket %d uninit in a table without predecessor" i)
      hn.buckets);
  Array.iteri
    (fun i b ->
      match Atomic.get b with
      | Uninit -> ()
      | Node n ->
        Array.iter
          (fun k ->
            if k land hn.mask <> i then
              fail "key %d misplaced in bucket %d of %d" k i hn.size)
          n.elems)
    hn.buckets;
  let all = elements t in
  let seen = Hashtbl.create (Array.length all) in
  Array.iter
    (fun k ->
      if Hashtbl.mem seen k then fail "duplicate key %d in abstract set" k;
      Hashtbl.add seen k ())
    all
