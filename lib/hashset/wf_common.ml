(** Announce-and-help machinery shared by the wait-free hash set
    (Figure 4) and the adaptive Fastpath/Slowpath variants.

    Threads announce operations tagged with strictly increasing
    priorities (a fetch-and-increment counter — the doorway of
    Lamport's bakery, as the paper notes) in a slot array indexed by
    thread id, and then help every announced operation whose priority
    does not exceed their own. An operation's priority becomes
    infinity when it has been applied, which bounds every helping loop
    (section 5.2: O(T^2) FSet operations per APPLY). *)

module Atomic = Nbhash_util.Nb_atomic

module Make (F : Nbhash_fset.Fset_intf.WF) = struct
  module Core = Table_core.Make (F)
  module Tm = Nbhash_telemetry.Global
  module Ev = Nbhash_telemetry.Event

  type t = {
    core : Core.t;
    slots : F.op Atomic.t array;
    counter : int Atomic.t;
    next_tid : int Atomic.t;
    announce_writes : int array;
        (* per-slot announce counts: each slot has one writer (its
           tid), so plain increments are exact; the profiler samples
           these as a packed lane source — 8 announce slots share one
           cache line, the textbook false-sharing candidate *)
    announce_src : Nbhash_telemetry.Profile.source;
        (* keeps the weakly-registered source alive as long as the
           table is reachable *)
  }

  type handle = {
    table : t;
    tid : int;
    local : Policy.Trigger.local;
    mutable ops : int;  (* operation count, drives periodic helping *)
    mutable slow_entries : int;  (* adaptive diagnostics *)
  }

  let inert_op () = F.make_op Nbhash_fset.Fset_intf.Ins 0 ~prio:F.infinity_prio

  let create_t policy max_threads =
    if max_threads < 1 then invalid_arg "max_threads < 1";
    let announce_writes = Array.make max_threads 0 in
    {
      core = Core.create policy;
      slots = Array.init max_threads (fun _ -> Atomic.make (inert_op ()));
      counter = Atomic.make 0;
      next_tid = Atomic.make 0;
      announce_writes;
      announce_src =
        Nbhash_telemetry.Profile.register_source ~name:"wf_announce"
          ~lanes_per_line:8 (fun () -> Array.copy announce_writes);
    }

  let register table =
    let tid = Atomic.fetch_and_add table.next_tid 1 in
    if tid >= Array.length table.slots then
      failwith "register: max_threads handles already registered";
    {
      table;
      tid;
      local =
        Policy.Trigger.make_local table.core.Core.count ~seed:(0x5eed + tid);
      ops = 0;
      slow_entries = 0;
    }

  (* The announce slot stays inert after teardown (its op priority is
     infinity), so only the counter deltas need releasing. The tid is
     not recycled: max_threads bounds lifetime registrations. *)
  let unregister h = Policy.Trigger.flush h.local

  (* Drive one operation to completion against whatever bucket
     currently owns its key. Invoke fails only if the bucket was
     frozen, which implies the head changed; re-resolving the bucket
     therefore makes progress. Stops as soon as the operation is done
     (possibly completed by someone else). *)
  let drive t op =
    let continue = ref (not (F.op_is_done op)) in
    while !continue do
      let hn = Atomic.get t.core.Core.head in
      let b = Core.bucket_for hn (F.op_key op) in
      if F.invoke b op then continue := false
      else continue := not (F.op_is_done op)
    done

  (* The helping scan of Figure 4 (lines 56-64): complete every
     announced operation whose priority is at most [prio]. *)
  let help_up_to t ~prio =
    for tid = 0 to Array.length t.slots - 1 do
      let op = Atomic.get t.slots.(tid) in
      if F.op_prio op <= prio then begin
        if not (F.op_is_done op) then Tm.emit_arg Ev.Help_op tid;
        drive t op
      end
    done

  (* Help the single oldest announced operation, if any: the periodic
     assist that keeps fast-path threads from starving slow-path
     ones. *)
  let help_lowest t =
    let best = ref None in
    Array.iter
      (fun slot ->
        let op = Atomic.get slot in
        let p = F.op_prio op in
        if p <> F.infinity_prio then
          match !best with
          | Some (bp, _) when bp <= p -> ()
          | Some _ | None -> best := Some (p, op))
      t.slots;
    match !best with
    | None -> ()
    | Some (_, op) ->
      Tm.emit Ev.Help_op;
      drive t op

  (* APPLY of Figure 4: announce, help everything at least as old,
     read own response. *)
  let slow_apply h kind k =
    let t = h.table in
    Tm.emit_arg Ev.Slowpath_entry k;
    let start_ns = Tm.span_begin Ev.Slowpath_span in
    let prio = Atomic.fetch_and_add t.counter 1 in
    let myop = F.make_op kind k ~prio in
    Atomic.set t.slots.(h.tid) myop;
    t.announce_writes.(h.tid) <- t.announce_writes.(h.tid) + 1
    [@nbhash.plain_ok
      "single-writer per slot (the owning tid); the false-sharing sampler \
       tolerates torn reads like every profiler lane"];
    help_up_to t ~prio;
    let resp = F.get_response myop in
    Tm.record_span Ev.Slowpath_span ~start_ns;
    resp

  (* Snapshot of the announce array for the liveness watchdog: every
     announced-but-incomplete operation as (tid, priority). Priorities
     are unique per operation (the bakery counter), so the same pair
     persisting across polls means one specific operation is stuck —
     exactly what the helping protocol is supposed to preclude. Racy
     by design; see Watchdog. *)
  let announced t =
    let out = ref [] in
    for tid = Array.length t.slots - 1 downto 0 do
      let op = Atomic.get t.slots.(tid) in
      let p = F.op_prio op in
      if p <> F.infinity_prio && not (F.op_is_done op) then
        out := (tid, p) :: !out
    done;
    Array.of_list !out

  (* Policy triggers, identical in shape to the lock-free table's.
     These hooks also run the cooperative migration sweep (DESIGN.md
     System 12): a wait-free update passing through a resizing table
     claims at most one bucket chunk, which does not change the
     helping bound — the chunk size is a constant of the policy. *)
  let after_insert h k ~resp = Core.after_insert h.table.core h.local ~key:k ~resp
  let after_remove h ~resp = Core.after_remove h.table.core h.local ~resp
end
