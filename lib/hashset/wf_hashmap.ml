module Atomic = Nbhash_util.Nb_atomic

let infinity_prio = max_int

type 'v action = Put of 'v | Del | Upd of ('v option -> 'v)

type 'v wop = {
  action : 'v action;
  key : int;
  result : 'v option Atomic.t;  (* the previous binding *)
  prio : int Atomic.t;
}

type 'v opslot = Empty | Frozen | Pending of 'v wop

(* A bucket slot holds the wait-free FSetNode inline (pair-array
   payload). *)
type 'v wslot = Uninit | N of { pairs : (int * 'v) array; op : 'v opslot Atomic.t }

type 'v hnode = {
  buckets : 'v wslot Atomic.t array;
  flags : bool Atomic.t array;
  size : int;
  mask : int;
  pred : 'v hnode option Atomic.t;
  sweep : Sweep.t;
}

type 'v t = {
  head : 'v hnode Atomic.t;
  policy : Policy.t;
  count : Policy.Counter.shared;
  grows : int Atomic.t;
  shrinks : int Atomic.t;
  slots : 'v wop option Atomic.t array;
  counter : int Atomic.t;
  next_tid : int Atomic.t;
}

type 'v handle = {
  table : 'v t;
  tid : int;
  local : Policy.Trigger.local;
}

let make_op action key ~prio =
  { action; key; result = Atomic.make None; prio = Atomic.make prio }

let op_is_done op = Atomic.get op.prio = infinity_prio
let fresh_node pairs = N { pairs; op = Atomic.make Empty }

let make_hnode ~size ~pred =
  {
    buckets = Array.init size (fun _ -> Atomic.make Uninit);
    flags = Array.init size (fun _ -> Atomic.make false);
    size;
    mask = size - 1;
    pred = Atomic.make pred;
    sweep = Sweep.make ~total:size;
  }

let create ?(policy = Policy.default) ?(max_threads = 128) () =
  Policy.validate policy;
  let hn = make_hnode ~size:policy.Policy.init_buckets ~pred:None in
  Array.iter (fun b -> Atomic.set b (fresh_node [||])) hn.buckets;
  {
    head = Atomic.make hn;
    policy;
    count = Policy.Counter.make_shared ();
    grows = Atomic.make 0;
    shrinks = Atomic.make 0;
    slots = Array.init max_threads (fun _ -> Atomic.make None);
    counter = Atomic.make 0;
    next_tid = Atomic.make 0;
  }

let register table =
  let tid = Atomic.fetch_and_add table.next_tid 1 in
  if tid >= Array.length table.slots then
    failwith "register: max_threads handles already registered";
  {
    table;
    tid;
    local = Policy.Trigger.make_local table.count ~seed:(0x3afe + tid);
  }

let unregister h = Policy.Trigger.flush h.local

(* --- pair-array primitives (shared with Hashmap's layout) --- *)

let pairs_find pairs k =
  let n = Array.length pairs in
  let rec go i =
    if i >= n then None
    else begin
      let ki, v = pairs.(i) in
      if ki = k then Some (i, v) else go (i + 1)
    end
  in
  go 0

let pairs_put pairs k v =
  match pairs_find pairs k with
  | Some (i, _) ->
    let b = Array.copy pairs in
    b.(i) <- (k, v);
    b
  | None ->
    let n = Array.length pairs in
    let b = Array.make (n + 1) (k, v) in
    Array.blit pairs 0 b 0 n;
    b
[@@nbhash.plain_ok
  "copy-on-write: [b] is freshly allocated here and stays private until \
   published by a bucket CAS"]

let pairs_remove pairs i =
  let n = Array.length pairs in
  let b = Array.sub pairs 0 (n - 1) in
  if i < n - 1 then b.(i) <- pairs.(n - 1);
  b
[@@nbhash.plain_ok
  "copy-on-write: [b] is freshly allocated here and stays private until \
   published by a bucket CAS"]

let pairs_filter_mask pairs ~mask ~target =
  let keep (k, _) = k land mask = target in
  let count = ref 0 in
  Array.iter (fun p -> if keep p then incr count) pairs;
  if !count = Array.length pairs then pairs
  else begin
    let b = Array.make !count (0, snd pairs.(0)) in
    let j = ref 0 in
    Array.iter
      (fun p ->
        if keep p then begin
          b.(!j) <- p;
          incr j
        end)
      pairs;
    b
  end
[@@nbhash.plain_ok
  "copy-on-write: [b] is freshly allocated here and stays private until \
   published by a bucket CAS"]

(* Deterministic application of an operation to an immutable pair
   array: (previous binding, replacement array). All helpers compute
   the same answer from the same (node, op) pair. *)
let apply_action pairs op =
  let prev = Option.map snd (pairs_find pairs op.key) in
  let pairs' =
    match op.action with
    | Put v -> pairs_put pairs op.key v
    | Del -> (
      match pairs_find pairs op.key with
      | Some (i, _) -> pairs_remove pairs i
      | None -> pairs)
    | Upd f -> pairs_put pairs op.key (f prev)
  in
  (prev, pairs')

(* --- the Figure 6 protocol on slots --- *)

let help_finish slot =
  match Atomic.get slot with
  | Uninit -> ()
  | N n as cur -> (
    match Atomic.get n.op with
    | Empty | Frozen -> ()
    | Pending op ->
      let prev, pairs = apply_action n.pairs op in
      Atomic.set op.result prev;
      Atomic.set op.prio infinity_prio;
      ignore (Atomic.compare_and_set slot cur (fresh_node pairs))
      [@nbhash.cas_ok
      "helping: all helpers derive the same successor node from the same \
       frozen (node, op) pair; exactly one CAS installs it"])

let rec do_freeze slot =
  match Atomic.get slot with
  | Uninit -> assert false
  | N n -> (
    match Atomic.get n.op with
    | Frozen -> n.pairs
    | Empty ->
      if Atomic.compare_and_set n.op Empty Frozen then n.pairs
      else do_freeze slot
    | Pending _ ->
      help_finish slot;
      do_freeze slot)

let freeze hn i =
  Atomic.set hn.flags.(i) true;
  do_freeze hn.buckets.(i)

let rec invoke hn i op =
  if op_is_done op then true
  else begin
    let slot = hn.buckets.(i) in
    match Atomic.get slot with
    | Uninit -> assert false
    | N n -> (
      match Atomic.get n.op with
      | Frozen -> op_is_done op
      | Empty | Pending _ ->
        if Atomic.get hn.flags.(i) then begin
          ignore (do_freeze slot);
          op_is_done op
        end
        else begin
          match Atomic.get n.op with
          | Empty ->
            if op_is_done op then true
            else if Atomic.compare_and_set n.op Empty (Pending op) then begin
              help_finish slot;
              true
            end
            else invoke hn i op
          | Frozen -> op_is_done op
          | Pending _ ->
            help_finish slot;
            invoke hn i op
        end)
  end

(* Logical contents of a slot (pending operation applied). *)
let slot_pairs slot =
  match Atomic.get slot with
  | Uninit -> assert false
  | N n -> (
    match Atomic.get n.op with
    | Empty | Frozen -> n.pairs
    | Pending op -> snd (apply_action n.pairs op))

(* --- table scaffolding (Figure 2) --- *)

let init_bucket hn i =
  (match (Atomic.get hn.buckets.(i), Atomic.get hn.pred) with
  | Uninit, Some s ->
    let pairs =
      if hn.size = s.size * 2 then
        pairs_filter_mask (freeze s (i land s.mask)) ~mask:hn.mask ~target:i
      else Array.append (freeze s i) (freeze s (i + hn.size))
    in
    ignore (Atomic.compare_and_set hn.buckets.(i) Uninit (fresh_node pairs))
    [@nbhash.cas_ok
      "bucket init: racing initializers freeze the same predecessor slots \
       and build identical contents; the first CAS publishes"]
  | (N _ | Uninit), _ -> ());
  ()

let ensure_bucket hn k =
  let i = k land hn.mask in
  (match Atomic.get hn.buckets.(i) with
  | Uninit -> init_bucket hn i
  | N _ -> ());
  i

(* Cooperative sweep hooks (see Sweep and Table_core). *)
let sweep_migrate hn i = init_bucket hn i
let sweep_complete hn () = Atomic.set hn.pred None

let help_migration t hn =
  let m = t.policy.Policy.migration in
  if m.Policy.eager && Atomic.get hn.pred <> None then
    Sweep.help hn.sweep ~chunk:m.Policy.chunk
      ~max_helpers:m.Policy.max_helpers ~migrate:(sweep_migrate hn)
      ~on_complete:(sweep_complete hn)

let resize t grow =
  let hn = Atomic.get t.head in
  let within_bounds =
    if grow then hn.size * 2 <= t.policy.Policy.max_buckets
    else hn.size / 2 >= t.policy.Policy.min_buckets
  in
  if (hn.size > 1 || grow) && within_bounds then begin
    let m = t.policy.Policy.migration in
    if m.Policy.eager && Atomic.get hn.pred <> None then
      Sweep.drain hn.sweep ~chunk:m.Policy.chunk ~migrate:(sweep_migrate hn)
        ~on_complete:(sweep_complete hn);
    for i = 0 to hn.size - 1 do
      init_bucket hn i
    done;
    if m.Policy.eager then Sweep.finish hn.sweep;
    Atomic.set hn.pred None
    [@nbhash.cas_ok
    "one-way Some -> None: every writer publishes the same final value \
     once the sweep is complete"];
    let size = if grow then hn.size * 2 else hn.size / 2 in
    let hn' = make_hnode ~size ~pred:(Some hn) in
    if Atomic.compare_and_set t.head hn hn' then
      ignore (Atomic.fetch_and_add (if grow then t.grows else t.shrinks) 1)
  end

(* --- announce-and-help APPLY (Figure 4) --- *)

let drive t op =
  let continue = ref (not (op_is_done op)) in
  while !continue do
    let hn = Atomic.get t.head in
    let i = ensure_bucket hn op.key in
    if invoke hn i op then continue := false
    else continue := not (op_is_done op)
  done

let help_up_to t ~prio =
  for tid = 0 to Array.length t.slots - 1 do
    match Atomic.get t.slots.(tid) with
    | Some op when Atomic.get op.prio <= prio -> drive t op
    | Some _ | None -> ()
  done

let apply h action k =
  let t = h.table in
  let prio = Atomic.fetch_and_add t.counter 1 in
  let myop = make_op action k ~prio in
  Atomic.set t.slots.(h.tid) (Some myop);
  help_up_to t ~prio;
  Atomic.get myop.result

(* --- policy triggers --- *)

let slot_pair_count slot =
  match Atomic.get slot with
  | Uninit -> 0
  | N n -> Array.length n.pairs

let after_insert h k ~grew =
  Policy.Trigger.note_insert h.local ~resp:grew;
  let hn = Atomic.get h.table.head in
  help_migration h.table hn;
  if
    Policy.Trigger.want_grow h.table.policy h.local ~cur_buckets:hn.size
      ~migrating:(Atomic.get hn.pred <> None)
      ~inserted_bucket_size:(fun () ->
        slot_pair_count hn.buckets.(k land hn.mask))
  then resize h.table true

let after_remove h ~resp =
  Policy.Trigger.note_remove h.local ~resp;
  let hn = Atomic.get h.table.head in
  help_migration h.table hn;
  if
    Policy.Trigger.want_shrink h.table.policy h.local ~cur_buckets:hn.size
      ~migrating:(Atomic.get hn.pred <> None)
      ~sample_bucket_size:(fun i -> slot_pair_count hn.buckets.(i))
  then resize h.table false

(* --- public operations --- *)

let put h k v =
  Hashset_intf.check_key k;
  let prev = apply h (Put v) k in
  after_insert h k ~grew:(Option.is_none prev);
  prev

let remove h k =
  Hashset_intf.check_key k;
  let prev = apply h Del k in
  after_remove h ~resp:(Option.is_some prev);
  prev

let update h k f =
  Hashset_intf.check_key k;
  let prev = apply h (Upd f) k in
  after_insert h k ~grew:(Option.is_none prev)

let get h k =
  Hashset_intf.check_key k;
  let t = h.table in
  let hn = Atomic.get t.head in
  let lookup slot = Option.map snd (pairs_find (slot_pairs slot) k) in
  match Atomic.get hn.buckets.(k land hn.mask) with
  | N _ -> lookup hn.buckets.(k land hn.mask)
  | Uninit -> (
    match Atomic.get hn.pred with
    | Some s -> lookup s.buckets.(k land s.mask)
    | None -> lookup hn.buckets.(k land hn.mask))

let mem h k = Option.is_some (get h k)

let bucket_pairs hn i =
  match Atomic.get hn.buckets.(i) with
  | N _ -> slot_pairs hn.buckets.(i)
  | Uninit -> (
    match Atomic.get hn.pred with
    | Some s ->
      if hn.size = s.size * 2 then
        pairs_filter_mask
          (slot_pairs s.buckets.(i land s.mask))
          ~mask:hn.mask ~target:i
      else
        Array.append (slot_pairs s.buckets.(i)) (slot_pairs s.buckets.(i + hn.size))
    | None -> slot_pairs hn.buckets.(i))

let bindings t =
  let hn = Atomic.get t.head in
  List.concat_map (fun i -> Array.to_list (bucket_pairs hn i)) (List.init hn.size Fun.id)

let cardinal t = List.length (bindings t)
let bucket_count t = (Atomic.get t.head).size

let resize_stats t =
  { Hashset_intf.grows = Atomic.get t.grows; shrinks = Atomic.get t.shrinks }

let force_resize h ~grow = resize h.table grow

let bucket_sizes t =
  let hn = Atomic.get t.head in
  Array.init hn.size (fun i -> Array.length (bucket_pairs hn i))

(* Snapshot of the announce array for the liveness watchdog, as in
   Wf_common.announced: every announced-but-incomplete operation as
   (tid, priority). Priorities are unique per operation, so the same
   pair persisting across polls means one specific operation is stuck.
   Racy by design; see Watchdog. *)
let pending_ops t =
  let out = ref [] in
  for tid = Array.length t.slots - 1 downto 0 do
    match Atomic.get t.slots.(tid) with
    | Some op when not (op_is_done op) ->
      out := (tid, Atomic.get op.prio) :: !out
    | Some _ | None -> ()
  done;
  Array.of_list !out

(* Announce-array occupancy, as in Adaptive_hashset_opt.pending_ops. *)
let announce_pending t =
  let n = ref 0 in
  Array.iter
    (fun slot ->
      match Atomic.get slot with
      | Some op when not (op_is_done op) -> incr n
      | Some _ | None -> ())
    t.slots;
  !n

(* Structural health snapshot; see Table_core.inspect_with. A slot is
   frozen when its operation field reads [Frozen]. *)
let inspect t =
  let hn = Atomic.get t.head in
  let sizes = Array.init hn.size (fun i -> Array.length (bucket_pairs hn i)) in
  let initialized = ref 0 in
  let frozen = ref 0 in
  let scan ~count_init b =
    match Atomic.get b with
    | N n -> (
      if count_init then incr initialized;
      match Atomic.get n.op with
      | Frozen -> incr frozen
      | Empty | Pending _ -> ())
    | Uninit -> ()
  in
  Array.iter (scan ~count_init:true) hn.buckets;
  let pred = Atomic.get hn.pred in
  (match pred with
  | Some s -> Array.iter (scan ~count_init:false) s.buckets
  | None -> ());
  let migrating = pred <> None in
  Hashset_intf.make_view ~sizes ~frozen_buckets:!frozen ~migrating
    ~migration_progress:
      (if migrating then float_of_int !initialized /. float_of_int hn.size
       else 1.0)
    ~announce_pending:(announce_pending t)

let fail fmt = Format.kasprintf failwith fmt

let check_invariants t =
  let hn = Atomic.get t.head in
  (match Atomic.get hn.pred with
  | Some s ->
    Array.iteri
      (fun j b ->
        match Atomic.get b with
        | Uninit -> fail "pred bucket %d is uninit" j
        | N _ -> ())
      s.buckets
  | None ->
    Array.iteri
      (fun i b ->
        match Atomic.get b with
        | Uninit -> fail "bucket %d uninit in a table without predecessor" i
        | N _ -> ())
      hn.buckets);
  Array.iteri
    (fun i b ->
      match Atomic.get b with
      | Uninit -> ()
      | N n ->
        Array.iter
          (fun (k, _) ->
            if k land hn.mask <> i then
              fail "key %d misplaced in bucket %d of %d" k i hn.size)
          n.pairs)
    hn.buckets;
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (k, _) ->
      if Hashtbl.mem seen k then fail "duplicate key %d" k;
      Hashtbl.add seen k ())
    (bindings t)

(* Ensure the update callback is morally pure in debug runs: nothing
   to enforce at runtime; documented contract. *)
