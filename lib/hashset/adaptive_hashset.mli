(** The adaptive hash set: the Fastpath/Slowpath methodology of Kogan
    and Petrank applied to the wait-free table (the paper's Adaptive
    algorithm).

    Operations first run a lock-free retry loop (no announcement, no
    shared counter); only after [fast_threshold] consecutive failures
    — which requires sustained resizing against the same key — does a
    thread fall back to the announce-and-help slow path of Figure 4.
    Fast-path threads assist the oldest announced operation once every
    [help_period] operations, preserving wait-freedom. The paper used
    a threshold of 256, which "virtually guarantees no fallbacks". *)

module Make (F : Nbhash_fset.Fset_intf.WF) : sig
  include Hashset_intf.S

  val create_tuned :
    ?policy:Policy.t ->
    ?max_threads:int ->
    ?fast_threshold:int ->
    ?help_period:int ->
    unit ->
    t
  (** [help_period] must be a power of two. Defaults: threshold 256,
      period 64. *)

  val slow_path_entries : handle -> int
  (** How many operations through this handle fell back to the slow
      path; ablation diagnostics. *)
end
