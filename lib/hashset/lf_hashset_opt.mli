(** LFArrayOpt: the lock-free array-bucket hash set with one level of
    indirection removed (paper section 8, "LFArrayOpt removes a level
    of indirection from LFArray by pointing buckets directly to array
    elements, rather than FSET markers").

    Instead of bucket -> FSet record -> atomic node pointer -> node,
    each bucket slot is itself the atomic holding the copy-on-write
    node (an immutable element array plus the mutability bit), so a
    read touches two fewer cache lines. Semantically identical to
    [Lf_hashset.Make (Nbhash_fset.Lf_array_fset)]. *)

include Hashset_intf.S
