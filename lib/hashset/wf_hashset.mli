(** The wait-free dynamic-sized hash set (paper section 5): the
    scaffolding of Figure 2 with the announce-and-help APPLY of
    Figure 4 over a cooperative wait-free FSet.

    Every insert, remove, and contains completes in a bounded number
    of steps even under concurrent resizing: an operation that keeps
    failing is eventually helped, because any thread that completes
    two operations after ours was announced must first have completed
    ours. [Make (Nbhash_fset.Wf_array_fset)] is the paper's WFArray;
    [Make (Nbhash_fset.Wf_list_fset)] is WFList. *)

module Make (F : Nbhash_fset.Fset_intf.WF) : Hashset_intf.S
