(** Resize heuristics.

    The paper leaves the resize policy unspecified ("the choice of
    policy is orthogonal to the algorithm", section 4.1) and suggests
    per-bucket heuristics: grow when an insert finds its bucket larger
    than a threshold; shrink when the sizes of a few randomly sampled
    buckets all fall below a threshold. That heuristic is implemented
    as {!Bucket_size} — but it has no hysteresis: at steady state the
    occupancy tail always contains buckets above any fixed threshold,
    and resize storms can swamp useful work. The default is therefore
    {!Load_factor}: an approximate element counter (per-handle deltas
    flushed in batches, so it is not a synchronization bottleneck)
    compared against grow/shrink loads spaced far enough apart that a
    resize moves the load strictly inside the band. The A1 benchmark
    quantifies the difference. *)

module Atomic = Nbhash_util.Nb_atomic

type heuristic =
  | Bucket_size of {
      grow_threshold : int;
          (** an insert whose bucket reaches this size triggers a
              grow *)
      shrink_threshold : int;
          (** a shrink requires every sampled bucket to be strictly
              smaller than this *)
      shrink_samples : int;
      shrink_period : int;
          (** a shrink check runs once per this many removes (per
              thread); a power of two *)
    }
  | Load_factor of {
      grow : float;  (** grow when count > grow * buckets *)
      shrink : float;  (** shrink when count < shrink * buckets *)
    }

(** How the bucket migration that follows a resize is spread across
    threads. The paper migrates purely lazily: bucket [i] of the new
    HNode is initialized by whichever operation touches it first, so
    the whole rehash cost lands on the threads that happen to hit
    uninitialized buckets. With [eager = true] (the default), update
    operations passing through a table whose head still has a
    predecessor additionally claim one contiguous chunk of [chunk]
    bucket indices from a shared cursor and migrate it — cooperative
    work stealing in the style of DHash — with lazy [init_bucket]
    retained untouched as the correctness backstop. [max_helpers]
    bounds how many threads sweep concurrently (the resizing thread's
    final drain is exempt: it must always be able to finish alone).
    [eager = false] restores the paper-faithful behaviour exactly. *)
type migration = {
  eager : bool;  (** sweep cooperatively; [false] = paper-faithful lazy *)
  chunk : int;  (** bucket indices claimed per cursor fetch; >= 1 *)
  max_helpers : int;  (** concurrent sweeping threads bound; >= 1 *)
}

let default_migration = { eager = true; chunk = 8; max_helpers = 4 }

type t = {
  enabled : bool;  (** when [false], the table never resizes on its own *)
  heuristic : heuristic;
  min_buckets : int;  (** never shrink below this many buckets *)
  max_buckets : int;  (** never grow above this many buckets *)
  init_buckets : int;  (** initial bucket-array size; a power of two *)
  migration : migration;
}

let default =
  {
    enabled = true;
    heuristic = Load_factor { grow = 6.0; shrink = 1.5 };
    min_buckets = 1;
    max_buckets = 1 lsl 22;
    init_buckets = 1;
    migration = default_migration;
  }

(* The paper's per-bucket heuristic, with its suggested shape. *)
let bucket_size_default =
  {
    default with
    heuristic =
      Bucket_size
        {
          grow_threshold = 12;
          shrink_threshold = 3;
          shrink_samples = 4;
          shrink_period = 64;
        };
  }

(* The paper's throughput evaluation runs "in the absence of resizing
   operations": tables are presized and the policy disabled. *)
let presized buckets =
  {
    default with
    enabled = false;
    init_buckets = Nbhash_util.Bits.next_pow2 buckets;
  }

(* Eager growing and shrinking through the paper's heuristic;
   exercises the resize machinery hard in tests. *)
let aggressive =
  {
    enabled = true;
    heuristic =
      Bucket_size
        {
          grow_threshold = 3;
          shrink_threshold = 2;
          shrink_samples = 2;
          shrink_period = 4;
        };
    min_buckets = 1;
    max_buckets = 1 lsl 22;
    init_buckets = 1;
    migration = default_migration;
  }

(* The paper's migration discipline, unchanged: every bucket waits for
   its first toucher. Useful as the baseline arm of migration
   benchmarks and differential tests. *)
let lazy_migration p =
  { p with migration = { p.migration with eager = false } }

let validate p =
  if not (Nbhash_util.Bits.is_pow2 p.init_buckets) then
    invalid_arg "Policy: init_buckets must be a power of two";
  if p.min_buckets < 1 || p.max_buckets < p.min_buckets then
    invalid_arg "Policy: bucket bounds out of order";
  if p.init_buckets < p.min_buckets || p.init_buckets > p.max_buckets then
    invalid_arg "Policy: init_buckets outside [min_buckets, max_buckets]";
  if p.migration.chunk < 1 then invalid_arg "Policy: migration chunk < 1";
  if p.migration.max_helpers < 1 then
    invalid_arg "Policy: migration max_helpers < 1";
  match p.heuristic with
  | Bucket_size { shrink_samples; shrink_period; _ } ->
    if not (Nbhash_util.Bits.is_pow2 shrink_period) then
      invalid_arg "Policy: shrink_period must be a power of two";
    if shrink_samples < 1 then invalid_arg "Policy: shrink_samples < 1"
  | Load_factor { grow; shrink } ->
    if not (grow > 0. && shrink >= 0. && shrink < grow) then
      invalid_arg "Policy: need 0 <= shrink < grow";
    (* A grow at load [grow] lands at [grow/2]; a shrink at load
       [shrink] lands at [2*shrink]; both must stay inside the open
       band or the policy ping-pongs. *)
    if grow /. 2. <= shrink then
      invalid_arg "Policy: grow/shrink band too narrow (needs grow > 2*shrink)"

(* Approximate element counting: per-handle deltas are folded into the
   shared cell in batches, so hot paths touch no shared state on most
   operations and the count is only ever off by a small bounded
   amount. *)
module Counter = struct
  type shared = int Atomic.t
  type local = { shared : shared; mutable pending : int }

  let flush_threshold = 8

  let make_shared () = Atomic.make 0
  let make_local shared = { shared; pending = 0 }

  (* Fold any pending delta into the shared cell now. Without this, a
     handle that stops short of the ±threshold loses its deltas
     forever, and the approximate count drifts low under many
     short-lived handles; table handle teardown ([unregister]) calls
     it. *)
  let flush l =
    if l.pending <> 0 then begin
      ignore (Atomic.fetch_and_add l.shared l.pending);
      l.pending <- 0;
      Nbhash_telemetry.Global.emit Nbhash_telemetry.Event.Counter_flush
    end

  let note l delta =
    l.pending <- l.pending + delta;
    if abs l.pending >= flush_threshold then begin
      ignore (Atomic.fetch_and_add l.shared l.pending);
      l.pending <- 0;
      Nbhash_telemetry.Global.emit Nbhash_telemetry.Event.Counter_flush
    end

  let approx (s : shared) = Atomic.get s
end

(* The decision logic shared by every table implementation. Tables
   supply two callbacks: the size of the bucket an insert just landed
   in (for Bucket_size grows) and the size of the i-th bucket (for
   Bucket_size shrink sampling). *)
module Trigger = struct
  type local = {
    counter : Counter.local;
    rng : Nbhash_util.Xoshiro.t;
    mutable removes : int;
  }

  let make_local shared ~seed =
    {
      counter = Counter.make_local shared;
      rng = Nbhash_util.Xoshiro.create seed;
      removes = 0;
    }

  let note_insert l ~resp = if resp then Counter.note l.counter 1
  let note_remove l ~resp = if resp then Counter.note l.counter (-1)

  (* Handle teardown: push any pending count deltas to the shared
     cell so the load-factor heuristic keeps seeing them. *)
  let flush l = Counter.flush l.counter

  (* While a resize is still being absorbed (the head HNode has a
     predecessor), the shared count can lag behind reality by up to
     [flush_threshold - 1] per handle: the resize that just fired was
     decided on a count including this handle's deltas, but the deltas
     that arrived since remain pending. Evaluating the trigger on that
     stale estimate can re-arm it and fire a second resize sized for a
     table the first resize has already replaced. So when [migrating]
     the caller's pending deltas are flushed before the load factor is
     read; outside a migration the normal batching (and its bounded
     error) is kept — that is the whole point of the approximate
     counter. *)
  let want_grow p l ~cur_buckets ~migrating ~inserted_bucket_size =
    p.enabled
    && cur_buckets * 2 <= p.max_buckets
    && begin
         if migrating then Counter.flush l.counter;
         match p.heuristic with
         | Load_factor { grow; _ } ->
           Float.of_int (Counter.approx l.counter.Counter.shared)
           > grow *. Float.of_int cur_buckets
         | Bucket_size { grow_threshold; _ } ->
           inserted_bucket_size () >= grow_threshold
       end

  let want_shrink p l ~cur_buckets ~migrating ~sample_bucket_size =
    p.enabled && cur_buckets > 1
    && cur_buckets / 2 >= p.min_buckets
    && begin
         if migrating then Counter.flush l.counter;
         match p.heuristic with
         | Load_factor { shrink; _ } ->
           Float.of_int (Counter.approx l.counter.Counter.shared)
           < shrink *. Float.of_int cur_buckets
         | Bucket_size { shrink_threshold; shrink_samples; shrink_period; _ }
           ->
           l.removes <- (l.removes + 1) land (shrink_period - 1);
           l.removes = 0
           &&
           let all_small = ref true in
           for _ = 1 to shrink_samples do
             let i = Nbhash_util.Xoshiro.below l.rng cur_buckets in
             if sample_bucket_size i >= shrink_threshold then
               all_small := false
           done;
           !all_small
       end
end
