(** The common interface of every hash set in this repository — the
    paper's algorithms (LFArray, LFArrayOpt, LFList, WFArray, WFList,
    Adaptive, AdaptiveOpt) and the baselines (SplitOrder, Michael).

    Keys are non-negative ints below [2^61]. Structures are
    handle-based: {!S.register} claims any per-thread state (an
    announce-array slot for the wait-free variants, a PRNG for the
    shrink policy) and every operation goes through a handle. A handle
    must not be shared between domains; a table may be shared
    freely. *)

type resize_stats = { grows : int; shrinks : int }
(** How many times the bucket array has doubled and halved. *)

type table_view = {
  buckets : int;  (** current bucket-array size (power of two) *)
  cardinal : int;  (** total keys, summed over the depth census *)
  load_factor : float;  (** [cardinal / buckets] *)
  depth_census : int array;
      (** [depth_census.(d)] = number of buckets holding exactly [d]
          keys; length [max_depth + 1] *)
  max_depth : int;  (** deepest bucket *)
  frozen_buckets : int;
      (** buckets currently in the frozen (immutable) state — nonzero
          only while a migration window is open *)
  migrating : bool;  (** the head HNode still has a predecessor *)
  migration_progress : float;
      (** fraction of head buckets already initialized; [1.0] when no
          migration is in flight *)
  announce_pending : int;
      (** announced-but-incomplete operations (announce-array
          occupancy); [0] for implementations without announce arrays *)
}
(** A structural health snapshot for live monitoring ({!S.inspect}).
    Like {!S.bucket_sizes}, exact only in quiescent states: under
    concurrent updates the census is a racy (but safe) read. *)

module type S = sig
  type t
  type handle

  val name : string

  val create : ?policy:Policy.t -> ?max_threads:int -> unit -> t
  (** [max_threads] bounds the number of handles that may ever be
      registered (used to size announce arrays); implementations
      without announce arrays ignore it. Default 128. *)

  val register : t -> handle
  (** Claim per-thread state. Raises [Failure] if more than
      [max_threads] handles are requested. *)

  val unregister : handle -> unit
  (** Release a handle: flush any pending approximate-count deltas to
      the shared counter so the load-factor heuristic (and [cardinal]'s
      underlying count) do not drift low under many short-lived
      handles. The handle must not be used afterwards. Idempotent; a
      no-op for structures with no batched per-handle state. *)

  val insert : handle -> int -> bool
  (** [insert h k] adds [k]; [true] iff [k] was absent. *)

  val remove : handle -> int -> bool
  (** [remove h k] deletes [k]; [true] iff [k] was present. *)

  val contains : handle -> int -> bool

  val bucket_count : t -> int
  (** Current size of the bucket array (power of two). *)

  val resize_stats : t -> resize_stats
  (** Cumulative resize counts (both policy-driven and forced). *)

  val bucket_sizes : t -> int array
  (** Per-bucket occupancy, by the abstract (Figure 3) contents.
      Exact only in quiescent states; for diagnostics and tests. *)

  val force_resize : handle -> grow:bool -> unit
  (** Trigger one resize step irrespective of the policy (a no-op for
      structures that cannot resize in the requested direction). *)

  val cardinal : t -> int
  (** Number of elements. Exact only in quiescent states. *)

  val elements : t -> int array
  (** All elements. Exact only in quiescent states. *)

  val check_invariants : t -> unit
  (** Validate structural invariants (quiescent states only); raises
      [Failure] with a description on violation. For tests. *)

  val inspect : t -> table_view
  (** Structural health snapshot for live monitoring. Safe to call
      concurrently with updates; values are exact in quiescent
      states. *)

  val pending_ops : t -> (int * int) array
  (** Announced-but-incomplete operations as [(tid, priority)] pairs —
      the liveness signal sampled by [Nbhash_telemetry.Watchdog].
      Priorities are unique per operation, so the same pair persisting
      across samples identifies one stuck operation. Racy (may include
      an operation that completes concurrently). [[||]] for
      implementations without announce arrays, which make no helping
      promise the watchdog could check. *)
end

let check_key k =
  if k < 0 || k >= 1 lsl 61 then
    invalid_arg "key must be a non-negative int below 2^61"

let census_of_sizes sizes =
  let max_depth = Array.fold_left max 0 sizes in
  let census = Array.make (max_depth + 1) 0 in
  Array.iter (fun d -> census.(d) <- census.(d) + 1) sizes;
  census

let make_view ~sizes ~frozen_buckets ~migrating ~migration_progress
    ~announce_pending =
  let buckets = Array.length sizes in
  let cardinal = Array.fold_left ( + ) 0 sizes in
  let census = census_of_sizes sizes in
  {
    buckets;
    cardinal;
    load_factor = float_of_int cardinal /. float_of_int (max 1 buckets);
    depth_census = census;
    max_depth = Array.length census - 1;
    frozen_buckets;
    migrating;
    migration_progress;
    announce_pending;
  }
