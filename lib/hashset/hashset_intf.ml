(** The common interface of every hash set in this repository — the
    paper's algorithms (LFArray, LFArrayOpt, LFList, WFArray, WFList,
    Adaptive, AdaptiveOpt) and the baselines (SplitOrder, Michael).

    Keys are non-negative ints below [2^61]. Structures are
    handle-based: {!S.register} claims any per-thread state (an
    announce-array slot for the wait-free variants, a PRNG for the
    shrink policy) and every operation goes through a handle. A handle
    must not be shared between domains; a table may be shared
    freely. *)

type resize_stats = { grows : int; shrinks : int }
(** How many times the bucket array has doubled and halved. *)

module type S = sig
  type t
  type handle

  val name : string

  val create : ?policy:Policy.t -> ?max_threads:int -> unit -> t
  (** [max_threads] bounds the number of handles that may ever be
      registered (used to size announce arrays); implementations
      without announce arrays ignore it. Default 128. *)

  val register : t -> handle
  (** Claim per-thread state. Raises [Failure] if more than
      [max_threads] handles are requested. *)

  val unregister : handle -> unit
  (** Release a handle: flush any pending approximate-count deltas to
      the shared counter so the load-factor heuristic (and [cardinal]'s
      underlying count) do not drift low under many short-lived
      handles. The handle must not be used afterwards. Idempotent; a
      no-op for structures with no batched per-handle state. *)

  val insert : handle -> int -> bool
  (** [insert h k] adds [k]; [true] iff [k] was absent. *)

  val remove : handle -> int -> bool
  (** [remove h k] deletes [k]; [true] iff [k] was present. *)

  val contains : handle -> int -> bool

  val bucket_count : t -> int
  (** Current size of the bucket array (power of two). *)

  val resize_stats : t -> resize_stats
  (** Cumulative resize counts (both policy-driven and forced). *)

  val bucket_sizes : t -> int array
  (** Per-bucket occupancy, by the abstract (Figure 3) contents.
      Exact only in quiescent states; for diagnostics and tests. *)

  val force_resize : handle -> grow:bool -> unit
  (** Trigger one resize step irrespective of the policy (a no-op for
      structures that cannot resize in the requested direction). *)

  val cardinal : t -> int
  (** Number of elements. Exact only in quiescent states. *)

  val elements : t -> int array
  (** All elements. Exact only in quiescent states. *)

  val check_invariants : t -> unit
  (** Validate structural invariants (quiescent states only); raises
      [Failure] with a description on violation. For tests. *)

  val pending_ops : t -> (int * int) array
  (** Announced-but-incomplete operations as [(tid, priority)] pairs —
      the liveness signal sampled by [Nbhash_telemetry.Watchdog].
      Priorities are unique per operation, so the same pair persisting
      across samples identifies one stuck operation. Racy (may include
      an operation that completes concurrently). [[||]] for
      implementations without announce arrays, which make no helping
      promise the watchdog could check. *)
end

let check_key k =
  if k < 0 || k >= 1 lsl 61 then
    invalid_arg "key must be a non-negative int below 2^61"
