(** The HNode scaffolding shared by the lock-free and wait-free hash
    sets (Figure 2 of the paper, minus APPLY): the versioned bucket
    array, lazy bucket initialization by freeze-and-migrate
    ([init_bucket], lines 38-51), the RESIZE operation (lines 19-28),
    and CONTAINS (lines 11-18).

    A table is a list of HNodes of length at most two: [head] and, while
    a resize is being absorbed, [head]'s predecessor. Bucket [i] of the
    head starts out nil and is initialized on first touch by freezing
    the corresponding predecessor bucket(s) and copying the split
    (grow) or merged (shrink) keys. Freezing first is what lets keys
    move without loss or duplication: the frozen buckets remain the
    logical truth (the refinement mapping of Figure 3) until the new
    bucket is installed by CAS, an abstract-state-preserving step. *)

module Atomic = Nbhash_util.Nb_atomic

module Make (F : Nbhash_fset.Fset_intf.CORE) = struct
  module Tm = Nbhash_telemetry.Global
  module Ev = Nbhash_telemetry.Event

  type hnode = {
    buckets : F.t option Atomic.t array;
    size : int;
    mask : int;
    pred : hnode option Atomic.t;
    sweep : Sweep.t;
        (* chunk cursor for the cooperative migration of THIS HNode's
           buckets out of [pred]; unused (and never claimed from) on
           HNodes created without a predecessor *)
  }

  type t = {
    head : hnode Atomic.t;
    policy : Policy.t;
    count : Policy.Counter.shared;  (* approximate, for Load_factor *)
    grows : int Atomic.t;
    shrinks : int Atomic.t;
  }

  let make_hnode ~size ~pred =
    {
      buckets = Array.init size (fun _ -> Atomic.make None);
      size;
      mask = size - 1;
      pred = Atomic.make pred;
      sweep = Sweep.make ~total:size;
    }

  (* Unlike the paper's one-bucket initial table, a fresh table may be
     presized; every bucket of a pred-less HNode must be non-nil
     (Invariant 11), so initialize them all. *)
  let create policy =
    Policy.validate policy;
    let hn = make_hnode ~size:policy.Policy.init_buckets ~pred:None in
    Array.iter (fun b -> Atomic.set b (Some (F.create [||]))) hn.buckets;
    {
      head = Atomic.make hn;
      policy;
      count = Policy.Counter.make_shared ();
      grows = Atomic.make 0;
      shrinks = Atomic.make 0;
    }

  (* Predecessor buckets are never nil (Invariant 12: a resize
     initializes every bucket before publishing the new HNode). *)
  let pred_bucket s j =
    match Atomic.get s.buckets.(j) with
    | Some b -> b
    | None -> assert false

  (* Initialize bucket [i] of [hn] from its predecessor bucket(s):
     freeze them, then split or merge their keys. The CAS publishes
     the new bucket; losing the race to a helping thread is fine — the
     final re-read returns whoever won. *)
  let init_bucket hn i =
    (match (Atomic.get hn.buckets.(i), Atomic.get hn.pred) with
    | None, Some s ->
      let elems =
        if hn.size = s.size * 2 then
          let m = pred_bucket s (i land s.mask) in
          Nbhash_fset.Intset.filter_mask (F.freeze m) ~mask:hn.mask ~target:i
        else begin
          let m = pred_bucket s i in
          let n = pred_bucket s (i + hn.size) in
          Nbhash_fset.Intset.disjoint_union (F.freeze m) (F.freeze n)
        end
      in
      if Atomic.compare_and_set hn.buckets.(i) None (Some (F.create elems))
      then begin
        (* Only the installing thread accounts the migration, so the
           keys_migrated total equals the table cardinality after one
           full migration even when helpers race. *)
        Tm.emit_arg Ev.Bucket_init i;
        Tm.add Ev.Keys_migrated (Array.length elems)
      end
    | (Some _ | None), _ -> ());
    match Atomic.get hn.buckets.(i) with
    | Some b -> b
    | None ->
      (* buckets.(i) = nil together with pred = nil cannot happen
         (Invariant 11): pred is cleared only after every bucket is
         initialized, and buckets never return to nil. *)
      assert false

  (* Locate (initializing if needed) the bucket of [hn] that owns key
     [k]. *)
  let bucket_for hn k =
    let i = k land hn.mask in
    match Atomic.get hn.buckets.(i) with
    | Some b -> b
    | None -> init_bucket hn i

  (* Cooperative sweep plumbing: migrating bucket [i] is exactly the
     idempotent lazy step, and completing the sweep discharges
     Invariant 11's condition for cutting the predecessor loose
     early. *)
  let sweep_migrate hn i = ignore (init_bucket hn i)
  let sweep_complete hn () = Atomic.set hn.pred None

  (* One helping step on the way through a migrating table: claim (at
     most) one chunk of nil buckets of the head and migrate it. Called
     from the update-path policy hooks, so every active writer chips
     in instead of leaving the whole rehash to whoever faults on a nil
     bucket. *)
  let help_migration t hn =
    let m = t.policy.Policy.migration in
    if m.Policy.eager && Atomic.get hn.pred <> None then
      Sweep.help hn.sweep ~chunk:m.Policy.chunk
        ~max_helpers:m.Policy.max_helpers ~migrate:(sweep_migrate hn)
        ~on_complete:(sweep_complete hn)

  (* RESIZE: force full migration into the head HNode, cut the
     now-immutable predecessor loose, and install a double- or
     half-sized successor. The head CAS is the only step that changes
     which HNode is current, and it preserves the abstract set
     (Lemma 14). The resizer first drains the sweep cursor (so its
     share of the work is accounted as sweep participation), then
     falls through to the paper's index loop, which doubles as the
     catch-up pass for chunks still in flight on stalled helpers —
     never waiting on them keeps RESIZE's progress argument intact. *)
  let resize t grow =
    let hn = Atomic.get t.head in
    let within_bounds =
      if grow then hn.size * 2 <= t.policy.Policy.max_buckets
      else hn.size / 2 >= t.policy.Policy.min_buckets
    in
    if (hn.size > 1 || grow) && within_bounds then begin
      let start_ns = Tm.span_begin Ev.Resize_span in
      let m = t.policy.Policy.migration in
      if m.Policy.eager && Atomic.get hn.pred <> None then
        Sweep.drain hn.sweep ~chunk:m.Policy.chunk
          ~migrate:(sweep_migrate hn) ~on_complete:(sweep_complete hn);
      for i = 0 to hn.size - 1 do
        ignore (init_bucket hn i)
      done;
      if m.Policy.eager then Sweep.finish hn.sweep;
      Atomic.set hn.pred None
      [@nbhash.cas_ok
      "one-way Some -> None: every writer publishes the same final value \
       once the sweep is complete"];
      let size = if grow then hn.size * 2 else hn.size / 2 in
      let hn' = make_hnode ~size ~pred:(Some hn) in
      if Atomic.compare_and_set t.head hn hn' then begin
        ignore
          (Atomic.fetch_and_add (if grow then t.grows else t.shrinks) 1);
        Tm.emit_arg (if grow then Ev.Resize_grow else Ev.Resize_shrink) size;
        Tm.record_span Ev.Resize_span ~start_ns
      end
      else
        (* Lost the head CAS: the migration work still happened, but
           this was not a resize — balance the trace span without an
           observation. *)
        Tm.span_abort Ev.Resize_span
    end

  (* CONTAINS: search the head bucket; if it is uninitialized, search
     through the predecessor instead — unless the predecessor vanished
     meanwhile, in which case the head bucket must have been
     initialized and is re-read (lines 14-17). *)
  let contains t k =
    let hn = Atomic.get t.head in
    match Atomic.get hn.buckets.(k land hn.mask) with
    | Some b -> F.has_member b k
    | None ->
      Tm.emit_arg Ev.Contains_pred k;
      let b =
        match Atomic.get hn.pred with
        | Some s -> pred_bucket s (k land s.mask)
        | None -> (
          match Atomic.get hn.buckets.(k land hn.mask) with
          | Some b -> b
          | None -> assert false)
      in
      F.has_member b k

  let bucket_count t = (Atomic.get t.head).size

  let resize_stats t =
    {
      Hashset_intf.grows = Atomic.get t.grows;
      shrinks = Atomic.get t.shrinks;
    }

  (* Current size of bucket [i] of [hn]; uninitialized buckets report 0
     (forcing their migration just to measure them would defeat
     laziness). *)
  let bucket_size_at hn i =
    match Atomic.get hn.buckets.(i) with None -> 0 | Some b -> F.size b

  (* Policy plumbing shared by the table implementations built on this
     core. *)
  let after_insert t local ~key ~resp =
    Policy.Trigger.note_insert local ~resp;
    let hn = Atomic.get t.head in
    help_migration t hn;
    if
      Policy.Trigger.want_grow t.policy local ~cur_buckets:hn.size
        ~migrating:(Atomic.get hn.pred <> None)
        ~inserted_bucket_size:(fun () -> bucket_size_at hn (key land hn.mask))
    then resize t true

  let after_remove t local ~resp =
    Policy.Trigger.note_remove local ~resp;
    let hn = Atomic.get t.head in
    help_migration t hn;
    if
      Policy.Trigger.want_shrink t.policy local ~cur_buckets:hn.size
        ~migrating:(Atomic.get hn.pred <> None)
        ~sample_bucket_size:(bucket_size_at hn)
    then resize t false

  (* The refinement mapping of Figure 3, reified: BuckSet(t, i) is the
     bucket's own elements when initialized, and the split/merge of
     the predecessor's elements otherwise. Exact in quiescent
     states. *)
  let bucket_set hn i =
    match Atomic.get hn.buckets.(i) with
    | Some b -> F.elements b
    | None -> (
      match Atomic.get hn.pred with
      | Some s ->
        if hn.size = s.size * 2 then
          Nbhash_fset.Intset.filter_mask
            (F.elements (pred_bucket s (i land s.mask)))
            ~mask:hn.mask ~target:i
        else
          Nbhash_fset.Intset.disjoint_union
            (F.elements (pred_bucket s i))
            (F.elements (pred_bucket s (i + hn.size)))
      | None -> (
        match Atomic.get hn.buckets.(i) with
        | Some b -> F.elements b
        | None -> assert false))

  let elements t =
    let hn = Atomic.get t.head in
    let parts = List.init hn.size (bucket_set hn) in
    Array.concat parts

  let bucket_sizes t =
    let hn = Atomic.get t.head in
    Array.init hn.size (fun i -> Array.length (bucket_set hn i))

  let cardinal t = Array.length (elements t)

  (* Structural health snapshot. [frozen_buckets] counts frozen
     fsets reachable from the head and its predecessor; the head's own
     buckets are never frozen (only predecessors freeze), so a
     quiescent table reports 0. [migration_progress] is the fraction
     of head buckets already initialized — the same quantity the
     resizer's index loop drives to 1. Racy but safe under concurrent
     updates. *)
  let inspect_with t ~announce_pending =
    let hn = Atomic.get t.head in
    let sizes = Array.init hn.size (fun i -> Array.length (bucket_set hn i)) in
    let initialized = ref 0 in
    let frozen = ref 0 in
    Array.iter
      (fun b ->
        match Atomic.get b with
        | Some b ->
          incr initialized;
          if F.is_frozen b then incr frozen
        | None -> ())
      hn.buckets;
    let pred = Atomic.get hn.pred in
    (match pred with
    | Some s ->
      Array.iter
        (fun b ->
          match Atomic.get b with
          | Some b -> if F.is_frozen b then incr frozen
          | None -> ())
        s.buckets
    | None -> ());
    let migrating = pred <> None in
    Hashset_intf.make_view ~sizes ~frozen_buckets:!frozen ~migrating
      ~migration_progress:
        (if migrating then float_of_int !initialized /. float_of_int hn.size
         else 1.0)
      ~announce_pending

  let fail fmt = Format.kasprintf failwith fmt

  (* Structural sanity for quiescent states: key placement, the
     nil-bucket invariants (11 and 12), frozen-predecessor invariant
     (13), and duplicate freedom across the whole table. *)
  let check_invariants t =
    let hn = Atomic.get t.head in
    let pred = Atomic.get hn.pred in
    (match pred with
    | Some s ->
      if hn.size <> s.size * 2 && hn.size * 2 <> s.size then
        fail "head size %d not double or half of pred size %d" hn.size s.size;
      Array.iteri
        (fun j b ->
          if Atomic.get b = None then fail "pred bucket %d is nil" j)
        s.buckets
    | None ->
      Array.iteri
        (fun i b ->
          if Atomic.get b = None then
            fail "bucket %d nil in a table without predecessor" i)
        hn.buckets);
    Array.iteri
      (fun i b ->
        match Atomic.get b with
        | None -> ()
        | Some b ->
          Array.iter
            (fun k ->
              if k land hn.mask <> i then
                fail "key %d misplaced in bucket %d of %d" k i hn.size)
            (F.elements b);
          (match pred with
          | Some s when hn.size = s.size * 2 ->
            if not (F.is_frozen (pred_bucket s (i land s.mask))) then
              fail "predecessor of initialized bucket %d is not frozen" i
          | Some s ->
            if
              not
                (F.is_frozen (pred_bucket s i)
                && F.is_frozen (pred_bucket s (i + hn.size)))
            then fail "predecessors of initialized bucket %d are not frozen" i
          | None -> ()))
      hn.buckets;
    let all = elements t in
    let seen = Hashtbl.create (Array.length all) in
    Array.iter
      (fun k ->
        if Hashtbl.mem seen k then fail "duplicate key %d in abstract set" k;
        Hashtbl.add seen k ())
      all
end
