(** A lock-free dynamic-sized hash {e map}: the extension sketched in
    the paper's conclusion ("extending the set to a map: ... the
    copy-on-write technique is likely to prove valuable, since it
    avoids the need to atomically modify distinct key and value
    fields").

    Buckets are copy-on-write arrays of (key, value) pairs with a
    freeze bit, exactly the LFArrayOpt layout; a put replaces the
    whole immutable pair array, so key and value always change
    together and no field-level atomicity is needed. Resizing in both
    directions works as in the set. Keys are non-negative ints below
    [2^61]; values are arbitrary. *)

type 'v t
type 'v handle

val create : ?policy:Policy.t -> unit -> 'v t
val register : 'v t -> 'v handle

val unregister : 'v handle -> unit
(** Flush pending approximate-count deltas; the handle must not be
    used afterwards. *)

val put : 'v handle -> int -> 'v -> 'v option
(** [put h k v] binds [k] to [v]; returns the previous binding. *)

val get : 'v handle -> int -> 'v option

val remove : 'v handle -> int -> 'v option
(** Returns the removed binding, if any. *)

val mem : 'v handle -> int -> bool

val update : 'v handle -> int -> ('v option -> 'v) -> unit
(** [update h k f] atomically binds [k] to [f] of its current binding
    (retrying on contention; [f] may run more than once and must be
    pure). *)

val cardinal : 'v t -> int
(** Exact only in quiescent states. *)

val bucket_count : 'v t -> int
val force_resize : 'v handle -> grow:bool -> unit

val bucket_sizes : 'v t -> int array
(** Per-bucket binding counts. Exact only in quiescent states. *)

val inspect : 'v t -> Hashset_intf.table_view
(** Structural health snapshot; see {!Hashset_intf.S.inspect}. *)

val pending_ops : 'v t -> (int * int) array
(** Always [[||]]: the lock-free map announces no operations; see
    {!Hashset_intf.S.pending_ops}. *)

val bindings : 'v t -> (int * 'v) list
(** Exact only in quiescent states. *)

val iter : (int -> 'v -> unit) -> 'v t -> unit
(** Exact only in quiescent states. *)

val fold : (int -> 'v -> 'a -> 'a) -> 'v t -> 'a -> 'a
(** Exact only in quiescent states. *)

val check_invariants : 'v t -> unit
