(* Lifts any injectively-intable key type onto an integer table. The
   policy — including the cooperative-migration knob
   [Policy.migration] — passes through [create] unchanged. *)
module type KEY = sig
  type t

  val to_int : t -> int
end

module Make (K : KEY) (S : Hashset_intf.S) = struct
  type t = S.t
  type handle = S.handle

  let name = S.name ^ "-keyed"
  let create = S.create
  let register = S.register
  let unregister = S.unregister
  let insert h k = S.insert h (K.to_int k)
  let remove h k = S.remove h (K.to_int k)
  let contains h k = S.contains h (K.to_int k)
  let cardinal = S.cardinal
  let bucket_count = S.bucket_count
end
