module Atomic = Nbhash_util.Nb_atomic

module Intset = Nbhash_fset.Intset
module Tm = Nbhash_telemetry.Global
module Ev = Nbhash_telemetry.Event

let site_freeze = Nbhash_telemetry.Site.register "adaptive_opt/freeze"
let site_invoke = Nbhash_telemetry.Site.register "adaptive_opt/invoke"

let infinity_prio = max_int

type wop = {
  kind : Nbhash_fset.Fset_intf.kind;
  key : int;
  resp : bool Atomic.t;
  prio : int Atomic.t;
}

type opslot = Empty | Frozen | Pending of wop

(* A bucket slot holds the wait-free FSetNode inline. *)
type wslot = Uninit | N of { elems : int array; op : opslot Atomic.t }

type hnode = {
  buckets : wslot Atomic.t array;
  flags : bool Atomic.t array;  (* per-bucket freeze intent *)
  size : int;
  mask : int;
  pred : hnode option Atomic.t;
  sweep : Sweep.t;
}

type t = {
  head : hnode Atomic.t;
  policy : Policy.t;
  count : Policy.Counter.shared;
  grows : int Atomic.t;
  shrinks : int Atomic.t;
  slots : wop Atomic.t array;
  counter : int Atomic.t;
  next_tid : int Atomic.t;
  fast_threshold : int;
  help_mask : int;
}

type handle = {
  table : t;
  tid : int;
  local : Policy.Trigger.local;
  mutable ops : int;
  mutable slow_entries : int;
}

let name = "AdaptiveOpt"

let make_op kind key ~prio =
  { kind; key; resp = Atomic.make false; prio = Atomic.make prio }

let op_is_done op = Atomic.get op.prio = infinity_prio
let fresh_node elems = N { elems; op = Atomic.make Empty }

let make_hnode ~size ~pred =
  {
    buckets = Array.init size (fun _ -> Atomic.make Uninit);
    flags = Array.init size (fun _ -> Atomic.make false);
    size;
    mask = size - 1;
    pred = Atomic.make pred;
    sweep = Sweep.make ~total:size;
  }

let create_tuned ?(policy = Policy.default) ?(max_threads = 128)
    ?(fast_threshold = 256) ?(help_period = 64) () =
  Policy.validate policy;
  if not (Nbhash_util.Bits.is_pow2 help_period) then
    invalid_arg "help_period must be a power of two";
  if fast_threshold < 1 then invalid_arg "fast_threshold < 1";
  let hn = make_hnode ~size:policy.Policy.init_buckets ~pred:None in
  Array.iter (fun b -> Atomic.set b (fresh_node [||])) hn.buckets;
  {
    head = Atomic.make hn;
    policy;
    count = Policy.Counter.make_shared ();
    grows = Atomic.make 0;
    shrinks = Atomic.make 0;
    slots =
      Array.init max_threads (fun _ ->
          Atomic.make (make_op Nbhash_fset.Fset_intf.Ins 0 ~prio:infinity_prio));
    counter = Atomic.make 0;
    next_tid = Atomic.make 0;
    fast_threshold;
    help_mask = help_period - 1;
  }

let create ?policy ?max_threads () = create_tuned ?policy ?max_threads ()

let register table =
  let tid = Atomic.fetch_and_add table.next_tid 1 in
  if tid >= Array.length table.slots then
    failwith "register: max_threads handles already registered";
  {
    table;
    tid;
    local = Policy.Trigger.make_local table.count ~seed:(0xad0 + tid);
    ops = 0;
    slow_entries = 0;
  }

let unregister h = Policy.Trigger.flush h.local
let slow_path_entries h = h.slow_entries

(* --- The cooperative wait-free FSet protocol, inlined on slots. --- *)

let help_finish slot =
  match Atomic.get slot with
  | Uninit -> ()
  | N n as cur -> (
    match Atomic.get n.op with
    | Empty | Frozen -> ()
    | Pending op ->
      let present = Intset.mem n.elems op.key in
      let resp, elems =
        match op.kind with
        | Nbhash_fset.Fset_intf.Ins ->
          (not present, if present then n.elems else Intset.add n.elems op.key)
        | Nbhash_fset.Fset_intf.Rem ->
          (present, if present then Intset.remove n.elems op.key else n.elems)
      in
      Atomic.set op.resp resp;
      Atomic.set op.prio infinity_prio;
      ignore (Atomic.compare_and_set slot cur (fresh_node elems))
      [@nbhash.cas_ok
      "helping: all helpers derive the same successor node from the same \
       frozen (node, op) pair; exactly one CAS installs it"])

let rec do_freeze slot =
  match Atomic.get slot with
  | Uninit -> assert false
  | N n -> (
    match Atomic.get n.op with
    | Frozen -> n.elems
    | Empty ->
      if Atomic.compare_and_set n.op Empty Frozen then begin
        Tm.emit Ev.Freeze;
        n.elems
      end
      else begin
        Tm.cas_retry site_freeze;
        do_freeze slot
      end
    | Pending _ ->
      help_finish slot;
      do_freeze slot)

let freeze hn i =
  Atomic.set hn.flags.(i) true;
  do_freeze hn.buckets.(i)

let rec invoke hn i op =
  if op_is_done op then true
  else begin
    let slot = hn.buckets.(i) in
    match Atomic.get slot with
    | Uninit -> assert false
    | N n -> (
      match Atomic.get n.op with
      | Frozen -> op_is_done op
      | Empty | Pending _ ->
        if Atomic.get hn.flags.(i) then begin
          ignore (do_freeze slot);
          op_is_done op
        end
        else begin
          match Atomic.get n.op with
          | Empty ->
            if op_is_done op then true
            else if Atomic.compare_and_set n.op Empty (Pending op) then begin
              help_finish slot;
              true
            end
            else begin
              Tm.cas_retry site_invoke;
              invoke hn i op
            end
          | Frozen -> op_is_done op
          | Pending _ ->
            help_finish slot;
            invoke hn i op
        end)
  end

let slot_member slot k =
  match Atomic.get slot with
  | Uninit -> assert false
  | N n -> (
    match Atomic.get n.op with
    | Pending op when op.key = k -> op.kind = Nbhash_fset.Fset_intf.Ins
    | Empty | Frozen | Pending _ -> Intset.mem n.elems k)

(* Logical contents of a slot, pending operation included. *)
let slot_elems slot =
  match Atomic.get slot with
  | Uninit -> assert false
  | N n -> (
    match Atomic.get n.op with
    | Empty | Frozen -> n.elems
    | Pending op -> (
      let present = Intset.mem n.elems op.key in
      match op.kind with
      | Nbhash_fset.Fset_intf.Ins ->
        if present then n.elems else Intset.add n.elems op.key
      | Nbhash_fset.Fset_intf.Rem ->
        if present then Intset.remove n.elems op.key else n.elems))

(* --- Table scaffolding (Figure 2), on the flattened layout. --- *)

let init_bucket hn i =
  (match (Atomic.get hn.buckets.(i), Atomic.get hn.pred) with
  | Uninit, Some s ->
    let elems =
      if hn.size = s.size * 2 then
        Intset.filter_mask (freeze s (i land s.mask)) ~mask:hn.mask ~target:i
      else
        Intset.disjoint_union (freeze s i) (freeze s (i + hn.size))
    in
    if Atomic.compare_and_set hn.buckets.(i) Uninit (fresh_node elems)
    then begin
      Tm.emit_arg Ev.Bucket_init i;
      Tm.add Ev.Keys_migrated (Array.length elems)
    end
  | (N _ | Uninit), _ -> ());
  ()

let ensure_bucket hn k =
  let i = k land hn.mask in
  (match Atomic.get hn.buckets.(i) with
  | Uninit -> init_bucket hn i
  | N _ -> ());
  i

(* Cooperative sweep hooks (see Sweep and Table_core). *)
let sweep_migrate hn i = init_bucket hn i
let sweep_complete hn () = Atomic.set hn.pred None

let help_migration t hn =
  let m = t.policy.Policy.migration in
  if m.Policy.eager && Atomic.get hn.pred <> None then
    Sweep.help hn.sweep ~chunk:m.Policy.chunk
      ~max_helpers:m.Policy.max_helpers ~migrate:(sweep_migrate hn)
      ~on_complete:(sweep_complete hn)

let resize t grow =
  let hn = Atomic.get t.head in
  let within_bounds =
    if grow then hn.size * 2 <= t.policy.Policy.max_buckets
    else hn.size / 2 >= t.policy.Policy.min_buckets
  in
  if (hn.size > 1 || grow) && within_bounds then begin
    let start_ns = Tm.span_begin Ev.Resize_span in
    let m = t.policy.Policy.migration in
    if m.Policy.eager && Atomic.get hn.pred <> None then
      Sweep.drain hn.sweep ~chunk:m.Policy.chunk ~migrate:(sweep_migrate hn)
        ~on_complete:(sweep_complete hn);
    for i = 0 to hn.size - 1 do
      init_bucket hn i
    done;
    if m.Policy.eager then Sweep.finish hn.sweep;
    Atomic.set hn.pred None
    [@nbhash.cas_ok
    "one-way Some -> None: every writer publishes the same final value \
     once the sweep is complete"];
    let size = if grow then hn.size * 2 else hn.size / 2 in
    let hn' = make_hnode ~size ~pred:(Some hn) in
    if Atomic.compare_and_set t.head hn hn' then begin
      ignore (Atomic.fetch_and_add (if grow then t.grows else t.shrinks) 1);
      Tm.emit_arg (if grow then Ev.Resize_grow else Ev.Resize_shrink) size;
      Tm.record_span Ev.Resize_span ~start_ns
    end
    else Tm.span_abort Ev.Resize_span
  end

(* --- Announce-and-help (Figure 4) and the fast path. --- *)

let drive t op =
  let continue = ref (not (op_is_done op)) in
  while !continue do
    let hn = Atomic.get t.head in
    let i = ensure_bucket hn op.key in
    if invoke hn i op then continue := false
    else continue := not (op_is_done op)
  done

let help_up_to t ~prio =
  for tid = 0 to Array.length t.slots - 1 do
    let op = Atomic.get t.slots.(tid) in
    if Atomic.get op.prio <= prio then begin
      if not (op_is_done op) then Tm.emit_arg Ev.Help_op tid;
      drive t op
    end
  done

(* Announce-array snapshot for the liveness watchdog; see
   Wf_common.announced. *)
let pending_ops t =
  let out = ref [] in
  for tid = Array.length t.slots - 1 downto 0 do
    let op = Atomic.get t.slots.(tid) in
    let p = Atomic.get op.prio in
    if p <> infinity_prio && not (op_is_done op) then out := (tid, p) :: !out
  done;
  Array.of_list !out

let help_lowest t =
  let best = ref None in
  Array.iter
    (fun slot ->
      let op = Atomic.get slot in
      let p = Atomic.get op.prio in
      if p <> infinity_prio then
        match !best with
        | Some (bp, _) when bp <= p -> ()
        | Some _ | None -> best := Some (p, op))
    t.slots;
  match !best with
  | None -> ()
  | Some (_, op) ->
    Tm.emit Ev.Help_op;
    drive t op

let slow_apply h kind k =
  let t = h.table in
  Tm.emit_arg Ev.Slowpath_entry k;
  let start_ns = Tm.span_begin Ev.Slowpath_span in
  let prio = Atomic.fetch_and_add t.counter 1 in
  let myop = make_op kind k ~prio in
  Atomic.set t.slots.(h.tid) myop;
  help_up_to t ~prio;
  let resp = Atomic.get myop.resp in
  Tm.record_span Ev.Slowpath_span ~start_ns;
  resp

let fast_apply t kind k =
  let op = make_op kind k ~prio:0 in
  let rec attempt failures =
    if failures >= t.fast_threshold then None
    else begin
      let hn = Atomic.get t.head in
      let i = ensure_bucket hn k in
      if invoke hn i op then Some (Atomic.get op.resp)
      else attempt (failures + 1)
    end
  in
  attempt 0

let apply h kind k =
  let t = h.table in
  h.ops <- h.ops + 1;
  if h.ops land t.help_mask = 0 then help_lowest t;
  Tm.emit Ev.Fastpath_entry;
  match fast_apply t kind k with
  | Some resp -> resp
  | None ->
    h.slow_entries <- h.slow_entries + 1;
    slow_apply h kind k

(* --- Policy triggers. --- *)

let slot_size slot =
  match Atomic.get slot with
  | Uninit -> 0
  | N n -> Array.length n.elems

let after_insert h k ~resp =
  Policy.Trigger.note_insert h.local ~resp;
  let hn = Atomic.get h.table.head in
  help_migration h.table hn;
  if
    Policy.Trigger.want_grow h.table.policy h.local ~cur_buckets:hn.size
      ~migrating:(Atomic.get hn.pred <> None)
      ~inserted_bucket_size:(fun () -> slot_size hn.buckets.(k land hn.mask))
  then resize h.table true

let after_remove h ~resp =
  Policy.Trigger.note_remove h.local ~resp;
  let hn = Atomic.get h.table.head in
  help_migration h.table hn;
  if
    Policy.Trigger.want_shrink h.table.policy h.local ~cur_buckets:hn.size
      ~migrating:(Atomic.get hn.pred <> None)
      ~sample_bucket_size:(fun i -> slot_size hn.buckets.(i))
  then resize h.table false

(* --- Public operations. --- *)

let insert h k =
  Hashset_intf.check_key k;
  let resp = apply h Nbhash_fset.Fset_intf.Ins k in
  after_insert h k ~resp;
  resp

let remove h k =
  Hashset_intf.check_key k;
  let resp = apply h Nbhash_fset.Fset_intf.Rem k in
  after_remove h ~resp;
  resp

let contains h k =
  Hashset_intf.check_key k;
  let t = h.table in
  let hn = Atomic.get t.head in
  match Atomic.get hn.buckets.(k land hn.mask) with
  | N _ -> slot_member hn.buckets.(k land hn.mask) k
  | Uninit -> (
    Tm.emit_arg Ev.Contains_pred k;
    match Atomic.get hn.pred with
    | Some s -> slot_member s.buckets.(k land s.mask) k
    | None -> slot_member hn.buckets.(k land hn.mask) k)

let bucket_count t = (Atomic.get t.head).size

let resize_stats t =
  { Hashset_intf.grows = Atomic.get t.grows; shrinks = Atomic.get t.shrinks }

let force_resize h ~grow = resize h.table grow

let bucket_set hn i =
  match Atomic.get hn.buckets.(i) with
  | N _ -> slot_elems hn.buckets.(i)
  | Uninit -> (
    match Atomic.get hn.pred with
    | Some s ->
      if hn.size = s.size * 2 then
        Intset.filter_mask
          (slot_elems s.buckets.(i land s.mask))
          ~mask:hn.mask ~target:i
      else
        Intset.disjoint_union
          (slot_elems s.buckets.(i))
          (slot_elems s.buckets.(i + hn.size))
    | None -> slot_elems hn.buckets.(i))

let elements t =
  let hn = Atomic.get t.head in
  Array.concat (List.init hn.size (bucket_set hn))

let bucket_sizes t =
  let hn = Atomic.get t.head in
  Array.init hn.size (fun i -> Array.length (bucket_set hn i))

let cardinal t = Array.length (elements t)

(* Structural health snapshot; see Table_core.inspect_with. A slot is
   frozen when its operation field reads [Frozen] — only predecessor
   buckets freeze, so a quiescent table reports 0. *)
let inspect t =
  let hn = Atomic.get t.head in
  let sizes = Array.init hn.size (fun i -> Array.length (bucket_set hn i)) in
  let initialized = ref 0 in
  let frozen = ref 0 in
  let scan ~count_init b =
    match Atomic.get b with
    | N n -> (
      if count_init then incr initialized;
      match Atomic.get n.op with
      | Frozen -> incr frozen
      | Empty | Pending _ -> ())
    | Uninit -> ()
  in
  Array.iter (scan ~count_init:true) hn.buckets;
  let pred = Atomic.get hn.pred in
  (match pred with
  | Some s -> Array.iter (scan ~count_init:false) s.buckets
  | None -> ());
  let migrating = pred <> None in
  Hashset_intf.make_view ~sizes ~frozen_buckets:!frozen ~migrating
    ~migration_progress:
      (if migrating then float_of_int !initialized /. float_of_int hn.size
       else 1.0)
    ~announce_pending:(Array.length (pending_ops t))

let fail fmt = Format.kasprintf failwith fmt

let check_invariants t =
  let hn = Atomic.get t.head in
  (match Atomic.get hn.pred with
  | Some s ->
    if hn.size <> s.size * 2 && hn.size * 2 <> s.size then
      fail "head size %d not double or half of pred size %d" hn.size s.size;
    Array.iteri
      (fun j b ->
        match Atomic.get b with
        | Uninit -> fail "pred bucket %d is uninit" j
        | N _ -> ())
      s.buckets
  | None ->
    Array.iteri
      (fun i b ->
        match Atomic.get b with
        | Uninit -> fail "bucket %d uninit in a table without predecessor" i
        | N _ -> ())
      hn.buckets);
  Array.iteri
    (fun i b ->
      match Atomic.get b with
      | Uninit -> ()
      | N n ->
        Array.iter
          (fun k ->
            if k land hn.mask <> i then
              fail "key %d misplaced in bucket %d of %d" k i hn.size)
          n.elems)
    hn.buckets;
  let all = elements t in
  let seen = Hashtbl.create (Array.length all) in
  Array.iter
    (fun k ->
      if Hashtbl.mem seen k then fail "duplicate key %d in abstract set" k;
      Hashtbl.add seen k ())
    all
