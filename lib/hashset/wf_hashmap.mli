(** A wait-free dynamic-sized hash map: the {!Hashmap} extension with
    the announce-and-help protocol of the paper's section 5 applied to
    map operations.

    Buckets are cooperative wait-free FSetNodes over immutable
    (key, value) pair arrays — the Figure 6 protocol with the set
    payload generalized — and every [put]/[remove]/[update] is
    announced with a fetch-and-increment priority and helped by
    younger operations, so each completes in a bounded number of steps
    even under continuous resizing. [update]'s function may be run by
    helping threads and possibly more than once against the same
    state; it must be pure.

    Keys are non-negative ints below [2^61]; values arbitrary. Handles
    must not be shared between domains. *)

type 'v t
type 'v handle

val create : ?policy:Policy.t -> ?max_threads:int -> unit -> 'v t
val register : 'v t -> 'v handle

val unregister : 'v handle -> unit
(** Flush pending approximate-count deltas; the handle must not be
    used afterwards. *)

val put : 'v handle -> int -> 'v -> 'v option
(** Bind the key; returns the previous binding. *)

val get : 'v handle -> int -> 'v option
val mem : 'v handle -> int -> bool

val remove : 'v handle -> int -> 'v option
(** Unbind the key; returns the removed binding. *)

val update : 'v handle -> int -> ('v option -> 'v) -> unit
(** Atomically bind the key to [f] of its current binding. [f] must be
    pure (it may be evaluated several times, including by helpers). *)

val cardinal : 'v t -> int
val bucket_count : 'v t -> int
val resize_stats : 'v t -> Hashset_intf.resize_stats
val force_resize : 'v handle -> grow:bool -> unit

val bucket_sizes : 'v t -> int array
(** Per-bucket binding counts. Exact only in quiescent states. *)

val inspect : 'v t -> Hashset_intf.table_view
(** Structural health snapshot; see {!Hashset_intf.S.inspect}. *)

val pending_ops : 'v t -> (int * int) array
(** Announced-but-incomplete operations as [(tid, priority)] pairs:
    the snapshot a {!Nbhash_telemetry.Watchdog} source samples; see
    {!Hashset_intf.S.pending_ops}. *)

val bindings : 'v t -> (int * 'v) list
(** Exact only in quiescent states. *)

val check_invariants : 'v t -> unit
