module Make (S : Hashset_intf.S) = struct
  include S

  let of_list ?policy keys =
    let t = S.create ?policy () in
    let h = S.register t in
    List.iter (fun k -> ignore (S.insert h k)) keys;
    (t, h)

  let add_seq h seq =
    Seq.fold_left (fun n k -> if S.insert h k then n + 1 else n) 0 seq

  let remove_seq h seq =
    Seq.fold_left (fun n k -> if S.remove h k then n + 1 else n) 0 seq

  let iter f t = Array.iter f (S.elements t)
  let fold f init t = Array.fold_left f init (S.elements t)

  let to_list t =
    let a = S.elements t in
    Array.sort compare a;
    Array.to_list a

  let equal a b = to_list a = to_list b

  let subset a b =
    let in_b = Hashtbl.create 64 in
    Array.iter (fun k -> Hashtbl.replace in_b k ()) (S.elements b);
    Array.for_all (Hashtbl.mem in_b) (S.elements a)

  let union_into h src = add_seq h (Array.to_seq (S.elements src))
  let diff_into h src = remove_seq h (Array.to_seq (S.elements src))
end
