module Atomic = Nbhash_util.Nb_atomic

module Make (F : Nbhash_fset.Fset_intf.S) : Hashset_intf.S = struct
  module Core = Table_core.Make (F)
  module Tm = Nbhash_telemetry.Global
  module Ev = Nbhash_telemetry.Event

  type t = Core.t
  type handle = { table : t; local : Policy.Trigger.local }

  let name = "LF" ^ String.capitalize_ascii F.id
  let site_apply = Nbhash_telemetry.Site.register ("lf_hashset(" ^ F.id ^ ")/apply")
  let seed = Atomic.make 0x5eed

  let create ?(policy = Policy.default) ?max_threads () =
    ignore max_threads;
    Core.create policy

  let register table =
    {
      table;
      local =
        Policy.Trigger.make_local table.Core.count
          ~seed:(Atomic.fetch_and_add seed 1);
    }

  let unregister h = Policy.Trigger.flush h.local

  (* APPLY (lines 29-37): retry against the current head until the
     operation lands in a mutable bucket. Each retry implies a resize
     completed in the interim. *)
  let rec apply t op k =
    let hn = Atomic.get t.Core.head in
    let b = Core.bucket_for hn k in
    if F.invoke b op then F.get_response op
    else begin
      (* The bucket froze under us: a resize is being absorbed. *)
      Tm.cas_retry site_apply;
      apply t op k
    end

  let insert h k =
    Hashset_intf.check_key k;
    let resp = apply h.table (F.make_op Nbhash_fset.Fset_intf.Ins k) k in
    Core.after_insert h.table h.local ~key:k ~resp;
    resp

  let remove h k =
    Hashset_intf.check_key k;
    let resp = apply h.table (F.make_op Nbhash_fset.Fset_intf.Rem k) k in
    Core.after_remove h.table h.local ~resp;
    resp

  let contains h k =
    Hashset_intf.check_key k;
    Core.contains h.table k

  let bucket_count = Core.bucket_count
  let resize_stats = Core.resize_stats
  let bucket_sizes = Core.bucket_sizes
  let force_resize h ~grow = Core.resize h.table grow
  let cardinal = Core.cardinal
  let elements = Core.elements
  let check_invariants = Core.check_invariants
  let inspect t = Core.inspect_with t ~announce_pending:0
  let pending_ops _ = [||]
end
