(** AdaptiveOpt: the adaptive (Fastpath/Slowpath) hash set with the
    LFArrayOpt flattening applied (paper section 8, "AdaptiveOpt
    applies the optimizations from LFArrayOpt to Adaptive").

    Each bucket slot holds the cooperative wait-free FSetNode
    directly — an immutable element array plus the operation
    synchronization slot — and the per-bucket freeze flags live in a
    parallel array of the HNode, eliminating the FSet wrapper object
    of [Adaptive_hashset.Make (Nbhash_fset.Wf_array_fset)]. *)

include Hashset_intf.S

val create_tuned :
  ?policy:Policy.t ->
  ?max_threads:int ->
  ?fast_threshold:int ->
  ?help_period:int ->
  unit ->
  t

val slow_path_entries : handle -> int
