module Make (F : Nbhash_fset.Fset_intf.WF) : Hashset_intf.S = struct
  module W = Wf_common.Make (F)

  type t = W.t
  type handle = W.handle

  let name =
    "WF"
    ^ String.capitalize_ascii
        (* F.id is "wf-array" / "wf-list"; strip the prefix. *)
        (match String.index_opt F.id '-' with
        | Some i -> String.sub F.id (i + 1) (String.length F.id - i - 1)
        | None -> F.id)

  let create ?(policy = Policy.default) ?(max_threads = 128) () =
    W.create_t policy max_threads

  let register = W.register
  let unregister = W.unregister

  let insert h k =
    Hashset_intf.check_key k;
    let resp = W.slow_apply h Nbhash_fset.Fset_intf.Ins k in
    W.after_insert h k ~resp;
    resp

  let remove h k =
    Hashset_intf.check_key k;
    let resp = W.slow_apply h Nbhash_fset.Fset_intf.Rem k in
    W.after_remove h ~resp;
    resp

  let contains h k =
    Hashset_intf.check_key k;
    W.Core.contains h.W.table.W.core k

  let bucket_count t = W.Core.bucket_count t.W.core
  let resize_stats t = W.Core.resize_stats t.W.core
  let bucket_sizes t = W.Core.bucket_sizes t.W.core
  let force_resize h ~grow = W.Core.resize h.W.table.W.core grow
  let cardinal t = W.Core.cardinal t.W.core
  let elements t = W.Core.elements t.W.core
  let check_invariants t = W.Core.check_invariants t.W.core

  let inspect t =
    W.Core.inspect_with t.W.core
      ~announce_pending:(Array.length (W.announced t))

  let pending_ops = W.announced
end
