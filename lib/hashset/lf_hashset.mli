(** The lock-free dynamic-sized hash set of Figure 2, as a functor
    over the freezable-set implementation used for buckets.

    [Make (Nbhash_fset.Lf_array_fset)] is the paper's LFArray table;
    [Make (Nbhash_fset.Lf_list_fset)] is LFList. Inserts and removes
    retry only when their bucket was frozen by a concurrent resize,
    which implies system-wide progress (paper section 4.3). *)

module Make (F : Nbhash_fset.Fset_intf.S) : Hashset_intf.S
