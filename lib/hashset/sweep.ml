(** The cooperative migration sweep (System 12 in DESIGN.md).

    A resize installs a new HNode whose buckets are all nil; the paper
    migrates them lazily, one [init_bucket] per first touch. This
    module spreads that work: each HNode carries a sweep state, and
    while the HNode still has a predecessor, update operations passing
    through the table claim contiguous chunks of bucket indices from
    the shared [cursor] and migrate them eagerly, work-stealing style.
    The lazy path is untouched and remains the correctness backstop —
    a chunk claim only ever replays the same idempotent
    freeze-then-CAS [init_bucket] step, so racing a claimed chunk
    against a lazy toucher (or another chunk) is benign: the CAS
    admits exactly one installer per bucket.

    Progress: the claimer of a chunk may stall indefinitely without
    blocking anyone. The cursor hands each index out once, but the
    resizing thread never waits for outstanding chunks — after
    draining the cursor it re-runs the idempotent migration loop over
    every index itself, so full migration completes without any help
    (the nonblocking progress argument of the paper's RESIZE is
    unchanged).

    Invariants, numbered continuing the paper's:
    - claim-then-freeze ordering: an index is frozen/migrated only
      after the cursor fetch that hands it out (or by the lazy/drain
      backstop); the cursor never retreats, so no index is claimed
      twice.
    - idempotent chunk replay: re-migrating an index already handled
      by the lazy path (or a racing chunk) is a no-op, because
      [init_bucket] re-checks nil before its install CAS.
    - early predecessor cut: when [processed] reaches [total], every
      bucket of the HNode is initialized, so clearing [pred] is
      exactly the Invariant 11 condition — the completing claimer may
      do it without waiting for the next resize. *)

module Atomic = Nbhash_util.Nb_atomic
module Tm = Nbhash_telemetry.Global
module Ev = Nbhash_telemetry.Event

type t = {
  cursor : int Atomic.t;  (** next unclaimed bucket index *)
  total : int;  (** bucket count of the HNode being migrated into *)
  active : int Atomic.t;  (** helpers currently inside a chunk *)
  processed : int Atomic.t;  (** indices whose chunk finished migrating *)
  claimers : int Atomic.t;
      (** bitmask of (domain id mod 62) over the domains that claimed
          at least one chunk — the participation measure *)
  completed : bool Atomic.t;  (** participation observed / pred cut done *)
}

let make ~total =
  {
    cursor = Atomic.make 0;
    total;
    active = Atomic.make 0;
    processed = Atomic.make 0;
    claimers = Atomic.make 0;
    completed = Atomic.make false;
  }

let exhausted t = Atomic.get t.cursor >= t.total

let note_claimer t =
  let bit = 1 lsl ((Domain.self () :> int) mod 62) in
  let rec set () =
    let cur = Atomic.get t.claimers in
    if cur land bit = 0 && not (Atomic.compare_and_set t.claimers cur (cur lor bit))
    then set ()
  in
  set ()

let popcount =
  let rec go acc v = if v = 0 then acc else go (acc + (v land 1)) (v lsr 1) in
  go 0

(* Number of distinct domains that have claimed at least one chunk so
   far (modulo the 62-bit fold, which only ever under-counts). *)
let claimant_count t = popcount (Atomic.get t.claimers)

(* First caller wins; records how many distinct domains took part.
   Claimed-chunk completion and the resizer's drain both race here, so
   participation is observed exactly once per migration. *)
let observe_participation t =
  if
    Atomic.get t.claimers <> 0
    && Atomic.compare_and_set t.completed false true
  then Tm.observe Ev.Sweep_helpers (claimant_count t)

(* Claim one chunk of [chunk] indices and migrate it with the
   idempotent per-index [migrate]. Returns [false] iff the cursor was
   already exhausted. [on_complete] fires on the call that processes
   the last outstanding index — every bucket is then initialized, so
   the caller may cut the predecessor loose early. *)
let claim_chunk t ~chunk ~migrate ~on_complete =
  let start = Atomic.fetch_and_add t.cursor chunk in
  if start >= t.total then false
  else begin
    let stop = min t.total (start + chunk) in
    Tm.emit_arg Ev.Sweep_chunk_claimed start;
    note_claimer t;
    let start_ns = Tm.span_begin Ev.Sweep_span in
    for i = start to stop - 1 do
      migrate i
    done;
    Tm.add Ev.Sweep_buckets_migrated (stop - start);
    Tm.record_span Ev.Sweep_span ~start_ns;
    (* Attribute this chunk's duration to the claiming domain so the
       KV server can charge migration help to the request that did it
       (server_help_ns). [start_ns] is 0 iff no probe is recording, in
       which case nothing was timed and nothing is attributed. *)
    if start_ns <> 0 then
      Nbhash_telemetry.Helptime.add (Nbhash_util.Clock.now_ns () - start_ns);
    let processed = stop - start in
    if Atomic.fetch_and_add t.processed processed + processed = t.total
    then begin
      on_complete ();
      observe_participation t
    end;
    true
  end

(* One helping step, called from operations passing through a
   migrating table: claim at most one chunk, bounded to [max_helpers]
   concurrent sweepers. Over- then under-counting [active] around the
   capacity check is the standard optimistic pattern: a burst may
   momentarily read over the cap and simply decline to help. *)
let help t ~chunk ~max_helpers ~migrate ~on_complete =
  if not (exhausted t) then begin
    let n = Atomic.fetch_and_add t.active 1 in
    if n < max_helpers then
      ignore (claim_chunk t ~chunk ~migrate ~on_complete);
    ignore (Atomic.fetch_and_add t.active (-1))
  end

(* The resizing thread's share: claim everything still on the cursor.
   Not subject to [max_helpers] — the resizer must be able to finish
   the migration alone. In-flight chunks of stalled helpers are NOT
   waited for; the caller must follow with its own idempotent
   full-table migration loop. *)
let drain t ~chunk ~migrate ~on_complete =
  while claim_chunk t ~chunk ~migrate ~on_complete do
    ()
  done

(* Resizer epilogue, after its catch-up loop: make sure participation
   is observed even when a stalled helper still holds the last chunk
   (its own completion attempt will then lose the [completed] CAS). *)
let finish t = observe_participation t
