(** Lift an integer hash set to arbitrary keys via an injective
    integer encoding.

    The paper's tables are integer sets; many practical key types
    (enums, characters, IPv4 addresses, small tuples, short ASCII
    tags) embed injectively into 61-bit non-negative integers, which
    preserves exact set semantics — unlike hashing, which would
    conflate colliding keys. For non-injective key types, use
    {!Hashmap} and store the key itself. *)

module type KEY = sig
  type t

  val to_int : t -> int
  (** Must be injective, and land in [0, 2^61). *)
end

module Make (K : KEY) (S : Hashset_intf.S) : sig
  type t
  type handle

  val name : string
  val create : ?policy:Policy.t -> ?max_threads:int -> unit -> t
  val register : t -> handle
  val unregister : handle -> unit
  val insert : handle -> K.t -> bool
  val remove : handle -> K.t -> bool
  val contains : handle -> K.t -> bool
  val cardinal : t -> int
  val bucket_count : t -> int
end
