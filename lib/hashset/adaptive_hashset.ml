module Atomic = Nbhash_util.Nb_atomic

module Make (F : Nbhash_fset.Fset_intf.WF) = struct
  module W = Wf_common.Make (F)
  module Tm = Nbhash_telemetry.Global
  module Ev = Nbhash_telemetry.Event

  type t = { w : W.t; fast_threshold : int; help_mask : int }
  type handle = { wh : W.handle; t : t }

  let name =
    "Adaptive"
    ^
    match String.index_opt F.id '-' with
    | Some i ->
      let rep = String.sub F.id (i + 1) (String.length F.id - i - 1) in
      if rep = "array" then "" else "-" ^ rep
    | None -> "-" ^ F.id

  let create_tuned ?(policy = Policy.default) ?(max_threads = 128)
      ?(fast_threshold = 256) ?(help_period = 64) () =
    if not (Nbhash_util.Bits.is_pow2 help_period) then
      invalid_arg "help_period must be a power of two";
    if fast_threshold < 1 then invalid_arg "fast_threshold < 1";
    {
      w = W.create_t policy max_threads;
      fast_threshold;
      help_mask = help_period - 1;
    }

  let create ?policy ?max_threads () = create_tuned ?policy ?max_threads ()
  let register t = { wh = W.register t.w; t }
  let unregister h = W.unregister h.wh
  let slow_path_entries h = h.wh.W.slow_entries

  (* Fast path: the lock-free APPLY, with a private (never-announced)
     operation. The operation is abandoned only when it was never
     applied — invoke returning false means the bucket was frozen and
     the op not installed — so retrying on the slow path with a fresh
     op cannot double-apply. *)
  let fast_apply t kind k =
    let op = F.make_op kind k ~prio:0 in
    let rec attempt failures =
      if failures >= t.fast_threshold then None
      else begin
        let hn = Atomic.get t.w.W.core.W.Core.head in
        let b = W.Core.bucket_for hn k in
        if F.invoke b op then Some (F.get_response op)
        else attempt (failures + 1)
      end
    in
    attempt 0

  let apply h kind k =
    let t = h.t in
    let wh = h.wh in
    wh.W.ops <- wh.W.ops + 1;
    if wh.W.ops land t.help_mask = 0 then W.help_lowest t.w;
    Tm.emit Ev.Fastpath_entry;
    match fast_apply t kind k with
    | Some resp -> resp
    | None ->
      wh.W.slow_entries <- wh.W.slow_entries + 1;
      W.slow_apply wh kind k

  let insert h k =
    Hashset_intf.check_key k;
    let resp = apply h Nbhash_fset.Fset_intf.Ins k in
    W.after_insert h.wh k ~resp;
    resp

  let remove h k =
    Hashset_intf.check_key k;
    let resp = apply h Nbhash_fset.Fset_intf.Rem k in
    W.after_remove h.wh ~resp;
    resp

  let contains h k =
    Hashset_intf.check_key k;
    W.Core.contains h.t.w.W.core k

  let bucket_count t = W.Core.bucket_count t.w.W.core
  let resize_stats t = W.Core.resize_stats t.w.W.core
  let bucket_sizes t = W.Core.bucket_sizes t.w.W.core
  let force_resize h ~grow = W.Core.resize h.t.w.W.core grow
  let cardinal t = W.Core.cardinal t.w.W.core
  let elements t = W.Core.elements t.w.W.core
  let check_invariants t = W.Core.check_invariants t.w.W.core

  let inspect t =
    W.Core.inspect_with t.w.W.core
      ~announce_pending:(Array.length (W.announced t.w))

  let pending_ops t = W.announced t.w
end
