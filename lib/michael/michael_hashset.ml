module Policy = Nbhash.Policy
module Hashset_intf = Nbhash.Hashset_intf
module Ordered_list = Nbhash_splitorder.Ordered_list

type t = { buckets : Ordered_list.node array; mask : int }
type handle = t

let name = "Michael"

let create ?(policy = Policy.default) ?max_threads () =
  ignore max_threads;
  Policy.validate policy;
  let size = policy.Policy.init_buckets in
  { buckets = Array.init size (fun _ -> Ordered_list.make_head ()); mask = size - 1 }

let register t = t
let unregister _ = ()

(* Keys are stored directly (sorted by value) in per-bucket lists;
   the sentinel head of each list carries [min_int]. *)
let insert t k =
  Hashset_intf.check_key k;
  Ordered_list.insert ~start:t.buckets.(k land t.mask) k

let remove t k =
  Hashset_intf.check_key k;
  Ordered_list.remove ~start:t.buckets.(k land t.mask) k

let contains t k =
  Hashset_intf.check_key k;
  Ordered_list.mem ~start:t.buckets.(k land t.mask) k

let bucket_count t = t.mask + 1
let resize_stats _ = { Hashset_intf.grows = 0; shrinks = 0 }
let force_resize _ ~grow:_ = ()

let elements t =
  Array.to_list t.buckets
  |> List.concat_map (fun head -> Ordered_list.keys_from ~start:head ())
  |> Array.of_list

let cardinal t = Array.length (elements t)

let bucket_sizes t =
  Array.map
    (fun head -> List.length (Ordered_list.keys_from ~start:head ()))
    t.buckets

let fail fmt = Format.kasprintf failwith fmt

let check_invariants t =
  Array.iteri
    (fun i head ->
      Ordered_list.check_sorted ~start:head;
      List.iter
        (fun k ->
          if k land t.mask <> i then
            fail "key %d misplaced in bucket %d of %d" k i (t.mask + 1))
        (Ordered_list.keys_from ~start:head ()))
    t.buckets

(* No announce array: nothing for the liveness watchdog to sample. *)
let pending_ops _ = [||]

(* Fixed-size and freeze-free: the census is the whole story. *)
let inspect t =
  Hashset_intf.make_view ~sizes:(bucket_sizes t) ~frozen_buckets:0
    ~migrating:false ~migration_progress:1.0 ~announce_pending:0
