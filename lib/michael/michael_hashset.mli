(** Michael's classic lock-free hash table: a fixed-size array of
    lock-free ordered lists (the first practical nonblocking hash
    table, cited as [15] in the paper).

    Included as a non-resizable reference point: it shows what the
    dynamic tables give up (nothing, when presized correctly) and what
    they gain (graceful behaviour when the guess is wrong). The bucket
    array is fixed at [policy.init_buckets]; [force_resize] is a
    no-op in both directions. *)

include Nbhash.Hashset_intf.S
