(** The lock-free dynamic-sized hash map over arbitrary key types:
    {!Generic_set}'s layout with (key, value) pair buckets, i.e. the
    paper's future-work map extension made generic. Collision-safe;
    [K.hash] must be pure and stable. *)

module Make (K : Hashtbl.HashedType) : sig
  type 'v t
  type 'v handle

  val create : ?policy:Nbhash.Policy.t -> unit -> 'v t
  val register : 'v t -> 'v handle

  val unregister : 'v handle -> unit
  (** Flush pending approximate-count deltas; the handle must not be
      used afterwards. *)

  val put : 'v handle -> K.t -> 'v -> 'v option
  (** Bind the key; returns the previous binding. *)

  val get : 'v handle -> K.t -> 'v option
  val mem : 'v handle -> K.t -> bool

  val remove : 'v handle -> K.t -> 'v option
  (** Unbind the key; returns the removed binding. *)

  val update : 'v handle -> K.t -> ('v option -> 'v) -> unit
  (** Atomically bind the key to [f] of its current binding; [f] must
      be pure. *)

  val cardinal : 'v t -> int
  val bindings : 'v t -> (K.t * 'v) list
  val bucket_count : 'v t -> int
  val force_resize : 'v handle -> grow:bool -> unit
  val check_invariants : 'v t -> unit
end
