(** The lock-free dynamic-sized hash set over arbitrary key types.

    The paper's algorithms work on integer sets; this functor applies
    the same freeze-and-migrate design (LFArrayOpt layout: flat
    copy-on-write key arrays inlined in the bucket slots) to any
    hashable key, handling collisions correctly — two keys with equal
    hashes coexist, unlike the injective-encoding shortcut of
    {!Nbhash.Keyed}. Buckets are addressed and split/merged by hash
    bits, so [K.hash] must be pure and stable. *)

module Make (K : Hashtbl.HashedType) : sig
  type t
  type handle

  val create : ?policy:Nbhash.Policy.t -> unit -> t
  val register : t -> handle

  val unregister : handle -> unit
  (** Flush pending approximate-count deltas; the handle must not be
      used afterwards. *)

  val add : handle -> K.t -> bool
  (** [true] iff the key was absent. *)

  val remove : handle -> K.t -> bool
  (** [true] iff the key was present. *)

  val mem : handle -> K.t -> bool
  val cardinal : t -> int
  val elements : t -> K.t list
  val bucket_count : t -> int
  val force_resize : handle -> grow:bool -> unit
  val check_invariants : t -> unit
end
