module Atomic = Nbhash_util.Nb_atomic
module Policy = Nbhash.Policy
module Sweep = Nbhash.Sweep
module Tm = Nbhash_telemetry.Global

(* File-scope so every Make instantiation shares one id per loop. *)
let site_freeze = Nbhash_telemetry.Site.register "generic_set/freeze_slot"
let site_stale = Nbhash_telemetry.Site.register "generic_set/stale_bucket"
let site_add = Nbhash_telemetry.Site.register "generic_set/add"
let site_del = Nbhash_telemetry.Site.register "generic_set/del"

module Make (K : Hashtbl.HashedType) = struct
  type bslot = Uninit | Node of { elems : K.t array; ok : bool }

  type hnode = {
    buckets : bslot Atomic.t array;
    size : int;
    mask : int;
    pred : hnode option Atomic.t;
    sweep : Sweep.t;
  }

  type t = {
    head : hnode Atomic.t;
    policy : Policy.t;
    count : Policy.Counter.shared;
  }

  type handle = { table : t; local : Policy.Trigger.local }

  let hash k = K.hash k land max_int

  let mem_elems elems k =
    let n = Array.length elems in
    let rec go i = i < n && (K.equal elems.(i) k || go (i + 1)) in
    go 0

  let add_elems elems k =
    let n = Array.length elems in
    let b = Array.make (n + 1) k in
    Array.blit elems 0 b 0 n;
    b

  let remove_elems elems k =
    let n = Array.length elems in
    let rec index i = if K.equal elems.(i) k then i else index (i + 1) in
    let i = index 0 in
    let b = Array.sub elems 0 (n - 1) in
    if i < n - 1 then b.(i) <- elems.(n - 1);
    b
  [@@nbhash.plain_ok
    "copy-on-write: [b] is freshly allocated here and stays private until \
     published by a bucket CAS"]

  let filter_mask elems ~mask ~target =
    let keep k = hash k land mask = target in
    let count = Array.fold_left (fun c k -> if keep k then c + 1 else c) 0 elems in
    if count = Array.length elems then elems
    else begin
      let b = ref [] in
      Array.iter (fun k -> if keep k then b := k :: !b) elems;
      Array.of_list !b
    end

  let make_hnode ~size ~pred =
    {
      buckets = Array.init size (fun _ -> Atomic.make Uninit);
      size;
      mask = size - 1;
      pred = Atomic.make pred;
      sweep = Sweep.make ~total:size;
    }

  let create ?(policy = Policy.default) () =
    Policy.validate policy;
    let hn = make_hnode ~size:policy.Policy.init_buckets ~pred:None in
    Array.iter (fun b -> Atomic.set b (Node { elems = [||]; ok = true })) hn.buckets;
    { head = Atomic.make hn; policy; count = Policy.Counter.make_shared () }

  let seed = Atomic.make 0x9e1
  let register table =
    {
      table;
      local =
        Policy.Trigger.make_local table.count
          ~seed:(Atomic.fetch_and_add seed 1);
    }

  let unregister h = Policy.Trigger.flush h.local

  let rec freeze_slot slot =
    match Atomic.get slot with
    | Uninit -> assert false
    | Node n as cur ->
      if not n.ok then n.elems
      else if
        Atomic.compare_and_set slot cur (Node { elems = n.elems; ok = false })
      then n.elems
      else begin
        Tm.cas_retry site_freeze;
        freeze_slot slot
      end

  let slot_elems slot =
    match Atomic.get slot with Uninit -> assert false | Node n -> n.elems

  let init_bucket hn i =
    (match (Atomic.get hn.buckets.(i), Atomic.get hn.pred) with
    | Uninit, Some s ->
      let elems =
        if hn.size = s.size * 2 then
          filter_mask (freeze_slot s.buckets.(i land s.mask)) ~mask:hn.mask
            ~target:i
        else
          Array.append
            (freeze_slot s.buckets.(i))
            (freeze_slot s.buckets.(i + hn.size))
      in
      ignore
        (Atomic.compare_and_set hn.buckets.(i) Uninit (Node { elems; ok = true }))
      [@nbhash.cas_ok
        "bucket init: racing initializers freeze the same predecessor slots \
         and build identical contents; the first CAS publishes"]
    | (Node _ | Uninit), _ -> ());
    ()

  (* Cooperative sweep hooks (see Nbhash.Sweep and Table_core). *)
  let sweep_migrate hn i = init_bucket hn i
  let sweep_complete hn () =
    Atomic.set hn.pred None
    [@nbhash.cas_ok
      "one-way Some -> None: every writer publishes the same final value \
       once the sweep is complete"]

  let help_migration t hn =
    let m = t.policy.Policy.migration in
    if m.Policy.eager && Atomic.get hn.pred <> None then
      Sweep.help hn.sweep ~chunk:m.Policy.chunk
        ~max_helpers:m.Policy.max_helpers ~migrate:(sweep_migrate hn)
        ~on_complete:(sweep_complete hn)

  let resize t grow =
    let hn = Atomic.get t.head in
    let within_bounds =
      if grow then hn.size * 2 <= t.policy.Policy.max_buckets
      else hn.size / 2 >= t.policy.Policy.min_buckets
    in
    if (hn.size > 1 || grow) && within_bounds then begin
      let m = t.policy.Policy.migration in
      if m.Policy.eager && Atomic.get hn.pred <> None then
        Sweep.drain hn.sweep ~chunk:m.Policy.chunk
          ~migrate:(sweep_migrate hn) ~on_complete:(sweep_complete hn);
      for i = 0 to hn.size - 1 do
        init_bucket hn i
      done;
      if m.Policy.eager then Sweep.finish hn.sweep;
      Atomic.set hn.pred None
      [@nbhash.cas_ok
      "one-way Some -> None: every writer publishes the same final value \
       once the sweep is complete"];
      let size = if grow then hn.size * 2 else hn.size / 2 in
      let hn' = make_hnode ~size ~pred:(Some hn) in
      ignore (Atomic.compare_and_set t.head hn hn')
      [@nbhash.cas_ok
        "a lost race means another domain already installed a fresh table; \
         the resize trigger re-fires if more growth is needed"]
    end

  type kind = Add | Del

  let rec run_op t kind k h =
    let hn = Atomic.get t.head in
    let i = h land hn.mask in
    let slot = hn.buckets.(i) in
    match Atomic.get slot with
    | Uninit ->
      init_bucket hn i;
      run_op t kind k h
    | Node n as cur ->
      if not n.ok then begin
        Tm.cas_retry site_stale;
        run_op t kind k h
      end
      else begin
        let present = mem_elems n.elems k in
        match kind with
        | Add ->
          if present then false
          else if
            Atomic.compare_and_set slot cur
              (Node { elems = add_elems n.elems k; ok = true })
          then true
          else begin
            Tm.cas_retry site_add;
            run_op t kind k h
          end
        | Del ->
          if not present then false
          else if
            Atomic.compare_and_set slot cur
              (Node { elems = remove_elems n.elems k; ok = true })
          then true
          else begin
            Tm.cas_retry site_del;
            run_op t kind k h
          end
      end

  let slot_size slot =
    match Atomic.get slot with
    | Uninit -> 0
    | Node n -> Array.length n.elems

  let after_add h hk ~resp =
    Policy.Trigger.note_insert h.local ~resp;
    let hn = Atomic.get h.table.head in
    help_migration h.table hn;
    if
      Policy.Trigger.want_grow h.table.policy h.local ~cur_buckets:hn.size
        ~migrating:(Atomic.get hn.pred <> None)
        ~inserted_bucket_size:(fun () -> slot_size hn.buckets.(hk land hn.mask))
    then resize h.table true

  let after_del h ~resp =
    Policy.Trigger.note_remove h.local ~resp;
    let hn = Atomic.get h.table.head in
    help_migration h.table hn;
    if
      Policy.Trigger.want_shrink h.table.policy h.local ~cur_buckets:hn.size
        ~migrating:(Atomic.get hn.pred <> None)
        ~sample_bucket_size:(fun i -> slot_size hn.buckets.(i))
    then resize h.table false

  let add h k =
    let hk = hash k in
    let resp = run_op h.table Add k hk in
    after_add h hk ~resp;
    resp

  let remove h k =
    let resp = run_op h.table Del k (hash k) in
    after_del h ~resp;
    resp

  let mem h k =
    let t = h.table in
    let hn = Atomic.get t.head in
    let i = hash k land hn.mask in
    match Atomic.get hn.buckets.(i) with
    | Node n -> mem_elems n.elems k
    | Uninit -> (
      match Atomic.get hn.pred with
      | Some s -> mem_elems (slot_elems s.buckets.(hash k land s.mask)) k
      | None -> mem_elems (slot_elems hn.buckets.(i)) k)

  let bucket_count t = (Atomic.get t.head).size
  let force_resize h ~grow = resize h.table grow

  let bucket_set hn i =
    match Atomic.get hn.buckets.(i) with
    | Node n -> n.elems
    | Uninit -> (
      match Atomic.get hn.pred with
      | Some s ->
        if hn.size = s.size * 2 then
          filter_mask
            (slot_elems s.buckets.(i land s.mask))
            ~mask:hn.mask ~target:i
        else
          Array.append
            (slot_elems s.buckets.(i))
            (slot_elems s.buckets.(i + hn.size))
      | None -> slot_elems hn.buckets.(i))

  let elements t =
    let hn = Atomic.get t.head in
    List.concat_map
      (fun i -> Array.to_list (bucket_set hn i))
      (List.init hn.size Fun.id)

  let cardinal t = List.length (elements t)

  let fail fmt = Format.kasprintf failwith fmt

  let check_invariants t =
    let hn = Atomic.get t.head in
    Array.iteri
      (fun i b ->
        match Atomic.get b with
        | Uninit -> (
          match Atomic.get hn.pred with
          | None -> fail "bucket %d uninit without predecessor" i
          | Some _ -> ())
        | Node n ->
          Array.iter
            (fun k ->
              if hash k land hn.mask <> i then
                fail "key hashed to %d misplaced in bucket %d" (hash k) i)
            n.elems)
      hn.buckets;
    let all = elements t in
    List.iteri
      (fun i k ->
        List.iteri
          (fun j k' ->
            if i < j && K.equal k k' then fail "duplicate key at %d/%d" i j)
          all)
      all
end
