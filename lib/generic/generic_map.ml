module Atomic = Nbhash_util.Nb_atomic
module Policy = Nbhash.Policy
module Sweep = Nbhash.Sweep
module Tm = Nbhash_telemetry.Global

(* File-scope so every Make instantiation shares one id per loop. *)
let site_freeze = Nbhash_telemetry.Site.register "generic_map/freeze_slot"
let site_stale = Nbhash_telemetry.Site.register "generic_map/stale_bucket"
let site_update = Nbhash_telemetry.Site.register "generic_map/update"

module Make (K : Hashtbl.HashedType) = struct
  type 'v bslot = Uninit | Node of { pairs : (K.t * 'v) array; ok : bool }

  type 'v hnode = {
    buckets : 'v bslot Atomic.t array;
    size : int;
    mask : int;
    pred : 'v hnode option Atomic.t;
    sweep : Sweep.t;
  }

  type 'v t = {
    head : 'v hnode Atomic.t;
    policy : Policy.t;
    count : Policy.Counter.shared;
  }

  type 'v handle = { table : 'v t; local : Policy.Trigger.local }

  let hash k = K.hash k land max_int

  let pairs_find pairs k =
    let n = Array.length pairs in
    let rec go i =
      if i >= n then None
      else begin
        let ki, v = pairs.(i) in
        if K.equal ki k then Some (i, v) else go (i + 1)
      end
    in
    go 0

  let pairs_put pairs k v =
    match pairs_find pairs k with
    | Some (i, _) ->
      let b = Array.copy pairs in
      b.(i) <- (k, v);
      b
    | None ->
      let n = Array.length pairs in
      let b = Array.make (n + 1) (k, v) in
      Array.blit pairs 0 b 0 n;
      b
  [@@nbhash.plain_ok
    "copy-on-write: [b] is freshly allocated here and stays private until \
     published by a bucket CAS"]

  let pairs_remove pairs i =
    let n = Array.length pairs in
    let b = Array.sub pairs 0 (n - 1) in
    if i < n - 1 then b.(i) <- pairs.(n - 1);
    b
  [@@nbhash.plain_ok
    "copy-on-write: [b] is freshly allocated here and stays private until \
     published by a bucket CAS"]

  let pairs_filter_mask pairs ~mask ~target =
    let keep (k, _) = hash k land mask = target in
    let count = Array.fold_left (fun c p -> if keep p then c + 1 else c) 0 pairs in
    if count = Array.length pairs then pairs
    else begin
      let b = ref [] in
      Array.iter (fun p -> if keep p then b := p :: !b) pairs;
      Array.of_list !b
    end

  let make_hnode ~size ~pred =
    {
      buckets = Array.init size (fun _ -> Atomic.make Uninit);
      size;
      mask = size - 1;
      pred = Atomic.make pred;
      sweep = Sweep.make ~total:size;
    }

  let create ?(policy = Policy.default) () =
    Policy.validate policy;
    let hn = make_hnode ~size:policy.Policy.init_buckets ~pred:None in
    Array.iter (fun b -> Atomic.set b (Node { pairs = [||]; ok = true })) hn.buckets;
    { head = Atomic.make hn; policy; count = Policy.Counter.make_shared () }

  let seed = Atomic.make 0x6e4
  let register table =
    {
      table;
      local =
        Policy.Trigger.make_local table.count
          ~seed:(Atomic.fetch_and_add seed 1);
    }

  let unregister h = Policy.Trigger.flush h.local

  let rec freeze_slot slot =
    match Atomic.get slot with
    | Uninit -> assert false
    | Node n as cur ->
      if not n.ok then n.pairs
      else if
        Atomic.compare_and_set slot cur (Node { pairs = n.pairs; ok = false })
      then n.pairs
      else begin
        Tm.cas_retry site_freeze;
        freeze_slot slot
      end

  let slot_pairs slot =
    match Atomic.get slot with Uninit -> assert false | Node n -> n.pairs

  let init_bucket hn i =
    (match (Atomic.get hn.buckets.(i), Atomic.get hn.pred) with
    | Uninit, Some s ->
      let pairs =
        if hn.size = s.size * 2 then
          pairs_filter_mask
            (freeze_slot s.buckets.(i land s.mask))
            ~mask:hn.mask ~target:i
        else
          Array.append
            (freeze_slot s.buckets.(i))
            (freeze_slot s.buckets.(i + hn.size))
      in
      ignore
        (Atomic.compare_and_set hn.buckets.(i) Uninit (Node { pairs; ok = true }))
      [@nbhash.cas_ok
        "bucket init: racing initializers freeze the same predecessor slots \
         and build identical contents; the first CAS publishes"]
    | (Node _ | Uninit), _ -> ());
    ()

  (* Cooperative sweep hooks (see Nbhash.Sweep and Table_core). *)
  let sweep_migrate hn i = init_bucket hn i
  let sweep_complete hn () =
    Atomic.set hn.pred None
    [@nbhash.cas_ok
      "one-way Some -> None: every writer publishes the same final value \
       once the sweep is complete"]

  let help_migration t hn =
    let m = t.policy.Policy.migration in
    if m.Policy.eager && Atomic.get hn.pred <> None then
      Sweep.help hn.sweep ~chunk:m.Policy.chunk
        ~max_helpers:m.Policy.max_helpers ~migrate:(sweep_migrate hn)
        ~on_complete:(sweep_complete hn)

  let resize t grow =
    let hn = Atomic.get t.head in
    let within_bounds =
      if grow then hn.size * 2 <= t.policy.Policy.max_buckets
      else hn.size / 2 >= t.policy.Policy.min_buckets
    in
    if (hn.size > 1 || grow) && within_bounds then begin
      let m = t.policy.Policy.migration in
      if m.Policy.eager && Atomic.get hn.pred <> None then
        Sweep.drain hn.sweep ~chunk:m.Policy.chunk
          ~migrate:(sweep_migrate hn) ~on_complete:(sweep_complete hn);
      for i = 0 to hn.size - 1 do
        init_bucket hn i
      done;
      if m.Policy.eager then Sweep.finish hn.sweep;
      Atomic.set hn.pred None
      [@nbhash.cas_ok
      "one-way Some -> None: every writer publishes the same final value \
       once the sweep is complete"];
      let size = if grow then hn.size * 2 else hn.size / 2 in
      let hn' = make_hnode ~size ~pred:(Some hn) in
      ignore (Atomic.compare_and_set t.head hn hn')
      [@nbhash.cas_ok
        "a lost race means another domain already installed a fresh table; \
         the resize trigger re-fires if more growth is needed"]
    end

  let rec with_bucket t k hk step =
    let hn = Atomic.get t.head in
    let i = hk land hn.mask in
    let slot = hn.buckets.(i) in
    match Atomic.get slot with
    | Uninit ->
      init_bucket hn i;
      with_bucket t k hk step
    | Node n as cur ->
      if not n.ok then begin
        Tm.cas_retry site_stale;
        with_bucket t k hk step
      end
      else begin
        let report, replacement = step n.pairs in
        match replacement with
        | None -> report
        | Some pairs ->
          if Atomic.compare_and_set slot cur (Node { pairs; ok = true }) then
            report
          else begin
            Tm.cas_retry site_update;
            with_bucket t k hk step
          end
      end

  let slot_pair_count slot =
    match Atomic.get slot with
    | Uninit -> 0
    | Node n -> Array.length n.pairs

  let after_put h hk ~grew =
    Policy.Trigger.note_insert h.local ~resp:grew;
    let hn = Atomic.get h.table.head in
    help_migration h.table hn;
    if
      Policy.Trigger.want_grow h.table.policy h.local ~cur_buckets:hn.size
        ~migrating:(Atomic.get hn.pred <> None)
        ~inserted_bucket_size:(fun () ->
          slot_pair_count hn.buckets.(hk land hn.mask))
    then resize h.table true

  let after_remove h ~resp =
    Policy.Trigger.note_remove h.local ~resp;
    let hn = Atomic.get h.table.head in
    help_migration h.table hn;
    if
      Policy.Trigger.want_shrink h.table.policy h.local ~cur_buckets:hn.size
        ~migrating:(Atomic.get hn.pred <> None)
        ~sample_bucket_size:(fun i -> slot_pair_count hn.buckets.(i))
    then resize h.table false

  let put h k v =
    let hk = hash k in
    let prev =
      with_bucket h.table k hk (fun pairs ->
          let prev = Option.map snd (pairs_find pairs k) in
          (prev, Some (pairs_put pairs k v)))
    in
    after_put h hk ~grew:(Option.is_none prev);
    prev

  let remove h k =
    let prev =
      with_bucket h.table k (hash k) (fun pairs ->
          match pairs_find pairs k with
          | Some (i, v) -> (Some v, Some (pairs_remove pairs i))
          | None -> (None, None))
    in
    after_remove h ~resp:(Option.is_some prev);
    prev

  let update h k f =
    let hk = hash k in
    let was_absent =
      with_bucket h.table k hk (fun pairs ->
          let cur = Option.map snd (pairs_find pairs k) in
          (Option.is_none cur, Some (pairs_put pairs k (f cur))))
    in
    after_put h hk ~grew:was_absent

  let get h k =
    let t = h.table in
    let hn = Atomic.get t.head in
    let i = hash k land hn.mask in
    let lookup pairs = Option.map snd (pairs_find pairs k) in
    match Atomic.get hn.buckets.(i) with
    | Node n -> lookup n.pairs
    | Uninit -> (
      match Atomic.get hn.pred with
      | Some s -> lookup (slot_pairs s.buckets.(hash k land s.mask))
      | None -> lookup (slot_pairs hn.buckets.(i)))

  let mem h k = Option.is_some (get h k)

  let bucket_pairs hn i =
    match Atomic.get hn.buckets.(i) with
    | Node n -> n.pairs
    | Uninit -> (
      match Atomic.get hn.pred with
      | Some s ->
        if hn.size = s.size * 2 then
          pairs_filter_mask
            (slot_pairs s.buckets.(i land s.mask))
            ~mask:hn.mask ~target:i
        else
          Array.append
            (slot_pairs s.buckets.(i))
            (slot_pairs s.buckets.(i + hn.size))
      | None -> slot_pairs hn.buckets.(i))

  let bindings t =
    let hn = Atomic.get t.head in
    List.concat_map
      (fun i -> Array.to_list (bucket_pairs hn i))
      (List.init hn.size Fun.id)

  let cardinal t = List.length (bindings t)
  let bucket_count t = (Atomic.get t.head).size
  let force_resize h ~grow = resize h.table grow

  let fail fmt = Format.kasprintf failwith fmt

  let check_invariants t =
    let hn = Atomic.get t.head in
    Array.iteri
      (fun i b ->
        match Atomic.get b with
        | Uninit -> (
          match Atomic.get hn.pred with
          | None -> fail "bucket %d uninit without predecessor" i
          | Some _ -> ())
        | Node n ->
          Array.iter
            (fun (k, _) ->
              if hash k land hn.mask <> i then
                fail "key hashed to %d misplaced in bucket %d" (hash k) i)
            n.pairs)
      hn.buckets;
    let all = bindings t in
    List.iteri
      (fun i (k, _) ->
        List.iteri
          (fun j (k', _) ->
            if i < j && K.equal k k' then fail "duplicate key at %d/%d" i j)
          all)
      all
end
