(* A concurrent session store built on the hash map extension.

     dune exec examples/session_cache.exe

   The paper's conclusion sketches extending the set to a map using
   the same copy-on-write buckets, "since it avoids the need to
   atomically modify distinct key and value fields". This example runs
   a web-ish workload over Nbhash.Hashmap: handler domains create
   sessions, bump per-session request counters atomically with
   [update], and an expiry sweep removes stale sessions — after which
   the table hands back its bucket array. *)

module Cache = Nbhash.Hashmap

type session = { user : int; mutable_never : unit; requests : int }

let handlers = 4
let sessions_per_handler = 10_000

let () =
  let cache : session Cache.t = Cache.create () in

  Printf.printf "phase 1: %d handler domains serve traffic\n" handlers;
  let worker d () =
    let h = Cache.register cache in
    let rng = Nbhash_util.Xoshiro.create (900 + d) in
    for i = 0 to sessions_per_handler - 1 do
      let sid = (i * handlers) + d in
      ignore
        (Cache.put h sid { user = sid * 7; mutable_never = (); requests = 0 });
      (* A few follow-up requests bump the counter atomically: key and
         value move together, no field-level races possible. *)
      for _ = 1 to 1 + Nbhash_util.Xoshiro.below rng 3 do
        Cache.update h sid (function
          | None -> { user = sid * 7; mutable_never = (); requests = 1 }
          | Some s -> { s with requests = s.requests + 1 })
      done
    done
  in
  let ds = List.init handlers (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join ds;

  let total = handlers * sessions_per_handler in
  Printf.printf "  live sessions: %d (expected %d), buckets: %d\n"
    (Cache.cardinal cache) total
    (Cache.bucket_count cache);

  let h = Cache.register cache in
  (match Cache.get h 0 with
  | Some s -> Printf.printf "  session 0: user=%d requests=%d\n" s.user s.requests
  | None -> failwith "session 0 lost");

  Printf.printf "phase 2: expiry sweep (every session is stale)\n";
  let removed = ref 0 in
  List.iter
    (fun (sid, _) -> if Option.is_some (Cache.remove h sid) then incr removed)
    (Cache.bindings cache);
  (* Background churn lets the shrink heuristic observe the drained
     table. *)
  for sid = 0 to 20_000 do
    ignore (Cache.remove h sid)
  done;
  Printf.printf "  removed %d sessions; live: %d, buckets: %d\n" !removed
    (Cache.cardinal cache)
    (Cache.bucket_count cache);
  assert (Cache.cardinal cache = 0);
  print_endline "session cache drained and shrunk"
