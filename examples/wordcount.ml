(* Concurrent word counting over string keys.

     dune exec examples/wordcount.exe

   The generic-key map handles arbitrary (hash-colliding) keys; worker
   domains stream synthetic sentences and bump per-word counters with
   the atomic [update]. Totals are exact: a lost or doubled update
   would show up against the sequential recount. *)

module StringKey = struct
  type t = string

  let equal = String.equal
  let hash = Hashtbl.hash
end

module Counts = Nbhash_generic.Generic_map.Make (StringKey)

let vocabulary =
  [|
    "the"; "freezable"; "set"; "hash"; "table"; "grows"; "and"; "shrinks";
    "without"; "locks"; "keys"; "migrate"; "between"; "buckets"; "lazily";
  |]

let workers = 4
let words_per_worker = 40_000

(* Zipf-flavored word popularity, like real text. *)
let sampler = Nbhash_util.Alias.zipf ~n:(Array.length vocabulary) ~s:1.0

let () =
  let counts = Counts.create () in
  let expected = Array.make (Array.length vocabulary) 0 in
  let expected_lock = Mutex.create () in
  let worker d () =
    let h = Counts.register counts in
    let rng = Nbhash_util.Xoshiro.create (777 + d) in
    let local = Array.make (Array.length vocabulary) 0 in
    for _ = 1 to words_per_worker do
      let i = Nbhash_util.Alias.draw sampler rng in
      local.(i) <- local.(i) + 1;
      Counts.update h vocabulary.(i) (function None -> 1 | Some c -> c + 1)
    done;
    Mutex.lock expected_lock;
    Array.iteri (fun i c -> expected.(i) <- expected.(i) + c) local;
    Mutex.unlock expected_lock
  in
  let ds = List.init workers (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join ds;

  let h = Counts.register counts in
  let top =
    Counts.bindings counts |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  Printf.printf "%d distinct words, %d occurrences\n" (Counts.cardinal counts)
    (List.fold_left (fun acc (_, c) -> acc + c) 0 top);
  List.iteri
    (fun i (w, c) -> if i < 5 then Printf.printf "  %-10s %6d\n" w c)
    top;
  (* Exactness check against the sequential tally. *)
  Array.iteri
    (fun i w ->
      let got = Option.value ~default:0 (Counts.get h w) in
      if got <> expected.(i) then begin
        Printf.printf "MISMATCH %s: %d <> %d\n" w got expected.(i);
        exit 1
      end)
    vocabulary;
  Printf.printf "all %d counters exact (%d total updates)\n"
    (Array.length vocabulary)
    (workers * words_per_worker)
