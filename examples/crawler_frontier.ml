(* A concurrent crawl frontier: the visited set under real traversal.

     dune exec examples/crawler_frontier.exe

   Worker domains explore a synthetic web graph (deterministic
   pseudo-random adjacency). The shared visited set is the adaptive
   wait-free table, so no crawler thread can be starved by others
   resizing the table. The crawl is correct only if every reachable
   page is visited exactly once — which the example verifies against a
   sequential crawl. *)

module Visited = Nbhash.Tables.AdaptiveOpt

let workers = 4
let pages = 50_000
let out_degree = 4

(* Deterministic adjacency: the j-th link of page p. *)
let link p j =
  let rng = Nbhash_util.Xoshiro.create ((p * 31) + j) in
  Nbhash_util.Xoshiro.below rng pages

let sequential_reachable root =
  let seen = Hashtbl.create 1024 in
  let rec go p =
    if not (Hashtbl.mem seen p) then begin
      Hashtbl.add seen p ();
      for j = 0 to out_degree - 1 do
        go (link p j)
      done
    end
  in
  go root;
  Hashtbl.length seen

let () =
  let root = 1 in
  let visited = Visited.create ~max_threads:(workers + 1) () in
  let frontier = Queue.create () in
  let lock = Mutex.create () in
  let pending = Atomic.make 0 in
  let claimed = Atomic.make 0 in

  let push p =
    ignore (Atomic.fetch_and_add pending 1);
    Mutex.lock lock;
    Queue.push p frontier;
    Mutex.unlock lock
  in
  let pop () =
    Mutex.lock lock;
    let p = Queue.take_opt frontier in
    Mutex.unlock lock;
    p
  in

  let worker () =
    let h = Visited.register visited in
    let idle = ref 0 in
    while Atomic.get pending > 0 && !idle < 10_000 do
      match pop () with
      | None ->
        incr idle;
        Domain.cpu_relax ()
      | Some p ->
        idle := 0;
        (* insert = claim: exactly one worker wins each page. *)
        if Visited.insert h p then begin
          ignore (Atomic.fetch_and_add claimed 1);
          for j = 0 to out_degree - 1 do
            let q = link p j in
            if not (Visited.contains h q) then push q
          done
        end;
        ignore (Atomic.fetch_and_add pending (-1))
    done
  in

  push root;
  let ds = List.init workers (fun _ -> Domain.spawn worker) in
  List.iter Domain.join ds;

  let expected = sequential_reachable root in
  Printf.printf "reachable pages (sequential check): %d\n" expected;
  Printf.printf "pages claimed by concurrent crawl:  %d\n" (Atomic.get claimed);
  Printf.printf "visited-set cardinality:            %d\n"
    (Visited.cardinal visited);
  Printf.printf "visited-set buckets:                %d\n"
    (Visited.bucket_count visited);
  if Visited.cardinal visited = expected && Atomic.get claimed = expected then
    print_endline "crawl is exact: every reachable page visited exactly once"
  else begin
    print_endline "MISMATCH - the visited set lost or duplicated a claim";
    exit 1
  end
