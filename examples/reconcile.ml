(* Set reconciliation with the derived operations.

     dune exec examples/reconcile.exe

   Two replicas ingest overlapping streams of order ids concurrently;
   reconciliation computes what each side is missing and repairs them
   to equality using the Extend combinators — exercising bulk insert,
   set algebra, and the keyed wrapper (order ids are (region, serial)
   pairs embedded injectively in ints). *)

module S = Nbhash.Extend.Make (Nbhash.Tables.LFArrayOpt)

module Order = struct
  type t = { region : int; serial : int }

  let to_int o = (o.region lsl 32) lor o.serial
  let of_int i = { region = i lsr 32; serial = i land 0xFFFFFFFF }
end

let ingest replica ~seed lo hi =
  let _, h = replica in
  let rng = Nbhash_util.Xoshiro.create seed in
  let n = ref 0 in
  for serial = lo to hi do
    (* each replica drops ~10% of the stream *)
    if Nbhash_util.Xoshiro.below rng 10 > 0 then begin
      let o = { Order.region = 2; serial } in
      if S.insert h (Order.to_int o) then incr n
    end
  done;
  !n

let () =
  let a = S.of_list [] in
  let b = S.of_list [] in
  let ingests =
    [
      Domain.spawn (fun () -> ingest a ~seed:101 0 49_999);
      Domain.spawn (fun () -> ingest b ~seed:202 0 49_999);
    ]
  in
  let counts = List.map Domain.join ingests in
  Printf.printf "replica A ingested %d orders, replica B %d\n"
    (List.nth counts 0) (List.nth counts 1);

  let ta, ha = a and tb, hb = b in
  Printf.printf "before reconciliation: equal=%b\n" (S.equal ta tb);

  (* Orders A has and B lacks, and vice versa. *)
  let missing_in_b =
    Array.to_list (S.elements ta)
    |> List.filter (fun k -> not (S.contains hb k))
  in
  let missing_in_a =
    Array.to_list (S.elements tb)
    |> List.filter (fun k -> not (S.contains ha k))
  in
  Printf.printf "B lacks %d orders; A lacks %d orders\n"
    (List.length missing_in_b) (List.length missing_in_a);
  (match missing_in_b with
  | k :: _ ->
    let o = Order.of_int k in
    Printf.printf "  e.g. region %d serial %d\n" o.Order.region o.Order.serial
  | [] -> ());

  (* Repair both directions with the bulk operations. *)
  let added_to_b = S.union_into hb ta in
  let added_to_a = S.union_into ha tb in
  Printf.printf "repair: %d pushed to B, %d pushed to A\n" added_to_b
    added_to_a;
  Printf.printf "after reconciliation: equal=%b, cardinal=%d, buckets=%d/%d\n"
    (S.equal ta tb) (S.cardinal ta) (S.bucket_count ta) (S.bucket_count tb);
  assert (S.equal ta tb && S.subset ta tb && S.subset tb ta)
