(* Streaming deduplication under bursty load.

     dune exec examples/dedup_stream.exe

   Several producer domains push event ids; consumers must process
   each id once. A burst floods the dedup set, then traffic returns to
   a trickle: the dynamic table grows for the burst and gives the
   memory back afterwards — the workload the paper's shrink support is
   for. A grow-only table (the split-ordered baseline) stays at its
   high-water mark forever. *)

module T = Nbhash.Tables.LFArrayOpt
module SO = Nbhash_splitorder.Split_ordered

let producers = 4
let burst = 60_000 (* distinct ids per producer during the burst *)

let () =
  let dedup = T.create () in
  let baseline = SO.create () in
  let processed = Atomic.make 0 in
  let duplicates = Atomic.make 0 in

  Printf.printf "phase 1: burst (%d producers x %d ids, with overlap)\n"
    producers burst;
  let worker d () =
    let h = T.register dedup in
    let bh = SO.register baseline in
    let rng = Nbhash_util.Xoshiro.create (77 + d) in
    for _ = 1 to burst do
      (* Overlapping id space: ~25% of ids are duplicates of another
         producer's. *)
      let id = Nbhash_util.Xoshiro.below rng (producers * burst * 3 / 4) in
      ignore (SO.insert bh id);
      if T.insert h id then ignore (Atomic.fetch_and_add processed 1)
      else ignore (Atomic.fetch_and_add duplicates 1)
    done
  in
  let ds = List.init producers (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join ds;
  Printf.printf "  processed %d unique events, suppressed %d duplicates\n"
    (Atomic.get processed) (Atomic.get duplicates);
  Printf.printf "  dynamic table: %d buckets; grow-only baseline: %d buckets\n"
    (T.bucket_count dedup) (SO.bucket_count baseline);

  Printf.printf "phase 2: events age out of the dedup window\n";
  let h = T.register dedup in
  let bh = SO.register baseline in
  Array.iter
    (fun id ->
      ignore (T.remove h id);
      ignore (SO.remove bh id))
    (T.elements dedup);
  (* The trickle keeps the shrink heuristic supplied with remove
     operations. *)
  for id = 0 to 20_000 do
    ignore (T.insert h id);
    ignore (T.remove h id);
    ignore (SO.insert bh id);
    ignore (SO.remove bh id)
  done;
  Printf.printf "  dynamic table: %d buckets; grow-only baseline: %d buckets\n"
    (T.bucket_count dedup) (SO.bucket_count baseline);
  Printf.printf
    "  (the dynamic table returned its burst footprint; the baseline kept \
     %d buckets and %d permanent marker nodes)\n"
    (SO.bucket_count baseline)
    (SO.dummy_count baseline)
