(* Reading table telemetry (TUTORIAL section 6): record the events a
   workload generates inside the table, through the public aliases. *)

module T = Nbhash.Tables.LFArrayOpt
module Tel = Nbhash.Tables.Telemetry

let () =
  let set = T.create () in
  let (), snap =
    Tel.with_recording (fun () ->
        let h = T.register set in
        for k = 0 to 100_000 do
          ignore (T.insert h k)
        done;
        T.unregister h)
  in
  Printf.printf "inserted %d keys into %d buckets; the table reported:\n"
    (T.cardinal set) (T.bucket_count set);
  print_string (Nbhash_telemetry.Snapshot.to_string snap);
  assert (
    Nbhash_telemetry.Snapshot.get snap Nbhash_telemetry.Event.Resize_grow
    = (T.resize_stats set).Nbhash.Hashset_intf.grows);
  print_endline "resize events == resize_stats: ok"
