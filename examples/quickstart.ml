(* Quickstart: the five-minute tour of the public API.

     dune exec examples/quickstart.exe

   A table is shared; each domain registers a handle and works through
   it. The set resizes itself in both directions as its contents
   change. *)

module T = Nbhash.Tables.LFArray

let () =
  (* 1. Create a table and a handle for this thread. *)
  let set = T.create () in
  let h = T.register set in

  (* 2. Ordinary set operations; booleans report whether the set
        changed. *)
  assert (T.insert h 42);
  assert (not (T.insert h 42));
  assert (T.contains h 42);
  assert (T.remove h 42);
  assert (not (T.contains h 42));
  Printf.printf "basic operations: ok\n";

  (* 3. The table grows as it fills... *)
  for k = 0 to 99_999 do
    ignore (T.insert h k)
  done;
  Printf.printf "after 100k inserts: %d elements in %d buckets\n"
    (T.cardinal set) (T.bucket_count set);

  (* ...and shrinks as it drains (the paper's headline feature). *)
  for k = 0 to 99_999 do
    ignore (T.remove h k)
  done;
  for _ = 1 to 10_000 do
    ignore (T.remove h 0)
  done;
  Printf.printf "after draining: %d elements in %d buckets\n" (T.cardinal set)
    (T.bucket_count set);

  (* 4. Other domains just register their own handles. *)
  let workers =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            let h = T.register set in
            for i = 0 to 9_999 do
              ignore (T.insert h ((i * 4) + d))
            done))
  in
  List.iter Domain.join workers;
  Printf.printf "after 4 concurrent writers: %d elements in %d buckets\n"
    (T.cardinal set) (T.bucket_count set);

  (* 5. Wait-free and adaptive variants share the same interface. *)
  let module A = Nbhash.Tables.AdaptiveOpt in
  let wf = A.create ~max_threads:8 () in
  let wh = A.register wf in
  assert (A.insert wh 7);
  assert (A.contains wh 7);
  Printf.printf "adaptive wait-free table: ok\n"
