(* Command-line driver for ad-hoc experiments on the hash tables:

     nbhash_cli run   --table LFArray --threads 4 --range 16 --lookup 0.9
     nbhash_cli sweep --threads 1,2,4 --range 16 --lookup 0.34
     nbhash_cli stats --table WFArray --threads 2
     nbhash_cli trace --table WFArray --threads 2 -o trace.json
     nbhash_cli top   --port 9464
     nbhash_cli list

   `run` measures one configuration; `sweep` prints one row per
   implementation across a list of thread counts; `stats` runs one
   configuration under a recording telemetry probe and prints the
   event counters (or pretty-prints a saved snapshot with --from);
   `trace` runs one configuration under the flight recorder and writes
   a Perfetto-loadable Chrome trace (or summarizes a saved one with
   --from); `top` polls a /metrics endpoint (bench --serve) and
   renders per-table gauges with counter rates plus the most contended
   retry sites; `profile` fetches a server's /profile.json contention
   report; `list` names the available implementations. *)

open Cmdliner
module Factory = Nbhash_workload.Factory
module Runner = Nbhash_workload.Runner
module Workload = Nbhash_workload.Workload
module Report = Nbhash_workload.Report
module Policy = Nbhash.Policy

let table_names = List.map fst Factory.with_michael

let policy_of ~presized ~key_range name =
  if presized || name = "SplitOrder" || name = "Michael" then
    Policy.presized (max 64 (key_range / 2))
  else { Policy.default with init_buckets = 64 }

let range_arg =
  let doc = "Key range exponent: keys are drawn from [0, 2^$(docv))." in
  Arg.(value & opt int 16 & info [ "range" ] ~docv:"BITS" ~doc)

let lookup_arg =
  let doc = "Lookup ratio in [0,1]; inserts and removes split the rest." in
  Arg.(value & opt float 0.34 & info [ "lookup" ] ~docv:"L" ~doc)

let duration_arg =
  let doc = "Seconds per measurement." in
  Arg.(value & opt float 1.0 & info [ "duration" ] ~docv:"SEC" ~doc)

let trials_arg =
  let doc = "Trials per configuration (median-of reported)." in
  Arg.(value & opt int 3 & info [ "trials" ] ~docv:"N" ~doc)

let presized_arg =
  let doc = "Disable dynamic resizing and presize every table." in
  Arg.(value & flag & info [ "presized" ] ~doc)

let seed_arg =
  let doc = "Base PRNG seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let threads_list_arg =
  let doc = "Comma-separated thread counts." in
  Arg.(value & opt (list int) [ 1; 2; 4 ] & info [ "threads" ] ~docv:"T,..." ~doc)

let table_arg =
  let doc =
    Printf.sprintf "Implementation to drive; one of %s."
      (String.concat ", " table_names)
  in
  Arg.(value & opt string "LFArray" & info [ "table" ] ~docv:"NAME" ~doc)

let validate_table name =
  if not (List.mem name table_names) then begin
    Printf.eprintf "unknown table %S; known: %s\n" name
      (String.concat ", " table_names);
    exit 1
  end

let measure name ~threads ~range_bits ~lookup ~duration ~trials ~presized
    ~seed =
  let key_range = 1 lsl range_bits in
  let spec = Workload.spec ~lookup_ratio:lookup ~key_range () in
  let make () =
    (Factory.by_name name)
      ~policy:(policy_of ~presized ~key_range name)
      ~max_threads:(threads + 2) ()
  in
  ignore seed;
  Runner.run_trials make ~threads ~spec ~duration ~trials

let run_cmd =
  let run table threads_list range_bits lookup duration trials presized seed =
    validate_table table;
    List.iter
      (fun threads ->
        let last, summary =
          measure table ~threads ~range_bits ~lookup ~duration ~trials
            ~presized ~seed
        in
        Printf.printf
          "%s T=%d range=2^%d L=%.0f%%: %.3f ops/usec (median %.3f, sd %.3f) \
           buckets=%d cardinal=%d\n"
          table threads range_bits (lookup *. 100.)
          summary.Nbhash_util.Stats.mean summary.Nbhash_util.Stats.median
          summary.Nbhash_util.Stats.stddev last.Runner.final_buckets
          last.Runner.final_cardinal)
      threads_list
  in
  let term =
    Term.(
      const run $ table_arg $ threads_list_arg $ range_arg $ lookup_arg
      $ duration_arg $ trials_arg $ presized_arg $ seed_arg)
  in
  Cmd.v (Cmd.info "run" ~doc:"Measure one implementation.") term

let sweep_cmd =
  let sweep threads_list range_bits lookup duration trials presized seed =
    let header =
      "algorithm" :: List.map (Printf.sprintf "T=%d") threads_list
    in
    let rows =
      List.map
        (fun name ->
          name
          :: List.map
               (fun threads ->
                 let _, summary =
                   measure name ~threads ~range_bits ~lookup ~duration ~trials
                     ~presized ~seed
                 in
                 Report.ops_per_usec summary.Nbhash_util.Stats.median)
               threads_list)
        table_names
    in
    Printf.printf "range=2^%d L=%.0f%% [ops/usec, median of %d]\n" range_bits
      (lookup *. 100.) trials;
    Report.print_table ~header ~rows
  in
  let term =
    Term.(
      const sweep $ threads_list_arg $ range_arg $ lookup_arg $ duration_arg
      $ trials_arg $ presized_arg $ seed_arg)
  in
  Cmd.v (Cmd.info "sweep" ~doc:"Compare all implementations.") term

let hist_cmd =
  (* Populate one table and print its bucket-occupancy histogram: how
     well the policy is spreading keys. *)
  let hist table range_bits lookup presized seed =
    validate_table table;
    let key_range = 1 lsl range_bits in
    let spec = Workload.spec ~lookup_ratio:lookup ~key_range () in
    let t =
      (Factory.by_name table)
        ~policy:(policy_of ~presized ~key_range table)
        ~max_threads:4 ()
    in
    Runner.prepopulate t spec ~seed;
    let occupancy = Hashtbl.create 16 in
    Array.iter
      (fun n ->
        Hashtbl.replace occupancy n
          (1 + Option.value ~default:0 (Hashtbl.find_opt occupancy n)))
      (t.Factory.bucket_sizes ());
    Printf.printf "%s: %d elements in %d buckets\n" table
      (t.Factory.cardinal ())
      (t.Factory.bucket_count ());
    let keys =
      Hashtbl.fold (fun k _ acc -> k :: acc) occupancy [] |> List.sort compare
    in
    List.iter
      (fun n ->
        let c = Hashtbl.find occupancy n in
        Printf.printf "%3d elems: %6d buckets %s\n" n c
          (String.make (min 60 (60 * c / max 1 (t.Factory.bucket_count ()))) '#'))
      keys
  in
  let term =
    Term.(
      const hist $ table_arg $ range_arg $ lookup_arg $ presized_arg
      $ seed_arg)
  in
  Cmd.v (Cmd.info "hist" ~doc:"Bucket occupancy histogram.") term

(* Load a JSON input file for stats/trace --from; a missing or
   unreadable path is an ordinary user error, reported on stderr with
   a non-zero exit instead of an exception trace. *)
let load_json_or_die path =
  match Nbhash_util.Json.parse_file path with
  | Ok doc -> doc
  | Error msg ->
    Printf.eprintf "error: cannot read %s\n" msg;
    exit 1

(* Pretty-print a previously scraped /snapshot.json (or stats --json
   output): the meta block, then the non-zero counters, then span
   summaries. *)
let print_snapshot_file path =
  let module J = Nbhash_util.Json in
  let doc = load_json_or_die path in
  (match J.member "meta" doc with
  | Some (J.Obj fields) ->
    List.iter
      (fun (k, v) ->
        match v with
        | J.Str s -> Printf.printf "meta.%-10s %s\n" k s
        | J.Num n -> Printf.printf "meta.%-10s %g\n" k n
        | _ -> ())
      fields
  | Some _ | None -> ());
  (match J.member "counters" doc with
  | Some (J.Obj fields) ->
    List.iter
      (fun (k, v) ->
        match J.to_num v with
        | Some n when n <> 0. -> Printf.printf "%-24s %.0f\n" k n
        | _ -> ())
      fields
  | Some _ | None ->
    Printf.eprintf "error: %s: no \"counters\" object — not a snapshot file\n"
      path;
    exit 1);
  match J.member "spans" doc with
  | Some (J.Obj fields) ->
    List.iter
      (fun (k, v) ->
        let f name =
          match Option.bind (J.member name v) J.to_num with
          | Some n -> n
          | None -> Float.nan
        in
        Printf.printf "%-24s n=%.0f p50=%.0f p99=%.0f max=%.0f\n" k (f "n")
          (f "p50") (f "p99") (f "max"))
      fields
  | Some _ | None -> ()

let stats_cmd =
  (* One measured run under a recording probe; the snapshot covers the
     measurement window only (the Runner resets at the barrier). *)
  let stats table threads_list range_bits lookup duration presized seed json
      from =
    match from with
    | Some path -> print_snapshot_file path
    | None ->
      validate_table table;
      Nbhash_telemetry.Global.install (Nbhash_telemetry.Probe.recording ());
      List.iter
        (fun threads ->
          let last, _ =
            measure table ~threads ~range_bits ~lookup ~duration ~trials:1
              ~presized ~seed
          in
          Printf.printf "%s T=%d range=2^%d L=%.0f%%: %.3f ops/usec\n" table
            threads range_bits (lookup *. 100.) last.Runner.throughput;
          match last.Runner.telemetry with
          | None -> print_endline "(no recording probe installed)"
          | Some snap ->
            if json then
              print_endline
                (Nbhash_telemetry.Snapshot.to_json
                   ~meta:(Nbhash_telemetry.Meta.json ())
                   snap)
            else print_string (Nbhash_telemetry.Snapshot.to_string snap))
        threads_list
  in
  let json_arg =
    let doc = "Print the snapshot as JSON instead of a table." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let from_arg =
    let doc =
      "Pretty-print a saved snapshot JSON file (a /snapshot.json scrape or \
       stats --json output) instead of running a workload."
    in
    Arg.(
      value & opt (some string) None & info [ "from" ] ~docv:"FILE" ~doc)
  in
  let term =
    Term.(
      const stats $ table_arg $ threads_list_arg $ range_arg $ lookup_arg
      $ duration_arg $ presized_arg $ seed_arg $ json_arg $ from_arg)
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Measure one implementation with telemetry.")
    term

(* Summarize a previously written Chrome trace JSON file: event count
   and per-name tallies. Accepts both the {"traceEvents":[...]}
   wrapper and a bare event array. *)
let print_trace_file path =
  let module J = Nbhash_util.Json in
  let doc = load_json_or_die path in
  let events =
    match J.member "traceEvents" doc with
    | Some arr -> J.to_list arr
    | None -> J.to_list doc
  in
  match events with
  | None ->
    Printf.eprintf "error: %s: no \"traceEvents\" array — not a trace file\n"
      path;
    exit 1
  | Some events ->
    let tally = Hashtbl.create 32 in
    List.iter
      (fun ev ->
        let name =
          match Option.bind (J.member "name" ev) J.to_str with
          | Some n -> n
          | None -> "(unnamed)"
        in
        Hashtbl.replace tally name
          (1 + Option.value ~default:0 (Hashtbl.find_opt tally name)))
      events;
    Printf.printf "%s: %d trace events\n" path (List.length events);
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tally []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
    |> List.iter (fun (name, n) -> Printf.printf "%8d  %s\n" n name)

let trace_cmd =
  (* One measured run with the flight recorder installed; the Runner
     clears the rings at the measurement barrier, so the written trace
     covers the measurement window. *)
  let trace table threads_list range_bits lookup duration presized seed out
      tail =
    validate_table table;
    let tr = Nbhash_telemetry.Trace.create ~lanes:64 ~capacity:(1 lsl 14) () in
    Nbhash_telemetry.Trace.install tr;
    List.iter
      (fun threads ->
        let last, _ =
          measure table ~threads ~range_bits ~lookup ~duration ~trials:1
            ~presized ~seed
        in
        Printf.printf "%s T=%d range=2^%d L=%.0f%%: %.3f ops/usec\n" table
          threads range_bits (lookup *. 100.) last.Runner.throughput)
      threads_list;
    let records = Nbhash_telemetry.Trace.records tr in
    Printf.printf "captured %d trace records (%d written)\n"
      (Array.length records)
      (Nbhash_telemetry.Trace.written tr);
    if tail > 0 then
      Nbhash_telemetry.Trace.dump_tail ~n:tail Format.std_formatter tr;
    (match out with
    | None -> ()
    | Some path -> (
      match open_out path with
      | oc ->
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> Nbhash_telemetry.Trace.write_chrome oc tr);
        Printf.printf "wrote %s — open it at https://ui.perfetto.dev\n" path
      | exception Sys_error msg ->
        Printf.eprintf "error: cannot write %s\n" msg;
        exit 1))
  in
  let trace_dispatch table threads_list range_bits lookup duration presized
      seed out tail from =
    match from with
    | Some path -> print_trace_file path
    | None ->
      trace table threads_list range_bits lookup duration presized seed out
        tail
  in
  let out_arg =
    let doc = "Write the merged trace as Chrome trace-event JSON to $(docv)." in
    Arg.(
      value & opt (some string) None & info [ "o"; "out" ] ~docv:"PATH" ~doc)
  in
  let tail_arg =
    let doc = "Print the newest $(docv) merged records after the run." in
    Arg.(value & opt int 0 & info [ "tail" ] ~docv:"N" ~doc)
  in
  let from_arg =
    let doc =
      "Summarize a saved Chrome trace JSON file instead of running a \
       workload."
    in
    Arg.(
      value & opt (some string) None & info [ "from" ] ~docv:"FILE" ~doc)
  in
  let term =
    Term.(
      const trace_dispatch $ table_arg $ threads_list_arg $ range_arg
      $ lookup_arg $ duration_arg $ presized_arg $ seed_arg $ out_arg
      $ tail_arg $ from_arg)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Measure one implementation under the flight recorder.")
    term

let list_cmd =
  let list () = List.iter print_endline table_names in
  Cmd.v
    (Cmd.info "list" ~doc:"List available implementations.")
    Term.(const list $ const ())

(* --- top: a live terminal view over a /metrics endpoint --- *)

(* One parsed OpenMetrics sample line: family name, label set, value.
   Comment lines (# TYPE/# HELP/# EOF) are skipped. The parser only
   needs to understand what Openmetrics.render emits. *)
let parse_metric_line line =
  match String.rindex_opt line ' ' with
  | None -> None
  | Some sp -> (
    let name_part = String.sub line 0 sp in
    let value_part = String.sub line (sp + 1) (String.length line - sp - 1) in
    match float_of_string_opt value_part with
    | None -> None
    | Some value ->
      let family, labels =
        match String.index_opt name_part '{' with
        | None -> (name_part, [])
        | Some b ->
          let family = String.sub name_part 0 b in
          let inner =
            (* drop '{' and the trailing '}' *)
            String.sub name_part (b + 1) (String.length name_part - b - 2)
          in
          let labels =
            String.split_on_char ',' inner
            |> List.filter_map (fun kv ->
                   match String.index_opt kv '=' with
                   | None -> None
                   | Some eq ->
                     let k = String.sub kv 0 eq in
                     let v =
                       String.sub kv (eq + 1) (String.length kv - eq - 1)
                     in
                     (* strip the quotes *)
                     let v =
                       if String.length v >= 2 && v.[0] = '"' then
                         String.sub v 1 (String.length v - 2)
                       else v
                     in
                     Some (k, v))
          in
          (family, labels)
      in
      Some (family, labels, value))

let parse_metrics body =
  String.split_on_char '\n' body
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None else parse_metric_line line)

let render_top ~clear ~endpoint ~health ~interval ~prev samples =
  let b = Buffer.create 4096 in
  if clear then Buffer.add_string b "\027[H\027[2J";
  Buffer.add_string b
    (Printf.sprintf "nbhash top — %s — health: %s\n\n" endpoint health);
  (* Per-table gauge rows, keyed by (table, instance). *)
  let tables = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (family, labels, value) ->
      match
        (List.assoc_opt "table" labels, List.assoc_opt "instance" labels)
      with
      | Some table, Some instance
        when String.length family > 13
             && String.sub family 0 13 = "nbhash_table_" ->
        let metric =
          String.sub family 13 (String.length family - 13)
        in
        let key = (table, instance) in
        if not (Hashtbl.mem tables key) then begin
          Hashtbl.add tables key (Hashtbl.create 8);
          order := key :: !order
        end;
        Hashtbl.replace (Hashtbl.find tables key) metric value
      | _ -> ())
    samples;
  if !order <> [] then begin
    Buffer.add_string b
      (Printf.sprintf "%-18s %8s %9s %6s %6s %7s %9s %8s\n" "TABLE" "BUCKETS"
         "CARDINAL" "LOAD" "DEPTH" "FROZEN" "MIGRATE%" "PENDING");
    List.iter
      (fun ((table, instance) as key) ->
        let m = Hashtbl.find tables key in
        let g name = Option.value ~default:Float.nan (Hashtbl.find_opt m name) in
        Buffer.add_string b
          (Printf.sprintf "%-18s %8.0f %9.0f %6.2f %6.0f %7.0f %8.0f%% %8.0f\n"
             (table ^ "#" ^ instance)
             (g "buckets") (g "cardinal") (g "load_factor") (g "max_depth")
             (g "frozen_buckets")
             (100. *. g "migration_progress")
             (g "announce_pending")))
      (List.rev !order);
    Buffer.add_char b '\n'
  end;
  (* Per-opcode service-time percentiles from the labeled
     nbhash_server_op_ns histogram family (present once a KV server
     has answered attributed traffic). Buckets are cumulative; the
     percentile is the upper bound of the first bucket at or past the
     rank, same resolution as the server's own log2 histograms. *)
  let ops = Hashtbl.create 4 in
  let op_order = ref [] in
  List.iter
    (fun (family, labels, value) ->
      if family = "nbhash_server_op_ns_bucket" then
        match (List.assoc_opt "op" labels, List.assoc_opt "le" labels) with
        | Some op, Some le ->
          let bs =
            match Hashtbl.find_opt ops op with
            | Some l -> l
            | None ->
              op_order := op :: !op_order;
              []
          in
          Hashtbl.replace ops op ((le, value) :: bs)
        | _ -> ())
    samples;
  if !op_order <> [] then begin
    Buffer.add_string b
      (Printf.sprintf "%-6s %12s %11s %11s %11s\n" "OP" "COUNT" "P50(us)"
         "P99(us)" "P999(us)");
    List.iter
      (fun op ->
        let buckets =
          Hashtbl.find ops op
          |> List.map (fun (le, v) ->
                 ( (match float_of_string_opt le with
                   | Some f -> f
                   | None -> Float.infinity),
                   v ))
          |> List.sort compare
        in
        let total = List.fold_left (fun acc (_, v) -> Float.max acc v) 0. buckets in
        let pct p =
          let target = p /. 100. *. total in
          let rec go = function
            | [] -> Float.nan
            | (le, cum) :: rest ->
              if cum >= target && cum > 0. then le else go rest
          in
          go buckets
        in
        if total > 0. then
          Buffer.add_string b
            (Printf.sprintf "%-6s %12.0f %11.1f %11.1f %11.1f\n" op total
               (pct 50. /. 1e3) (pct 99. /. 1e3) (pct 99.9 /. 1e3)))
      (List.rev !op_order);
    Buffer.add_char b '\n'
  end;
  (* Counter rates since the previous frame. *)
  let counters =
    List.filter_map
      (fun (family, labels, value) ->
        let n = String.length family in
        if labels = [] && n > 6 && String.sub family (n - 6) 6 = "_total" then
          Some (String.sub family 0 (n - 6), value)
        else None)
      samples
  in
  Buffer.add_string b
    (Printf.sprintf "%-28s %14s %12s\n" "COUNTER" "TOTAL" "PER-SEC");
  List.iter
    (fun (name, value) ->
      let rate =
        match !prev with
        | None -> Float.nan
        | Some old -> (
          match List.assoc_opt name old with
          | Some v -> (value -. v) /. interval
          | None -> Float.nan)
      in
      if value > 0. || (Float.is_finite rate && rate > 0.) then
        Buffer.add_string b
          (Printf.sprintf "%-28s %14.0f %12s\n" name value
             (if Float.is_finite rate then Printf.sprintf "%.1f" rate
              else "-")))
    counters;
  (* Contention: top retry sites from the labeled
     nbhash_cas_retry_total family, ranked by retry rate since the
     previous frame (by total on the first frame, before a rate
     exists). *)
  let site_totals =
    List.filter_map
      (fun (family, labels, value) ->
        if family = "nbhash_cas_retry_total" then
          Option.map
            (fun s -> ("site:" ^ s, value))
            (List.assoc_opt "site" labels)
        else None)
      samples
  in
  if site_totals <> [] then begin
    let with_rate (name, value) =
      let rate =
        match !prev with
        | None -> Float.nan
        | Some old -> (
          match List.assoc_opt name old with
          | Some v -> (value -. v) /. interval
          | None -> Float.nan)
      in
      (name, value, rate)
    in
    let key (_, total, rate) =
      if Float.is_finite rate then (rate, total)
      else (Float.neg_infinity, total)
    in
    let ranked =
      List.map with_rate site_totals
      |> List.sort (fun x y -> compare (key y) (key x))
    in
    Buffer.add_char b '\n';
    Buffer.add_string b
      (Printf.sprintf "%-28s %14s %12s\n" "CONTENDED SITE" "RETRIES"
         "PER-SEC");
    List.iteri
      (fun i (name, total, rate) ->
        if i < 5 && total > 0. then
          Buffer.add_string b
            (Printf.sprintf "%-28s %14.0f %12s\n"
               (String.sub name 5 (String.length name - 5))
               total
               (if Float.is_finite rate then Printf.sprintf "%.1f" rate
                else "-")))
      ranked
  end;
  prev := Some (counters @ site_totals);
  print_string (Buffer.contents b);
  flush stdout

let top_cmd =
  let top host port interval count =
    let module MS = Nbhash_telemetry.Metrics_server in
    let endpoint = Printf.sprintf "%s:%d" host port in
    let clear = Unix.isatty Unix.stdout in
    let prev = ref None in
    let frames = ref 0 in
    let continue = ref true in
    while !continue do
      (match MS.http_get ~host ~port "/metrics" with
      | Error msg ->
        Printf.eprintf "error: cannot scrape http://%s/metrics: %s\n" endpoint
          msg;
        exit 1
      | Ok (code, _) when code <> 200 ->
        Printf.eprintf "error: http://%s/metrics answered %d\n" endpoint code;
        exit 1
      | Ok (_, body) ->
        let health =
          match MS.http_get ~host ~port "/health" with
          | Ok (200, _) -> "ok"
          | Ok (503, body) -> "STALLED — " ^ String.trim body
          | Ok (code, _) -> Printf.sprintf "unknown (%d)" code
          | Error msg -> "unreachable (" ^ msg ^ ")"
        in
        render_top ~clear ~endpoint ~health ~interval ~prev
          (parse_metrics body));
      incr frames;
      if count > 0 && !frames >= count then continue := false
      else Unix.sleepf interval
    done
  in
  let host_arg =
    let doc = "Host serving /metrics (bench --serve or Metrics_server)." in
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc)
  in
  let port_arg =
    let doc = "Port of the metrics endpoint." in
    Arg.(value & opt int 9464 & info [ "port" ] ~docv:"PORT" ~doc)
  in
  let interval_arg =
    let doc = "Seconds between polls." in
    Arg.(value & opt float 1.0 & info [ "interval" ] ~docv:"SEC" ~doc)
  in
  let count_arg =
    let doc = "Stop after $(docv) frames (0 = run until interrupted)." in
    Arg.(value & opt int 0 & info [ "count" ] ~docv:"N" ~doc)
  in
  let term =
    Term.(const top $ host_arg $ port_arg $ interval_arg $ count_arg)
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Live terminal view of a running table's metrics endpoint.")
    term

(* --- serve / load / drain: the sharded KV service --- *)

module Server = Nbhash_server.Server
module Loadgen = Nbhash_server.Loadgen
module Sproto = Nbhash_server.Protocol

let write_port_file path port =
  match path with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> Printf.fprintf oc "%d\n" port)

let serve_cmd =
  let serve addr port backend shards workers metrics_port no_metrics port_file
      metrics_port_file slow_threshold_us slow_capacity slow_log sweep_chunk
      profile_alloc =
    let backend =
      match Nbhash_server.Backend.kind_of_string backend with
      | Some k -> k
      | None ->
        Printf.eprintf "unknown backend %S; known: lockfree, waitfree\n"
          backend;
        exit 1
    in
    let policy =
      match sweep_chunk with
      | None -> None
      | Some chunk when chunk >= 1 ->
        Some
          {
            Nbhash_server.Backend.default_policy with
            migration = { Policy.default_migration with chunk };
          }
      | Some chunk ->
        Printf.eprintf "bad --sweep-chunk %d (must be >= 1)\n" chunk;
        exit 1
    in
    let slow_threshold_ns =
      if slow_threshold_us < 0. then None
      else Some (int_of_float (slow_threshold_us *. 1e3))
    in
    (* Request/span counters and table gauges only mean something with
       a live probe; install one for the server's whole lifetime. *)
    Nbhash_telemetry.Global.install (Nbhash_telemetry.Probe.recording ());
    (* A resident flight recorder: the staged request slices land in
       these rings, so slow-request captures can attach a trace tail. *)
    Nbhash_telemetry.Trace.install
      (Nbhash_telemetry.Trace.create ~lanes:64 ~capacity:(1 lsl 14) ());
    (* The contention profiler is resident too — /profile.json answers
       404 without one. Allocation sampling stays off unless asked
       for; the disabled path is allocation-free. *)
    let profiler = Nbhash_telemetry.Profile.create () in
    Nbhash_telemetry.Profile.install profiler;
    if profile_alloc then begin
      match Nbhash_telemetry.Profile.start_alloc profiler with
      | Ok () -> print_endline "memprof allocation sampling enabled"
      | Error reason ->
        Printf.eprintf "warning: allocation sampling unavailable: %s\n%!"
          reason
    end;
    match
      let server =
        Server.start
          ~config:
            {
              Server.default_config with
              addr;
              port;
              backend;
              shards;
              workers;
              policy;
              slow_threshold_ns;
              slow_capacity;
              slow_log;
            }
          ()
      in
      let metrics =
        if no_metrics then None
        else
          Some
            (Nbhash_telemetry.Metrics_server.start ~addr ~port:metrics_port
               ~watchdog:(Nbhash_telemetry.Watchdog.global ())
               ())
      in
      (server, metrics)
    with
    | exception Nbhash_telemetry.Metrics_server.Bind_error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1
    | server, metrics ->
      Printf.printf "serving kv (%s, %d shards, %d workers) on %s:%d\n%!"
        (Nbhash_server.Backend.kind_name backend)
        shards workers addr (Server.port server);
      write_port_file port_file (Server.port server);
      (match metrics with
      | None -> ()
      | Some m ->
        Printf.printf "serving metrics on http://%s:%d/metrics\n%!" addr
          (Nbhash_telemetry.Metrics_server.port m);
        write_port_file metrics_port_file
          (Nbhash_telemetry.Metrics_server.port m));
      (* Block until a DRAIN request brings the workers down, then
         stop the metrics side too and exit cleanly. *)
      Server.wait server;
      (match metrics with
      | None -> ()
      | Some m -> Nbhash_telemetry.Metrics_server.stop m);
      print_endline "drained; bye"
  in
  let addr_arg =
    let doc = "Address to bind." in
    Arg.(value & opt string "127.0.0.1" & info [ "addr" ] ~docv:"ADDR" ~doc)
  in
  let port_arg =
    let doc = "KV port to bind (0 picks a free port; it is printed either \
               way, and written to --port-file if given)." in
    Arg.(value & opt int 0 & info [ "port" ] ~docv:"PORT" ~doc)
  in
  let backend_arg =
    let doc = "Shard table implementation: lockfree or waitfree." in
    Arg.(value & opt string "lockfree" & info [ "backend" ] ~docv:"KIND" ~doc)
  in
  let shards_arg =
    let doc = "Shard tables (1 = single-shared-table ablation)." in
    Arg.(value & opt int 2 & info [ "shards" ] ~docv:"N" ~doc)
  in
  let workers_arg =
    let doc = "Worker domains (concurrent connections served)." in
    Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N" ~doc)
  in
  let metrics_port_arg =
    let doc = "Metrics/health HTTP port (0 picks a free port)." in
    Arg.(value & opt int 0 & info [ "metrics-port" ] ~docv:"PORT" ~doc)
  in
  let no_metrics_arg =
    let doc = "Do not start the metrics endpoint." in
    Arg.(value & flag & info [ "no-metrics" ] ~doc)
  in
  let port_file_arg =
    let doc = "Write the bound KV port to $(docv)." in
    Arg.(
      value & opt (some string) None & info [ "port-file" ] ~docv:"PATH" ~doc)
  in
  let metrics_port_file_arg =
    let doc = "Write the bound metrics port to $(docv)." in
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-port-file" ] ~docv:"PATH" ~doc)
  in
  let slow_threshold_arg =
    let doc =
      "Slow-request capture threshold in microseconds; 0 captures every \
       request, negative (the default) uses a rolling p999 estimate."
    in
    Arg.(
      value & opt float (-1.) & info [ "slow-threshold-us" ] ~docv:"US" ~doc)
  in
  let slow_capacity_arg =
    let doc = "Slow-request capture ring size." in
    Arg.(value & opt int 64 & info [ "slow-capacity" ] ~docv:"N" ~doc)
  in
  let slow_log_arg =
    let doc = "Append slow-request captures as JSON lines to $(docv)." in
    Arg.(
      value & opt (some string) None & info [ "slow-log" ] ~docv:"PATH" ~doc)
  in
  let sweep_chunk_arg =
    let doc =
      "Migration sweep chunk size (buckets claimed per cursor fetch); large \
       values concentrate helping work in single requests, which is the \
       stall-injection knob for exercising the slow-request capture."
    in
    Arg.(value & opt (some int) None & info [ "sweep-chunk" ] ~docv:"N" ~doc)
  in
  let profile_alloc_arg =
    let doc =
      "Enable Memprof allocation sampling attributed to retry sites \
       (requires statmemprof; degrades to a warning where the runtime \
       lacks it)."
    in
    Arg.(value & flag & info [ "profile-alloc" ] ~doc)
  in
  let term =
    Term.(
      const serve $ addr_arg $ port_arg $ backend_arg $ shards_arg
      $ workers_arg $ metrics_port_arg $ no_metrics_arg $ port_file_arg
      $ metrics_port_file_arg $ slow_threshold_arg $ slow_capacity_arg
      $ slow_log_arg $ sweep_chunk_arg $ profile_alloc_arg)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the sharded KV service until a drain request.")
    term

let host_arg =
  let doc = "Server host." in
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc)

let kv_port_arg =
  let doc = "Server KV port." in
  Arg.(required & opt (some int) None & info [ "port" ] ~docv:"PORT" ~doc)

let load_cmd =
  let load host port conns rate duration range_bits dist get del value_bytes
      seed max_lag_ms json =
    let dist =
      match String.split_on_char ':' dist with
      | [ "uniform" ] -> Nbhash_workload.Keystream.Uniform
      | [ "zipf" ] -> Nbhash_workload.Keystream.Zipf 1.1
      | [ "zipf"; s ] -> (
        match float_of_string_opt s with
        | Some s when s >= 0. -> Nbhash_workload.Keystream.Zipf s
        | _ ->
          Printf.eprintf "bad zipf skew %S\n" s;
          exit 1)
      | _ ->
        Printf.eprintf "unknown distribution %S (uniform, zipf, zipf:S)\n" dist;
        exit 1
    in
    match
      Loadgen.run
        ~config:
          {
            Loadgen.host;
            port;
            conns;
            rate;
            duration_s = duration;
            key_range = 1 lsl range_bits;
            dist;
            get_ratio = get;
            del_ratio = del;
            value_bytes;
            seed;
            max_lag_ns = int_of_float (max_lag_ms *. 1e6);
          }
        ()
    with
    | exception Failure msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1
    | report ->
      Loadgen.print_human report;
      (match json with
      | None -> ()
      | Some path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc (Loadgen.to_bench_json report));
        Printf.printf "wrote SLO report to %s\n" path);
      if report.Loadgen.sent = 0 || report.Loadgen.errors > 0 then exit 1
  in
  let conns_arg =
    let doc = "Client connections (one domain each)." in
    Arg.(value & opt int 2 & info [ "conns" ] ~docv:"N" ~doc)
  in
  let rate_arg =
    let doc = "Total open-loop request rate, req/s (0 = closed loop)." in
    Arg.(value & opt float 2000. & info [ "rate" ] ~docv:"R" ~doc)
  in
  let dist_arg =
    let doc = "Key distribution: uniform, zipf, or zipf:SKEW." in
    Arg.(value & opt string "uniform" & info [ "dist" ] ~docv:"DIST" ~doc)
  in
  let get_arg =
    let doc = "GET ratio in [0,1]." in
    Arg.(value & opt float 0.8 & info [ "get" ] ~docv:"G" ~doc)
  in
  let del_arg =
    let doc = "DEL ratio in [0,1]; PUTs take the rest." in
    Arg.(value & opt float 0.05 & info [ "del" ] ~docv:"D" ~doc)
  in
  let value_bytes_arg =
    let doc = "PUT value size in bytes." in
    Arg.(value & opt int 32 & info [ "value-bytes" ] ~docv:"B" ~doc)
  in
  let max_lag_arg =
    let doc = "Schedule slack in milliseconds before overdue requests drop." in
    Arg.(value & opt float 100. & info [ "max-lag-ms" ] ~docv:"MS" ~doc)
  in
  let json_arg =
    let doc = "Write the SLO report as bench-v2 JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"PATH" ~doc)
  in
  let term =
    Term.(
      const load $ host_arg $ kv_port_arg $ conns_arg $ rate_arg
      $ duration_arg $ range_arg $ dist_arg $ get_arg $ del_arg
      $ value_bytes_arg $ seed_arg $ max_lag_arg $ json_arg)
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:"Drive a KV server with an open-loop workload and report SLOs.")
    term

let drain_cmd =
  let drain host port =
    Nbhash_telemetry.Metrics_server.ignore_sigpipe ();
    match
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd
            (Unix.ADDR_INET
               (Nbhash_telemetry.Metrics_server.resolve_inet host, port));
          Sproto.write_request fd Drain;
          Sproto.read_response fd)
    with
    | Result.Ok Sproto.Ok -> print_endline "drained"
    | Result.Ok r ->
      Printf.eprintf "error: unexpected drain response: %s\n"
        (match r with
        | Sproto.Err m -> m
        | Sproto.Value _ -> "VALUE"
        | Sproto.Not_found -> "NOT_FOUND"
        | Sproto.Ok -> "OK");
      exit 1
    | Result.Error msg | (exception Failure msg) ->
      Printf.eprintf "error: %s\n" msg;
      exit 1
    | exception Unix.Unix_error (e, _, _) ->
      Printf.eprintf "error: cannot drain %s:%d: %s\n" host port
        (Unix.error_message e);
      exit 1
  in
  let term = Term.(const drain $ host_arg $ kv_port_arg) in
  Cmd.v
    (Cmd.info "drain"
       ~doc:"Ask a KV server to finish migrations and shut down.")
    term

(* One v1 request/response exchange on a throwaway connection, shared
   by drain-style operational commands. *)
let kv_roundtrip ~host ~port req =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd
        (Unix.ADDR_INET
           (Nbhash_telemetry.Metrics_server.resolve_inet host, port));
      Sproto.write_request fd req;
      Sproto.read_response fd)

let force_resize_cmd =
  let force host port shard =
    Nbhash_telemetry.Metrics_server.ignore_sigpipe ();
    match kv_roundtrip ~host ~port (Sproto.Force_resize shard) with
    | Result.Ok Sproto.Ok ->
      Printf.printf "forced a grow of shard %d; migration in progress\n" shard
    | Result.Ok (Sproto.Err m) ->
      Printf.eprintf "error: %s\n" m;
      exit 1
    | Result.Ok (Sproto.Value _ | Sproto.Not_found) ->
      Printf.eprintf "error: unexpected response to FORCE_RESIZE\n";
      exit 1
    | Result.Error msg | (exception Failure msg) ->
      Printf.eprintf "error: %s\n" msg;
      exit 1
    | exception Unix.Unix_error (e, _, _) ->
      Printf.eprintf "error: cannot reach %s:%d: %s\n" host port
        (Unix.error_message e);
      exit 1
  in
  let shard_arg =
    let doc = "Shard index to grow." in
    Arg.(value & opt int 0 & info [ "shard" ] ~docv:"N" ~doc)
  in
  let term = Term.(const force $ host_arg $ kv_port_arg $ shard_arg) in
  Cmd.v
    (Cmd.info "force-resize"
       ~doc:
         "Force a table grow on one shard of a running KV server — stall \
          injection for exercising the slow-request capture.")
    term

(* --- slow: fetch and render a server's slow-request log --- *)

let slow_cmd =
  let slow host port json =
    let module MS = Nbhash_telemetry.Metrics_server in
    let module J = Nbhash_util.Json in
    match MS.http_get ~host ~port "/slow.json" with
    | Error msg ->
      Printf.eprintf "error: cannot fetch http://%s:%d/slow.json: %s\n" host
        port msg;
      exit 1
    | Ok (code, _) when code <> 200 ->
      Printf.eprintf "error: http://%s:%d/slow.json answered %d\n" host port
        code;
      exit 1
    | Ok (_, body) -> (
      if json then print_string body
      else
        match J.parse body with
        | Error msg ->
          Printf.eprintf "error: cannot parse /slow.json: %s\n" msg;
          exit 1
        | Ok doc ->
          let num name j = Option.bind (J.member name j) J.to_num in
          let us j name =
            match num name j with Some n -> n /. 1e3 | None -> Float.nan
          in
          (match num "threshold_ns" doc with
          | Some t ->
            Printf.printf "threshold %.1fus (captured %d, ring %d)\n"
              (t /. 1e3)
              (match num "captured" doc with Some n -> int_of_float n | None -> 0)
              (match num "capacity" doc with Some n -> int_of_float n | None -> 0)
          | None ->
            print_endline
              "threshold: rolling p999, not yet armed (needs 1000 requests)");
          let entries =
            match Option.bind (J.member "entries" doc) J.to_list with
            | Some l -> l
            | None -> []
          in
          if entries = [] then print_endline "no captures"
          else
            List.iter
              (fun e ->
                let str name = Option.bind (J.member name e) J.to_str in
                Printf.printf
                  "#%.0f %-4s key=%.0f shard=%.0f  total %.1fus = read %.1f + \
                   decode %.1f + shard %.1f (help %.1f) + write %.1f  [over \
                   threshold %.1fus]\n"
                  (Option.value ~default:Float.nan (num "seq" e))
                  (Option.value ~default:"?" (str "op"))
                  (Option.value ~default:Float.nan (num "key" e))
                  (Option.value ~default:Float.nan (num "shard" e))
                  (us e "total_ns") (us e "read_ns") (us e "decode_ns")
                  (us e "shard_ns") (us e "help_ns") (us e "write_ns")
                  (us e "threshold_ns");
                (match J.member "view" e with
                | Some (J.Obj _ as v) ->
                  Printf.printf
                    "    shard: buckets=%.0f cardinal=%.0f load=%.2f \
                     migrating=%s progress=%.0f%%\n"
                    (Option.value ~default:Float.nan (num "buckets" v))
                    (Option.value ~default:Float.nan (num "cardinal" v))
                    (Option.value ~default:Float.nan (num "load_factor" v))
                    (match J.member "migrating" v with
                    | Some (J.Bool bv) -> string_of_bool bv
                    | _ -> "?")
                    (100.
                    *. Option.value ~default:Float.nan
                         (num "migration_progress" v))
                | _ -> ());
                match str "trace_tail" with
                | None -> ()
                | Some tail ->
                  String.split_on_char '\n' tail
                  |> List.iter (fun line ->
                         if String.trim line <> "" then
                           Printf.printf "    | %s\n" line))
              entries)
  in
  let port_arg =
    let doc = "Metrics/HTTP port of the server (the /slow.json endpoint)." in
    Arg.(value & opt int 9464 & info [ "port" ] ~docv:"PORT" ~doc)
  in
  let json_arg =
    let doc = "Dump the raw /slow.json body instead of pretty-printing." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let term = Term.(const slow $ host_arg $ port_arg $ json_arg) in
  Cmd.v
    (Cmd.info "slow"
       ~doc:"Show a KV server's tail-sampled slow-request captures.")
    term

(* --- profile: fetch and render a server's contention profile --- *)

let profile_cmd =
  let profile host port json top_n =
    let module MS = Nbhash_telemetry.Metrics_server in
    let module J = Nbhash_util.Json in
    match MS.http_get ~host ~port "/profile.json" with
    | Error msg ->
      Printf.eprintf "error: cannot fetch http://%s:%d/profile.json: %s\n" host
        port msg;
      exit 1
    | Ok (404, _) ->
      Printf.eprintf
        "error: profiling is not active on http://%s:%d (start the server \
         with a resident profiler, e.g. nbhash_cli serve)\n"
        host port;
      exit 1
    | Ok (code, _) when code <> 200 ->
      Printf.eprintf "error: http://%s:%d/profile.json answered %d\n" host
        port code;
      exit 1
    | Ok (_, body) -> (
      if json then print_string body
      else
        match J.parse body with
        | Error msg ->
          Printf.eprintf "error: cannot parse /profile.json: %s\n" msg;
          exit 1
        | Ok doc ->
          let num name j = Option.bind (J.member name j) J.to_num in
          let str name j = Option.bind (J.member name j) J.to_str in
          let nf name j = Option.value ~default:Float.nan (num name j) in
          let total = nf "total_retries" doc in
          let legacy = nf "legacy_cas_retry" doc in
          Printf.printf "total retries %.0f" total;
          if legacy >= 0. then
            if legacy = total then Printf.printf " (= probe cas_retry)"
            else
              Printf.printf " (probe cas_retry %.0f — in-flight drift %.0f)"
                legacy (legacy -. total);
          print_newline ();
          (* Ranked site table; the server already sorts by retries. *)
          let sites =
            Option.value ~default:[]
              (Option.bind (J.member "sites" doc) J.to_list)
          in
          let live =
            List.filter
              (fun s -> nf "retries" s > 0. || nf "alloc_words" s > 0.)
              sites
          in
          if live = [] then print_endline "no contended sites"
          else begin
            Printf.printf "%-28s %10s %10s %10s %12s\n" "SITE" "RETRIES"
              "GAP-P50us" "GAP-P99us" "ALLOC-WORDS";
            List.iteri
              (fun i s ->
                if i < top_n then
                  let gap name =
                    match Option.bind (J.member "gap_ns" s) (J.member name) with
                    | Some v ->
                      Option.value ~default:Float.nan (J.to_num v) /. 1e3
                    | None -> Float.nan
                  in
                  Printf.printf "%-28s %10.0f %10.1f %10.1f %12.0f\n"
                    (Option.value ~default:"?" (str "name" s))
                    (nf "retries" s) (gap "p50") (gap "p99")
                    (nf "alloc_words" s))
              live
          end;
          (* False-sharing report: one line per sampled source, plus
             any cache line whose ping-pong score is nonzero. *)
          (match Option.bind (J.member "false_sharing" doc) J.to_list with
          | None | Some [] -> ()
          | Some reports ->
            print_newline ();
            Printf.printf "%-20s %6s %14s %10s %10s\n" "FALSE-SHARING" "LINE"
              "WRITES/S" "WRITERS" "PING-PONG";
            List.iter
              (fun r ->
                let src = Option.value ~default:"?" (str "source" r) in
                let lines =
                  Option.value ~default:[]
                    (Option.bind (J.member "lines" r) J.to_list)
                in
                let hot =
                  List.filter (fun l -> nf "ping_pong" l > 0.) lines
                in
                if hot = [] then
                  Printf.printf "%-20s %6s %14s %10s %10s\n" src "-" "-" "-"
                    "0"
                else
                  List.iter
                    (fun l ->
                      Printf.printf "%-20s %6.0f %14.0f %10.0f %10.0f\n" src
                        (nf "line" l) (nf "writes_per_s" l) (nf "writers" l)
                        (nf "ping_pong" l))
                    hot)
              reports);
          (match J.member "memprof" doc with
          | Some m ->
            Printf.printf "memprof: %s%s\n"
              (Option.value ~default:"?" (str "state" m))
              (match str "reason" m with
              | Some r -> " (" ^ r ^ ")"
              | None -> (
                match num "sampling_rate" m with
                | Some r -> Printf.sprintf " (rate %g)" r
                | None -> ""))
          | None -> ());
          (* Registered views: the kv server publishes per-shard table
             views; anything else is listed by name. *)
          match Option.bind (J.member "views" doc) J.to_list with
          | None | Some [] -> ()
          | Some views ->
            List.iter
              (fun v ->
                let vname = Option.value ~default:"?" (str "name" v) in
                match Option.bind (J.member "view" v) J.to_list with
                | Some entries ->
                  Printf.printf "view %s:\n" vname;
                  List.iter
                    (fun e ->
                      Printf.printf
                        "  shard %.0f: buckets=%.0f cardinal=%.0f load=%.2f \
                         depth=%.0f frozen=%.0f migrating=%s\n"
                        (nf "shard" e) (nf "buckets" e) (nf "cardinal" e)
                        (nf "load_factor" e) (nf "max_depth" e)
                        (nf "frozen_buckets" e)
                        (match J.member "migrating" e with
                        | Some (J.Bool bv) -> string_of_bool bv
                        | _ -> "?"))
                    entries
                | None -> Printf.printf "view %s: (opaque)\n" vname)
              views)
  in
  let port_arg =
    let doc = "Metrics/HTTP port of the server (the /profile.json endpoint)." in
    Arg.(value & opt int 9464 & info [ "port" ] ~docv:"PORT" ~doc)
  in
  let json_arg =
    let doc = "Dump the raw /profile.json body instead of pretty-printing." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let top_arg =
    let doc = "Show at most $(docv) sites." in
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"N" ~doc)
  in
  let term = Term.(const profile $ host_arg $ port_arg $ json_arg $ top_arg) in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Show a server's contention profile: ranked retry sites, \
          false-sharing scores, allocation attribution.")
    term

let () =
  let doc = "dynamic-sized nonblocking hash table workbench" in
  let info = Cmd.info "nbhash_cli" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd;
            sweep_cmd;
            hist_cmd;
            stats_cmd;
            trace_cmd;
            top_cmd;
            serve_cmd;
            load_cmd;
            drain_cmd;
            force_resize_cmd;
            slow_cmd;
            profile_cmd;
            list_cmd;
          ]))
