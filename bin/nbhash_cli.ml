(* Command-line driver for ad-hoc experiments on the hash tables:

     nbhash_cli run   --table LFArray --threads 4 --range 16 --lookup 0.9
     nbhash_cli sweep --threads 1,2,4 --range 16 --lookup 0.34
     nbhash_cli stats --table WFArray --threads 2
     nbhash_cli trace --table WFArray --threads 2 -o trace.json
     nbhash_cli list

   `run` measures one configuration; `sweep` prints one row per
   implementation across a list of thread counts; `stats` runs one
   configuration under a recording telemetry probe and prints the
   event counters; `trace` runs one configuration under the flight
   recorder and writes a Perfetto-loadable Chrome trace; `list` names
   the available implementations. *)

open Cmdliner
module Factory = Nbhash_workload.Factory
module Runner = Nbhash_workload.Runner
module Workload = Nbhash_workload.Workload
module Report = Nbhash_workload.Report
module Policy = Nbhash.Policy

let table_names = List.map fst Factory.with_michael

let policy_of ~presized ~key_range name =
  if presized || name = "SplitOrder" || name = "Michael" then
    Policy.presized (max 64 (key_range / 2))
  else { Policy.default with init_buckets = 64 }

let range_arg =
  let doc = "Key range exponent: keys are drawn from [0, 2^$(docv))." in
  Arg.(value & opt int 16 & info [ "range" ] ~docv:"BITS" ~doc)

let lookup_arg =
  let doc = "Lookup ratio in [0,1]; inserts and removes split the rest." in
  Arg.(value & opt float 0.34 & info [ "lookup" ] ~docv:"L" ~doc)

let duration_arg =
  let doc = "Seconds per measurement." in
  Arg.(value & opt float 1.0 & info [ "duration" ] ~docv:"SEC" ~doc)

let trials_arg =
  let doc = "Trials per configuration (median-of reported)." in
  Arg.(value & opt int 3 & info [ "trials" ] ~docv:"N" ~doc)

let presized_arg =
  let doc = "Disable dynamic resizing and presize every table." in
  Arg.(value & flag & info [ "presized" ] ~doc)

let seed_arg =
  let doc = "Base PRNG seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let threads_list_arg =
  let doc = "Comma-separated thread counts." in
  Arg.(value & opt (list int) [ 1; 2; 4 ] & info [ "threads" ] ~docv:"T,..." ~doc)

let table_arg =
  let doc =
    Printf.sprintf "Implementation to drive; one of %s."
      (String.concat ", " table_names)
  in
  Arg.(value & opt string "LFArray" & info [ "table" ] ~docv:"NAME" ~doc)

let validate_table name =
  if not (List.mem name table_names) then begin
    Printf.eprintf "unknown table %S; known: %s\n" name
      (String.concat ", " table_names);
    exit 1
  end

let measure name ~threads ~range_bits ~lookup ~duration ~trials ~presized
    ~seed =
  let key_range = 1 lsl range_bits in
  let spec = Workload.spec ~lookup_ratio:lookup ~key_range () in
  let make () =
    (Factory.by_name name)
      ~policy:(policy_of ~presized ~key_range name)
      ~max_threads:(threads + 2) ()
  in
  ignore seed;
  Runner.run_trials make ~threads ~spec ~duration ~trials

let run_cmd =
  let run table threads_list range_bits lookup duration trials presized seed =
    validate_table table;
    List.iter
      (fun threads ->
        let last, summary =
          measure table ~threads ~range_bits ~lookup ~duration ~trials
            ~presized ~seed
        in
        Printf.printf
          "%s T=%d range=2^%d L=%.0f%%: %.3f ops/usec (median %.3f, sd %.3f) \
           buckets=%d cardinal=%d\n"
          table threads range_bits (lookup *. 100.)
          summary.Nbhash_util.Stats.mean summary.Nbhash_util.Stats.median
          summary.Nbhash_util.Stats.stddev last.Runner.final_buckets
          last.Runner.final_cardinal)
      threads_list
  in
  let term =
    Term.(
      const run $ table_arg $ threads_list_arg $ range_arg $ lookup_arg
      $ duration_arg $ trials_arg $ presized_arg $ seed_arg)
  in
  Cmd.v (Cmd.info "run" ~doc:"Measure one implementation.") term

let sweep_cmd =
  let sweep threads_list range_bits lookup duration trials presized seed =
    let header =
      "algorithm" :: List.map (Printf.sprintf "T=%d") threads_list
    in
    let rows =
      List.map
        (fun name ->
          name
          :: List.map
               (fun threads ->
                 let _, summary =
                   measure name ~threads ~range_bits ~lookup ~duration ~trials
                     ~presized ~seed
                 in
                 Report.ops_per_usec summary.Nbhash_util.Stats.median)
               threads_list)
        table_names
    in
    Printf.printf "range=2^%d L=%.0f%% [ops/usec, median of %d]\n" range_bits
      (lookup *. 100.) trials;
    Report.print_table ~header ~rows
  in
  let term =
    Term.(
      const sweep $ threads_list_arg $ range_arg $ lookup_arg $ duration_arg
      $ trials_arg $ presized_arg $ seed_arg)
  in
  Cmd.v (Cmd.info "sweep" ~doc:"Compare all implementations.") term

let hist_cmd =
  (* Populate one table and print its bucket-occupancy histogram: how
     well the policy is spreading keys. *)
  let hist table range_bits lookup presized seed =
    validate_table table;
    let key_range = 1 lsl range_bits in
    let spec = Workload.spec ~lookup_ratio:lookup ~key_range () in
    let t =
      (Factory.by_name table)
        ~policy:(policy_of ~presized ~key_range table)
        ~max_threads:4 ()
    in
    Runner.prepopulate t spec ~seed;
    let occupancy = Hashtbl.create 16 in
    Array.iter
      (fun n ->
        Hashtbl.replace occupancy n
          (1 + Option.value ~default:0 (Hashtbl.find_opt occupancy n)))
      (t.Factory.bucket_sizes ());
    Printf.printf "%s: %d elements in %d buckets\n" table
      (t.Factory.cardinal ())
      (t.Factory.bucket_count ());
    let keys =
      Hashtbl.fold (fun k _ acc -> k :: acc) occupancy [] |> List.sort compare
    in
    List.iter
      (fun n ->
        let c = Hashtbl.find occupancy n in
        Printf.printf "%3d elems: %6d buckets %s\n" n c
          (String.make (min 60 (60 * c / max 1 (t.Factory.bucket_count ()))) '#'))
      keys
  in
  let term =
    Term.(
      const hist $ table_arg $ range_arg $ lookup_arg $ presized_arg
      $ seed_arg)
  in
  Cmd.v (Cmd.info "hist" ~doc:"Bucket occupancy histogram.") term

let stats_cmd =
  (* One measured run under a recording probe; the snapshot covers the
     measurement window only (the Runner resets at the barrier). *)
  let stats table threads_list range_bits lookup duration presized seed json =
    validate_table table;
    Nbhash_telemetry.Global.install (Nbhash_telemetry.Probe.recording ());
    List.iter
      (fun threads ->
        let last, _ =
          measure table ~threads ~range_bits ~lookup ~duration ~trials:1
            ~presized ~seed
        in
        Printf.printf "%s T=%d range=2^%d L=%.0f%%: %.3f ops/usec\n" table
          threads range_bits (lookup *. 100.) last.Runner.throughput;
        match last.Runner.telemetry with
        | None -> print_endline "(no recording probe installed)"
        | Some snap ->
          if json then print_endline (Nbhash_telemetry.Snapshot.to_json snap)
          else print_string (Nbhash_telemetry.Snapshot.to_string snap))
      threads_list
  in
  let json_arg =
    let doc = "Print the snapshot as JSON instead of a table." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let term =
    Term.(
      const stats $ table_arg $ threads_list_arg $ range_arg $ lookup_arg
      $ duration_arg $ presized_arg $ seed_arg $ json_arg)
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Measure one implementation with telemetry.")
    term

let trace_cmd =
  (* One measured run with the flight recorder installed; the Runner
     clears the rings at the measurement barrier, so the written trace
     covers the measurement window. *)
  let trace table threads_list range_bits lookup duration presized seed out
      tail =
    validate_table table;
    let tr = Nbhash_telemetry.Trace.create ~lanes:64 ~capacity:(1 lsl 14) () in
    Nbhash_telemetry.Trace.install tr;
    List.iter
      (fun threads ->
        let last, _ =
          measure table ~threads ~range_bits ~lookup ~duration ~trials:1
            ~presized ~seed
        in
        Printf.printf "%s T=%d range=2^%d L=%.0f%%: %.3f ops/usec\n" table
          threads range_bits (lookup *. 100.) last.Runner.throughput)
      threads_list;
    let records = Nbhash_telemetry.Trace.records tr in
    Printf.printf "captured %d trace records (%d written)\n"
      (Array.length records)
      (Nbhash_telemetry.Trace.written tr);
    if tail > 0 then
      Nbhash_telemetry.Trace.dump_tail ~n:tail Format.std_formatter tr;
    (match out with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> Nbhash_telemetry.Trace.write_chrome oc tr);
      Printf.printf "wrote %s — open it at https://ui.perfetto.dev\n" path)
  in
  let out_arg =
    let doc = "Write the merged trace as Chrome trace-event JSON to $(docv)." in
    Arg.(
      value & opt (some string) None & info [ "o"; "out" ] ~docv:"PATH" ~doc)
  in
  let tail_arg =
    let doc = "Print the newest $(docv) merged records after the run." in
    Arg.(value & opt int 0 & info [ "tail" ] ~docv:"N" ~doc)
  in
  let term =
    Term.(
      const trace $ table_arg $ threads_list_arg $ range_arg $ lookup_arg
      $ duration_arg $ presized_arg $ seed_arg $ out_arg $ tail_arg)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Measure one implementation under the flight recorder.")
    term

let list_cmd =
  let list () = List.iter print_endline table_names in
  Cmd.v
    (Cmd.info "list" ~doc:"List available implementations.")
    Term.(const list $ const ())

let () =
  let doc = "dynamic-sized nonblocking hash table workbench" in
  let info = Cmd.info "nbhash_cli" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ run_cmd; sweep_cmd; hist_cmd; stats_cmd; trace_cmd; list_cmd ]))
