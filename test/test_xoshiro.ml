open Nbhash_util

let test_deterministic () =
  let a = Xoshiro.create 7 and b = Xoshiro.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Xoshiro.next a) (Xoshiro.next b)
  done

let test_seeds_differ () =
  let a = Xoshiro.create 1 and b = Xoshiro.create 2 in
  let same = ref 0 in
  for _ = 1 to 100 do
    if Xoshiro.next a = Xoshiro.next b then incr same
  done;
  Alcotest.(check bool) "streams diverge" true (!same < 5)

let test_split_independent () =
  let a = Xoshiro.create 3 in
  let b = Xoshiro.split a in
  let same = ref 0 in
  for _ = 1 to 100 do
    if Xoshiro.next a = Xoshiro.next b then incr same
  done;
  Alcotest.(check bool) "split stream diverges" true (!same < 5)

let test_non_negative () =
  let rng = Xoshiro.create 11 in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "non-negative" true (Xoshiro.next rng >= 0)
  done

let prop_below_in_range =
  QCheck2.Test.make ~name:"below lands in [0, n)" ~count:1000
    QCheck2.Gen.(pair small_int (int_range 1 10_000))
    (fun (seed, n) ->
      let rng = Xoshiro.create seed in
      let v = Xoshiro.below rng n in
      v >= 0 && v < n)

let prop_float_unit_interval =
  QCheck2.Test.make ~name:"float lands in [0, 1)" ~count:1000
    QCheck2.Gen.small_int (fun seed ->
      let rng = Xoshiro.create seed in
      let v = Xoshiro.float rng in
      v >= 0. && v < 1.)

let test_below_covers () =
  (* Every residue of a small modulus should appear quickly: a crude
     uniformity check that catches masking bugs. *)
  let rng = Xoshiro.create 5 in
  let seen = Array.make 7 false in
  for _ = 1 to 2000 do
    seen.(Xoshiro.below rng 7) <- true
  done;
  Alcotest.(check bool) "all residues hit" true (Array.for_all Fun.id seen)

let test_bool_balanced () =
  let rng = Xoshiro.create 13 in
  let trues = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Xoshiro.bool rng then incr trues
  done;
  let ratio = Float.of_int !trues /. Float.of_int n in
  Alcotest.(check bool) "roughly balanced" true (ratio > 0.45 && ratio < 0.55)

let suite =
  [
    ( "xoshiro",
      [
        Alcotest.test_case "deterministic per seed" `Quick test_deterministic;
        Alcotest.test_case "seeds differ" `Quick test_seeds_differ;
        Alcotest.test_case "split independence" `Quick test_split_independent;
        Alcotest.test_case "non-negative draws" `Quick test_non_negative;
        Alcotest.test_case "below covers residues" `Quick test_below_covers;
        Alcotest.test_case "bool balanced" `Quick test_bool_balanced;
        QCheck_alcotest.to_alcotest prop_below_in_range;
        QCheck_alcotest.to_alcotest prop_float_unit_interval;
      ] );
  ]
