open Nbhash_util

let test_window_growth () =
  let b = Backoff.create ~min_spins:2 ~max_spins:16 () in
  Alcotest.(check int) "initial" 2 (Backoff.window b);
  Backoff.once b;
  Alcotest.(check int) "doubled" 4 (Backoff.window b);
  Backoff.once b;
  Backoff.once b;
  Alcotest.(check int) "doubled twice more" 16 (Backoff.window b);
  Backoff.once b;
  Alcotest.(check int) "saturates" 16 (Backoff.window b)

let test_reset () =
  let b = Backoff.create ~min_spins:1 ~max_spins:8 () in
  Backoff.once b;
  Backoff.once b;
  Backoff.reset b;
  Alcotest.(check int) "back to minimum" 1 (Backoff.window b)

let test_defaults_valid () =
  let b = Backoff.create () in
  for _ = 1 to 20 do
    Backoff.once b
  done;
  Alcotest.(check int) "default saturation" 1024 (Backoff.window b)

let suite =
  [
    ( "backoff",
      [
        Alcotest.test_case "window growth" `Quick test_window_growth;
        Alcotest.test_case "reset" `Quick test_reset;
        Alcotest.test_case "defaults" `Quick test_defaults_valid;
      ] );
  ]
