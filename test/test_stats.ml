open Nbhash_util

let feq = Alcotest.(check (float 1e-9))

let test_mean () =
  feq "mean" 2.5 (Stats.mean [| 1.; 2.; 3.; 4. |]);
  feq "singleton" 7. (Stats.mean [| 7. |])

let test_stddev () =
  feq "constant" 0. (Stats.stddev [| 5.; 5.; 5. |]);
  feq "sample stddev" (sqrt (5. /. 3.)) (Stats.stddev [| 1.; 2.; 3.; 4. |]);
  feq "singleton" 0. (Stats.stddev [| 3. |])

let test_percentile () =
  let xs = [| 4.; 1.; 3.; 2. |] in
  feq "p0" 1. (Stats.percentile xs 0.);
  feq "p100" 4. (Stats.percentile xs 100.);
  feq "p50" 2.5 (Stats.percentile xs 50.);
  feq "p25" 1.75 (Stats.percentile xs 25.)

let test_summarize () =
  let s = Stats.summarize [| 3.; 1.; 2. |] in
  Alcotest.(check int) "n" 3 s.Stats.n;
  feq "mean" 2. s.Stats.mean;
  feq "min" 1. s.Stats.min;
  feq "max" 3. s.Stats.max;
  feq "median" 2. s.Stats.median;
  feq "p95" 2.9 s.Stats.p95;
  feq "p99" 2.98 s.Stats.p99

let test_summarize_percentiles () =
  (* 0..100: the interpolated p-th percentile is exactly p. *)
  let xs = Array.init 101 Float.of_int in
  let s = Stats.summarize xs in
  feq "median" 50. s.Stats.median;
  feq "p95" 95. s.Stats.p95;
  feq "p99" 99. s.Stats.p99;
  feq "agrees with percentile (p95)" (Stats.percentile xs 95.) s.Stats.p95;
  feq "agrees with percentile (p99)" (Stats.percentile xs 99.) s.Stats.p99

let test_percentile_sorted () =
  let xs = [| 4.; 1.; 3.; 2. |] in
  let sorted = [| 1.; 2.; 3.; 4. |] in
  feq "matches percentile" (Stats.percentile xs 42.)
    (Stats.percentile_sorted sorted 42.)

let prop_percentile_monotone =
  QCheck2.Test.make ~name:"percentile is monotone in p" ~count:300
    QCheck2.Gen.(
      pair
        (array_size (int_range 1 20) (float_bound_exclusive 100.))
        (pair (float_bound_inclusive 100.) (float_bound_inclusive 100.)))
    (fun (xs, (p1, p2)) ->
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Stats.percentile xs lo <= Stats.percentile xs hi +. 1e-9)

let prop_mean_between_min_max =
  QCheck2.Test.make ~name:"mean lies within [min, max]" ~count:300
    QCheck2.Gen.(array_size (int_range 1 20) (float_bound_exclusive 1000.))
    (fun xs ->
      let s = Stats.summarize xs in
      s.Stats.min <= s.Stats.mean +. 1e-9 && s.Stats.mean <= s.Stats.max +. 1e-9)

let suite =
  [
    ( "stats",
      [
        Alcotest.test_case "mean" `Quick test_mean;
        Alcotest.test_case "stddev" `Quick test_stddev;
        Alcotest.test_case "percentile" `Quick test_percentile;
        Alcotest.test_case "summarize" `Quick test_summarize;
        Alcotest.test_case "summarize percentiles" `Quick
          test_summarize_percentiles;
        Alcotest.test_case "percentile_sorted" `Quick test_percentile_sorted;
        QCheck_alcotest.to_alcotest prop_percentile_monotone;
        QCheck_alcotest.to_alcotest prop_mean_between_min_max;
      ] );
  ]
