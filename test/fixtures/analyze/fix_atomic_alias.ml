(* Seeded violation: a module alias that resolves to Stdlib.Atomic.
   The regex lint cannot see through [A.]; the typed analyzer must
   flag both the alias and every use. *)
module A = Stdlib.Atomic

let counter = A.make 0
let read () = A.get counter
