(* Seeded violation: a compare_and_set whose result is discarded with
   no retry branch and no [@nbhash.cas_ok]. *)
module Atomic = Nbhash_util.Nb_atomic

let r = Atomic.make 0
let publish () = ignore (Atomic.compare_and_set r 0 1)
let publish2 () = (ignore (Atomic.compare_and_set r 1 2) : unit)
