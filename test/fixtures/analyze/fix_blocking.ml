(* Seeded violations: a blocking primitive (Mutex), a bare Obj.magic,
   and a reasonless allowlist attribute (attr-reason). *)
let m = Mutex.create ()

let locked_section f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let coerce (x : int) : bool = Obj.magic x

(* The attribute grants the allow but is itself flagged: the reason
   string is the audit trail. *)
let coerce_attributed (x : int) : bool = (Obj.magic x [@nbhash.magic_ok])
