(* Seeded violation: a plain mutable field on a type reachable from a
   module-level binding (the escape heuristic's "process-global state"
   seed) without [@nbhash.plain_ok]. *)
type t = { mutable count : int }

let global = { count = 0 }
let touch () = global.count <- global.count + 1
