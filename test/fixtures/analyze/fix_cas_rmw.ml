(* Seeded violation: an Atomic.get -> Atomic.set read-modify-write on
   the same location inside one top-level binding (ABA-prone). Uses the
   shim, so only the cas-rmw pass fires. *)
module Atomic = Nbhash_util.Nb_atomic

let r = Atomic.make 0
let bump () = Atomic.set r (Atomic.get r + 1)
