(* Positive control: shim-pointed atomics, a CAS retry loop, and a
   reasoned allowlist attribute. The analyzer must report nothing. *)
module Atomic = Nbhash_util.Nb_atomic

let counter = Atomic.make 0

let rec add_loop delta =
  let cur = Atomic.get counter in
  if not (Atomic.compare_and_set counter cur (cur + delta)) then
    add_loop delta

type stats = {
  mutable local_hits : int
      [@nbhash.plain_ok "per-domain scratch record, never published"];
}

let fresh_stats () = { local_hits = 0 }
