(* Long-running soak harness (not part of `dune runtest`):

     dune exec test/soak/soak.exe -- [churn] [seconds-per-table] [table ...]

   Default mode: worker domains run a mixed workload over a SHARED key
   range with per-key success ledgers while a dedicated domain storms
   resizes; at the end the ledger equation and the structural
   invariants are checked.

   `churn` mode: each worker owns a DISJOINT key range and tracks the
   expected membership of every key it touched locally, so the final
   membership is exact (not just ledger-consistent) however the
   resize storm interleaves with the cooperative migration sweep.

   Exit status is non-zero on any violation. Default: 10 seconds per
   table, all tables. *)

module Factory = Nbhash_workload.Factory
module Trace = Nbhash_telemetry.Trace
module Watchdog = Nbhash_telemetry.Watchdog

let domains = 4
let key_range = 256

(* Run [body] (the spawn/storm/join phase of one table's soak) under
   the flight recorder and a liveness watchdog. The watchdog samples
   the table's announce array from its own domain; if any announced
   operation stays pending past the age limit — a helping failure, the
   exact hang class the nonblocking claims rule out — it prints the
   stall and the merged trace tail (what every domain was doing just
   before), and the stall counts as a soak violation. *)
let watched (table : Factory.table) name body =
  let tr = Trace.create ~lanes:16 ~capacity:4096 () in
  Trace.install tr;
  let wd =
    Watchdog.create ~max_age_ns:2_000_000_000
      [ { Watchdog.name; pending = table.Factory.pending } ]
  in
  let wd_stop = Atomic.make false in
  let wd_domain =
    Domain.spawn (fun () ->
        Watchdog.run ~interval:0.25
          ~on_stall:(fun stalls ->
            Printf.printf "\n  WATCHDOG STALL:";
            List.iter
              (fun s ->
                Format.printf "@.    %a" Watchdog.pp_stall s)
              stalls;
            Format.printf "@.  trace tail:@.";
            Trace.dump_tail ~n:30 Format.std_formatter tr)
          ~stop:(fun () -> Atomic.get wd_stop)
          wd)
  in
  body ();
  Atomic.set wd_stop true;
  let stalls = Domain.join wd_domain in
  Trace.uninstall ();
  stalls

let soak_table name (maker : Factory.maker) ~seconds =
  Printf.printf "%-12s soaking %.0fs ... %!" name seconds;
  let table = maker ~policy:Nbhash.Policy.aggressive ~max_threads:8 () in
  let ins_succ = Array.init domains (fun _ -> Array.make key_range 0) in
  let rem_succ = Array.init domains (fun _ -> Array.make key_range 0) in
  let stop = Atomic.make false in
  let total_ops = Atomic.make 0 in
  let worker d () =
    let ops = table.Factory.new_handle () in
    let rng = Nbhash_util.Xoshiro.create (9000 + d) in
    let n = ref 0 in
    while not (Atomic.get stop) do
      incr n;
      let k = Nbhash_util.Xoshiro.below rng key_range in
      match Nbhash_util.Xoshiro.below rng 3 with
      | 0 -> if ops.Factory.ins k then ins_succ.(d).(k) <- ins_succ.(d).(k) + 1
      | 1 -> if ops.Factory.rem k then rem_succ.(d).(k) <- rem_succ.(d).(k) + 1
      | _ -> ignore (ops.Factory.look k)
    done;
    ignore (Atomic.fetch_and_add total_ops !n)
  in
  let stormer () =
    let ops = table.Factory.new_handle () in
    let i = ref 0 in
    while not (Atomic.get stop) do
      incr i;
      ops.Factory.force_resize ~grow:(!i mod 2 = 0);
      for _ = 1 to 1_000 do
        Domain.cpu_relax ()
      done
    done
  in
  let stalls =
    watched table name (fun () ->
        let ds =
          Domain.spawn stormer
          :: List.init domains (fun d -> Domain.spawn (worker d))
        in
        Unix.sleepf seconds;
        Atomic.set stop true;
        List.iter Domain.join ds)
  in
  table.Factory.check_invariants ();
  let final = table.Factory.elements () in
  let mem k = Array.exists (fun x -> x = k) final in
  let violations = ref stalls in
  for k = 0 to key_range - 1 do
    let net = ref 0 in
    for d = 0 to domains - 1 do
      net := !net + ins_succ.(d).(k) - rem_succ.(d).(k)
    done;
    if not ((!net = 0 || !net = 1) && (!net = 1) = mem k) then begin
      incr violations;
      Printf.printf "\n  VIOLATION key %d: net=%d mem=%b" k !net (mem k)
    end
  done;
  let stats = table.Factory.resize_stats () in
  Printf.printf "%d ops, %d grows, %d shrinks, %d violations\n"
    (Atomic.get total_ops) stats.Nbhash.Hashset_intf.grows
    stats.Nbhash.Hashset_intf.shrinks !violations;
  !violations = 0

(* Disjoint-range churn: domain [d] owns keys [d*key_range ..
   (d+1)*key_range) and is the only writer of them, so its local
   [expected] array IS the truth for those keys at the end. The
   stormer keeps the migration sweep permanently busy. *)
let churn_table name (maker : Factory.maker) ~seconds =
  Printf.printf "%-12s churning %.0fs ... %!" name seconds;
  let table = maker ~policy:Nbhash.Policy.default ~max_threads:8 () in
  let expected = Array.init domains (fun _ -> Array.make key_range false) in
  let stop = Atomic.make false in
  let total_ops = Atomic.make 0 in
  let worker d () =
    let ops = table.Factory.new_handle () in
    let rng = Nbhash_util.Xoshiro.create (7000 + d) in
    let base = d * key_range in
    let n = ref 0 in
    while not (Atomic.get stop) do
      incr n;
      let k = Nbhash_util.Xoshiro.below rng key_range in
      if Nbhash_util.Xoshiro.below rng 2 = 0 then begin
        ignore (ops.Factory.ins (base + k));
        expected.(d).(k) <- true
      end
      else begin
        ignore (ops.Factory.rem (base + k));
        expected.(d).(k) <- false
      end
    done;
    ignore (Atomic.fetch_and_add total_ops !n)
  in
  let stormer () =
    let ops = table.Factory.new_handle () in
    let i = ref 0 in
    while not (Atomic.get stop) do
      incr i;
      ops.Factory.force_resize ~grow:(!i mod 2 = 0);
      for _ = 1 to 1_000 do
        Domain.cpu_relax ()
      done
    done
  in
  let stalls =
    watched table name (fun () ->
        let ds =
          Domain.spawn stormer
          :: List.init domains (fun d -> Domain.spawn (worker d))
        in
        Unix.sleepf seconds;
        Atomic.set stop true;
        List.iter Domain.join ds)
  in
  table.Factory.check_invariants ();
  let final = table.Factory.elements () in
  let mem k = Array.exists (fun x -> x = k) final in
  let violations = ref stalls in
  for d = 0 to domains - 1 do
    for k = 0 to key_range - 1 do
      if mem ((d * key_range) + k) <> expected.(d).(k) then begin
        incr violations;
        Printf.printf "\n  VIOLATION key %d: expected=%b mem=%b"
          ((d * key_range) + k)
          expected.(d).(k)
          (mem ((d * key_range) + k))
      end
    done
  done;
  (* Nothing outside the owned ranges may ever appear. *)
  Array.iter
    (fun k ->
      if k < 0 || k >= domains * key_range then begin
        incr violations;
        Printf.printf "\n  VIOLATION stray key %d" k
      end)
    final;
  let stats = table.Factory.resize_stats () in
  Printf.printf "%d ops, %d grows, %d shrinks, %d violations\n"
    (Atomic.get total_ops) stats.Nbhash.Hashset_intf.grows
    stats.Nbhash.Hashset_intf.shrinks !violations;
  !violations = 0

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let run_table, args =
    match args with
    | "churn" :: rest -> (churn_table, rest)
    | rest -> (soak_table, rest)
  in
  let seconds, names =
    match args with
    | s :: rest when float_of_string_opt s <> None ->
      (float_of_string s, rest)
    | rest -> (10., rest)
  in
  let chosen =
    match names with
    | [] -> Factory.with_michael
    | names ->
      List.map
        (fun n ->
          match List.assoc_opt n Factory.with_michael with
          | Some m -> (n, m)
          | None ->
            Printf.eprintf "unknown table %s\n" n;
            exit 2)
        names
  in
  let ok =
    List.for_all (fun (n, m) -> run_table n m ~seconds) chosen
  in
  if ok then print_endline "soak passed"
  else begin
    print_endline "soak FAILED";
    exit 1
  end
