open Nbhash

let fresh ?policy () =
  let t = Hashmap.create ?policy () in
  (t, Hashmap.register t)

let test_put_get () =
  let _, h = fresh () in
  Alcotest.(check (option string)) "fresh" None (Hashmap.put h 1 "one");
  Alcotest.(check (option string)) "get" (Some "one") (Hashmap.get h 1);
  Alcotest.(check (option string)) "replace" (Some "one")
    (Hashmap.put h 1 "uno");
  Alcotest.(check (option string)) "updated" (Some "uno") (Hashmap.get h 1);
  Alcotest.(check (option string)) "absent" None (Hashmap.get h 2)

let test_remove () =
  let t, h = fresh () in
  ignore (Hashmap.put h 3 "x");
  Alcotest.(check (option string)) "removed" (Some "x") (Hashmap.remove h 3);
  Alcotest.(check (option string)) "remove absent" None (Hashmap.remove h 3);
  Alcotest.(check bool) "mem" false (Hashmap.mem h 3);
  Alcotest.(check int) "empty" 0 (Hashmap.cardinal t)

let test_update () =
  let _, h = fresh () in
  Hashmap.update h 9 (function None -> 1 | Some v -> v + 1);
  Hashmap.update h 9 (function None -> 1 | Some v -> v + 1);
  Hashmap.update h 9 (function None -> 1 | Some v -> v + 1);
  Alcotest.(check (option int)) "counter" (Some 3) (Hashmap.get h 9)

let test_grow_preserves_bindings () =
  let t, h = fresh ~policy:(Policy.presized 1) () in
  for k = 0 to 199 do
    ignore (Hashmap.put h k (k * k))
  done;
  Hashmap.force_resize h ~grow:true;
  Hashmap.force_resize h ~grow:true;
  Alcotest.(check int) "buckets" 4 (Hashmap.bucket_count t);
  for k = 0 to 199 do
    Alcotest.(check (option int)) "binding survives" (Some (k * k))
      (Hashmap.get h k)
  done;
  Hashmap.force_resize h ~grow:false;
  for k = 0 to 199 do
    Alcotest.(check (option int)) "binding survives shrink" (Some (k * k))
      (Hashmap.get h k)
  done;
  Hashmap.check_invariants t

let test_policy_growth () =
  let t, h = fresh ~policy:Policy.default () in
  for k = 0 to 1999 do
    ignore (Hashmap.put h k k)
  done;
  Alcotest.(check bool) "grew" true (Hashmap.bucket_count t > 1);
  Alcotest.(check int) "cardinal" 2000 (Hashmap.cardinal t);
  Hashmap.check_invariants t

let test_iter_fold () =
  let t, h = fresh () in
  ignore (Hashmap.put h 1 10);
  ignore (Hashmap.put h 2 20);
  ignore (Hashmap.put h 3 30);
  Alcotest.(check int) "fold sums values" 60
    (Hashmap.fold (fun _ v acc -> v + acc) t 0);
  Alcotest.(check int) "fold sums keys" 6
    (Hashmap.fold (fun k _ acc -> k + acc) t 0);
  let visited = ref 0 in
  Hashmap.iter (fun k v -> visited := !visited + if v = k * 10 then 1 else 0) t;
  Alcotest.(check int) "iter visits all bindings" 3 !visited

let prop_model =
  QCheck2.Test.make ~name:"Hashmap matches a Hashtbl model" ~count:200
    QCheck2.Gen.(small_list (pair (int_bound 3) (int_bound 31)))
    (fun ops ->
      let t, h = fresh ~policy:(Policy.presized 2) () in
      let model = Hashtbl.create 16 in
      let value k step = (k * 1000) + step in
      let ok =
        List.for_all Fun.id
          (List.mapi
             (fun i (c, k) ->
               match c with
               | 0 ->
                 let expected = Hashtbl.find_opt model k in
                 Hashtbl.replace model k (value k i);
                 Hashmap.put h k (value k i) = expected
               | 1 ->
                 let expected = Hashtbl.find_opt model k in
                 Hashtbl.remove model k;
                 Hashmap.remove h k = expected
               | 2 -> Hashmap.get h k = Hashtbl.find_opt model k
               | _ ->
                 Hashmap.force_resize h ~grow:(i mod 2 = 0);
                 true)
             ops)
      in
      Hashmap.check_invariants t;
      let bindings = List.sort compare (Hashmap.bindings t) in
      let expected =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) model []
        |> List.sort compare
      in
      ok && bindings = expected)

let test_concurrent_counters () =
  (* Domains concurrently bump disjoint counters via update; totals
     must be exact. *)
  let domains = 4 and bumps = 2_000 in
  let t = Hashmap.create ~policy:Policy.aggressive () in
  let worker d () =
    let h = Hashmap.register t in
    for i = 1 to bumps do
      let k = (i mod 8 * domains) + d in
      Hashmap.update h k (function None -> 1 | Some v -> v + 1)
    done
  in
  let ds = List.init domains (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join ds;
  Hashmap.check_invariants t;
  let total =
    List.fold_left (fun acc (_, v) -> acc + v) 0 (Hashmap.bindings t)
  in
  Alcotest.(check int) "no update lost" (domains * bumps) total

let suite =
  [
    ( "hashmap",
      [
        Alcotest.test_case "put/get" `Quick test_put_get;
        Alcotest.test_case "remove" `Quick test_remove;
        Alcotest.test_case "update" `Quick test_update;
        Alcotest.test_case "grow preserves bindings" `Quick
          test_grow_preserves_bindings;
        Alcotest.test_case "policy growth" `Quick test_policy_growth;
        Alcotest.test_case "iter/fold" `Quick test_iter_fold;
        QCheck_alcotest.to_alcotest prop_model;
        Alcotest.test_case "concurrent counters" `Slow
          test_concurrent_counters;
      ] );
  ]
