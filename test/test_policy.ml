open Nbhash

let test_default_valid () = Policy.validate Policy.default
let test_aggressive_valid () = Policy.validate Policy.aggressive

let test_presized () =
  let p = Policy.presized 100 in
  Policy.validate p;
  Alcotest.(check bool) "resizing disabled" false p.Policy.enabled;
  Alcotest.(check int) "rounded to a power of two" 128 p.Policy.init_buckets

let expect_invalid name p =
  Alcotest.test_case name `Quick (fun () ->
      match Policy.validate p with
      | () -> Alcotest.failf "expected %s to be rejected" name
      | exception Invalid_argument _ -> ())

(* The band rule [validate] enforces (grow > 2*shrink) exists to keep
   the load-factor triggers from oscillating: a resize taken on one
   trigger's advice must never immediately arm the opposite trigger at
   the resulting bucket count. Checked here through the actual
   [Trigger] decision functions over arbitrary valid policies, counts
   and bucket counts: grow at [b] must not imply shrink at [2b], and
   shrink at [b] must not imply grow at [b/2]. *)
let prop_no_oscillation =
  QCheck.Test.make ~name:"load-factor triggers never oscillate" ~count:500
    QCheck.(
      quad (float_range 0.5 16.0) (float_range 0.0 0.99) (int_range 0 10)
        (int_range 0 5_000))
    (fun (grow, ratio, k, count) ->
      let shrink = grow *. ratio /. 2.0 in
      let p =
        { Policy.default with heuristic = Policy.Load_factor { grow; shrink } }
      in
      Policy.validate p;
      let shared = Policy.Counter.make_shared () in
      let l = Policy.Trigger.make_local shared ~seed:42 in
      for _ = 1 to count do
        Policy.Trigger.note_insert l ~resp:true
      done;
      Policy.Trigger.flush l;
      let want_grow b =
        Policy.Trigger.want_grow p shared ~cur_buckets:b
          ~inserted_bucket_size:(fun () -> 0)
      in
      let want_shrink b =
        Policy.Trigger.want_shrink p l ~cur_buckets:b
          ~sample_bucket_size:(fun _ -> 0)
      in
      let b = 1 lsl k in
      (not (want_grow b && want_shrink b))
      && ((not (want_grow b)) || not (want_shrink (2 * b)))
      && ((not (want_shrink b)) || not (want_grow (b / 2))))

let suite =
  [
    ( "policy",
      [
        Alcotest.test_case "default valid" `Quick test_default_valid;
        Alcotest.test_case "aggressive valid" `Quick test_aggressive_valid;
        Alcotest.test_case "bucket-size default valid" `Quick (fun () ->
            Policy.validate Policy.bucket_size_default);
        Alcotest.test_case "presized" `Quick test_presized;
        expect_invalid "non-power-of-two init"
          { Policy.default with init_buckets = 3 };
        expect_invalid "non-power-of-two period"
          {
            Policy.default with
            heuristic =
              Policy.Bucket_size
                {
                  grow_threshold = 12;
                  shrink_threshold = 3;
                  shrink_samples = 4;
                  shrink_period = 5;
                };
          };
        expect_invalid "bounds out of order"
          { Policy.default with min_buckets = 8; max_buckets = 4 };
        expect_invalid "init below min"
          { Policy.default with min_buckets = 4; init_buckets = 1 };
        expect_invalid "zero samples"
          {
            Policy.default with
            heuristic =
              Policy.Bucket_size
                {
                  grow_threshold = 12;
                  shrink_threshold = 3;
                  shrink_samples = 0;
                  shrink_period = 64;
                };
          };
        expect_invalid "shrink >= grow"
          {
            Policy.default with
            heuristic = Policy.Load_factor { grow = 2.0; shrink = 2.0 };
          };
        expect_invalid "band too narrow"
          {
            Policy.default with
            heuristic = Policy.Load_factor { grow = 2.0; shrink = 1.5 };
          };
        QCheck_alcotest.to_alcotest prop_no_oscillation;
      ] );
  ]
