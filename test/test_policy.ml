open Nbhash

let test_default_valid () = Policy.validate Policy.default
let test_aggressive_valid () = Policy.validate Policy.aggressive

let test_presized () =
  let p = Policy.presized 100 in
  Policy.validate p;
  Alcotest.(check bool) "resizing disabled" false p.Policy.enabled;
  Alcotest.(check int) "rounded to a power of two" 128 p.Policy.init_buckets

let expect_invalid name p =
  Alcotest.test_case name `Quick (fun () ->
      match Policy.validate p with
      | () -> Alcotest.failf "expected %s to be rejected" name
      | exception Invalid_argument _ -> ())

let suite =
  [
    ( "policy",
      [
        Alcotest.test_case "default valid" `Quick test_default_valid;
        Alcotest.test_case "aggressive valid" `Quick test_aggressive_valid;
        Alcotest.test_case "bucket-size default valid" `Quick (fun () ->
            Policy.validate Policy.bucket_size_default);
        Alcotest.test_case "presized" `Quick test_presized;
        expect_invalid "non-power-of-two init"
          { Policy.default with init_buckets = 3 };
        expect_invalid "non-power-of-two period"
          {
            Policy.default with
            heuristic =
              Policy.Bucket_size
                {
                  grow_threshold = 12;
                  shrink_threshold = 3;
                  shrink_samples = 4;
                  shrink_period = 5;
                };
          };
        expect_invalid "bounds out of order"
          { Policy.default with min_buckets = 8; max_buckets = 4 };
        expect_invalid "init below min"
          { Policy.default with min_buckets = 4; init_buckets = 1 };
        expect_invalid "zero samples"
          {
            Policy.default with
            heuristic =
              Policy.Bucket_size
                {
                  grow_threshold = 12;
                  shrink_threshold = 3;
                  shrink_samples = 0;
                  shrink_period = 64;
                };
          };
        expect_invalid "shrink >= grow"
          {
            Policy.default with
            heuristic = Policy.Load_factor { grow = 2.0; shrink = 2.0 };
          };
        expect_invalid "band too narrow"
          {
            Policy.default with
            heuristic = Policy.Load_factor { grow = 2.0; shrink = 1.5 };
          };
      ] );
  ]
