open Nbhash

let test_default_valid () = Policy.validate Policy.default
let test_aggressive_valid () = Policy.validate Policy.aggressive

let test_presized () =
  let p = Policy.presized 100 in
  Policy.validate p;
  Alcotest.(check bool) "resizing disabled" false p.Policy.enabled;
  Alcotest.(check int) "rounded to a power of two" 128 p.Policy.init_buckets

let expect_invalid name p =
  Alcotest.test_case name `Quick (fun () ->
      match Policy.validate p with
      | () -> Alcotest.failf "expected %s to be rejected" name
      | exception Invalid_argument _ -> ())

(* The band rule [validate] enforces (grow > 2*shrink) exists to keep
   the load-factor triggers from oscillating: a resize taken on one
   trigger's advice must never immediately arm the opposite trigger at
   the resulting bucket count. Checked here through the actual
   [Trigger] decision functions over arbitrary valid policies, counts
   and bucket counts: grow at [b] must not imply shrink at [2b], and
   shrink at [b] must not imply grow at [b/2]. *)
let prop_no_oscillation =
  QCheck.Test.make ~name:"load-factor triggers never oscillate" ~count:500
    QCheck.(
      quad (float_range 0.5 16.0) (float_range 0.0 0.99) (int_range 0 10)
        (int_range 0 5_000))
    (fun (grow, ratio, k, count) ->
      let shrink = grow *. ratio /. 2.0 in
      let p =
        { Policy.default with heuristic = Policy.Load_factor { grow; shrink } }
      in
      Policy.validate p;
      let shared = Policy.Counter.make_shared () in
      let l = Policy.Trigger.make_local shared ~seed:42 in
      for _ = 1 to count do
        Policy.Trigger.note_insert l ~resp:true
      done;
      Policy.Trigger.flush l;
      let want_grow b =
        Policy.Trigger.want_grow p l ~cur_buckets:b ~migrating:false
          ~inserted_bucket_size:(fun () -> 0)
      in
      let want_shrink b =
        Policy.Trigger.want_shrink p l ~cur_buckets:b ~migrating:false
          ~sample_bucket_size:(fun _ -> 0)
      in
      let b = 1 lsl k in
      (not (want_grow b && want_shrink b))
      && ((not (want_grow b)) || not (want_shrink (2 * b)))
      && ((not (want_shrink b)) || not (want_grow (b / 2))))

(* Regression for the trigger re-arm bug: a grow's decision count
   includes deltas this handle has since compensated with pending (not
   yet flushed) removes. Evaluating the grow trigger mid-migration on
   the stale shared count used to re-fire a second grow sized for the
   pre-resize table; with [~migrating:true] the pending deltas are
   flushed first and the re-arm is suppressed. The pending delta (-7)
   stays strictly below the flush threshold (8), so only the
   migrating-flush can reconcile it. *)
let test_flush_before_trigger_during_migration () =
  let p =
    { Policy.default with heuristic = Policy.Load_factor { grow = 6.0; shrink = 1.0 } }
  in
  let shared = Policy.Counter.make_shared () in
  let filler = Policy.Trigger.make_local shared ~seed:1 in
  for _ = 1 to 100 do
    Policy.Trigger.note_insert filler ~resp:true
  done;
  Policy.Trigger.flush filler;
  let l = Policy.Trigger.make_local shared ~seed:2 in
  for _ = 1 to 7 do
    Policy.Trigger.note_remove l ~resp:true
  done;
  (* True count is 93 = 100 shared - 7 pending; 6.0 * 16 buckets = 96.
     The stale shared count (100) still clears the grow bar. *)
  let want_grow ~migrating =
    Policy.Trigger.want_grow p l ~cur_buckets:16 ~migrating
      ~inserted_bucket_size:(fun () -> 0)
  in
  Alcotest.(check bool)
    "stale count re-arms the trigger outside a migration" true
    (want_grow ~migrating:false);
  Alcotest.(check bool)
    "flush-before-evaluate suppresses the re-arm mid-migration" false
    (want_grow ~migrating:true);
  Alcotest.(check int)
    "pending deltas were folded into the shared count" 93
    (Policy.Counter.approx shared)

let test_migration_knob_valid () =
  Policy.validate (Policy.lazy_migration Policy.default);
  Alcotest.(check bool)
    "lazy_migration turns the sweep off" false
    (Policy.lazy_migration Policy.default).Policy.migration.Policy.eager;
  Alcotest.(check bool)
    "default sweeps eagerly" true Policy.default.Policy.migration.Policy.eager

let suite =
  [
    ( "policy",
      [
        Alcotest.test_case "default valid" `Quick test_default_valid;
        Alcotest.test_case "aggressive valid" `Quick test_aggressive_valid;
        Alcotest.test_case "bucket-size default valid" `Quick (fun () ->
            Policy.validate Policy.bucket_size_default);
        Alcotest.test_case "presized" `Quick test_presized;
        expect_invalid "non-power-of-two init"
          { Policy.default with init_buckets = 3 };
        expect_invalid "non-power-of-two period"
          {
            Policy.default with
            heuristic =
              Policy.Bucket_size
                {
                  grow_threshold = 12;
                  shrink_threshold = 3;
                  shrink_samples = 4;
                  shrink_period = 5;
                };
          };
        expect_invalid "bounds out of order"
          { Policy.default with min_buckets = 8; max_buckets = 4 };
        expect_invalid "init below min"
          { Policy.default with min_buckets = 4; init_buckets = 1 };
        expect_invalid "zero samples"
          {
            Policy.default with
            heuristic =
              Policy.Bucket_size
                {
                  grow_threshold = 12;
                  shrink_threshold = 3;
                  shrink_samples = 0;
                  shrink_period = 64;
                };
          };
        expect_invalid "shrink >= grow"
          {
            Policy.default with
            heuristic = Policy.Load_factor { grow = 2.0; shrink = 2.0 };
          };
        expect_invalid "band too narrow"
          {
            Policy.default with
            heuristic = Policy.Load_factor { grow = 2.0; shrink = 1.5 };
          };
        expect_invalid "zero migration chunk"
          {
            Policy.default with
            migration = { Policy.default_migration with chunk = 0 };
          };
        expect_invalid "zero migration helpers"
          {
            Policy.default with
            migration = { Policy.default_migration with max_helpers = 0 };
          };
        Alcotest.test_case "migration knob" `Quick test_migration_knob_valid;
        Alcotest.test_case "flush before trigger during migration" `Quick
          test_flush_before_trigger_during_migration;
        QCheck_alcotest.to_alcotest prop_no_oscillation;
      ] );
  ]
