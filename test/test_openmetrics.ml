(* The OpenMetrics exporter and its HTTP endpoint (PR 5).

   Shape: every family gets a TYPE (and HELP) line, all samples of a
   family are contiguous, histogram [le] bounds strictly increase with
   nondecreasing cumulative counts, every value is finite, and the
   body ends with "# EOF". Behaviour: two scrapes of a live endpoint
   under churn show monotone counters even though Runner resets the
   probe between trials; /snapshot.json carries the bench meta block;
   /health answers. And the disabled path stays allocation-free with
   gauges registered — a table that nobody scrapes pays nothing. *)

module Global = Nbhash_telemetry.Global
module Probe = Nbhash_telemetry.Probe
module Event = Nbhash_telemetry.Event
module Om = Nbhash_telemetry.Openmetrics
module Gauge = Nbhash_telemetry.Gauge
module Server = Nbhash_telemetry.Metrics_server
module Factory = Nbhash_workload.Factory
module Json = Nbhash_util.Json

let with_probe f =
  Fun.protect
    ~finally:(fun () ->
      Global.install Probe.noop;
      Om.reset_accumulators ())
    (fun () ->
      Om.reset_accumulators ();
      Global.install (Probe.recording ());
      f ())

(* Generate some telemetry: updates, a forced resize (spans), a few
   lookups. *)
let stir table =
  let ops = table.Factory.new_handle () in
  for k = 0 to 2_000 do
    ignore (ops.Factory.ins k)
  done;
  ops.Factory.force_resize ~grow:true;
  for k = 0 to 2_000 do
    if k land 1 = 0 then ignore (ops.Factory.rem k) else ignore (ops.Factory.look k)
  done;
  ops.Factory.detach ()

(* --- line-level shape checks --- *)

type family = { kind : string; mutable samples : (string * float) list }

(* Parse the body into families, checking contiguity as we go: a
   sample must belong to the most recently declared TYPE family. *)
let parse_families body =
  let families : (string * family) list ref = ref [] in
  let current = ref None in
  let value_of line =
    match String.rindex_opt line ' ' with
    | None -> Alcotest.failf "sample line without value: %s" line
    | Some i ->
      let v = String.sub line (i + 1) (String.length line - i - 1) in
      (match float_of_string_opt v with
      | Some f when Float.is_finite f -> f
      | Some _ -> Alcotest.failf "non-finite sample value: %s" line
      | None -> Alcotest.failf "unparseable sample value: %s" line)
  in
  let lines = String.split_on_char '\n' body in
  List.iteri
    (fun i line ->
      if line = "" then ()
      else if line = "# EOF" then begin
        if List.exists (fun l -> l <> "") (List.filteri (fun j _ -> j > i) lines)
        then Alcotest.fail "content after # EOF"
      end
      else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
        match String.split_on_char ' ' line with
        | [ "#"; "TYPE"; name; kind ] ->
          if List.mem_assoc name !families then
            Alcotest.failf "family %s declared twice (samples not contiguous)"
              name;
          let fam = { kind; samples = [] } in
          families := (name, fam) :: !families;
          current := Some (name, fam)
        | _ -> Alcotest.failf "malformed TYPE line: %s" line
      end
      else if String.length line >= 7 && String.sub line 0 7 = "# HELP " then begin
        match (!current, String.split_on_char ' ' line) with
        | Some (cur, _), "#" :: "HELP" :: name :: _ when name = cur -> ()
        | _ -> Alcotest.failf "HELP outside its family: %s" line
      end
      else
        match !current with
        | None -> Alcotest.failf "sample before any TYPE line: %s" line
        | Some (cur, fam) ->
          let metric =
            match String.index_opt line '{' with
            | Some j -> String.sub line 0 j
            | None -> (
              match String.index_opt line ' ' with
              | Some j -> String.sub line 0 j
              | None -> line)
          in
          let ok =
            match fam.kind with
            | "counter" -> metric = cur ^ "_total"
            | "histogram" ->
              metric = cur ^ "_bucket"
              || metric = cur ^ "_sum"
              || metric = cur ^ "_count"
            | "gauge" -> metric = cur
            | k -> Alcotest.failf "unknown family kind %s" k
          in
          if not ok then
            Alcotest.failf "sample %s under family %s (not contiguous?)" line
              cur;
          fam.samples <- (line, value_of line) :: fam.samples)
    lines;
  List.rev_map (fun (n, f) -> (n, { f with samples = List.rev f.samples }))
    !families

let le_of line =
  (* ..._bucket{le="<bound>"} <v> *)
  let tag = "{le=\"" in
  let rec find i =
    if i + String.length tag > String.length line then None
    else if String.sub line i (String.length tag) = tag then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i ->
    let start = i + String.length tag in
    let stop = String.index_from line start '"' in
    let s = String.sub line start (stop - start) in
    Some (if s = "+Inf" then Float.infinity else float_of_string s)

let test_shape () =
  with_probe (fun () ->
      let table = Factory.by_name "LFArrayOpt" () in
      stir table;
      let body = Om.render () in
      Alcotest.(check bool) "ends with # EOF" true
        (let n = String.length body in
         n >= 6 && String.sub body (n - 6) 6 = "# EOF\n");
      let families = parse_families body in
      (* Every probe event and span is a family; the table's gauges are
         there too. *)
      List.iter
        (fun ev ->
          let name = "nbhash_" ^ Event.to_string ev in
          match List.assoc_opt name families with
          | Some f -> Alcotest.(check string) (name ^ " kind") "counter" f.kind
          | None -> Alcotest.failf "missing counter family %s" name)
        Event.all;
      List.iter
        (fun s ->
          let name = "nbhash_" ^ Event.span_to_string s in
          match List.assoc_opt name families with
          | Some f ->
            Alcotest.(check string) (name ^ " kind") "histogram" f.kind;
            (* le bounds strictly increase; cumulative counts never
               decrease; _count equals the +Inf bucket. *)
            let les =
              List.filter_map (fun (l, v) ->
                  Option.map (fun le -> (le, v)) (le_of l))
                f.samples
            in
            Alcotest.(check bool) (name ^ " has +Inf bucket") true
              (List.exists (fun (le, _) -> le = Float.infinity) les);
            ignore
              (List.fold_left
                 (fun (ple, pv) (le, v) ->
                   if le <= ple then
                     Alcotest.failf "%s: le bounds not increasing" name;
                   if v < pv then
                     Alcotest.failf "%s: cumulative counts decreased" name;
                   (le, v))
                 (Float.neg_infinity, 0.) les);
            let count_v =
              List.filter_map
                (fun (l, v) ->
                  if
                    String.length l >= String.length (name ^ "_count")
                    && String.sub l 0 (String.length (name ^ "_count"))
                       = name ^ "_count"
                  then Some v
                  else None)
                f.samples
            in
            let inf_v =
              List.filter_map
                (fun (le, v) -> if le = Float.infinity then Some v else None)
                les
            in
            Alcotest.(check (list (float 0.))) (name ^ " count == +Inf") inf_v
              count_v
          | None -> Alcotest.failf "missing histogram family %s" name)
        Event.all_spans;
      (* The auto-registered table gauges surfaced, with labels. Other
         suites in the same binary may have leaked their own table
         gauges (harmless by design), so count this table's samples
         rather than assuming the family is ours alone. *)
      let load_factor_samples fams =
        match List.assoc_opt "nbhash_table_load_factor" fams with
        | Some f -> f.samples
        | None -> []
      in
      (match List.assoc_opt "nbhash_table_load_factor" families with
      | Some f ->
        Alcotest.(check string) "gauge kind" "gauge" f.kind;
        Alcotest.(check bool) "gauge labelled with table name" true
          (List.exists
             (fun (l, _) ->
               let has sub =
                 let n = String.length sub in
                 let rec go i =
                   i + n <= String.length l
                   && (String.sub l i n = sub || go (i + 1))
                 in
                 go 0
               in
               has "table=\"LFArrayOpt\"")
             f.samples)
      | None -> Alcotest.fail "missing gauge family nbhash_table_load_factor");
      let before_close = List.length (load_factor_samples families) in
      table.Factory.close ();
      let after_close =
        List.length (load_factor_samples (parse_families (Om.render ())))
      in
      Alcotest.(check int) "closed table's gauges gone" (before_close - 1)
        after_close)

(* Monotonicity across probe resets: scrape, reset (as Runner does at
   every trial barrier), generate less activity than before, scrape
   again — every exported counter must still be >= its first reading. *)
let test_monotone_across_reset () =
  with_probe (fun () ->
      let table = Factory.by_name "LFArray" () in
      stir table;
      let read body =
        List.filter_map
          (fun (name, (f : family)) ->
            if f.kind = "counter" then
              match f.samples with [ (_, v) ] -> Some (name, v) | _ -> None
            else None)
          (parse_families body)
      in
      let first = read (Om.render ()) in
      Global.reset ();
      let ops = table.Factory.new_handle () in
      for k = 0 to 99 do
        ignore (ops.Factory.ins (k * 7))
      done;
      ops.Factory.detach ();
      let second = read (Om.render ()) in
      List.iter
        (fun (name, v1) ->
          match List.assoc_opt name second with
          | None -> Alcotest.failf "counter family %s vanished" name
          | Some v2 ->
            if v2 < v1 then
              Alcotest.failf "counter %s went backwards: %.0f -> %.0f" name v1
                v2)
        first;
      table.Factory.close ())

(* --- the live endpoint --- *)

let test_endpoint () =
  with_probe (fun () ->
      let server = Server.start ~port:0 () in
      Fun.protect
        ~finally:(fun () -> Server.stop server)
        (fun () ->
          let port = Server.port server in
          let table = Factory.by_name "AdaptiveOpt" () in
          stir table;
          let scrape () =
            match Server.http_get ~port "/metrics" with
            | Ok (200, body) -> body
            | Ok (code, _) -> Alcotest.failf "/metrics answered %d" code
            | Error msg -> Alcotest.failf "/metrics scrape failed: %s" msg
          in
          let counters body =
            List.filter_map
              (fun (name, (f : family)) ->
                if f.kind = "counter" then
                  match f.samples with
                  | [ (_, v) ] -> Some (name, v)
                  | _ -> None
                else None)
              (parse_families body)
          in
          let first = counters (scrape ()) in
          stir table;
          let second = counters (scrape ()) in
          List.iter
            (fun (name, v1) ->
              match List.assoc_opt name second with
              | None -> Alcotest.failf "family %s vanished between scrapes" name
              | Some v2 ->
                if v2 < v1 then
                  Alcotest.failf "%s not monotone under churn: %.0f -> %.0f"
                    name v1 v2)
            first;
          Alcotest.(check bool) "some counter advanced" true
            (List.exists
               (fun (name, v2) ->
                 match List.assoc_opt name first with
                 | Some v1 -> v2 > v1
                 | None -> false)
               second);
          (* /snapshot.json carries the same meta block as bench JSON. *)
          (match Server.http_get ~port "/snapshot.json" with
          | Ok (200, body) -> (
            match Json.parse body with
            | Error msg -> Alcotest.failf "/snapshot.json invalid: %s" msg
            | Ok doc ->
              Alcotest.(check (option (list string)))
                "snapshot top-level keys"
                (Some
                   [ "meta"; "counters"; "spans"; "families"; "trace"; "profile" ])
                (Json.keys doc);
              Alcotest.(check (option (list string)))
                "meta keys"
                (Some [ "git_rev"; "domains"; "ocaml"; "hostname"; "timestamp" ])
                (Option.bind (Json.member "meta" doc) Json.keys))
          | Ok (code, _) -> Alcotest.failf "/snapshot.json answered %d" code
          | Error msg -> Alcotest.failf "/snapshot.json failed: %s" msg);
          (match Server.http_get ~port "/health" with
          | Ok (200, _) -> ()
          | Ok (code, body) ->
            Alcotest.failf "/health answered %d: %s" code body
          | Error msg -> Alcotest.failf "/health failed: %s" msg);
          (match Server.http_get ~port "/no-such-route" with
          | Ok (404, _) -> ()
          | Ok (code, _) -> Alcotest.failf "unknown route answered %d" code
          | Error msg -> Alcotest.failf "unknown route failed: %s" msg);
          table.Factory.close ()))

(* --- labeled histogram families --- *)

(* Registration is global and permanent (like leaked table gauges,
   harmless by design), so the test family gets a unique-ish name and
   later scrapes simply keep rendering it. *)
let test_labeled_families () =
  with_probe (fun () ->
      let module L = Nbhash_telemetry.Labeled in
      let h1 =
        L.histogram ~family:"nbhash_test_stage_ns" ~help:"test stage family"
          ~labels:[ ("op", "get"); ("stage", "read") ]
          ()
      in
      let h2 =
        L.histogram ~family:"nbhash_test_stage_ns"
          ~labels:[ ("op", "put"); ("stage", "read") ]
          ()
      in
      (* Same family+labels is get-or-create, not a duplicate. *)
      let h1' =
        L.histogram ~family:"nbhash_test_stage_ns"
          ~labels:[ ("op", "get"); ("stage", "read") ]
          ()
      in
      Alcotest.(check bool) "get-or-create dedupes" true (h1 == h1');
      Nbhash_telemetry.Histogram.observe h1 1_000;
      Nbhash_telemetry.Histogram.observe h1 100_000;
      Nbhash_telemetry.Histogram.observe h2 5_000;
      let body = Om.render () in
      let families = parse_families body in
      (match List.assoc_opt "nbhash_test_stage_ns" families with
      | None -> Alcotest.fail "labeled family missing from the scrape"
      | Some f ->
        Alcotest.(check string) "labeled family kind" "histogram" f.kind;
        let has sub l =
          let n = String.length sub in
          let rec go i =
            i + n <= String.length l && (String.sub l i n = sub || go (i + 1))
          in
          go 0
        in
        let get_buckets =
          List.filter
            (fun (l, _) ->
              has "nbhash_test_stage_ns_bucket{" l && has "op=\"get\"" l)
            f.samples
        in
        Alcotest.(check bool) "op=get buckets present" true
          (get_buckets <> []);
        (* le is the last label, after the identity labels, so the
           le-first cumulativity scanners skip labeled buckets. *)
        List.iter
          (fun (l, _) ->
            if not (has ",le=\"" l) then
              Alcotest.failf "labeled bucket without trailing le: %s" l)
          get_buckets;
        (* _count{op="get",...} sums that entry's observations only. *)
        let count l =
          List.assoc_opt l
            (List.filter_map
               (fun (line, v) ->
                 match String.index_opt line ' ' with
                 | Some i -> Some (String.sub line 0 i, v)
                 | None -> None)
               f.samples)
        in
        Alcotest.(check (option (float 0.)))
          "per-entry count" (Some 2.)
          (count
             "nbhash_test_stage_ns_count{op=\"get\",stage=\"read\"}");
        Alcotest.(check (option (float 0.)))
          "other entry count" (Some 1.)
          (count
             "nbhash_test_stage_ns_count{op=\"put\",stage=\"read\"}"));
      (* The flight-recorder loss counter renders as a labeled counter
         family, one sample per reason, even with no trace installed. *)
      match List.assoc_opt "nbhash_trace_dropped" families with
      | None -> Alcotest.fail "nbhash_trace_dropped family missing"
      | Some f ->
        Alcotest.(check string) "trace-dropped kind" "counter" f.kind;
        Alcotest.(check int) "one sample per reason" 2
          (List.length f.samples))

(* --- the route registry --- *)

let test_route_registry () =
  let hits = ref 0 in
  let reg =
    Server.register_route ~path:"/test-route" (fun () ->
        incr hits;
        (200, "text/plain", "hello from the test route\n"))
  in
  let boom =
    Server.register_route ~path:"/test-boom" (fun () -> failwith "boom")
  in
  let server = Server.start ~port:0 () in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Server.unregister_route reg;
      Server.unregister_route boom)
    (fun () ->
      let port = Server.port server in
      (match Server.http_get ~port "/test-route" with
      | Ok (200, body) ->
        Alcotest.(check string) "routed body" "hello from the test route\n"
          body
      | Ok (code, _) -> Alcotest.failf "/test-route answered %d" code
      | Error msg -> Alcotest.failf "/test-route failed: %s" msg);
      Alcotest.(check int) "handler ran once" 1 !hits;
      (* A raising handler is a 500, not a dead server. *)
      (match Server.http_get ~port "/test-boom" with
      | Ok (500, _) -> ()
      | Ok (code, _) -> Alcotest.failf "/test-boom answered %d" code
      | Error msg -> Alcotest.failf "/test-boom failed: %s" msg);
      (* Unregistration brings back 404, and built-ins still win. *)
      Server.unregister_route reg;
      (match Server.http_get ~port "/test-route" with
      | Ok (404, _) -> ()
      | Ok (code, _) ->
        Alcotest.failf "unregistered route answered %d" code
      | Error msg -> Alcotest.failf "unregistered route failed: %s" msg);
      match Server.http_get ~port "/health" with
      | Ok (200, _) -> ()
      | Ok (code, _) -> Alcotest.failf "/health answered %d" code
      | Error msg -> Alcotest.failf "/health failed: %s" msg)

(* --- gauge registry --- *)

let test_gauge_registry () =
  let g1 = Gauge.register ~name:"nbhash_test_gauge" ~help:"a test gauge"
      ~labels:[ ("which", "one") ] (fun () -> 1.5)
  in
  let g2 =
    Gauge.register ~name:"nbhash_test_gauge" ~labels:[ ("which", "two") ]
      (fun () -> 2.5)
  in
  let g3 = Gauge.register ~name:"nbhash_test_nan" (fun () -> Float.nan) in
  let g4 = Gauge.register ~name:"nbhash_test_raise" (fun () -> failwith "x") in
  Fun.protect
    ~finally:(fun () -> List.iter Gauge.unregister [ g1; g2; g3; g4 ])
    (fun () ->
      let mine =
        List.filter
          (fun (s : Gauge.sample) ->
            String.length s.Gauge.name >= 11
            && String.sub s.Gauge.name 0 11 = "nbhash_test")
          (Gauge.read_all ())
      in
      (* NaN and raising thunks are dropped from the scrape, not fatal. *)
      Alcotest.(check int) "two live samples" 2 (List.length mine);
      Alcotest.(check (list (float 0.)))
        "registration order, values read through"
        [ 1.5; 2.5 ]
        (List.map (fun (s : Gauge.sample) -> s.Gauge.value) mine);
      Gauge.unregister g2;
      let mine' =
        List.filter
          (fun (s : Gauge.sample) -> s.Gauge.name = "nbhash_test_gauge")
          (Gauge.read_all ())
      in
      Alcotest.(check int) "unregistered gauge gone" 1 (List.length mine'))

(* --- the disabled path still allocates nothing with gauges around --- *)

let test_disabled_path_no_alloc () =
  Global.install Probe.noop;
  let table = Factory.by_name "LFArrayOpt" () in
  let ops = table.Factory.new_handle () in
  (* Warm-up takes any one-time allocation off the books. *)
  for i = 0 to 999 do
    Global.emit Event.Cas_retry;
    Global.emit_arg Event.Help_op i
  done;
  let before = Gc.minor_words () in
  for i = 0 to 99_999 do
    Global.emit Event.Cas_retry;
    Global.emit_arg Event.Help_op i;
    let s = Global.span_begin Event.Resize_span in
    Global.record_span Event.Resize_span ~start_ns:s
  done;
  let delta = Gc.minor_words () -. before in
  ops.Factory.detach ();
  table.Factory.close ();
  if delta > 256. then
    Alcotest.failf
      "disabled telemetry path allocated %.0f minor words with gauges \
       registered"
      delta

let suite =
  [
    ( "openmetrics",
      [
        Alcotest.test_case "scrape shape" `Quick test_shape;
        Alcotest.test_case "monotone across probe reset" `Quick
          test_monotone_across_reset;
        Alcotest.test_case "live endpoint under churn" `Quick test_endpoint;
        Alcotest.test_case "labeled histogram families" `Quick
          test_labeled_families;
        Alcotest.test_case "route registry" `Quick test_route_registry;
        Alcotest.test_case "gauge registry" `Quick test_gauge_registry;
        Alcotest.test_case "disabled path allocation-free" `Quick
          test_disabled_path_no_alloc;
      ] );
  ]
