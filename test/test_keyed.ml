open Nbhash

(* IPv4-address-and-port endpoints embed injectively in 48 bits. *)
module Endpoint = struct
  type t = { a : int; b : int; c : int; d : int; port : int }

  let v a b c d port = { a; b; c; d; port }

  let to_int e =
    (e.a lsl 40) lor (e.b lsl 32) lor (e.c lsl 24) lor (e.d lsl 16) lor e.port
end

module Set = Keyed.Make (Endpoint) (Tables.LFArray)

let test_endpoints () =
  let t = Set.create () in
  let h = Set.register t in
  let e1 = Endpoint.v 10 0 0 1 8080 in
  let e2 = Endpoint.v 10 0 0 1 8081 in
  let e3 = Endpoint.v 10 0 0 2 8080 in
  Alcotest.(check bool) "insert e1" true (Set.insert h e1);
  Alcotest.(check bool) "insert e2" true (Set.insert h e2);
  Alcotest.(check bool) "e1 again" false (Set.insert h e1);
  Alcotest.(check bool) "contains e2" true (Set.contains h e2);
  Alcotest.(check bool) "not e3" false (Set.contains h e3);
  Alcotest.(check bool) "remove e1" true (Set.remove h e1);
  Alcotest.(check bool) "e1 gone, e2 stays" true
    ((not (Set.contains h e1)) && Set.contains h e2);
  Alcotest.(check int) "cardinal" 1 (Set.cardinal t)

module CharPair = struct
  type t = char * char

  let to_int (a, b) = (Char.code a lsl 8) lor Char.code b
end

module PairSet = Keyed.Make (CharPair) (Tables.AdaptiveOpt)

let prop_pairs_model =
  QCheck2.Test.make ~name:"keyed set matches a model (char pairs)" ~count:200
    QCheck2.Gen.(small_list (pair printable printable))
    (fun pairs ->
      let t = PairSet.create ~policy:Policy.aggressive () in
      let h = PairSet.register t in
      let model = Hashtbl.create 16 in
      List.for_all
        (fun p ->
          let expected = not (Hashtbl.mem model p) in
          Hashtbl.replace model p ();
          PairSet.insert h p = expected)
        pairs
      && Hashtbl.fold (fun p () acc -> acc && PairSet.contains h p) model true)

let suite =
  [
    ( "keyed",
      [
        Alcotest.test_case "endpoints" `Quick test_endpoints;
        QCheck_alcotest.to_alcotest prop_pairs_model;
      ] );
  ]
