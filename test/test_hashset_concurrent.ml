(* Multi-domain ledger stress for every hash table, under an
   aggressive resize policy and an explicit resize storm. Catching a
   lost or duplicated key during bucket migration is exactly what
   these are for.

   Successful operations are recorded through the shared
   [Nbhash_testlib.Record] ticket recorder (the same one the
   linearizability suite uses) instead of per-test bookkeeping; the
   ledger is then computed from the recorded events. *)

module Factory = Nbhash_workload.Factory
module Lin = Nbhash_testlib.Lin
module Record = Nbhash_testlib.Record

let domains = 4
let key_range = 64
let ops_per_domain = 3_000

let ledger_stress (maker : Factory.maker) ~policy ~storm () =
  let table = maker ~policy () in
  let r = Record.make () in
  let worker d () =
    let ops = table.Factory.new_handle () in
    let rng = Nbhash_util.Xoshiro.create (500 + d) in
    for _ = 1 to ops_per_domain do
      let k = Nbhash_util.Xoshiro.below rng key_range in
      ignore
        (match Nbhash_util.Xoshiro.below rng 3 with
        | 0 ->
          Record.record r (Lin.Set_model.Ins k) (fun () -> ops.Factory.ins k)
        | 1 ->
          Record.record r (Lin.Set_model.Rem k) (fun () -> ops.Factory.rem k)
        | _ ->
          Record.record r (Lin.Set_model.Mem k) (fun () -> ops.Factory.look k))
    done
  in
  let stormer () =
    let ops = table.Factory.new_handle () in
    for i = 1 to 150 do
      ops.Factory.force_resize ~grow:(i mod 2 = 0);
      for _ = 1 to 50 do
        Domain.cpu_relax ()
      done
    done
  in
  let ds = List.init domains (fun d -> Domain.spawn (worker d)) in
  let ds = if storm then Domain.spawn stormer :: ds else ds in
  List.iter Domain.join ds;
  table.Factory.check_invariants ();
  let final = table.Factory.elements () in
  let mem k = Array.exists (fun x -> x = k) final in
  let net = Array.make key_range 0 in
  List.iter
    (fun e ->
      match e.Lin.op with
      | Lin.Set_model.Ins k -> if e.Lin.result then net.(k) <- net.(k) + 1
      | Lin.Set_model.Rem k -> if e.Lin.result then net.(k) <- net.(k) - 1
      | Lin.Set_model.Mem _ -> ())
    (Record.events r);
  for k = 0 to key_range - 1 do
    Alcotest.(check bool) "net is 0 or 1" true (net.(k) = 0 || net.(k) = 1);
    Alcotest.(check bool)
      (Printf.sprintf "%s: key %d membership matches ledger"
         table.Factory.name k)
      (net.(k) = 1)
      (mem k)
  done

(* Key-partitioned parallel inserts: no two domains touch the same
   key, so every insert must succeed and every key must be present. *)
let partitioned_inserts (maker : Factory.maker) () =
  let table = maker ~policy:(Nbhash.Policy.presized 256) () in
  let n = 2_000 in
  let failed = Atomic.make 0 in
  let worker d () =
    let ops = table.Factory.new_handle () in
    for i = 0 to n - 1 do
      let k = (i * domains) + d in
      if not (ops.Factory.ins k) then ignore (Atomic.fetch_and_add failed 1)
    done
  in
  let ds = List.init domains (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join ds;
  table.Factory.check_invariants ();
  Alcotest.(check int)
    (table.Factory.name ^ ": every fresh insert succeeded")
    0 (Atomic.get failed);
  Alcotest.(check int)
    (table.Factory.name ^ ": all partitioned keys present")
    (domains * n)
    (table.Factory.cardinal ());
  let ops = table.Factory.new_handle () in
  for k = 0 to (domains * n) - 1 do
    if not (ops.Factory.look k) then
      Alcotest.failf "%s: key %d missing" table.Factory.name k
  done

let cases =
  List.concat_map
    (fun (name, maker) ->
      [
        Alcotest.test_case (name ^ " ledger, aggressive policy") `Slow
          (ledger_stress maker ~policy:Nbhash.Policy.aggressive ~storm:false);
        Alcotest.test_case (name ^ " ledger, resize storm") `Slow
          (ledger_stress maker ~policy:(Nbhash.Policy.presized 4) ~storm:true);
        Alcotest.test_case (name ^ " partitioned inserts") `Slow
          (partitioned_inserts maker);
      ])
    Factory.with_michael

let suite = [ ("hashset-concurrent", cases) ]
