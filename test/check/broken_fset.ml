(* A deliberately broken lock-free FSet: structurally the paper's
   Figure 5 object (same node layout, same CAS publication as
   [Lf_fset]), except that the retry path after a lost CAS does NOT
   re-check the freeze bit. A freeze that lands between an update's
   read and its CAS therefore fails the CAS (the node was replaced),
   and the buggy retry then happily CASes its change onto the frozen
   node — an update applied after the set's final snapshot was taken.

   The model-check suite demands that the explorer finds this: the
   freeze-vs-insert scenario over this module must produce a
   counterexample schedule, while the shipped implementations pass the
   same exploration. Atomics go through the shim so the checker can
   schedule them. *)

module Atomic = Nbhash_util.Nb_atomic
module Fset_intf = Nbhash_fset.Fset_intf
module E = Nbhash_fset.Elems.Array_rep

type node = { elems : E.t; ok : bool }
type t = node Atomic.t
type op = { kind : Fset_intf.kind; key : int; mutable resp : bool }

let id = "broken-array"
let create elems = Atomic.make { elems = E.of_array elems; ok = true }
let make_op kind key = { kind; key; resp = false }

let invoke t op =
  let o0 = Atomic.get t in
  if not o0.ok then false
  else begin
    (* BUG: o.ok is checked once, before the first attempt; the retry
       loop re-reads the node but never re-checks it. [Lf_fset.invoke]
       re-enters through the top and re-checks every time. *)
    let rec retry o =
      let present = E.mem o.elems op.key in
      match op.kind with
      | Fset_intf.Ins when present ->
        op.resp <- false;
        true
      | Fset_intf.Rem when not present ->
        op.resp <- false;
        true
      | Fset_intf.Ins ->
        if
          Atomic.compare_and_set t o
            { elems = E.add o.elems op.key; ok = o.ok }
        then begin
          op.resp <- true;
          true
        end
        else retry (Atomic.get t)
      | Fset_intf.Rem ->
        if
          Atomic.compare_and_set t o
            { elems = E.remove o.elems op.key; ok = o.ok }
        then begin
          op.resp <- true;
          true
        end
        else retry (Atomic.get t)
    in
    retry o0
  end

let get_response op = op.resp

let rec freeze t =
  let o = Atomic.get t in
  if not o.ok then E.to_array o.elems
  else if Atomic.compare_and_set t o { elems = o.elems; ok = false } then
    E.to_array o.elems
  else freeze t

let has_member t k = E.mem (Atomic.get t).elems k
let size t = E.length (Atomic.get t).elems
let elements t = E.to_array (Atomic.get t).elems
let is_frozen t = not (Atomic.get t).ok
