(* A deliberately broken flat open-addressing FSet: same slot-word
   encoding and freeze latch as [Flat_fset] (occupied bit 0, SEAL bit
   1, tombstones, a decided-freeze flag and a seal sweep), except that
   the insert claim does NOT re-check the FROZEN latch after its CAS
   target is chosen: it claims any empty-keyed word, sealed or not.
   The shipped [Flat_fset] claims only the exactly-zero unsealed word,
   so a freeze that seals the slot between the insert's read and its
   CAS makes the CAS fail and the retry rediscovers the latch; here
   the CAS happily installs a key into a slot the freeze already
   latched — an update applied after the set's final snapshot.

   The model-check suite demands that the explorer finds this: the
   freeze-vs-insert scenario over this module must produce a
   counterexample schedule, while [Flat_fset] passes the same
   exploration. Atomics go through the shim so the checker can
   schedule them. Fixed capacity: the scenario stays far below the
   migration threshold, so no grow/compact machinery is needed. *)

module Atomic = Nbhash_util.Nb_atomic
module Fset_intf = Nbhash_fset.Fset_intf

type t = {
  slots : int Atomic.t array;
  mask : int;
  decided : bool Atomic.t;  (* freeze latch decided *)
  sealed : int Atomic.t;  (* slots with the SEAL bit latched *)
}

type op = { kind : Fset_intf.kind; key : int; mutable resp : bool }

let id = "broken-flat"
let occupied_bit = 1
let seal_bit = 2
let empty_w = 0
let tomb_w = 4
let enc k = (k lsl 2) lor occupied_bit
let dec w = w lsr 2
let is_occupied w = w land occupied_bit <> 0

let mix k =
  let h = k * 0x2545F4914F6CDD1D in
  (h lxor (h lsr 29)) land max_int

let cap = 8

let create elems =
  let t =
    {
      slots = Array.init cap (fun _ -> Atomic.make empty_w);
      mask = cap - 1;
      decided = Atomic.make false;
      sealed = Atomic.make 0;
    }
  in
  Array.iter
    (fun k ->
      let home = mix k land t.mask in
      let rec go d =
        let idx = (home + d) land t.mask in
        if Atomic.get t.slots.(idx) = empty_w then
          Atomic.set t.slots.(idx) (enc k)
        else go (d + 1)
      in
      go 0)
    elems;
  t

let make_op kind key = { kind; key; resp = false }
let get_response op = op.resp

let help_seal t =
  for idx = 0 to t.mask do
    let rec seal () =
      let w = Atomic.get t.slots.(idx) in
      if w land seal_bit = 0 then
        if Atomic.compare_and_set t.slots.(idx) w (w lor seal_bit) then
          Atomic.incr t.sealed
        else seal ()
    in
    seal ()
  done

let sealed_elements t =
  let acc = ref [] in
  for idx = t.mask downto 0 do
    let w = Atomic.get t.slots.(idx) in
    if is_occupied w then acc := dec w :: !acc
  done;
  Array.of_list !acc

let invoke t op =
  let home = mix op.key land t.mask in
  let w_occ = enc op.key in
  let on_sealed () =
    help_seal t;
    false
  in
  let rec go d =
    if d > t.mask then on_sealed ()
    else
      let idx = (home + d) land t.mask in
      at_word idx d
  and at_word idx d =
    let w = Atomic.get t.slots.(idx) in
    match op.kind with
    | Fset_intf.Ins ->
      if w land lnot seal_bit = empty_w then begin
        (* BUG: a SEALED empty word (w = 2) is treated as claimable.
           [Flat_fset] CASes only against the exactly-zero unsealed
           word, which is its freeze re-check; claiming [w] as read
           installs a key into a slot the freeze already latched. *)
        if Atomic.compare_and_set t.slots.(idx) w w_occ then begin
          op.resp <- true;
          true
        end
        else at_word idx d
      end
      else if w lor seal_bit = w_occ lor seal_bit then begin
        if w land seal_bit = 0 then begin
          op.resp <- false;
          true
        end
        else on_sealed ()
      end
      else go (d + 1)
    | Fset_intf.Rem ->
      if w = empty_w then begin
        op.resp <- false;
        true
      end
      else if w = empty_w lor seal_bit then on_sealed ()
      else if w lor seal_bit = w_occ lor seal_bit then begin
        if w land seal_bit = 0 then
          if Atomic.compare_and_set t.slots.(idx) w_occ tomb_w then begin
            op.resp <- true;
            true
          end
          else at_word idx d
        else on_sealed ()
      end
      else go (d + 1)
  in
  go 0

let freeze t =
  if not (Atomic.get t.decided) then
    ignore (Atomic.compare_and_set t.decided false true);
  help_seal t;
  sealed_elements t

let has_member t k =
  let home = mix k land t.mask in
  let w_occ = enc k in
  let rec go d =
    if d > t.mask then false
    else
      let idx = (home + d) land t.mask in
      let w = Atomic.get t.slots.(idx) in
      if w land lnot seal_bit = empty_w then false
      else if w lor seal_bit = w_occ lor seal_bit then true
      else go (d + 1)
  in
  go 0

let size t = Array.length (sealed_elements t)
let elements t = sealed_elements t

let is_frozen t =
  Atomic.get t.decided && Atomic.get t.sealed = t.mask + 1
