(* Driver for the bounded model-check suite (`dune build @check`).

   Every scenario in [Scenarios.all] runs the production code and must
   survive exploration; the deliberately broken FSet must NOT — its
   counterexample schedule is printed as a demonstration that the
   checker has teeth. Any unexpected outcome writes the offending
   trace under traces/ (uploaded as a CI artifact) and fails the
   build. *)

module Explore = Nbhash_check.Explore

let getenv_int name default =
  match int_of_string_opt (Sys.getenv name) with
  | Some v -> v
  | None -> default
  | exception Not_found -> default

let max_execs = getenv_int "NBHASH_CHECK_EXECS" 20_000
let max_preemptions = getenv_int "NBHASH_CHECK_PREEMPTIONS" 2
let traces_dir = "traces"

let ensure_traces_dir () =
  if not (Sys.file_exists traces_dir) then Sys.mkdir traces_dir 0o755

let slug name =
  String.map (fun c -> if c = ' ' || c = '/' then '-' else c) name

let write_trace name v =
  ensure_traces_dir ();
  let file = Filename.concat traces_dir (slug name ^ ".txt") in
  let oc = open_out file in
  let ppf = Format.formatter_of_out_channel oc in
  Format.fprintf ppf "scenario: %s@.%a@." name Explore.pp_violation v;
  Format.pp_print_flush ppf ();
  close_out oc;
  file

let failures = ref 0

let expect_pass (name, scenario) =
  match Explore.explore ~max_preemptions ~max_execs scenario with
  | Explore.Pass { executions; complete } ->
    Printf.printf "PASS %-38s %5d schedules%s\n%!" name executions
      (if complete then "" else " (budget truncated)")
  | Explore.Fail v ->
    incr failures;
    let file = write_trace name v in
    Printf.printf "FAIL %s (trace written to %s)\n%!" name file;
    Format.printf "%a@." Explore.pp_violation v

let expect_fail (name, scenario) =
  match Explore.explore ~max_preemptions ~max_execs scenario with
  | Explore.Fail v ->
    Printf.printf "PASS %s\n%!" name;
    Format.printf "     counterexample, as it should be:@.%a@."
      Explore.pp_violation v
  | Explore.Pass { executions; complete } ->
    incr failures;
    Printf.printf
      "FAIL %s: no violation in %d schedules%s — the checker lost its \
       teeth\n\
       %!"
      name executions
      (if complete then "" else " (budget truncated)")

let () =
  Printf.printf
    "model check: max %d preemptions, %d schedules per scenario\n%!"
    max_preemptions max_execs;
  List.iter expect_pass Scenarios.all;
  expect_fail Scenarios.broken;
  expect_fail Scenarios.broken_sweep;
  expect_fail Scenarios.broken_flat;
  if !failures > 0 then begin
    Printf.printf "%d scenario(s) failed\n%!" !failures;
    exit 1
  end
