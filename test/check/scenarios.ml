(* Scenario library for the schedule explorer: small scripted races
   over the production FSet and hash-table code, each paired with a
   verdict checked after every explored interleaving. Histories are
   recorded through {!Record} (untraced — the recorder's own atomics
   are not scheduling points) and judged by the {!Lin} models.

   Determinism rules (see [Explore]): tables are created with
   [Policy.presized] so the resize policy never draws the PRNG, and
   the ambient telemetry probe stays [Noop], so the only scheduling
   points are the algorithms' own shimmed atomic operations. *)

module Explore = Nbhash_check.Explore
module Lin = Nbhash_testlib.Lin
module Record = Nbhash_testlib.Record
module Fset_intf = Nbhash_fset.Fset_intf
module Policy = Nbhash.Policy

let fset_verdict r () =
  let evs = Record.events r in
  if Lin.Fset.check evs then Ok ()
  else
    Error
      (Format.asprintf "FSet history is not linearizable:@.%a"
         Lin.Fset.pp_history evs)

(* The freeze-vs-update race of the paper's Figure 5 object: one
   thread freezes (recording the snapshot) while two others try to
   insert and remove. The model demands that any update linearized
   after the freeze is Refused and that the snapshot is exactly the
   set at the freeze point — the race the [ok] re-check in
   [Lf_fset.invoke] exists to win. *)
module Freeze_vs_update (F : Fset_intf.S) = struct
  let record_invoke r t kind key =
    let op_m =
      match kind with
      | Fset_intf.Ins -> Lin.Fset_model.Ins key
      | Fset_intf.Rem -> Lin.Fset_model.Rem key
    in
    ignore
      (Record.record r op_m (fun () ->
           let op = F.make_op kind key in
           if F.invoke t op then Lin.Fset_model.Applied (F.get_response op)
           else Lin.Fset_model.Refused))

  let scenario () =
    let t = F.create [||] in
    let r = Record.make () in
    (* Seed key 1 before the race so the snapshot is non-trivial; setup
       runs untraced but is recorded, so the model sees it first. *)
    record_invoke r t Fset_intf.Ins 1;
    let threads =
      [|
        (fun () ->
          ignore
            (Record.record r Lin.Fset_model.Freeze (fun () ->
                 let snap = F.freeze t in
                 Lin.Fset_model.Snapshot
                   (List.sort compare (Array.to_list snap)))));
        (fun () -> record_invoke r t Fset_intf.Ins 2);
        (fun () -> record_invoke r t Fset_intf.Rem 1);
      |]
    in
    (threads, fset_verdict r)
end

(* Same race over the wait-free FSet; priorities stand in for thread
   ids. *)
module Wf_freeze_vs_update (F : Fset_intf.WF) = struct
  let record_invoke r t kind key ~prio =
    let op_m =
      match kind with
      | Fset_intf.Ins -> Lin.Fset_model.Ins key
      | Fset_intf.Rem -> Lin.Fset_model.Rem key
    in
    ignore
      (Record.record r op_m (fun () ->
           let op = F.make_op kind key ~prio in
           if F.invoke t op then Lin.Fset_model.Applied (F.get_response op)
           else Lin.Fset_model.Refused))

  let freeze_vs_update () =
    let t = F.create [||] in
    let r = Record.make () in
    record_invoke r t Fset_intf.Ins 1 ~prio:7;
    let threads =
      [|
        (fun () ->
          ignore
            (Record.record r Lin.Fset_model.Freeze (fun () ->
                 let snap = F.freeze t in
                 Lin.Fset_model.Snapshot
                   (List.sort compare (Array.to_list snap)))));
        (fun () -> record_invoke r t Fset_intf.Ins 2 ~prio:1);
        (fun () -> record_invoke r t Fset_intf.Rem 1 ~prio:2);
      |]
    in
    (threads, fset_verdict r)

  (* Two threads invoke the SAME announced operation (the helping path
     of paper section 7). At-most-once application: whatever the
     interleaving, the op ends done with response true and the set
     holds exactly its key. *)
  let shared_op_help () =
    let t = F.create [||] in
    let op = F.make_op Fset_intf.Ins 5 ~prio:1 in
    let threads =
      [| (fun () -> ignore (F.invoke t op)); (fun () -> ignore (F.invoke t op)) |]
    in
    let verify () =
      if not (F.op_is_done op) then Error "helped op is not done"
      else if not (F.get_response op) then
        Error "insert into empty set responded false"
      else
        match List.sort compare (Array.to_list (F.elements t)) with
        | [ 5 ] -> Ok ()
        | l ->
          Error
            (Printf.sprintf "expected {5}, set holds {%s} — op applied %s"
               (String.concat "," (List.map string_of_int l))
               (if List.length l > 1 then "twice?" else "zero times?"))
    in
    (threads, verify)

  (* Two distinct ops with competing priorities, over a seeded key:
     both must apply exactly once, in some linearizable order. *)
  let announce_race () =
    let t = F.create [||] in
    let r = Record.make () in
    record_invoke r t Fset_intf.Ins 1 ~prio:7;
    let threads =
      [|
        (fun () -> record_invoke r t Fset_intf.Ins 2 ~prio:1);
        (fun () -> record_invoke r t Fset_intf.Rem 1 ~prio:2);
      |]
    in
    (threads, fset_verdict r)
end

(* Hash-table races: an update or lookup racing a forced resize. The
   verdict replays the recorded history against the set model, probes
   final membership, and runs the structural invariant checker. *)
module Table_races (H : Nbhash.Hashset_intf.S) = struct
  let verdict t h r () =
    ignore
      (Record.record r (Lin.Set_model.Mem 1) (fun () -> H.contains h 1));
    ignore
      (Record.record r (Lin.Set_model.Mem 2) (fun () -> H.contains h 2));
    match H.check_invariants t with
    | exception Failure msg -> Error ("invariant violation: " ^ msg)
    | () ->
      let evs = Record.events r in
      if Lin.Set.check evs then Ok ()
      else
        Error
          (Format.asprintf "table history is not linearizable:@.%a"
             Lin.Set.pp_history evs)

  let setup buckets =
    let t = H.create ~policy:(Policy.presized buckets) ~max_threads:4 () in
    let h1 = H.register t and h2 = H.register t in
    let r = Record.make () in
    (t, h1, h2, r)

  let record_insert r h k =
    ignore (Record.record r (Lin.Set_model.Ins k) (fun () -> H.insert h k))

  let grow_during_insert () =
    let t, h1, h2, r = setup 1 in
    record_insert r h1 1;
    let threads =
      [|
        (fun () -> record_insert r h1 2);
        (fun () -> H.force_resize h2 ~grow:true);
      |]
    in
    (threads, verdict t h1 r)

  let shrink_during_contains () =
    let t, h1, h2, r = setup 2 in
    record_insert r h1 1;
    record_insert r h1 2;
    let threads =
      [|
        (fun () ->
          ignore
            (Record.record r (Lin.Set_model.Mem 1) (fun () ->
                 H.contains h1 1)));
        (fun () -> H.force_resize h2 ~grow:false);
      |]
    in
    (threads, verdict t h1 r)

  let grow_vs_grow () =
    let t, h1, h2, r = setup 1 in
    record_insert r h1 1;
    let threads =
      [|
        (fun () -> H.force_resize h1 ~grow:true);
        (fun () -> H.force_resize h2 ~grow:true);
      |]
    in
    (threads, verdict t h1 r)
end

(* Cooperative-sweep races: the table starts mid-migration (a forced
   grow in setup leaves the head HNode with a predecessor and every
   head bucket nil), and the racing update operations both migrate
   lazily on first touch AND claim sweep chunks from the shared cursor
   on their way out ([help_migration] runs inside the policy hooks).
   With [chunk] covering the whole table, one thread's claimed chunk
   races the other thread's lazy [init_bucket] on the same indices —
   the install CAS must admit exactly one copy of each bucket. *)
module Sweep_races (H : Nbhash.Hashset_intf.S) = struct
  let sweep_policy buckets ~chunk =
    {
      (Policy.presized buckets) with
      Policy.migration = { Policy.eager = true; chunk; max_helpers = 4 };
    }

  let verdict ~keys t h r () =
    List.iter
      (fun k ->
        ignore
          (Record.record r (Lin.Set_model.Mem k) (fun () -> H.contains h k)))
      keys;
    match H.check_invariants t with
    | exception Failure msg -> Error ("invariant violation: " ^ msg)
    | () ->
      let evs = Record.events r in
      if Lin.Set.check evs then Ok ()
      else
        Error
          (Format.asprintf "table history is not linearizable:@.%a"
             Lin.Set.pp_history evs)

  let setup ~buckets ~chunk =
    let t = H.create ~policy:(sweep_policy buckets ~chunk) ~max_threads:4 () in
    let h1 = H.register t and h2 = H.register t in
    let r = Record.make () in
    (t, h1, h2, r)

  let record_insert r h k =
    ignore (Record.record r (Lin.Set_model.Ins k) (fun () -> H.insert h k))

  (* Both inserts lazily initialize their own head bucket, then each
     claims a whole-table chunk: helper-vs-lazy and helper-vs-helper
     install races on every bucket. *)
  let helper_vs_lazy () =
    let t, h1, h2, r = setup ~buckets:2 ~chunk:4 in
    record_insert r h1 0;
    record_insert r h1 1;
    H.force_resize h1 ~grow:true;
    let threads =
      [|
        (fun () -> record_insert r h1 5);
        (fun () -> record_insert r h2 2);
      |]
    in
    (threads, verdict ~keys:[ 0; 1; 2; 5 ] t h1 r)

  (* A sweeping helper races the next resize: the insert's claimed
     chunk overlaps the shrink's cursor drain and catch-up loop, and
     the shrink installs a successor while the helper may still be
     mid-chunk — the idempotent-replay and never-wait obligations of
     the sweep engine. *)
  let sweep_vs_grow_shrink () =
    let t, h1, h2, r = setup ~buckets:2 ~chunk:2 in
    record_insert r h1 0;
    record_insert r h1 3;
    H.force_resize h1 ~grow:true;
    let threads =
      [|
        (fun () -> record_insert r h1 2);
        (fun () -> H.force_resize h2 ~grow:false);
      |]
    in
    (threads, verdict ~keys:[ 0; 2; 3 ] t h1 r)
end

(* Flat-slot races specific to the open-addressing layout: the freeze
   latch and an insert claim CAS contending for the same physical
   slot word, removes probing across tombstone runs while the
   tombstoned key is re-inserted (the claim must NOT reuse the
   tombstone — that race is exactly why [Flat_fset] claims only Empty
   words), and two freezers latching the seal sweep concurrently.
   Every scenario ends by recording a final freeze snapshot, so a
   lost or duplicated update shows up in the model even without a
   membership op. *)
module Flat_slot_races = struct
  module F = Nbhash_fset.Flat_fset

  let record_invoke r t kind key =
    let op_m =
      match kind with
      | Fset_intf.Ins -> Lin.Fset_model.Ins key
      | Fset_intf.Rem -> Lin.Fset_model.Rem key
    in
    ignore
      (Record.record r op_m (fun () ->
           let op = F.make_op kind key in
           if F.invoke t op then Lin.Fset_model.Applied (F.get_response op)
           else Lin.Fset_model.Refused))

  let record_freeze r t =
    ignore
      (Record.record r Lin.Fset_model.Freeze (fun () ->
           Lin.Fset_model.Snapshot
             (List.sort compare (Array.to_list (F.freeze t)))))

  let final_verdict r t () =
    record_freeze r t;
    fset_verdict r ()

  (* Smallest key >= 0 (distinct from [k]) probing from the same home
     slot of a capacity-8 generation; white-box via the module's own
     hash. *)
  let home k = F.mix k land 7

  let collide k =
    let rec go c = if c <> k && home c = home k then c else go (c + 1) in
    go 0

  (* The freeze's seal CAS and the insert's claim CAS target the same
     Empty home slot: exactly one wins, and the model decides which
     response set is coherent. *)
  let freeze_vs_insert_same_slot () =
    let t = F.create [||] in
    let r = Record.make () in
    let threads =
      [|
        (fun () -> record_freeze r t);
        (fun () -> record_invoke r t Fset_intf.Ins 1);
      |]
    in
    (threads, final_verdict r t)

  (* Setup leaves a tombstone at [a]'s home with [b] displaced past
     it. One thread removes [b] (its probe crosses the tombstone run),
     the other re-inserts [a] (which must claim a fresh Empty word,
     never the tombstone). *)
  let remove_vs_probe_over_tombstones () =
    let a = 1 in
    let b = collide a in
    let t = F.create [||] in
    let r = Record.make () in
    record_invoke r t Fset_intf.Ins a;
    record_invoke r t Fset_intf.Ins b;
    record_invoke r t Fset_intf.Rem a;
    let threads =
      [|
        (fun () -> record_invoke r t Fset_intf.Rem b);
        (fun () -> record_invoke r t Fset_intf.Ins a);
      |]
    in
    (threads, final_verdict r t)

  (* Two freezers race the seal sweep while an insert is in flight:
     both snapshots must agree on the one frozen state, and the insert
     is either in both or refused/absent from both. *)
  let concurrent_freeze_latching () =
    let t = F.create [||] in
    let r = Record.make () in
    record_invoke r t Fset_intf.Ins 3;
    let threads =
      [|
        (fun () -> record_freeze r t);
        (fun () -> record_freeze r t);
        (fun () -> record_invoke r t Fset_intf.Ins 1);
      |]
    in
    (threads, fset_verdict r)
end

module Lf_array = Freeze_vs_update (Nbhash_fset.Lf_array_fset)
module Lf_list = Freeze_vs_update (Nbhash_fset.Lf_list_fset)
module Ulist = Freeze_vs_update (Nbhash_fset.Ulist_fset)
module Flat = Freeze_vs_update (Nbhash_fset.Flat_fset)
module Wf_array = Wf_freeze_vs_update (Nbhash_fset.Wf_array_fset)
module LFArray = Table_races (Nbhash.Tables.LFArray)
module WFArray = Table_races (Nbhash.Tables.WFArray)
module LFFlat = Table_races (Nbhash.Tables.LFFlat)
module LFArray_sweep = Sweep_races (Nbhash.Tables.LFArray)
module WFArray_sweep = Sweep_races (Nbhash.Tables.WFArray)
module Broken = Freeze_vs_update (Broken_fset)
module Broken_flat = Freeze_vs_update (Broken_flat_fset)

(* Every shipped implementation must pass bounded exploration of
   these. *)
let all : (string * Explore.scenario) list =
  [
    ("lf-array freeze vs update", Lf_array.scenario);
    ("lf-list freeze vs update", Lf_list.scenario);
    ("ulist freeze vs update", Ulist.scenario);
    ("flat freeze vs update", Flat.scenario);
    ( "flat freeze vs insert same slot",
      Flat_slot_races.freeze_vs_insert_same_slot );
    ( "flat remove vs probe over tombstones",
      Flat_slot_races.remove_vs_probe_over_tombstones );
    ("flat concurrent freeze latching", Flat_slot_races.concurrent_freeze_latching);
    ("wf-array freeze vs update", Wf_array.freeze_vs_update);
    ("wf-array shared-op helping", Wf_array.shared_op_help);
    ("wf-array announce race", Wf_array.announce_race);
    ("lfarray grow during insert", LFArray.grow_during_insert);
    ("lfarray shrink during contains", LFArray.shrink_during_contains);
    ("lfarray grow vs grow", LFArray.grow_vs_grow);
    ("lfflat grow during insert", LFFlat.grow_during_insert);
    ("lfflat shrink during contains", LFFlat.shrink_during_contains);
    ("wfarray grow during insert", WFArray.grow_during_insert);
    ("lfarray sweep helper vs lazy init", LFArray_sweep.helper_vs_lazy);
    ("lfarray sweep vs grow-shrink", LFArray_sweep.sweep_vs_grow_shrink);
    ("wfarray sweep helper vs lazy init", WFArray_sweep.helper_vs_lazy);
    ("wfarray sweep vs grow-shrink", WFArray_sweep.sweep_vs_grow_shrink);
  ]

(* ... and the deliberately broken FSet (no [ok] re-check on the retry
   path) must fail it, with a printed counterexample schedule. *)
let broken : string * Explore.scenario =
  ("broken-fset freeze vs update (expected violation)", Broken.scenario)

(* The broken flat claim: insert CASes a key into any empty-keyed
   word, sealed or not, skipping the FROZEN re-check the Empty-only
   claim provides. A freeze completing before the claim yields a
   snapshot that excludes the applied insert — non-linearizable. *)
let broken_flat : string * Explore.scenario =
  ("broken-flat sealed-slot claim (expected violation)", Broken_flat.scenario)

(* The broken chunk claimer: a stale-head insert races the no-freeze
   sweep. The update's success must imply membership; the missing
   freeze lets the interleaving "copy pred bucket, apply update to
   pred bucket, cut pred" lose the key. *)
let broken_sweep : string * Explore.scenario =
  ( "broken-sweep unfrozen chunk copy (expected violation)",
    fun () ->
      let t = Broken_sweep.create () in
      ignore (Broken_sweep.insert t 1);
      let applied = ref false in
      let threads =
        [|
          (fun () -> Broken_sweep.resize_and_sweep_broken t);
          (fun () -> applied := Broken_sweep.insert t 3);
        |]
      in
      let verify () =
        if !applied && not (Broken_sweep.contains t 3) then
          Error
            "insert 3 was applied, but the key is gone: the unfrozen chunk \
             copy migrated the bucket before the update landed in the \
             predecessor"
        else Ok ()
      in
      (threads, verify) )
