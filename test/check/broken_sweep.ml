(* A deliberately broken migration sweep: the chunk claimer copies
   predecessor buckets WITHOUT freezing them first (it "skips the
   frozen re-check" — the claim-then-freeze ordering of DESIGN.md
   System 12). The table's own update path is the correct one
   (flattened LFArrayOpt shape: lazy [init_bucket] WITH freeze, retry
   from the top on a lost CAS or a frozen node), so any counterexample
   the explorer finds is the sweep's fault:

     an updater that read [head] before the resize installs the new
     HNode can still CAS into the old bucket; the real sweep's freeze
     makes that CAS fail (node replaced by a frozen one) and the retry
     re-resolves through the new head, but the broken claim leaves the
     old bucket writable after its contents were copied — the update
     is applied to a bucket nobody will ever read again.

   The model-check suite demands that the explorer catches this within
   its bounded schedule budget, while the shipped sweep passes the
   same exploration. Atomics go through the shim so the checker can
   schedule them. *)

module Atomic = Nbhash_util.Nb_atomic
module Intset = Nbhash_fset.Intset

type bslot = Uninit | Node of { elems : int array; ok : bool }

type hnode = {
  buckets : bslot Atomic.t array;
  size : int;
  mask : int;
  pred : hnode option Atomic.t;
}

type t = { head : hnode Atomic.t }

let make_hnode ~size ~pred =
  {
    buckets = Array.init size (fun _ -> Atomic.make Uninit);
    size;
    mask = size - 1;
    pred = Atomic.make pred;
  }

let create () =
  let hn = make_hnode ~size:1 ~pred:None in
  Atomic.set hn.buckets.(0) (Node { elems = [||]; ok = true });
  { head = Atomic.make hn }

(* Correct freeze (CAS the ok bit off in place), used only by the
   correct lazy path below. *)
let rec freeze_slot slot =
  match Atomic.get slot with
  | Uninit -> assert false
  | Node n as cur ->
    if not n.ok then n.elems
    else if
      Atomic.compare_and_set slot cur (Node { elems = n.elems; ok = false })
    then n.elems
    else freeze_slot slot

(* Correct lazy migration, kept intact as in the real tables. *)
let init_bucket hn i =
  (match (Atomic.get hn.buckets.(i), Atomic.get hn.pred) with
  | Uninit, Some s ->
    let elems =
      if hn.size = s.size * 2 then
        Intset.filter_mask
          (freeze_slot s.buckets.(i land s.mask))
          ~mask:hn.mask ~target:i
      else
        Intset.disjoint_union
          (freeze_slot s.buckets.(i))
          (freeze_slot s.buckets.(i + hn.size))
    in
    ignore
      (Atomic.compare_and_set hn.buckets.(i) Uninit (Node { elems; ok = true }))
  | (Node _ | Uninit), _ -> ())

(* Correct lock-free insert: retry from the top re-resolves the head
   and re-checks the freeze bit every time. *)
let rec insert t k =
  let hn = Atomic.get t.head in
  let i = k land hn.mask in
  let slot = hn.buckets.(i) in
  match Atomic.get slot with
  | Uninit ->
    init_bucket hn i;
    insert t k
  | Node n as cur ->
    if not n.ok then insert t k
    else if Intset.mem n.elems k then false
    else if
      Atomic.compare_and_set slot cur
        (Node { elems = Intset.add n.elems k; ok = true })
    then true
    else insert t k

(* Install a double-sized head, then sweep every chunk of it — with
   the BUG: predecessor buckets are read, not frozen, before their
   contents are copied. Completing the sweep cuts the predecessor
   loose, exactly as the real sweep's early-completion path does. *)
let resize_and_sweep_broken t =
  let hn = Atomic.get t.head in
  let hn' = make_hnode ~size:(hn.size * 2) ~pred:(Some hn) in
  if Atomic.compare_and_set t.head hn hn' then begin
    for i = 0 to hn'.size - 1 do
      match Atomic.get hn'.buckets.(i) with
      | Node _ -> ()
      | Uninit ->
        (* BUG: plain read of the predecessor bucket; a concurrent
           updater holding the old head can still CAS into it after
           this copy. [init_bucket] freezes here. *)
        let elems =
          match Atomic.get hn.buckets.(i land hn.mask) with
          | Uninit -> [||]
          | Node n -> n.elems
        in
        let elems = Intset.filter_mask elems ~mask:hn'.mask ~target:i in
        ignore
          (Atomic.compare_and_set hn'.buckets.(i) Uninit
             (Node { elems; ok = true }))
    done;
    Atomic.set hn'.pred None
  end

let contains t k =
  let hn = Atomic.get t.head in
  match Atomic.get hn.buckets.(k land hn.mask) with
  | Node n -> Intset.mem n.elems k
  | Uninit -> (
    match Atomic.get hn.pred with
    | Some s -> (
      match Atomic.get s.buckets.(k land s.mask) with
      | Node n -> Intset.mem n.elems k
      | Uninit -> false)
    | None -> false)
