(* The telemetry substrate: sharded counters, the log2 histogram, and
   the exactness guarantees the instrumentation promises — resize
   events equal to resize_stats, keys_migrated equal to cardinality
   over a full migration, and no lost increments under domains. *)

module Tm = Nbhash_telemetry.Global
module Probe = Nbhash_telemetry.Probe
module Event = Nbhash_telemetry.Event
module Counters = Nbhash_telemetry.Counters
module Histogram = Nbhash_telemetry.Histogram
module Snapshot = Nbhash_telemetry.Snapshot

(* Serialise the telemetry tests: they install the ambient probe, so
   they must not interleave with each other (Alcotest runs a suite
   sequentially, but this guards against concurrent runners too). *)
let probe_lock = Mutex.create ()

let with_probe f =
  Mutex.lock probe_lock;
  Fun.protect
    ~finally:(fun () ->
      Tm.install Probe.noop;
      Mutex.unlock probe_lock)
    (fun () ->
      let p = Probe.recording () in
      Tm.install p;
      f p)

(* --- counters --- *)

let test_counters_single () =
  let c = Counters.make () in
  Counters.incr c Event.Cas_retry;
  Counters.add c Event.Keys_migrated 41;
  Counters.incr c Event.Keys_migrated;
  Alcotest.(check int) "cas_retry" 1 (Counters.read c Event.Cas_retry);
  Alcotest.(check int) "keys_migrated" 42 (Counters.read c Event.Keys_migrated);
  Alcotest.(check int) "untouched" 0 (Counters.read c Event.Freeze);
  Counters.reset c;
  Alcotest.(check int) "after reset" 0 (Counters.read c Event.Keys_migrated)

let test_counters_multi_domain () =
  (* Exactness: increments from many domains are never lost, whatever
     shard each domain lands on. *)
  let c = Counters.make ~shards:4 () in
  let domains = 4 and per_domain = 10_000 in
  let workers =
    List.init domains (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Counters.incr c Event.Help_op
            done))
  in
  List.iter Domain.join workers;
  Alcotest.(check int) "no lost increments" (domains * per_domain)
    (Counters.read c Event.Help_op)

(* --- histogram --- *)

let test_histogram_percentiles () =
  let h = Histogram.make ~shards:1 () in
  (* 100 observations at 1000ns, 10 at ~1ms: p50 must sit in the 1000ns
     bucket (log2 decade), p99 in the 1ms one. *)
  for _ = 1 to 100 do
    Histogram.observe h 1000
  done;
  for _ = 1 to 10 do
    Histogram.observe h 1_000_000
  done;
  match Histogram.summary h with
  | None -> Alcotest.fail "summary of non-empty histogram"
  | Some s ->
    Alcotest.(check int) "n" 110 s.Nbhash_util.Stats.n;
    let bucket_of x = Nbhash_util.Bits.log2 (int_of_float x) in
    Alcotest.(check int) "p50 decade" (bucket_of 1000.)
      (bucket_of s.Nbhash_util.Stats.median);
    Alcotest.(check int) "p99 decade" (bucket_of 1_000_000.)
      (bucket_of s.Nbhash_util.Stats.p99);
    Alcotest.(check bool) "min <= p50" true
      (s.Nbhash_util.Stats.min <= s.Nbhash_util.Stats.median);
    Alcotest.(check bool) "p50 <= p99" true
      (s.Nbhash_util.Stats.median <= s.Nbhash_util.Stats.p99)

let test_histogram_empty () =
  let h = Histogram.make () in
  Alcotest.(check bool) "empty summary" true (Histogram.summary h = None)

(* --- the noop probe records nothing --- *)

let test_noop_stays_zero () =
  Mutex.lock probe_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock probe_lock)
    (fun () ->
      Tm.install Probe.noop;
      let module S = Nbhash.Tables.LFArrayOpt in
      let t = S.create () in
      let h = S.register t in
      for k = 0 to 999 do
        ignore (S.insert h k)
      done;
      for k = 0 to 999 do
        ignore (S.remove h k)
      done;
      S.unregister h;
      let snap = Tm.snapshot () in
      Alcotest.(check bool) "snapshot is zero" true (Snapshot.is_zero snap);
      Alcotest.(check int) "now_ns is free" 0 (Probe.now_ns Probe.noop))

(* --- instrumented tables: resize events match resize_stats --- *)

let resize_storm (module S : Nbhash.Hashset_intf.S) () =
  with_probe (fun _ ->
      let t = S.create ~policy:{ Nbhash.Policy.default with init_buckets = 4 } ()
      in
      let h = S.register t in
      for k = 0 to 499 do
        ignore (S.insert h k)
      done;
      let domains = 3 in
      let workers =
        List.init domains (fun i ->
            Domain.spawn (fun () ->
                let h = S.register t in
                for j = 0 to 39 do
                  ignore (S.insert h (1000 + (i * 100) + j));
                  S.force_resize h ~grow:(j land 1 = 0)
                done;
                S.unregister h))
      in
      List.iter Domain.join workers;
      S.unregister h;
      let snap = Tm.snapshot () in
      let stats = S.resize_stats t in
      Alcotest.(check int) "grow events == grows"
        stats.Nbhash.Hashset_intf.grows
        (Snapshot.get snap Event.Resize_grow);
      Alcotest.(check int) "shrink events == shrinks"
        stats.Nbhash.Hashset_intf.shrinks
        (Snapshot.get snap Event.Resize_shrink);
      Alcotest.(check bool) "some resizes happened" true
        (stats.Nbhash.Hashset_intf.grows > 0);
      S.check_invariants t)

(* keys_migrated counts only winning install CASes, so after exactly
   one full migration it equals the cardinality at migration time. The
   FIRST force_resize of a quiescent pred-less table migrates nothing
   (every bucket is already initialised); it is the second resize that
   freezes and moves every key. *)
let full_migration (module S : Nbhash.Hashset_intf.S) () =
  with_probe (fun p ->
      let t =
        S.create ~policy:{ Nbhash.Policy.default with init_buckets = 16 } ()
      in
      let h = S.register t in
      let n = 1000 in
      for k = 0 to n - 1 do
        ignore (S.insert h k)
      done;
      S.force_resize h ~grow:true;
      (* Quiescent: discard the counts of the first resize (which may
         have migrated keys lazily inserted across older tables), then
         measure one whole grow. *)
      Probe.reset p;
      S.force_resize h ~grow:true;
      S.unregister h;
      let snap = Tm.snapshot () in
      Alcotest.(check int) "keys_migrated == cardinal" n
        (Snapshot.get snap Event.Keys_migrated);
      Alcotest.(check int) "cardinal unchanged" n (S.cardinal t);
      Alcotest.(check int) "one grow" 1 (Snapshot.get snap Event.Resize_grow))

(* --- counter flush exactness (the unregister path) --- *)

let test_unregister_flushes () =
  with_probe (fun _ ->
      let module S = Nbhash.Tables.LFArray in
      let policy =
        { (Nbhash.Policy.presized 64) with enabled = false }
      in
      let t = S.create ~policy () in
      (* 3 pending inserts per handle: below the flush threshold, so
         without unregister the approximate count would stay 0. *)
      let handles = List.init 5 (fun _ -> S.register t) in
      List.iteri
        (fun i h ->
          for j = 0 to 2 do
            ignore (S.insert h ((i * 10) + j))
          done)
        handles;
      let before = Tm.snapshot () in
      List.iter S.unregister handles;
      let snap = Tm.snapshot () in
      Alcotest.(check int) "five flushes on teardown" 5
        (Snapshot.get snap Event.Counter_flush
        - Snapshot.get before Event.Counter_flush))

(* --- wait-free tables report helping --- *)

let test_wf_reports_helping () =
  with_probe (fun _ ->
      let module S = Nbhash.Tables.WFArray in
      let t = S.create ~max_threads:4 () in
      let h = S.register t in
      for k = 0 to 99 do
        ignore (S.insert h k)
      done;
      S.unregister h;
      let snap = Tm.snapshot () in
      Alcotest.(check bool) "slowpath entries recorded" true
        (Snapshot.get snap Event.Slowpath_entry >= 100);
      Alcotest.(check bool) "helping recorded" true
        (Snapshot.get snap Event.Help_op > 0);
      match Snapshot.span snap Event.Slowpath_span with
      | None -> Alcotest.fail "slowpath span missing"
      | Some s ->
        Alcotest.(check bool) "span count matches entries" true
          (s.Nbhash_util.Stats.n >= 100))

(* --- snapshot serialisation --- *)

let test_snapshot_json () =
  let c, snap =
    Mutex.lock probe_lock;
    Fun.protect
      ~finally:(fun () ->
        Tm.install Probe.noop;
        Mutex.unlock probe_lock)
      (fun () ->
        let p = Probe.recording () in
        Tm.install p;
        Tm.emit Event.Cas_retry;
        Tm.add Event.Keys_migrated 7;
        let start_ns = Tm.now_ns () in
        Tm.record_span Event.Resize_span ~start_ns;
        (Tm.snapshot (), Tm.snapshot ()))
  in
  Alcotest.(check int) "counter read-back" 7 (Snapshot.get c Event.Keys_migrated);
  let json = Snapshot.to_json snap in
  let has needle =
    let n = String.length needle and l = String.length json in
    let rec go i = i + n <= l && (String.sub json i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "counters object" true (has "\"counters\":{");
  Alcotest.(check bool) "cas_retry:1" true (has "\"cas_retry\":1");
  Alcotest.(check bool) "keys_migrated:7" true (has "\"keys_migrated\":7");
  Alcotest.(check bool) "resize span present" true (has "\"resize_ns\":{\"n\":1");
  Alcotest.(check bool) "zero is zero" true (Snapshot.is_zero Snapshot.zero)

(* The JSON shape downstream tooling (bench_compare, the CI schema
   check, ad-hoc jq) depends on: parseable, top-level counters+spans,
   counter keys exactly Event.all in declaration order (stable across
   snapshots), every number finite. *)
let test_snapshot_json_shape () =
  let module Json = Nbhash_util.Json in
  let snap =
    Mutex.lock probe_lock;
    Fun.protect
      ~finally:(fun () ->
        Tm.install Probe.noop;
        Mutex.unlock probe_lock)
      (fun () ->
        Tm.install (Probe.recording ());
        Tm.emit Event.Freeze;
        Tm.record_span Event.Sweep_span ~start_ns:(Tm.now_ns () - 1000);
        Tm.snapshot ())
  in
  let doc =
    match Json.parse (Snapshot.to_json snap) with
    | Ok d -> d
    | Error e -> Alcotest.failf "snapshot JSON does not parse: %s" e
  in
  Alcotest.(check (option (list string)))
    "top-level shape"
    (Some [ "counters"; "spans" ])
    (Json.keys doc);
  let expected_keys = List.map Event.to_string Event.all in
  let counters = Option.get (Json.member "counters" doc) in
  Alcotest.(check (option (list string)))
    "counter keys: every event, declaration order" (Some expected_keys)
    (Json.keys counters);
  (* Same key order on a zero snapshot: stable across inputs. *)
  let zero_doc = Json.parse_exn (Snapshot.to_json Snapshot.zero) in
  Alcotest.(check (option (list string)))
    "key order input-independent" (Some expected_keys)
    (Json.keys (Option.get (Json.member "counters" zero_doc)));
  let rec all_finite = function
    | Json.Num f -> Float.is_finite f
    | Json.Arr l -> List.for_all all_finite l
    | Json.Obj kvs -> List.for_all (fun (_, v) -> all_finite v) kvs
    | Json.Null | Json.Bool _ | Json.Str _ -> true
  in
  Alcotest.(check bool) "all numbers finite" true (all_finite doc);
  (match Option.bind (Json.member "spans" doc) Json.keys with
  | Some keys ->
    Alcotest.(check bool) "recorded span serialised" true
      (List.mem (Event.span_to_string Event.Sweep_span) keys)
  | None -> Alcotest.fail "spans is not an object");
  (* The [~meta] variant (what /snapshot.json serves) prepends the
     bench meta block and leaves the rest of the shape untouched. *)
  let meta_doc =
    match
      Json.parse (Snapshot.to_json ~meta:(Nbhash_telemetry.Meta.json ()) snap)
    with
    | Ok d -> d
    | Error e -> Alcotest.failf "snapshot+meta JSON does not parse: %s" e
  in
  Alcotest.(check (option (list string)))
    "top-level shape with meta"
    (Some [ "meta"; "counters"; "spans" ])
    (Json.keys meta_doc);
  Alcotest.(check (option (list string)))
    "meta block keys"
    (Some [ "git_rev"; "domains"; "ocaml"; "hostname"; "timestamp" ])
    (Option.bind (Json.member "meta" meta_doc) Json.keys);
  Alcotest.(check (option (list string)))
    "counter keys unchanged under meta" (Some expected_keys)
    (Json.keys (Option.get (Json.member "counters" meta_doc)))

let suite =
  [
    ( "telemetry",
      [
        Alcotest.test_case "counters single-domain" `Quick test_counters_single;
        Alcotest.test_case "counters multi-domain" `Quick
          test_counters_multi_domain;
        Alcotest.test_case "histogram percentiles" `Quick
          test_histogram_percentiles;
        Alcotest.test_case "histogram empty" `Quick test_histogram_empty;
        Alcotest.test_case "noop records nothing" `Quick test_noop_stays_zero;
        Alcotest.test_case "resize storm LFArray" `Quick
          (resize_storm (module Nbhash.Tables.LFArray));
        Alcotest.test_case "resize storm LFArrayOpt" `Quick
          (resize_storm (module Nbhash.Tables.LFArrayOpt));
        Alcotest.test_case "resize storm AdaptiveOpt" `Quick
          (resize_storm (module Nbhash.Tables.AdaptiveOpt));
        Alcotest.test_case "full migration LFArray" `Quick
          (full_migration (module Nbhash.Tables.LFArray));
        Alcotest.test_case "full migration LFArrayOpt" `Quick
          (full_migration (module Nbhash.Tables.LFArrayOpt));
        Alcotest.test_case "full migration WFList" `Quick
          (full_migration (module Nbhash.Tables.WFList));
        Alcotest.test_case "unregister flushes counters" `Quick
          test_unregister_flushes;
        Alcotest.test_case "wait-free helping reported" `Quick
          test_wf_reports_helping;
        Alcotest.test_case "snapshot json" `Quick test_snapshot_json;
        Alcotest.test_case "snapshot json shape" `Quick
          test_snapshot_json_shape;
      ] );
  ]
