open Nbhash_util

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_is_pow2 () =
  List.iter (fun n -> check (Printf.sprintf "%d" n) true (Bits.is_pow2 n))
    [ 1; 2; 4; 8; 1024; 1 lsl 40 ];
  List.iter (fun n -> check (Printf.sprintf "%d" n) false (Bits.is_pow2 n))
    [ 0; -1; 3; 6; 12; 1023; (1 lsl 40) + 1 ]

let test_next_pow2 () =
  check_int "0" 1 (Bits.next_pow2 0);
  check_int "1" 1 (Bits.next_pow2 1);
  check_int "2" 2 (Bits.next_pow2 2);
  check_int "3" 4 (Bits.next_pow2 3);
  check_int "1000" 1024 (Bits.next_pow2 1000);
  check_int "1024" 1024 (Bits.next_pow2 1024)

let test_log2 () =
  check_int "1" 0 (Bits.log2 1);
  check_int "2" 1 (Bits.log2 2);
  check_int "8" 3 (Bits.log2 8);
  check_int "2^40" 40 (Bits.log2 (1 lsl 40));
  check_int "5" 2 (Bits.log2 5)

let test_unset_msb () =
  check_int "1" 0 (Bits.unset_msb 1);
  check_int "3" 1 (Bits.unset_msb 3);
  check_int "6" 2 (Bits.unset_msb 6);
  check_int "12" 4 (Bits.unset_msb 12);
  (* The split-ordered parent chain of any bucket reaches 0 in
     popcount steps. *)
  let rec depth b acc = if b = 0 then acc else depth (Bits.unset_msb b) (acc + 1) in
  check_int "parent chain length" (Bits.popcount 0b101101) (depth 0b101101 0)

let test_reverse62_known () =
  check_int "0" 0 (Bits.reverse62 0);
  check_int "1" (1 lsl 61) (Bits.reverse62 1);
  check_int "2" (1 lsl 60) (Bits.reverse62 2);
  check_int "top" 1 (Bits.reverse62 (1 lsl 61))

let test_popcount () =
  check_int "0" 0 (Bits.popcount 0);
  check_int "1" 1 (Bits.popcount 1);
  check_int "255" 8 (Bits.popcount 255);
  check_int "0b1010" 2 (Bits.popcount 0b1010)

let gen61 = QCheck2.Gen.map (fun n -> abs n land ((1 lsl 61) - 1)) QCheck2.Gen.int
let gen62 = QCheck2.Gen.map (fun n -> abs n land ((1 lsl 62) - 1)) QCheck2.Gen.int

let prop_reverse_involution =
  QCheck2.Test.make ~name:"reverse62 is an involution on 62-bit ints"
    ~count:1000 gen62 (fun k -> Bits.reverse62 (Bits.reverse62 k) = k)

let prop_reverse_bit_i =
  QCheck2.Test.make ~name:"reverse62 maps bit i to bit 61-i" ~count:500
    QCheck2.Gen.(pair gen62 (int_bound 61))
    (fun (k, i) ->
      let bit x j = (x lsr j) land 1 in
      bit k i = bit (Bits.reverse62 k) (61 - i))

let prop_so_keys_parity =
  QCheck2.Test.make ~name:"regular so-keys are odd, dummy so-keys even"
    ~count:500 gen61 (fun k ->
      Bits.so_regular_key k land 1 = 1 && Bits.so_dummy_key k land 1 = 0)

let prop_so_keys_injective =
  QCheck2.Test.make ~name:"so_regular_key is injective" ~count:500
    QCheck2.Gen.(pair gen61 gen61)
    (fun (a, b) -> a = b || Bits.so_regular_key a <> Bits.so_regular_key b)

(* The property that makes recursive split-ordering work: the dummy of
   bucket [k mod 2^j] sorts before the regular key of [k], and the
   dummy of a bucket sorts after its parent bucket's dummy. *)
let prop_dummy_precedes_key =
  QCheck2.Test.make ~name:"bucket dummy precedes member keys in split order"
    ~count:1000
    QCheck2.Gen.(pair gen61 (int_range 0 20))
    (fun (k, j) ->
      let b = k land ((1 lsl j) - 1) in
      Bits.so_dummy_key b < Bits.so_regular_key k)

let prop_parent_dummy_precedes =
  QCheck2.Test.make ~name:"parent dummy precedes child dummy" ~count:1000
    QCheck2.Gen.(map (fun n -> (abs n land ((1 lsl 61) - 1)) lor 1) int)
    (fun b -> Bits.so_dummy_key (Bits.unset_msb b) < Bits.so_dummy_key b)

let suite =
  [
    ( "bits",
      [
        Alcotest.test_case "is_pow2" `Quick test_is_pow2;
        Alcotest.test_case "next_pow2" `Quick test_next_pow2;
        Alcotest.test_case "log2" `Quick test_log2;
        Alcotest.test_case "unset_msb" `Quick test_unset_msb;
        Alcotest.test_case "reverse62 known values" `Quick test_reverse62_known;
        Alcotest.test_case "popcount" `Quick test_popcount;
        QCheck_alcotest.to_alcotest prop_reverse_involution;
        QCheck_alcotest.to_alcotest prop_reverse_bit_i;
        QCheck_alcotest.to_alcotest prop_so_keys_parity;
        QCheck_alcotest.to_alcotest prop_so_keys_injective;
        QCheck_alcotest.to_alcotest prop_dummy_precedes_key;
        QCheck_alcotest.to_alcotest prop_parent_dummy_precedes;
      ] );
  ]
