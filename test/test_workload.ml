open Nbhash_workload

let test_spec_validation () =
  (match Workload.spec ~key_range:1 () with
  | _ -> Alcotest.fail "key_range 1 accepted"
  | exception Invalid_argument _ -> ());
  match Workload.spec ~lookup_ratio:1.5 ~key_range:16 () with
  | _ -> Alcotest.fail "lookup_ratio 1.5 accepted"
  | exception Invalid_argument _ -> ()

let test_mix_ratios () =
  let spec = Workload.spec ~lookup_ratio:0.8 ~key_range:128 () in
  let rng = Nbhash_util.Xoshiro.create 3 in
  let n = 20_000 in
  let looks = ref 0 and inss = ref 0 and rems = ref 0 in
  for _ = 1 to n do
    match Workload.next spec rng with
    | Workload.Lookup, k ->
      assert (k >= 0 && k < 128);
      incr looks
    | Workload.Insert, _ -> incr inss
    | Workload.Remove, _ -> incr rems
  done;
  let frac r = Float.of_int !r /. Float.of_int n in
  Alcotest.(check bool) "lookups near 80%" true
    (frac looks > 0.77 && frac looks < 0.83);
  Alcotest.(check bool) "inserts near 10%" true
    (frac inss > 0.08 && frac inss < 0.12);
  Alcotest.(check bool) "removes near 10%" true
    (frac rems > 0.08 && frac rems < 0.12)

let test_pure_update_mix () =
  let spec = Workload.spec ~lookup_ratio:0. ~key_range:16 () in
  let rng = Nbhash_util.Xoshiro.create 4 in
  for _ = 1 to 1_000 do
    match Workload.next spec rng with
    | Workload.Lookup, _ -> Alcotest.fail "lookup generated at L=0"
    | (Workload.Insert | Workload.Remove), _ -> ()
  done

let test_zipf_skew () =
  let spec =
    Workload.spec ~lookup_ratio:1.0 ~dist:(Workload.Zipf 1.2) ~key_range:1024
      ()
  in
  let rng = Nbhash_util.Xoshiro.create 8 in
  let counts = Hashtbl.create 64 in
  let n = 30_000 in
  for _ = 1 to n do
    match Workload.next spec rng with
    | Workload.Lookup, k ->
      assert (k >= 0 && k < 1024);
      Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
    | (Workload.Insert | Workload.Remove), _ -> Alcotest.fail "not a lookup"
  done;
  (* heavy skew: the hottest key takes a large share, and the ten
     hottest together dominate (uniform would give them ~1%) *)
  let sorted =
    Hashtbl.fold (fun _ c acc -> c :: acc) counts []
    |> List.sort (fun a b -> compare b a)
  in
  let top = List.hd sorted in
  let top10 = List.fold_left ( + ) 0 (List.filteri (fun i _ -> i < 10) sorted) in
  Alcotest.(check bool) "head key dominates" true
    (Float.of_int top /. Float.of_int n > 0.1);
  Alcotest.(check bool) "top-10 keys take over a third" true
    (Float.of_int top10 /. Float.of_int n > 0.35)

let test_barrier () =
  let n = 4 in
  let b = Barrier.create n in
  let counter = Atomic.make 0 in
  let after = Atomic.make 0 in
  let worker () =
    ignore (Atomic.fetch_and_add counter 1);
    Barrier.wait b;
    (* Everyone must have arrived before anyone proceeds. *)
    let arrived = Atomic.get counter in
    ignore (Atomic.fetch_and_add after 1);
    Barrier.wait b;
    (arrived, Atomic.get after)
  in
  let ds = List.init n (fun _ -> Domain.spawn worker) in
  let observations = List.map Domain.join ds in
  List.iter
    (fun (arrived, second) ->
      Alcotest.(check int) "all arrived before release" n arrived;
      Alcotest.(check int) "reusable" n second)
    observations

let test_prepopulate () =
  let maker = Factory.by_name "LFArray" in
  let table = maker ~policy:(Nbhash.Policy.presized 64) () in
  let spec = Workload.spec ~key_range:2048 () in
  Runner.prepopulate table spec ~seed:9;
  let c = table.Factory.cardinal () in
  Alcotest.(check bool) "roughly half full" true (c > 850 && c < 1200)

let test_runner_smoke () =
  let maker = Factory.by_name "LFArrayOpt" in
  let table = maker ~policy:(Nbhash.Policy.presized 64) () in
  let spec = Workload.spec ~lookup_ratio:0.5 ~key_range:256 () in
  let r = Runner.run table ~threads:2 ~spec ~duration:0.1 () in
  Alcotest.(check bool) "made progress" true (r.Runner.total_ops > 0);
  Alcotest.(check bool) "throughput positive" true (r.Runner.throughput > 0.);
  table.Factory.check_invariants ()

let test_factory_names () =
  List.iter
    (fun ((name, maker) : string * Factory.maker) ->
      let table = maker () in
      Alcotest.(check string) "name matches" name table.Factory.name)
    Factory.with_michael

let suite =
  [
    ( "workload",
      [
        Alcotest.test_case "spec validation" `Quick test_spec_validation;
        Alcotest.test_case "mix ratios" `Quick test_mix_ratios;
        Alcotest.test_case "pure update mix" `Quick test_pure_update_mix;
        Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
        Alcotest.test_case "barrier" `Quick test_barrier;
        Alcotest.test_case "prepopulate" `Quick test_prepopulate;
        Alcotest.test_case "runner smoke" `Slow test_runner_smoke;
        Alcotest.test_case "factory names" `Quick test_factory_names;
      ] );
  ]
