open Nbhash
module E = Extend.Make (Tables.LFArray)
module EOpt = Extend.Make (Tables.AdaptiveOpt)

let test_of_list () =
  let t, _ = E.of_list [ 3; 1; 2; 3; 1 ] in
  Alcotest.(check (list int)) "deduplicated and sorted" [ 1; 2; 3 ]
    (E.to_list t)

let test_seq_ops () =
  let t, h = E.of_list [ 1; 2 ] in
  Alcotest.(check int) "new insertions counted" 2
    (E.add_seq h (List.to_seq [ 2; 3; 4 ]));
  Alcotest.(check (list int)) "contents" [ 1; 2; 3; 4 ] (E.to_list t);
  Alcotest.(check int) "removals counted" 3
    (E.remove_seq h (List.to_seq [ 1; 2; 3; 9 ]));
  Alcotest.(check (list int)) "rest" [ 4 ] (E.to_list t)

let test_iter_fold () =
  let t, _ = E.of_list [ 1; 2; 3; 4 ] in
  Alcotest.(check int) "fold sums" 10 (E.fold ( + ) 0 t);
  let n = ref 0 in
  E.iter (fun _ -> incr n) t;
  Alcotest.(check int) "iter visits all" 4 !n

let test_equal_subset () =
  let a, _ = E.of_list [ 1; 2; 3 ] in
  let b, _ = E.of_list [ 3; 2; 1 ] in
  let c, _ = E.of_list [ 1; 2 ] in
  Alcotest.(check bool) "equal" true (E.equal a b);
  Alcotest.(check bool) "not equal" false (E.equal a c);
  Alcotest.(check bool) "subset" true (E.subset c a);
  Alcotest.(check bool) "not subset" false (E.subset a c)

let test_union_diff () =
  let a, ha = E.of_list [ 1; 2 ] in
  let b, _ = E.of_list [ 2; 3; 4 ] in
  Alcotest.(check int) "union adds new" 2 (E.union_into ha b);
  Alcotest.(check (list int)) "union contents" [ 1; 2; 3; 4 ] (E.to_list a);
  Alcotest.(check int) "diff removes present" 3 (E.diff_into ha b);
  Alcotest.(check (list int)) "diff contents" [ 1 ] (E.to_list a)

(* Set algebra against the stdlib Set module as a model, through the
   wait-free implementation. *)
module ISet = Set.Make (Int)

let prop_union_model =
  QCheck2.Test.make ~name:"union_into matches Set.union" ~count:150
    QCheck2.Gen.(pair (small_list (int_bound 63)) (small_list (int_bound 63)))
    (fun (xs, ys) ->
      let a, ha = EOpt.of_list xs in
      let b, _ = EOpt.of_list ys in
      ignore (EOpt.union_into ha b);
      EOpt.to_list a
      = ISet.elements (ISet.union (ISet.of_list xs) (ISet.of_list ys)))

let prop_diff_model =
  QCheck2.Test.make ~name:"diff_into matches Set.diff" ~count:150
    QCheck2.Gen.(pair (small_list (int_bound 63)) (small_list (int_bound 63)))
    (fun (xs, ys) ->
      let a, ha = EOpt.of_list xs in
      let b, _ = EOpt.of_list ys in
      ignore (EOpt.diff_into ha b);
      EOpt.to_list a
      = ISet.elements (ISet.diff (ISet.of_list xs) (ISet.of_list ys)))

let test_bucket_sizes () =
  let t, h = E.of_list ~policy:(Policy.presized 4) [] in
  List.iter (fun k -> ignore (E.insert h k)) [ 0; 4; 8; 1; 2 ];
  Alcotest.(check (array int)) "per-bucket occupancy" [| 3; 1; 1; 0 |]
    (E.bucket_sizes t);
  (* After a forced grow the histogram reflects the abstract contents
     even before buckets are touched. *)
  E.force_resize h ~grow:true;
  Alcotest.(check int) "sizes sum preserved" 5
    (Array.fold_left ( + ) 0 (E.bucket_sizes t));
  Alcotest.(check int) "eight buckets" 8 (Array.length (E.bucket_sizes t))

let suite =
  [
    ( "extend",
      [
        Alcotest.test_case "of_list" `Quick test_of_list;
        Alcotest.test_case "add_seq/remove_seq" `Quick test_seq_ops;
        Alcotest.test_case "iter/fold" `Quick test_iter_fold;
        Alcotest.test_case "equal/subset" `Quick test_equal_subset;
        Alcotest.test_case "union/diff" `Quick test_union_diff;
        Alcotest.test_case "bucket_sizes" `Quick test_bucket_sizes;
        QCheck_alcotest.to_alcotest prop_union_model;
        QCheck_alcotest.to_alcotest prop_diff_model;
      ] );
  ]
