(* A bounded linearizability checker for set histories (Wing & Gong
   style backtracking).

   Worker domains timestamp each operation with tickets drawn from one
   atomic counter before invocation and after response, giving a
   real-time partial order. [check] then searches for a legal
   sequential ordering of the whole history: an event may linearize
   next only if no unlinearized event finished before it started
   (real-time respect) and its recorded result matches the model set.
   Key spaces are tiny (< 61 keys) so the model state fits in an int
   bitmask and positions can be memoized. *)

type op = Ins of int | Rem of int | Mem of int

type event = { op : op; result : bool; start_t : int; end_t : int }

type recorder = { ticket : int Atomic.t; events : event list Atomic.t }

let recorder () = { ticket = Atomic.make 0; events = Atomic.make [] }

(* Run [f] and record its timed outcome. Thread-safe. *)
let record r op f =
  let start_t = Atomic.fetch_and_add r.ticket 1 in
  let result = f () in
  let end_t = Atomic.fetch_and_add r.ticket 1 in
  let e = { op; result; start_t; end_t } in
  let rec push () =
    let old = Atomic.get r.events in
    if not (Atomic.compare_and_set r.events old (e :: old)) then push ()
  in
  push ()

let events r = Atomic.get r.events

let key_of = function Ins k | Rem k | Mem k -> k

(* Apply an event to the bitmask state; None if its result is
   inconsistent with the state. *)
let step state e =
  let bit = 1 lsl key_of e.op in
  let present = state land bit <> 0 in
  match e.op with
  | Ins _ ->
    if e.result = not present then Some (state lor bit) else None
  | Rem _ ->
    if e.result = present then Some (state land lnot bit) else None
  | Mem _ -> if e.result = present then Some state else None

let check evs =
  let evs = Array.of_list evs in
  let n = Array.length evs in
  assert (n <= 62);
  Array.iter (fun e -> assert (key_of e.op < 61)) evs;
  let full = (1 lsl n) - 1 in
  let dead = Hashtbl.create 1024 in
  let rec go mask state =
    mask = full
    || (not (Hashtbl.mem dead (mask, state)))
       &&
       let progress = ref false in
       (let i = ref 0 in
        while (not !progress) && !i < n do
          let e = evs.(!i) in
          let pending = mask land (1 lsl !i) = 0 in
          if pending then begin
            (* minimal: no other pending event returned before e began *)
            let minimal = ref true in
            for j = 0 to n - 1 do
              if
                mask land (1 lsl j) = 0
                && j <> !i
                && evs.(j).end_t < e.start_t
              then minimal := false
            done;
            if !minimal then
              match step state e with
              | Some state' ->
                if go (mask lor (1 lsl !i)) state' then progress := true
              | None -> ()
          end;
          incr i
        done);
       if not !progress then Hashtbl.replace dead (mask, state) ();
       !progress
  in
  go 0 0

let pp_event ppf e =
  let name, k =
    match e.op with Ins k -> ("ins", k) | Rem k -> ("rem", k) | Mem k -> ("mem", k)
  in
  Format.fprintf ppf "[%d,%d] %s %d -> %b" e.start_t e.end_t name k e.result

let pp_history ppf evs =
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_event e) evs
