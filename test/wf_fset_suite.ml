(* Conformance suite for cooperative wait-free FSet implementations:
   everything the lock-free suite checks, plus the at-most-once
   (priority/done) protocol that helping relies on. *)

open Nbhash_fset

module Make (F : Fset_intf.WF) = struct
  let prio = ref 0

  let fresh_op kind k =
    incr prio;
    F.make_op kind k ~prio:!prio

  let apply t kind k =
    let op = fresh_op kind k in
    Alcotest.(check bool) "invoke on mutable set succeeds" true (F.invoke t op);
    F.get_response op

  let ins t k = apply t Fset_intf.Ins k
  let rem t k = apply t Fset_intf.Rem k

  let test_basic_semantics () =
    let t = F.create [||] in
    Alcotest.(check bool) "insert new" true (ins t 1);
    Alcotest.(check bool) "insert dup" false (ins t 1);
    Alcotest.(check bool) "member" true (F.has_member t 1);
    Alcotest.(check bool) "remove" true (rem t 1);
    Alcotest.(check bool) "remove absent" false (rem t 1);
    Alcotest.(check bool) "empty" false (F.has_member t 1)

  let test_op_done_transitions () =
    let t = F.create [||] in
    let op = fresh_op Fset_intf.Ins 3 in
    Alcotest.(check bool) "not done before" false (F.op_is_done op);
    Alcotest.(check bool) "applies" true (F.invoke t op);
    Alcotest.(check bool) "done after" true (F.op_is_done op);
    Alcotest.(check int) "prio is infinity" F.infinity_prio (F.op_prio op)

  let test_at_most_once () =
    let t = F.create [||] in
    let op = fresh_op Fset_intf.Ins 5 in
    Alcotest.(check bool) "first invoke" true (F.invoke t op);
    (* Re-invoking a done operation must be a no-op that still reports
       success — this is what makes helping safe. *)
    Alcotest.(check bool) "second invoke still true" true (F.invoke t op);
    Alcotest.(check bool) "response preserved" true (F.get_response op);
    Alcotest.(check int) "applied exactly once" 1 (F.size t);
    let op2 = fresh_op Fset_intf.Rem 5 in
    Alcotest.(check bool) "remove once" true (F.invoke t op2);
    Alcotest.(check bool) "remove re-invoke" true (F.invoke t op2);
    Alcotest.(check int) "exactly removed" 0 (F.size t)

  let test_inert_op () =
    let t = F.create [||] in
    let op = F.make_op Fset_intf.Ins 9 ~prio:F.infinity_prio in
    Alcotest.(check bool) "inert op reports done" true (F.invoke t op);
    Alcotest.(check bool) "inert op did not execute" false (F.has_member t 9)

  let test_freeze () =
    let t = F.create [| 1; 2 |] in
    let final = F.freeze t in
    Alcotest.(check bool) "freeze returns contents" true
      (Intset.equal_as_sets [| 1; 2 |] final);
    Alcotest.(check bool) "frozen" true (F.is_frozen t);
    let op = fresh_op Fset_intf.Ins 7 in
    Alcotest.(check bool) "invoke on frozen fails" false (F.invoke t op);
    Alcotest.(check bool) "op not done" false (F.op_is_done op);
    Alcotest.(check bool) "set unchanged" true
      (Intset.equal_as_sets [| 1; 2 |] (F.elements t))

  let test_freeze_done_op_still_true () =
    let t = F.create [||] in
    let op = fresh_op Fset_intf.Ins 4 in
    Alcotest.(check bool) "applied" true (F.invoke t op);
    ignore (F.freeze t);
    Alcotest.(check bool) "done op reports true after freeze" true
      (F.invoke t op)

  let test_op_accessors () =
    let op = fresh_op Fset_intf.Rem 42 in
    Alcotest.(check int) "key" 42 (F.op_key op);
    Alcotest.(check bool) "kind" true (F.op_kind op = Fset_intf.Rem)

  let trace_gen =
    QCheck2.Gen.(
      small_list (pair bool (int_bound 15))
      |> map
           (List.map (fun (is_ins, k) ->
                ((if is_ins then Fset_intf.Ins else Fset_intf.Rem), k))))

  let prop_trace_equivalence =
    QCheck2.Test.make
      ~name:(F.id ^ ": random traces match the sequential specification")
      ~count:300 trace_gen
      (fun ops ->
        let t = F.create [| 0; 2; 4 |] in
        let m = Seq_fset.create [| 0; 2; 4 |] in
        List.for_all
          (fun (kind, k) ->
            let got = apply t kind k in
            let mop = Seq_fset.make_op kind k in
            ignore (Seq_fset.invoke m mop);
            got = Seq_fset.get_response mop)
          ops
        && Intset.equal_as_sets (F.elements t) (Seq_fset.elements m))

  let suite =
    ( "fset-" ^ F.id,
      [
        Alcotest.test_case "basic semantics" `Quick test_basic_semantics;
        Alcotest.test_case "done transitions" `Quick test_op_done_transitions;
        Alcotest.test_case "at-most-once" `Quick test_at_most_once;
        Alcotest.test_case "inert op" `Quick test_inert_op;
        Alcotest.test_case "freeze" `Quick test_freeze;
        Alcotest.test_case "freeze vs done op" `Quick
          test_freeze_done_op_still_true;
        Alcotest.test_case "op accessors" `Quick test_op_accessors;
        QCheck_alcotest.to_alcotest prop_trace_equivalence;
      ] )
end
