(* Unit tests specific to the unordered-list freezable set: the
   enlist/resolve protocol corners that the generic conformance suite
   does not pin down. *)

module U = Nbhash_fset.Ulist_fset
module Intset = Nbhash_fset.Intset
open Nbhash_fset.Fset_intf

let apply t kind k =
  let op = U.make_op kind k in
  Alcotest.(check bool) "invoke succeeds" true (U.invoke t op);
  U.get_response op

let test_insert_after_remove_same_key () =
  (* ins k (Data), rem k (kills it), ins k again: the second insert's
     walk must skip the killed node and the done remove. *)
  let t = U.create [||] in
  Alcotest.(check bool) "first insert" true (apply t Ins 7);
  Alcotest.(check bool) "remove" true (apply t Rem 7);
  Alcotest.(check bool) "reinsert" true (apply t Ins 7);
  Alcotest.(check bool) "member" true (U.has_member t 7);
  Alcotest.(check bool) "single live copy" true
    (Intset.equal_as_sets [| 7 |] (U.elements t))

let test_long_churn_stays_exact () =
  (* Many ins/rem cycles on few keys: terminal nodes accumulate and
     must be skipped/unlinked without corrupting membership. *)
  let t = U.create [||] in
  for round = 1 to 200 do
    for k = 0 to 3 do
      Alcotest.(check bool) "ins" true (apply t Ins k);
      Alcotest.(check bool) "mem" true (U.has_member t k);
      if (round + k) mod 2 = 0 then
        Alcotest.(check bool) "rem" true (apply t Rem k)
    done;
    for k = 0 to 3 do
      ignore (apply t Rem k)
    done
  done;
  Alcotest.(check int) "empty at the end" 0 (U.size t)

let test_duplicate_insert_window () =
  let t = U.create [| 1; 2; 3 |] in
  Alcotest.(check bool) "dup of initial element" false (apply t Ins 2);
  Alcotest.(check bool) "remove initial" true (apply t Rem 2);
  Alcotest.(check bool) "dup becomes fresh" true (apply t Ins 2)

let test_remove_miss_then_hit () =
  let t = U.create [||] in
  Alcotest.(check bool) "miss" false (apply t Rem 9);
  Alcotest.(check bool) "insert" true (apply t Ins 9);
  Alcotest.(check bool) "hit" true (apply t Rem 9);
  Alcotest.(check bool) "miss again" false (apply t Rem 9)

let test_freeze_rejects_enlist () =
  let t = U.create [| 4 |] in
  let frozen = U.freeze t in
  Alcotest.(check bool) "contents" true (Intset.equal_as_sets [| 4 |] frozen);
  let op = U.make_op Ins 5 in
  Alcotest.(check bool) "enlist after freeze fails" false (U.invoke t op);
  Alcotest.(check bool) "set unchanged" true
    (Intset.equal_as_sets [| 4 |] (U.elements t));
  (* the failed op can be retried elsewhere: it was never enlisted *)
  let t2 = U.create [||] in
  Alcotest.(check bool) "op reusable on another set" true (U.invoke t2 op);
  Alcotest.(check bool) "applied there" true (U.has_member t2 5)

let test_freeze_empty_and_idempotent () =
  let t = U.create [||] in
  Alcotest.(check int) "empty freeze" 0 (Array.length (U.freeze t));
  Alcotest.(check int) "refreeze" 0 (Array.length (U.freeze t));
  Alcotest.(check bool) "frozen" true (U.is_frozen t)

let apply_unchecked t kind k =
  let op = U.make_op kind k in
  ignore (U.invoke t op);
  U.get_response op

(* Hammer one key from many domains; per-key verdicts must alternate
   (never two successful inserts without a successful remove between
   them), which the ledger net-count detects. *)
let test_single_key_storm () =
  let t = U.create [||] in
  let domains = 4 in
  let net = Array.make domains 0 in
  let worker d () =
    let rng = Nbhash_util.Xoshiro.create (40 + d) in
    for _ = 1 to 3_000 do
      if Nbhash_util.Xoshiro.bool rng then begin
        if apply_unchecked t Ins 1 then net.(d) <- net.(d) + 1
      end
      else if apply_unchecked t Rem 1 then net.(d) <- net.(d) - 1
    done
  in
  let ds = List.init domains (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join ds;
  let total = Array.fold_left ( + ) 0 net in
  Alcotest.(check bool) "net 0 or 1" true (total = 0 || total = 1);
  Alcotest.(check bool) "membership matches" (total = 1) (U.has_member t 1)

let suite =
  [
    ( "ulist",
      [
        Alcotest.test_case "reinsert after remove" `Quick
          test_insert_after_remove_same_key;
        Alcotest.test_case "long churn stays exact" `Quick
          test_long_churn_stays_exact;
        Alcotest.test_case "duplicate insert window" `Quick
          test_duplicate_insert_window;
        Alcotest.test_case "remove miss/hit" `Quick test_remove_miss_then_hit;
        Alcotest.test_case "freeze rejects enlist" `Quick
          test_freeze_rejects_enlist;
        Alcotest.test_case "freeze empty/idempotent" `Quick
          test_freeze_empty_and_idempotent;
        Alcotest.test_case "single-key storm" `Slow test_single_key_storm;
      ] );
  ]
