(* The atomics lint's own tests: the seeded fixture must be flagged
   (each rule once), shim-following source must pass, and comments /
   strings must not trigger. *)

let rules violations = List.map (fun v -> v.Lint_rules.rule) violations

(* dune runtest runs with cwd = _build/default/test (where the dep is
   copied); `dune exec test/test_main.exe` runs from the project
   root. *)
let fixture_path () =
  List.find Sys.file_exists
    [ "fixtures/lint_violation.ml.fixture";
      "test/fixtures/lint_violation.ml.fixture" ]

let test_fixture_flagged () =
  let vs = Lint_rules.check_file (fixture_path ()) in
  Alcotest.(check int) "four violations" 4 (List.length vs);
  let has frag =
    List.exists
      (fun r ->
        let n = String.length r and m = String.length frag in
        let rec go i = i + m <= n && (String.sub r i m = frag || go (i + 1)) in
        go 0)
      (rules vs)
  in
  Alcotest.(check bool) "Stdlib.Atomic flagged" true (has "Stdlib.Atomic");
  Alcotest.(check bool) "Mutex flagged" true (has "Mutex");
  Alcotest.(check bool) "Obj.magic flagged" true (has "Obj.magic");
  Alcotest.(check bool) "missing re-point flagged" true (has "re-pointing")

let test_shimmed_source_clean () =
  let src =
    "module Atomic = Nbhash_util.Nb_atomic\n\n\
     type t = int Atomic.t\n\
     let make () = Atomic.make 0\n\
     let bump t = Atomic.fetch_and_add t 1\n"
  in
  Alcotest.(check int)
    "clean" 0
    (List.length (Lint_rules.check_source ~file:"good.ml" src))

let test_comments_and_strings_ignored () =
  let src =
    "module Atomic = Nbhash_util.Nb_atomic\n\
     (* Stdlib.Atomic and Mutex.lock in prose are fine,\n\
    \   (* even nested: Obj.magic *) still a comment *)\n\
     let s = \"Stdlib.Atomic Mutex.create Obj.magic\"\n\
     let x = Atomic.make s\n"
  in
  Alcotest.(check int)
    "clean" 0
    (List.length (Lint_rules.check_source ~file:"prose.ml" src))

let test_each_rule_fires () =
  let flag src =
    List.length (Lint_rules.check_source ~file:"frag.ml" src) > 0
  in
  Alcotest.(check bool) "Stdlib.Atomic" true
    (flag "let x = Stdlib.Atomic.make 0\n");
  Alcotest.(check bool) "Mutex" true (flag "let m = Mutex.create ()\n");
  Alcotest.(check bool) "Condition" true (flag "let c = Condition.create ()\n");
  Alcotest.(check bool) "Semaphore" true
    (flag "let s = Semaphore.Counting.make 1\n");
  Alcotest.(check bool) "Obj.magic" true (flag "let y = Obj.magic 0\n");
  Alcotest.(check bool) "bare Atomic without shim" true
    (flag "let z = Atomic.make 0\n");
  (* longer identifiers must not match *)
  Alcotest.(check bool) "MutexLike is fine" false
    (flag "let m = MutexLike.create ()\n")

(* Evasion fixtures for the alias blind spot: re-exposing Stdlib under
   a new name (or opening it) must be flagged even when the file
   carries the shim alias and never spells "Stdlib.Atomic". *)
let test_alias_evasions_flagged () =
  let flagged src =
    List.length (Lint_rules.check_source ~file:"evade.ml" src) > 0
  in
  Alcotest.(check bool) "module S = Stdlib evasion" true
    (flagged
       "module Atomic = Nbhash_util.Nb_atomic\n\
        module S = Stdlib\n\
        let r = S.Atomic.make 0\n\
        let v = S.Atomic.get r\n");
  Alcotest.(check bool) "open Stdlib evasion" true
    (flagged
       "module Atomic = Nbhash_util.Nb_atomic\n\
        open Stdlib\n\
        let m = max_int\n");
  Alcotest.(check bool) "include Stdlib evasion" true
    (flagged "include Stdlib\n");
  (* dotted Stdlib paths stay legal *)
  Alcotest.(check bool) "Stdlib.max_int is fine" false
    (flagged "let m = Stdlib.max_int\n");
  Alcotest.(check bool) "Stdlib.ref is fine" false
    (flagged "let r = Stdlib.ref 0\n")

let suite =
  [
    ( "lint",
      [
        Alcotest.test_case "fixture violations flagged" `Quick
          test_fixture_flagged;
        Alcotest.test_case "shimmed source clean" `Quick
          test_shimmed_source_clean;
        Alcotest.test_case "comments and strings ignored" `Quick
          test_comments_and_strings_ignored;
        Alcotest.test_case "each rule fires" `Quick test_each_rule_fires;
        Alcotest.test_case "alias evasions flagged" `Quick
          test_alias_evasions_flagged;
      ] );
  ]
