(* The flight recorder and its liveness watchdog.

   Covers the properties ISSUE 4 promises: ring wrap-around keeps the
   newest records, the multi-lane merge is globally time-ordered, the
   disabled hot path allocates nothing, the Chrome exporter emits
   well-formed JSON, and the watchdog distinguishes a never-helping
   (deliberately broken) wait-free table from the shipping variants. *)

module Trace = Nbhash_telemetry.Trace
module Watchdog = Nbhash_telemetry.Watchdog
module Event = Nbhash_telemetry.Event
module Global = Nbhash_telemetry.Global
module Probe = Nbhash_telemetry.Probe
module Json = Nbhash_util.Json

(* The trace sink is ambient (process-global), like the probe: scope
   every installation and never leave one behind. *)
let with_trace ?lanes ?capacity f =
  let tr = Trace.create ?lanes ?capacity () in
  Trace.install tr;
  Fun.protect ~finally:Trace.uninstall (fun () -> f tr)

(* --- record-code bands --- *)

(* The ring encodes records as: instants 1..63, span Begins 64..127,
   span Ends 128..191. Trace's module initialiser refuses to load if
   the taxonomy outgrows a band; this test states the same bound so
   the 64th counter's author finds the encoding constraint by name
   instead of by decoder corruption. *)
let test_code_bands () =
  Alcotest.(check bool)
    "Event.count fits the instant band (< 64)" true (Event.count < 64);
  Alcotest.(check bool)
    "Event.span_count fits the Begin/End bands (<= 64)" true
    (Event.span_count <= 64)

(* --- ring wrap-around --- *)

let test_wraparound () =
  with_trace ~lanes:1 ~capacity:8 (fun tr ->
      for i = 0 to 19 do
        Trace.instant Event.Cas_retry i
      done;
      Alcotest.(check int) "written counts every store" 20 (Trace.written tr);
      let rs = Trace.records tr in
      Alcotest.(check int) "capacity bounds survivors" 8 (Array.length rs);
      Alcotest.(check (list int))
        "the newest records survive, oldest first"
        [ 12; 13; 14; 15; 16; 17; 18; 19 ]
        (Array.to_list (Array.map (fun r -> r.Trace.arg) rs)))

let test_clear () =
  with_trace (fun tr ->
      Trace.instant Event.Freeze 1;
      Trace.clear tr;
      Alcotest.(check int) "cleared" 0 (Array.length (Trace.records tr));
      Trace.instant Event.Freeze 2;
      Alcotest.(check int) "usable after clear" 1
        (Array.length (Trace.records tr)))

(* --- loss accounting --- *)

(* Overwrite-oldest is silent in the ring itself; [drops] makes it
   countable: everything written past capacity is an overwrite, and a
   clear resets the account along with the lanes. *)
let test_drops () =
  with_trace ~lanes:1 ~capacity:8 (fun tr ->
      Alcotest.(check bool) "fresh ring drops nothing" true
        (let d = Trace.drops tr in
         d.Trace.overwritten = 0 && d.Trace.torn = 0);
      for i = 0 to 19 do
        Trace.instant Event.Cas_retry i
      done;
      let d = Trace.drops tr in
      Alcotest.(check int) "overwritten = written - capacity" 12
        d.Trace.overwritten;
      Alcotest.(check int) "single-writer lane tears nothing" 0 d.Trace.torn;
      (* The per-lane breakdown sums to the aggregate. *)
      let by_lane = Trace.lane_drops tr in
      Alcotest.(check int) "lane sum matches"
        d.Trace.overwritten
        (Array.fold_left (fun acc (_, o, _) -> acc + o) 0 by_lane);
      Trace.clear tr;
      let d = Trace.drops tr in
      Alcotest.(check int) "clear resets the account" 0 d.Trace.overwritten)

(* --- multi-domain merge ordering --- *)

let test_merge_ordering () =
  let writers = 4 and per_writer = 200 in
  with_trace ~lanes:64 (fun tr ->
      let ds =
        List.init writers (fun _ ->
            Domain.spawn (fun () ->
                for i = 0 to per_writer - 1 do
                  Trace.instant Event.Help_op i
                done;
                (Domain.self () :> int)))
      in
      let ids = List.map Domain.join ds in
      let rs = Trace.records tr in
      Alcotest.(check int) "nothing lost below capacity"
        (writers * per_writer) (Array.length rs);
      Array.iteri
        (fun i r ->
          if i > 0 && rs.(i - 1).Trace.ts_ns > r.Trace.ts_ns then
            Alcotest.failf "timestamps decrease at %d: %d > %d" i
              rs.(i - 1).Trace.ts_ns r.Trace.ts_ns)
        rs;
      (* Per-domain order survives the merge: each writer's args come
         back as exactly 0..per_writer-1 in order. *)
      List.iter
        (fun id ->
          let args =
            Array.to_list rs
            |> List.filter (fun r -> r.Trace.domain = id)
            |> List.map (fun r -> r.Trace.arg)
          in
          Alcotest.(check (list int))
            (Printf.sprintf "domain %d order preserved" id)
            (List.init per_writer Fun.id) args)
        ids;
      let lanes = Trace.lane_last_ts tr in
      Alcotest.(check int) "every writer lane reports liveness" writers
        (Array.length lanes))

(* --- the disabled path allocates nothing --- *)

let test_disabled_path_no_alloc () =
  Global.install Probe.noop;
  Trace.uninstall ();
  (* Warm up so any one-time allocation is off the books. *)
  for i = 0 to 999 do
    Global.emit Event.Cas_retry;
    Global.emit_arg Event.Help_op i;
    let s = Global.span_begin Event.Resize_span in
    Global.record_span Event.Resize_span ~start_ns:s
  done;
  let before = Gc.minor_words () in
  for i = 0 to 99_999 do
    Global.emit Event.Cas_retry;
    Global.emit_arg Event.Help_op i;
    let s = Global.span_begin Event.Resize_span in
    Global.record_span Event.Resize_span ~start_ns:s
  done;
  let delta = Gc.minor_words () -. before in
  if delta > 256. then
    Alcotest.failf "disabled telemetry hot path allocated %.0f minor words"
      delta

(* --- Chrome trace-event export --- *)

let test_chrome_export () =
  let json =
    with_trace (fun tr ->
        Trace.instant Event.Cas_retry 7;
        (* A balanced span, an orphan end (dropped), and an unclosed
           begin (closed at the last timestamp by the exporter). *)
        Trace.span_begin Event.Resize_span;
        Trace.span_end Event.Resize_span;
        Trace.span_end Event.Sweep_span;
        Trace.span_begin Event.Slowpath_span;
        Trace.instant Event.Freeze 3;
        Trace.to_chrome_string tr)
  in
  let doc =
    match Json.parse json with
    | Ok d -> d
    | Error e -> Alcotest.failf "exporter emitted invalid JSON: %s" e
  in
  let events =
    match Option.bind (Json.member "traceEvents" doc) Json.to_list with
    | Some l -> l
    | None -> Alcotest.fail "no traceEvents array"
  in
  let phase e =
    match Option.bind (Json.member "ph" e) Json.to_str with
    | Some p -> p
    | None -> Alcotest.fail "event without ph"
  in
  let count p = List.length (List.filter (fun e -> phase e = p) events) in
  Alcotest.(check int) "two instants" 2 (count "i");
  Alcotest.(check int) "begins balanced by exporter" (count "B") (count "E");
  Alcotest.(check bool) "track metadata present" true (count "M" >= 1);
  Alcotest.(check int) "orphan end dropped, unclosed begin closed" 2
    (count "B");
  List.iter
    (fun e ->
      if phase e <> "M" then
        match Option.bind (Json.member "ts" e) Json.to_num with
        | Some ts when Float.is_finite ts && ts >= 0. -> ()
        | _ -> Alcotest.fail "event without finite non-negative ts")
    events

(* --- watchdog: negative control, then the shipping tables --- *)

(* A broken wait-free thread: announce an operation in the shared
   announce array and then never drive it — exactly the failure the
   announce/helping protocol (Figure 4) is supposed to make
   impossible. The watchdog must report it, and must stop reporting
   once a helper completes the operation. *)
module W = Nbhash.Wf_common.Make (Nbhash_fset.Wf_array_fset)
module F = Nbhash_fset.Wf_array_fset

let test_watchdog_negative_control () =
  let t = W.create_t Nbhash.Policy.default 4 in
  let h = W.register t in
  let prio = Atomic.fetch_and_add t.W.counter 1 in
  let op = F.make_op Nbhash_fset.Fset_intf.Ins 42 ~prio in
  Atomic.set t.W.slots.(h.W.tid) op;
  let wd =
    Watchdog.create ~max_age_ns:5_000_000
      [ { Watchdog.name = "broken-wf"; pending = (fun () -> W.announced t) } ]
  in
  Alcotest.(check (list string))
    "first poll only starts the clock" []
    (List.map (fun s -> s.Watchdog.source) (Watchdog.poll wd));
  Unix.sleepf 0.05;
  (match Watchdog.poll wd with
  | [] -> Alcotest.fail "never-helped announce did not trip the watchdog"
  | [ s ] ->
    Alcotest.(check string) "source" "broken-wf" s.Watchdog.source;
    Alcotest.(check int) "tid" h.W.tid s.Watchdog.tid;
    Alcotest.(check int) "token is the bakery priority" prio s.Watchdog.token;
    Alcotest.(check bool) "age exceeds the limit" true
      (s.Watchdog.age_ns >= 5_000_000)
  | ss -> Alcotest.failf "expected one stall, got %d" (List.length ss));
  (* A helping thread arrives: the operation completes and the
     watchdog forgets it. *)
  W.drive t op;
  Alcotest.(check int) "completed op clears the stall" 0
    (List.length (Watchdog.poll wd));
  Unix.sleepf 0.01;
  Alcotest.(check int) "and it stays clear" 0 (List.length (Watchdog.poll wd))

(* Slot reuse must restart the age clock: a NEW operation by the same
   tid (fresh token) is not the old stall. *)
let test_watchdog_token_reuse () =
  let t = W.create_t Nbhash.Policy.default 4 in
  let h = W.register t in
  let announce k =
    let prio = Atomic.fetch_and_add t.W.counter 1 in
    let op = F.make_op Nbhash_fset.Fset_intf.Ins k ~prio in
    Atomic.set t.W.slots.(h.W.tid) op;
    op
  in
  let wd =
    Watchdog.create ~max_age_ns:5_000_000
      [ { Watchdog.name = "reuse"; pending = (fun () -> W.announced t) } ]
  in
  let op1 = announce 1 in
  ignore (Watchdog.poll wd);
  Unix.sleepf 0.02;
  Alcotest.(check int) "old op stalls" 1 (List.length (Watchdog.poll wd));
  W.drive t op1;
  ignore (announce 2);
  (* Same tid, new token: the age clock must restart, so an immediate
     poll reports nothing even though the slot never went inert. *)
  Alcotest.(check int) "fresh op is not the old stall" 0
    (List.length (Watchdog.poll wd))

(* The positive side of the control: every shipping table runs a
   short storm watchdog-clean (helping works, nothing stays pending
   for seconds). *)
let churn_watchdog_clean (module S : Nbhash.Hashset_intf.S) () =
  let t =
    S.create
      ~policy:{ Nbhash.Policy.default with init_buckets = 4 }
      ~max_threads:8 ()
  in
  let wd =
    Watchdog.create ~max_age_ns:2_000_000_000
      [ { Watchdog.name = S.name; pending = (fun () -> S.pending_ops t) } ]
  in
  let stop = Atomic.make false in
  let poller =
    Domain.spawn (fun () ->
        Watchdog.run ~interval:0.005 ~stop:(fun () -> Atomic.get stop) wd)
  in
  let ds =
    List.init 3 (fun d ->
        Domain.spawn (fun () ->
            let h = S.register t in
            for i = 0 to 4_999 do
              let k = (d * 10_000) + (i land 1023) in
              if i land 3 = 3 then ignore (S.remove h k)
              else ignore (S.insert h k);
              if i land 255 = 255 then S.force_resize h ~grow:(i land 256 = 0)
            done;
            S.unregister h))
  in
  List.iter Domain.join ds;
  Atomic.set stop true;
  let stalls = Domain.join poller in
  S.check_invariants t;
  Alcotest.(check int) "watchdog-clean storm" 0 stalls

let test_stale_lanes () =
  with_trace (fun tr ->
      Alcotest.(check (list (pair int int)))
        "no lanes, no staleness" []
        (Watchdog.stale_lanes ~max_age_ns:1 tr);
      Trace.instant Event.Freeze 0;
      Unix.sleepf 0.02;
      (match Watchdog.stale_lanes ~max_age_ns:5_000_000 tr with
      | [ (_, age) ] ->
        Alcotest.(check bool) "age measured" true (age >= 5_000_000)
      | l -> Alcotest.failf "expected one stale lane, got %d" (List.length l));
      Trace.instant Event.Freeze 1;
      Alcotest.(check (list (pair int int)))
        "fresh record revives the lane" []
        (Watchdog.stale_lanes ~max_age_ns:1_000_000_000 tr))

let suite =
  [
    ( "trace",
      [
        Alcotest.test_case "record-code bands" `Quick test_code_bands;
        Alcotest.test_case "ring wrap-around" `Quick test_wraparound;
        Alcotest.test_case "clear" `Quick test_clear;
        Alcotest.test_case "drop accounting" `Quick test_drops;
        Alcotest.test_case "multi-domain merge ordering" `Quick
          test_merge_ordering;
        Alcotest.test_case "disabled path allocates nothing" `Quick
          test_disabled_path_no_alloc;
        Alcotest.test_case "chrome export well-formed" `Quick
          test_chrome_export;
        Alcotest.test_case "watchdog negative control" `Quick
          test_watchdog_negative_control;
        Alcotest.test_case "watchdog token reuse" `Quick
          test_watchdog_token_reuse;
        Alcotest.test_case "watchdog stale lanes" `Quick test_stale_lanes;
        Alcotest.test_case "watchdog-clean WFArray" `Quick
          (churn_watchdog_clean (module Nbhash.Tables.WFArray));
        Alcotest.test_case "watchdog-clean WFList" `Quick
          (churn_watchdog_clean (module Nbhash.Tables.WFList));
        Alcotest.test_case "watchdog-clean Adaptive" `Quick
          (churn_watchdog_clean (module Nbhash.Tables.Adaptive));
        Alcotest.test_case "watchdog-clean AdaptiveOpt" `Quick
          (churn_watchdog_clean (module Nbhash.Tables.AdaptiveOpt));
        Alcotest.test_case "watchdog-clean LFArrayOpt" `Quick
          (churn_watchdog_clean (module Nbhash.Tables.LFArrayOpt));
      ] );
  ]
