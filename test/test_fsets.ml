(* Instantiate the FSet conformance suites for every implementation,
   including the sequential oracle itself (a sanity check on the
   suite). *)

module Seq = Fset_suite.Make (Nbhash_fset.Seq_fset)
module LfArray = Fset_suite.Make (Nbhash_fset.Lf_array_fset)
module LfList = Fset_suite.Make (Nbhash_fset.Lf_list_fset)
module Ulist = Fset_suite.Make (Nbhash_fset.Ulist_fset)
module LfSorted = Fset_suite.Make (Nbhash_fset.Lf_sorted_fset)
module Flat = Fset_suite.Make (Nbhash_fset.Flat_fset)
module WfArray = Wf_fset_suite.Make (Nbhash_fset.Wf_array_fset)
module WfList = Wf_fset_suite.Make (Nbhash_fset.Wf_list_fset)

(* Flat_fset-specific coverage beyond the shared conformance suite:
   the open-addressing internals (tombstones, compaction migrations,
   fingerprint prefilter, probe census) have behaviours the
   pointer-based sets cannot exhibit. *)
module Flat_extra = struct
  module F = Nbhash_fset.Flat_fset

  let apply kind t k =
    let op = F.make_op kind k in
    assert (F.invoke t op);
    F.get_response op

  let ins = apply Nbhash_fset.Fset_intf.Ins
  let rem = apply Nbhash_fset.Fset_intf.Rem

  (* Random insert/remove/contains traces over a small key universe:
     removes leave tombstones, re-inserts of the same keys probe over
     them, and insert pressure triggers compaction migrations that
     reclaim them. The model (Hashtbl) is consulted after EVERY
     operation, so a non-linearizable interleaving of tombstone state
     and membership would be caught at the exact step. *)
  let op_gen =
    QCheck2.Gen.(pair (int_bound 2) (int_bound 23) |> list_size (return 400))

  let prop_tombstone_churn =
    QCheck2.Test.make
      ~name:"flat: tombstone churn matches a model set at every step"
      ~count:100 op_gen
      (fun ops ->
        let t = F.create [||] in
        let model = Hashtbl.create 32 in
        List.for_all
          (fun (what, k) ->
            match what with
            | 0 ->
                let fresh = ins t k in
                let expected = not (Hashtbl.mem model k) in
                Hashtbl.replace model k ();
                fresh = expected
            | 1 ->
                let hit = rem t k in
                let expected = Hashtbl.mem model k in
                Hashtbl.remove model k;
                hit = expected
            | _ -> F.has_member t k = Hashtbl.mem model k)
          ops
        && F.size t = Hashtbl.length model)

  (* Insert/remove cycles accumulate one tombstone per cycle inside a
     generation; without the compaction migration the array would
     wedge ("no claimable slot") or grow without bound. The capacity
     staying small across thousands of cycles is the reclamation
     evidence. *)
  let test_tombstone_reclamation () =
    let t = F.create [||] in
    for round = 1 to 2000 do
      let k = round land 7 in
      ignore (ins t k);
      ignore (rem t k)
    done;
    Alcotest.(check int) "all removed" 0 (F.size t);
    Alcotest.(check bool) "capacity stays bounded by compaction" true
      (F.capacity t <= 32)

  let test_probe_census () =
    let t = F.create [||] in
    for k = 0 to 40 do
      ignore (ins t k)
    done;
    let census = F.probe_census t in
    let total = Array.fold_left ( + ) 0 census in
    Alcotest.(check int) "census covers every occupied slot" 41 total;
    Alcotest.(check bool) "distances bounded by capacity" true
      (Array.length census <= F.capacity t)

  (* The full 61-bit key range must round-trip the slot-word packing;
     out-of-range keys must be rejected like the table level does. *)
  let test_edge_keys () =
    let big = (1 lsl 61) - 1 in
    let t = F.create [| big; big - 1; 0 |] in
    Alcotest.(check bool) "max key" true (F.has_member t big);
    ignore (rem t (big - 1));
    Alcotest.(check bool) "removed big key" false (F.has_member t (big - 1));
    ignore (ins t (big - 1));
    Alcotest.(check bool) "reinserted big key" true (F.has_member t (big - 1));
    Alcotest.(check bool) "freeze keeps big keys" true
      (Array.exists (fun k -> k = big) (F.freeze t));
    Alcotest.check_raises "negative key rejected"
      (Invalid_argument "Flat_fset: key out of [0, 2^61)") (fun () ->
        ignore (F.create [| -1 |]));
    Alcotest.check_raises "oversized key rejected"
      (Invalid_argument "Flat_fset: key out of [0, 2^61)") (fun () ->
        ignore (F.make_op Nbhash_fset.Fset_intf.Ins (1 lsl 61)))

  (* Freezing must also latch a set whose generation is mid-pressure:
     fill close to the migration threshold, freeze, and check the
     final contents and refusal. *)
  let test_freeze_under_pressure () =
    let t = F.create [||] in
    for k = 0 to 10 do
      ignore (ins t k)
    done;
    for k = 0 to 4 do
      ignore (rem t (2 * k))
    done;
    let final = F.freeze t in
    let expected = [| 1; 3; 5; 7; 9; 10 |] in
    Alcotest.(check bool) "frozen contents" true
      (Nbhash_fset.Intset.equal_as_sets expected final);
    let op = F.make_op Nbhash_fset.Fset_intf.Rem 1 in
    Alcotest.(check bool) "frozen refuses" false (F.invoke t op);
    Alcotest.(check bool) "tombstoned keys stay out" false (F.has_member t 4)

  let suite =
    ( "fset-flat-extra",
      [
        QCheck_alcotest.to_alcotest prop_tombstone_churn;
        Alcotest.test_case "tombstone reclamation" `Quick
          test_tombstone_reclamation;
        Alcotest.test_case "probe census" `Quick test_probe_census;
        Alcotest.test_case "edge keys" `Quick test_edge_keys;
        Alcotest.test_case "freeze under pressure" `Quick
          test_freeze_under_pressure;
      ] )
end

let suite =
  [
    Seq.suite;
    LfArray.suite;
    LfList.suite;
    Ulist.suite;
    LfSorted.suite;
    Flat.suite;
    Flat_extra.suite;
    WfArray.suite;
    WfList.suite;
  ]
