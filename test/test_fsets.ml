(* Instantiate the FSet conformance suites for every implementation,
   including the sequential oracle itself (a sanity check on the
   suite). *)

module Seq = Fset_suite.Make (Nbhash_fset.Seq_fset)
module LfArray = Fset_suite.Make (Nbhash_fset.Lf_array_fset)
module LfList = Fset_suite.Make (Nbhash_fset.Lf_list_fset)
module Ulist = Fset_suite.Make (Nbhash_fset.Ulist_fset)
module LfSorted = Fset_suite.Make (Nbhash_fset.Lf_sorted_fset)
module WfArray = Wf_fset_suite.Make (Nbhash_fset.Wf_array_fset)
module WfList = Wf_fset_suite.Make (Nbhash_fset.Wf_list_fset)

let suite =
  [
    Seq.suite;
    LfArray.suite;
    LfList.suite;
    Ulist.suite;
    LfSorted.suite;
    WfArray.suite;
    WfList.suite;
  ]
