(* Instantiate the hash-set conformance suite for all nine tables. *)

module Dynamic = struct
  let can_grow = true
  let can_shrink = true
end

module GrowOnly = struct
  let can_grow = true
  let can_shrink = false
end

module Fixed = struct
  let can_grow = false
  let can_shrink = false
end

module T = Nbhash.Tables
module LFArray = Set_suite.Make (T.LFArray) (Dynamic)
module LFArrayOpt = Set_suite.Make (T.LFArrayOpt) (Dynamic)
module LFList = Set_suite.Make (T.LFList) (Dynamic)
module LFUlist = Set_suite.Make (T.LFUlist) (Dynamic)
module LFSorted = Set_suite.Make (T.LFSorted) (Dynamic)
module WFArray = Set_suite.Make (T.WFArray) (Dynamic)
module WFList = Set_suite.Make (T.WFList) (Dynamic)
module Adaptive = Set_suite.Make (T.Adaptive) (Dynamic)
module AdaptiveOpt = Set_suite.Make (T.AdaptiveOpt) (Dynamic)
module SplitOrder = Set_suite.Make (Nbhash_splitorder.Split_ordered) (GrowOnly)
module Michael = Set_suite.Make (Nbhash_michael.Michael_hashset) (Fixed)
module Locked = Set_suite.Make (Nbhash_locked.Locked_hashset) (Dynamic)

let suite =
  [
    LFArray.suite;
    LFArrayOpt.suite;
    LFList.suite;
    LFUlist.suite;
    LFSorted.suite;
    WFArray.suite;
    WFList.suite;
    Adaptive.suite;
    AdaptiveOpt.suite;
    SplitOrder.suite;
    Michael.suite;
    Locked.suite;
  ]
