(* Generic-key tables: string keys, adversarial hash collisions, and
   model equivalence. *)

module StringKey = struct
  type t = string

  let equal = String.equal
  let hash = Hashtbl.hash
end

(* Every key collides: correctness must come from K.equal alone. *)
module CollidingKey = struct
  type t = string

  let equal = String.equal
  let hash _ = 7
end

module SSet = Nbhash_generic.Generic_set.Make (StringKey)
module CSet = Nbhash_generic.Generic_set.Make (CollidingKey)
module SMap = Nbhash_generic.Generic_map.Make (StringKey)
module CMap = Nbhash_generic.Generic_map.Make (CollidingKey)

let test_string_set_basic () =
  let t = SSet.create () in
  let h = SSet.register t in
  Alcotest.(check bool) "add" true (SSet.add h "hello");
  Alcotest.(check bool) "dup" false (SSet.add h "hello");
  Alcotest.(check bool) "mem" true (SSet.mem h "hello");
  Alcotest.(check bool) "other" false (SSet.mem h "world");
  Alcotest.(check bool) "remove" true (SSet.remove h "hello");
  Alcotest.(check bool) "gone" false (SSet.mem h "hello");
  SSet.check_invariants t

let test_string_set_growth () =
  let t = SSet.create () in
  let h = SSet.register t in
  for i = 0 to 4_999 do
    Alcotest.(check bool) "fresh add" true (SSet.add h (string_of_int i))
  done;
  Alcotest.(check int) "cardinal" 5_000 (SSet.cardinal t);
  Alcotest.(check bool) "grew" true (SSet.bucket_count t > 1);
  for i = 0 to 4_999 do
    if not (SSet.mem h (string_of_int i)) then
      Alcotest.failf "key %d missing after growth" i
  done;
  SSet.check_invariants t

let test_collisions_coexist () =
  let t = CSet.create ~policy:(Nbhash.Policy.presized 8) () in
  let h = CSet.register t in
  Alcotest.(check bool) "a" true (CSet.add h "a");
  Alcotest.(check bool) "b" true (CSet.add h "b");
  Alcotest.(check bool) "c" true (CSet.add h "c");
  Alcotest.(check int) "three distinct keys, one hash" 3 (CSet.cardinal t);
  Alcotest.(check bool) "remove middle" true (CSet.remove h "b");
  Alcotest.(check bool) "a stays" true (CSet.mem h "a");
  Alcotest.(check bool) "c stays" true (CSet.mem h "c");
  CSet.force_resize h ~grow:true;
  Alcotest.(check bool) "a survives resize" true (CSet.mem h "a");
  Alcotest.(check bool) "c survives resize" true (CSet.mem h "c");
  CSet.check_invariants t

let test_string_map () =
  let t = SMap.create () in
  let h = SMap.register t in
  Alcotest.(check (option int)) "put" None (SMap.put h "x" 1);
  Alcotest.(check (option int)) "get" (Some 1) (SMap.get h "x");
  Alcotest.(check (option int)) "replace" (Some 1) (SMap.put h "x" 2);
  SMap.update h "x" (function None -> 0 | Some v -> v * 10);
  Alcotest.(check (option int)) "updated" (Some 20) (SMap.get h "x");
  Alcotest.(check (option int)) "remove" (Some 20) (SMap.remove h "x");
  Alcotest.(check int) "empty" 0 (SMap.cardinal t)

let test_colliding_map_resize () =
  let t = CMap.create ~policy:(Nbhash.Policy.presized 4) () in
  let h = CMap.register t in
  List.iter (fun (k, v) -> ignore (CMap.put h k v))
    [ ("one", 1); ("two", 2); ("three", 3) ];
  CMap.force_resize h ~grow:true;
  CMap.force_resize h ~grow:false;
  Alcotest.(check (option int)) "one" (Some 1) (CMap.get h "one");
  Alcotest.(check (option int)) "two" (Some 2) (CMap.get h "two");
  Alcotest.(check (option int)) "three" (Some 3) (CMap.get h "three");
  CMap.check_invariants t

let word_gen = QCheck2.Gen.(string_size ~gen:printable (int_range 0 6))

let prop_set_model =
  QCheck2.Test.make ~name:"generic string set matches a model" ~count:150
    QCheck2.Gen.(small_list (pair bool word_gen))
    (fun ops ->
      let t = SSet.create ~policy:(Nbhash.Policy.presized 2) () in
      let h = SSet.register t in
      let model = Hashtbl.create 16 in
      let ok =
        List.for_all
          (fun (is_add, w) ->
            if is_add then begin
              let expected = not (Hashtbl.mem model w) in
              Hashtbl.replace model w ();
              SSet.add h w = expected
            end
            else begin
              let expected = Hashtbl.mem model w in
              Hashtbl.remove model w;
              SSet.remove h w = expected
            end)
          ops
      in
      SSet.check_invariants t;
      ok && SSet.cardinal t = Hashtbl.length model)

let prop_map_model =
  QCheck2.Test.make ~name:"generic string map matches a model" ~count:150
    QCheck2.Gen.(small_list (pair (int_bound 2) word_gen))
    (fun ops ->
      let t = SMap.create ~policy:(Nbhash.Policy.presized 2) () in
      let h = SMap.register t in
      let model = Hashtbl.create 16 in
      let ok =
        List.for_all Fun.id
          (List.mapi
             (fun i (c, w) ->
               match c with
               | 0 ->
                 let expected = Hashtbl.find_opt model w in
                 Hashtbl.replace model w i;
                 SMap.put h w i = expected
               | 1 ->
                 let expected = Hashtbl.find_opt model w in
                 Hashtbl.remove model w;
                 SMap.remove h w = expected
               | _ -> SMap.get h w = Hashtbl.find_opt model w)
             ops)
      in
      SMap.check_invariants t;
      ok && SMap.cardinal t = Hashtbl.length model)

let test_concurrent_string_set () =
  let domains = 4 and n = 1_500 in
  let t = SSet.create ~policy:Nbhash.Policy.aggressive () in
  let worker d () =
    let h = SSet.register t in
    for i = 0 to n - 1 do
      let w = Printf.sprintf "key-%d-%d" d i in
      if not (SSet.add h w) then Alcotest.failf "fresh add of %s failed" w
    done
  in
  let ds = List.init domains (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join ds;
  SSet.check_invariants t;
  Alcotest.(check int) "all present" (domains * n) (SSet.cardinal t)

let suite =
  [
    ( "generic",
      [
        Alcotest.test_case "string set basic" `Quick test_string_set_basic;
        Alcotest.test_case "string set growth" `Quick test_string_set_growth;
        Alcotest.test_case "hash collisions coexist" `Quick
          test_collisions_coexist;
        Alcotest.test_case "string map" `Quick test_string_map;
        Alcotest.test_case "colliding map across resizes" `Quick
          test_colliding_map_resize;
        QCheck_alcotest.to_alcotest prop_set_model;
        QCheck_alcotest.to_alcotest prop_map_model;
        Alcotest.test_case "concurrent string adds" `Slow
          test_concurrent_string_set;
      ] );
  ]
