(* The KV service end to end: port-0 binding and the EADDRINUSE error
   path, STAT self-description, graceful drain (no acknowledged write
   lost, migrations finished, watchdog clean), and a small in-process
   open-loop load run whose report renders as valid bench-v2 JSON. *)

module P = Nbhash_server.Protocol
module Server = Nbhash_server.Server
module Backend = Nbhash_server.Backend
module Loadgen = Nbhash_server.Loadgen
module V = Nbhash.Hashset_intf
module J = Nbhash_util.Json

let client port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd
    (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port));
  fd

let rpc fd req =
  P.write_request fd req;
  match P.read_response fd with
  | Result.Ok r -> r
  | Result.Error msg -> Alcotest.fail ("rpc: " ^ msg)

(* --- binding --- *)

let test_bind () =
  (* Port 0 binds a free port and reports the real one. *)
  let server =
    Server.start ~config:{ Server.default_config with workers = 1 } ()
  in
  Alcotest.(check bool) "picked a real port" true (Server.port server > 0);
  (* The port is genuinely bound: a second bind on it fails with the
     one-line Bind_error, not a raw Unix error. *)
  (match
     Nbhash_telemetry.Metrics_server.listen_tcp ~addr:"127.0.0.1"
       ~port:(Server.port server) ()
   with
  | exception Nbhash_telemetry.Metrics_server.Bind_error msg ->
    Alcotest.(check bool) "message names EADDRINUSE" true
      (String.length msg >= 12
      && String.sub msg (String.length msg - 12) 12 = "(EADDRINUSE)")
  | _fd, _port -> Alcotest.fail "double bind succeeded");
  Server.stop server

(* --- STAT --- *)

let test_stat () =
  let server =
    Server.start
      ~config:
        {
          Server.default_config with
          backend = Backend.Waitfree;
          shards = 3;
          workers = 1;
        }
      ()
  in
  let fd = client (Server.port server) in
  (match rpc fd P.Stat with
  | P.Value body -> (
    match J.parse body with
    | Result.Error msg -> Alcotest.fail ("STAT is not JSON: " ^ msg)
    | Result.Ok doc ->
      let num name =
        match Option.bind (J.member name doc) J.to_num with
        | Some n -> int_of_float n
        | None -> Alcotest.fail ("STAT lacks " ^ name)
      in
      (match J.member "backend" doc with
      | Some (J.Str s) -> Alcotest.(check string) "backend" "waitfree" s
      | _ -> Alcotest.fail "STAT lacks backend");
      Alcotest.(check int) "shards" 3 (num "shards");
      Alcotest.(check int) "workers" 1 (num "workers");
      Alcotest.(check int) "cardinal" 0 (num "cardinal"))
  | other ->
    Alcotest.fail
      (match other with
      | P.Err m -> "STAT answered ERR: " ^ m
      | _ -> "STAT answered a non-VALUE response"));
  ignore (rpc fd (P.Put (5, "x")));
  (match rpc fd P.Stat with
  | P.Value body ->
    Alcotest.(check bool) "cardinal counts the put" true
      (match
         Option.bind (Result.to_option (J.parse body)) (fun d ->
             Option.bind (J.member "cardinal" d) J.to_num)
       with
      | Some 1. -> true
      | _ -> false)
  | _ -> Alcotest.fail "second STAT failed");
  Unix.close fd;
  Server.stop server

(* --- graceful drain --- *)

(* Acked writes before a drain are all readable after it; the drain
   finishes any open migration window (progress 1.0 on every shard)
   and leaves nothing pending for the watchdog to flag. *)
let test_drain ~kind () =
  let wd = Nbhash_telemetry.Watchdog.global ~max_age_ns:(30 * 1_000_000_000) () in
  let server =
    Server.start
      ~config:
        {
          Server.default_config with
          backend = kind;
          shards = 2;
          workers = 2;
        }
      ()
  in
  let port = Server.port server in
  let keys = List.init 300 (fun i -> i * 7) in
  let fd = client port in
  List.iter
    (fun k ->
      match rpc fd (P.Put (k, "v" ^ string_of_int k)) with
      | P.Ok -> ()
      | _ -> Alcotest.fail "put not acked")
    keys;
  (* Open a migration window on both shards so the drain has real
     work: the acceptance criterion is progress 1.0 afterwards. *)
  let th = Backend.register (Server.backend server) in
  Backend.force_resize th ~shard:0 ~grow:true;
  Backend.force_resize th ~shard:1 ~grow:true;
  Backend.unregister th;
  Alcotest.(check bool) "watchdog quiet under load" true
    (Nbhash_telemetry.Watchdog.poll wd = []);
  (* Drain over the wire: OK comes back only after migrations are
     done, and the workers shut down afterwards. *)
  (match rpc fd P.Drain with
  | P.Ok -> ()
  | _ -> Alcotest.fail "drain not acked");
  Unix.close fd;
  Server.wait server;
  let backend = Server.backend server in
  for shard = 0 to Backend.shard_count backend - 1 do
    let v = Backend.inspect_shard backend shard in
    Alcotest.(check bool)
      (Printf.sprintf "shard %d window closed" shard)
      false v.V.migrating;
    Alcotest.(check (float 0.0))
      (Printf.sprintf "shard %d progress" shard)
      1.0 v.V.migration_progress
  done;
  (* Every acked write survived the drain. *)
  let h = Backend.register backend in
  List.iter
    (fun k ->
      match Backend.get h k with
      | Some v when v = "v" ^ string_of_int k -> ()
      | Some _ -> Alcotest.fail (Printf.sprintf "key %d: wrong value" k)
      | None -> Alcotest.fail (Printf.sprintf "acked key %d lost by drain" k))
    keys;
  Backend.unregister h;
  Backend.check_invariants backend;
  Alcotest.(check bool) "watchdog clean after drain" true
    (Nbhash_telemetry.Watchdog.poll wd = [])

(* A new connection arriving after the drain is refused or dropped,
   never served. *)
let test_drain_refuses_new_connections () =
  let server =
    Server.start ~config:{ Server.default_config with workers = 2 } ()
  in
  let port = Server.port server in
  let fd = client port in
  (match rpc fd P.Drain with
  | P.Ok -> ()
  | _ -> Alcotest.fail "drain not acked");
  Unix.close fd;
  Server.wait server;
  (match client port with
  | fd ->
    (* The connect itself may be absorbed by the dead listener's
       backlog; the next read must then see EOF, never a served
       response. *)
    (try P.write_request fd P.Ping with Unix.Unix_error _ -> ());
    (match P.read_response fd with
    | Result.Error _ -> ()
    | Result.Ok _ -> Alcotest.fail "drained server served a new connection");
    Unix.close fd
  | exception Unix.Unix_error _ -> ())

(* --- robustness: SIGPIPE, hostname addresses, idle-client stop --- *)

(* A client that disconnects without reading its responses makes the
   server write into a reset connection. With SIGPIPE at its default
   disposition that kills the whole process; Server.start must ignore
   it so the write surfaces as EPIPE and only that connection dies. *)
let test_sigpipe_survival () =
  (* Undo any ignore inherited from earlier tests so this test proves
     Server.start installs it. *)
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_default)
   with Invalid_argument _ | Sys_error _ -> ());
  let server =
    Server.start ~config:{ Server.default_config with workers = 2 } ()
  in
  let prev = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  Alcotest.(check bool) "start ignores SIGPIPE" true
    (prev = Sys.Signal_ignore);
  let port = Server.port server in
  for _ = 1 to 5 do
    let fd = client port in
    for i = 1 to 64 do
      P.write_request fd (P.Get i)
    done;
    (* Close with all responses unread: the kernel answers further
       server writes with RST, so they fail instead of blocking. *)
    Unix.close fd
  done;
  Unix.sleepf 0.05;
  (* The process survived and still serves. *)
  let fd = client port in
  (match rpc fd P.Ping with
  | P.Ok -> ()
  | _ -> Alcotest.fail "server did not answer after aborted clients");
  Unix.close fd;
  Server.stop server

(* addr may be a hostname, not just a dotted quad: binding resolves it
   via getaddrinfo, and stop's accept-wake fallback must use the
   resolved address instead of raising Failure mid-drain. *)
let test_hostname_addr () =
  match Nbhash_telemetry.Metrics_server.resolve_inet "localhost" with
  | exception Failure _ -> () (* no name resolution here; nothing to test *)
  | _inet ->
    let server =
      Server.start
        ~config:
          { Server.default_config with addr = "localhost"; workers = 1 }
        ()
    in
    let fd = client (Server.port server) in
    (match rpc fd P.Ping with
    | P.Ok -> ()
    | _ -> Alcotest.fail "ping on hostname-bound server");
    Unix.close fd;
    Server.stop server

(* stop must bring down a worker parked in read_frame on an idle
   connection (shutdown-for-read wake), not wait for the client. *)
let test_stop_unblocks_idle_connection () =
  let server =
    Server.start ~config:{ Server.default_config with workers = 1 } ()
  in
  let fd = client (Server.port server) in
  (match rpc fd P.Ping with
  | P.Ok -> ()
  | _ -> Alcotest.fail "ping");
  (* The only worker is now parked reading this idle connection. *)
  Server.stop server;
  (match P.read_response fd with
  | Result.Error _ -> ()
  | Result.Ok _ -> Alcotest.fail "served a response after stop");
  Unix.close fd

(* --- staged latency attribution --- *)

module Slowlog = Nbhash_server.Slowlog
module Stages = Nbhash_server.Stages

(* Stage attribution needs a recording ambient probe; scope it so the
   rest of the binary keeps the noop default. *)
let with_recording f =
  Fun.protect
    ~finally:(fun () ->
      Nbhash_telemetry.Global.install Nbhash_telemetry.Probe.noop)
    (fun () ->
      Nbhash_telemetry.Global.install (Nbhash_telemetry.Probe.recording ());
      f ())

(* A capture lands after its reply is written, so a client can observe
   its own response before the worker has noted the request; poll
   briefly instead of asserting on the instant count. *)
let wait_captured slow n =
  let deadline = Unix.gettimeofday () +. 5. in
  while Slowlog.captured slow < n && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.005
  done

(* Adjacent stages share boundary timestamps, so the stage sum equals
   the total exactly — not within tolerance. A zero threshold captures
   every attributed request, which makes the slow log the test's
   window into per-request stage values. *)
let test_staged_attribution () =
  with_recording (fun () ->
      let server =
        Server.start
          ~config:
            {
              Server.default_config with
              workers = 1;
              slow_threshold_ns = Some 0;
            }
          ()
      in
      let fd = client (Server.port server) in
      (match rpc fd (P.Put (1, "v")) with
      | P.Ok -> ()
      | _ -> Alcotest.fail "put");
      (match rpc fd (P.Get 1) with
      | P.Value "v" -> ()
      | _ -> Alcotest.fail "get");
      (match rpc fd (P.Del 1) with
      | P.Ok -> ()
      | _ -> Alcotest.fail "del");
      Unix.close fd;
      let slow = Server.slowlog server in
      wait_captured slow 3;
      let entries = Slowlog.entries slow in
      Alcotest.(check bool) "threshold 0 captured the requests" true
        (List.length entries >= 3);
      List.iter
        (fun (e : Slowlog.entry) ->
          Alcotest.(check int)
            (Printf.sprintf "#%d %s: read+decode+shard+write = total" e.seq
               e.op)
            e.total_ns
            (e.read_ns + e.decode_ns + e.shard_ns + e.write_ns);
          Alcotest.(check bool)
            (Printf.sprintf "#%d help within the shard stage" e.seq)
            true
            (e.help_ns >= 0 && e.help_ns <= e.shard_ns);
          Alcotest.(check bool)
            (Printf.sprintf "#%d positive total" e.seq)
            true (e.total_ns > 0))
        entries;
      let ops = List.map (fun (e : Slowlog.entry) -> e.op) entries in
      List.iter
        (fun op ->
          Alcotest.(check bool) (op ^ " captured") true (List.mem op ops))
        [ "get"; "put"; "del" ];
      (* The JSON the /slow.json route serves parses and has the
         envelope the CLI renders. *)
      (match J.parse (Slowlog.to_json slow) with
      | Result.Error msg -> Alcotest.fail ("slow JSON unparsable: " ^ msg)
      | Result.Ok doc ->
        Alcotest.(check (option (list string)))
          "slow JSON keys"
          (Some [ "threshold_ns"; "captured"; "capacity"; "entries" ])
          (J.keys doc);
        match Option.bind (J.member "entries" doc) J.to_list with
        | Some (e :: _) ->
          List.iter
            (fun k ->
              if J.member k e = None then
                Alcotest.failf "slow entry lacks %s" k)
            [
              "seq"; "op"; "key"; "shard"; "total_ns"; "read_ns"; "decode_ns";
              "shard_ns"; "help_ns"; "write_ns"; "threshold_ns"; "view";
            ]
        | _ -> Alcotest.fail "slow JSON has no entries");
      Server.stop server)

(* Stall injection: one shard, a sweep chunk big enough to migrate the
   whole table in one claim, a forced resize over the wire — the next
   request does the entire migration inside its shard stage, and the
   capture attributes that time to help_ns. *)
let test_stall_capture () =
  with_recording (fun () ->
      let policy =
        {
          Backend.default_policy with
          migration =
            { Nbhash.Policy.default_migration with chunk = 65536 };
        }
      in
      let server =
        Server.start
          ~config:
            {
              Server.default_config with
              shards = 1;
              workers = 1;
              policy = Some policy;
              slow_threshold_ns = Some 0;
            }
          ()
      in
      let fd = client (Server.port server) in
      for k = 0 to 8191 do
        match rpc fd (P.Put (k, "v")) with
        | P.Ok -> ()
        | _ -> Alcotest.fail "prefill put"
      done;
      (match rpc fd (P.Force_resize 0) with
      | P.Ok -> ()
      | _ -> Alcotest.fail "force resize");
      (match rpc fd (P.Put (100_000, "w")) with
      | P.Ok -> ()
      | _ -> Alcotest.fail "stalled put");
      Unix.close fd;
      wait_captured (Server.slowlog server) 8194;
      let entries = Slowlog.entries (Server.slowlog server) in
      let helped =
        List.filter (fun (e : Slowlog.entry) -> e.help_ns > 0) entries
      in
      Alcotest.(check bool) "some capture carries helping time" true
        (helped <> []);
      (* The most-helped request attributes at least half its overage
         (threshold 0: its whole duration) to the migration it drove. *)
      let worst =
        List.fold_left
          (fun (a : Slowlog.entry) (e : Slowlog.entry) ->
            if e.help_ns > a.help_ns then e else a)
          (List.hd helped) helped
      in
      Alcotest.(check bool)
        (Printf.sprintf
           "help dominates the stall (help %dns, total %dns, threshold %dns)"
           worst.help_ns worst.total_ns worst.threshold_ns)
        true
        (2 * worst.help_ns >= worst.total_ns - worst.threshold_ns);
      Alcotest.(check bool) "the capture names the owning shard" true
        (worst.shard = 0 && worst.view <> None);
      Server.stop server;
      Backend.check_invariants (Server.backend server))

(* With the probe disabled, the staged marks are branches on a cached
   flag — no clock reads, no allocation. *)
let test_staged_marks_disabled_no_alloc () =
  Nbhash_telemetry.Trace.uninstall ();
  Nbhash_telemetry.Global.install Nbhash_telemetry.Probe.noop;
  let c = Stages.make () in
  let mark () =
    Stages.frame_start c;
    Stages.read_done c ~t_first:0;
    Stages.decode_done c;
    Stages.shard_start c;
    Stages.shard_done c;
    Stages.finish c ~op:Stages.Get
  in
  for _ = 1 to 1_000 do
    mark ()
  done;
  let before = Gc.minor_words () in
  for _ = 1 to 100_000 do
    mark ()
  done;
  let delta = Gc.minor_words () -. before in
  if delta > 256. then
    Alcotest.failf "disabled staged marks allocated %.0f minor words" delta

(* --- load generator --- *)

let test_loadgen () =
  let server =
    Server.start
      ~config:{ Server.default_config with shards = 2; workers = 2 }
      ()
  in
  let report =
    Loadgen.run
      ~config:
        {
          Loadgen.default_config with
          port = Server.port server;
          conns = 2;
          rate = 4000.;
          duration_s = 0.5;
          key_range = 1 lsl 10;
          dist = Nbhash_workload.Keystream.Zipf 1.1;
        }
      ()
  in
  Alcotest.(check bool) "sent some requests" true (report.Loadgen.sent > 100);
  Alcotest.(check int) "no errors" 0 report.Loadgen.errors;
  Alcotest.(check int) "no aborted connections" 0 report.Loadgen.aborted;
  Alcotest.(check bool) "percentiles ordered" true
    (report.Loadgen.p50_ns <= report.Loadgen.p99_ns
    && report.Loadgen.p99_ns <= report.Loadgen.p999_ns);
  Alcotest.(check bool) "impl from STAT" true
    (report.Loadgen.impl = "server/lockfreex2");
  (* Every connection negotiated revision 2 against our own server,
     and every reply echoed the right id. *)
  Alcotest.(check int) "all connections on rev 2" 2 report.Loadgen.v2_conns;
  Alcotest.(check int) "no id mismatches" 0 report.Loadgen.id_mismatches;
  (* Per-opcode splits cover the traffic. *)
  Alcotest.(check (list string))
    "per-op rows" [ "get"; "put"; "del" ]
    (List.map (fun (o : Loadgen.op_stats) -> o.Loadgen.op)
       report.Loadgen.per_op);
  Alcotest.(check int) "per-op sent sums to sent" report.Loadgen.sent
    (List.fold_left
       (fun acc (o : Loadgen.op_stats) -> acc + o.Loadgen.op_sent)
       0 report.Loadgen.per_op);
  List.iter
    (fun (o : Loadgen.op_stats) ->
      if o.Loadgen.op_sent > 0 then
        Alcotest.(check bool)
          (o.Loadgen.op ^ " percentiles ordered") true
          (o.Loadgen.op_p50_ns <= o.Loadgen.op_p99_ns
          && o.Loadgen.op_p99_ns <= o.Loadgen.op_p999_ns))
    report.Loadgen.per_op;
  (* The bench-v2 rendering parses and carries the identity fields
     bench_compare keys on, plus a positive throughput. *)
  (match J.parse (Loadgen.to_bench_json report) with
  | Result.Error msg -> Alcotest.fail ("bench JSON unparsable: " ^ msg)
  | Result.Ok doc ->
    (match J.member "schema" doc with
    | Some (J.Str "nbhash-bench-v2") -> ()
    | _ -> Alcotest.fail "wrong schema");
    (match J.member "mode" doc with
    | Some (J.Str "load") -> ()
    | _ -> Alcotest.fail "wrong mode");
    let result =
      match Option.bind (J.member "results" doc) J.to_list with
      | Some [ r ] -> r
      | _ -> Alcotest.fail "expected exactly one result"
    in
    (match Option.bind (J.member "ops_per_usec" result) J.to_num with
    | Some ops -> Alcotest.(check bool) "positive throughput" true (ops > 0.)
    | None -> Alcotest.fail "no ops_per_usec");
    List.iter
      (fun name ->
        match
          Option.bind (J.member "params" result) (fun p -> J.member name p)
        with
        | Some _ -> ()
        | None -> Alcotest.fail ("params lack " ^ name))
      [
        "workers"; "key_range"; "lookup_ratio"; "duration"; "p99_ns";
        "aborted"; "proto"; "v2_conns"; "id_mismatches"; "get_p999_ns";
        "put_p999_ns"; "del_p999_ns"; "get_sent";
      ]);
  Server.stop server;
  Backend.check_invariants (Server.backend server)

let suite =
  [
    ( "kv server",
      [
        Alcotest.test_case "port 0 binds and reports; EADDRINUSE is clean"
          `Quick test_bind;
        Alcotest.test_case "stat describes the server" `Quick test_stat;
        Alcotest.test_case "graceful drain (lockfree)" `Quick
          (test_drain ~kind:Backend.Lockfree);
        Alcotest.test_case "graceful drain (waitfree)" `Quick
          (test_drain ~kind:Backend.Waitfree);
        Alcotest.test_case "drained server refuses new connections" `Quick
          test_drain_refuses_new_connections;
        Alcotest.test_case "SIGPIPE from aborted clients is survived" `Quick
          test_sigpipe_survival;
        Alcotest.test_case "hostname addr binds and drains" `Quick
          test_hostname_addr;
        Alcotest.test_case "stop unblocks an idle connection" `Quick
          test_stop_unblocks_idle_connection;
        Alcotest.test_case "open-loop loadgen and bench-v2 report" `Quick
          test_loadgen;
        Alcotest.test_case "staged spans: sum equals total, captures land"
          `Quick test_staged_attribution;
        Alcotest.test_case "forced stall attributed to help time" `Quick
          test_stall_capture;
        Alcotest.test_case "disabled staged marks allocate nothing" `Quick
          test_staged_marks_disabled_no_alloc;
      ] );
  ]
