(* Differential testing: the same operation sequence is applied to
   every implementation at once; all must agree on every response.
   Any divergence pinpoints the odd one out immediately. *)

module Factory = Nbhash_workload.Factory

let all_tables () =
  List.map
    (fun ((name, maker) : string * Factory.maker) ->
      let table = maker ~policy:(Nbhash.Policy.presized 4) ~max_threads:4 () in
      (name, table, table.Factory.new_handle ()))
    Factory.with_michael

let apply_all tables kind k =
  let results =
    List.map
      (fun (name, _, ops) ->
        let r =
          match kind with
          | `Ins -> ops.Factory.ins k
          | `Rem -> ops.Factory.rem k
          | `Look -> ops.Factory.look k
        in
        (name, r))
      tables
  in
  match results with
  | [] -> assert false
  | (ref_name, ref_r) :: rest ->
    List.iter
      (fun (name, r) ->
        if r <> ref_r then
          Alcotest.failf "divergence on %s %d: %s=%b but %s=%b"
            (match kind with `Ins -> "ins" | `Rem -> "rem" | `Look -> "look")
            k ref_name ref_r name r)
      rest

let test_random_trace () =
  let tables = all_tables () in
  let rng = Nbhash_util.Xoshiro.create 4242 in
  for step = 1 to 4_000 do
    let k = Nbhash_util.Xoshiro.below rng 96 in
    let kind =
      match Nbhash_util.Xoshiro.below rng 3 with
      | 0 -> `Ins
      | 1 -> `Rem
      | _ -> `Look
    in
    apply_all tables kind k;
    (* Interleave resizes for the tables that support them. *)
    if step mod 257 = 0 then
      List.iter
        (fun (_, _, ops) -> ops.Factory.force_resize ~grow:(step mod 2 = 0))
        tables
  done;
  (* Final states agree too. *)
  let reference = ref None in
  List.iter
    (fun (name, table, _) ->
      table.Factory.check_invariants ();
      let sorted = table.Factory.elements () in
      Array.sort compare sorted;
      match !reference with
      | None -> reference := Some (name, sorted)
      | Some (ref_name, ref_elems) ->
        if sorted <> ref_elems then
          Alcotest.failf "final contents of %s differ from %s" name ref_name)
    tables

(* Eager-vs-lazy differential: every array-based variant runs TWICE —
   once with the cooperative sweep on (default) and once with
   [Policy.lazy_migration] so only the lazy [init_bucket] backstop
   migrates — and the pair must agree on every response and on the
   final contents. Resizes are interleaved often enough that most of
   the trace runs against a partially migrated table. *)
let test_eager_vs_lazy () =
  let tables =
    List.concat_map
      (fun ((name, maker) : string * Factory.maker) ->
        let eager =
          maker ~policy:(Nbhash.Policy.presized 4) ~max_threads:4 ()
        in
        let lazy_ =
          maker
            ~policy:(Nbhash.Policy.lazy_migration (Nbhash.Policy.presized 4))
            ~max_threads:4 ()
        in
        [
          (name ^ "/eager", eager, eager.Factory.new_handle ());
          (name ^ "/lazy", lazy_, lazy_.Factory.new_handle ());
        ])
      Factory.all_nine
  in
  let rng = Nbhash_util.Xoshiro.create 1717 in
  for step = 1 to 3_000 do
    let k = Nbhash_util.Xoshiro.below rng 64 in
    let kind =
      match Nbhash_util.Xoshiro.below rng 3 with
      | 0 -> `Ins
      | 1 -> `Rem
      | _ -> `Look
    in
    apply_all tables kind k;
    if step mod 97 = 0 then
      List.iter
        (fun (_, _, ops) -> ops.Factory.force_resize ~grow:(step mod 2 = 0))
        tables
  done;
  let reference = ref None in
  List.iter
    (fun (name, table, _) ->
      table.Factory.check_invariants ();
      let sorted = table.Factory.elements () in
      Array.sort compare sorted;
      match !reference with
      | None -> reference := Some (name, sorted)
      | Some (ref_name, ref_elems) ->
        if sorted <> ref_elems then
          Alcotest.failf "final contents of %s differ from %s" name ref_name)
    tables

let test_edge_keys () =
  let tables = all_tables () in
  let keys = [ 0; 1; 2; (1 lsl 61) - 1; (1 lsl 61) - 2; 1 lsl 32 ] in
  List.iter
    (fun k ->
      apply_all tables `Look k;
      apply_all tables `Ins k;
      apply_all tables `Ins k;
      apply_all tables `Look k;
      apply_all tables `Rem k;
      apply_all tables `Rem k;
      apply_all tables `Look k)
    keys

let suite =
  [
    ( "differential",
      [
        Alcotest.test_case "random trace, all implementations" `Slow
          test_random_trace;
        Alcotest.test_case "edge keys, all implementations" `Quick
          test_edge_keys;
        Alcotest.test_case "eager sweep vs lazy-only, all variants" `Quick
          test_eager_vs_lazy;
      ] );
  ]
