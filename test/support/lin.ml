(* A bounded linearizability checker (Wing & Gong style backtracking),
   generalized over the sequential model.

   Worker domains timestamp each operation with tickets drawn from one
   atomic counter before invocation and after response (see
   {!Record}), giving a real-time partial order. [check] then searches
   for a legal sequential ordering of the whole history: an event may
   linearize next only if no unlinearized event finished before it
   started (real-time respect) and its recorded result matches the
   model. The search memoizes dead (linearized-mask, model-state)
   pairs, so model states must be plain structural data.

   Three models are provided: {!Set} (the original int-set history
   checker, states packed into a 61-key bitmask), {!Map} (Put/Get/Del
   with value results, for [Hashmap]/[Wf_hashmap] histories), and
   {!Fset} (freezable sets: insert/remove that can be refused by a
   freeze, and freeze events carrying their snapshot — the model the
   schedule explorer checks the paper's Figure 5/6 objects
   against). *)

type ('op, 'res) event = { op : 'op; result : 'res; start_t : int; end_t : int }

module type MODEL = sig
  type state
  type op
  type res

  val init : state

  val step : state -> op -> res -> state option
  (** [step s op res] is the state after [op] observed [res] in state
      [s], or [None] if [res] is impossible there. *)

  val validate : op -> unit
  (** Raise [Invalid_argument] (with a clear message) for operations
      the model cannot represent, e.g. keys beyond the bitmask. *)

  val pp_op : Format.formatter -> op -> unit
  val pp_res : Format.formatter -> res -> unit
end

module Make (M : MODEL) = struct
  type nonrec event = (M.op, M.res) event

  (* Events are linearized under an int bitmask, one bit per event:
     more than 62 events would silently wrap, so refuse loudly. *)
  let max_events = 62

  let check evs =
    let evs = Array.of_list evs in
    let n = Array.length evs in
    if n > max_events then
      invalid_arg
        (Printf.sprintf
           "Lin.check: history of %d events exceeds the %d-event bitmask \
            limit — split the history or shrink the run"
           n max_events);
    Array.iter (fun e -> M.validate e.op) evs;
    let full = (1 lsl n) - 1 in
    let dead = Hashtbl.create 1024 in
    let rec go mask state =
      mask = full
      || (not (Hashtbl.mem dead (mask, state)))
         &&
         let progress = ref false in
         (let i = ref 0 in
          while (not !progress) && !i < n do
            let e = evs.(!i) in
            let pending = mask land (1 lsl !i) = 0 in
            if pending then begin
              (* minimal: no other pending event returned before e
                 began *)
              let minimal = ref true in
              for j = 0 to n - 1 do
                if
                  mask land (1 lsl j) = 0
                  && j <> !i
                  && evs.(j).end_t < e.start_t
                then minimal := false
              done;
              if !minimal then
                match M.step state e.op e.result with
                | Some state' ->
                  if go (mask lor (1 lsl !i)) state' then progress := true
                | None -> ()
            end;
            incr i
          done);
         if not !progress then Hashtbl.replace dead (mask, state) ();
         !progress
    in
    go 0 M.init

  let pp_event ppf e =
    Format.fprintf ppf "[%d,%d] %a -> %a" e.start_t e.end_t M.pp_op e.op
      M.pp_res e.result

  let pp_history ppf evs =
    List.iter (fun e -> Format.fprintf ppf "%a@." pp_event e) evs
end

(* Keys of bitmask-state models live in an OCaml int: bit 61+ would
   collide with the sign/Hashtbl behavior, so 61 distinct keys is the
   ceiling. *)
let max_key = 61

let validate_key ctx k =
  if k < 0 || k >= max_key then
    invalid_arg
      (Printf.sprintf
         "%s: key %d outside [0, %d) — bitmask-state histories support at \
          most %d distinct keys; renumber the key space"
         ctx k max_key max_key)

(* --- the original integer-set model --- *)

module Set_model = struct
  type state = int
  type op = Ins of int | Rem of int | Mem of int
  type res = bool

  let init = 0
  let key_of = function Ins k | Rem k | Mem k -> k
  let validate op = validate_key "Lin.Set" (key_of op)

  let step state op result =
    let bit = 1 lsl key_of op in
    let present = state land bit <> 0 in
    match op with
    | Ins _ -> if result = not present then Some (state lor bit) else None
    | Rem _ -> if result = present then Some (state land lnot bit) else None
    | Mem _ -> if result = present then Some state else None

  let pp_op ppf op =
    let name, k =
      match op with
      | Ins k -> ("ins", k)
      | Rem k -> ("rem", k)
      | Mem k -> ("mem", k)
    in
    Format.fprintf ppf "%s %d" name k

  let pp_res = Format.pp_print_bool
end

module Set = struct
  include Set_model
  include Make (Set_model)
end

(* --- the map model: Put/Get/Del with value results --- *)

module Map_model = struct
  (* Bindings as a key-sorted association list: structural equality
     (hence the memo table) sees equal states as equal. *)
  type state = (int * int) list
  type op = Put of int * int | Get of int | Del of int
  type res = int option

  let init = []
  let validate _ = ()
  let find k s = List.assoc_opt k s

  let put k v s =
    let rec go = function
      | [] -> [ (k, v) ]
      | ((k', _) as hd) :: tl ->
        if k' < k then hd :: go tl
        else if k' = k then (k, v) :: tl
        else (k, v) :: hd :: tl
    in
    go s

  let del k s = List.filter (fun (k', _) -> k' <> k) s

  let step state op result =
    match op with
    | Put (k, v) ->
      if result = find k state then Some (put k v state) else None
    | Get k -> if result = find k state then Some state else None
    | Del k -> if result = find k state then Some (del k state) else None

  let pp_op ppf = function
    | Put (k, v) -> Format.fprintf ppf "put %d=%d" k v
    | Get k -> Format.fprintf ppf "get %d" k
    | Del k -> Format.fprintf ppf "del %d" k

  let pp_res ppf = function
    | None -> Format.pp_print_string ppf "none"
    | Some v -> Format.fprintf ppf "some %d" v
end

module Map = struct
  include Map_model
  include Make (Map_model)
end

(* --- the freezable-set model (paper Figure 1) --- *)

module Fset_model = struct
  type state = { mask : int; frozen : bool }

  type op = Ins of int | Rem of int | Mem of int | Freeze

  type res =
    | Applied of bool  (* invoke returned true; payload is the response *)
    | Refused  (* invoke returned false: the set was frozen *)
    | Found of bool  (* has_member *)
    | Snapshot of int list  (* freeze's final contents, sorted *)

  let init = { mask = 0; frozen = false }

  let validate = function
    | Ins k | Rem k | Mem k -> validate_key "Lin.Fset" k
    | Freeze -> ()

  let mask_of_list l = List.fold_left (fun m k -> m lor (1 lsl k)) 0 l

  let step state op result =
    match (op, result) with
    | (Ins _ | Rem _), Refused -> if state.frozen then Some state else None
    | Ins k, Applied resp ->
      if state.frozen then None
      else
        let bit = 1 lsl k in
        let present = state.mask land bit <> 0 in
        if resp = not present then Some { state with mask = state.mask lor bit }
        else None
    | Rem k, Applied resp ->
      if state.frozen then None
      else
        let bit = 1 lsl k in
        let present = state.mask land bit <> 0 in
        if resp = present then
          Some { state with mask = state.mask land lnot bit }
        else None
    | Mem k, Found b ->
      if b = (state.mask land (1 lsl k) <> 0) then Some state else None
    | Freeze, Snapshot l ->
      (* Freeze is idempotent: every freeze observes the final
         contents, the first one transitions the state. *)
      List.iter (validate_key "Lin.Fset") l;
      if mask_of_list l = state.mask then Some { state with frozen = true }
      else None
    | (Ins _ | Rem _ | Mem _ | Freeze), _ -> None

  let pp_op ppf = function
    | Ins k -> Format.fprintf ppf "ins %d" k
    | Rem k -> Format.fprintf ppf "rem %d" k
    | Mem k -> Format.fprintf ppf "mem %d" k
    | Freeze -> Format.pp_print_string ppf "freeze"

  let pp_res ppf = function
    | Applied b -> Format.fprintf ppf "applied %b" b
    | Refused -> Format.pp_print_string ppf "refused"
    | Found b -> Format.fprintf ppf "found %b" b
    | Snapshot l ->
      Format.fprintf ppf "snapshot {%s}"
        (String.concat "," (List.map string_of_int l))
end

module Fset = struct
  include Fset_model
  include Make (Fset_model)
end
