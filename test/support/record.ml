(* The shared history recorder: one atomic ticket counter timestamps
   every operation before invocation and after response, and a
   lock-free list accumulates the events. This used to be copy-pasted
   per test file; both the linearizability suite and the concurrent
   hash-set stress now share this module (and the model checker's
   scenarios reuse it single-domain, where the tickets simply number
   the serialized steps). *)

type ('op, 'res) t = {
  ticket : int Atomic.t;
  events : ('op, 'res) Lin.event list Atomic.t;
}

let make () = { ticket = Atomic.make 0; events = Atomic.make [] }

(* Run [f] and record its timed outcome; returns [f]'s result so call
   sites can keep their control flow. Thread-safe. *)
let record r op f =
  let start_t = Atomic.fetch_and_add r.ticket 1 in
  let result = f () in
  let end_t = Atomic.fetch_and_add r.ticket 1 in
  let e = { Lin.op; result; start_t; end_t } in
  let rec push () =
    let old = Atomic.get r.events in
    if not (Atomic.compare_and_set r.events old (e :: old)) then push ()
  in
  push ();
  result

let events r = Atomic.get r.events
