open Nbhash_util

let draw_histogram t ~draws ~seed =
  let h = Array.make (Alias.size t) 0 in
  let rng = Xoshiro.create seed in
  for _ = 1 to draws do
    let i = Alias.draw t rng in
    h.(i) <- h.(i) + 1
  done;
  h

let test_validation () =
  (match Alias.make [||] with
  | _ -> Alcotest.fail "empty accepted"
  | exception Invalid_argument _ -> ());
  (match Alias.make [| 0.; 0. |] with
  | _ -> Alcotest.fail "zero-sum accepted"
  | exception Invalid_argument _ -> ());
  match Alias.make [| 1.; -1. |] with
  | _ -> Alcotest.fail "negative weight accepted"
  | exception Invalid_argument _ -> ()

let test_point_mass () =
  let t = Alias.make [| 0.; 1.; 0. |] in
  let h = draw_histogram t ~draws:1_000 ~seed:1 in
  Alcotest.(check int) "all mass on index 1" 1_000 h.(1)

let test_uniformish () =
  let t = Alias.make [| 1.; 1.; 1.; 1. |] in
  let h = draw_histogram t ~draws:40_000 ~seed:2 in
  Array.iter
    (fun c ->
      if c < 9_000 || c > 11_000 then
        Alcotest.failf "uniform cell count %d outside [9000,11000]" c)
    h

let test_proportions () =
  let t = Alias.make [| 3.; 1. |] in
  let h = draw_histogram t ~draws:40_000 ~seed:3 in
  let ratio = Float.of_int h.(0) /. Float.of_int h.(1) in
  Alcotest.(check bool) "3:1 within 15%" true (ratio > 2.55 && ratio < 3.45)

let test_zipf_monotone () =
  let t = Alias.zipf ~n:16 ~s:1.0 in
  let h = draw_histogram t ~draws:100_000 ~seed:4 in
  (* Counts decrease in rank statistically; adjacent high ranks are
     within noise of each other, so compare with generous slack and
     also check the aggregate head/tail split (enormous margin). *)
  for i = 0 to 13 do
    if Float.of_int h.(i) *. 1.2 +. 100. < Float.of_int h.(i + 2) then
      Alcotest.failf "zipf counts not decreasing: h(%d)=%d < h(%d)=%d" i h.(i)
        (i + 2)
        h.(i + 2)
  done;
  let sum lo hi = Array.fold_left ( + ) 0 (Array.sub h lo (hi - lo)) in
  Alcotest.(check bool) "head half dominates tail half" true
    (sum 0 8 > 2 * sum 8 16);
  (* Zipf(1) over 16: rank 0 has weight 1/H16 ~ 0.295 *)
  let frac = Float.of_int h.(0) /. 100_000. in
  Alcotest.(check bool) "head mass plausible" true (frac > 0.25 && frac < 0.35)

let test_zipf_zero_is_uniform () =
  let t = Alias.zipf ~n:8 ~s:0. in
  let h = draw_histogram t ~draws:40_000 ~seed:5 in
  Array.iter
    (fun c ->
      if c < 4_200 || c > 5_800 then
        Alcotest.failf "s=0 cell count %d outside uniform band" c)
    h

let prop_draw_in_range =
  QCheck2.Test.make ~name:"alias draw lands in range" ~count:200
    QCheck2.Gen.(
      pair (int_range 1 20)
        (array_size (int_range 1 20) (float_range 0.01 10.)))
    (fun (seed, weights) ->
      let t = Alias.make weights in
      let rng = Xoshiro.create seed in
      let ok = ref true in
      for _ = 1 to 100 do
        let i = Alias.draw t rng in
        if i < 0 || i >= Array.length weights then ok := false
      done;
      !ok)

(* Weight-zero cells must never be drawn. *)
let prop_zero_weight_never_drawn =
  QCheck2.Test.make ~name:"zero-weight index never drawn" ~count:100
    QCheck2.Gen.(int_range 1 1000)
    (fun seed ->
      let t = Alias.make [| 1.; 0.; 2.; 0. |] in
      let rng = Xoshiro.create seed in
      let ok = ref true in
      for _ = 1 to 200 do
        let i = Alias.draw t rng in
        if i = 1 || i = 3 then ok := false
      done;
      !ok)

let suite =
  [
    ( "alias",
      [
        Alcotest.test_case "validation" `Quick test_validation;
        Alcotest.test_case "point mass" `Quick test_point_mass;
        Alcotest.test_case "uniform-ish" `Quick test_uniformish;
        Alcotest.test_case "3:1 proportions" `Quick test_proportions;
        Alcotest.test_case "zipf monotone" `Quick test_zipf_monotone;
        Alcotest.test_case "zipf s=0 uniform" `Quick test_zipf_zero_is_uniform;
        QCheck_alcotest.to_alcotest prop_draw_in_range;
        QCheck_alcotest.to_alcotest prop_zero_weight_never_drawn;
      ] );
  ]
