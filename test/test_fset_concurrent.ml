(* Multi-domain stress tests of the FSet implementations.

   The ledger argument: starting from an empty set, successful inserts
   and successful removes of one key strictly alternate in any
   linearization, so (successful inserts - successful removes) per key
   must be 0 or 1 and equal to the key's final membership. Any lost or
   duplicated update breaks the equation. *)

open Nbhash_fset

let domains = 4
let keys = 8
let ops_per_domain = 2_000

module Lf_ledger (F : Fset_intf.S) = struct
  let run () =
    let t = F.create [||] in
    let ins_succ = Array.init domains (fun _ -> Array.make keys 0) in
    let rem_succ = Array.init domains (fun _ -> Array.make keys 0) in
    let worker d () =
      let rng = Nbhash_util.Xoshiro.create (100 + d) in
      for _ = 1 to ops_per_domain do
        let k = Nbhash_util.Xoshiro.below rng keys in
        let kind =
          if Nbhash_util.Xoshiro.bool rng then Fset_intf.Ins else Fset_intf.Rem
        in
        let op = F.make_op kind k in
        if F.invoke t op && F.get_response op then
          match kind with
          | Fset_intf.Ins -> ins_succ.(d).(k) <- ins_succ.(d).(k) + 1
          | Fset_intf.Rem -> rem_succ.(d).(k) <- rem_succ.(d).(k) + 1
      done
    in
    let ds = List.init domains (fun d -> Domain.spawn (worker d)) in
    List.iter Domain.join ds;
    let final = F.freeze t in
    for k = 0 to keys - 1 do
      let net = ref 0 in
      for d = 0 to domains - 1 do
        net := !net + ins_succ.(d).(k) - rem_succ.(d).(k)
      done;
      Alcotest.(check bool) "net is 0 or 1" true (!net = 0 || !net = 1);
      Alcotest.(check bool)
        (Printf.sprintf "key %d membership matches ledger" k)
        (!net = 1) (Intset.mem final k)
    done
end

(* Freeze racing live updates: updates that report success must be in
   the frozen snapshot's ledger; updates rejected by the freeze must
   not. *)
module Lf_freeze_race (F : Fset_intf.S) = struct
  let run () =
    let t = F.create [||] in
    let ins_succ = Array.init domains (fun _ -> Array.make keys 0) in
    let rem_succ = Array.init domains (fun _ -> Array.make keys 0) in
    let worker d () =
      let rng = Nbhash_util.Xoshiro.create (200 + d) in
      let frozen = ref false in
      while not !frozen do
        let k = Nbhash_util.Xoshiro.below rng keys in
        let kind =
          if Nbhash_util.Xoshiro.bool rng then Fset_intf.Ins else Fset_intf.Rem
        in
        let op = F.make_op kind k in
        if not (F.invoke t op) then frozen := true
        else if F.get_response op then
          match kind with
          | Fset_intf.Ins -> ins_succ.(d).(k) <- ins_succ.(d).(k) + 1
          | Fset_intf.Rem -> rem_succ.(d).(k) <- rem_succ.(d).(k) + 1
      done
    in
    let ds = List.init domains (fun d -> Domain.spawn (worker d)) in
    (* Give the workers a head start, then freeze under fire. *)
    for _ = 1 to 10_000 do
      Domain.cpu_relax ()
    done;
    let final = F.freeze t in
    List.iter Domain.join ds;
    Alcotest.(check bool) "frozen" true (F.is_frozen t);
    for k = 0 to keys - 1 do
      let net = ref 0 in
      for d = 0 to domains - 1 do
        net := !net + ins_succ.(d).(k) - rem_succ.(d).(k)
      done;
      Alcotest.(check bool)
        (Printf.sprintf "key %d membership matches ledger at freeze" k)
        (!net = 1) (Intset.mem final k)
    done
end

(* All domains help the same announced operation; it must execute
   exactly once. *)
module Wf_shared_op (F : Fset_intf.WF) = struct
  let run () =
    for round = 1 to 20 do
      let t = F.create [||] in
      let op = F.make_op Fset_intf.Ins 5 ~prio:round in
      let ds =
        List.init domains (fun _ -> Domain.spawn (fun () -> F.invoke t op))
      in
      let reported = List.map Domain.join ds in
      Alcotest.(check bool) "every shared invoke reports done" true
        (List.for_all Fun.id reported);
      Alcotest.(check bool) "op done" true (F.op_is_done op);
      Alcotest.(check bool) "insert succeeded" true (F.get_response op);
      Alcotest.(check bool) "applied exactly once" true
        (Intset.equal_as_sets [| 5 |] (F.elements t));
      let op2 = F.make_op Fset_intf.Rem 5 ~prio:(1000 + round) in
      let ds =
        List.init domains (fun _ ->
            Domain.spawn (fun () -> ignore (F.invoke t op2)))
      in
      List.iter Domain.join ds;
      Alcotest.(check bool) "remove succeeded" true (F.get_response op2);
      Alcotest.(check int) "empty again" 0 (Array.length (F.elements t))
    done
end

module Wf_ledger (F : Fset_intf.WF) = struct
  let prio = Atomic.make 1

  let run () =
    let t = F.create [||] in
    let ins_succ = Array.init domains (fun _ -> Array.make keys 0) in
    let rem_succ = Array.init domains (fun _ -> Array.make keys 0) in
    let worker d () =
      let rng = Nbhash_util.Xoshiro.create (300 + d) in
      for _ = 1 to ops_per_domain do
        let k = Nbhash_util.Xoshiro.below rng keys in
        let kind =
          if Nbhash_util.Xoshiro.bool rng then Fset_intf.Ins else Fset_intf.Rem
        in
        let op = F.make_op kind k ~prio:(Atomic.fetch_and_add prio 1) in
        if F.invoke t op && F.get_response op then
          match kind with
          | Fset_intf.Ins -> ins_succ.(d).(k) <- ins_succ.(d).(k) + 1
          | Fset_intf.Rem -> rem_succ.(d).(k) <- rem_succ.(d).(k) + 1
      done
    in
    let ds = List.init domains (fun d -> Domain.spawn (worker d)) in
    List.iter Domain.join ds;
    let final = F.freeze t in
    for k = 0 to keys - 1 do
      let net = ref 0 in
      for d = 0 to domains - 1 do
        net := !net + ins_succ.(d).(k) - rem_succ.(d).(k)
      done;
      Alcotest.(check bool)
        (Printf.sprintf "key %d membership matches ledger" k)
        (!net = 1) (Intset.mem final k)
    done
end

module LfArrayLedger = Lf_ledger (Lf_array_fset)
module LfListLedger = Lf_ledger (Lf_list_fset)
module UlistLedger = Lf_ledger (Ulist_fset)
module FlatLedger = Lf_ledger (Flat_fset)
module LfArrayFreeze = Lf_freeze_race (Lf_array_fset)
module LfListFreeze = Lf_freeze_race (Lf_list_fset)
module UlistFreeze = Lf_freeze_race (Ulist_fset)
module FlatFreeze = Lf_freeze_race (Flat_fset)
module WfArrayShared = Wf_shared_op (Wf_array_fset)
module WfListShared = Wf_shared_op (Wf_list_fset)
module WfArrayLedger = Wf_ledger (Wf_array_fset)
module WfListLedger = Wf_ledger (Wf_list_fset)

let suite =
  [
    ( "fset-concurrent",
      [
        Alcotest.test_case "lf-array ledger" `Slow LfArrayLedger.run;
        Alcotest.test_case "lf-list ledger" `Slow LfListLedger.run;
        Alcotest.test_case "ulist ledger" `Slow UlistLedger.run;
        Alcotest.test_case "flat ledger" `Slow FlatLedger.run;
        Alcotest.test_case "lf-array freeze race" `Slow LfArrayFreeze.run;
        Alcotest.test_case "lf-list freeze race" `Slow LfListFreeze.run;
        Alcotest.test_case "ulist freeze race" `Slow UlistFreeze.run;
        Alcotest.test_case "flat freeze race" `Slow FlatFreeze.run;
        Alcotest.test_case "wf-array shared op helped once" `Slow
          WfArrayShared.run;
        Alcotest.test_case "wf-list shared op helped once" `Slow
          WfListShared.run;
        Alcotest.test_case "wf-array ledger" `Slow WfArrayLedger.run;
        Alcotest.test_case "wf-list ledger" `Slow WfListLedger.run;
      ] );
  ]
