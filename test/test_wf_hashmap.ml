open Nbhash

let fresh ?policy ?max_threads () =
  let t = Wf_hashmap.create ?policy ?max_threads () in
  (t, Wf_hashmap.register t)

let test_put_get () =
  let _, h = fresh () in
  Alcotest.(check (option string)) "fresh" None (Wf_hashmap.put h 1 "one");
  Alcotest.(check (option string)) "get" (Some "one") (Wf_hashmap.get h 1);
  Alcotest.(check (option string)) "replace" (Some "one")
    (Wf_hashmap.put h 1 "uno");
  Alcotest.(check (option string)) "updated" (Some "uno") (Wf_hashmap.get h 1);
  Alcotest.(check (option string)) "absent" None (Wf_hashmap.get h 2)

let test_remove () =
  let t, h = fresh () in
  ignore (Wf_hashmap.put h 3 "x");
  Alcotest.(check (option string)) "removed" (Some "x") (Wf_hashmap.remove h 3);
  Alcotest.(check (option string)) "remove absent" None (Wf_hashmap.remove h 3);
  Alcotest.(check bool) "mem" false (Wf_hashmap.mem h 3);
  Alcotest.(check int) "empty" 0 (Wf_hashmap.cardinal t)

let test_update () =
  let _, h = fresh () in
  let bump = function None -> 1 | Some v -> v + 1 in
  Wf_hashmap.update h 9 bump;
  Wf_hashmap.update h 9 bump;
  Wf_hashmap.update h 9 bump;
  Alcotest.(check (option int)) "counter" (Some 3) (Wf_hashmap.get h 9)

let test_resize_roundtrip () =
  let t, h = fresh ~policy:(Policy.presized 1) () in
  for k = 0 to 199 do
    ignore (Wf_hashmap.put h k (k * 3))
  done;
  Wf_hashmap.force_resize h ~grow:true;
  Wf_hashmap.force_resize h ~grow:true;
  Alcotest.(check int) "grown" 4 (Wf_hashmap.bucket_count t);
  for k = 0 to 199 do
    Alcotest.(check (option int)) "binding survives grow" (Some (k * 3))
      (Wf_hashmap.get h k)
  done;
  Wf_hashmap.force_resize h ~grow:false;
  Wf_hashmap.force_resize h ~grow:false;
  Alcotest.(check int) "shrunk" 1 (Wf_hashmap.bucket_count t);
  for k = 0 to 199 do
    Alcotest.(check (option int)) "binding survives shrink" (Some (k * 3))
      (Wf_hashmap.get h k)
  done;
  Wf_hashmap.check_invariants t;
  let stats = Wf_hashmap.resize_stats t in
  Alcotest.(check int) "grow count" 2 stats.Hashset_intf.grows;
  Alcotest.(check int) "shrink count" 2 stats.Hashset_intf.shrinks

let test_policy_growth () =
  let t, h = fresh ~policy:Policy.default () in
  for k = 0 to 1999 do
    ignore (Wf_hashmap.put h k k)
  done;
  Alcotest.(check bool) "grew" true (Wf_hashmap.bucket_count t > 1);
  Alcotest.(check int) "cardinal" 2000 (Wf_hashmap.cardinal t);
  Wf_hashmap.check_invariants t

let prop_model =
  QCheck2.Test.make ~name:"Wf_hashmap matches a Hashtbl model" ~count:200
    QCheck2.Gen.(small_list (pair (int_bound 3) (int_bound 31)))
    (fun ops ->
      let t, h = fresh ~policy:(Policy.presized 2) () in
      let model = Hashtbl.create 16 in
      let value k step = (k * 1000) + step in
      let ok =
        List.for_all Fun.id
          (List.mapi
             (fun i (c, k) ->
               match c with
               | 0 ->
                 let expected = Hashtbl.find_opt model k in
                 Hashtbl.replace model k (value k i);
                 Wf_hashmap.put h k (value k i) = expected
               | 1 ->
                 let expected = Hashtbl.find_opt model k in
                 Hashtbl.remove model k;
                 Wf_hashmap.remove h k = expected
               | 2 -> Wf_hashmap.get h k = Hashtbl.find_opt model k
               | _ ->
                 Wf_hashmap.force_resize h ~grow:(i mod 2 = 0);
                 true)
             ops)
      in
      Wf_hashmap.check_invariants t;
      List.sort compare (Wf_hashmap.bindings t)
      = (Hashtbl.fold (fun k v acc -> (k, v) :: acc) model []
        |> List.sort compare)
      && ok)

let test_concurrent_counters () =
  (* All domains bump the SAME key: updates are announced and helped,
     and none may be lost or doubled. *)
  let domains = 4 and bumps = 1_500 in
  let t = Wf_hashmap.create ~policy:Policy.aggressive ~max_threads:8 () in
  let bump = function None -> 1 | Some v -> v + 1 in
  let worker () =
    let h = Wf_hashmap.register t in
    for _ = 1 to bumps do
      Wf_hashmap.update h 5 bump
    done
  in
  let ds = List.init domains (fun _ -> Domain.spawn worker) in
  List.iter Domain.join ds;
  Wf_hashmap.check_invariants t;
  let h = Wf_hashmap.register t in
  Alcotest.(check (option int)) "exact count" (Some (domains * bumps))
    (Wf_hashmap.get h 5)

let test_concurrent_disjoint_with_storm () =
  let domains = 3 and n = 1_000 in
  let t = Wf_hashmap.create ~policy:(Policy.presized 4) ~max_threads:8 () in
  let worker d () =
    let h = Wf_hashmap.register t in
    for i = 0 to n - 1 do
      let k = (i * domains) + d in
      ignore (Wf_hashmap.put h k (k * 2))
    done
  in
  let stormer () =
    let h = Wf_hashmap.register t in
    for i = 1 to 100 do
      Wf_hashmap.force_resize h ~grow:(i mod 2 = 0)
    done
  in
  let ds = Domain.spawn stormer :: List.init domains (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join ds;
  Wf_hashmap.check_invariants t;
  Alcotest.(check int) "all bindings present" (domains * n)
    (Wf_hashmap.cardinal t);
  let h = Wf_hashmap.register t in
  for k = 0 to (domains * n) - 1 do
    if Wf_hashmap.get h k <> Some (k * 2) then
      Alcotest.failf "binding %d lost or corrupted" k
  done

let suite =
  [
    ( "wf-hashmap",
      [
        Alcotest.test_case "put/get" `Quick test_put_get;
        Alcotest.test_case "remove" `Quick test_remove;
        Alcotest.test_case "update" `Quick test_update;
        Alcotest.test_case "resize roundtrip" `Quick test_resize_roundtrip;
        Alcotest.test_case "policy growth" `Quick test_policy_growth;
        QCheck_alcotest.to_alcotest prop_model;
        Alcotest.test_case "concurrent shared counter" `Slow
          test_concurrent_counters;
        Alcotest.test_case "disjoint puts under storm" `Slow
          test_concurrent_disjoint_with_storm;
      ] );
  ]
