(* The KV wire protocol: codec round-trips (randomized over the full
   key range and value shapes including empty), framed IO over a
   socketpair, and the malformed-frame behaviour of a live server —
   framing errors get an ERR and a close, payload errors get an ERR
   and a connection that keeps working, and the table behind the
   server stays healthy through all of it. *)

module P = Nbhash_server.Protocol
module Server = Nbhash_server.Server
module Backend = Nbhash_server.Backend

let request_eq (a : P.request) (b : P.request) = a = b

let request_pp fmt (r : P.request) =
  Format.pp_print_string fmt
    (match r with
    | Get k -> Printf.sprintf "Get %d" k
    | Put (k, v) -> Printf.sprintf "Put (%d, %d bytes)" k (String.length v)
    | Del k -> Printf.sprintf "Del %d" k
    | Ping -> "Ping"
    | Drain -> "Drain"
    | Stat -> "Stat"
    | Hello -> "Hello"
    | Force_resize s -> Printf.sprintf "Force_resize %d" s)

let request_t = Alcotest.testable request_pp request_eq

let response_pp fmt (r : P.response) =
  Format.pp_print_string fmt
    (match r with
    | Value v -> Printf.sprintf "Value (%d bytes)" (String.length v)
    | Ok -> "Ok"
    | Not_found -> "Not_found"
    | Err m -> "Err " ^ m)

let response_t = Alcotest.testable response_pp ( = )

(* --- randomized codec round-trips --- *)

let gen_key = QCheck2.Gen.(map (fun k -> k land (P.max_key - 1)) nat)

let gen_value =
  (* Biased towards the edges: empty, one byte, and arbitrary binary
     strings (any byte value, embedded NULs included). *)
  QCheck2.Gen.(
    oneof
      [
        return "";
        map (String.make 1) (map Char.chr (int_bound 255));
        string_size ~gen:(map Char.chr (int_bound 255)) (int_bound 512);
      ])

let gen_request =
  QCheck2.Gen.(
    oneof
      [
        map (fun k -> P.Get k) gen_key;
        map2 (fun k v -> P.Put (k, v)) gen_key gen_value;
        map (fun k -> P.Del k) gen_key;
        return P.Ping;
        return P.Drain;
        return P.Stat;
        return P.Hello;
        map (fun s -> P.Force_resize s) gen_key;
      ])

let gen_response =
  QCheck2.Gen.(
    oneof
      [
        map (fun v -> P.Value v) gen_value;
        return P.Ok;
        return P.Not_found;
        map (fun m -> P.Err m) (string_size (int_bound 64));
      ])

let prop_request_roundtrip =
  QCheck2.Test.make ~name:"request codec round-trips" ~count:500 gen_request
    (fun r -> P.request_of_payload (P.request_to_payload r) = Result.Ok r)

let prop_response_roundtrip =
  QCheck2.Test.make ~name:"response codec round-trips" ~count:500 gen_response
    (fun r -> P.response_of_payload (P.response_to_payload r) = Result.Ok r)

(* v2 framing: the spliced id survives the wire in both directions and
   the v1 request underneath decodes unchanged. *)
let prop_v2_roundtrip =
  QCheck2.Test.make ~name:"v2 id splice round-trips" ~count:200
    QCheck2.Gen.(
      triple gen_request gen_response
        (map (fun i -> i land 0xFFFFFFFF) nat))
    (fun (req, resp, id) ->
      let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () ->
          (try Unix.close a with Unix.Unix_error _ -> ());
          try Unix.close b with Unix.Unix_error _ -> ())
        (fun () ->
          P.write_request_v2 a ~id req;
          let req_ok =
            match P.read_frame b with
            | Result.Ok (Some payload) ->
              P.v2_frame_id payload = id
              && P.request_of_payload_v2 payload = Result.Ok req
            | _ -> false
          in
          P.write_response_v2 b ~id resp;
          let resp_ok =
            match P.read_response_v2 a with
            | Result.Ok (rid, r) -> rid = id && r = resp
            | Result.Error _ -> false
          in
          req_ok && resp_ok))

(* --- codec edges --- *)

let test_codec_edges () =
  let rt r =
    Alcotest.(check (result request_t string))
      "round-trip" (Result.Ok r)
      (P.request_of_payload (P.request_to_payload r))
  in
  rt (P.Get 0);
  rt (P.Get (P.max_key - 1));
  rt (P.Put (0, ""));
  rt (P.Put (P.max_key - 1, String.make 4096 '\x00'));
  (* Keys at or above max_key are reserved: the codec rejects them on
     decode even though the encoder can be coerced into emitting one. *)
  (match P.request_of_payload (P.request_to_payload (P.Get P.max_key)) with
  | Result.Error _ -> ()
  | Result.Ok _ -> Alcotest.fail "key = max_key decoded");
  (match P.request_of_payload "" with
  | Result.Error _ -> ()
  | Result.Ok _ -> Alcotest.fail "empty payload decoded");
  (* Wrong body sizes for fixed-size opcodes. *)
  List.iter
    (fun payload ->
      match P.request_of_payload payload with
      | Result.Error _ -> ()
      | Result.Ok _ ->
        Alcotest.fail (Printf.sprintf "bad payload %S decoded" payload))
    [ "\x01abc"; "\x03"; "\x04x"; "\x05xy"; "\x06z"; "\x02\x00\x00" ];
  match P.request_of_payload "\x7fxxxxxxxx" with
  | Result.Error msg ->
    Alcotest.(check bool) "bad opcode named" true
      (String.length msg >= 10 && String.sub msg 0 10 = "bad opcode")
  | Result.Ok _ -> Alcotest.fail "bad opcode decoded"

(* --- framed IO over a socketpair --- *)

let test_framed_io () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () ->
      P.write_request a (P.Put (7, "hello"));
      P.write_request a P.Ping;
      (match P.read_frame b with
      | Result.Ok (Some payload) ->
        Alcotest.(check (result request_t string))
          "first frame" (Result.Ok (P.Put (7, "hello")))
          (P.request_of_payload payload)
      | _ -> Alcotest.fail "first frame unreadable");
      (match P.read_frame b with
      | Result.Ok (Some payload) ->
        Alcotest.(check (result request_t string))
          "second frame" (Result.Ok P.Ping)
          (P.request_of_payload payload)
      | _ -> Alcotest.fail "second frame unreadable");
      (* Clean EOF at a frame boundary. *)
      Unix.shutdown a Unix.SHUTDOWN_SEND;
      match P.read_frame b with
      | Result.Ok None -> ()
      | _ -> Alcotest.fail "EOF at boundary not clean");
  (* Truncation inside the prefix and inside the body. *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  ignore (Unix.write_substring a "\x00\x00" 0 2);
  Unix.shutdown a Unix.SHUTDOWN_SEND;
  (match P.read_frame b with
  | Result.Error msg ->
    Alcotest.(check bool) "truncated prefix reported" true
      (String.length msg >= 9 && String.sub msg 0 9 = "truncated")
  | _ -> Alcotest.fail "truncated prefix not an error");
  Unix.close a;
  Unix.close b;
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  ignore (Unix.write_substring a "\x00\x00\x00\x0aXY" 0 6);
  Unix.shutdown a Unix.SHUTDOWN_SEND;
  (match P.read_frame b with
  | Result.Error msg ->
    Alcotest.(check bool) "truncated body reported" true
      (String.length msg >= 9 && String.sub msg 0 9 = "truncated")
  | _ -> Alcotest.fail "truncated body not an error");
  Unix.close a;
  Unix.close b;
  (* Oversized declared length is rejected without allocating it. *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  ignore (Unix.write_substring a "\x7f\xff\xff\xff" 0 4);
  (match P.read_frame ~max_frame:1024 b with
  | Result.Error msg ->
    Alcotest.(check bool) "oversized reported" true
      (String.length msg >= 9 && String.sub msg 0 9 = "oversized")
  | _ -> Alcotest.fail "oversized length not an error");
  Unix.close a;
  Unix.close b

(* --- malformed frames against a live server --- *)

let with_server ~kind f =
  let server =
    Server.start
      ~config:
        {
          Server.default_config with
          backend = kind;
          shards = 2;
          workers = 2;
        }
      ()
  in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () -> f server)

let client port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd
    (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port));
  fd

let expect_err name fd =
  match P.read_response fd with
  | Result.Ok (P.Err _) -> ()
  | other ->
    Alcotest.fail
      (Printf.sprintf "%s: expected ERR, got %s" name
         (match other with
         | Result.Ok r -> Format.asprintf "%a" response_pp r
         | Result.Error m -> "io error: " ^ m))

let expect name fd want =
  Alcotest.(check (result response_t string)) name want (P.read_response fd)

let test_malformed_against_server () =
  with_server ~kind:Backend.Lockfree (fun server ->
      let port = Server.port server in
      (* A truncated length prefix: ERR, then the connection is gone. *)
      let fd = client port in
      ignore (Unix.write_substring fd "\x00\x00" 0 2);
      Unix.shutdown fd Unix.SHUTDOWN_SEND;
      expect_err "truncated prefix" fd;
      (match P.read_frame fd with
      | Result.Ok None -> ()
      | _ -> Alcotest.fail "connection survived a framing error");
      Unix.close fd;
      (* An oversized declared length: ERR, connection closed. *)
      let fd = client port in
      ignore (Unix.write_substring fd "\x7f\xff\xff\xff" 0 4);
      expect_err "oversized length" fd;
      (match P.read_frame fd with
      | Result.Ok None -> ()
      | _ -> Alcotest.fail "connection survived an oversized length");
      Unix.close fd;
      (* A zero declared length is a framing error too. *)
      let fd = client port in
      ignore (Unix.write_substring fd "\x00\x00\x00\x00" 0 4);
      expect_err "zero length" fd;
      Unix.close fd;
      (* Payload-level garbage: ERR, but the connection keeps working. *)
      let fd = client port in
      P.write_frame fd "\x7fjunk";
      expect_err "bad opcode" fd;
      P.write_request fd P.Ping;
      expect "ping after bad opcode" fd (Result.Ok P.Ok);
      P.write_frame fd "\x01short";
      expect_err "short GET body" fd;
      P.write_request fd (P.Get 1);
      expect "get after short body" fd (Result.Ok P.Not_found);
      (* A key out of range is a payload error: rejected, connection
         usable, nothing stored under a reserved key. *)
      P.write_frame fd (P.request_to_payload (P.Put (P.max_key, "x")));
      expect_err "reserved key" fd;
      Unix.close fd;
      (* After all that abuse the table still works and holds
         invariants. *)
      let fd = client port in
      P.write_request fd (P.Put (42, "v"));
      expect "put after abuse" fd (Result.Ok P.Ok);
      P.write_request fd (P.Get 42);
      expect "get after abuse" fd (Result.Ok (P.Value "v"));
      Unix.close fd;
      Backend.check_invariants (Server.backend server))

(* --- revision 2 negotiation and id echo against a live server --- *)

let test_v2_against_server () =
  with_server ~kind:Backend.Lockfree (fun server ->
      let port = Server.port server in
      let fd = client port in
      (* A PING with the wrong 1-byte body is still the v1 payload
         error, not a negotiation. *)
      P.write_frame fd "\x04\x03";
      expect_err "ping with non-hello body" fd;
      (* HELLO switches this connection to revision 2. *)
      P.write_request fd P.Hello;
      expect "hello ack" fd (Result.Ok (P.Value P.hello_ack));
      (* v2 frames echo their id, on success... *)
      P.write_request_v2 fd ~id:0xDEADBEEF (P.Put (3, "v"));
      (match P.read_response_v2 fd with
      | Result.Ok (id, P.Ok) ->
        Alcotest.(check int) "put echoes id" 0xDEADBEEF id
      | Result.Ok (_, r) ->
        Alcotest.fail (Format.asprintf "put answered %a" response_pp r)
      | Result.Error m -> Alcotest.fail ("put io error: " ^ m));
      P.write_request_v2 fd ~id:7 (P.Get 3);
      (match P.read_response_v2 fd with
      | Result.Ok (7, P.Value "v") -> ()
      | Result.Ok (id, r) ->
        Alcotest.fail
          (Format.asprintf "get answered id=%d %a" id response_pp r)
      | Result.Error m -> Alcotest.fail ("get io error: " ^ m));
      (* ...and on payload errors: a bad opcode inside a v2 frame still
         echoes the id so the client can join the ERR to its request. *)
      P.write_frame fd "\x7f\x00\x00\x00\x2ajunk";
      (match P.read_response_v2 fd with
      | Result.Ok (0x2a, P.Err _) -> ()
      | Result.Ok (id, r) ->
        Alcotest.fail
          (Format.asprintf "bad opcode answered id=%d %a" id response_pp r)
      | Result.Error m -> Alcotest.fail ("bad opcode io error: " ^ m));
      Unix.close fd;
      (* A second connection is still v1: ids are per connection. *)
      let fd = client port in
      P.write_request fd (P.Get 3);
      expect "v1 connection unaffected" fd (Result.Ok (P.Value "v"));
      Unix.close fd;
      Backend.check_invariants (Server.backend server))

let test_force_resize_against_server () =
  with_server ~kind:Backend.Lockfree (fun server ->
      let port = Server.port server in
      let fd = client port in
      P.write_request fd (P.Force_resize 99);
      expect_err "out-of-range shard rejected" fd;
      P.write_request fd (P.Put (11, "x"));
      expect "put before resize" fd (Result.Ok P.Ok);
      P.write_request fd (P.Force_resize 0);
      expect "force resize shard 0" fd (Result.Ok P.Ok);
      P.write_request fd (P.Get 11);
      expect "get across resize" fd (Result.Ok (P.Value "x"));
      Unix.close fd;
      Backend.check_invariants (Server.backend server))

let suite =
  [
    ( "server protocol",
      [
        QCheck_alcotest.to_alcotest prop_request_roundtrip;
        QCheck_alcotest.to_alcotest prop_response_roundtrip;
        QCheck_alcotest.to_alcotest prop_v2_roundtrip;
        Alcotest.test_case "codec edges" `Quick test_codec_edges;
        Alcotest.test_case "framed io" `Quick test_framed_io;
        Alcotest.test_case "malformed frames, live server" `Quick
          test_malformed_against_server;
        Alcotest.test_case "v2 negotiation and id echo" `Quick
          test_v2_against_server;
        Alcotest.test_case "force-resize opcode" `Quick
          test_force_resize_against_server;
      ] );
  ]
