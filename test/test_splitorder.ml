open Nbhash_splitorder
module Policy = Nbhash.Policy

let fresh ?(policy = Nbhash.Policy.presized 2) () =
  let t = Split_ordered.create ~policy () in
  (t, Split_ordered.register t)

let test_basic () =
  let t, h = fresh () in
  Alcotest.(check bool) "insert" true (Split_ordered.insert h 42);
  Alcotest.(check bool) "dup" false (Split_ordered.insert h 42);
  Alcotest.(check bool) "contains" true (Split_ordered.contains h 42);
  Alcotest.(check bool) "remove" true (Split_ordered.remove h 42);
  Alcotest.(check bool) "gone" false (Split_ordered.contains h 42);
  Split_ordered.check_invariants t

let test_grow_preserves () =
  let t, h = fresh () in
  let keys = List.init 300 (fun i -> i * 3) in
  List.iter (fun k -> ignore (Split_ordered.insert h k)) keys;
  for _ = 1 to 5 do
    Split_ordered.force_resize h ~grow:true
  done;
  Alcotest.(check int) "buckets grew" 64 (Split_ordered.bucket_count t);
  List.iter
    (fun k ->
      Alcotest.(check bool) "present after grow" true
        (Split_ordered.contains h k))
    keys;
  Split_ordered.check_invariants t

let test_never_shrinks () =
  let t, h = fresh () in
  Split_ordered.force_resize h ~grow:true;
  let size = Split_ordered.bucket_count t in
  Split_ordered.force_resize h ~grow:false;
  Alcotest.(check int) "shrink is a no-op" size (Split_ordered.bucket_count t)

let test_dummies_accumulate () =
  (* The limitation the paper highlights: marker nodes are permanent.
     Touch many buckets, then remove all keys — dummies remain. *)
  let t, h = fresh ~policy:(Nbhash.Policy.presized 64) () in
  let keys = List.init 256 Fun.id in
  List.iter (fun k -> ignore (Split_ordered.insert h k)) keys;
  let with_keys = Split_ordered.dummy_count t in
  Alcotest.(check bool) "many dummies created" true (with_keys > 32);
  List.iter (fun k -> ignore (Split_ordered.remove h k)) keys;
  Alcotest.(check int) "empty of elements" 0 (Split_ordered.cardinal t);
  Alcotest.(check int) "dummies never reclaimed" with_keys
    (Split_ordered.dummy_count t)

let test_load_triggered_growth () =
  let t, h =
    fresh
      ~policy:
        {
          Nbhash.Policy.default with
          init_buckets = 2;
          heuristic = Nbhash.Policy.Load_factor { grow = 4.0; shrink = 1.0 };
        }
      ()
  in
  for k = 0 to 499 do
    ignore (Split_ordered.insert h k)
  done;
  Alcotest.(check bool) "grew under load" true
    (Split_ordered.bucket_count t > 2);
  for k = 0 to 499 do
    if not (Split_ordered.contains h k) then Alcotest.failf "key %d lost" k
  done;
  Split_ordered.check_invariants t

let test_elements_roundtrip () =
  let t, h = fresh () in
  let keys = [ 0; 1; 2; 1023; 4096; (1 lsl 61) - 1 ] in
  List.iter (fun k -> ignore (Split_ordered.insert h k)) keys;
  let got = Split_ordered.elements t in
  Array.sort compare got;
  Alcotest.(check (array int)) "so-key decoding roundtrips"
    (Array.of_list (List.sort compare keys))
    got

let prop_model =
  QCheck2.Test.make ~name:"SplitOrder matches a model across growth"
    ~count:150
    QCheck2.Gen.(small_list (pair (int_bound 2) (int_bound 63)))
    (fun ops ->
      let _, h = fresh ~policy:(Nbhash.Policy.presized 2) () in
      let model = Hashtbl.create 32 in
      let step i (c, k) =
        if i mod 17 = 16 then Split_ordered.force_resize h ~grow:true;
        match c with
        | 0 ->
          let expected = not (Hashtbl.mem model k) in
          Hashtbl.replace model k ();
          Split_ordered.insert h k = expected
        | 1 ->
          let expected = Hashtbl.mem model k in
          Hashtbl.remove model k;
          Split_ordered.remove h k = expected
        | _ -> Split_ordered.contains h k = Hashtbl.mem model k
      in
      List.for_all Fun.id (List.mapi step ops))

let suite =
  [
    ( "split-ordered",
      [
        Alcotest.test_case "basic" `Quick test_basic;
        Alcotest.test_case "grow preserves keys" `Quick test_grow_preserves;
        Alcotest.test_case "never shrinks" `Quick test_never_shrinks;
        Alcotest.test_case "dummies accumulate" `Quick test_dummies_accumulate;
        Alcotest.test_case "load-triggered growth" `Quick
          test_load_triggered_growth;
        Alcotest.test_case "elements roundtrip" `Quick test_elements_roundtrip;
        QCheck_alcotest.to_alcotest prop_model;
      ] );
  ]
