(* The contention & allocation profiler (ISSUE 10).

   Covers: site-registry exactness (ids stable, idempotent by name,
   unknown fallback), exact per-site retry counts single- and
   multi-domain with the probe's independent cas_retry total agreeing,
   retry-gap histogram accounting, the deterministic ping-pong scoring
   of the false-sharing detector, Memprof attribution surviving both a
   5.1 runtime (unavailable, reported not raised) and a 5.2 one
   (sampling live), the Gc-asserted allocation-free disabled path, and
   well-formed /profile.json and snapshot-block documents. *)

module Profile = Nbhash_telemetry.Profile
module Site = Nbhash_telemetry.Site
module Global = Nbhash_telemetry.Global
module Probe = Nbhash_telemetry.Probe
module Event = Nbhash_telemetry.Event
module Counters = Nbhash_telemetry.Counters
module Json = Nbhash_util.Json

(* The profiler is ambient, like the trace rings: scope every
   installation and never leave one behind. *)
let with_profile f =
  let p = Profile.create () in
  Profile.install p;
  Fun.protect ~finally:Profile.uninstall (fun () -> f p)

(* --- site registry --- *)

let test_registry () =
  let a = Site.register "test_profile/a" in
  let b = Site.register "test_profile/b" in
  Alcotest.(check bool) "ids assigned past unknown" true (a > 0 && b > 0);
  Alcotest.(check bool) "distinct names, distinct ids" true (a <> b);
  Alcotest.(check int) "registration is idempotent by name" a
    (Site.register "test_profile/a");
  Alcotest.(check string) "name round-trips" "test_profile/a" (Site.name a);
  Alcotest.(check string) "id 0 is the unknown site" "unknown"
    (Site.name Site.unknown);
  Alcotest.(check string) "out-of-range resolves to unknown" "unknown"
    (Site.name 9999);
  let all = Site.all () in
  Alcotest.(check bool) "all () lists both registrations" true
    (List.mem (a, "test_profile/a") all && List.mem (b, "test_profile/b") all);
  Alcotest.(check int) "all () length matches registered ()"
    (Site.registered ()) (List.length all)

(* --- exact per-site accounting, and the probe cross-check --- *)

let test_exact_counts () =
  Global.install (Probe.recording ());
  Global.reset ();
  Fun.protect
    ~finally:(fun () -> Global.install Probe.noop)
    (fun () ->
      with_profile (fun p ->
          let a = Site.register "test_profile/a" in
          let b = Site.register "test_profile/b" in
          for _ = 1 to 1000 do
            Global.cas_retry a
          done;
          for _ = 1 to 37 do
            Global.cas_retry b
          done;
          Alcotest.(check int) "site a exact" 1000 (Profile.retries p a);
          Alcotest.(check int) "site b exact" 37 (Profile.retries p b);
          Alcotest.(check int) "total is the per-site sum" 1037
            (Profile.total_retries p);
          (* The acceptance cross-check: the probe counts the same
             emissions independently, so the labeled family must sum
             to the legacy cas_retry total. *)
          (match Global.get () with
          | Probe.Recording r ->
            Alcotest.(check int) "probe cas_retry total agrees" 1037
              (Counters.read r.Probe.counters Event.Cas_retry)
          | Probe.Noop -> Alcotest.fail "recording probe vanished");
          (* N retries in one domain lane observe at most N-1 gaps
             (the first has no predecessor; equal-ns timestamps are
             skipped, not observed as zero). *)
          let gaps =
            Array.fold_left ( + ) 0 (Profile.gap_counts p a)
          in
          Alcotest.(check bool) "gap count bounded by retries - 1" true
            (gaps <= 999);
          Alcotest.(check bool) "gaps observed at all" true (gaps > 0);
          Profile.reset p;
          Alcotest.(check int) "reset clears the counters" 0
            (Profile.total_retries p);
          Alcotest.(check int) "reset clears the gap histograms" 0
            (Array.fold_left ( + ) 0 (Profile.gap_counts p a))))

let test_multi_domain_exact () =
  with_profile (fun p ->
      let s = Site.register "test_profile/md" in
      let workers = 4 and n = 10_000 in
      let ds =
        List.init workers (fun _ ->
            Domain.spawn (fun () ->
                for _ = 1 to n do
                  Profile.on_retry s
                done))
      in
      List.iter Domain.join ds;
      Alcotest.(check int) "sharded counters lose nothing across domains"
        (workers * n) (Profile.retries p s);
      Alcotest.(check int) "total agrees" (workers * n)
        (Profile.total_retries p))

(* An unregistered (out-of-range) site id lands on unknown instead of
   corrupting a neighbour's counter. *)
let test_unknown_fallback () =
  with_profile (fun p ->
      Profile.on_retry 9999;
      Profile.on_retry (-3);
      Alcotest.(check int) "stray ids land on the unknown site" 2
        (Profile.retries p Site.unknown))

(* --- false-sharing scoring (deterministic, via score_source) --- *)

let test_ping_pong_score () =
  (* Packed array, 8 lanes per 64-byte line: line 0 written by two
     lanes (the ping-pong case), line 1 written fast by one lane
     (hot but private — must score 0). *)
  let c0 = Array.make 16 0 in
  let c1 = Array.make 16 0 in
  c1.(0) <- 100;
  c1.(3) <- 100;
  c1.(8) <- 500;
  let r =
    Profile.score_source ~name:"packed" ~lanes_per_line:8
      ~dt_ns:1_000_000_000 c0 c1
  in
  Alcotest.(check string) "source name" "packed" r.Profile.source;
  (match r.Profile.lines with
  | [ l0; l1 ] ->
    Alcotest.(check int) "line 0 has two writers" 2 l0.Profile.writers;
    Alcotest.(check (float 1e-6)) "line 0 write rate" 200.
      l0.Profile.writes_per_s;
    Alcotest.(check (float 1e-6)) "line 0 ping-pong = rate x excess" 200.
      l0.Profile.score;
    Alcotest.(check int) "line 1 single writer" 1 l1.Profile.writers;
    Alcotest.(check (float 1e-6)) "single-writer line is private" 0.
      l1.Profile.score
  | ls -> Alcotest.failf "expected two active lines, got %d" (List.length ls));
  Alcotest.(check (float 1e-6)) "max score is the contended line's" 200.
    r.Profile.max_score;
  (* Strided array (one lane per line) with an explicit per-lane
     writer census: collisions on one lane are the ping-pong. *)
  let r =
    Profile.score_source ~name:"strided" ~lanes_per_line:1
      ~writers:[| 3; 1 |] ~dt_ns:1_000_000_000 [| 0; 0 |] [| 100; 100 |]
  in
  match r.Profile.lines with
  | [ l0; l1 ] ->
    Alcotest.(check (float 1e-6)) "3-writer lane scores rate x 2" 200.
      l0.Profile.score;
    Alcotest.(check (float 1e-6)) "1-writer lane scores 0" 0.
      l1.Profile.score
  | ls -> Alcotest.failf "expected two lines, got %d" (List.length ls)

(* The live sampler end-to-end: a source registered over a real array
   whose counts move between the two samples. *)
let test_false_sharing_live () =
  with_profile (fun p ->
      let counts = Array.make 8 0 in
      let src =
        Profile.register_source ~name:"test_src" ~lanes_per_line:8 (fun () ->
            (* Two lanes advance on every sample read: deterministic
               movement without a writer thread. *)
            counts.(0) <- counts.(0) + 1000;
            counts.(5) <- counts.(5) + 1000;
            Array.copy counts)
      in
      let reports = Profile.false_sharing ~interval_s:0.001 p in
      ignore (Sys.opaque_identity src);
      match
        List.find_opt (fun r -> r.Profile.source = "test_src") reports
      with
      | None -> Alcotest.fail "registered source missing from the report"
      | Some r ->
        Alcotest.(check bool) "two writers on the shared line scores > 0"
          true
          (r.Profile.max_score > 0.))

(* --- Memprof attribution --- *)

let test_memprof_smoke () =
  with_profile (fun p ->
      match Profile.start_alloc ~sampling_rate:1e-2 p with
      | Ok () ->
        (* statmemprof available (5.2+): sampling must attribute
           without crashing, and stop must disarm. *)
        let s = Site.register "test_profile/alloc" in
        Profile.on_retry s;
        let junk = ref [] in
        for i = 0 to 9_999 do
          junk := Array.make 16 i :: !junk
        done;
        ignore (Sys.opaque_identity !junk);
        Profile.stop_alloc p;
        let total =
          List.fold_left
            (fun acc (id, _) -> acc + Profile.alloc_words p id)
            0 (Site.all ())
        in
        Alcotest.(check bool) "sampled words accumulate non-negatively" true
          (total >= 0)
      | Error reason ->
        (* 5.1 multicore: unavailable is reported, sticky, and inert. *)
        Alcotest.(check bool) "reason is non-empty" true
          (String.length reason > 0);
        (match Profile.start_alloc p with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "unavailable state did not stick");
        Profile.stop_alloc p;
        Alcotest.(check int) "no phantom attribution" 0
          (List.fold_left
             (fun acc (id, _) -> acc + Profile.alloc_words p id)
             0 (Site.all ())))

(* --- the disabled path allocates nothing --- *)

let test_disabled_path_no_alloc () =
  Global.install Probe.noop;
  Profile.uninstall ();
  Nbhash_telemetry.Trace.uninstall ();
  let s = Site.register "test_profile/noalloc" in
  (* Warm up so any one-time allocation is off the books. *)
  for _ = 1 to 999 do
    Global.cas_retry s
  done;
  let before = Gc.minor_words () in
  for _ = 1 to 99_999 do
    Global.cas_retry s
  done;
  let delta = Gc.minor_words () -. before in
  if delta > 256. then
    Alcotest.failf "disabled profiler hot path allocated %.0f minor words"
      delta

(* --- JSON documents --- *)

let test_json_shapes () =
  Profile.uninstall ();
  (* Inactive snapshot block. *)
  (match Json.parse (Profile.snapshot_block ()) with
  | Error e -> Alcotest.failf "inactive snapshot block invalid: %s" e
  | Ok d -> (
    match Json.member "active" d with
    | Some (Json.Bool false) -> ()
    | _ -> Alcotest.fail "inactive block must say active:false"));
  with_profile (fun p ->
      let s = Site.register "test_profile/json" in
      Global.cas_retry s;
      let reg =
        Profile.register_view ~name:"test_view" (fun () -> "[1,2]")
      in
      let body =
        Fun.protect
          ~finally:(fun () -> Profile.unregister_view reg)
          (fun () ->
            Profile.json_body ~legacy_cas_retry:123 ~interval_s:0.001 p)
      in
      match Json.parse body with
      | Error e -> Alcotest.failf "json_body invalid: %s" e
      | Ok d ->
        (match Json.member "active" d with
        | Some (Json.Bool true) -> ()
        | _ -> Alcotest.fail "active:true expected");
        (match Option.bind (Json.member "total_retries" d) Json.to_num with
        | Some n when n >= 1. -> ()
        | _ -> Alcotest.fail "total_retries missing");
        (match Option.bind (Json.member "legacy_cas_retry" d) Json.to_num with
        | Some n -> Alcotest.(check (float 0.)) "legacy passed through" 123. n
        | None -> Alcotest.fail "legacy_cas_retry missing");
        let sites =
          Option.value ~default:[]
            (Option.bind (Json.member "sites" d) Json.to_list)
        in
        Alcotest.(check bool) "every registered site listed, none nameless"
          true
          (List.length sites = Site.registered ()
          && List.for_all
               (fun sj ->
                 match Option.bind (Json.member "name" sj) Json.to_str with
                 | Some name -> name <> ""
                 | None -> false)
               sites);
        (* Ranked: the site we hit leads. *)
        (match sites with
        | first :: _ ->
          Alcotest.(check (option string))
            "hit site ranks first"
            (Some (Site.name s))
            (Option.bind (Json.member "name" first) Json.to_str)
        | [] -> Alcotest.fail "no sites rendered");
        (match Option.bind (Json.member "false_sharing" d) Json.to_list with
        | Some reports ->
          Alcotest.(check bool) "profiler's own lanes always reported" true
            (List.exists
               (fun r ->
                 Option.bind (Json.member "source" r) Json.to_str
                 = Some "profile_retries")
               reports)
        | None -> Alcotest.fail "false_sharing missing");
        (match Json.member "memprof" d with
        | Some m -> (
          match Option.bind (Json.member "state" m) Json.to_str with
          | Some ("off" | "sampling" | "unavailable") -> ()
          | _ -> Alcotest.fail "memprof state unrecognised")
        | None -> Alcotest.fail "memprof missing");
        (match Option.bind (Json.member "views" d) Json.to_list with
        | Some views ->
          Alcotest.(check bool) "registered view rendered" true
            (List.exists
               (fun v ->
                 Option.bind (Json.member "name" v) Json.to_str
                 = Some "test_view")
               views)
        | None -> Alcotest.fail "views missing"));
  (* The view is unregistered on the way out of the protect above. *)
  with_profile (fun p ->
      ignore (Profile.json_body ~interval_s:0.001 p);
      match Json.parse (Profile.snapshot_block ()) with
      | Error e -> Alcotest.failf "active snapshot block invalid: %s" e
      | Ok d -> (
        match Json.member "active" d with
        | Some (Json.Bool true) -> ()
        | _ -> Alcotest.fail "active block must say active:true"))

let suite =
  [
    ( "profile",
      [
        Alcotest.test_case "site registry" `Quick test_registry;
        Alcotest.test_case "exact counts + probe cross-check" `Quick
          test_exact_counts;
        Alcotest.test_case "multi-domain exactness" `Quick
          test_multi_domain_exact;
        Alcotest.test_case "stray ids land on unknown" `Quick
          test_unknown_fallback;
        Alcotest.test_case "ping-pong scoring" `Quick test_ping_pong_score;
        Alcotest.test_case "false-sharing live sampler" `Quick
          test_false_sharing_live;
        Alcotest.test_case "memprof attribution smoke" `Quick
          test_memprof_smoke;
        Alcotest.test_case "disabled path allocates nothing" `Quick
          test_disabled_path_no_alloc;
        Alcotest.test_case "json documents well-formed" `Quick
          test_json_shapes;
      ] );
  ]
