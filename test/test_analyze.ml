(* Negative controls for the typed-AST analyzer (tools/analyze,
   DESIGN.md System 16): each seeded fixture violation must be caught
   under its exact rule name, and the clean fixture must stay clean.
   The .cmt artifacts are built by the dune dependency on
   fixtures/analyze/check and read from the build context. *)

(* Works both under [dune runtest] (cwd = _build/default/test) and
   [dune exec test/test_main.exe] from the repo root. *)
let fixture_dir () =
  List.find Sys.file_exists
    [ "fixtures/analyze"; "_build/default/test/fixtures/analyze" ]

let rec cmt_files dir =
  Sys.readdir dir |> Array.to_list |> List.sort compare
  |> List.concat_map (fun entry ->
         let path = Filename.concat dir entry in
         if Sys.is_directory path then cmt_files path
         else if Filename.check_suffix entry ".cmt" then [ path ]
         else [])

let violations =
  lazy
    (let cmts = cmt_files (fixture_dir ()) in
     Alcotest.(check bool) "fixture cmts found" true (cmts <> []);
     fst (Analyze_rules.analyze cmts))

let in_file base (v : Analyze_rules.violation) =
  Filename.basename v.file = base

let rules_in base =
  List.filter (in_file base) (Lazy.force violations)
  |> List.map (fun (v : Analyze_rules.violation) -> v.rule)
  |> List.sort_uniq compare

let check_fires fixture rule () =
  let rules = rules_in fixture in
  Alcotest.(check bool)
    (Printf.sprintf "%s fires in %s (got: %s)" rule fixture
       (String.concat ", " rules))
    true (List.mem rule rules)

let test_clean () =
  let vs = List.filter (in_file "fix_clean.ml") (Lazy.force violations) in
  Alcotest.(check int) "fix_clean.ml reports nothing" 0 (List.length vs)

let test_locations () =
  (* every violation carries a real location inside its fixture *)
  List.iter
    (fun (v : Analyze_rules.violation) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s:%d has a fixture file and line" v.file v.line)
        true
        (v.line >= 1
        && Filename.check_suffix v.file ".ml"
        && String.length (Filename.basename v.file) > 0))
    (Lazy.force violations)

let test_only_fixture_rules () =
  (* no violation escapes the known rule vocabulary *)
  List.iter
    (fun (v : Analyze_rules.violation) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s is a known rule" v.rule)
        true
        (List.mem v.rule Analyze_rules.all_rules))
    (Lazy.force violations)

let suite =
  [
    ( "analyze",
      [
        Alcotest.test_case "aliased Stdlib.Atomic -> atomic-alias" `Quick
          (check_fires "fix_atomic_alias.ml" "atomic-alias");
        Alcotest.test_case "unattributed shared mutable -> shared-mutable"
          `Quick
          (check_fires "fix_plain_field.ml" "shared-mutable");
        Alcotest.test_case "get/set RMW -> cas-rmw" `Quick
          (check_fires "fix_cas_rmw.ml" "cas-rmw");
        Alcotest.test_case "discarded CAS -> cas-ignored" `Quick
          (check_fires "fix_cas_ignored.ml" "cas-ignored");
        Alcotest.test_case "Mutex -> blocking-call" `Quick
          (check_fires "fix_blocking.ml" "blocking-call");
        Alcotest.test_case "Obj.magic -> obj-magic" `Quick
          (check_fires "fix_blocking.ml" "obj-magic");
        Alcotest.test_case "reasonless attribute -> attr-reason" `Quick
          (check_fires "fix_blocking.ml" "attr-reason");
        Alcotest.test_case "clean fixture stays clean" `Quick test_clean;
        Alcotest.test_case "violations carry exact locations" `Quick
          test_locations;
        Alcotest.test_case "rule names stay in the vocabulary" `Quick
          test_only_fixture_rules;
      ] );
  ]
