(* Linearizability checking: unit tests for the checker itself, then
   randomized concurrent histories from the real tables (including
   under forced resizing) searched for a valid linearization. *)

open Linearizability
module Factory = Nbhash_workload.Factory

(* --- checker self-tests on hand-written histories --- *)

let ev op result start_t end_t = { op; result; start_t; end_t }

let test_sequential_legal () =
  Alcotest.(check bool) "ins then mem" true
    (check [ ev (Ins 1) true 0 1; ev (Mem 1) true 2 3 ]);
  Alcotest.(check bool) "ins, rem, mem" true
    (check
       [
         ev (Ins 1) true 0 1;
         ev (Rem 1) true 2 3;
         ev (Mem 1) false 4 5;
       ])

let test_sequential_illegal () =
  Alcotest.(check bool) "mem true on empty set" false
    (check [ ev (Mem 1) true 0 1 ]);
  Alcotest.(check bool) "double successful insert" false
    (check [ ev (Ins 1) true 0 1; ev (Ins 1) true 2 3 ]);
  Alcotest.(check bool) "lost insert" false
    (check [ ev (Ins 1) true 0 1; ev (Mem 1) false 2 3 ])

let test_concurrent_flexibility () =
  (* Two overlapping inserts of the same key: exactly one may win,
     either order is fine. *)
  Alcotest.(check bool) "overlapping inserts, one winner" true
    (check [ ev (Ins 1) true 0 2; ev (Ins 1) false 1 3 ]);
  (* A membership test overlapping an insert may see either state. *)
  Alcotest.(check bool) "overlapping mem may miss" true
    (check [ ev (Ins 1) true 0 3; ev (Mem 1) false 1 2 ]);
  Alcotest.(check bool) "overlapping mem may hit" true
    (check [ ev (Ins 1) true 0 3; ev (Mem 1) true 1 2 ])

let test_realtime_respected () =
  (* The insert strictly precedes the lookup in real time, so the
     lookup cannot miss. *)
  Alcotest.(check bool) "stale read rejected" false
    (check [ ev (Ins 1) true 0 1; ev (Mem 1) false 2 3 ]);
  (* But if they overlap, it can. *)
  Alcotest.(check bool) "overlapping read accepted" true
    (check [ ev (Ins 1) true 0 2; ev (Mem 1) false 1 3 ])

(* Random sequential histories generated against a model are always
   accepted; results flipped on a random event are usually illegal and
   must never crash the checker. *)
let prop_sequential_accepted =
  QCheck2.Test.make ~name:"checker accepts model-generated histories"
    ~count:300
    QCheck2.Gen.(list_size (int_range 1 12) (pair (int_bound 2) (int_bound 2)))
    (fun ops ->
      let state = Hashtbl.create 4 in
      let evs =
        List.mapi
          (fun i (c, k) ->
            let result =
              match c with
              | 0 ->
                let fresh = not (Hashtbl.mem state k) in
                Hashtbl.replace state k ();
                fresh
              | 1 ->
                let present = Hashtbl.mem state k in
                Hashtbl.remove state k;
                present
              | _ -> Hashtbl.mem state k
            in
            let op = match c with 0 -> Ins k | 1 -> Rem k | _ -> Mem k in
            { op; result; start_t = 2 * i; end_t = (2 * i) + 1 })
          ops
      in
      check evs)

let prop_flip_never_crashes =
  QCheck2.Test.make ~name:"checker is total on corrupted histories"
    ~count:200
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 8) (pair (int_bound 2) (int_bound 1)))
        (int_bound 7))
    (fun (ops, flip) ->
      let evs =
        List.mapi
          (fun i (c, k) ->
            let op = match c with 0 -> Ins k | 1 -> Rem k | _ -> Mem k in
            {
              op;
              result = (i = flip mod max 1 (List.length ops));
              start_t = 2 * i;
              end_t = (2 * i) + 1;
            })
          ops
      in
      let _ = check evs in
      true)

(* --- randomized histories from the real implementations --- *)

let history_round (maker : Factory.maker) ~policy ~storm ~seed =
  let table = maker ~policy ~max_threads:8 () in
  let r = recorder () in
  let worker d () =
    let ops = table.Factory.new_handle () in
    let rng = Nbhash_util.Xoshiro.create (seed + d) in
    for _ = 1 to 4 do
      let k = Nbhash_util.Xoshiro.below rng 2 in
      match Nbhash_util.Xoshiro.below rng 3 with
      | 0 -> record r (Ins k) (fun () -> ops.Factory.ins k)
      | 1 -> record r (Rem k) (fun () -> ops.Factory.rem k)
      | _ -> record r (Mem k) (fun () -> ops.Factory.look k)
    done
  in
  let stormer () =
    let ops = table.Factory.new_handle () in
    for i = 1 to 6 do
      ops.Factory.force_resize ~grow:(i mod 2 = 0)
    done
  in
  let ds = List.init 3 (fun d -> Domain.spawn (worker d)) in
  let ds = if storm then Domain.spawn stormer :: ds else ds in
  List.iter Domain.join ds;
  events r

let assert_linearizable name evs =
  if not (check evs) then
    Alcotest.failf "%s: non-linearizable history:@.%a" name pp_history evs

let stress name ~storm () =
  let maker = Factory.by_name name in
  for seed = 0 to 59 do
    let policy =
      if storm then Nbhash.Policy.presized 4 else Nbhash.Policy.aggressive
    in
    let evs = history_round maker ~policy ~storm ~seed:(seed * 17) in
    assert_linearizable name evs
  done

let implementations =
  [ "LFArray"; "LFArrayOpt"; "LFList"; "LFUlist"; "LFSorted"; "WFArray"; "Adaptive";
    "AdaptiveOpt"; "SplitOrder"; "Michael"; "Locked" ]

let cases =
  [
    Alcotest.test_case "checker accepts legal sequential" `Quick
      test_sequential_legal;
    Alcotest.test_case "checker rejects illegal sequential" `Quick
      test_sequential_illegal;
    Alcotest.test_case "checker handles concurrency" `Quick
      test_concurrent_flexibility;
    Alcotest.test_case "checker respects real time" `Quick
      test_realtime_respected;
    QCheck_alcotest.to_alcotest prop_sequential_accepted;
    QCheck_alcotest.to_alcotest prop_flip_never_crashes;
  ]
  @ List.concat_map
      (fun name ->
        [
          Alcotest.test_case (name ^ " histories linearizable") `Slow
            (stress name ~storm:false);
          Alcotest.test_case
            (name ^ " histories linearizable under resize storm")
            `Slow (stress name ~storm:true);
        ])
      implementations

let suite = [ ("linearizability", cases) ]
