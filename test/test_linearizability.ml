(* Linearizability checking: unit tests for the generalized checker
   (set, map and freezable-set models), then randomized concurrent
   histories from the real tables — sets via the workload factory,
   maps via [Hashmap]/[Wf_hashmap] — searched for a valid
   linearization. *)

module Lin = Nbhash_testlib.Lin
module Record = Nbhash_testlib.Record
module Factory = Nbhash_workload.Factory
open Lin.Set_model

(* --- checker self-tests on hand-written histories --- *)

let ev op result start_t end_t = { Lin.op; result; start_t; end_t }

let test_sequential_legal () =
  Alcotest.(check bool) "ins then mem" true
    (Lin.Set.check [ ev (Ins 1) true 0 1; ev (Mem 1) true 2 3 ]);
  Alcotest.(check bool) "ins, rem, mem" true
    (Lin.Set.check
       [ ev (Ins 1) true 0 1; ev (Rem 1) true 2 3; ev (Mem 1) false 4 5 ])

let test_sequential_illegal () =
  Alcotest.(check bool) "mem true on empty set" false
    (Lin.Set.check [ ev (Mem 1) true 0 1 ]);
  Alcotest.(check bool) "double successful insert" false
    (Lin.Set.check [ ev (Ins 1) true 0 1; ev (Ins 1) true 2 3 ]);
  Alcotest.(check bool) "lost insert" false
    (Lin.Set.check [ ev (Ins 1) true 0 1; ev (Mem 1) false 2 3 ])

let test_concurrent_flexibility () =
  (* Two overlapping inserts of the same key: exactly one may win,
     either order is fine. *)
  Alcotest.(check bool) "overlapping inserts, one winner" true
    (Lin.Set.check [ ev (Ins 1) true 0 2; ev (Ins 1) false 1 3 ]);
  (* A membership test overlapping an insert may see either state. *)
  Alcotest.(check bool) "overlapping mem may miss" true
    (Lin.Set.check [ ev (Ins 1) true 0 3; ev (Mem 1) false 1 2 ]);
  Alcotest.(check bool) "overlapping mem may hit" true
    (Lin.Set.check [ ev (Ins 1) true 0 3; ev (Mem 1) true 1 2 ])

let test_realtime_respected () =
  (* The insert strictly precedes the lookup in real time, so the
     lookup cannot miss. *)
  Alcotest.(check bool) "stale read rejected" false
    (Lin.Set.check [ ev (Ins 1) true 0 1; ev (Mem 1) false 2 3 ]);
  (* But if they overlap, it can. *)
  Alcotest.(check bool) "overlapping read accepted" true
    (Lin.Set.check [ ev (Ins 1) true 0 2; ev (Mem 1) false 1 3 ])

(* Keys beyond the 61-key bitmask must be refused loudly, not wrapped
   silently into another key's bit. *)
let test_key_guard () =
  let contains_sub s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  (match Lin.Set.check [ ev (Ins 61) true 0 1 ] with
  | _ -> Alcotest.fail "key 61 accepted"
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "error names the limit" true (contains_sub msg "61"));
  match Lin.Set.check [ ev (Ins (-1)) true 0 1 ] with
  | _ -> Alcotest.fail "negative key accepted"
  | exception Invalid_argument _ -> ()

(* --- map-model self-tests --- *)

let mev op result start_t end_t = { Lin.op; result; start_t; end_t }

let test_map_sequential () =
  let open Lin.Map_model in
  Alcotest.(check bool) "put get del" true
    (Lin.Map.check
       [
         mev (Put (1, 10)) None 0 1;
         mev (Get 1) (Some 10) 2 3;
         mev (Put (1, 11)) (Some 10) 4 5;
         mev (Del 1) (Some 11) 6 7;
         mev (Get 1) None 8 9;
       ]);
  Alcotest.(check bool) "get of missing" true
    (Lin.Map.check [ mev (Get 7) None 0 1 ]);
  Alcotest.(check bool) "stale get rejected" false
    (Lin.Map.check [ mev (Put (1, 10)) None 0 1; mev (Get 1) None 2 3 ]);
  Alcotest.(check bool) "wrong previous binding rejected" false
    (Lin.Map.check [ mev (Put (1, 10)) (Some 3) 0 1 ]);
  Alcotest.(check bool) "overlapping puts, both orders legal" true
    (Lin.Map.check
       [ mev (Put (1, 10)) None 0 2; mev (Put (1, 20)) (Some 10) 1 3 ])

(* --- fset-model self-tests --- *)

let test_fset_model () =
  let open Lin.Fset_model in
  let fev op result start_t end_t = { Lin.op; result; start_t; end_t } in
  Alcotest.(check bool) "ins then freeze sees it" true
    (Lin.Fset.check
       [ fev (Ins 1) (Applied true) 0 1; fev Freeze (Snapshot [ 1 ]) 2 3 ]);
  Alcotest.(check bool) "refused insert after freeze" true
    (Lin.Fset.check
       [ fev Freeze (Snapshot []) 0 1; fev (Ins 1) Refused 2 3 ]);
  (* The acceptance bug shape: freeze snapshots {1}, yet a later
     insert still reports applied — no linearization exists. *)
  Alcotest.(check bool) "applied insert after freeze rejected" false
    (Lin.Fset.check
       [ fev Freeze (Snapshot [ 1 ]) 0 1; fev (Ins 2) (Applied true) 2 3 ]);
  Alcotest.(check bool) "overlapping freeze/ins, ins linearized first" true
    (Lin.Fset.check
       [ fev Freeze (Snapshot [ 2 ]) 0 3; fev (Ins 2) (Applied true) 1 2 ])

(* Random sequential histories generated against a model are always
   accepted; results flipped on a random event are usually illegal and
   must never crash the checker. *)
let prop_sequential_accepted =
  QCheck2.Test.make ~name:"checker accepts model-generated histories"
    ~count:300
    QCheck2.Gen.(list_size (int_range 1 12) (pair (int_bound 2) (int_bound 2)))
    (fun ops ->
      let state = Hashtbl.create 4 in
      let evs =
        List.mapi
          (fun i (c, k) ->
            let result =
              match c with
              | 0 ->
                let fresh = not (Hashtbl.mem state k) in
                Hashtbl.replace state k ();
                fresh
              | 1 ->
                let present = Hashtbl.mem state k in
                Hashtbl.remove state k;
                present
              | _ -> Hashtbl.mem state k
            in
            let op = match c with 0 -> Ins k | 1 -> Rem k | _ -> Mem k in
            { Lin.op; result; start_t = 2 * i; end_t = (2 * i) + 1 })
          ops
      in
      Lin.Set.check evs)

let prop_flip_never_crashes =
  QCheck2.Test.make ~name:"checker is total on corrupted histories"
    ~count:200
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 8) (pair (int_bound 2) (int_bound 1)))
        (int_bound 7))
    (fun (ops, flip) ->
      let evs =
        List.mapi
          (fun i (c, k) ->
            let op = match c with 0 -> Ins k | 1 -> Rem k | _ -> Mem k in
            {
              Lin.op;
              result = i = flip mod max 1 (List.length ops);
              start_t = 2 * i;
              end_t = (2 * i) + 1;
            })
          ops
      in
      let _ = Lin.Set.check evs in
      true)

(* Model-generated map histories are always accepted. *)
let prop_map_sequential_accepted =
  QCheck2.Test.make ~name:"map checker accepts model-generated histories"
    ~count:300
    QCheck2.Gen.(
      list_size (int_range 1 12)
        (triple (int_bound 2) (int_bound 2) (int_bound 5)))
    (fun ops ->
      let open Lin.Map_model in
      let state = Hashtbl.create 4 in
      let evs =
        List.mapi
          (fun i (c, k, v) ->
            let prev = Hashtbl.find_opt state k in
            let op, result =
              match c with
              | 0 ->
                Hashtbl.replace state k v;
                (Put (k, v), prev)
              | 1 ->
                Hashtbl.remove state k;
                (Del k, prev)
              | _ -> (Get k, prev)
            in
            { Lin.op; result; start_t = 2 * i; end_t = (2 * i) + 1 })
          ops
      in
      Lin.Map.check evs)

(* --- randomized histories from the real implementations --- *)

let history_round (maker : Factory.maker) ~policy ~storm ~seed =
  let table = maker ~policy ~max_threads:8 () in
  let r = Record.make () in
  let worker d () =
    let ops = table.Factory.new_handle () in
    let rng = Nbhash_util.Xoshiro.create (seed + d) in
    for _ = 1 to 4 do
      let k = Nbhash_util.Xoshiro.below rng 2 in
      ignore
        (match Nbhash_util.Xoshiro.below rng 3 with
        | 0 -> Record.record r (Ins k) (fun () -> ops.Factory.ins k)
        | 1 -> Record.record r (Rem k) (fun () -> ops.Factory.rem k)
        | _ -> Record.record r (Mem k) (fun () -> ops.Factory.look k))
    done
  in
  let stormer () =
    let ops = table.Factory.new_handle () in
    for i = 1 to 6 do
      ops.Factory.force_resize ~grow:(i mod 2 = 0)
    done
  in
  let ds = List.init 3 (fun d -> Domain.spawn (worker d)) in
  let ds = if storm then Domain.spawn stormer :: ds else ds in
  List.iter Domain.join ds;
  Record.events r

let assert_linearizable name evs =
  if not (Lin.Set.check evs) then
    Alcotest.failf "%s: non-linearizable history:@.%a" name Lin.Set.pp_history
      evs

let stress name ~storm () =
  let maker = Factory.by_name name in
  for seed = 0 to 59 do
    let policy =
      if storm then Nbhash.Policy.presized 4 else Nbhash.Policy.aggressive
    in
    let evs = history_round maker ~policy ~storm ~seed:(seed * 17) in
    assert_linearizable name evs
  done

(* Map histories from [Hashmap] and [Wf_hashmap]: three domains
   hammering two keys with put/get/del, optionally under a resize
   storm, then a Wing–Gong search over the value-carrying events. *)
type map_ops = {
  map_name : string;
  put : int -> int -> int option;
  get : int -> int option;
  del : int -> int option;
  resize : grow:bool -> unit;
}

let hashmap_ops ~policy () =
  let t = Nbhash.Hashmap.create ~policy () in
  fun () ->
    let h = Nbhash.Hashmap.register t in
    {
      map_name = "Hashmap";
      put = (fun k v -> Nbhash.Hashmap.put h k v);
      get = (fun k -> Nbhash.Hashmap.get h k);
      del = (fun k -> Nbhash.Hashmap.remove h k);
      resize = (fun ~grow -> Nbhash.Hashmap.force_resize h ~grow);
    }

let wf_hashmap_ops ~policy () =
  let t = Nbhash.Wf_hashmap.create ~policy ~max_threads:8 () in
  fun () ->
    let h = Nbhash.Wf_hashmap.register t in
    {
      map_name = "Wf_hashmap";
      put = (fun k v -> Nbhash.Wf_hashmap.put h k v);
      get = (fun k -> Nbhash.Wf_hashmap.get h k);
      del = (fun k -> Nbhash.Wf_hashmap.remove h k);
      resize = (fun ~grow -> Nbhash.Wf_hashmap.force_resize h ~grow);
    }

let map_history_round make_table ~policy ~storm ~seed =
  let open Lin.Map_model in
  let new_handle = make_table ~policy () in
  let r = Record.make () in
  let worker d () =
    let ops = new_handle () in
    let rng = Nbhash_util.Xoshiro.create (seed + d) in
    for i = 1 to 4 do
      let k = Nbhash_util.Xoshiro.below rng 2 in
      ignore
        (match Nbhash_util.Xoshiro.below rng 3 with
        | 0 ->
          let v = (100 * d) + i in
          Record.record r (Put (k, v)) (fun () -> ops.put k v)
        | 1 -> Record.record r (Del k) (fun () -> ops.del k)
        | _ -> Record.record r (Get k) (fun () -> ops.get k))
    done
  in
  let stormer () =
    let ops = new_handle () in
    for i = 1 to 6 do
      ops.resize ~grow:(i mod 2 = 0)
    done
  in
  let ds = List.init 3 (fun d -> Domain.spawn (worker d)) in
  let ds = if storm then Domain.spawn stormer :: ds else ds in
  List.iter Domain.join ds;
  Record.events r

let map_stress make_table name ~storm () =
  for seed = 0 to 59 do
    let policy =
      if storm then Nbhash.Policy.presized 4 else Nbhash.Policy.aggressive
    in
    let evs = map_history_round make_table ~policy ~storm ~seed:(seed * 23) in
    if not (Lin.Map.check evs) then
      Alcotest.failf "%s: non-linearizable map history:@.%a" name
        Lin.Map.pp_history evs
  done

let implementations =
  [ "LFArray"; "LFArrayOpt"; "LFList"; "LFUlist"; "LFSorted"; "LFFlat";
    "WFArray"; "Adaptive"; "AdaptiveOpt"; "SplitOrder"; "Michael"; "Locked" ]

(* Freeze-vs-insert history storm directly over the flat FSet (not
   through a table): three domains fire insert/remove volleys while a
   fourth freezes mid-flight, and the recorded history — Applied /
   Refused responses plus the freeze's Snapshot — must satisfy the
   freezable-set model. This is the concurrent counterpart of the
   bounded @check scenarios: real parallelism, random timing, 60
   rounds. *)
let flat_fset_freeze_storm () =
  let module F = Nbhash_fset.Flat_fset in
  for seed = 0 to 59 do
    let t = F.create [||] in
    let r = Record.make () in
    let worker d () =
      let rng = Nbhash_util.Xoshiro.create ((seed * 31) + d) in
      for _ = 1 to 5 do
        let k = Nbhash_util.Xoshiro.below rng 3 in
        let kind =
          if Nbhash_util.Xoshiro.bool rng then Nbhash_fset.Fset_intf.Ins
          else Nbhash_fset.Fset_intf.Rem
        in
        let op_m =
          match kind with
          | Nbhash_fset.Fset_intf.Ins -> Lin.Fset_model.Ins k
          | Nbhash_fset.Fset_intf.Rem -> Lin.Fset_model.Rem k
        in
        ignore
          (Record.record r op_m (fun () ->
               let op = F.make_op kind k in
               if F.invoke t op then Lin.Fset_model.Applied (F.get_response op)
               else Lin.Fset_model.Refused))
      done
    in
    let freezer () =
      ignore
        (Record.record r Lin.Fset_model.Freeze (fun () ->
             Lin.Fset_model.Snapshot
               (List.sort compare (Array.to_list (F.freeze t)))))
    in
    let ds = List.init 3 (fun d -> Domain.spawn (worker d)) in
    let ds = Domain.spawn freezer :: ds in
    List.iter Domain.join ds;
    let evs = Record.events r in
    if not (Lin.Fset.check evs) then
      Alcotest.failf "Flat_fset: non-linearizable freeze history:@.%a"
        Lin.Fset.pp_history evs
  done

let cases =
  [
    Alcotest.test_case "checker accepts legal sequential" `Quick
      test_sequential_legal;
    Alcotest.test_case "checker rejects illegal sequential" `Quick
      test_sequential_illegal;
    Alcotest.test_case "checker handles concurrency" `Quick
      test_concurrent_flexibility;
    Alcotest.test_case "checker respects real time" `Quick
      test_realtime_respected;
    Alcotest.test_case "checker rejects out-of-range keys" `Quick
      test_key_guard;
    Alcotest.test_case "map checker sequential" `Quick test_map_sequential;
    Alcotest.test_case "fset model" `Quick test_fset_model;
    QCheck_alcotest.to_alcotest prop_sequential_accepted;
    QCheck_alcotest.to_alcotest prop_flip_never_crashes;
    QCheck_alcotest.to_alcotest prop_map_sequential_accepted;
  ]
  @ List.concat_map
      (fun name ->
        [
          Alcotest.test_case (name ^ " histories linearizable") `Slow
            (stress name ~storm:false);
          Alcotest.test_case
            (name ^ " histories linearizable under resize storm")
            `Slow (stress name ~storm:true);
        ])
      implementations
  @ [
      Alcotest.test_case "Flat_fset freeze-vs-insert storm linearizable" `Slow
        flat_fset_freeze_storm;
      Alcotest.test_case "Hashmap map histories linearizable" `Slow
        (map_stress hashmap_ops "Hashmap" ~storm:false);
      Alcotest.test_case "Hashmap map histories linearizable under storm"
        `Slow
        (map_stress hashmap_ops "Hashmap" ~storm:true);
      Alcotest.test_case "Wf_hashmap map histories linearizable" `Slow
        (map_stress wf_hashmap_ops "Wf_hashmap" ~storm:false);
      Alcotest.test_case "Wf_hashmap map histories linearizable under storm"
        `Slow
        (map_stress wf_hashmap_ops "Wf_hashmap" ~storm:true);
    ]

let suite = [ ("linearizability", cases) ]
