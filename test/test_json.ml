(* The minimal JSON reader in Nbhash_util.Json: it exists to validate
   the repo's own emitters (snapshot, bench, trace exporter) and to
   diff bench files, so the tests focus on RFC 8259 conformance of
   what those emitters produce plus loud rejection of malformed
   input. *)

module Json = Nbhash_util.Json

let ok s =
  match Json.parse s with
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected parse failure on %S: %s" s e

let bad s =
  match Json.parse s with
  | Ok _ -> Alcotest.failf "expected parse failure on %S" s
  | Error _ -> ()

let test_scalars () =
  Alcotest.(check bool) "null" true (ok "null" = Json.Null);
  Alcotest.(check bool) "true" true (ok "true" = Json.Bool true);
  Alcotest.(check bool) "false" true (ok " false " = Json.Bool false);
  Alcotest.(check bool) "int" true (ok "42" = Json.Num 42.);
  Alcotest.(check bool) "negative" true (ok "-7" = Json.Num (-7.));
  Alcotest.(check bool) "fraction" true (ok "1.5" = Json.Num 1.5);
  Alcotest.(check bool) "exponent" true (ok "25e-1" = Json.Num 2.5);
  Alcotest.(check bool) "string" true (ok {|"hi"|} = Json.Str "hi")

let test_escapes () =
  Alcotest.(check bool) "common escapes" true
    (ok {|"a\"b\\c\/d\n\t"|} = Json.Str "a\"b\\c/d\n\t");
  Alcotest.(check bool) "unicode escape" true
    (ok "\"\\u0041\"" = Json.Str "A");
  (* U+1F600 as a surrogate pair must decode to 4-byte UTF-8. *)
  Alcotest.(check bool) "surrogate pair" true
    (ok "\"\\ud83d\\ude00\"" = Json.Str "\xf0\x9f\x98\x80");
  (* Unpaired surrogates can't be represented in valid UTF-8: they
     decode to U+FFFD, never to a raw D800-DFFF encoding. *)
  let fffd = "\xef\xbf\xbd" in
  Alcotest.(check bool) "lone high surrogate" true
    (ok "\"\\ud800\"" = Json.Str fffd);
  Alcotest.(check bool) "lone low surrogate" true
    (ok "\"\\udc00\"" = Json.Str fffd);
  (* An unpaired high surrogate consumes only itself: the following
     escape is decoded on its own. *)
  Alcotest.(check bool) "high surrogate then BMP escape" true
    (ok "\"\\ud800\\u0041\"" = Json.Str (fffd ^ "A"));
  Alcotest.(check bool) "high surrogate then high surrogate" true
    (ok "\"\\ud800\\ud83d\\ude00\"" = Json.Str (fffd ^ "\xf0\x9f\x98\x80"))

let test_structures () =
  Alcotest.(check bool) "empty array" true (ok "[]" = Json.Arr []);
  Alcotest.(check bool) "empty object" true (ok "{}" = Json.Obj []);
  let v = ok {|{"a":[1,2],"b":{"c":null},"a":3}|} in
  (match Json.member "a" v with
  | Some (Json.Arr [ Json.Num 1.; Json.Num 2. ]) -> ()
  | _ -> Alcotest.fail "member returns the FIRST binding of a key");
  Alcotest.(check (option (list string)))
    "keys in document order"
    (Some [ "a"; "b"; "a" ])
    (Json.keys v);
  match Option.bind (Json.member "b" v) (Json.member "c") with
  | Some Json.Null -> ()
  | _ -> Alcotest.fail "nested member"

let test_rejects () =
  bad "";
  bad "nul";
  bad "01";
  bad "[1,]";
  bad "{\"a\":}";
  bad "{\"a\" 1}";
  bad "\"unterminated";
  bad "[1] trailing";
  bad "'single quotes'";
  (* RFC 8259: control characters below 0x20 must be escaped. *)
  bad "\"tab\there\"";
  bad "\"newline\nhere\"";
  bad "\"nul\x00here\""

let test_accessors () =
  Alcotest.(check (option (float 0.))) "to_num" (Some 3.) (Json.to_num (ok "3"));
  Alcotest.(check (option string)) "to_str" (Some "x") (Json.to_str (ok {|"x"|}));
  Alcotest.(check bool) "to_list" true
    (Json.to_list (ok "[null]") = Some [ Json.Null ]);
  Alcotest.(check (option (float 0.))) "shape mismatch" None
    (Json.to_num (ok "[]"));
  Alcotest.(check (option string)) "member on non-object" None
    (Option.bind (Json.member "k" (ok "[]")) Json.to_str)

(* [parse_file] is what nbhash_cli stats/trace --from reads through: a
   missing path must come back as a printable [Error] (the CLI turns
   it into exit 1 + stderr), not an exception; a real file round-trips. *)
let test_parse_file () =
  (match Json.parse_file "/nonexistent/nbhash-no-such-file.json" with
  | Error msg ->
    Alcotest.(check bool) "error names the path" true
      (String.length msg > 0)
  | Ok _ -> Alcotest.fail "missing file parsed");
  let path = Filename.temp_file "nbhash_json_test" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out path in
      output_string oc "{\"a\":[1,2,3],\"b\":\"x\"}";
      close_out oc;
      match Json.parse_file path with
      | Ok v ->
        Alcotest.(check (option (list string)))
          "round-trip keys"
          (Some [ "a"; "b" ])
          (Json.keys v)
      | Error msg -> Alcotest.failf "parse_file failed on real file: %s" msg);
  let bad = Filename.temp_file "nbhash_json_test" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove bad with Sys_error _ -> ())
    (fun () ->
      let oc = open_out bad in
      output_string oc "{not json";
      close_out oc;
      match Json.parse_file bad with
      | Error msg ->
        (* Parse errors are prefixed with the path for CLI messages. *)
        Alcotest.(check bool) "parse error carries the path" true
          (String.length msg > String.length bad
          && String.sub msg 0 (String.length bad) = bad)
      | Ok _ -> Alcotest.fail "malformed file parsed")

let suite =
  [
    ( "json",
      [
        Alcotest.test_case "scalars" `Quick test_scalars;
        Alcotest.test_case "string escapes" `Quick test_escapes;
        Alcotest.test_case "arrays and objects" `Quick test_structures;
        Alcotest.test_case "malformed input rejected" `Quick test_rejects;
        Alcotest.test_case "accessors" `Quick test_accessors;
        Alcotest.test_case "parse_file errors and round-trip" `Quick
          test_parse_file;
      ] );
  ]
