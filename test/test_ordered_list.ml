open Nbhash_splitorder

let test_insert_mem () =
  let head = Ordered_list.make_head () in
  Alcotest.(check bool) "insert 5" true (Ordered_list.insert ~start:head 5);
  Alcotest.(check bool) "insert 3" true (Ordered_list.insert ~start:head 3);
  Alcotest.(check bool) "insert dup" false (Ordered_list.insert ~start:head 5);
  Alcotest.(check bool) "mem 3" true (Ordered_list.mem ~start:head 3);
  Alcotest.(check bool) "mem 4" false (Ordered_list.mem ~start:head 4);
  Ordered_list.check_sorted ~start:head

let test_remove () =
  let head = Ordered_list.make_head () in
  List.iter (fun k -> ignore (Ordered_list.insert ~start:head k)) [ 1; 2; 3 ];
  Alcotest.(check bool) "remove 2" true (Ordered_list.remove ~start:head 2);
  Alcotest.(check bool) "remove 2 again" false
    (Ordered_list.remove ~start:head 2);
  Alcotest.(check bool) "mem 2" false (Ordered_list.mem ~start:head 2);
  Alcotest.(check (list int)) "rest" [ 1; 3 ]
    (Ordered_list.keys_from ~start:head ());
  Alcotest.(check bool) "reinsert 2" true (Ordered_list.insert ~start:head 2);
  Alcotest.(check bool) "mem 2 again" true (Ordered_list.mem ~start:head 2)

let test_keys_sorted () =
  let head = Ordered_list.make_head () in
  List.iter
    (fun k -> ignore (Ordered_list.insert ~start:head k))
    [ 9; 1; 7; 3; 5 ];
  Alcotest.(check (list int)) "sorted" [ 1; 3; 5; 7; 9 ]
    (Ordered_list.keys_from ~start:head ());
  Alcotest.(check (list int)) "upto bound" [ 1; 3 ]
    (Ordered_list.keys_from ~start:head ~upto:5 ())

let test_interior_start () =
  let head = Ordered_list.make_head () in
  List.iter
    (fun k -> ignore (Ordered_list.insert ~start:head k))
    [ 10; 20; 30 ];
  (* Searching from an interior node sees only the suffix. *)
  let n20 = Ordered_list.insert_or_find ~start:head 20 in
  Alcotest.(check int) "found existing node" 20 (Ordered_list.node_key n20);
  Alcotest.(check bool) "sees 30" true (Ordered_list.mem ~start:n20 30);
  Alcotest.(check bool) "does not see 10" false
    (Ordered_list.mem ~start:n20 10)

let test_insert_or_find_idempotent () =
  let head = Ordered_list.make_head () in
  let a = Ordered_list.insert_or_find ~start:head 7 in
  let b = Ordered_list.insert_or_find ~start:head 7 in
  Alcotest.(check bool) "same node" true (a == b)

(* Model check against a sorted-list reference. *)
let prop_model =
  QCheck2.Test.make ~name:"ordered list matches a set model" ~count:300
    QCheck2.Gen.(small_list (pair bool (int_range 1 30)))
    (fun ops ->
      let head = Ordered_list.make_head () in
      let model = Hashtbl.create 32 in
      List.for_all
        (fun (is_ins, k) ->
          if is_ins then begin
            let expected = not (Hashtbl.mem model k) in
            Hashtbl.replace model k ();
            Ordered_list.insert ~start:head k = expected
          end
          else begin
            let expected = Hashtbl.mem model k in
            Hashtbl.remove model k;
            Ordered_list.remove ~start:head k = expected
          end)
        ops
      &&
      let expected =
        Hashtbl.fold (fun k () acc -> k :: acc) model [] |> List.sort compare
      in
      Ordered_list.keys_from ~start:head () = expected)

(* Concurrent ledger, as for the FSets. *)
let test_concurrent_ledger () =
  let domains = 4 and keys = 16 and ops = 2_000 in
  let head = Ordered_list.make_head () in
  let ins_succ = Array.init domains (fun _ -> Array.make (keys + 1) 0) in
  let rem_succ = Array.init domains (fun _ -> Array.make (keys + 1) 0) in
  let worker d () =
    let rng = Nbhash_util.Xoshiro.create (700 + d) in
    for _ = 1 to ops do
      let k = 1 + Nbhash_util.Xoshiro.below rng keys in
      if Nbhash_util.Xoshiro.bool rng then begin
        if Ordered_list.insert ~start:head k then
          ins_succ.(d).(k) <- ins_succ.(d).(k) + 1
      end
      else if Ordered_list.remove ~start:head k then
        rem_succ.(d).(k) <- rem_succ.(d).(k) + 1
    done
  in
  let ds = List.init domains (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join ds;
  Ordered_list.check_sorted ~start:head;
  let final = Ordered_list.keys_from ~start:head () in
  for k = 1 to keys do
    let net = ref 0 in
    for d = 0 to domains - 1 do
      net := !net + ins_succ.(d).(k) - rem_succ.(d).(k)
    done;
    Alcotest.(check bool)
      (Printf.sprintf "key %d membership matches ledger" k)
      (!net = 1) (List.mem k final)
  done

let suite =
  [
    ( "ordered-list",
      [
        Alcotest.test_case "insert/mem" `Quick test_insert_mem;
        Alcotest.test_case "remove" `Quick test_remove;
        Alcotest.test_case "keys sorted" `Quick test_keys_sorted;
        Alcotest.test_case "interior start" `Quick test_interior_start;
        Alcotest.test_case "insert_or_find idempotent" `Quick
          test_insert_or_find_idempotent;
        QCheck_alcotest.to_alcotest prop_model;
        Alcotest.test_case "concurrent ledger" `Slow test_concurrent_ledger;
      ] );
  ]
