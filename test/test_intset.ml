open Nbhash_fset

let test_mem () =
  let a = [| 3; 1; 4 |] in
  Alcotest.(check bool) "present" true (Intset.mem a 1);
  Alcotest.(check bool) "absent" false (Intset.mem a 2);
  Alcotest.(check bool) "empty" false (Intset.mem [||] 0)

let test_add_remove () =
  let a = Intset.add [||] 5 in
  Alcotest.(check bool) "added" true (Intset.mem a 5);
  let b = Intset.add a 7 in
  let c = Intset.remove b 5 in
  Alcotest.(check bool) "removed" false (Intset.mem c 5);
  Alcotest.(check bool) "kept" true (Intset.mem c 7);
  Alcotest.(check int) "length" 1 (Array.length c)

let test_filter_mask () =
  let a = [| 0; 1; 2; 3; 4; 5; 6; 7 |] in
  Alcotest.(check bool) "evens" true
    (Intset.equal_as_sets [| 0; 2; 4; 6 |]
       (Intset.filter_mask a ~mask:1 ~target:0));
  Alcotest.(check bool) "mod4 = 3" true
    (Intset.equal_as_sets [| 3; 7 |] (Intset.filter_mask a ~mask:3 ~target:3))

let test_equal_as_sets () =
  Alcotest.(check bool) "permuted" true
    (Intset.equal_as_sets [| 1; 2; 3 |] [| 3; 1; 2 |]);
  Alcotest.(check bool) "different" false
    (Intset.equal_as_sets [| 1; 2 |] [| 1; 3 |])

let distinct_gen =
  QCheck2.Gen.(map (List.sort_uniq compare) (small_list (int_bound 1000)))

(* Model-based: an Intset array must behave like a List-based set. *)
let prop_add_remove_roundtrip =
  QCheck2.Test.make ~name:"remove (add a k) k = a (as sets)" ~count:500
    QCheck2.Gen.(pair distinct_gen (int_bound 1000))
    (fun (l, k) ->
      let a = Array.of_list (List.filter (fun x -> x <> k) l) in
      Intset.equal_as_sets a (Intset.remove (Intset.add a k) k))

let prop_filter_mask_model =
  QCheck2.Test.make ~name:"filter_mask matches list filter" ~count:500
    QCheck2.Gen.(pair distinct_gen (int_range 0 5))
    (fun (l, bits) ->
      let mask = (1 lsl bits) - 1 in
      let target = match l with [] -> 0 | x :: _ -> x land mask in
      let expected = List.filter (fun k -> k land mask = target) l in
      Intset.equal_as_sets (Array.of_list expected)
        (Intset.filter_mask (Array.of_list l) ~mask ~target))

let prop_split_partitions =
  QCheck2.Test.make
    ~name:"grow split partitions a bucket without loss or duplication"
    ~count:500
    QCheck2.Gen.(pair distinct_gen (int_range 1 4))
    (fun (l, bits) ->
      (* All keys congruent mod old size, as in a real bucket. *)
      let old_mask = (1 lsl bits) - 1 in
      let residue = 3 land old_mask in
      let bucket =
        Array.of_list
          (List.sort_uniq compare
             (List.map (fun k -> (k lsl (bits + 1)) lor residue) l))
      in
      let new_mask = (2 lsl bits) - 1 in
      let lo = Intset.filter_mask bucket ~mask:new_mask ~target:residue in
      let hi =
        Intset.filter_mask bucket ~mask:new_mask
          ~target:(residue lor (1 lsl bits))
      in
      Intset.equal_as_sets bucket (Intset.disjoint_union lo hi))

let suite =
  [
    ( "intset",
      [
        Alcotest.test_case "mem" `Quick test_mem;
        Alcotest.test_case "add/remove" `Quick test_add_remove;
        Alcotest.test_case "filter_mask" `Quick test_filter_mask;
        Alcotest.test_case "equal_as_sets" `Quick test_equal_as_sets;
        QCheck_alcotest.to_alcotest prop_add_remove_roundtrip;
        QCheck_alcotest.to_alcotest prop_filter_mask_model;
        QCheck_alcotest.to_alcotest prop_split_partitions;
      ] );
  ]
