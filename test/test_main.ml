let () =
  Alcotest.run "nbhash"
    (Test_bits.suite @ Test_xoshiro.suite @ Test_stats.suite @ Test_backoff.suite @ Test_alias.suite @ Test_clock.suite
   @ Test_intset.suite @ Test_policy.suite @ Test_fsets.suite
   @ Test_fset_concurrent.suite @ Test_tables.suite
   @ Test_hashset_concurrent.suite @ Test_ordered_list.suite
   @ Test_splitorder.suite @ Test_hashmap.suite @ Test_wf_hashmap.suite
   @ Test_keyed.suite @ Test_generic.suite @ Test_differential.suite
   @ Test_ulist.suite @ Test_extend.suite @ Test_linearizability.suite
   @ Test_targeted.suite
   @ Test_workload.suite @ Test_telemetry.suite @ Test_json.suite
   @ Test_trace.suite @ Test_profile.suite @ Test_churn.suite
   @ Test_inspect.suite @ Test_openmetrics.suite
   @ Test_protocol.suite @ Test_server.suite
   @ Test_lint.suite @ Test_analyze.suite)
