(* Conformance suite applied to every hash-set implementation.
   Sequential semantics are checked against a Hashtbl model on random
   traces that interleave forced resizes; explicit grow/shrink
   migration tests validate the freeze-and-migrate machinery and the
   Figure 3 refinement invariants. *)

module type CAPS = sig
  val can_grow : bool
  val can_shrink : bool
end

module Make (S : Nbhash.Hashset_intf.S) (C : CAPS) = struct
  let no_resize_policy = Nbhash.Policy.presized 8

  let fresh ?(policy = no_resize_policy) () =
    let t = S.create ~policy () in
    (t, S.register t)

  let test_empty () =
    let t, h = fresh () in
    Alcotest.(check bool) "no member" false (S.contains h 3);
    Alcotest.(check int) "cardinal" 0 (S.cardinal t);
    Alcotest.(check bool) "remove on empty" false (S.remove h 3)

  let test_insert_contains_remove () =
    let _, h = fresh () in
    Alcotest.(check bool) "insert new" true (S.insert h 10);
    Alcotest.(check bool) "insert dup" false (S.insert h 10);
    Alcotest.(check bool) "contains" true (S.contains h 10);
    Alcotest.(check bool) "absent" false (S.contains h 11);
    Alcotest.(check bool) "remove" true (S.remove h 10);
    Alcotest.(check bool) "remove again" false (S.remove h 10);
    Alcotest.(check bool) "gone" false (S.contains h 10)

  let test_key_validation () =
    let _, h = fresh () in
    Alcotest.check_raises "negative key" (Invalid_argument
      "key must be a non-negative int below 2^61") (fun () ->
        ignore (S.insert h (-1)))

  let test_zero_and_large_keys () =
    let _, h = fresh () in
    let big = (1 lsl 61) - 1 in
    Alcotest.(check bool) "zero" true (S.insert h 0);
    Alcotest.(check bool) "largest" true (S.insert h big);
    Alcotest.(check bool) "zero present" true (S.contains h 0);
    Alcotest.(check bool) "largest present" true (S.contains h big);
    Alcotest.(check bool) "largest removable" true (S.remove h big)

  let test_many_keys () =
    let t, h = fresh ~policy:Nbhash.Policy.default () in
    for k = 0 to 999 do
      Alcotest.(check bool) "inserted" true (S.insert h (k * 7))
    done;
    Alcotest.(check int) "cardinal" 1000 (S.cardinal t);
    for k = 0 to 999 do
      Alcotest.(check bool) "present" true (S.contains h (k * 7))
    done;
    S.check_invariants t

  let test_elements () =
    let t, h = fresh () in
    List.iter (fun k -> ignore (S.insert h k)) [ 5; 1; 9; 1 ];
    let sorted = S.elements t in
    Array.sort compare sorted;
    Alcotest.(check (array int)) "elements" [| 1; 5; 9 |] sorted

  let test_forced_grow_migrates () =
    if C.can_grow then begin
      let t, h = fresh () in
      let keys = List.init 200 (fun i -> (i * 13) + 1) in
      List.iter (fun k -> ignore (S.insert h k)) keys;
      let before = S.bucket_count t in
      S.force_resize h ~grow:true;
      S.force_resize h ~grow:true;
      Alcotest.(check int) "bucket array quadrupled" (before * 4)
        (S.bucket_count t);
      List.iter
        (fun k ->
          Alcotest.(check bool) "still present after grow" true
            (S.contains h k))
        keys;
      Alcotest.(check int) "cardinal preserved" 200 (S.cardinal t);
      S.check_invariants t
    end

  let test_forced_shrink_migrates () =
    if C.can_shrink then begin
      let t, h = fresh () in
      let keys = List.init 200 (fun i -> (i * 13) + 1) in
      List.iter (fun k -> ignore (S.insert h k)) keys;
      S.force_resize h ~grow:true;
      let grown = S.bucket_count t in
      S.force_resize h ~grow:false;
      S.force_resize h ~grow:false;
      Alcotest.(check int) "bucket array quartered" (grown / 4)
        (S.bucket_count t);
      List.iter
        (fun k ->
          Alcotest.(check bool) "still present after shrink" true
            (S.contains h k))
        keys;
      S.check_invariants t
    end

  let test_shrink_to_one_bucket () =
    if C.can_shrink then begin
      let t, h = fresh () in
      List.iter (fun k -> ignore (S.insert h k)) [ 3; 11; 19 ];
      for _ = 1 to 10 do
        S.force_resize h ~grow:false
      done;
      Alcotest.(check int) "floor of one bucket" 1 (S.bucket_count t);
      Alcotest.(check bool) "still present" true (S.contains h 11);
      S.check_invariants t
    end

  let test_policy_growth () =
    if C.can_grow then begin
      let t, h =
        fresh ~policy:{ Nbhash.Policy.default with init_buckets = 1 } ()
      in
      let before = S.bucket_count t in
      for k = 0 to 2999 do
        ignore (S.insert h k)
      done;
      Alcotest.(check bool) "table grew under load" true
        (S.bucket_count t > before);
      for k = 0 to 2999 do
        Alcotest.(check bool) "present" true (S.contains h k)
      done;
      S.check_invariants t
    end

  let test_policy_shrink () =
    if C.can_shrink then begin
      let t, h = fresh ~policy:Nbhash.Policy.aggressive () in
      for k = 0 to 999 do
        ignore (S.insert h k)
      done;
      let peak = S.bucket_count t in
      for k = 0 to 999 do
        ignore (S.remove h k)
      done;
      (* Empty-table removes keep triggering the sampling heuristic. *)
      for _ = 1 to 2000 do
        ignore (S.remove h 0)
      done;
      Alcotest.(check bool) "table shrank when drained" true
        (S.bucket_count t < peak);
      Alcotest.(check int) "empty" 0 (S.cardinal t);
      S.check_invariants t
    end

  let test_resize_stats () =
    let t, h = fresh () in
    let base = S.resize_stats t in
    Alcotest.(check int) "no grows initially" 0 base.Nbhash.Hashset_intf.grows;
    Alcotest.(check int) "no shrinks initially" 0
      base.Nbhash.Hashset_intf.shrinks;
    S.force_resize h ~grow:true;
    S.force_resize h ~grow:true;
    S.force_resize h ~grow:false;
    let s = S.resize_stats t in
    if C.can_grow then
      Alcotest.(check int) "grows counted" 2 s.Nbhash.Hashset_intf.grows
    else Alcotest.(check int) "grow no-op" 0 s.Nbhash.Hashset_intf.grows;
    if C.can_shrink then
      Alcotest.(check int) "shrinks counted" 1 s.Nbhash.Hashset_intf.shrinks
    else Alcotest.(check int) "shrink no-op" 0 s.Nbhash.Hashset_intf.shrinks

  let test_max_buckets_cap () =
    if C.can_grow then begin
      let policy =
        { (Nbhash.Policy.presized 4) with max_buckets = 8; min_buckets = 1 }
      in
      let t = S.create ~policy () in
      let h = S.register t in
      for _ = 1 to 5 do
        S.force_resize h ~grow:true
      done;
      Alcotest.(check int) "capped at max_buckets" 8 (S.bucket_count t);
      Alcotest.(check int) "only one grow possible" 1
        (S.resize_stats t).Nbhash.Hashset_intf.grows
    end

  let test_min_buckets_floor () =
    if C.can_shrink then begin
      let policy =
        { (Nbhash.Policy.presized 8) with min_buckets = 4; max_buckets = 64 }
      in
      let t = S.create ~policy () in
      let h = S.register t in
      for _ = 1 to 5 do
        S.force_resize h ~grow:false
      done;
      Alcotest.(check int) "floored at min_buckets" 4 (S.bucket_count t)
    end

  (* The Load_factor band: after bulk inserts the table settles with
     a bounded average occupancy; after draining it settles small. *)
  let test_load_factor_band () =
    if C.can_grow && C.can_shrink then begin
      let policy =
        {
          Nbhash.Policy.default with
          heuristic = Nbhash.Policy.Load_factor { grow = 6.0; shrink = 1.5 };
        }
      in
      let t = S.create ~policy () in
      let h = S.register t in
      let n = 6_000 in
      for k = 0 to n - 1 do
        ignore (S.insert h k)
      done;
      let buckets = S.bucket_count t in
      let avg = float_of_int n /. float_of_int buckets in
      if avg > 7.0 then
        Alcotest.failf "average occupancy %.1f above the grow load" avg;
      if avg < 1.0 then
        Alcotest.failf "average occupancy %.1f suspiciously low" avg;
      for k = 0 to n - 1 do
        ignore (S.remove h k)
      done;
      for _ = 1 to 500 do
        ignore (S.remove h 0)
      done;
      Alcotest.(check bool) "drained table shrank" true
        (S.bucket_count t < buckets);
      S.check_invariants t
    end

  (* Random traces (operations plus occasional forced resizes) against
     a Hashtbl model. *)
  type step = Op of Nbhash_workload.Workload.kind * int | Grow | Shrink

  let step_gen =
    QCheck2.Gen.(
      frequency
        [
          ( 10,
            map2
              (fun c k ->
                let kind =
                  match c mod 3 with
                  | 0 -> Nbhash_workload.Workload.Insert
                  | 1 -> Nbhash_workload.Workload.Remove
                  | _ -> Nbhash_workload.Workload.Lookup
                in
                Op (kind, k))
              (int_bound 2) (int_bound 63) );
          (1, return Grow);
          (1, return Shrink);
        ])

  let prop_model_equivalence =
    QCheck2.Test.make
      ~name:(S.name ^ ": random traces with resizes match a model")
      ~count:200
      QCheck2.Gen.(list_size (int_range 0 200) step_gen)
      (fun steps ->
        let t, h = fresh ~policy:(Nbhash.Policy.presized 4) () in
        let model = Hashtbl.create 64 in
        let ok =
          List.for_all
            (fun step ->
              match step with
              | Grow ->
                if C.can_grow && S.bucket_count t < 1024 then
                  S.force_resize h ~grow:true;
                true
              | Shrink ->
                if C.can_shrink then S.force_resize h ~grow:false;
                true
              | Op (Nbhash_workload.Workload.Insert, k) ->
                let expected = not (Hashtbl.mem model k) in
                Hashtbl.replace model k ();
                S.insert h k = expected
              | Op (Nbhash_workload.Workload.Remove, k) ->
                let expected = Hashtbl.mem model k in
                Hashtbl.remove model k;
                S.remove h k = expected
              | Op (Nbhash_workload.Workload.Lookup, k) ->
                S.contains h k = Hashtbl.mem model k)
            steps
        in
        S.check_invariants t;
        let final = S.elements t in
        Array.sort compare final;
        let expected =
          Hashtbl.fold (fun k () acc -> k :: acc) model [] |> List.sort compare
        in
        ok && Array.to_list final = expected)

  let suite =
    ( "set-" ^ S.name,
      [
        Alcotest.test_case "empty" `Quick test_empty;
        Alcotest.test_case "insert/contains/remove" `Quick
          test_insert_contains_remove;
        Alcotest.test_case "key validation" `Quick test_key_validation;
        Alcotest.test_case "zero and large keys" `Quick
          test_zero_and_large_keys;
        Alcotest.test_case "many keys" `Quick test_many_keys;
        Alcotest.test_case "elements" `Quick test_elements;
        Alcotest.test_case "forced grow migrates" `Quick
          test_forced_grow_migrates;
        Alcotest.test_case "forced shrink migrates" `Quick
          test_forced_shrink_migrates;
        Alcotest.test_case "shrink floor" `Quick test_shrink_to_one_bucket;
        Alcotest.test_case "policy-driven growth" `Quick test_policy_growth;
        Alcotest.test_case "policy-driven shrink" `Quick test_policy_shrink;
        Alcotest.test_case "resize stats" `Quick test_resize_stats;
        Alcotest.test_case "max_buckets cap" `Quick test_max_buckets_cap;
        Alcotest.test_case "min_buckets floor" `Quick test_min_buckets_floor;
        Alcotest.test_case "load-factor band" `Quick test_load_factor_band;
        QCheck_alcotest.to_alcotest prop_model_equivalence;
      ] )
end
