(* Conformance suite applied to every lock-free FSet implementation:
   sequential semantics against the Seq_fset oracle, freeze semantics,
   and randomized trace equivalence. *)

open Nbhash_fset

module Make (F : Fset_intf.S) = struct
  let apply_op t kind k =
    let op = F.make_op kind k in
    Alcotest.(check bool) "invoke on mutable set succeeds" true (F.invoke t op);
    F.get_response op

  let ins t k = apply_op t Fset_intf.Ins k
  let rem t k = apply_op t Fset_intf.Rem k

  let test_create_elements () =
    let t = F.create [| 1; 2; 3 |] in
    Alcotest.(check bool) "elements" true
      (Intset.equal_as_sets [| 1; 2; 3 |] (F.elements t));
    Alcotest.(check int) "size" 3 (F.size t);
    Alcotest.(check bool) "not frozen" false (F.is_frozen t)

  let test_insert_semantics () =
    let t = F.create [||] in
    Alcotest.(check bool) "new key" true (ins t 5);
    Alcotest.(check bool) "duplicate" false (ins t 5);
    Alcotest.(check bool) "member" true (F.has_member t 5);
    Alcotest.(check bool) "other key" true (ins t 9);
    Alcotest.(check int) "size" 2 (F.size t)

  let test_remove_semantics () =
    let t = F.create [| 4; 8 |] in
    Alcotest.(check bool) "present" true (rem t 4);
    Alcotest.(check bool) "gone" false (F.has_member t 4);
    Alcotest.(check bool) "absent" false (rem t 4);
    Alcotest.(check bool) "untouched" true (F.has_member t 8)

  let test_freeze () =
    let t = F.create [| 1; 2 |] in
    let final = F.freeze t in
    Alcotest.(check bool) "freeze returns contents" true
      (Intset.equal_as_sets [| 1; 2 |] final);
    Alcotest.(check bool) "frozen" true (F.is_frozen t);
    let op = F.make_op Fset_intf.Ins 7 in
    Alcotest.(check bool) "invoke on frozen fails" false (F.invoke t op);
    Alcotest.(check bool) "set unchanged" true
      (Intset.equal_as_sets [| 1; 2 |] (F.elements t));
    Alcotest.(check bool) "has_member still works" true (F.has_member t 1)

  let test_freeze_idempotent () =
    let t = F.create [| 6 |] in
    let a = F.freeze t in
    let b = F.freeze t in
    Alcotest.(check bool) "same final state" true (Intset.equal_as_sets a b)

  let test_freeze_empty () =
    let t = F.create [||] in
    Alcotest.(check int) "empty freeze" 0 (Array.length (F.freeze t))

  (* Random traces checked against the Figure 1 specification. *)
  let trace_gen =
    QCheck2.Gen.(
      small_list (pair bool (int_bound 15))
      |> map
           (List.map (fun (is_ins, k) ->
                ((if is_ins then Fset_intf.Ins else Fset_intf.Rem), k))))

  let prop_trace_equivalence =
    QCheck2.Test.make
      ~name:(F.id ^ ": random traces match the sequential specification")
      ~count:300 trace_gen
      (fun ops ->
        let t = F.create [| 0; 2; 4 |] in
        let m = Seq_fset.create [| 0; 2; 4 |] in
        List.for_all
          (fun (kind, k) ->
            let got = apply_op t kind k in
            let mop = Seq_fset.make_op kind k in
            ignore (Seq_fset.invoke m mop);
            got = Seq_fset.get_response mop)
          ops
        && Intset.equal_as_sets (F.elements t) (Seq_fset.elements m))

  let prop_freeze_point =
    QCheck2.Test.make
      ~name:(F.id ^ ": freeze captures exactly the pre-freeze state")
      ~count:200 trace_gen
      (fun ops ->
        let t = F.create [||] in
        List.iter (fun (kind, k) -> ignore (apply_op t kind k)) ops;
        let before = F.elements t in
        let final = F.freeze t in
        Intset.equal_as_sets before final)

  let suite =
    ( "fset-" ^ F.id,
      [
        Alcotest.test_case "create/elements" `Quick test_create_elements;
        Alcotest.test_case "insert semantics" `Quick test_insert_semantics;
        Alcotest.test_case "remove semantics" `Quick test_remove_semantics;
        Alcotest.test_case "freeze" `Quick test_freeze;
        Alcotest.test_case "freeze idempotent" `Quick test_freeze_idempotent;
        Alcotest.test_case "freeze empty" `Quick test_freeze_empty;
        QCheck_alcotest.to_alcotest prop_trace_equivalence;
        QCheck_alcotest.to_alcotest prop_freeze_point;
      ] )
end
