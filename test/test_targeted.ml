(* Targeted regression tests for specific algorithmic corners. *)

module Factory = Nbhash_workload.Factory

(* Announce-array capacity is a hard limit for the wait-free tables. *)
let test_register_exhaustion () =
  let module W = Nbhash.Tables.WFArray in
  let t = W.create ~max_threads:2 () in
  let _h1 = W.register t in
  let _h2 = W.register t in
  match W.register t with
  | _ -> Alcotest.fail "third registration on max_threads=2 accepted"
  | exception Failure _ -> ()

(* Lock-free tables have no announce array and must not be limited. *)
let test_register_unlimited () =
  let module L = Nbhash.Tables.LFArray in
  let t = L.create ~max_threads:1 () in
  for _ = 1 to 10 do
    ignore (L.register t)
  done

(* A key inserted once and never removed must be visible through every
   moment of a resize storm: this pins the CONTAINS fallback path
   (paper lines 13-18), including the re-read after the predecessor
   vanishes. *)
let contains_stability name () =
  let maker = Factory.by_name name in
  let table = maker ~policy:(Nbhash.Policy.presized 4) ~max_threads:8 () in
  let setup = table.Factory.new_handle () in
  let anchors = [ 3; 17; 40; 63 ] in
  List.iter (fun k -> ignore (setup.Factory.ins k)) anchors;
  let stop = Atomic.make false in
  let failures = Atomic.make 0 in
  let reader () =
    let ops = table.Factory.new_handle () in
    while not (Atomic.get stop) do
      List.iter
        (fun k -> if not (ops.Factory.look k) then ignore (Atomic.fetch_and_add failures 1))
        anchors
    done
  in
  let stormer () =
    let ops = table.Factory.new_handle () in
    for i = 1 to 400 do
      ops.Factory.force_resize ~grow:(i mod 2 = 0)
    done;
    Atomic.set stop true
  in
  let churn () =
    (* Unrelated keys come and go, driving lazy bucket initialization
       from many different buckets. *)
    let ops = table.Factory.new_handle () in
    let rng = Nbhash_util.Xoshiro.create 31 in
    while not (Atomic.get stop) do
      let k = 64 + Nbhash_util.Xoshiro.below rng 192 in
      ignore (ops.Factory.ins k);
      ignore (ops.Factory.rem k)
    done
  in
  let ds =
    [ Domain.spawn reader; Domain.spawn reader; Domain.spawn churn ]
  in
  let st = Domain.spawn stormer in
  List.iter Domain.join ds;
  Domain.join st;
  Alcotest.(check int)
    (name ^ ": anchor keys never disappeared")
    0 (Atomic.get failures)

let dynamic_impls =
  [ "LFArray"; "LFArrayOpt"; "LFList"; "LFUlist"; "WFArray"; "WFList";
    "Adaptive"; "AdaptiveOpt" ]

let suite =
  [
    ( "targeted",
      [
        Alcotest.test_case "register exhaustion (wait-free)" `Quick
          test_register_exhaustion;
        Alcotest.test_case "register unlimited (lock-free)" `Quick
          test_register_unlimited;
      ]
      @ List.map
          (fun name ->
            Alcotest.test_case
              (name ^ " contains stable under migration")
              `Slow (contains_stability name))
          dynamic_impls );
  ]
