(* The structural inspector (PR 5): [inspect] must agree exactly with
   a census computed from [bucket_sizes] on quiescent tables — the
   inspector is only useful if its numbers are the truth, not a second
   estimate. Covered: every Factory variant (the paper's eight plus
   the Michael and Locked reference points) and both maps; plus the
   in-window behaviour (an open migration reports [migrating] with a
   sub-1 progress, and draining the window brings progress back to
   exactly 1.0). *)

module Factory = Nbhash_workload.Factory
module V = Nbhash.Hashset_intf

(* Reference census, computed independently of the library helper the
   inspector itself uses. *)
let census_of sizes =
  let m = Array.fold_left max 0 sizes in
  let c = Array.make (m + 1) 0 in
  Array.iter (fun s -> c.(s) <- c.(s) + 1) sizes;
  c

let check_view ~what (v : V.table_view) sizes =
  let total = Array.fold_left ( + ) 0 sizes in
  Alcotest.(check int) (what ^ ": buckets") (Array.length sizes) v.V.buckets;
  Alcotest.(check int) (what ^ ": cardinal") total v.V.cardinal;
  Alcotest.(check (array int))
    (what ^ ": depth census") (census_of sizes) v.V.depth_census;
  Alcotest.(check int)
    (what ^ ": max depth")
    (Array.fold_left max 0 sizes)
    v.V.max_depth;
  Alcotest.(check (float 1e-9))
    (what ^ ": load factor")
    (float_of_int total /. float_of_int (max 1 (Array.length sizes)))
    v.V.load_factor

let quiescent_factory (name, (maker : Factory.maker)) () =
  let table = maker () in
  let ops = table.Factory.new_handle () in
  (* A spread of keys with holes so depths vary. *)
  for k = 0 to 799 do
    ignore (ops.Factory.ins (k * 3))
  done;
  for k = 0 to 199 do
    ignore (ops.Factory.rem (k * 6))
  done;
  ops.Factory.detach ();
  let v = table.Factory.inspect () in
  check_view ~what:name v (table.Factory.bucket_sizes ());
  Alcotest.(check bool) (name ^ ": quiescent, not migrating") false
    v.V.migrating;
  Alcotest.(check (float 0.))
    (name ^ ": quiescent progress") 1.0 v.V.migration_progress;
  Alcotest.(check int) (name ^ ": no frozen buckets") 0 v.V.frozen_buckets;
  Alcotest.(check int) (name ^ ": no announced ops") 0 v.V.announce_pending;
  table.Factory.close ()

(* Open a migration window with a forced resize and watch the
   inspector: inside the window progress is in [0, 1); updates (which
   help via the cooperative sweep) drain it back to exactly 1.0. *)
let window (name, (maker : Factory.maker)) () =
  let table = maker () in
  let ops = table.Factory.new_handle () in
  for k = 0 to 499 do
    ignore (ops.Factory.ins k)
  done;
  ops.Factory.force_resize ~grow:true;
  let v = table.Factory.inspect () in
  Alcotest.(check bool) (name ^ ": window open") true v.V.migrating;
  Alcotest.(check bool)
    (name ^ ": in-window progress < 1")
    true
    (v.V.migration_progress >= 0. && v.V.migration_progress < 1.0);
  (* The view is still exact mid-window: sizes read through the
     predecessor (the refinement mapping), so nothing is lost. *)
  check_view ~what:(name ^ " in-window") v (table.Factory.bucket_sizes ());
  let budget = ref 100_000 in
  while (table.Factory.inspect ()).V.migrating && !budget > 0 do
    ignore (ops.Factory.ins 1_000_001);
    ignore (ops.Factory.rem 1_000_001);
    decr budget
  done;
  ops.Factory.detach ();
  let v = table.Factory.inspect () in
  Alcotest.(check bool) (name ^ ": window drained") false v.V.migrating;
  Alcotest.(check (float 0.))
    (name ^ ": drained progress") 1.0 v.V.migration_progress;
  table.Factory.close ()

let quiescent_hashmap () =
  let t = Nbhash.Hashmap.create () in
  let h = Nbhash.Hashmap.register t in
  for k = 0 to 511 do
    ignore (Nbhash.Hashmap.put h (k * 5) (string_of_int k))
  done;
  for k = 0 to 127 do
    ignore (Nbhash.Hashmap.remove h (k * 10))
  done;
  Nbhash.Hashmap.unregister h;
  let v = Nbhash.Hashmap.inspect t in
  check_view ~what:"Hashmap" v (Nbhash.Hashmap.bucket_sizes t);
  Alcotest.(check bool) "Hashmap: not migrating" false v.Nbhash.Hashset_intf.migrating;
  Alcotest.(check int) "Hashmap: no frozen buckets" 0 v.Nbhash.Hashset_intf.frozen_buckets

let quiescent_wf_hashmap () =
  let t = Nbhash.Wf_hashmap.create () in
  let h = Nbhash.Wf_hashmap.register t in
  for k = 0 to 511 do
    ignore (Nbhash.Wf_hashmap.put h (k * 5) (k * k))
  done;
  for k = 0 to 127 do
    ignore (Nbhash.Wf_hashmap.remove h (k * 10))
  done;
  Nbhash.Wf_hashmap.unregister h;
  let v = Nbhash.Wf_hashmap.inspect t in
  check_view ~what:"Wf_hashmap" v (Nbhash.Wf_hashmap.bucket_sizes t);
  Alcotest.(check bool) "Wf_hashmap: not migrating" false
    v.Nbhash.Hashset_intf.migrating;
  Alcotest.(check int) "Wf_hashmap: no pending slots" 0
    v.Nbhash.Hashset_intf.announce_pending

let suite =
  [
    ( "inspect",
      List.map
        (fun ((name, _) as entry) ->
          Alcotest.test_case
            (Printf.sprintf "quiescent census %s" name)
            `Quick (quiescent_factory entry))
        Factory.with_michael
      @ List.map
          (fun ((name, _) as entry) ->
            Alcotest.test_case
              (Printf.sprintf "migration window %s" name)
              `Quick (window entry))
          (List.filter
             (fun (name, _) ->
               List.mem name [ "LFArray"; "LFArrayOpt"; "WFArray"; "AdaptiveOpt" ])
             Factory.with_michael)
      @ [
          Alcotest.test_case "quiescent census Hashmap" `Quick
            quiescent_hashmap;
          Alcotest.test_case "quiescent census Wf_hashmap" `Quick
            quiescent_wf_hashmap;
        ] );
  ]
