(* Nbhash_util.Clock is the shared time axis for probe spans, trace
   records and bench latencies. The properties that make it fit for
   sub-microsecond latency sampling — monotonic, integer-ns with no
   float round-trip, allocation-free — regressed once (a wall-clock
   float backend quantised every reading to 256 ns multiples and
   zeroed the churn bench's p50), so each is pinned here. *)

module Clock = Nbhash_util.Clock

let test_monotonic () =
  let prev = ref (Clock.now_ns ()) in
  for _ = 1 to 100_000 do
    let t = Clock.now_ns () in
    if t < !prev then
      Alcotest.failf "clock went backwards: %d after %d" t !prev;
    prev := t
  done

(* A float wall-clock backend can only produce multiples of the ulp at
   epoch magnitude (256 ns); a true integer-ns source read at random
   instants lands off that grid. One off-grid reading in 10k proves
   the backend is not quantised. *)
let test_sub_256ns_resolution () =
  let off_grid = ref false in
  (let t0 = Clock.now_ns () in
   for _ = 1 to 10_000 do
     if (Clock.now_ns () - t0) land 255 <> 0 then off_grid := true
   done);
  Alcotest.(check bool) "readings not quantised to 256ns multiples" true
    !off_grid

let test_noalloc () =
  let before = Gc.minor_words () in
  let sink = ref 0 in
  for _ = 1 to 10_000 do
    sink := !sink + Clock.now_ns ()
  done;
  let after = Gc.minor_words () in
  ignore (Sys.opaque_identity !sink);
  Alcotest.(check (float 0.)) "minor words allocated" 0. (after -. before)

let suite =
  [
    ( "clock",
      [
        Alcotest.test_case "monotonic" `Quick test_monotonic;
        Alcotest.test_case "sub-256ns resolution" `Quick
          test_sub_256ns_resolution;
        Alcotest.test_case "allocation-free" `Quick test_noalloc;
      ] );
  ]
