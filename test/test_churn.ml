(* Multi-domain churn under grow/shrink storms, with the cooperative
   sweep engaged (satellite of the sweep-engine work).

   N worker domains update DISJOINT key ranges — so the exact final
   membership is deterministic per domain whatever the interleaving —
   while a trigger domain forces alternating grows and shrinks. After
   the storm: structural invariants, exact final membership, sweep
   participation in the telemetry, and the migration accounting
   balance: one quiescent full migration must move every key exactly
   once (keys_migrated == cardinal) while the sweep cursor hands out
   every bucket index exactly once (sweep_buckets_migrated == bucket
   count) — no key migrated twice into the same HNode, none lost. *)

module Tm = Nbhash_telemetry.Global
module Probe = Nbhash_telemetry.Probe
module Event = Nbhash_telemetry.Event
module Snapshot = Nbhash_telemetry.Snapshot

let domains = 4
let range = 256 (* keys per domain *)
let rounds = 3

(* Serialised with the other probe-installing suites via the ambient
   probe being process-global: Alcotest runs cases sequentially. *)
let with_probe f =
  Fun.protect
    ~finally:(fun () -> Tm.install Probe.noop)
    (fun () ->
      let p = Probe.recording () in
      Tm.install p;
      f p)

(* Each domain inserts its whole range then removes the odd keys,
   [rounds] times: the final state is exactly its even keys. *)
let expected_final =
  List.concat_map
    (fun d ->
      List.filter_map
        (fun i -> if i land 1 = 0 then Some ((d * range) + i) else None)
        (List.init range Fun.id))
    (List.init domains Fun.id)

let churn (module S : Nbhash.Hashset_intf.S) () =
  with_probe (fun p ->
      (* domains workers + trigger + the accounting handle + the
         inspector-drain handle at the end. *)
      let t =
        S.create
          ~policy:{ Nbhash.Policy.default with init_buckets = 4 }
          ~max_threads:(domains + 3) ()
      in
      let barrier = Atomic.make 0 in
      let worker d () =
        let h = S.register t in
        Atomic.incr barrier;
        while Atomic.get barrier < domains + 1 do
          Domain.cpu_relax ()
        done;
        let base = d * range in
        for _ = 1 to rounds do
          for i = 0 to range - 1 do
            ignore (S.insert h (base + i))
          done;
          for i = 0 to range - 1 do
            if i land 1 = 1 then ignore (S.remove h (base + i))
          done
        done;
        S.unregister h
      in
      let trigger () =
        let h = S.register t in
        Atomic.incr barrier;
        while Atomic.get barrier < domains + 1 do
          Domain.cpu_relax ()
        done;
        for i = 1 to 24 do
          S.force_resize h ~grow:(i land 1 = 0);
          for _ = 1 to 500 do
            Domain.cpu_relax ()
          done
        done;
        S.unregister h
      in
      (* The liveness watchdog rides along on every storm: with
         working helping no announced operation survives for seconds,
         so any stall here is a real progress bug. *)
      let wd =
        Nbhash_telemetry.Watchdog.create ~max_age_ns:2_000_000_000
          [
            {
              Nbhash_telemetry.Watchdog.name = S.name;
              pending = (fun () -> S.pending_ops t);
            };
          ]
      in
      let wd_stop = Atomic.make false in
      let wd_domain =
        Domain.spawn (fun () ->
            Nbhash_telemetry.Watchdog.run ~interval:0.005
              ~stop:(fun () -> Atomic.get wd_stop)
              wd)
      in
      let ds =
        Domain.spawn trigger
        :: List.init domains (fun d -> Domain.spawn (worker d))
      in
      List.iter Domain.join ds;
      Atomic.set wd_stop true;
      Alcotest.(check int) "watchdog-clean storm" 0 (Domain.join wd_domain);
      S.check_invariants t;
      let final = List.sort compare (Array.to_list (S.elements t)) in
      Alcotest.(check (list int))
        "exact final membership over disjoint ranges" expected_final final;
      let storm = Tm.snapshot () in
      Alcotest.(check bool) "sweep chunks were claimed" true
        (Snapshot.get storm Event.Sweep_chunk_claimed > 0);
      Alcotest.(check bool) "sweep migrated buckets" true
        (Snapshot.get storm Event.Sweep_buckets_migrated > 0);
      (match Snapshot.span storm Event.Sweep_helpers with
      | None -> Alcotest.fail "sweep participation histogram missing"
      | Some s ->
        Alcotest.(check bool) "participation observed per migration" true
          (s.Nbhash_util.Stats.n > 0));
      (* Accounting balance on a quiescent table. The first resize
         completes whatever migration the storm left in flight; the
         second then starts from a fresh all-nil head, so the sweep
         must hand out every bucket index exactly once and the install
         CASes must move every key exactly once. *)
      let h = S.register t in
      S.force_resize h ~grow:true;
      Probe.reset p;
      let buckets = S.bucket_count t in
      let cardinal = S.cardinal t in
      S.force_resize h ~grow:true;
      S.unregister h;
      let snap = Tm.snapshot () in
      Alcotest.(check int) "keys_migrated == cardinal (none lost, none twice)"
        cardinal
        (Snapshot.get snap Event.Keys_migrated);
      Alcotest.(check int) "sweep swept every bucket exactly once" buckets
        (Snapshot.get snap Event.Sweep_buckets_migrated);
      Alcotest.(check int) "every bucket installed exactly once" buckets
        (Snapshot.get snap Event.Bucket_init);
      Alcotest.(check int) "cardinal unchanged by migration" cardinal
        (S.cardinal t);
      (* The structural inspector agrees: drain whatever window the
         last resize left open (updates help via the sweep), then the
         view must report a fully migrated table — progress exactly
         1.0, not merely close. *)
      let h = S.register t in
      let budget = ref 100_000 in
      while
        (S.inspect t).Nbhash.Hashset_intf.migrating && !budget > 0
      do
        ignore (S.insert h 9_999_999);
        ignore (S.remove h 9_999_999);
        decr budget
      done;
      S.unregister h;
      let v = S.inspect t in
      Alcotest.(check bool) "migration window drained" false
        v.Nbhash.Hashset_intf.migrating;
      Alcotest.(check (float 0.))
        "inspector progress reaches exactly 1.0" 1.0
        v.Nbhash.Hashset_intf.migration_progress)

(* The same storm with the sweep disabled must agree on membership:
   the lazy path alone remains correct (it is the backstop). *)
let churn_lazy (module S : Nbhash.Hashset_intf.S) () =
  let policy =
    Nbhash.Policy.lazy_migration
      { Nbhash.Policy.default with init_buckets = 4 }
  in
  let t = S.create ~policy ~max_threads:(domains + 2) () in
  let ds =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            let h = S.register t in
            let base = d * range in
            for _ = 1 to rounds do
              for i = 0 to range - 1 do
                ignore (S.insert h (base + i))
              done;
              for i = 0 to range - 1 do
                if i land 1 = 1 then ignore (S.remove h (base + i))
              done
            done;
            S.force_resize h ~grow:(d land 1 = 0);
            S.unregister h))
  in
  List.iter Domain.join ds;
  S.check_invariants t;
  let final = List.sort compare (Array.to_list (S.elements t)) in
  Alcotest.(check (list int))
    "lazy-only membership matches" expected_final final

let suite =
  [
    ( "churn",
      [
        Alcotest.test_case "sweep churn LFArray" `Quick
          (churn (module Nbhash.Tables.LFArray));
        Alcotest.test_case "sweep churn LFArrayOpt" `Quick
          (churn (module Nbhash.Tables.LFArrayOpt));
        Alcotest.test_case "sweep churn WFArray" `Quick
          (churn (module Nbhash.Tables.WFArray));
        Alcotest.test_case "sweep churn AdaptiveOpt" `Quick
          (churn (module Nbhash.Tables.AdaptiveOpt));
        Alcotest.test_case "sweep churn LFFlat" `Quick
          (churn (module Nbhash.Tables.LFFlat));
        Alcotest.test_case "lazy churn LFArrayOpt" `Quick
          (churn_lazy (module Nbhash.Tables.LFArrayOpt));
        Alcotest.test_case "lazy churn LFFlat" `Quick
          (churn_lazy (module Nbhash.Tables.LFFlat));
      ] );
  ]
